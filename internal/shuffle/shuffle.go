// Package shuffle implements the block-shuffling procedures used to
// manipulate the correlation structure of traffic traces (paper §III,
// Fig. 6, after Erramilli, Narayan & Willinger).
//
// External shuffling divides a series into consecutive blocks and permutes
// the blocks while leaving each block's interior untouched: correlation at
// lags beyond the block length is destroyed, correlation within a block is
// preserved. It is the empirical analogue of the model's cutoff lag Tc,
// which is why the paper validates its model against shuffle-driven
// simulations (Figs. 7, 8, 14).
//
// Internal shuffling is the complement — permuting samples within each
// block — which destroys short-lag correlation and keeps long-lag structure.
// The paper discusses only external shuffling; internal shuffling is
// provided for completeness and for ablation experiments.
package shuffle

import (
	"errors"
	"math/rand"
)

// External returns a copy of xs with consecutive blocks of blockLen samples
// permuted uniformly at random. A trailing partial block participates in
// the permutation as a shorter block. blockLen >= len(xs) returns an
// unshuffled copy (a single block); blockLen must be positive.
func External(xs []float64, blockLen int, rng *rand.Rand) ([]float64, error) {
	if blockLen <= 0 {
		return nil, errors.New("shuffle: block length must be positive")
	}
	if len(xs) == 0 {
		return nil, errors.New("shuffle: empty series")
	}
	nblocks := (len(xs) + blockLen - 1) / blockLen
	order := rng.Perm(nblocks)
	out := make([]float64, 0, len(xs))
	for _, b := range order {
		lo := b * blockLen
		hi := lo + blockLen
		if hi > len(xs) {
			hi = len(xs)
		}
		out = append(out, xs[lo:hi]...)
	}
	return out, nil
}

// Internal returns a copy of xs in which the samples inside each
// consecutive block of blockLen samples are permuted uniformly at random,
// while the blocks themselves stay in place.
func Internal(xs []float64, blockLen int, rng *rand.Rand) ([]float64, error) {
	if blockLen <= 0 {
		return nil, errors.New("shuffle: block length must be positive")
	}
	if len(xs) == 0 {
		return nil, errors.New("shuffle: empty series")
	}
	out := append([]float64(nil), xs...)
	for lo := 0; lo < len(out); lo += blockLen {
		hi := lo + blockLen
		if hi > len(out) {
			hi = len(out)
		}
		blk := out[lo:hi]
		rng.Shuffle(len(blk), func(i, j int) { blk[i], blk[j] = blk[j], blk[i] })
	}
	return out, nil
}

// Full returns a copy of xs with all samples permuted uniformly at random,
// destroying all correlation while preserving the marginal exactly. It is
// External with blockLen = 1.
func Full(xs []float64, rng *rand.Rand) ([]float64, error) {
	return External(xs, 1, rng)
}
