package shuffle

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestExternalPreservesMarginal(t *testing.T) {
	xs := seq(1000)
	rng := rand.New(rand.NewSource(1))
	got, err := External(xs, 37, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(sortedCopy(got), sortedCopy(xs)) {
		t.Fatal("external shuffle changed the multiset of samples")
	}
}

func TestExternalPreservesBlockInteriors(t *testing.T) {
	xs := seq(100)
	rng := rand.New(rand.NewSource(2))
	got, err := External(xs, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every aligned 10-sample window of the output must be one of the
	// original blocks, i.e. 10 consecutive integers starting at a multiple
	// of 10.
	for lo := 0; lo < 100; lo += 10 {
		start := got[lo]
		if int(start)%10 != 0 {
			t.Fatalf("block at %d starts at %v, not a block boundary", lo, start)
		}
		for k := 0; k < 10; k++ {
			if got[lo+k] != start+float64(k) {
				t.Fatalf("block interior broken at %d", lo+k)
			}
		}
	}
}

func TestExternalDoesNotMutateInput(t *testing.T) {
	xs := seq(50)
	orig := append([]float64(nil), xs...)
	if _, err := External(xs, 7, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	if !equal(xs, orig) {
		t.Fatal("input mutated")
	}
}

func TestExternalSingleBlockIsIdentity(t *testing.T) {
	xs := seq(10)
	got, err := External(xs, 100, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !equal(got, xs) {
		t.Fatal("single block should be returned unchanged")
	}
}

func TestExternalErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := External(nil, 10, rng); err == nil {
		t.Fatal("want error on empty series")
	}
	if _, err := External(seq(5), 0, rng); err == nil {
		t.Fatal("want error on zero block length")
	}
}

func TestInternalPreservesBlockMultisets(t *testing.T) {
	xs := seq(95) // trailing partial block of 5
	rng := rand.New(rand.NewSource(6))
	got, err := Internal(xs, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(xs); lo += 10 {
		hi := lo + 10
		if hi > len(xs) {
			hi = len(xs)
		}
		if !equal(sortedCopy(got[lo:hi]), sortedCopy(xs[lo:hi])) {
			t.Fatalf("block [%d,%d) changed its contents", lo, hi)
		}
	}
}

func TestInternalErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := Internal(nil, 10, rng); err == nil {
		t.Fatal("want error on empty series")
	}
	if _, err := Internal(seq(5), -1, rng); err == nil {
		t.Fatal("want error on negative block length")
	}
}

func TestFullPreservesMarginal(t *testing.T) {
	xs := seq(500)
	got, err := Full(xs, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if !equal(sortedCopy(got), sortedCopy(xs)) {
		t.Fatal("full shuffle changed the multiset")
	}
}

func TestExternalKillsLongLagCorrelation(t *testing.T) {
	// Build a strongly correlated series (slow square wave), shuffle with a
	// small block, and check the lag-k autocorrelation beyond the block
	// length collapses while within-block correlation survives.
	n := 1 << 14
	period := 512
	xs := make([]float64, n)
	for i := range xs {
		if (i/period)%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	block := 64
	got, err := External(xs, block, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	acf := func(series []float64, lag int) float64 {
		var num, den float64
		for i := 0; i+lag < len(series); i++ {
			num += series[i] * series[i+lag]
		}
		for _, v := range series {
			den += v * v
		}
		return num / den
	}
	// Original series: strong correlation at lag 128 (a quarter of one
	// constant segment, so 75 % of pairs fall in the same segment).
	if acf(xs, 128) < 0.4 {
		t.Fatalf("test construction broken: original acf = %v", acf(xs, 128))
	}
	// Shuffled: correlation at lags beyond the block length is near zero…
	if got128 := acf(got, 128); got128 > 0.15 {
		t.Fatalf("external shuffle left correlation at lag 128: %v", got128)
	}
	// …but short-lag correlation (within blocks) survives.
	if got8 := acf(got, 8); got8 < 0.5 {
		t.Fatalf("external shuffle destroyed within-block correlation: %v", got8)
	}
}

// Property: external shuffling preserves the multiset for arbitrary block
// lengths and sizes.
func TestExternalMarginalProperty(t *testing.T) {
	f := func(seed int64, rawLen, rawBlock uint16) bool {
		n := int(rawLen%2000) + 1
		block := int(rawBlock%100) + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		got, err := External(xs, block, rng)
		if err != nil {
			return false
		}
		return equal(sortedCopy(got), sortedCopy(xs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
