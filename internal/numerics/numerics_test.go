package numerics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKahanSumExactSmall(t *testing.T) {
	if got := KahanSum([]float64{1, 2, 3, 4}); got != 10 {
		t.Fatalf("KahanSum = %v, want 10", got)
	}
	if got := KahanSum(nil); got != 0 {
		t.Fatalf("KahanSum(nil) = %v, want 0", got)
	}
}

func TestKahanSumCancellation(t *testing.T) {
	// 1 + 1e100 - 1e100 loses the 1 under naive summation.
	xs := []float64{1, 1e100, 1, -1e100}
	if got := KahanSum(xs); got != 2 {
		t.Fatalf("KahanSum = %v, want 2", got)
	}
}

func TestKahanSumManySmallOntoLarge(t *testing.T) {
	xs := make([]float64, 0, 10001)
	xs = append(xs, 1e16)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 1.0)
	}
	got := KahanSum(xs)
	want := 1e16 + 10000
	if got != want {
		t.Fatalf("KahanSum = %v, want %v", got, want)
	}
}

func TestAccumulatorMatchesKahanSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	if acc.Sum() != KahanSum(xs) {
		t.Fatalf("Accumulator %v != KahanSum %v", acc.Sum(), KahanSum(xs))
	}
}

func TestLinspaceEndpoints(t *testing.T) {
	xs := Linspace(-1, 2, 7)
	if len(xs) != 7 {
		t.Fatalf("len = %d", len(xs))
	}
	if xs[0] != -1 || xs[6] != 2 {
		t.Fatalf("endpoints %v %v", xs[0], xs[6])
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("not increasing at %d: %v", i, xs)
		}
	}
}

func TestLinspacePanicsOnShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Linspace(0, 1, 1)
}

func TestLogspace(t *testing.T) {
	xs := Logspace(0.01, 100, 5)
	if xs[0] != 0.01 || xs[4] != 100 {
		t.Fatalf("endpoints %v %v", xs[0], xs[4])
	}
	// Ratios should be constant on a log grid.
	r := xs[1] / xs[0]
	for i := 2; i < len(xs); i++ {
		if !AlmostEqual(xs[i]/xs[i-1], r, 1e-12) {
			t.Fatalf("ratio drift at %d: %v vs %v", i, xs[i]/xs[i-1], r)
		}
	}
}

func TestLogspacePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Logspace(0, 1, 3)
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestLinearFitExact(t *testing.T) {
	x := Linspace(0, 10, 11)
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3 - 2*v
	}
	a, b, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(a, 3, 1e-12) || !AlmostEqual(b, -2, 1e-12) {
		t.Fatalf("fit = (%v, %v), want (3, -2)", a, b)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error on single point")
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("want error on degenerate x")
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want error on length mismatch")
	}
}

func TestWeightedLinearFitReducesToOLS(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1.1, 2.9, 5.2, 6.8, 9.1}
	w := []float64{1, 1, 1, 1, 1}
	a1, b1, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := WeightedLinearFit(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(a1, a2, 1e-12) || !AlmostEqual(b1, b2, 1e-12) {
		t.Fatalf("(%v,%v) != (%v,%v)", a1, b1, a2, b2)
	}
}

func TestWeightedLinearFitIgnoresZeroWeightOutlier(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{0, 1, 2, 100} // outlier at the end
	w := []float64{1, 1, 1, 0}
	a, b, err := WeightedLinearFit(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(a, 0, 1e-9) || !AlmostEqual(b, 1, 1e-9) {
		t.Fatalf("fit = (%v, %v), want (0, 1)", a, b)
	}
}

func TestTrapezoidPolynomial(t *testing.T) {
	// ∫₀¹ x dx = 1/2 exactly under the trapezoid rule for linear f.
	got := Trapezoid(func(x float64) float64 { return x }, 0, 1, 10)
	if !AlmostEqual(got, 0.5, 1e-12) {
		t.Fatalf("got %v", got)
	}
	// ∫₀¹ x² dx = 1/3 approximately.
	got = Trapezoid(func(x float64) float64 { return x * x }, 0, 1, 100000)
	if !AlmostEqual(got, 1.0/3.0, 1e-8) {
		t.Fatalf("got %v", got)
	}
}

func TestMeanVar(t *testing.T) {
	m, v, err := MeanVar([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(m, 2.5, 1e-12) || !AlmostEqual(v, 1.25, 1e-12) {
		t.Fatalf("mean=%v var=%v", m, v)
	}
	if _, _, err := MeanVar(nil); err == nil {
		t.Fatal("want error on empty input")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNextPow2PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NextPow2(0)
}

// Property: Linspace is monotone and has exactly n points for any valid input.
func TestLinspaceProperty(t *testing.T) {
	f := func(lo float64, span uint8, n uint8) bool {
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.Abs(lo) > 1e100 {
			return true
		}
		hi := lo + float64(span) + 1
		m := int(n%64) + 2
		xs := Linspace(lo, hi, m)
		if len(xs) != m || xs[0] != lo || xs[m-1] != hi {
			return false
		}
		for i := 1; i < m; i++ {
			if xs[i] < xs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: KahanSum of a permutation-symmetric cancellation pattern is exact.
func TestKahanSumPairCancellationProperty(t *testing.T) {
	f := func(vals []float64) bool {
		xs := make([]float64, 0, 2*len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			xs = append(xs, v, -v)
		}
		return KahanSum(xs) == 0 || math.Abs(KahanSum(xs)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clamp always lands inside [lo, hi].
func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(x, lo, hi)
		return c >= lo && c <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1, 1e-12) {
		t.Fatal("identical values must compare equal")
	}
	if !AlmostEqual(1, 1+1e-13, 1e-12) {
		t.Fatal("tiny relative difference should pass")
	}
	if AlmostEqual(1, 2, 1e-12) {
		t.Fatal("large difference should fail")
	}
	if !AlmostEqual(0, 1e-15, 1e-12) {
		t.Fatal("both-tiny absolute comparison should pass")
	}
}
