// Package numerics provides small numerical helpers shared by the rest of
// the library: compensated summation, grid construction, simple quadrature,
// and least-squares regression.
//
// All routines operate on float64 and are deterministic. None of them
// allocate beyond their documented return values, so they are safe to use
// in inner solver loops.
package numerics

import (
	"errors"
	"math"
)

// KahanSum returns the sum of xs using Kahan–Neumaier compensated summation.
// It is accurate to within a few ulps even when the terms span many orders
// of magnitude, which happens routinely when accumulating probability mass
// near the 1e-10 loss floor used by the solver.
func KahanSum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Accumulator is a running Kahan–Neumaier compensated sum. The zero value is
// an empty accumulator ready for use.
type Accumulator struct {
	sum  float64
	comp float64
}

// Add folds x into the running sum.
func (a *Accumulator) Add(x float64) {
	t := a.sum + x
	if math.Abs(a.sum) >= math.Abs(x) {
		a.comp += (a.sum - t) + x
	} else {
		a.comp += (x - t) + a.sum
	}
	a.sum = t
}

// Sum returns the current compensated total.
func (a *Accumulator) Sum() float64 { return a.sum + a.comp }

// Linspace returns n points evenly spaced on [lo, hi], inclusive of both
// endpoints. n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("numerics: Linspace requires n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Logspace returns n points spaced evenly on a log scale between lo and hi,
// inclusive of both endpoints. lo and hi must be positive and n at least 2.
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("numerics: Logspace requires positive endpoints")
	}
	out := Linspace(math.Log(lo), math.Log(hi), n)
	for i, v := range out {
		out[i] = math.Exp(v)
	}
	out[0], out[n-1] = lo, hi
	return out
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ErrNoData is returned by statistics helpers invoked on an empty sample.
var ErrNoData = errors.New("numerics: empty data")

// LinearFit fits y ≈ a + b·x by ordinary least squares and returns the
// intercept a and slope b. It returns ErrNoData when fewer than two points
// are supplied or all x are identical.
func LinearFit(x, y []float64) (a, b float64, err error) {
	if len(x) != len(y) {
		return 0, 0, errors.New("numerics: LinearFit length mismatch")
	}
	if len(x) < 2 {
		return 0, 0, ErrNoData
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy Accumulator
	for i := range x {
		sx.Add(x[i])
		sy.Add(y[i])
		sxx.Add(x[i] * x[i])
		sxy.Add(x[i] * y[i])
	}
	den := n*sxx.Sum() - sx.Sum()*sx.Sum()
	if den == 0 {
		return 0, 0, ErrNoData
	}
	b = (n*sxy.Sum() - sx.Sum()*sy.Sum()) / den
	a = (sy.Sum() - b*sx.Sum()) / n
	return a, b, nil
}

// WeightedLinearFit fits y ≈ a + b·x by weighted least squares with weights
// w (larger weight = more trusted point). It is used by the Abry–Veitch
// wavelet estimator, whose per-scale variances differ by orders of
// magnitude.
func WeightedLinearFit(x, y, w []float64) (a, b float64, err error) {
	if len(x) != len(y) || len(x) != len(w) {
		return 0, 0, errors.New("numerics: WeightedLinearFit length mismatch")
	}
	if len(x) < 2 {
		return 0, 0, ErrNoData
	}
	var sw, swx, swy, swxx, swxy Accumulator
	for i := range x {
		sw.Add(w[i])
		swx.Add(w[i] * x[i])
		swy.Add(w[i] * y[i])
		swxx.Add(w[i] * x[i] * x[i])
		swxy.Add(w[i] * x[i] * y[i])
	}
	den := sw.Sum()*swxx.Sum() - swx.Sum()*swx.Sum()
	if den == 0 {
		return 0, 0, ErrNoData
	}
	b = (sw.Sum()*swxy.Sum() - swx.Sum()*swy.Sum()) / den
	a = (swy.Sum() - b*swx.Sum()) / sw.Sum()
	return a, b, nil
}

// Trapezoid integrates f over [lo, hi] with n trapezoids. It is used by
// tests to validate closed-form moments against direct quadrature.
func Trapezoid(f func(float64) float64, lo, hi float64, n int) float64 {
	if n < 1 {
		panic("numerics: Trapezoid requires n >= 1")
	}
	h := (hi - lo) / float64(n)
	var acc Accumulator
	acc.Add(0.5 * f(lo))
	for i := 1; i < n; i++ {
		acc.Add(f(lo + float64(i)*h))
	}
	acc.Add(0.5 * f(hi))
	return acc.Sum() * h
}

// Mean returns the arithmetic mean of xs, or an error on empty input.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	return KahanSum(xs) / float64(len(xs)), nil
}

// MeanVar returns the sample mean and the biased (divide-by-n) variance of
// xs. The biased form matches the definitions used in the paper's
// second-order statistics.
func MeanVar(xs []float64) (mean, variance float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrNoData
	}
	mean = KahanSum(xs) / float64(len(xs))
	var acc Accumulator
	for _, x := range xs {
		d := x - mean
		acc.Add(d * d)
	}
	return mean, acc.Sum() / float64(len(xs)), nil
}

// AlmostEqual reports whether a and b agree to within tol in relative terms
// (or absolute terms when both are tiny). Intended for tests and iterative
// convergence checks.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < tol {
		return diff < tol
	}
	return diff/scale < tol
}

// NextPow2 returns the smallest power of two >= n. n must be positive.
func NextPow2(n int) int {
	if n <= 0 {
		panic("numerics: NextPow2 requires positive n")
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
