package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lrd/internal/numerics"
)

func randSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func TestFiltersOrthonormal(t *testing.T) {
	for _, w := range []Wavelet{Haar(), Daubechies4()} {
		var hh, hg float64
		for i := range w.h {
			hh += w.h[i] * w.h[i]
			hg += w.h[i] * w.g(i)
		}
		if !numerics.AlmostEqual(hh, 1, 1e-12) {
			t.Errorf("%s: ||h||² = %v, want 1", w.Name(), hh)
		}
		if math.Abs(hg) > 1e-12 {
			t.Errorf("%s: <h,g> = %v, want 0", w.Name(), hg)
		}
		// Low-pass filter sums to √2; high-pass sums to 0.
		var hs, gs float64
		for i := range w.h {
			hs += w.h[i]
			gs += w.g(i)
		}
		if !numerics.AlmostEqual(hs, math.Sqrt2, 1e-12) {
			t.Errorf("%s: Σh = %v, want √2", w.Name(), hs)
		}
		if math.Abs(gs) > 1e-12 {
			t.Errorf("%s: Σg = %v, want 0", w.Name(), gs)
		}
	}
}

func TestDaubechies4VanishingMoment(t *testing.T) {
	// D4 has two vanishing moments: Σ g(i)·i = 0 as well as Σ g(i) = 0,
	// so linear signals produce (periodic-boundary-interior) zero details.
	w := Daubechies4()
	var m1 float64
	for i := range w.h {
		m1 += w.g(i) * float64(i)
	}
	if math.Abs(m1) > 1e-12 {
		t.Fatalf("first moment of g = %v, want 0", m1)
	}
}

func TestStepValidation(t *testing.T) {
	w := Daubechies4()
	if _, _, err := w.Step([]float64{1, 2}); err == nil {
		t.Fatal("want error: shorter than filter")
	}
	if _, _, err := w.Step([]float64{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("want error: odd length")
	}
}

func TestPerfectReconstructionOneLevel(t *testing.T) {
	for _, w := range []Wavelet{Haar(), Daubechies4()} {
		x := randSeries(64, 10)
		a, d, err := w.Step(x)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != 32 || len(d) != 32 {
			t.Fatalf("%s: wrong output lengths", w.Name())
		}
		y, err := w.InverseStep(a, d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-10 {
				t.Fatalf("%s: reconstruction error at %d: %v vs %v", w.Name(), i, x[i], y[i])
			}
		}
	}
}

func TestPerfectReconstructionMultiLevel(t *testing.T) {
	for _, w := range []Wavelet{Haar(), Daubechies4()} {
		x := randSeries(256, 11)
		dec, err := Transform(x, w, 5)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Levels() != 5 {
			t.Fatalf("levels = %d", dec.Levels())
		}
		y, err := Inverse(dec, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-9 {
				t.Fatalf("%s: multilevel reconstruction error at %d", w.Name(), i)
			}
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	// Orthonormal DWT preserves the signal's energy (Parseval).
	for _, w := range []Wavelet{Haar(), Daubechies4()} {
		x := randSeries(512, 12)
		var ex float64
		for _, v := range x {
			ex += v * v
		}
		dec, err := Transform(x, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		var ec float64
		for _, d := range dec.Details {
			for _, v := range d {
				ec += v * v
			}
		}
		for _, v := range dec.Approx {
			ec += v * v
		}
		if !numerics.AlmostEqual(ex, ec, 1e-9) {
			t.Fatalf("%s: energy %v -> %v", w.Name(), ex, ec)
		}
	}
}

func TestHaarKnownValues(t *testing.T) {
	// Haar on [1,3]: approx = (1+3)/√2 = 2√2, detail = (1−3)/√2 = −√2.
	a, d, err := Haar().Step([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(a[0], 2*math.Sqrt2, 1e-12) {
		t.Fatalf("approx = %v", a[0])
	}
	if !numerics.AlmostEqual(d[0], -math.Sqrt2, 1e-12) {
		t.Fatalf("detail = %v", d[0])
	}
}

func TestConstantSignalHasZeroDetails(t *testing.T) {
	for _, w := range []Wavelet{Haar(), Daubechies4()} {
		x := make([]float64, 64)
		for i := range x {
			x[i] = 5
		}
		dec, err := Transform(x, w, 3)
		if err != nil {
			t.Fatal(err)
		}
		for j, d := range dec.Details {
			for _, v := range d {
				if math.Abs(v) > 1e-10 {
					t.Fatalf("%s: nonzero detail %v at level %d for constant input", w.Name(), v, j+1)
				}
			}
		}
	}
}

func TestMaxLevels(t *testing.T) {
	if got := MaxLevels(256, Haar()); got != 8 {
		t.Fatalf("MaxLevels(256, haar) = %d, want 8", got)
	}
	// D4 needs at least 4 samples to step: 256 can be stepped down to an
	// approximation of length 2 (the last step consumes a length-4 signal).
	if got := MaxLevels(256, Daubechies4()); got != 7 {
		t.Fatalf("MaxLevels(256, db4) = %d, want 7", got)
	}
	if got := MaxLevels(3, Daubechies4()); got != 0 {
		t.Fatalf("MaxLevels(3, db4) = %d, want 0", got)
	}
}

func TestTransformValidation(t *testing.T) {
	if _, err := Transform(nil, Haar(), 1); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := Transform([]float64{1, 2, 3}, Daubechies4(), 0); err == nil {
		t.Fatal("want error when too short for any level")
	}
	if _, err := Transform(randSeries(8, 1), Haar(), 5); err == nil {
		t.Fatal("want error when requesting too many levels")
	}
}

func TestInverseStepValidation(t *testing.T) {
	w := Haar()
	if _, err := w.InverseStep([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want error on length mismatch")
	}
	if _, err := w.InverseStep(nil, nil); err == nil {
		t.Fatal("want error on empty input")
	}
}

func TestDetailEnergies(t *testing.T) {
	x := randSeries(128, 13)
	dec, err := Transform(x, Haar(), 4)
	if err != nil {
		t.Fatal(err)
	}
	es := DetailEnergies(dec)
	if len(es) != 4 {
		t.Fatalf("energies = %d, want 4", len(es))
	}
	for j, e := range es {
		if e <= 0 {
			t.Fatalf("level %d energy %v, want > 0", j+1, e)
		}
	}
}

// Property: perfect reconstruction holds for random inputs of random
// power-of-two lengths.
func TestReconstructionProperty(t *testing.T) {
	f := func(seed int64, rawLen uint8, useD4 bool) bool {
		n := 8 << (rawLen % 5) // 8..128
		w := Haar()
		if useD4 {
			w = Daubechies4()
		}
		x := randSeries(n, seed)
		dec, err := Transform(x, w, 0)
		if err != nil {
			return false
		}
		y, err := Inverse(dec, w)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
