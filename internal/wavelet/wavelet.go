// Package wavelet implements the discrete wavelet transform (DWT) with
// periodic boundary handling for the Haar and Daubechies-4 wavelets. It is
// the substrate for the Abry–Veitch wavelet estimator of the Hurst
// parameter (package lrdest), the estimator the paper cites for its
// H ≈ 0.83 (MTV) and H ≈ 0.9 (Bellcore) measurements.
package wavelet

import (
	"errors"
	"fmt"
	"math"
)

// Wavelet is an orthonormal wavelet defined by its scaling (low-pass)
// filter h; the wavelet (high-pass) filter is the quadrature mirror
// g[i] = (−1)^i · h[L−1−i].
type Wavelet struct {
	name string
	h    []float64
}

// Name returns the wavelet's name.
func (w Wavelet) Name() string { return w.name }

// Haar returns the Haar wavelet (Daubechies-1).
func Haar() Wavelet {
	s := 1 / math.Sqrt2
	return Wavelet{name: "haar", h: []float64{s, s}}
}

// Daubechies4 returns the Daubechies wavelet with two vanishing moments
// (four filter taps). Its extra vanishing moment makes the derived Hurst
// estimator robust to linear trends in the data.
func Daubechies4() Wavelet {
	r3 := math.Sqrt(3)
	d := 4 * math.Sqrt2
	return Wavelet{name: "db4", h: []float64{
		(1 + r3) / d, (3 + r3) / d, (3 - r3) / d, (1 - r3) / d,
	}}
}

// g returns the high-pass filter tap i.
func (w Wavelet) g(i int) float64 {
	v := w.h[len(w.h)-1-i]
	if i%2 == 1 {
		return -v
	}
	return v
}

// Step performs one level of the periodic DWT on x (whose length must be
// even and at least the filter length), returning the approximation and
// detail coefficient vectors, each of length len(x)/2.
func (w Wavelet) Step(x []float64) (approx, detail []float64, err error) {
	n := len(x)
	if n < len(w.h) || n%2 != 0 {
		return nil, nil, fmt.Errorf("wavelet: step needs even length >= %d, got %d", len(w.h), n)
	}
	half := n / 2
	approx = make([]float64, half)
	detail = make([]float64, half)
	for k := 0; k < half; k++ {
		var a, d float64
		for i := range w.h {
			xi := x[(2*k+i)%n]
			a += w.h[i] * xi
			d += w.g(i) * xi
		}
		approx[k] = a
		detail[k] = d
	}
	return approx, detail, nil
}

// InverseStep reconstructs the signal from one level of approximation and
// detail coefficients (periodic boundary).
func (w Wavelet) InverseStep(approx, detail []float64) ([]float64, error) {
	if len(approx) != len(detail) {
		return nil, errors.New("wavelet: approx/detail length mismatch")
	}
	n := 2 * len(approx)
	if n == 0 {
		return nil, errors.New("wavelet: empty coefficients")
	}
	out := make([]float64, n)
	for k := 0; k < len(approx); k++ {
		for i := range w.h {
			out[(2*k+i)%n] += w.h[i]*approx[k] + w.g(i)*detail[k]
		}
	}
	return out, nil
}

// Decomposition is a multi-level DWT: Details[j] holds the detail
// coefficients of octave j+1 (scale 2^(j+1)), Approx the final coarse
// approximation.
type Decomposition struct {
	Details [][]float64
	Approx  []float64
}

// Levels returns the number of decomposition levels.
func (d Decomposition) Levels() int { return len(d.Details) }

// Transform computes a levels-deep DWT of x. The input length must be
// divisible by 2^levels and the coarsest level must still be at least the
// filter length. Pass levels <= 0 to decompose as deeply as possible.
func Transform(x []float64, w Wavelet, levels int) (Decomposition, error) {
	if len(x) == 0 {
		return Decomposition{}, errors.New("wavelet: empty input")
	}
	if levels <= 0 {
		levels = MaxLevels(len(x), w)
		if levels == 0 {
			return Decomposition{}, fmt.Errorf("wavelet: input of length %d too short for %s", len(x), w.name)
		}
	}
	cur := append([]float64(nil), x...)
	var details [][]float64
	for j := 0; j < levels; j++ {
		a, d, err := w.Step(cur)
		if err != nil {
			return Decomposition{}, fmt.Errorf("wavelet: level %d: %w", j+1, err)
		}
		details = append(details, d)
		cur = a
	}
	return Decomposition{Details: details, Approx: cur}, nil
}

// Inverse reconstructs the original signal from a Decomposition.
func Inverse(dec Decomposition, w Wavelet) ([]float64, error) {
	cur := dec.Approx
	for j := len(dec.Details) - 1; j >= 0; j-- {
		var err error
		cur, err = w.InverseStep(cur, dec.Details[j])
		if err != nil {
			return nil, fmt.Errorf("wavelet: inverse level %d: %w", j+1, err)
		}
	}
	return cur, nil
}

// MaxLevels returns the deepest decomposition possible for an input of
// length n: each level halves the length, which must stay even and at
// least the filter length.
func MaxLevels(n int, w Wavelet) int {
	levels := 0
	for n >= len(w.h) && n%2 == 0 {
		n /= 2
		levels++
	}
	return levels
}

// DetailEnergies returns μ_j = (1/n_j)·Σ_k d_{j,k}², the mean squared
// detail coefficient per octave — the statistic the Abry–Veitch estimator
// regresses against the octave index.
func DetailEnergies(dec Decomposition) []float64 {
	out := make([]float64, len(dec.Details))
	for j, d := range dec.Details {
		var acc float64
		for _, v := range d {
			acc += v * v
		}
		out[j] = acc / float64(len(d))
	}
	return out
}
