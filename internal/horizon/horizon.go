// Package horizon implements the paper's correlation-horizon (CH) analysis
// (§IV): the time scale beyond which correlation in the arrival process no
// longer affects the loss rate of a finite-buffer queue.
//
// Two estimators are provided. Analytic implements Eq. (26), the paper's
// closed form derived from the buffer-resetting argument: the CH is the
// time over which the probability of the buffer neither emptying nor
// overflowing (hence "remembering" the past) stays non-negligible,
//
//	T_CH = B·μ / (2√2·σ_T·σ_λ·erfinv(p))
//
// where μ, σ_T are the mean and standard deviation of the interarrival
// time, σ_λ the standard deviation of the marginal rate, B the buffer, and
// p the residual no-reset probability. FromCurve detects the horizon
// empirically from a loss-vs-cutoff curve as the smallest cutoff whose loss
// reaches a (1−tol) fraction of the plateau value, which is how the paper
// reads Figs. 4, 5, 7, 8. LinearScaling then quantifies the paper's
// Fig. 14 observation that T_CH grows linearly with B.
package horizon

import (
	"errors"
	"fmt"
	"math"

	"lrd/internal/numerics"
	"lrd/internal/solver"
)

// Analytic evaluates Eq. (26). p is the probability that no reset occurs
// over the horizon (the paper takes it "very small"; 0.05 is a reasonable
// default). The interarrival variance must be finite, which holds for any
// finite cutoff lag; for an untruncated Pareto with α < 2 it is infinite
// and an error is returned (the resetting argument's CLT step needs a
// finite variance).
func Analytic(m solver.Model, p float64) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, fmt.Errorf("horizon: no-reset probability %v outside (0, 1)", p)
	}
	mean := m.Interarrival.Mean()
	varT := secondMomentOf(m) - mean*mean
	if math.IsInf(varT, 1) || math.IsNaN(varT) {
		return 0, errors.New("horizon: interarrival variance is infinite (untruncated heavy tail); Eq. 26 needs a finite cutoff")
	}
	sigmaT := math.Sqrt(varT)
	sigmaL := math.Sqrt(m.Marginal.Variance())
	if sigmaT == 0 || sigmaL == 0 {
		return 0, errors.New("horizon: degenerate model (zero variance)")
	}
	return m.Buffer * mean / (2 * math.Sqrt2 * sigmaT * sigmaL * math.Erfinv(p)), nil
}

// secondMomentOf computes E[T²] = 2∫₀^∞ t·Pr{T>t} dt from the interarrival
// law's partial-mean function: integrating IntegralCCDF by parts gives
// E[T²] = 2∫₀^∞ IntegralCCDF(a) da, evaluated adaptively. Known laws with
// closed forms short-circuit the quadrature.
func secondMomentOf(m solver.Model) float64 {
	type secondMomenter interface{ SecondMoment() float64 }
	if sm, ok := m.Interarrival.(secondMomenter); ok {
		return sm.SecondMoment()
	}
	upper := m.Interarrival.Upper()
	if math.IsInf(upper, 1) {
		// Truncate where the partial mean is negligible.
		upper = 1.0
		for m.Interarrival.IntegralCCDF(upper) > 1e-12*m.Interarrival.Mean() && upper < 1e9 {
			upper *= 2
		}
	}
	f := func(t float64) float64 { return t * m.Interarrival.CCDF(t) }
	return 2 * numerics.Trapezoid(f, 0, upper, 200000)
}

// FromCurve locates the empirical correlation horizon on a loss-vs-cutoff
// curve: the smallest cutoff whose loss is within tol (relative) of the
// plateau, where the plateau is the loss at the largest cutoff. cutoffs
// must be strictly increasing; losses non-negative with a positive plateau.
// tol of 0.1 reads "loss within 10 % of its limiting value".
func FromCurve(cutoffs, losses []float64, tol float64) (float64, error) {
	if len(cutoffs) != len(losses) || len(cutoffs) < 2 {
		return 0, errors.New("horizon: need at least two (cutoff, loss) points")
	}
	if !(tol > 0 && tol < 1) {
		return 0, fmt.Errorf("horizon: tol %v outside (0, 1)", tol)
	}
	for i := 1; i < len(cutoffs); i++ {
		if cutoffs[i] <= cutoffs[i-1] {
			return 0, errors.New("horizon: cutoffs must be strictly increasing")
		}
	}
	plateau := losses[len(losses)-1]
	if plateau <= 0 {
		return 0, errors.New("horizon: plateau loss is zero; no horizon to detect")
	}
	for i, l := range losses {
		if l >= plateau*(1-tol) {
			return cutoffs[i], nil
		}
	}
	return cutoffs[len(cutoffs)-1], nil
}

// ScalingFit reports how the horizon scales with buffer size: it fits
// log T_CH ≈ a + e·log B and returns the exponent e and the ratio γ̄ =
// mean(B/T_CH). The paper's Fig. 14 finding is e ≈ 1 (linear scaling) with
// the plateau running parallel to B/T_c = γ.
type ScalingFit struct {
	Exponent float64 // log-log slope e
	Gamma    float64 // mean of B_i / T_CH,i (meaningful when e ≈ 1)
}

// LinearScaling fits the horizon-vs-buffer relation. Both slices must be
// positive and of equal length >= 2.
func LinearScaling(buffers, horizons []float64) (ScalingFit, error) {
	if len(buffers) != len(horizons) || len(buffers) < 2 {
		return ScalingFit{}, errors.New("horizon: need matching buffer/horizon slices of length >= 2")
	}
	logb := make([]float64, len(buffers))
	logh := make([]float64, len(buffers))
	var ratio numerics.Accumulator
	for i := range buffers {
		if !(buffers[i] > 0) || !(horizons[i] > 0) {
			return ScalingFit{}, fmt.Errorf("horizon: non-positive point (%v, %v)", buffers[i], horizons[i])
		}
		logb[i] = math.Log(buffers[i])
		logh[i] = math.Log(horizons[i])
		ratio.Add(buffers[i] / horizons[i])
	}
	_, slope, err := numerics.LinearFit(logb, logh)
	if err != nil {
		return ScalingFit{}, err
	}
	return ScalingFit{
		Exponent: slope,
		Gamma:    ratio.Sum() / float64(len(buffers)),
	}, nil
}
