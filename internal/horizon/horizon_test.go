package horizon

import (
	"math"
	"testing"

	"lrd/internal/dist"
	"lrd/internal/numerics"
	"lrd/internal/solver"
)

func model(t *testing.T, cutoff, buffer float64) solver.Model {
	t.Helper()
	m := dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	iv := dist.TruncatedPareto{Theta: 0.05, Alpha: 1.4, Cutoff: cutoff}
	mod, err := solver.NewModel(m, iv, 1.25, buffer)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestAnalyticBasics(t *testing.T) {
	m := model(t, 2, 0.5)
	ch, err := Analytic(m, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ch <= 0 {
		t.Fatalf("CH = %v, want > 0", ch)
	}
	// Verbatim Eq. 26 check.
	iv := m.Interarrival.(dist.TruncatedPareto)
	mean := iv.Mean()
	sigT := math.Sqrt(iv.Variance())
	sigL := math.Sqrt(m.Marginal.Variance())
	want := m.Buffer * mean / (2 * math.Sqrt2 * sigT * sigL * math.Erfinv(0.05))
	if !numerics.AlmostEqual(ch, want, 1e-9) {
		t.Fatalf("CH = %v, want %v", ch, want)
	}
}

func TestAnalyticLinearInBuffer(t *testing.T) {
	// Eq. 26 is exactly linear in B — the paper's headline scaling.
	a, err := Analytic(model(t, 2, 0.5), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analytic(model(t, 2, 1.0), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(b/a, 2, 1e-9) {
		t.Fatalf("doubling B should double CH: ratio = %v", b/a)
	}
}

func TestAnalyticValidation(t *testing.T) {
	m := model(t, 2, 0.5)
	for _, p := range []float64{0, 1, -0.1, 2} {
		if _, err := Analytic(m, p); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
	// Untruncated Pareto with α < 2 has infinite interarrival variance.
	if _, err := Analytic(model(t, math.Inf(1), 0.5), 0.05); err == nil {
		t.Fatal("want error for infinite interarrival variance")
	}
	// Degenerate marginal.
	deg, err := solver.NewModel(
		dist.MustMarginal([]float64{2}, []float64{1}),
		dist.TruncatedPareto{Theta: 0.05, Alpha: 1.4, Cutoff: 2}, 2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analytic(deg, 0.05); err == nil {
		t.Fatal("want error for zero-variance marginal")
	}
}

func TestAnalyticHyperexponentialUsesClosedForm(t *testing.T) {
	h, err := dist.NewHyperexponential([]float64{0.5, 0.5}, []float64{0.05, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := solver.NewModel(dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5}), h, 1.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Analytic(m, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	mean := h.Mean()
	sigT := math.Sqrt(h.Variance())
	want := m.Buffer * mean / (2 * math.Sqrt2 * sigT * math.Sqrt(m.Marginal.Variance()) * math.Erfinv(0.05))
	if !numerics.AlmostEqual(ch, want, 1e-9) {
		t.Fatalf("CH = %v, want %v", ch, want)
	}
}

func TestFromCurveDetectsKnee(t *testing.T) {
	// A saturating curve: loss rises then flattens at 1e-3 after Tc = 4.
	cutoffs := []float64{0.5, 1, 2, 4, 8, 16, 32}
	losses := []float64{1e-6, 1e-5, 2e-4, 9.2e-4, 9.9e-4, 1e-3, 1e-3}
	ch, err := FromCurve(cutoffs, losses, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ch != 4 {
		t.Fatalf("CH = %v, want 4 (first point within 10%% of the plateau)", ch)
	}
	// A stricter tolerance moves the detected horizon right.
	ch2, err := FromCurve(cutoffs, losses, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if ch2 < ch {
		t.Fatalf("stricter tol gave smaller horizon: %v < %v", ch2, ch)
	}
}

func TestFromCurveValidation(t *testing.T) {
	if _, err := FromCurve([]float64{1}, []float64{1}, 0.1); err == nil {
		t.Fatal("want error on single point")
	}
	if _, err := FromCurve([]float64{1, 2}, []float64{1}, 0.1); err == nil {
		t.Fatal("want error on length mismatch")
	}
	if _, err := FromCurve([]float64{2, 1}, []float64{1, 1}, 0.1); err == nil {
		t.Fatal("want error on non-increasing cutoffs")
	}
	if _, err := FromCurve([]float64{1, 2}, []float64{0, 0}, 0.1); err == nil {
		t.Fatal("want error on zero plateau")
	}
	if _, err := FromCurve([]float64{1, 2}, []float64{1, 2}, 0); err == nil {
		t.Fatal("want error on zero tol")
	}
}

func TestLinearScalingRecoversExponent(t *testing.T) {
	// Horizons exactly proportional to buffers: exponent 1, gamma = 1/k.
	buffers := []float64{0.1, 0.2, 0.5, 1, 2}
	horizons := make([]float64, len(buffers))
	for i, b := range buffers {
		horizons[i] = 3 * b
	}
	fit, err := LinearScaling(buffers, horizons)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(fit.Exponent, 1, 1e-9) {
		t.Fatalf("exponent = %v, want 1", fit.Exponent)
	}
	if !numerics.AlmostEqual(fit.Gamma, 1.0/3.0, 1e-9) {
		t.Fatalf("gamma = %v, want 1/3", fit.Gamma)
	}
	// Quadratic scaling is detected as exponent 2.
	for i, b := range buffers {
		horizons[i] = b * b
	}
	fit, err = LinearScaling(buffers, horizons)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(fit.Exponent, 2, 1e-9) {
		t.Fatalf("exponent = %v, want 2", fit.Exponent)
	}
}

func TestLinearScalingValidation(t *testing.T) {
	if _, err := LinearScaling([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error on single point")
	}
	if _, err := LinearScaling([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Fatal("want error on non-positive buffer")
	}
}
