package horizon

import (
	"errors"
	"fmt"
	"math"

	"lrd/internal/numerics"
	"lrd/internal/solver"
)

// CriticalTimeScale computes the large-deviations analogue of the
// correlation horizon that Ryu & Elwalid derive ("The Importance of
// Long-Range Dependence of VBR Video Traffic in ATM Traffic Engineering",
// SIGCOMM '96), which the paper's §IV discusses as the independent route
// to the same conclusion. For an infinite-buffer queue with service rate c
// fed by a stationary source, the overflow probability at level B is
// governed (in the many-sources/large-buffer regime) by the variance of
// the cumulative arrivals over windows of length t:
//
//	Pr{Q > B} ≈ exp( −inf_t ((c−λ̄)t + B)² / (2·v(t)) )
//
// where v(t) = Var[A(0,t)] is the cumulative-arrival variance. The
// minimizing window t* is the *critical time scale*: correlation at lags
// beyond t* does not influence the overflow estimate. For the paper's
// renewal fluid source, v(t) = 2·σ²·∫₀ᵗ (t−u)·r(u) du with r the
// autocorrelation (Eq. 7), evaluated here by quadrature.
//
// The function returns the critical time scale t* and the associated
// exponent estimate. The search runs over (0, tMax]; pass the queueing
// system and a horizon comfortably beyond the expected t*.
func CriticalTimeScale(m solver.Model, buffer float64, tMax float64) (tStar, exponent float64, err error) {
	if !(buffer > 0) {
		return 0, 0, errors.New("horizon: buffer must be positive")
	}
	if !(tMax > 0) || math.IsInf(tMax, 1) {
		return 0, 0, errors.New("horizon: tMax must be finite and positive")
	}
	type residual interface{ ResidualCCDF(float64) float64 }
	rc, ok := m.Interarrival.(residual)
	if !ok {
		return 0, 0, errors.New("horizon: interarrival law does not expose ResidualCCDF")
	}
	drift := m.ServiceRate - m.Marginal.Mean()
	if drift <= 0 {
		return 0, 0, fmt.Errorf("horizon: utilization %v >= 1", m.Utilization())
	}
	sigma2 := m.Marginal.Variance()
	if sigma2 <= 0 {
		return 0, 0, errors.New("horizon: degenerate marginal")
	}
	// Cumulative-arrival variance v(t) = 2σ²∫₀ᵗ (t−u) r(u) du, computed on
	// a shared grid by incremental Simpson-like accumulation. We tabulate
	// I0(t) = ∫ r and I1(t) = ∫ u·r(u) du so v(t) = 2σ²(t·I0(t) − I1(t)).
	const steps = 4096
	dt := tMax / steps
	i0 := make([]float64, steps+1)
	i1 := make([]float64, steps+1)
	var a0, a1 numerics.Accumulator
	prevR := rc.ResidualCCDF(0)
	prevU := 0.0
	for k := 1; k <= steps; k++ {
		u := float64(k) * dt
		r := rc.ResidualCCDF(u)
		a0.Add(0.5 * (prevR + r) * dt)
		a1.Add(0.5 * (prevU*prevR + u*r) * dt)
		i0[k] = a0.Sum()
		i1[k] = a1.Sum()
		prevR, prevU = r, u
	}
	objective := func(k int) float64 {
		t := float64(k) * dt
		v := 2 * sigma2 * (t*i0[k] - i1[k])
		if v <= 0 {
			return math.Inf(1)
		}
		num := drift*t + buffer
		return num * num / (2 * v)
	}
	bestK, bestVal := 1, objective(1)
	for k := 2; k <= steps; k++ {
		if v := objective(k); v < bestVal {
			bestK, bestVal = k, v
		}
	}
	if bestK == steps {
		return 0, 0, fmt.Errorf("horizon: critical time scale exceeds tMax = %v; increase the horizon", tMax)
	}
	return float64(bestK) * dt, bestVal, nil
}
