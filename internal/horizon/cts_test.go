package horizon

import (
	"math"
	"testing"

	"lrd/internal/dist"
	"lrd/internal/solver"
)

func ctsModel(t *testing.T, cutoff, buffer float64) (solver.Model, float64) {
	t.Helper()
	m := dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	iv := dist.TruncatedPareto{Theta: 0.05, Alpha: 1.4, Cutoff: cutoff}
	mod, err := solver.NewModel(m, iv, 1.25, buffer)
	if err != nil {
		t.Fatal(err)
	}
	return mod, buffer
}

func TestCriticalTimeScaleBasics(t *testing.T) {
	mod, b := ctsModel(t, 5, 0.4)
	ts, exp, err := CriticalTimeScale(mod, b, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ts <= 0 || math.IsInf(ts, 0) {
		t.Fatalf("t* = %v", ts)
	}
	if exp <= 0 {
		t.Fatalf("exponent = %v, want > 0 (stable queue)", exp)
	}
}

func TestCriticalTimeScaleGrowsWithBuffer(t *testing.T) {
	// Like the correlation horizon, the critical time scale must grow with
	// the buffer size.
	prev := 0.0
	for _, b := range []float64{0.1, 0.4, 1.6} {
		mod, _ := ctsModel(t, 5, b)
		ts, _, err := CriticalTimeScale(mod, b, 200)
		if err != nil {
			t.Fatal(err)
		}
		if ts <= prev {
			t.Fatalf("t* not increasing in buffer: %v at B=%v (prev %v)", ts, b, prev)
		}
		prev = ts
	}
}

func TestCriticalTimeScaleExponentDecreasesWithBuffer(t *testing.T) {
	// Larger buffers push the overflow exponent up (less overflow), i.e.
	// exp(−exponent) decreases.
	prev := 0.0
	for _, b := range []float64{0.1, 0.4, 1.6} {
		mod, _ := ctsModel(t, 5, b)
		_, exp, err := CriticalTimeScale(mod, b, 200)
		if err != nil {
			t.Fatal(err)
		}
		if exp <= prev {
			t.Fatalf("exponent not increasing in buffer: %v at B=%v", exp, b)
		}
		prev = exp
	}
}

func TestCriticalTimeScaleMoreCorrelationLongerScale(t *testing.T) {
	// Extending the cutoff extends the arrival variance growth and with it
	// the critical time scale (until the cutoff stops binding).
	short, _ := ctsModel(t, 0.5, 0.8)
	long, _ := ctsModel(t, 20, 0.8)
	tsShort, _, err := CriticalTimeScale(short, 0.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	tsLong, _, err := CriticalTimeScale(long, 0.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tsLong < tsShort {
		t.Fatalf("t* shrank with more correlation: %v vs %v", tsLong, tsShort)
	}
}

func TestCriticalTimeScaleValidation(t *testing.T) {
	mod, _ := ctsModel(t, 5, 0.4)
	if _, _, err := CriticalTimeScale(mod, 0, 10); err == nil {
		t.Fatal("want error on zero buffer")
	}
	if _, _, err := CriticalTimeScale(mod, 0.4, math.Inf(1)); err == nil {
		t.Fatal("want error on infinite tMax")
	}
	// Overloaded system.
	over := mod
	over.ServiceRate = 0.5
	if _, _, err := CriticalTimeScale(over, 0.4, 10); err == nil {
		t.Fatal("want error on utilization >= 1")
	}
	// Degenerate marginal.
	deg, err := solver.NewModel(dist.MustMarginal([]float64{1}, []float64{1}),
		dist.TruncatedPareto{Theta: 0.05, Alpha: 1.4, Cutoff: 5}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CriticalTimeScale(deg, 1, 10); err == nil {
		t.Fatal("want error on zero-variance marginal")
	}
	// tMax too small to contain t*.
	if _, _, err := CriticalTimeScale(mod, 1000, 0.1); err == nil {
		t.Fatal("want error when t* exceeds tMax")
	}
}
