// Package fit is the trace→model pipeline: it turns a binned rate trace
// into the paper's fitted queue description — §III's recipe end to end
// (histogram marginal, mean-epoch θ calibration, Hurst estimation with
// every estimator reporting independently) — packaged as the /v1/fit wire
// response so the lrdfit CLI and the lrdserve endpoint share one
// implementation. The output plugs directly into a solve or provision
// request; Reference and Realize rebuild the solvable source locally.
package fit

import (
	"fmt"
	"math"

	"lrd/internal/api"
	"lrd/internal/dist"
	"lrd/internal/fluid"
	"lrd/internal/lrdest"
	"lrd/internal/source"
	"lrd/internal/traces"
)

// DefaultBins is the paper's histogram resolution ("We set the number of
// bins to 50 in all experiments").
const DefaultBins = 50

// Hurst estimates are clamped into this range before deriving α = 3−2H:
// the fluid model's tail index must stay inside (1, 2). The raw estimate is
// reported unclamped so the clamp is always visible.
const (
	MinHurst = 0.51
	MaxHurst = 0.99
)

// Options tunes the fit.
type Options struct {
	// Bins is the histogram resolution for the marginal and the mean-epoch
	// extraction. 0 means DefaultBins.
	Bins int
	// Estimator picks the Hurst estimate: aggvar, rs, whittle, wavelet,
	// gph, or "" / "median" for the median of the estimators that
	// succeeded.
	Estimator string
	// Hurst, when > 0, overrides estimation (estimates are still computed
	// and reported as diagnostics).
	Hurst float64
	// Cutoff is the correlation cutoff lag Tc in seconds carried by the
	// fitted source; 0 means infinite.
	Cutoff float64
	// Model is the registry model the fitted spec targets (zero value =
	// fluid).
	Model source.Spec
}

// Result is a completed fit: the wire response plus the parsed ingredients
// a local caller needs to rebuild the solvable source without re-parsing
// the wire marginal.
type Result struct {
	Response  api.FitResponse
	Marginal  dist.Marginal
	MeanEpoch float64
	// Hurst is the clamped estimate the model uses; Cutoff the resolved
	// lag (math.Inf(1) when the request said infinite).
	Hurst  float64
	Cutoff float64
}

// Reference builds the fitted cutoff-Pareto fluid source.
func (r *Result) Reference() (fluid.Source, error) {
	return fluid.FromTraceStats(r.Marginal, r.Hurst, r.MeanEpoch, r.Cutoff)
}

// Realize builds the fitted source transformed into the target registry
// model (Options.Model; fluid when none was given).
func (r *Result) Realize() (source.Source, error) {
	ref, err := r.Reference()
	if err != nil {
		return nil, err
	}
	return r.Response.Model.Realize(ref)
}

// Trace fits the model ingredients to a trace. Estimation failures carry
// api.CodeEstimation; everything else is a bad-request-shaped input error.
func Trace(tr traces.Trace, opts Options) (*Result, error) {
	if len(tr.Rates) == 0 {
		return nil, api.Errorf(api.CodeBadRequest, "empty trace")
	}
	if tr.BinWidth <= 0 {
		return nil, api.Errorf(api.CodeBadRequest, "trace bin width must be positive, got %g", tr.BinWidth)
	}
	bins := opts.Bins
	if bins <= 0 {
		bins = DefaultBins
	}
	marg, err := tr.Marginal(bins)
	if err != nil {
		return nil, api.Errorf(api.CodeEstimation, "fitting marginal: %v", err)
	}
	epoch, err := tr.MeanEpoch(bins)
	if err != nil {
		return nil, api.Errorf(api.CodeEstimation, "extracting mean epoch: %v", err)
	}

	est := lrdest.EstimateAll(tr.Rates)
	raw, chosen, err := chooseHurst(est, opts)
	if err != nil {
		return nil, err
	}
	h := math.Min(math.Max(raw, MinHurst), MaxHurst)
	alpha := dist.AlphaFromHurst(h)
	theta, err := dist.CalibrateTheta(alpha, epoch)
	if err != nil {
		return nil, api.Errorf(api.CodeEstimation, "calibrating theta from mean epoch %g s: %v", epoch, err)
	}

	cutoff := opts.Cutoff
	if cutoff < 0 {
		return nil, api.Errorf(api.CodeBadRequest, "cutoff must be >= 0, got %g", cutoff)
	}
	resolved := cutoff
	if resolved == 0 {
		resolved = math.Inf(1)
	}

	estimates := make(map[string]api.EstimatorResult, 5)
	for _, ne := range est.ByName() {
		if ne.Err != nil {
			estimates[ne.Name] = api.EstimatorResult{Error: ne.Err.Error()}
			continue
		}
		estimates[ne.Name] = api.EstimatorResult{Hurst: ne.H}
	}

	return &Result{
		Response: api.FitResponse{
			Samples:   len(tr.Rates),
			BinWidth:  tr.BinWidth,
			MeanRate:  tr.MeanRate(),
			MeanEpoch: epoch,
			Hurst:     h,
			RawHurst:  raw,
			Estimator: chosen,
			Alpha:     alpha,
			Theta:     theta,
			Cutoff:    cutoff,
			Marginal:  source.FormatMarginal(marg),
			Model:     opts.Model,
			Estimates: estimates,
		},
		Marginal:  marg,
		MeanEpoch: epoch,
		Hurst:     h,
		Cutoff:    resolved,
	}, nil
}

// chooseHurst resolves the estimate the fit uses: an explicit override, a
// named estimator's slot, or the median of the estimators that succeeded.
func chooseHurst(est lrdest.Estimates, opts Options) (raw float64, chosen string, err error) {
	if opts.Hurst != 0 {
		if !(opts.Hurst > 0 && opts.Hurst < 1) {
			return 0, "", api.Errorf(api.CodeBadRequest, "hurst override %g outside (0, 1)", opts.Hurst)
		}
		return opts.Hurst, "override", nil
	}
	switch opts.Estimator {
	case "", "median":
		med, merr := est.Median()
		if merr != nil {
			return 0, "", api.Errorf(api.CodeEstimation, "%v", merr)
		}
		return med, "median", nil
	default:
		for _, ne := range est.ByName() {
			if ne.Name != opts.Estimator {
				continue
			}
			if ne.Err != nil {
				return 0, "", api.Errorf(api.CodeEstimation, "estimator %s: %v", ne.Name, ne.Err)
			}
			return ne.H, ne.Name, nil
		}
		return 0, "", api.Errorf(api.CodeBadRequest, "unknown estimator %q (aggvar, rs, whittle, wavelet, gph, median)", opts.Estimator)
	}
}

// FromRequest adapts a /v1/fit wire request into a trace and options. The
// returned error is already typed for the wire.
func FromRequest(req api.FitRequest) (traces.Trace, Options, error) {
	if len(req.Rates) == 0 {
		return traces.Trace{}, Options{}, api.Errorf(api.CodeBadRequest, "rates is required")
	}
	if req.BinWidth <= 0 {
		return traces.Trace{}, Options{}, api.Errorf(api.CodeBadRequest, "bin_width must be positive, got %g", req.BinWidth)
	}
	for i, v := range req.Rates {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return traces.Trace{}, Options{}, api.Errorf(api.CodeBadRequest, "non-finite rate at index %d", i)
		}
		if v < 0 {
			return traces.Trace{}, Options{}, api.Errorf(api.CodeBadRequest, "negative rate %g at index %d", v, i)
		}
	}
	tr := traces.Trace{Name: "wire", BinWidth: req.BinWidth, Rates: req.Rates}
	opts := Options{
		Bins:      req.Bins,
		Estimator: req.Estimator,
		Hurst:     req.Hurst,
		Cutoff:    req.Cutoff,
		Model:     req.Model,
	}
	return tr, opts, nil
}

// String renders the fit like the lrdtrace report (one line per fact), for
// the CLI's human output.
func (r *Result) String() string {
	f := r.Response
	return fmt.Sprintf("samples %d × %.4g s, mean rate %.6g, mean epoch %.4g s, H=%.3f (%s, raw %.3f), alpha=%.3f, theta=%.4g",
		f.Samples, f.BinWidth, f.MeanRate, f.MeanEpoch, f.Hurst, f.Estimator, f.RawHurst, f.Alpha, f.Theta)
}
