package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalLoad throws arbitrary bytes at the journal replay path and
// checks its crash-recovery contract: Load never panics, never reports more
// than one tolerated torn tail, never reads past the file, folds without
// panicking, is idempotent, and a journal reopened for appending after any
// damage accepts and replays a fresh record.
func FuzzJournalLoad(f *testing.F) {
	// A genuine record (correct CRC) produced by the real writer, plus the
	// classic damage shapes around it.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.journal")
	w, err := Open(seedPath, false)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := w.Append(Record{Key: "k", Status: StatusOK, Value: []byte(`{"loss":1e-6}`)}); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not json at all\n"))
	f.Add(append(bytes.Repeat(valid, 2), valid[:len(valid)/2]...)) // torn tail
	f.Add(bytes.Replace(valid, []byte("1e-6"), []byte("2e-6"), 1)) // CRC mismatch
	f.Add([]byte("{\"key\":\"a\",\"status\":\"ok\"}\n\n\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, stats, err := Load(path)
		if err != nil {
			t.Fatalf("Load returned a non-I/O error on arbitrary bytes: %v", err)
		}
		if stats.CorruptTrailing > 1 {
			t.Fatalf("more than one torn tail: %+v", stats)
		}
		if stats.NextOffset < 0 || stats.NextOffset > int64(len(data)) {
			t.Fatalf("NextOffset %d outside [0, %d]", stats.NextOffset, len(data))
		}
		Completed(recs) // must fold whatever decoded without panicking

		recs2, stats2, err := Load(path)
		if err != nil || len(recs2) != len(recs) || stats2 != stats {
			t.Fatalf("replay not idempotent: %d/%+v vs %d/%+v (err %v)",
				len(recs), stats, len(recs2), stats2, err)
		}

		// Crash recovery: reopening for append (which newline-terminates any
		// torn tail) and writing one record must yield exactly one more
		// replayable record — the damage never swallows the new append.
		w, err := Open(path, true)
		if err != nil {
			t.Fatalf("Open(resume) after damage: %v", err)
		}
		if _, err := w.Append(Record{Key: "recovered", Status: StatusOK, Value: []byte(`{}`)}); err != nil {
			t.Fatalf("append after damage: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		recs3, _, err := Load(path)
		if err != nil || len(recs3) != len(recs)+1 {
			t.Fatalf("after recovery append: %d records (err %v), want %d", len(recs3), err, len(recs)+1)
		}
	})
}
