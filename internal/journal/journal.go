// Package journal is the durability layer under the repository's long
// sweeps: an append-only JSONL work journal that records one line per
// finished (or failed) sweep cell, fsync'd on every append, plus a loader
// that replays a journal to reconstruct the completed cells after a crash
// or interruption.
//
// The format is deliberately dumb — one self-contained JSON object per
// line — so a journal survives partial writes: a crash can at worst leave
// one truncated trailing line, which Load skips (and counts) instead of
// failing, and every preceding record remains usable. Records are keyed by
// an opaque string the caller derives from the experiment identity, grid
// coordinates, seed, and solver configuration; on conflicting keys the
// record with the highest fencing epoch wins (file order breaks ties), so
// re-running a cell simply supersedes its history and a zombie worker's
// stale completion can never overwrite a newer one.
//
// The journal doubles as a coordinator-free shared work queue: several
// worker processes may hold the same journal open (O_APPEND writes of one
// line each interleave but never tear on POSIX filesystems) and publish
// lease claims as StatusClaimed records. The claim/renew/steal policy
// lives in internal/core.LeaseStore; this package only defines the record
// shape and the incremental ReadFrom tail reader the workers follow each
// other with.
//
// The package also provides WriteFileAtomic, the write-temp-then-rename
// helper the CLIs use so a result table on disk is always either the old
// complete file or the new complete file, never a truncated hybrid.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"lrd/internal/faultinject"
)

// Status classifies a journal record.
type Status string

const (
	// StatusOK: the cell finished and Value holds its result. A cell whose
	// solve degraded for a terminal (non-retryable) reason is also recorded
	// as ok — re-running it would deterministically reproduce the same
	// degradation.
	StatusOK Status = "ok"
	// StatusFail: an attempt at the cell failed; Error holds the message.
	// Failed cells are informational — a resumed run recomputes them.
	StatusFail Status = "fail"
	// StatusClaimed: a worker holds (or renews, or releases) a lease on the
	// cell. Worker identifies the holder, Epoch is the claim's fencing
	// epoch, and Deadline is the lease expiry in UnixNano; a claimed record
	// with Deadline <= 0 releases the lease. Claims are coordination
	// records, invisible to Completed.
	StatusClaimed Status = "claimed"
)

// Record is one journal line: the outcome of one attempt at one sweep
// cell, or a lease-coordination event. Key identifies the cell (experiment
// id, grid coordinates, seed, and solver-config hash, composed by the
// caller); Value carries the cell's serialized result for ok records;
// Error and Attempt describe failures; Worker, Epoch, and Deadline carry
// the lease protocol (see StatusClaimed and internal/core.LeaseStore).
type Record struct {
	Key     string          `json:"key"`
	Status  Status          `json:"status"`
	Attempt int             `json:"attempt,omitempty"`
	Value   json.RawMessage `json:"value,omitempty"`
	Error   string          `json:"error,omitempty"`
	// Worker is the id of the worker that wrote the record (claimed records
	// always; ok/fail records written under a lease).
	Worker string `json:"worker,omitempty"`
	// Epoch is the fencing epoch of the lease the record was written under.
	// Every re-lease of a cell increments it, so records from a superseded
	// (zombie) holder carry a visibly stale epoch and lose every conflict.
	Epoch int64 `json:"epoch,omitempty"`
	// Deadline is the lease expiry as UnixNano wall-clock time (claimed
	// records only). Renewals only ever extend it; <= 0 releases the lease.
	Deadline int64 `json:"deadline,omitempty"`
}

// Writer appends records to a journal file, fsync'ing after every append
// so a record, once Append returns, survives a crash of the process or
// the machine. Writers are safe for concurrent use.
type Writer struct {
	mu    sync.Mutex
	f     *os.File
	bytes int64
	err   error
}

// Open opens (creating if needed) the journal at path. With resume true
// existing records are preserved and new appends extend the file; with
// resume false the journal is truncated and starts fresh.
//
// A resumed journal whose final line was torn by a crash (no trailing
// newline) is terminated before the first append: without this, the first
// new record would be glued onto the torn fragment and both would be lost
// as one undecodable line. With it, the fragment becomes an ordinary
// corrupt line that Load skips and counts.
func Open(path string, resume bool) (*Writer, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	if resume {
		if err := terminateTornTail(path, f); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Writer{f: f}, nil
}

// terminateTornTail appends a newline to f if the file at path is
// non-empty and does not end in one (the signature of a line torn by a
// crash mid-append). f must be open O_APPEND.
func terminateTornTail(path string, f *os.File) error {
	r, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: opening %s to inspect tail: %w", path, err)
	}
	defer r.Close()
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	if size == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := r.ReadAt(last, size-1); err != nil {
		return fmt.Errorf("journal: reading tail of %s: %w", path, err)
	}
	if last[0] == '\n' {
		return nil
	}
	if _, err := f.Write([]byte{'\n'}); err != nil {
		return fmt.Errorf("journal: terminating torn tail of %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s after tail repair: %w", path, err)
	}
	return nil
}

// Append marshals rec onto one JSONL line, writes it, and fsyncs the
// file. It returns the number of bytes appended. After any write or sync
// error the writer is poisoned: every later Append returns the same error
// rather than silently losing durability.
func (w *Writer) Append(rec Record) (int, error) {
	if rec.Key == "" {
		return 0, errors.New("journal: record key must be non-empty")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("journal: encoding record %q: %w", rec.Key, err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.f == nil {
		return 0, errors.New("journal: writer is closed")
	}
	if err := faultinject.ApplyErr(faultinject.JournalAppend); err != nil {
		w.err = fmt.Errorf("journal: appending record %q: %w", rec.Key, err)
		return 0, w.err
	}
	if _, err := w.f.Write(line); err != nil {
		w.err = fmt.Errorf("journal: appending record %q: %w", rec.Key, err)
		return 0, w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: syncing after record %q: %w", rec.Key, err)
		return 0, w.err
	}
	w.bytes += int64(len(line))
	return len(line), nil
}

// Bytes returns the number of journal bytes appended through this writer
// (not counting pre-existing records of a resumed journal).
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// Close closes the underlying file. Further Appends fail.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// LoadStats classifies the undecodable lines a replay skipped. The two
// kinds have very different meanings: a corrupt *trailing* line is the
// expected signature of a crash mid-append (the write tore, nothing after
// it exists) and is fully tolerated; a corrupt *interior* line — garbage
// with intact records after it — means something other than a clean crash
// damaged the journal (disk corruption, a torn concurrent write, manual
// editing), which is still recoverable cell-by-cell but worth surfacing
// loudly and counting separately.
type LoadStats struct {
	// CorruptInterior counts undecodable lines that are followed by at
	// least one valid record.
	CorruptInterior int
	// CorruptTrailing counts the undecodable final line (0 or 1): the
	// tolerated crash-window artifact.
	CorruptTrailing int
}

// Corrupt returns the total number of skipped lines.
func (s LoadStats) Corrupt() int { return s.CorruptInterior + s.CorruptTrailing }

// Load replays the journal at path and returns its records in file order,
// together with stats on the lines that could not be decoded. A missing
// file is an empty journal, not an error — resuming a sweep that never
// started is a fresh start.
//
// Corrupt lines — a trailing line truncated by a crash, or interior
// garbage — are skipped and counted (interior and trailing separately, see
// LoadStats), never fatal: the caller recomputes those cells, which is
// always safe. Only I/O errors are returned.
func Load(path string) (records []Record, stats LoadStats, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, LoadStats{}, nil
		}
		return nil, LoadStats{}, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	corrupt, lastCorrupt := 0, false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" || rec.Status == "" {
			corrupt++
			lastCorrupt = true
			continue
		}
		lastCorrupt = false
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		// A final line longer than the scanner budget counts as corrupt
		// rather than failing the whole replay.
		if errors.Is(err, bufio.ErrTooLong) {
			corrupt++
			lastCorrupt = true
		} else {
			return nil, LoadStats{}, fmt.Errorf("journal: reading %s: %w", path, err)
		}
	}
	stats = LoadStats{CorruptInterior: corrupt}
	if lastCorrupt {
		stats.CorruptInterior--
		stats.CorruptTrailing = 1
	}
	return records, stats, nil
}

// ReadFrom incrementally reads the records appended to the journal at path
// since offset (a value previously returned by ReadFrom, or 0). Only
// complete lines — terminated by a newline — are consumed: a trailing line
// still being written by another worker is left for the next call, so next
// always points at a line boundary. Complete-but-undecodable lines are
// skipped and counted in corrupt. A missing file reads as empty.
//
// This is the tail-following primitive of the shared-journal work queue:
// each worker appends through its own Writer and observes every other
// worker's claims and completions by periodically ReadFrom-ing the shared
// file.
func ReadFrom(path string, offset int64) (records []Record, corrupt int, next int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, offset, nil
		}
		return nil, 0, offset, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	defer f.Close()
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return nil, 0, offset, fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, offset, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	// Consume only up to the last newline; an unterminated tail is an
	// append in flight, not corruption.
	end := bytes.LastIndexByte(buf, '\n')
	if end < 0 {
		return nil, 0, offset, nil
	}
	next = offset + int64(end) + 1
	for _, line := range bytes.Split(buf[:end+1], []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" || rec.Status == "" {
			corrupt++
			continue
		}
		records = append(records, rec)
	}
	return records, corrupt, next, nil
}

// Completed folds records into the per-key outcome a resumed sweep should
// trust: the value of each key's winning ok record. Conflicts resolve by
// fencing epoch first — the record written under the highest lease epoch
// wins regardless of file order, so a zombie worker that appends a stale
// completion after its lease was stolen can never overwrite the newer
// holder's result — and by file order (last wins) within an epoch. A fail
// record at the key's winning epoch or later (defensive — the
// orchestration layer never re-runs an ok cell) invalidates the cached
// value. Claimed records are coordination, not outcomes, and are ignored.
func Completed(records []Record) map[string]json.RawMessage {
	type winner struct {
		value json.RawMessage
		epoch int64
	}
	won := make(map[string]winner)
	for _, rec := range records {
		switch rec.Status {
		case StatusOK:
			if w, ok := won[rec.Key]; !ok || rec.Epoch >= w.epoch {
				won[rec.Key] = winner{value: rec.Value, epoch: rec.Epoch}
			}
		case StatusFail:
			if w, ok := won[rec.Key]; ok && rec.Epoch >= w.epoch {
				delete(won, rec.Key)
			}
		}
	}
	done := make(map[string]json.RawMessage, len(won))
	for k, w := range won {
		done[k] = w.value
	}
	return done
}

// WriteFileAtomic writes the output of write to path atomically: the
// content lands in a temporary file in the same directory, is fsync'd, is
// renamed over path only on success, and the parent directory is fsync'd
// after the rename so the new directory entry itself survives a power
// loss — without it, a crash in the window after rename could resurface
// the old file (or no file) even though the rename "succeeded". Readers
// therefore never observe a truncated or partially written file, and a
// crash mid-write leaves any previous version of path intact. On error the
// temporary file is removed.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("journal: creating temp file for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("journal: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("journal: closing temp file for %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("journal: renaming into %s: %w", path, err)
	}
	// Persist the rename itself: without the directory fsync the new entry
	// lives only in the page cache and a power loss can undo it. The
	// rename has already happened — on a sync error path IS the new file
	// (the cleanup deferral's remove of the now-gone temp name is a no-op);
	// only the entry's durability is in doubt, and that doubt is reported.
	if serr := syncDir(dir); serr != nil {
		return fmt.Errorf("journal: syncing directory of %s after rename: %w", path, serr)
	}
	return nil
}

// syncDir fsyncs a directory. Filesystems that refuse directory fsync
// outright (EINVAL/ENOTSUP) are tolerated — there is nothing further the
// writer can do there and the data file itself is already durable — but
// any other failure is reported.
func syncDir(dir string) error {
	if err := faultinject.ApplyErr(faultinject.JournalDirSync); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
