// Package journal is the durability layer under the repository's long
// sweeps: an append-only JSONL work journal that records one line per
// finished (or failed) sweep cell, fsync'd on every append, plus a loader
// that replays a journal to reconstruct the completed cells after a crash
// or interruption.
//
// The format is deliberately dumb — one self-contained JSON object per
// line — so a journal survives partial writes: a crash can at worst leave
// one truncated trailing line, which Load skips (and counts) instead of
// failing, and every preceding record remains usable. Records are keyed by
// an opaque string the caller derives from the experiment identity, grid
// coordinates, seed, and solver configuration; on conflicting keys the
// record with the highest fencing epoch wins (file order breaks ties), so
// re-running a cell simply supersedes its history and a zombie worker's
// stale completion can never overwrite a newer one.
//
// The journal doubles as a coordinator-free shared work queue: several
// worker processes may hold the same journal open (O_APPEND writes of one
// line each interleave but never tear on POSIX filesystems) and publish
// lease claims as StatusClaimed records. The claim/renew/steal policy
// lives in internal/core.LeaseStore; this package only defines the record
// shape and the incremental ReadFrom tail reader the workers follow each
// other with.
//
// The package also provides WriteFileAtomic, the write-temp-then-rename
// helper the CLIs use so a result table on disk is always either the old
// complete file or the new complete file, never a truncated hybrid.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"lrd/internal/faultinject"
)

// Status classifies a journal record.
type Status string

const (
	// StatusOK: the cell finished and Value holds its result. A cell whose
	// solve degraded for a terminal (non-retryable) reason is also recorded
	// as ok — re-running it would deterministically reproduce the same
	// degradation.
	StatusOK Status = "ok"
	// StatusFail: an attempt at the cell failed; Error holds the message.
	// Failed cells are informational — a resumed run recomputes them.
	StatusFail Status = "fail"
	// StatusClaimed: a worker holds (or renews, or releases) a lease on the
	// cell. Worker identifies the holder, Epoch is the claim's fencing
	// epoch, and Deadline is the lease expiry in UnixNano; a claimed record
	// with Deadline <= 0 releases the lease. Claims are coordination
	// records, invisible to Completed.
	StatusClaimed Status = "claimed"
)

// Record is one journal line: the outcome of one attempt at one sweep
// cell, or a lease-coordination event. Key identifies the cell (experiment
// id, grid coordinates, seed, and solver-config hash, composed by the
// caller); Value carries the cell's serialized result for ok records;
// Error and Attempt describe failures; Worker, Epoch, and Deadline carry
// the lease protocol (see StatusClaimed and internal/core.LeaseStore).
type Record struct {
	Key     string          `json:"key"`
	Status  Status          `json:"status"`
	Attempt int             `json:"attempt,omitempty"`
	Value   json.RawMessage `json:"value,omitempty"`
	Error   string          `json:"error,omitempty"`
	// Worker is the id of the worker that wrote the record (claimed records
	// always; ok/fail records written under a lease).
	Worker string `json:"worker,omitempty"`
	// Epoch is the fencing epoch of the lease the record was written under.
	// Every re-lease of a cell increments it, so records from a superseded
	// (zombie) holder carry a visibly stale epoch and lose every conflict.
	Epoch int64 `json:"epoch,omitempty"`
	// Deadline is the lease expiry as UnixNano wall-clock time (claimed
	// records only). Renewals only ever extend it; <= 0 releases the lease.
	Deadline int64 `json:"deadline,omitempty"`
	// Crc is the CRC32C (Castagnoli) checksum of the record's JSON encoding
	// with this field zeroed (see Checksum). Append stamps it automatically;
	// Load and ReadFrom verify it and refuse to trust a record whose bytes
	// decoded cleanly but whose content was damaged — the failure mode a
	// torn-tail check cannot see. Zero means "absent" (legacy journals are
	// trusted as-is), which sacrifices the 1-in-2³² record whose true
	// checksum is zero to keep old journals replayable.
	Crc uint32 `json:"crc,omitempty"`
}

// crcTable is the Castagnoli polynomial table; CRC32C has hardware support
// on amd64/arm64 and better error-detection spread than IEEE for short
// records like ours.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes rec's CRC32C: the checksum of the record's JSON
// encoding with the Crc field zeroed. The encoding is canonical for a
// given record value (encoding/json field order is fixed and RawMessage
// bytes pass through verbatim), so decode→Checksum reproduces the value
// Append stamped.
func Checksum(rec Record) uint32 {
	rec.Crc = 0
	b, err := json.Marshal(rec)
	if err != nil {
		return 0
	}
	return crc32.Checksum(b, crcTable)
}

// verified reports whether rec's checksum matches its content. Records
// without one (legacy journals) are trusted as-is.
func verified(rec Record) bool {
	return rec.Crc == 0 || rec.Crc == Checksum(rec)
}

// Writer appends records to a journal file, fsync'ing after every append
// so a record, once Append returns, survives a crash of the process or
// the machine. Writers are safe for concurrent use.
type Writer struct {
	mu    sync.Mutex
	f     *os.File
	bytes int64
	err   error
}

// Open opens (creating if needed) the journal at path. With resume true
// existing records are preserved and new appends extend the file; with
// resume false the journal is truncated and starts fresh.
//
// A resumed journal whose final line was torn by a crash (no trailing
// newline) is terminated before the first append: without this, the first
// new record would be glued onto the torn fragment and both would be lost
// as one undecodable line. With it, the fragment becomes an ordinary
// corrupt line that Load skips and counts.
func Open(path string, resume bool) (*Writer, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	if resume {
		if err := terminateTornTail(path, f); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Writer{f: f}, nil
}

// terminateTornTail appends a newline to f if the file at path is
// non-empty and does not end in one (the signature of a line torn by a
// crash mid-append). f must be open O_APPEND.
func terminateTornTail(path string, f *os.File) error {
	r, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: opening %s to inspect tail: %w", path, err)
	}
	defer r.Close()
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	if size == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := r.ReadAt(last, size-1); err != nil {
		return fmt.Errorf("journal: reading tail of %s: %w", path, err)
	}
	if last[0] == '\n' {
		return nil
	}
	if _, err := f.Write([]byte{'\n'}); err != nil {
		return fmt.Errorf("journal: terminating torn tail of %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s after tail repair: %w", path, err)
	}
	return nil
}

// Append marshals rec onto one JSONL line, writes it, and fsyncs the
// file. It returns the number of bytes appended. After any write or sync
// error the writer is poisoned: every later Append returns the same error
// rather than silently losing durability.
func (w *Writer) Append(rec Record) (int, error) {
	if rec.Key == "" {
		return 0, errors.New("journal: record key must be non-empty")
	}
	if rec.Crc == 0 {
		rec.Crc = Checksum(rec)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("journal: encoding record %q: %w", rec.Key, err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.f == nil {
		return 0, errors.New("journal: writer is closed")
	}
	if err := faultinject.ApplyErr(faultinject.JournalAppend); err != nil {
		w.err = fmt.Errorf("journal: appending record %q: %w", rec.Key, err)
		return 0, w.err
	}
	if _, err := w.f.Write(line); err != nil {
		w.err = fmt.Errorf("journal: appending record %q: %w", rec.Key, err)
		return 0, w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: syncing after record %q: %w", rec.Key, err)
		return 0, w.err
	}
	w.bytes += int64(len(line))
	return len(line), nil
}

// Bytes returns the number of journal bytes appended through this writer
// (not counting pre-existing records of a resumed journal).
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// Close closes the underlying file. Further Appends fail.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// LoadStats classifies the undecodable lines a replay skipped. The two
// kinds have very different meanings: a corrupt *trailing* line is the
// expected signature of a crash mid-append (the write tore, nothing after
// it exists) and is fully tolerated; a corrupt *interior* line — garbage
// with intact records after it — means something other than a clean crash
// damaged the journal (disk corruption, a torn concurrent write, manual
// editing), which is still recoverable cell-by-cell but worth surfacing
// loudly and counting separately.
type LoadStats struct {
	// CorruptInterior counts undecodable lines that are followed by at
	// least one valid record.
	CorruptInterior int
	// CorruptTrailing counts the undecodable final line (0 or 1): the
	// tolerated crash-window artifact.
	CorruptTrailing int
	// CrcMismatch counts records that decoded cleanly but failed their
	// CRC32C check — content damage a structural parse cannot see. They are
	// skipped (the cells recompute) and never trusted, wherever they sit in
	// the file.
	CrcMismatch int
	// Quarantined counts damaged lines LoadAndQuarantine preserved in the
	// .quarantine sidecar (always 0 for plain Load).
	Quarantined int
	// NextOffset is the byte offset just past the last line Load processed
	// (the file size when the journal ends in a newline). An incremental
	// follower can hand it to ReadFrom to continue where the replay ended.
	NextOffset int64
}

// Corrupt returns the total number of undecodable skipped lines
// (CRC-mismatched records are counted separately in CrcMismatch).
func (s LoadStats) Corrupt() int { return s.CorruptInterior + s.CorruptTrailing }

// Load replays the journal at path and returns its records in file order,
// together with stats on the lines that could not be decoded. A missing
// file is an empty journal, not an error — resuming a sweep that never
// started is a fresh start.
//
// Corrupt lines — a trailing line truncated by a crash, or interior
// garbage — are skipped and counted (interior and trailing separately, see
// LoadStats), never fatal: the caller recomputes those cells, which is
// always safe. Only I/O errors are returned.
func Load(path string) (records []Record, stats LoadStats, err error) {
	records, stats, _, err = load(path)
	return records, stats, err
}

// QuarantineSuffix is appended to a journal's path to name its sidecar of
// preserved damaged lines.
const QuarantineSuffix = ".quarantine"

// LoadAndQuarantine is Load plus evidence preservation: every damaged line
// that would otherwise be silently skipped — interior corruption and
// CRC-mismatched records, but not the tolerated torn trailing line — is
// appended to the path+QuarantineSuffix sidecar before the replay
// continues without it. The sidecar write is best-effort (a journal replay
// must never fail because the quarantine could not be written) and
// deduplicated, so repeated resumes of the same damaged journal do not
// grow it. stats.Quarantined reports how many lines were newly preserved.
func LoadAndQuarantine(path string) (records []Record, stats LoadStats, err error) {
	records, stats, bad, err := load(path)
	if err != nil || len(bad) == 0 {
		return records, stats, err
	}
	stats.Quarantined = quarantine(path+QuarantineSuffix, bad)
	return records, stats, nil
}

// maxLineBytes bounds a single journal line; anything longer is treated as
// corrupt rather than decoded (a defensive cap — real records are < 1 KiB).
const maxLineBytes = 16 * 1024 * 1024

// load is the shared replay: records plus classified stats plus the
// damaged lines themselves (interior corruption and CRC mismatches, in
// file order) for callers that quarantine.
func load(path string) (records []Record, stats LoadStats, bad [][]byte, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, LoadStats{}, nil, nil
		}
		return nil, LoadStats{}, nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	// trailingCorrupt tracks whether the most recent non-blank line was
	// undecodable: if that holds at EOF the line is the tolerated torn-tail
	// crash artifact, not interior damage.
	trailingCorrupt := false
	for off := 0; off < len(buf); {
		lineEnd, next := len(buf), len(buf)
		if nl := bytes.IndexByte(buf[off:], '\n'); nl >= 0 {
			lineEnd, next = off+nl, off+nl+1
		}
		line := bytes.TrimSpace(buf[off:lineEnd])
		off = next
		stats.NextOffset = int64(next)
		if len(line) == 0 {
			continue
		}
		var rec Record
		if len(line) > maxLineBytes || json.Unmarshal(line, &rec) != nil || rec.Key == "" || rec.Status == "" {
			stats.CorruptInterior++
			trailingCorrupt = true
			bad = append(bad, line)
			continue
		}
		if !verified(rec) {
			// Structurally valid but content-damaged: never a torn-tail
			// artifact (truncation cannot produce well-formed JSON with a
			// checksum field), so it is damage wherever it sits.
			stats.CrcMismatch++
			trailingCorrupt = false
			bad = append(bad, line)
			continue
		}
		trailingCorrupt = false
		records = append(records, rec)
	}
	if trailingCorrupt {
		stats.CorruptInterior--
		stats.CorruptTrailing = 1
		// The torn tail is an expected crash signature, not quarantine
		// material, and Open(resume) will terminate it in place.
		bad = bad[:len(bad)-1]
	}
	return records, stats, bad, nil
}

// quarantine appends lines to the sidecar at path, skipping lines the
// sidecar already holds, and returns how many were newly written. All
// failures are swallowed: quarantining is evidence preservation, never a
// reason to fail the replay that triggered it.
func quarantine(path string, lines [][]byte) (written int) {
	seen := make(map[string]bool)
	if prev, err := os.ReadFile(path); err == nil {
		for _, l := range bytes.Split(prev, []byte{'\n'}) {
			if l = bytes.TrimSpace(l); len(l) > 0 {
				seen[string(l)] = true
			}
		}
	}
	var f *os.File
	for _, line := range lines {
		if seen[string(line)] {
			continue
		}
		seen[string(line)] = true
		if f == nil {
			var err error
			f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return written
			}
			defer f.Close()
		}
		// Copy before appending the newline: line aliases the journal buffer.
		entry := make([]byte, 0, len(line)+1)
		entry = append(append(entry, line...), '\n')
		if _, err := f.Write(entry); err != nil {
			return written
		}
		written++
	}
	if f != nil {
		f.Sync()
	}
	return written
}

// TailStats classifies the lines an incremental ReadFrom skipped:
// complete-but-undecodable garbage, and records whose CRC32C check failed.
// A tailer never quarantines (every fleet member tails the same file, and
// N workers appending the same evidence N times helps no one) — the
// journal's opener does that once via LoadAndQuarantine.
type TailStats struct {
	// Corrupt counts complete lines that could not be decoded.
	Corrupt int
	// CrcMismatch counts records that decoded but failed their checksum.
	CrcMismatch int
}

// Total returns the number of skipped lines.
func (s TailStats) Total() int { return s.Corrupt + s.CrcMismatch }

// ReadFrom incrementally reads the records appended to the journal at path
// since offset (a value previously returned by ReadFrom, or 0). Only
// complete lines — terminated by a newline — are consumed: a trailing line
// still being written by another worker is left for the next call, so next
// always points at a line boundary. Complete-but-undecodable lines and
// CRC-mismatched records are skipped and counted in stats. A missing file
// reads as empty.
//
// This is the tail-following primitive of the shared-journal work queue:
// each worker appends through its own Writer and observes every other
// worker's claims and completions by periodically ReadFrom-ing the shared
// file.
func ReadFrom(path string, offset int64) (records []Record, stats TailStats, next int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, TailStats{}, offset, nil
		}
		return nil, TailStats{}, offset, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	defer f.Close()
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return nil, TailStats{}, offset, fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		return nil, TailStats{}, offset, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	// Consume only up to the last newline; an unterminated tail is an
	// append in flight, not corruption.
	end := bytes.LastIndexByte(buf, '\n')
	if end < 0 {
		return nil, TailStats{}, offset, nil
	}
	next = offset + int64(end) + 1
	for _, line := range bytes.Split(buf[:end+1], []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" || rec.Status == "" {
			stats.Corrupt++
			continue
		}
		if !verified(rec) {
			stats.CrcMismatch++
			continue
		}
		records = append(records, rec)
	}
	return records, stats, next, nil
}

// Completed folds records into the per-key outcome a resumed sweep should
// trust: the value of each key's winning ok record. Conflicts resolve by
// fencing epoch first — the record written under the highest lease epoch
// wins regardless of file order, so a zombie worker that appends a stale
// completion after its lease was stolen can never overwrite the newer
// holder's result — and by file order (last wins) within an epoch. A fail
// record at the key's winning epoch or later (defensive — the
// orchestration layer never re-runs an ok cell) invalidates the cached
// value. Claimed records are coordination, not outcomes, and are ignored.
func Completed(records []Record) map[string]json.RawMessage {
	type winner struct {
		value json.RawMessage
		epoch int64
	}
	won := make(map[string]winner)
	for _, rec := range records {
		switch rec.Status {
		case StatusOK:
			if w, ok := won[rec.Key]; !ok || rec.Epoch >= w.epoch {
				won[rec.Key] = winner{value: rec.Value, epoch: rec.Epoch}
			}
		case StatusFail:
			if w, ok := won[rec.Key]; ok && rec.Epoch >= w.epoch {
				delete(won, rec.Key)
			}
		}
	}
	done := make(map[string]json.RawMessage, len(won))
	for k, w := range won {
		done[k] = w.value
	}
	return done
}

// WriteFileAtomic writes the output of write to path atomically: the
// content lands in a temporary file in the same directory, is fsync'd, is
// renamed over path only on success, and the parent directory is fsync'd
// after the rename so the new directory entry itself survives a power
// loss — without it, a crash in the window after rename could resurface
// the old file (or no file) even though the rename "succeeded". Readers
// therefore never observe a truncated or partially written file, and a
// crash mid-write leaves any previous version of path intact. On error the
// temporary file is removed.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("journal: creating temp file for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("journal: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("journal: closing temp file for %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("journal: renaming into %s: %w", path, err)
	}
	// Persist the rename itself: without the directory fsync the new entry
	// lives only in the page cache and a power loss can undo it. The
	// rename has already happened — on a sync error path IS the new file
	// (the cleanup deferral's remove of the now-gone temp name is a no-op);
	// only the entry's durability is in doubt, and that doubt is reported.
	if serr := syncDir(dir); serr != nil {
		return fmt.Errorf("journal: syncing directory of %s after rename: %w", path, serr)
	}
	return nil
}

// syncDir fsyncs a directory. Filesystems that refuse directory fsync
// outright (EINVAL/ENOTSUP) are tolerated — there is nothing further the
// writer can do there and the data file itself is already durable — but
// any other failure is reported.
func syncDir(dir string) error {
	if err := faultinject.ApplyErr(faultinject.JournalDirSync); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
