// Package journal is the durability layer under the repository's long
// sweeps: an append-only JSONL work journal that records one line per
// finished (or failed) sweep cell, fsync'd on every append, plus a loader
// that replays a journal to reconstruct the completed cells after a crash
// or interruption.
//
// The format is deliberately dumb — one self-contained JSON object per
// line — so a journal survives partial writes: a crash can at worst leave
// one truncated trailing line, which Load skips (and counts) instead of
// failing, and every preceding record remains usable. Records are keyed by
// an opaque string the caller derives from the experiment identity, grid
// coordinates, seed, and solver configuration; on conflicting keys the
// last record wins, so re-running a cell simply supersedes its history.
//
// The package also provides WriteFileAtomic, the write-temp-then-rename
// helper the CLIs use so a result table on disk is always either the old
// complete file or the new complete file, never a truncated hybrid.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Status classifies a journal record.
type Status string

const (
	// StatusOK: the cell finished and Value holds its result. A cell whose
	// solve degraded for a terminal (non-retryable) reason is also recorded
	// as ok — re-running it would deterministically reproduce the same
	// degradation.
	StatusOK Status = "ok"
	// StatusFail: an attempt at the cell failed; Error holds the message.
	// Failed cells are informational — a resumed run recomputes them.
	StatusFail Status = "fail"
)

// Record is one journal line: the outcome of one attempt at one sweep
// cell. Key identifies the cell (experiment id, grid coordinates, seed,
// and solver-config hash, composed by the caller); Value carries the
// cell's serialized result for ok records; Error and Attempt describe
// failures.
type Record struct {
	Key     string          `json:"key"`
	Status  Status          `json:"status"`
	Attempt int             `json:"attempt,omitempty"`
	Value   json.RawMessage `json:"value,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// Writer appends records to a journal file, fsync'ing after every append
// so a record, once Append returns, survives a crash of the process or
// the machine. Writers are safe for concurrent use.
type Writer struct {
	mu    sync.Mutex
	f     *os.File
	bytes int64
	err   error
}

// Open opens (creating if needed) the journal at path. With resume true
// existing records are preserved and new appends extend the file; with
// resume false the journal is truncated and starts fresh.
func Open(path string, resume bool) (*Writer, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	return &Writer{f: f}, nil
}

// Append marshals rec onto one JSONL line, writes it, and fsyncs the
// file. It returns the number of bytes appended. After any write or sync
// error the writer is poisoned: every later Append returns the same error
// rather than silently losing durability.
func (w *Writer) Append(rec Record) (int, error) {
	if rec.Key == "" {
		return 0, errors.New("journal: record key must be non-empty")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("journal: encoding record %q: %w", rec.Key, err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.f == nil {
		return 0, errors.New("journal: writer is closed")
	}
	if _, err := w.f.Write(line); err != nil {
		w.err = fmt.Errorf("journal: appending record %q: %w", rec.Key, err)
		return 0, w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: syncing after record %q: %w", rec.Key, err)
		return 0, w.err
	}
	w.bytes += int64(len(line))
	return len(line), nil
}

// Bytes returns the number of journal bytes appended through this writer
// (not counting pre-existing records of a resumed journal).
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// Close closes the underlying file. Further Appends fail.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Load replays the journal at path and returns its records in file order,
// together with the number of lines that could not be decoded. A missing
// file is an empty journal, not an error — resuming a sweep that never
// started is a fresh start.
//
// Corrupt lines — a trailing line truncated by a crash, or garbage from a
// concurrent writer — are skipped and counted, never fatal: the caller
// recomputes those cells, which is always safe. Only I/O errors are
// returned.
func Load(path string) (records []Record, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" || rec.Status == "" {
			skipped++
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		// A final line longer than the scanner budget counts as corrupt
		// rather than failing the whole replay.
		if errors.Is(err, bufio.ErrTooLong) {
			return records, skipped + 1, nil
		}
		return nil, 0, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	return records, skipped, nil
}

// Completed folds records into the per-key outcome a resumed sweep should
// trust: the value of each key's last ok record. A later fail record for
// the same key (defensive — the orchestration layer never re-runs an ok
// cell) invalidates the cached value.
func Completed(records []Record) map[string]json.RawMessage {
	done := make(map[string]json.RawMessage)
	for _, rec := range records {
		switch rec.Status {
		case StatusOK:
			done[rec.Key] = rec.Value
		case StatusFail:
			delete(done, rec.Key)
		}
	}
	return done
}

// WriteFileAtomic writes the output of write to path atomically: the
// content lands in a temporary file in the same directory, is fsync'd,
// and is renamed over path only on success. Readers therefore never
// observe a truncated or partially written file, and a crash mid-write
// leaves any previous version of path intact. On error the temporary file
// is removed.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("journal: creating temp file for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("journal: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("journal: closing temp file for %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("journal: renaming into %s: %w", path, err)
	}
	// Persist the rename itself. Directory fsync is best-effort: some
	// filesystems refuse it, and the data file is already durable.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
