package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// CompactStats reports what Compact did: the record and byte counts before
// and after the rewrite, plus the replay stats of the journal it read
// (whose Quarantined field counts damaged lines preserved in the sidecar —
// compaction is also how a damaged journal is healed, since the rewrite
// drops the bad lines the sidecar now holds).
type CompactStats struct {
	RecordsIn   int
	RecordsOut  int
	BytesBefore int64
	BytesAfter  int64
	Load        LoadStats
}

// Reclaimed returns the bytes the rewrite freed (never negative).
func (s CompactStats) Reclaimed() int64 {
	if d := s.BytesBefore - s.BytesAfter; d > 0 {
		return d
	}
	return 0
}

// Compact rewrites the journal at path to its folded equivalent state:
// one record per key instead of that key's whole history. For each key it
// keeps the winning ok record (same epoch-fenced last-record-wins rule as
// Completed), or the live lease claim if the key is still in flight, or —
// when only superseded history remains — a released claim carrying the
// key's highest observed fencing epoch, so post-compaction claims still
// fence out any zombie holding a pre-compaction lease. Fail records and
// damaged lines are dropped (damaged lines are first preserved in the
// .quarantine sidecar); every surviving record is re-stamped with a fresh
// CRC. The rewrite is atomic (WriteFileAtomic), so a crash mid-compaction
// leaves the original journal intact.
//
// Compact must not race live appenders of the same journal: a writer
// holding the old inode open would keep appending to the unlinked file and
// lose those records. Compact a fleet journal only when the fleet is
// quiesced; the single-process auto-compaction path compacts before the
// journal is reopened for appending.
func Compact(path string) (CompactStats, error) {
	fi, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return CompactStats{}, nil
		}
		return CompactStats{}, fmt.Errorf("journal: compacting %s: %w", path, err)
	}
	records, loadStats, err := LoadAndQuarantine(path)
	if err != nil {
		return CompactStats{}, err
	}
	stats := CompactStats{
		RecordsIn:   len(records),
		BytesBefore: fi.Size(),
		Load:        loadStats,
	}
	out := compactRecords(records)
	stats.RecordsOut = len(out)
	err = WriteFileAtomic(path, func(w io.Writer) error {
		for _, rec := range out {
			rec.Crc = 0
			rec.Crc = Checksum(rec)
			line, err := json.Marshal(rec)
			if err != nil {
				return fmt.Errorf("journal: encoding record %q: %w", rec.Key, err)
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return stats, err
	}
	if fi, err := os.Stat(path); err == nil {
		stats.BytesAfter = fi.Size()
	}
	return stats, nil
}

// compactRecords folds a journal's history to one record per key,
// mirroring the lease store's fencing rules. Keys appear in first-seen
// file order, so compaction is deterministic.
func compactRecords(records []Record) []Record {
	type fold struct {
		ok       *Record
		claim    *Record // live lease (Deadline > 0), if any
		maxEpoch int64
	}
	var order []string
	folds := make(map[string]*fold)
	for i := range records {
		rec := &records[i]
		f := folds[rec.Key]
		if f == nil {
			f = &fold{}
			folds[rec.Key] = f
			order = append(order, rec.Key)
		}
		if rec.Epoch > f.maxEpoch {
			f.maxEpoch = rec.Epoch
		}
		switch rec.Status {
		case StatusOK:
			if f.ok == nil || rec.Epoch >= f.ok.Epoch {
				f.ok = rec
				// A completion at or above the claim's epoch consumes it.
				if f.claim != nil && rec.Epoch >= f.claim.Epoch {
					f.claim = nil
				}
			}
		case StatusFail:
			if f.ok != nil && rec.Epoch >= f.ok.Epoch {
				f.ok = nil
			}
		case StatusClaimed:
			if rec.Deadline <= 0 {
				// A release clears the claim only when it comes from the
				// holder at the claim's own epoch.
				if f.claim != nil && f.claim.Worker == rec.Worker && f.claim.Epoch == rec.Epoch {
					f.claim = nil
				}
				continue
			}
			switch {
			case f.claim == nil || rec.Epoch > f.claim.Epoch:
				f.claim = rec
			case rec.Epoch == f.claim.Epoch && rec.Worker == f.claim.Worker:
				if rec.Deadline > f.claim.Deadline { // renewal only extends
					f.claim = rec
				}
			}
		}
	}
	var out []Record
	for _, key := range order {
		f := folds[key]
		switch {
		case f.ok != nil:
			out = append(out, *f.ok)
		case f.claim != nil:
			out = append(out, *f.claim)
		case f.maxEpoch > 0:
			// Only superseded lease history remains: preserve the fencing
			// floor as a released claim so the next claim of this key still
			// outranks every pre-compaction epoch.
			out = append(out, Record{Key: key, Status: StatusClaimed, Epoch: f.maxEpoch})
		}
	}
	return out
}
