package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// corruptLine marshals rec with a deliberately wrong checksum: the bytes
// parse cleanly but fail verification — content damage a structural check
// cannot see.
func corruptLine(t *testing.T, rec Record) []byte {
	t.Helper()
	rec.Crc = Checksum(rec) + 1
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return append(line, '\n')
}

// TestAppendStampsCrc: every appended record carries a checksum that
// verifies on replay.
func TestAppendStampsCrc(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "a", Status: StatusOK, Value: json.RawMessage(`{"loss":0.25}`)})
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"crc":`)) {
		t.Fatalf("appended line has no crc field: %s", raw)
	}
	recs, stats, err := Load(path)
	if err != nil || stats.CrcMismatch != 0 || len(recs) != 1 {
		t.Fatalf("replay: recs=%d stats=%+v err=%v", len(recs), stats, err)
	}
	if recs[0].Crc == 0 || recs[0].Crc != Checksum(recs[0]) {
		t.Fatalf("stored crc %d does not verify", recs[0].Crc)
	}
}

// TestCrcMismatchSkippedAndClassified: a record whose content was damaged
// after writing (parses, wrong checksum) is dropped and counted as a CRC
// mismatch — distinct from undecodable corruption — wherever it sits.
func TestCrcMismatchSkippedAndClassified(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "good", Status: StatusOK})
	w.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(corruptLine(t, Record{Key: "bad", Status: StatusOK, Value: json.RawMessage(`{"loss":1}`)})); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, stats, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "good" {
		t.Fatalf("records = %+v, want only the intact one", recs)
	}
	if stats.CrcMismatch != 1 || stats.Corrupt() != 0 {
		t.Fatalf("stats = %+v, want CrcMismatch=1 and no corrupt lines", stats)
	}

	// The tail reader applies the same verification.
	tailed, tail, _, err := ReadFrom(path, 0)
	if err != nil || len(tailed) != 1 || tail.CrcMismatch != 1 || tail.Corrupt != 0 {
		t.Fatalf("tail: recs=%d stats=%+v err=%v", len(tailed), tail, err)
	}

	// Completed never sees the damaged record.
	if done := Completed(recs); len(done) != 1 {
		t.Fatalf("completed = %v", done)
	}
}

// TestLegacyRecordsWithoutCrcStillLoad: journals written before the crc
// field replay unverified rather than being rejected.
func TestLegacyRecordsWithoutCrcStillLoad(t *testing.T) {
	path := tmpPath(t)
	if err := os.WriteFile(path, []byte(`{"key":"old","status":"ok","value":{"loss":0.5}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := Load(path)
	if err != nil || len(recs) != 1 || stats.CrcMismatch != 0 {
		t.Fatalf("legacy replay: recs=%d stats=%+v err=%v", len(recs), stats, err)
	}
}

// TestLoadAndQuarantine: damaged lines (interior garbage, CRC mismatches)
// land in the sidecar exactly once across repeated replays; the tolerated
// torn trailing line does not.
func TestLoadAndQuarantine(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "a", Status: StatusOK})
	w.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("interior garbage\n")
	f.Write(corruptLine(t, Record{Key: "damaged", Status: StatusOK}))
	f.WriteString(`{"key":"torn","status":"ok"`) // torn mid-append, no newline
	f.Close()

	recs, stats, err := LoadAndQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "a" {
		t.Fatalf("records = %+v", recs)
	}
	if stats.CorruptInterior != 1 || stats.CorruptTrailing != 1 || stats.CrcMismatch != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Quarantined != 2 {
		t.Fatalf("quarantined = %d, want 2 (garbage + crc mismatch, not the torn tail)", stats.Quarantined)
	}
	side, err := os.ReadFile(path + QuarantineSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(side, []byte("interior garbage")) || !bytes.Contains(side, []byte(`"damaged"`)) {
		t.Fatalf("sidecar missing evidence: %s", side)
	}
	if bytes.Contains(side, []byte(`"torn"`)) {
		t.Fatalf("torn tail wrongly quarantined: %s", side)
	}

	// Replay again: the sidecar must not grow (dedup), and NextOffset must
	// cover the whole file so a tailer continues cleanly.
	recs2, stats2, err := LoadAndQuarantine(path)
	if err != nil || len(recs2) != 1 {
		t.Fatalf("second replay: recs=%d err=%v", len(recs2), err)
	}
	if stats2.Quarantined != 0 {
		t.Fatalf("second replay re-quarantined %d line(s)", stats2.Quarantined)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.NextOffset != fi.Size() {
		t.Fatalf("NextOffset = %d, want file size %d", stats2.NextOffset, fi.Size())
	}
}

// TestCompact: a finished multi-worker journal folds to one record per
// key, shrinks, stays replayable with identical completed state, and
// preserves fencing epochs — including for keys with only superseded
// history.
func TestCompact(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// Key "a": claimed, completed, with a zombie's stale completion after.
	mustAppend(t, w, Record{Key: "a", Status: StatusClaimed, Worker: "w1", Epoch: 1, Deadline: 100})
	mustAppend(t, w, Record{Key: "a", Status: StatusOK, Worker: "w1", Epoch: 1, Value: json.RawMessage(`1`)})
	// Key "b": a long claim/renew/steal history ending completed at epoch 2.
	mustAppend(t, w, Record{Key: "b", Status: StatusClaimed, Worker: "w1", Epoch: 1, Deadline: 100})
	mustAppend(t, w, Record{Key: "b", Status: StatusClaimed, Worker: "w1", Epoch: 1, Deadline: 200})
	mustAppend(t, w, Record{Key: "b", Status: StatusClaimed, Worker: "w2", Epoch: 2, Deadline: 300})
	mustAppend(t, w, Record{Key: "b", Status: StatusOK, Worker: "w2", Epoch: 2, Value: json.RawMessage(`2`)})
	// Key "c": still leased.
	mustAppend(t, w, Record{Key: "c", Status: StatusClaimed, Worker: "w3", Epoch: 4, Deadline: 400})
	// Key "d": failed and released — only the epoch floor must survive.
	mustAppend(t, w, Record{Key: "d", Status: StatusClaimed, Worker: "w1", Epoch: 7, Deadline: 100})
	mustAppend(t, w, Record{Key: "d", Status: StatusFail, Worker: "w1", Epoch: 7, Error: "boom"})
	mustAppend(t, w, Record{Key: "d", Status: StatusClaimed, Worker: "w1", Epoch: 7}) // release
	w.Close()

	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Compact(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BytesAfter >= before.Size() {
		t.Fatalf("compaction did not shrink: %d → %d bytes", before.Size(), stats.BytesAfter)
	}
	if stats.RecordsIn != 10 || stats.RecordsOut != 4 {
		t.Fatalf("records %d → %d, want 10 → 4", stats.RecordsIn, stats.RecordsOut)
	}

	recs, lstats, err := Load(path)
	if err != nil || lstats.Corrupt() != 0 || lstats.CrcMismatch != 0 {
		t.Fatalf("compacted journal replay: stats=%+v err=%v", lstats, err)
	}
	done := Completed(recs)
	if string(done["a"]) != `1` || string(done["b"]) != `2` || len(done) != 2 {
		t.Fatalf("completed after compaction = %v", done)
	}
	byKey := map[string]Record{}
	for _, r := range recs {
		byKey[r.Key] = r
	}
	if c := byKey["b"]; c.Epoch != 2 || c.Worker != "w2" {
		t.Fatalf("winning record for b = %+v", c)
	}
	if c := byKey["c"]; c.Status != StatusClaimed || c.Worker != "w3" || c.Epoch != 4 || c.Deadline != 400 {
		t.Fatalf("live claim for c not preserved: %+v", c)
	}
	if c := byKey["d"]; c.Status != StatusClaimed || c.Epoch != 7 || c.Deadline != 0 {
		t.Fatalf("epoch floor for d not preserved: %+v", c)
	}

	// Compacting the compacted journal is a fixed point (same records).
	again, err := Compact(path)
	if err != nil {
		t.Fatal(err)
	}
	if again.RecordsIn != again.RecordsOut {
		t.Fatalf("second compaction changed records: %d → %d", again.RecordsIn, again.RecordsOut)
	}
}

// TestCompactHealsDamage: compaction preserves damaged lines in the
// sidecar and drops them from the rewritten journal.
func TestCompactHealsDamage(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "a", Status: StatusOK})
	w.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage first, then the mismatched record: a final undecodable line
	// would classify as the tolerated trailing artifact instead.
	f.WriteString("garbage\n")
	f.Write(corruptLine(t, Record{Key: "bad", Status: StatusOK}))
	f.Close()

	stats, err := Compact(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Load.CrcMismatch != 1 || stats.Load.Quarantined != 2 {
		t.Fatalf("load stats = %+v", stats.Load)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "garbage") || strings.Contains(string(raw), `"bad"`) {
		t.Fatalf("damage survived compaction: %s", raw)
	}
	if _, err := os.Stat(path + QuarantineSuffix); err != nil {
		t.Fatalf("no quarantine sidecar: %v", err)
	}
}

// TestCompactMissingFile: compacting a journal that does not exist is a
// no-op, not an error, and must not create the file.
func TestCompactMissingFile(t *testing.T) {
	path := tmpPath(t)
	stats, err := Compact(path)
	if err != nil || stats != (CompactStats{}) {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("compact created the file: %v", err)
	}
}
