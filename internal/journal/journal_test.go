package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.journal")
}

func mustAppend(t *testing.T, w *Writer, rec Record) int {
	t.Helper()
	n, err := w.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAppendLoadRoundTrip(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	val1, _ := json.Marshal(map[string]float64{"loss": 0.25})
	val2, _ := json.Marshal(map[string]float64{"loss": 0.5})
	n1 := mustAppend(t, w, Record{Key: "a", Status: StatusOK, Value: val1})
	n2 := mustAppend(t, w, Record{Key: "b", Status: StatusFail, Attempt: 2, Error: "boom"})
	n3 := mustAppend(t, w, Record{Key: "b", Status: StatusOK, Value: val2})
	if got := w.Bytes(); got != int64(n1+n2+n3) {
		t.Fatalf("Bytes() = %d, want %d", got, n1+n2+n3)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, skipped, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if recs[0].Key != "a" || recs[0].Status != StatusOK {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Attempt != 2 || recs[1].Error != "boom" {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	done := Completed(recs)
	if len(done) != 2 {
		t.Fatalf("completed = %d keys, want 2", len(done))
	}
	if string(done["b"]) != string(val2) {
		t.Fatalf("completed[b] = %s", done["b"])
	}
}

func TestOpenResumeAppendsVsTruncates(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "a", Status: StatusOK})
	w.Close()

	// Resume: the existing record survives and new ones extend it.
	w, err = Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "b", Status: StatusOK})
	w.Close()
	recs, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("resumed journal has %d records, want 2", len(recs))
	}

	// Fresh open: the journal is truncated.
	w, err = Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "c", Status: StatusOK})
	w.Close()
	recs, _, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "c" {
		t.Fatalf("truncated journal = %+v", recs)
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	recs, skipped, err := Load(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil || len(recs) != 0 || skipped != 0 {
		t.Fatalf("missing journal: recs=%v skipped=%d err=%v", recs, skipped, err)
	}
}

// TestLoadSkipsCorruptLines: truncated trailing lines (the crash case) and
// garbage interior lines are skipped and counted, never fatal, and every
// intact record is preserved.
func TestLoadSkipsCorruptLines(t *testing.T) {
	cases := []struct {
		name    string
		corrupt string // appended raw after two good records
		skipped int
	}{
		{"truncated-tail", `{"key":"c","status":"ok","val`, 1},
		{"garbage-line", "\x00\xff not json at all\n", 1},
		{"non-record-json", `{"loss":1}` + "\n", 1},
		{"empty-lines", "\n\n\n", 0},
		{"two-bad-lines", "garbage\n{\"key\":\"d\",\"status\":\"ok\"}\ntrunc", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := tmpPath(t)
			w, err := Open(path, false)
			if err != nil {
				t.Fatal(err)
			}
			mustAppend(t, w, Record{Key: "a", Status: StatusOK})
			mustAppend(t, w, Record{Key: "b", Status: StatusOK})
			w.Close()
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.corrupt); err != nil {
				t.Fatal(err)
			}
			f.Close()

			recs, skipped, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if skipped != tc.skipped {
				t.Fatalf("skipped = %d, want %d", skipped, tc.skipped)
			}
			keys := map[string]bool{}
			for _, r := range recs {
				keys[r.Key] = true
			}
			if !keys["a"] || !keys["b"] {
				t.Fatalf("intact records lost: %+v", recs)
			}
		})
	}
}

func TestAppendRejectsEmptyKey(t *testing.T) {
	w, err := Open(tmpPath(t), false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(Record{Status: StatusOK}); err == nil {
		t.Fatal("want error for empty key")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	w, err := Open(tmpPath(t), false)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := w.Append(Record{Key: "a", Status: StatusOK}); err == nil {
		t.Fatal("want error appending to a closed writer")
	}
}

// TestConcurrentAppends: appends from many goroutines interleave without
// tearing lines (each record stays a valid JSONL line).
func TestConcurrentAppends(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := w.Append(Record{Key: fmt.Sprintf("k%d", i), Status: StatusOK}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	w.Close()
	recs, skipped, err := Load(path)
	if err != nil || skipped != 0 {
		t.Fatalf("load: skipped=%d err=%v", skipped, err)
	}
	if len(recs) != n {
		t.Fatalf("records = %d, want %d", len(recs), n)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.tsv")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello\nworld\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\nworld\n" {
		t.Fatalf("content = %q", got)
	}

	// Overwrite succeeds and fully replaces.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v2\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2\n" {
		t.Fatalf("overwritten content = %q", got)
	}

	// A failing write callback leaves the previous version intact and no
	// temp litter behind.
	wantErr := fmt.Errorf("sink broke")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return wantErr
	}); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2\n" {
		t.Fatalf("failed write clobbered file: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
