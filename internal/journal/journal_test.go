package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"lrd/internal/faultinject"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.journal")
}

func mustAppend(t *testing.T, w *Writer, rec Record) int {
	t.Helper()
	n, err := w.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAppendLoadRoundTrip(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	val1, _ := json.Marshal(map[string]float64{"loss": 0.25})
	val2, _ := json.Marshal(map[string]float64{"loss": 0.5})
	n1 := mustAppend(t, w, Record{Key: "a", Status: StatusOK, Value: val1})
	n2 := mustAppend(t, w, Record{Key: "b", Status: StatusFail, Attempt: 2, Error: "boom"})
	n3 := mustAppend(t, w, Record{Key: "b", Status: StatusOK, Value: val2})
	if got := w.Bytes(); got != int64(n1+n2+n3) {
		t.Fatalf("Bytes() = %d, want %d", got, n1+n2+n3)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrupt() != 0 {
		t.Fatalf("skipped = %d, want 0", stats.Corrupt())
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if recs[0].Key != "a" || recs[0].Status != StatusOK {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Attempt != 2 || recs[1].Error != "boom" {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	done := Completed(recs)
	if len(done) != 2 {
		t.Fatalf("completed = %d keys, want 2", len(done))
	}
	if string(done["b"]) != string(val2) {
		t.Fatalf("completed[b] = %s", done["b"])
	}
}

func TestOpenResumeAppendsVsTruncates(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "a", Status: StatusOK})
	w.Close()

	// Resume: the existing record survives and new ones extend it.
	w, err = Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "b", Status: StatusOK})
	w.Close()
	recs, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("resumed journal has %d records, want 2", len(recs))
	}

	// Fresh open: the journal is truncated.
	w, err = Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "c", Status: StatusOK})
	w.Close()
	recs, _, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "c" {
		t.Fatalf("truncated journal = %+v", recs)
	}
}

// TestOpenResumeTerminatesTornTail: resuming a journal whose last line was
// torn by a crash must not glue the first new record onto the fragment —
// Open terminates the torn line so the new record survives and the
// fragment is counted as the one corrupt (now interior) line.
func TestOpenResumeTerminatesTornTail(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "a", Status: StatusOK})
	w.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"b","status":"ok","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, err = Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, Record{Key: "c", Status: StatusOK})
	w.Close()

	recs, stats, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, r := range recs {
		keys[r.Key] = true
	}
	if !keys["a"] || !keys["c"] {
		t.Fatalf("records after torn-tail resume = %+v (record written after resume was lost)", recs)
	}
	if stats.Corrupt() != 1 {
		t.Fatalf("stats = %+v, want exactly the torn fragment corrupt", stats)
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	recs, stats, err := Load(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil || len(recs) != 0 || stats.Corrupt() != 0 {
		t.Fatalf("missing journal: recs=%v stats=%+v err=%v", recs, stats, err)
	}
}

// TestLoadSkipsCorruptLines: truncated trailing lines (the crash case) and
// garbage interior lines are skipped and counted — each kind separately,
// because only the trailing tear is a clean-crash artifact — never fatal,
// and every intact record is preserved.
func TestLoadSkipsCorruptLines(t *testing.T) {
	cases := []struct {
		name     string
		corrupt  string // appended raw after two good records
		interior int
		trailing int
	}{
		{"truncated-tail", `{"key":"c","status":"ok","val`, 0, 1},
		{"garbage-line", "\x00\xff not json at all\n", 0, 1},
		{"non-record-json", `{"loss":1}` + "\n", 0, 1},
		{"empty-lines", "\n\n\n", 0, 0},
		{"two-bad-lines", "garbage\n{\"key\":\"d\",\"status\":\"ok\"}\ntrunc", 1, 1},
		{"interior-only", "garbage\n{\"key\":\"d\",\"status\":\"ok\"}\n", 1, 0},
		{"two-interior", "garbage\nworse\n{\"key\":\"d\",\"status\":\"ok\"}\n", 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := tmpPath(t)
			w, err := Open(path, false)
			if err != nil {
				t.Fatal(err)
			}
			mustAppend(t, w, Record{Key: "a", Status: StatusOK})
			mustAppend(t, w, Record{Key: "b", Status: StatusOK})
			w.Close()
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.corrupt); err != nil {
				t.Fatal(err)
			}
			f.Close()

			recs, stats, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if stats.CorruptInterior != tc.interior || stats.CorruptTrailing != tc.trailing {
				t.Fatalf("stats = %+v, want interior %d / trailing %d", stats, tc.interior, tc.trailing)
			}
			keys := map[string]bool{}
			for _, r := range recs {
				keys[r.Key] = true
			}
			if !keys["a"] || !keys["b"] {
				t.Fatalf("intact records lost: %+v", recs)
			}
		})
	}
}

func TestAppendRejectsEmptyKey(t *testing.T) {
	w, err := Open(tmpPath(t), false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(Record{Status: StatusOK}); err == nil {
		t.Fatal("want error for empty key")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	w, err := Open(tmpPath(t), false)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := w.Append(Record{Key: "a", Status: StatusOK}); err == nil {
		t.Fatal("want error appending to a closed writer")
	}
}

// TestConcurrentAppends: appends from many goroutines interleave without
// tearing lines (each record stays a valid JSONL line).
func TestConcurrentAppends(t *testing.T) {
	path := tmpPath(t)
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := w.Append(Record{Key: fmt.Sprintf("k%d", i), Status: StatusOK}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	w.Close()
	recs, stats, err := Load(path)
	if err != nil || stats.Corrupt() != 0 {
		t.Fatalf("load: skipped=%d err=%v", stats.Corrupt(), err)
	}
	if len(recs) != n {
		t.Fatalf("records = %d, want %d", len(recs), n)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.tsv")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello\nworld\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\nworld\n" {
		t.Fatalf("content = %q", got)
	}

	// Overwrite succeeds and fully replaces.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v2\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2\n" {
		t.Fatalf("overwritten content = %q", got)
	}

	// A failing write callback leaves the previous version intact and no
	// temp litter behind.
	wantErr := fmt.Errorf("sink broke")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return wantErr
	}); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2\n" {
		t.Fatalf("failed write clobbered file: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// TestWriteFileAtomicDirSyncFailure: when the directory fsync after the
// rename fails, the error is reported — the caller must know durability of
// the rename is in doubt — but the rename has already happened, so the file
// on disk is the NEW content, and no temp litter remains.
func TestWriteFileAtomicDirSyncFailure(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "out.tsv")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v1\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	faultinject.ArmErr(faultinject.JournalDirSync, func() error {
		return fmt.Errorf("injected dir-sync failure")
	})
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v2\n")
		return err
	})
	faultinject.DisarmErr(faultinject.JournalDirSync)
	if err == nil || !strings.Contains(err.Error(), "injected dir-sync failure") {
		t.Fatalf("err = %v, want injected dir-sync failure", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "v2\n" {
		t.Fatalf("content after failed dir sync = %q, want new version (rename already happened)", got)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// TestAppendInjectedFailurePoisonsWriter: an injected append failure is
// returned and poisons the writer — later appends fail with the same error
// instead of silently losing durability.
func TestAppendInjectedFailurePoisonsWriter(t *testing.T) {
	defer faultinject.Reset()
	w, err := Open(tmpPath(t), false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mustAppend(t, w, Record{Key: "a", Status: StatusOK})

	faultinject.ArmErr(faultinject.JournalAppend, func() error {
		return fmt.Errorf("injected append failure")
	})
	_, err = w.Append(Record{Key: "b", Status: StatusOK})
	faultinject.DisarmErr(faultinject.JournalAppend)
	if err == nil || !strings.Contains(err.Error(), "injected append failure") {
		t.Fatalf("err = %v, want injected append failure", err)
	}
	// Poisoned: the hook is disarmed but the writer stays broken.
	if _, err := w.Append(Record{Key: "c", Status: StatusOK}); err == nil || !strings.Contains(err.Error(), "injected append failure") {
		t.Fatalf("append after poison: err = %v, want the original failure", err)
	}
}

// TestCompletedEpochFencing: the completion written under the highest
// fencing epoch wins regardless of file order, so a zombie worker whose
// lease was stolen cannot overwrite the new holder's result by appending
// late.
func TestCompletedEpochFencing(t *testing.T) {
	v := func(s string) json.RawMessage { return json.RawMessage(`"` + s + `"`) }
	recs := []Record{
		{Key: "cell", Status: StatusOK, Worker: "w1", Epoch: 1, Value: v("first")},
		{Key: "cell", Status: StatusOK, Worker: "w2", Epoch: 3, Value: v("newest")},
		// Zombie: stale epoch, later in the file. Must lose.
		{Key: "cell", Status: StatusOK, Worker: "w1", Epoch: 2, Value: v("zombie")},
	}
	done := Completed(recs)
	if string(done["cell"]) != `"newest"` {
		t.Fatalf("completed[cell] = %s, want the epoch-3 value", done["cell"])
	}

	// Within an epoch, file order still applies: last wins.
	recs = []Record{
		{Key: "cell", Status: StatusOK, Epoch: 2, Value: v("old")},
		{Key: "cell", Status: StatusOK, Epoch: 2, Value: v("new")},
	}
	if done = Completed(recs); string(done["cell"]) != `"new"` {
		t.Fatalf("same-epoch completed[cell] = %s, want last in file order", done["cell"])
	}

	// A stale-epoch fail cannot invalidate a newer completion; a fail at the
	// winning epoch or later does.
	recs = []Record{
		{Key: "cell", Status: StatusOK, Epoch: 3, Value: v("good")},
		{Key: "cell", Status: StatusFail, Epoch: 2, Error: "zombie fail"},
	}
	if done = Completed(recs); string(done["cell"]) != `"good"` {
		t.Fatalf("stale fail invalidated a newer completion: %v", done)
	}
	recs = append(recs, Record{Key: "cell", Status: StatusFail, Epoch: 3, Error: "real fail"})
	if done = Completed(recs); len(done) != 0 {
		t.Fatalf("fail at winning epoch did not invalidate: %v", done)
	}

	// Claimed records are coordination, never outcomes.
	recs = []Record{
		{Key: "cell", Status: StatusClaimed, Worker: "w1", Epoch: 5, Deadline: 1},
	}
	if done = Completed(recs); len(done) != 0 {
		t.Fatalf("claimed record leaked into completed: %v", done)
	}
}

// TestReadFrom: incremental tail-following consumes only newline-terminated
// lines, leaves an in-flight append for the next call, and counts corrupt
// complete lines.
func TestReadFrom(t *testing.T) {
	path := tmpPath(t)

	// Missing file reads as empty and does not advance the offset.
	recs, corrupt, next, err := ReadFrom(path, 0)
	if err != nil || len(recs) != 0 || corrupt.Total() != 0 || next != 0 {
		t.Fatalf("missing file: recs=%v corrupt=%v next=%d err=%v", recs, corrupt, next, err)
	}

	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mustAppend(t, w, Record{Key: "a", Status: StatusOK})
	mustAppend(t, w, Record{Key: "b", Status: StatusClaimed, Worker: "w1", Epoch: 1, Deadline: 99})

	recs, corrupt, next, err = ReadFrom(path, 0)
	if err != nil || corrupt.Total() != 0 {
		t.Fatalf("first read: corrupt=%v err=%v", corrupt, err)
	}
	if len(recs) != 2 || recs[0].Key != "a" || recs[1].Worker != "w1" {
		t.Fatalf("first read records = %+v", recs)
	}
	if next != w.Bytes() {
		t.Fatalf("next = %d, want %d (all bytes consumed)", next, w.Bytes())
	}

	// Nothing new: no records, offset unchanged.
	recs, _, next2, err := ReadFrom(path, next)
	if err != nil || len(recs) != 0 || next2 != next {
		t.Fatalf("idle read: recs=%v next=%d err=%v", recs, next2, err)
	}

	// An unterminated tail (append in flight) is left unconsumed...
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"c","status":"ok"`); err != nil {
		t.Fatal(err)
	}
	recs, _, next2, err = ReadFrom(path, next)
	if err != nil || len(recs) != 0 || next2 != next {
		t.Fatalf("in-flight tail consumed: recs=%v next=%d err=%v", recs, next2, err)
	}
	// ...and consumed once the newline lands.
	if _, err := f.WriteString("}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, corrupt, next, err = ReadFrom(path, next)
	if err != nil || corrupt.Total() != 0 || len(recs) != 1 || recs[0].Key != "c" {
		t.Fatalf("completed tail: recs=%+v corrupt=%v err=%v", recs, corrupt, err)
	}

	// A complete-but-undecodable line is counted corrupt and skipped.
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage line\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, corrupt, _, err = ReadFrom(path, next)
	if err != nil || corrupt.Corrupt != 1 || len(recs) != 0 {
		t.Fatalf("corrupt line: recs=%v corrupt=%v err=%v", recs, corrupt, err)
	}
}
