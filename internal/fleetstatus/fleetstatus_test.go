package fleetstatus

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lrd/internal/journal"
)

// fixedNow pins the aggregator clock so lease-remaining math is exact.
var fixedNow = time.Unix(1_700_000_000, 0)

func writeRecords(t *testing.T, path string, recs []journal.Record) {
	t.Helper()
	w, err := journal.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func newAgg(t *testing.T, recs []journal.Record, opts Options) *Aggregator {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.journal")
	writeRecords(t, path, recs)
	if opts.Now == nil {
		opts.Now = func() time.Time { return fixedNow }
	}
	return New(path, opts)
}

func deadline(d time.Duration) int64 { return fixedNow.Add(d).UnixNano() }

func TestMissingJournalIsEmpty(t *testing.T) {
	a := New(filepath.Join(t.TempDir(), "absent.journal"), Options{Now: func() time.Time { return fixedNow }})
	st, err := a.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsDone != 0 || st.CellsInFlight != 0 || len(st.Workers) != 0 {
		t.Fatalf("empty status = %+v", st)
	}
}

// TestFoldLifecycle: claims, renewals, releases, completions, and the
// per-worker counters they produce.
func TestFoldLifecycle(t *testing.T) {
	a := newAgg(t, []journal.Record{
		// w1 claims a, renews it, completes it.
		{Key: "a", Status: journal.StatusClaimed, Worker: "w1", Epoch: 1, Deadline: deadline(time.Second)},
		{Key: "a", Status: journal.StatusClaimed, Worker: "w1", Epoch: 1, Deadline: deadline(2 * time.Second)},
		{Key: "a", Status: journal.StatusOK, Worker: "w1", Epoch: 1},
		// w1 claims b and releases it; w2 picks it up and holds it live.
		{Key: "b", Status: journal.StatusClaimed, Worker: "w1", Epoch: 1, Deadline: deadline(time.Second)},
		{Key: "b", Status: journal.StatusClaimed, Worker: "w1", Epoch: 1, Deadline: 0},
		{Key: "b", Status: journal.StatusClaimed, Worker: "w2", Epoch: 2, Deadline: deadline(30 * time.Second)},
		// w2 logs one failed attempt at b along the way.
		{Key: "b", Status: journal.StatusFail, Worker: "w2", Epoch: 2, Error: "transient"},
	}, Options{ExpectedCells: 4})

	st, err := a.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsDone != 1 || st.CellsInFlight != 1 {
		t.Fatalf("done/inflight = %d/%d, want 1/1", st.CellsDone, st.CellsInFlight)
	}
	if st.CompletionPct != 25 {
		t.Fatalf("completion = %g, want 25", st.CompletionPct)
	}
	if st.Failures != 1 {
		t.Fatalf("failures = %d, want 1", st.Failures)
	}
	byName := map[string]WorkerStatus{}
	for _, w := range st.Workers {
		byName[w.Worker] = w
	}
	w1 := byName["w1"]
	if w1.Claimed != 2 || w1.Completed != 1 || w1.Renewed != 1 || w1.Released != 1 || w1.LiveLeases != 0 {
		t.Fatalf("w1 = %+v", w1)
	}
	w2 := byName["w2"]
	if w2.Claimed != 1 || w2.LiveLeases != 1 || w2.Stolen != 0 || w2.Failures != 1 {
		t.Fatalf("w2 = %+v", w2)
	}
	if w2.Straggler || w2.MinLeaseRemaining < 29 || w2.MinLeaseRemaining > 30 {
		t.Fatalf("w2 lease view = straggler %v, remaining %g", w2.Straggler, w2.MinLeaseRemaining)
	}
}

// TestStealAndZombieFencing: an expired lease taken at a higher epoch
// counts as a steal, and a zombie's stale-epoch completion is fenced.
func TestStealAndZombieFencing(t *testing.T) {
	a := newAgg(t, []journal.Record{
		{Key: "c", Status: journal.StatusClaimed, Worker: "victim", Epoch: 1, Deadline: deadline(-time.Second)},
		{Key: "c", Status: journal.StatusClaimed, Worker: "thief", Epoch: 2, Deadline: deadline(time.Minute)},
		{Key: "c", Status: journal.StatusOK, Worker: "thief", Epoch: 2},
		// The victim wakes up and writes its stale result: fenced, not
		// double-counted.
		{Key: "c", Status: journal.StatusOK, Worker: "victim", Epoch: 1},
		// Its stale claim on the finished cell is ignored too.
		{Key: "c", Status: journal.StatusClaimed, Worker: "victim", Epoch: 1, Deadline: deadline(time.Minute)},
	}, Options{})

	st, err := a.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsDone != 1 || st.CellsInFlight != 0 {
		t.Fatalf("done/inflight = %d/%d, want 1/0", st.CellsDone, st.CellsInFlight)
	}
	byName := map[string]WorkerStatus{}
	for _, w := range st.Workers {
		byName[w.Worker] = w
	}
	if got := byName["thief"]; got.Stolen != 1 || got.Completed != 1 {
		t.Fatalf("thief = %+v", got)
	}
	if got := byName["victim"]; got.Completed != 0 {
		t.Fatalf("victim credited with a fenced completion: %+v", got)
	}
	if st.CompletionPct != 100 {
		t.Fatalf("completion = %g, want 100 (1 done, 0 in flight, no expected)", st.CompletionPct)
	}
}

// TestStragglerFlag: a live lease past its deadline marks the worker.
func TestStragglerFlag(t *testing.T) {
	a := newAgg(t, []journal.Record{
		{Key: "d", Status: journal.StatusClaimed, Worker: "slow", Epoch: 1, Deadline: deadline(-5 * time.Second)},
	}, Options{})
	st, err := a.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Stragglers != 1 {
		t.Fatalf("stragglers = %d, want 1", st.Stragglers)
	}
	if len(st.Workers) != 1 || !st.Workers[0].Straggler || st.Workers[0].MinLeaseRemaining >= 0 {
		t.Fatalf("workers = %+v", st.Workers)
	}
}

// TestIncrementalRefresh: a second Status() folds only appended bytes.
func TestIncrementalRefresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	writeRecords(t, path, []journal.Record{
		{Key: "a", Status: journal.StatusClaimed, Worker: "w1", Epoch: 1, Deadline: deadline(time.Minute)},
	})
	a := New(path, Options{Now: func() time.Time { return fixedNow }})
	st, err := a.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsInFlight != 1 || st.CellsDone != 0 {
		t.Fatalf("first fold = %+v", st)
	}
	writeRecords(t, path, []journal.Record{
		{Key: "a", Status: journal.StatusOK, Worker: "w1", Epoch: 1},
	})
	st, err = a.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsDone != 1 || st.CellsInFlight != 0 {
		t.Fatalf("incremental fold = %+v", st)
	}
}

// TestCorruptLinesCounted: torn garbage is surfaced, not fatal.
func TestCorruptLinesCounted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	writeRecords(t, path, []journal.Record{
		{Key: "a", Status: journal.StatusOK, Worker: "w1", Epoch: 1},
	})
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{torn garbage\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	a := New(path, Options{Now: func() time.Time { return fixedNow }})
	st, err := a.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.CorruptLines != 1 || st.CellsDone != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestWriteText(t *testing.T) {
	a := newAgg(t, []journal.Record{
		{Key: "a", Status: journal.StatusClaimed, Worker: "w1", Epoch: 1, Deadline: deadline(time.Minute)},
		{Key: "a", Status: journal.StatusOK, Worker: "w1", Epoch: 1},
		{Key: "b", Status: journal.StatusClaimed, Worker: "w2", Epoch: 1, Deadline: deadline(-time.Second)},
	}, Options{ExpectedCells: 2})
	st, err := a.Status()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"1 completed, 1 in flight, 2 expected",
		"(50.0% complete)",
		"1 straggler(s)",
		"STRAGGLER",
		"w1", "w2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("table missing %q:\n%s", want, text)
		}
	}
}
