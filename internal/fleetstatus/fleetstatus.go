// Package fleetstatus derives a live fleet view from the shared work
// journal alone. Because the lease protocol (internal/core.LeaseStore)
// writes every claim, renewal, release, and completion as a journal
// record, *any* process that can read the journal can reconstruct who is
// doing what — without talking to the workers. The Aggregator tails the
// journal incrementally (journal.ReadFrom) and folds the records with the
// same last-record-wins, epoch-fenced rules the lease store itself uses,
// yielding per-worker cells claimed/completed/stolen, live lease
// deadlines, straggler flags, and grid completion.
//
// It backs `GET /v1/status` (plus the SSE stream) on lrdserve and the
// `lrdsweep -status` / lrdtop watch surfaces.
package fleetstatus

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"lrd/internal/journal"
)

// Options configures an Aggregator.
type Options struct {
	// ExpectedCells, when positive, is the full grid size, enabling a real
	// completion percentage (the journal alone cannot know cells that were
	// never attempted).
	ExpectedCells int
	// Now overrides the wall clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// claim is one live lease reconstructed from the journal.
type claim struct {
	worker   string
	epoch    int64
	deadline int64 // UnixNano
}

// cellState is the folded state of one journal key.
type cellState struct {
	done      bool
	doneEpoch int64
	claim     *claim
}

// workerAgg accumulates one worker's counters across the fold.
type workerAgg struct {
	claimed   int
	completed int
	stolen    int
	released  int
	renewed   int
	failures  int
}

// Aggregator tails one journal and maintains the folded fleet state. Safe
// for concurrent use; each Refresh reads only the bytes appended since
// the previous one.
type Aggregator struct {
	path string
	opts Options

	mu      sync.Mutex
	offset  int64
	corrupt int
	crcBad  int
	reopens int
	fi      os.FileInfo // identity of the file the offset belongs to
	cells   map[string]*cellState
	workers map[string]*workerAgg
}

// New returns an Aggregator tailing the journal at path. The journal may
// not exist yet; Refresh treats a missing file as empty.
func New(path string, opts Options) *Aggregator {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Aggregator{
		path:    path,
		opts:    opts,
		cells:   map[string]*cellState{},
		workers: map[string]*workerAgg{},
	}
}

// Refresh folds any records appended since the last call. If the journal
// file was atomically replaced since then (compaction renames a rewritten
// file over it) or truncated below the tail offset, the stale fold is
// discarded and the new file re-folded from the start instead of erroring
// out or silently reading garbage at the old offset.
func (a *Aggregator) Refresh() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if fi, err := os.Stat(a.path); err == nil {
		if a.fi != nil && (!os.SameFile(a.fi, fi) || fi.Size() < a.offset) {
			a.resetLocked()
		}
		a.fi = fi
	} else if !os.IsNotExist(err) {
		return err
	}
	records, tail, next, err := journal.ReadFrom(a.path, a.offset)
	if err != nil {
		return err
	}
	a.offset = next
	a.corrupt += tail.Corrupt
	a.crcBad += tail.CrcMismatch
	for _, rec := range records {
		a.fold(rec)
	}
	return nil
}

// resetLocked discards the folded state so the (replaced) journal re-folds
// from offset 0. The reopen count survives as the audit trail.
func (a *Aggregator) resetLocked() {
	a.offset = 0
	a.corrupt = 0
	a.crcBad = 0
	a.reopens++
	a.cells = map[string]*cellState{}
	a.workers = map[string]*workerAgg{}
}

func (a *Aggregator) worker(name string) *workerAgg {
	w := a.workers[name]
	if w == nil {
		w = &workerAgg{}
		a.workers[name] = w
	}
	return w
}

func (a *Aggregator) cell(key string) *cellState {
	c := a.cells[key]
	if c == nil {
		c = &cellState{}
		a.cells[key] = c
	}
	return c
}

// fold applies one record with the lease store's conflict rules: ok
// records with a current-or-newer epoch complete the cell and consume its
// claim; claimed records with Deadline <= 0 release; a higher-epoch claim
// supersedes (steals) a live one; a same-holder claim is a renewal.
func (a *Aggregator) fold(rec journal.Record) {
	c := a.cell(rec.Key)
	switch rec.Status {
	case journal.StatusOK:
		if c.done && rec.Epoch < c.doneEpoch {
			return // zombie completion, fenced off
		}
		if !c.done {
			a.worker(rec.Worker).completed++
		}
		c.done, c.doneEpoch, c.claim = true, rec.Epoch, nil
	case journal.StatusFail:
		a.worker(rec.Worker).failures++
	case journal.StatusClaimed:
		if c.done {
			return // stale claim on a finished cell
		}
		if rec.Deadline <= 0 {
			// Release: only the current holder's release clears the claim.
			if c.claim != nil && c.claim.worker == rec.Worker && c.claim.epoch == rec.Epoch {
				c.claim = nil
				a.worker(rec.Worker).released++
			}
			return
		}
		switch {
		case c.claim == nil:
			a.worker(rec.Worker).claimed++
			c.claim = &claim{worker: rec.Worker, epoch: rec.Epoch, deadline: rec.Deadline}
		case c.claim.worker == rec.Worker && c.claim.epoch == rec.Epoch:
			// Heartbeat renewal: deadlines only ever extend.
			if rec.Deadline > c.claim.deadline {
				c.claim.deadline = rec.Deadline
			}
			a.worker(rec.Worker).renewed++
		case rec.Epoch > c.claim.epoch:
			// A newer fencing epoch supersedes the live claim — a steal when
			// the previous holder was someone else (it let the lease expire).
			if c.claim.worker != rec.Worker {
				a.worker(rec.Worker).stolen++
			}
			a.worker(rec.Worker).claimed++
			c.claim = &claim{worker: rec.Worker, epoch: rec.Epoch, deadline: rec.Deadline}
		}
		// An equal-or-older epoch from another worker lost the claim race;
		// the file-order winner already holds the cell.
	}
}

// WorkerStatus is one worker's folded view.
type WorkerStatus struct {
	Worker string `json:"worker"`
	// Claimed counts leases this worker took (first claims and steals).
	Claimed int `json:"cells_claimed"`
	// Completed counts cells whose first completion this worker wrote.
	Completed int `json:"cells_completed"`
	// Stolen counts expired leases this worker took over from a peer.
	Stolen int `json:"leases_stolen"`
	// Released counts leases handed back without completion.
	Released int `json:"leases_released"`
	// Renewed counts heartbeat renewals.
	Renewed int `json:"leases_renewed"`
	// Failures counts failed attempts recorded by this worker.
	Failures int `json:"failed_attempts,omitempty"`
	// LiveLeases is the number of cells this worker currently holds.
	LiveLeases int `json:"live_leases"`
	// MinLeaseRemaining is the seconds until the nearest live lease
	// expires; negative means at least one lease is already expired
	// (meaningful only when LiveLeases > 0).
	MinLeaseRemaining float64 `json:"min_lease_remaining_s"`
	// Straggler is set when the worker holds an expired, unsuperseded
	// lease — it stopped heartbeating and its cells are up for stealing.
	Straggler bool `json:"straggler"`
}

// Status is the fleet-wide snapshot.
type Status struct {
	Journal       string `json:"journal"`
	UnixMs        int64  `json:"unix_ms"`
	CellsDone     int    `json:"cells_completed"`
	CellsInFlight int    `json:"cells_in_flight"`
	CellsExpected int    `json:"cells_expected,omitempty"`
	// CompletionPct is 100·done/expected when the expected grid size is
	// known, else 100·done/(done+inflight) as a lower-bound estimate.
	CompletionPct float64 `json:"completion_pct"`
	Failures      int     `json:"failed_attempts"`
	CorruptLines  int     `json:"corrupt_lines"`
	// CrcMismatches counts records dropped for failing their CRC32C check.
	CrcMismatches int `json:"crc_mismatch_records,omitempty"`
	// JournalReopens counts times the tail detected the journal file was
	// atomically replaced (compaction) or truncated and re-folded it.
	JournalReopens int            `json:"journal_reopens,omitempty"`
	Stragglers     int            `json:"stragglers"`
	Workers        []WorkerStatus `json:"workers"`
}

// Status refreshes from the journal and returns the folded snapshot.
func (a *Aggregator) Status() (Status, error) {
	if err := a.Refresh(); err != nil {
		return Status{}, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.opts.Now()
	s := Status{
		Journal:        a.path,
		UnixMs:         now.UnixMilli(),
		CellsExpected:  a.opts.ExpectedCells,
		CorruptLines:   a.corrupt,
		CrcMismatches:  a.crcBad,
		JournalReopens: a.reopens,
	}
	type liveAgg struct {
		live        int
		minRemain   float64
		hasStraggle bool
	}
	live := map[string]*liveAgg{}
	for _, c := range a.cells {
		if c.done {
			s.CellsDone++
			continue
		}
		if c.claim == nil {
			continue
		}
		s.CellsInFlight++
		la := live[c.claim.worker]
		if la == nil {
			la = &liveAgg{minRemain: math.Inf(1)}
			live[c.claim.worker] = la
		}
		la.live++
		remain := time.Duration(c.claim.deadline - now.UnixNano()).Seconds()
		if remain < la.minRemain {
			la.minRemain = remain
		}
		if remain < 0 {
			la.hasStraggle = true
		}
	}
	names := make([]string, 0, len(a.workers))
	for name := range a.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := a.workers[name]
		ws := WorkerStatus{
			Worker:    name,
			Claimed:   w.claimed,
			Completed: w.completed,
			Stolen:    w.stolen,
			Released:  w.released,
			Renewed:   w.renewed,
			Failures:  w.failures,
		}
		if la := live[name]; la != nil {
			ws.LiveLeases = la.live
			ws.MinLeaseRemaining = la.minRemain
			ws.Straggler = la.hasStraggle
			if la.hasStraggle {
				s.Stragglers++
			}
		}
		s.Workers = append(s.Workers, ws)
		s.Failures += w.failures
	}
	switch {
	case s.CellsExpected > 0:
		s.CompletionPct = 100 * float64(s.CellsDone) / float64(s.CellsExpected)
	case s.CellsDone+s.CellsInFlight > 0:
		s.CompletionPct = 100 * float64(s.CellsDone) / float64(s.CellsDone+s.CellsInFlight)
	}
	return s, nil
}

// WriteText renders the status as a human-readable table (the lrdsweep
// -status / lrdtop surface).
func (s Status) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "fleet status — journal %s\n", s.Journal)
	fmt.Fprintf(w, "cells: %d completed, %d in flight", s.CellsDone, s.CellsInFlight)
	if s.CellsExpected > 0 {
		fmt.Fprintf(w, ", %d expected", s.CellsExpected)
	}
	fmt.Fprintf(w, " (%.1f%% complete)", s.CompletionPct)
	if s.Failures > 0 {
		fmt.Fprintf(w, ", %d failed attempts", s.Failures)
	}
	if s.CorruptLines > 0 {
		fmt.Fprintf(w, ", %d corrupt lines", s.CorruptLines)
	}
	if s.CrcMismatches > 0 {
		fmt.Fprintf(w, ", %d CRC-mismatched records", s.CrcMismatches)
	}
	if s.JournalReopens > 0 {
		fmt.Fprintf(w, ", %d journal reopen(s)", s.JournalReopens)
	}
	if s.Stragglers > 0 {
		fmt.Fprintf(w, ", %d straggler(s)", s.Stragglers)
	}
	fmt.Fprintln(w)
	if len(s.Workers) == 0 {
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "worker\tclaimed\tcompleted\tstolen\treleased\trenewed\tlive\tmin-ttl\tstraggler")
	for _, ws := range s.Workers {
		name := ws.Worker
		if name == "" {
			name = "-"
		}
		minTTL := "-"
		if ws.LiveLeases > 0 {
			minTTL = fmt.Sprintf("%.1fs", ws.MinLeaseRemaining)
		}
		straggler := ""
		if ws.Straggler {
			straggler = "STRAGGLER"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
			name, ws.Claimed, ws.Completed, ws.Stolen, ws.Released, ws.Renewed,
			ws.LiveLeases, minTTL, straggler)
	}
	return tw.Flush()
}
