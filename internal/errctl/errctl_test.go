package errctl

import (
	"math/rand"
	"testing"

	"lrd/internal/dist"
	"lrd/internal/fluid"
	"lrd/internal/numerics"
)

// burstySource yields a loss process with long quiet periods and intense
// loss bursts, correlated up to the 5 s cutoff.
func burstySource(t *testing.T) fluid.Source {
	t.Helper()
	m := dist.MustMarginal([]float64{0.001, 0.6}, []float64{0.9, 0.1})
	src, err := fluid.New(m, dist.TruncatedPareto{Theta: 0.02, Alpha: 1.2, Cutoff: 5})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestGenerateLossesBasics(t *testing.T) {
	src := burstySource(t)
	rng := rand.New(rand.NewSource(1))
	losses, err := GenerateLosses(src, 200000, 0.001, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 200000 {
		t.Fatalf("len = %d", len(losses))
	}
	var lost int
	for _, l := range losses {
		if l {
			lost++
		}
	}
	rate := float64(lost) / float64(len(losses))
	want := src.MeanRate() // stationary mean loss intensity ≈ 0.0609
	if !numerics.AlmostEqual(rate, want, 0.5) {
		t.Fatalf("loss rate %v, want ≈ %v", rate, want)
	}
}

func TestGenerateLossesValidation(t *testing.T) {
	src := burstySource(t)
	rng := rand.New(rand.NewSource(2))
	if _, err := GenerateLosses(src, 0, 0.01, rng); err == nil {
		t.Fatal("want error on zero n")
	}
	if _, err := GenerateLosses(src, 10, 0, rng); err == nil {
		t.Fatal("want error on zero dt")
	}
	bad := src.WithMarginal(dist.MustMarginal([]float64{0.5, 2}, []float64{0.5, 0.5}))
	if _, err := GenerateLosses(bad, 10, 0.01, rng); err == nil {
		t.Fatal("want error on intensities outside [0, 1]")
	}
}

func TestEvaluateFECKnownSequence(t *testing.T) {
	// Blocks of 4, repair up to 1 loss.
	seq := []bool{
		false, true, false, false, // 1 loss: repaired
		true, true, false, false, // 2 losses: unrepaired
		false, false, false, false, // clean
	}
	res, err := EvaluateFEC(seq, FECParams{BlockLen: 4, MaxRepair: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 3 || res.Unrepaired != 2 || res.Packets != 12 {
		t.Fatalf("unexpected result %+v", res)
	}
	if !numerics.AlmostEqual(res.ResidualRate, 2.0/12.0, 1e-12) {
		t.Fatalf("residual = %v", res.ResidualRate)
	}
}

func TestEvaluateFECValidation(t *testing.T) {
	if _, err := EvaluateFEC(nil, FECParams{BlockLen: 4, MaxRepair: 1}); err == nil {
		t.Fatal("want error on empty sequence")
	}
	if _, err := EvaluateFEC([]bool{true}, FECParams{BlockLen: 0, MaxRepair: 0}); err == nil {
		t.Fatal("want error on zero block")
	}
	if _, err := EvaluateFEC([]bool{true}, FECParams{BlockLen: 4, MaxRepair: 4}); err == nil {
		t.Fatal("want error when repair capacity >= block length")
	}
}

func TestEvaluateARQKnownSequence(t *testing.T) {
	seq := []bool{false, true, true, true, false, true, false, false, true, true}
	res, err := EvaluateARQ(seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 6 || res.Bursts != 3 {
		t.Fatalf("unexpected result %+v", res)
	}
	if !numerics.AlmostEqual(res.MeanBurstLen, 2, 1e-12) {
		t.Fatalf("mean burst = %v", res.MeanBurstLen)
	}
	if _, err := EvaluateARQ(nil); err == nil {
		t.Fatal("want error on empty sequence")
	}
}

func TestEvaluateARQLossless(t *testing.T) {
	res, err := EvaluateARQ(make([]bool, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bursts != 0 || res.MeanBurstLen != 0 || res.RequestsPerKP != 0 {
		t.Fatalf("lossless sequence should have zero cost: %+v", res)
	}
}

func TestCompareAcrossTimescalesShowsTheTradeoff(t *testing.T) {
	// The §V claim: widening the correlation time scale of the loss
	// process favours ARQ (fewer feedback bursts per loss) and hurts FEC
	// (more unrepairable blocks).
	src := burstySource(t)
	rng := rand.New(rand.NewSource(3))
	losses, err := GenerateLosses(src, 500000, 0.001, rng)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := CompareAcrossTimescales(losses, []int{1, 100}, FECParams{BlockLen: 16, MaxRepair: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	byBlock := map[int]ComparisonPoint{}
	for _, p := range pts {
		byBlock[p.BlockLen] = p
	}
	indep := byBlock[1]   // fully shuffled: independent losses
	short := byBlock[100] // correlation up to 100 slots
	orig := byBlock[-1]   // full burstiness
	// Marginal loss rate identical across variants (shuffling invariant).
	if indep.FEC.Lost != orig.FEC.Lost {
		t.Fatalf("shuffling changed the loss count: %d vs %d", indep.FEC.Lost, orig.FEC.Lost)
	}
	// FEC degrades as correlation extends.
	if !(indep.FEC.ResidualRate < short.FEC.ResidualRate) || !(short.FEC.ResidualRate < orig.FEC.ResidualRate*1.05) {
		t.Fatalf("FEC residual should worsen with correlation: %v, %v, %v",
			indep.FEC.ResidualRate, short.FEC.ResidualRate, orig.FEC.ResidualRate)
	}
	// ARQ feedback cost per lost packet improves (bursts lengthen).
	if !(orig.ARQ.MeanBurstLen > indep.ARQ.MeanBurstLen) {
		t.Fatalf("ARQ bursts should lengthen with correlation: %v vs %v",
			orig.ARQ.MeanBurstLen, indep.ARQ.MeanBurstLen)
	}
	if !(orig.ARQ.RequestsPerKP < indep.ARQ.RequestsPerKP) {
		t.Fatalf("ARQ requests should drop with correlation: %v vs %v",
			orig.ARQ.RequestsPerKP, indep.ARQ.RequestsPerKP)
	}
}

func TestCompareAcrossTimescalesValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := CompareAcrossTimescales(nil, []int{1}, FECParams{BlockLen: 4, MaxRepair: 1}, rng); err == nil {
		t.Fatal("want error on empty losses")
	}
	if _, err := CompareAcrossTimescales([]bool{true, false}, []int{0}, FECParams{BlockLen: 4, MaxRepair: 1}, rng); err == nil {
		t.Fatal("want error on non-positive block length")
	}
}
