// Package errctl implements the error-control comparison sketched in the
// paper's conclusion (§V): closed-loop ARQ versus open-loop FEC under loss
// processes whose correlation extends over varying time scales.
//
// The paper's argument: ARQ performs well when losses are bursty — one
// feedback request repairs a whole burst — while FEC performs well when
// losses are spread out, because a block code recovers "among n packets,
// k <= kmax have been lost". Extending the time scale of the correlation
// in the loss process therefore increases the advantage of ARQ over FEC.
// This package makes that comparison executable: a correlated loss
// sequence is generated (or taken from a queue simulation), its correlation
// time scale is manipulated by external shuffling exactly as in §III, and
// both schemes are evaluated on every variant.
package errctl

import (
	"errors"
	"fmt"
	"math/rand"

	"lrd/internal/fluid"
	"lrd/internal/shuffle"
)

// GenerateLosses produces a binary loss sequence of n packet slots spaced
// dt seconds apart, by sampling an on/off modulated process: the source's
// rate levels are interpreted as loss intensities in [0, 1] (probability
// that a packet in that epoch is lost). Using a cutoff-correlated fluid
// source yields a loss process with the same controllable correlation
// structure as the paper's traffic model.
func GenerateLosses(src fluid.Source, n int, dt float64, rng *rand.Rand) ([]bool, error) {
	if n <= 0 || !(dt > 0) {
		return nil, errors.New("errctl: need positive n and dt")
	}
	if src.Marginal.Min() < 0 || src.Marginal.Max() > 1 {
		return nil, fmt.Errorf("errctl: rate levels must be loss intensities in [0, 1], got [%v, %v]",
			src.Marginal.Min(), src.Marginal.Max())
	}
	out := make([]bool, n)
	var remaining float64
	intensity := 0.0
	for i := 0; i < n; i++ {
		for remaining <= 0 {
			remaining += src.Interarrival.Sample(rng)
			intensity = src.Marginal.Sample(rng)
		}
		out[i] = rng.Float64() < intensity
		remaining -= dt
	}
	return out, nil
}

// FECParams describes a systematic block code: BlockLen packets per block
// of which up to MaxRepair losses can be repaired (an (n, n−kmax)-style
// erasure code with kmax = MaxRepair).
type FECParams struct {
	BlockLen  int
	MaxRepair int
}

// FECResult reports open-loop error-control performance.
type FECResult struct {
	Packets      int
	Lost         int     // channel losses before repair
	Unrepaired   int     // losses in blocks that exceeded MaxRepair
	ResidualRate float64 // Unrepaired / Packets
}

// EvaluateFEC applies the block code to a loss sequence: blocks with at
// most MaxRepair losses are fully repaired; blocks beyond the repair
// capacity keep all their losses (the erasure code fails as a unit).
func EvaluateFEC(losses []bool, p FECParams) (FECResult, error) {
	if p.BlockLen <= 0 || p.MaxRepair < 0 || p.MaxRepair >= p.BlockLen {
		return FECResult{}, fmt.Errorf("errctl: invalid FEC parameters %+v", p)
	}
	if len(losses) == 0 {
		return FECResult{}, errors.New("errctl: empty loss sequence")
	}
	var res FECResult
	res.Packets = len(losses)
	for lo := 0; lo < len(losses); lo += p.BlockLen {
		hi := lo + p.BlockLen
		if hi > len(losses) {
			hi = len(losses)
		}
		k := 0
		for _, l := range losses[lo:hi] {
			if l {
				k++
			}
		}
		res.Lost += k
		if k > p.MaxRepair {
			res.Unrepaired += k
		}
	}
	res.ResidualRate = float64(res.Unrepaired) / float64(res.Packets)
	return res, nil
}

// ARQResult reports closed-loop error-control performance. Every loss is
// eventually repaired by retransmission; the cost is feedback traffic and
// delay, which scale with the number of loss *bursts* (one NACK round
// repairs a whole burst, the paper's "in one go" argument).
type ARQResult struct {
	Packets       int
	Lost          int
	Bursts        int     // maximal runs of consecutive losses
	MeanBurstLen  float64 // Lost / Bursts (0 when lossless)
	RequestsPerKP float64 // feedback requests per 1000 packets
}

// EvaluateARQ scans the loss sequence for bursts.
func EvaluateARQ(losses []bool) (ARQResult, error) {
	if len(losses) == 0 {
		return ARQResult{}, errors.New("errctl: empty loss sequence")
	}
	var res ARQResult
	res.Packets = len(losses)
	inBurst := false
	for _, l := range losses {
		if l {
			res.Lost++
			if !inBurst {
				res.Bursts++
				inBurst = true
			}
		} else {
			inBurst = false
		}
	}
	if res.Bursts > 0 {
		res.MeanBurstLen = float64(res.Lost) / float64(res.Bursts)
	}
	res.RequestsPerKP = 1000 * float64(res.Bursts) / float64(res.Packets)
	return res, nil
}

// ComparisonPoint is one row of the time-scale sweep.
type ComparisonPoint struct {
	// BlockLen is the shuffle block length in packet slots (0 = fully
	// shuffled / independent losses; -1 = original unshuffled sequence).
	BlockLen int
	FEC      FECResult
	ARQ      ARQResult
}

// CompareAcrossTimescales evaluates both schemes on the original loss
// sequence and on externally shuffled variants with the given block
// lengths. Shuffling with a short block destroys long-range loss
// correlation (losses spread out — FEC's favourable regime); the original
// sequence keeps full burstiness (ARQ's favourable regime). The marginal
// loss rate is identical across all variants, isolating the pure effect of
// the correlation time scale, exactly as the paper's shuffling methodology
// isolates it for queueing loss.
func CompareAcrossTimescales(losses []bool, blockLens []int, fec FECParams, rng *rand.Rand) ([]ComparisonPoint, error) {
	if len(losses) == 0 {
		return nil, errors.New("errctl: empty loss sequence")
	}
	asFloat := make([]float64, len(losses))
	for i, l := range losses {
		if l {
			asFloat[i] = 1
		}
	}
	eval := func(blockLen int, seq []bool) (ComparisonPoint, error) {
		f, err := EvaluateFEC(seq, fec)
		if err != nil {
			return ComparisonPoint{}, err
		}
		a, err := EvaluateARQ(seq)
		if err != nil {
			return ComparisonPoint{}, err
		}
		return ComparisonPoint{BlockLen: blockLen, FEC: f, ARQ: a}, nil
	}
	out := make([]ComparisonPoint, 0, len(blockLens)+1)
	orig, err := eval(-1, losses)
	if err != nil {
		return nil, err
	}
	out = append(out, orig)
	for _, bl := range blockLens {
		if bl <= 0 {
			return nil, fmt.Errorf("errctl: block length %d must be positive", bl)
		}
		shuffled, err := shuffle.External(asFloat, bl, rng)
		if err != nil {
			return nil, err
		}
		seq := make([]bool, len(shuffled))
		for i, v := range shuffled {
			seq[i] = v != 0
		}
		p, err := eval(bl, seq)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
