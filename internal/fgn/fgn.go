// Package fgn generates exact fractional Gaussian noise (FGN) — the
// stationary increment process of fractional Brownian motion — which is the
// canonical exactly self-similar process with long-range dependence. The
// library uses it to synthesize stand-ins for the paper's proprietary MTV
// and Bellcore traces with a controlled Hurst parameter (see package
// traces and DESIGN.md §4).
//
// Two generators are provided: the Davies–Harte circulant-embedding method
// (exact in distribution, O(n log n), the default) and the Hosking
// recursion (exact, O(n²), used as an independent cross-check in tests).
package fgn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lrd/internal/fft"
)

// Autocovariance returns the FGN autocovariance at integer lag k for Hurst
// parameter h and unit variance:
//
//	γ(k) = ½(|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H})
//
// γ(0) = 1. For H > ½ the sequence decays like k^{2H−2}, i.e. hyperbolically
// — the defining signature of long-range dependence.
func Autocovariance(h float64, k int) float64 {
	if k < 0 {
		k = -k
	}
	if k == 0 {
		return 1
	}
	fk := float64(k)
	e := 2 * h
	return 0.5 * (math.Pow(fk+1, e) - 2*math.Pow(fk, e) + math.Pow(fk-1, e))
}

func validate(h float64, n int) error {
	if !(h > 0 && h < 1) {
		return fmt.Errorf("fgn: Hurst parameter %v outside (0, 1)", h)
	}
	if n <= 0 {
		return errors.New("fgn: need a positive sample count")
	}
	return nil
}

// DaviesHarte generates n samples of zero-mean unit-variance FGN with Hurst
// parameter h using circulant embedding. The method embeds the n×n Toeplitz
// covariance into a 2m-circulant whose eigenvalues (the FFT of the first
// row) are provably non-negative for FGN, takes their square roots as the
// spectral amplitudes, and synthesizes a Gaussian field with exactly the
// target covariance.
func DaviesHarte(h float64, n int, rng *rand.Rand) ([]float64, error) {
	if err := validate(h, n); err != nil {
		return nil, err
	}
	if n == 1 {
		return []float64{rng.NormFloat64()}, nil
	}
	// Embedding size: the first power of two >= 2(n-1) keeps the radix-2
	// kernel fast; m is half the circulant size.
	m := 1
	for m < n-1 {
		m <<= 1
	}
	size := 2 * m
	// First row of the circulant: γ(0..m), then mirrored γ(m−1..1).
	row := make([]complex128, size)
	for k := 0; k <= m; k++ {
		row[k] = complex(Autocovariance(h, k), 0)
	}
	for k := 1; k < m; k++ {
		row[size-k] = row[k]
	}
	eig := fft.Forward(row)
	// Spectral amplitudes; clamp the tiny negative eigenvalues roundoff can
	// produce (theory guarantees non-negativity for FGN).
	s := make([]float64, size)
	for k := range eig {
		v := real(eig[k])
		if v < 0 {
			if v < -1e-9*float64(size) {
				return nil, fmt.Errorf("fgn: circulant eigenvalue %v unexpectedly negative", v)
			}
			v = 0
		}
		s[k] = math.Sqrt(v)
	}
	// Build the randomized spectrum W with Hermitian symmetry so the
	// synthesized field is real with the right covariance.
	w := make([]complex128, size)
	inv := 1 / math.Sqrt(float64(size))
	w[0] = complex(s[0]*rng.NormFloat64()*inv, 0)
	w[m] = complex(s[m]*rng.NormFloat64()*inv, 0)
	half := 1 / math.Sqrt(2*float64(size))
	for k := 1; k < m; k++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		w[k] = complex(s[k]*a*half, s[k]*b*half)
		w[size-k] = complex(real(w[k]), -imag(w[k]))
	}
	field := fft.Forward(w)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(field[i])
	}
	return out, nil
}

// Hosking generates n samples of zero-mean unit-variance FGN with Hurst
// parameter h by the exact O(n²) Durbin–Levinson recursion. It serves as
// the reference implementation against which DaviesHarte is tested, and is
// practical up to a few tens of thousands of samples.
func Hosking(h float64, n int, rng *rand.Rand) ([]float64, error) {
	if err := validate(h, n); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	phi := make([]float64, n)
	prev := make([]float64, n)
	v := 1.0 // prediction error variance
	out[0] = rng.NormFloat64()
	for t := 1; t < n; t++ {
		// Durbin–Levinson update of the AR coefficients for lag t.
		acc := Autocovariance(h, t)
		for j := 1; j < t; j++ {
			acc -= prev[j-1] * Autocovariance(h, t-j)
		}
		kappa := acc / v
		phi[t-1] = kappa
		for j := 0; j < t-1; j++ {
			phi[j] = prev[j] - kappa*prev[t-2-j]
		}
		v *= 1 - kappa*kappa
		// Conditional mean of X_t given the past.
		var mean float64
		for j := 0; j < t; j++ {
			mean += phi[j] * out[t-1-j]
		}
		out[t] = mean + math.Sqrt(v)*rng.NormFloat64()
		copy(prev[:t], phi[:t])
	}
	return out, nil
}

// AggregateVariance returns the variance of the m-aggregated series
// implied by exact self-similarity: Var[(X_1+…+X_m)/m] = m^{2H−2}. Tests
// compare sample aggregate variances against this.
func AggregateVariance(h float64, m int) float64 {
	return math.Pow(float64(m), 2*h-2)
}
