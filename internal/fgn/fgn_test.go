package fgn

import (
	"math"
	"math/rand"
	"testing"

	"lrd/internal/numerics"
)

func TestAutocovarianceBasics(t *testing.T) {
	if Autocovariance(0.8, 0) != 1 {
		t.Fatal("γ(0) must be 1")
	}
	if Autocovariance(0.8, 5) != Autocovariance(0.8, -5) {
		t.Fatal("autocovariance must be even in the lag")
	}
	// H = 0.5 is white noise: γ(k) = 0 for k != 0.
	for _, k := range []int{1, 2, 10} {
		if g := Autocovariance(0.5, k); math.Abs(g) > 1e-12 {
			t.Fatalf("H=0.5 should be white: γ(%d) = %v", k, g)
		}
	}
	// H > 0.5: positive, hyperbolically decaying correlation.
	prev := 1.0
	for _, k := range []int{1, 2, 4, 8, 16} {
		g := Autocovariance(0.9, k)
		if g <= 0 || g >= prev {
			t.Fatalf("γ(%d) = %v, want positive and decreasing", k, g)
		}
		prev = g
	}
	// H < 0.5: negative lag-1 correlation.
	if Autocovariance(0.3, 1) >= 0 {
		t.Fatal("H<0.5 should have negative lag-1 covariance")
	}
}

func TestAutocovarianceTailExponent(t *testing.T) {
	// γ(k) ~ H(2H−1)k^{2H−2}: the log-log slope at large lags is 2H−2.
	h := 0.85
	lags := []int{64, 128, 256, 512, 1024}
	x := make([]float64, len(lags))
	y := make([]float64, len(lags))
	for i, k := range lags {
		x[i] = math.Log(float64(k))
		y[i] = math.Log(Autocovariance(h, k))
	}
	_, slope, err := numerics.LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(slope, 2*h-2, 0.02) {
		t.Fatalf("tail slope %v, want ≈ %v", slope, 2*h-2)
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, h := range []float64{0, 1, -0.5, 1.5} {
		if _, err := DaviesHarte(h, 16, rng); err == nil {
			t.Errorf("DaviesHarte accepted H=%v", h)
		}
		if _, err := Hosking(h, 16, rng); err == nil {
			t.Errorf("Hosking accepted H=%v", h)
		}
	}
	if _, err := DaviesHarte(0.8, 0, rng); err == nil {
		t.Error("DaviesHarte accepted n=0")
	}
	if _, err := Hosking(0.8, -1, rng); err == nil {
		t.Error("Hosking accepted n<0")
	}
}

func TestSingleSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, err := DaviesHarte(0.7, 1, rng)
	if err != nil || len(x) != 1 {
		t.Fatalf("n=1: %v %v", x, err)
	}
}

// sampleACF computes the biased sample autocovariance at lag k of x
// (assuming zero mean, which holds for the generators by construction).
func sampleACF(x []float64, k int) float64 {
	var acc float64
	for i := 0; i+k < len(x); i++ {
		acc += x[i] * x[i+k]
	}
	return acc / float64(len(x))
}

func TestDaviesHarteMomentsAndACF(t *testing.T) {
	// Average the sample ACF over independent replicas; the estimator is
	// consistent, so with 2^17 total samples per lag the match is tight.
	h := 0.8
	n := 1 << 13
	reps := 16
	rng := rand.New(rand.NewSource(3))
	lags := []int{0, 1, 2, 4, 8, 16}
	acc := make([]float64, len(lags))
	for r := 0; r < reps; r++ {
		x, err := DaviesHarte(h, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range lags {
			acc[i] += sampleACF(x, k)
		}
	}
	for i, k := range lags {
		got := acc[i] / float64(reps)
		want := Autocovariance(h, k)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("lag %d: sample γ = %v, theory %v", k, got, want)
		}
	}
}

func TestDaviesHarteSelfSimilarAggregateVariance(t *testing.T) {
	// Exact self-similarity: Var of the m-aggregated mean is m^{2H−2}.
	h := 0.9
	n := 1 << 16
	rng := rand.New(rand.NewSource(4))
	x, err := DaviesHarte(h, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{4, 16, 64} {
		agg := make([]float64, 0, n/m)
		for i := 0; i+m <= n; i += m {
			var s float64
			for j := 0; j < m; j++ {
				s += x[i+j]
			}
			agg = append(agg, s/float64(m))
		}
		_, v, err := numerics.MeanVar(agg)
		if err != nil {
			t.Fatal(err)
		}
		want := AggregateVariance(h, m)
		if math.Abs(v-want)/want > 0.35 {
			t.Errorf("m=%d: aggregate variance %v, theory %v", m, v, want)
		}
	}
}

func TestHoskingMatchesTheoryACF(t *testing.T) {
	if testing.Short() {
		t.Skip("O(n²) Hosking replicas are slow")
	}
	h := 0.75
	n := 4096
	reps := 8
	rng := rand.New(rand.NewSource(5))
	lags := []int{0, 1, 4, 16}
	acc := make([]float64, len(lags))
	for r := 0; r < reps; r++ {
		x, err := Hosking(h, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range lags {
			acc[i] += sampleACF(x, k)
		}
	}
	for i, k := range lags {
		got := acc[i] / float64(reps)
		want := Autocovariance(h, k)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("lag %d: sample γ = %v, theory %v", k, got, want)
		}
	}
}

func TestGeneratorsAgreeInDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("many-replica generator comparison is slow")
	}
	// Compare the two exact generators through summary statistics of many
	// short replicas: per-lag covariance estimates should agree closely.
	h := 0.85
	n := 1024
	reps := 64
	dh := rand.New(rand.NewSource(6))
	hk := rand.New(rand.NewSource(7))
	var dhACF1, hkACF1 float64
	for r := 0; r < reps; r++ {
		a, err := DaviesHarte(h, n, dh)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Hosking(h, n, hk)
		if err != nil {
			t.Fatal(err)
		}
		dhACF1 += sampleACF(a, 1)
		hkACF1 += sampleACF(b, 1)
	}
	dhACF1 /= float64(reps)
	hkACF1 /= float64(reps)
	if math.Abs(dhACF1-hkACF1) > 0.05 {
		t.Fatalf("generators disagree at lag 1: %v vs %v", dhACF1, hkACF1)
	}
}

func TestWhiteNoiseSpecialCase(t *testing.T) {
	// H = 0.5 must give i.i.d. N(0,1): lag-1 ACF ≈ 0, variance ≈ 1.
	rng := rand.New(rand.NewSource(8))
	x, err := DaviesHarte(0.5, 1<<15, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, v, err := numerics.MeanVar(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 0.05 {
		t.Fatalf("variance %v, want ≈ 1", v)
	}
	if r1 := sampleACF(x, 1); math.Abs(r1) > 0.02 {
		t.Fatalf("lag-1 ACF %v, want ≈ 0", r1)
	}
}

func TestReproducibility(t *testing.T) {
	a, err := DaviesHarte(0.8, 256, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DaviesHarte(0.8, 256, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same path")
		}
	}
}

func BenchmarkDaviesHarte65536(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DaviesHarte(0.9, 1<<16, rng); err != nil {
			b.Fatal(err)
		}
	}
}
