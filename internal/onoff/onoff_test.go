package onoff

import (
	"math"
	"math/rand"
	"testing"

	"lrd/internal/lrdest"
	"lrd/internal/numerics"
)

func params() SourceParams {
	return SourceParams{PeakRate: 1, MeanOn: 0.1, MeanOff: 0.3, AlphaOn: 1.4, AlphaOff: 1.4}
}

func TestValidate(t *testing.T) {
	if err := params().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SourceParams{
		{PeakRate: 0, MeanOn: 1, MeanOff: 1, AlphaOn: 1.5, AlphaOff: 1.5},
		{PeakRate: 1, MeanOn: 0, MeanOff: 1, AlphaOn: 1.5, AlphaOff: 1.5},
		{PeakRate: 1, MeanOn: 1, MeanOff: 1, AlphaOn: 1, AlphaOff: 1.5},
		{PeakRate: 1, MeanOn: 1, MeanOff: 1, AlphaOn: 1.5, AlphaOff: 0.9},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("accepted %+v", p)
		}
	}
}

func TestMeanRateAndHurst(t *testing.T) {
	p := params()
	if !numerics.AlmostEqual(p.MeanRate(), 0.25, 1e-12) {
		t.Fatalf("mean rate = %v", p.MeanRate())
	}
	if !numerics.AlmostEqual(p.Hurst(), 0.8, 1e-12) {
		t.Fatalf("Hurst = %v, want (3−1.4)/2 = 0.8", p.Hurst())
	}
	// The heavier tail dominates.
	p.AlphaOff = 1.2
	if !numerics.AlmostEqual(p.Hurst(), 0.9, 1e-12) {
		t.Fatalf("Hurst = %v, want 0.9", p.Hurst())
	}
}

func TestParetoSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var acc numerics.Accumulator
	n := 500000
	for i := 0; i < n; i++ {
		v := pareto(2, 1.8, rng)
		if v < 2*0.8/1.8-1e-9 {
			t.Fatalf("sample %v below the scale", v)
		}
		acc.Add(v)
	}
	if got := acc.Sum() / float64(n); math.Abs(got-2)/2 > 0.1 {
		t.Fatalf("sample mean %v, want ≈ 2", got)
	}
}

func TestAggregateBasics(t *testing.T) {
	p := params()
	rng := rand.New(rand.NewSource(2))
	tr, err := Aggregate(p, 32, 1<<14, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rates) != 1<<14 || tr.BinWidth != 0.01 {
		t.Fatalf("trace shape wrong: %d bins", len(tr.Rates))
	}
	// Aggregate mean ≈ n·per-source mean.
	mean := tr.MeanRate()
	want := 32 * p.MeanRate()
	if math.Abs(mean-want)/want > 0.2 {
		t.Fatalf("aggregate mean %v, want ≈ %v", mean, want)
	}
	// Rates bounded by total peak.
	for _, r := range tr.Rates {
		if r < 0 || r > 32*p.PeakRate+1e-9 {
			t.Fatalf("rate %v outside [0, %v]", r, 32*p.PeakRate)
		}
	}
}

func TestAggregateIsLRD(t *testing.T) {
	// The Willinger et al. construction: the aggregate of heavy-tailed
	// on/off sources is long-range dependent with H ≈ (3−α)/2.
	p := params() // α = 1.4 → H = 0.8
	rng := rand.New(rand.NewSource(3))
	tr, err := Aggregate(p, 64, 1<<15, 0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	h, err := lrdest.AbryVeitch(tr.Rates, lrdest.AbryVeitchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.7 || h > 0.95 {
		t.Fatalf("aggregate H = %v, want ≈ 0.8 (clearly LRD)", h)
	}
	// Control: exponential-ish tails (α near 2) give much weaker LRD.
	srd := p
	srd.AlphaOn, srd.AlphaOff = 1.95, 1.95
	tr2, err := Aggregate(srd, 64, 1<<15, 0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := lrdest.AbryVeitch(tr2.Rates, lrdest.AbryVeitchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h2 >= h {
		t.Fatalf("lighter tails should reduce H: %v vs %v", h2, h)
	}
}

func TestAggregateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := Aggregate(params(), 0, 10, 0.01, rng); err == nil {
		t.Fatal("want error on zero sources")
	}
	if _, err := Aggregate(params(), 1, 0, 0.01, rng); err == nil {
		t.Fatal("want error on zero bins")
	}
	if _, err := Aggregate(params(), 1, 10, 0, rng); err == nil {
		t.Fatal("want error on zero bin width")
	}
	if _, err := Aggregate(SourceParams{}, 1, 10, 0.01, rng); err == nil {
		t.Fatal("want error on invalid params")
	}
}

func TestFitSource(t *testing.T) {
	m, iv, err := FitSource(2, 0.02, 1.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 || m.Mean() != 1 {
		t.Fatalf("marginal wrong: %v", m)
	}
	if iv.Alpha != 1.2 || iv.Cutoff != 10 {
		t.Fatalf("interarrival wrong: %+v", iv)
	}
	if _, _, err := FitSource(0, 0.02, 1.2, 10); err == nil {
		t.Fatal("want error on zero peak")
	}
	if _, _, err := FitSource(1, -1, 1.2, 10); err == nil {
		t.Fatal("want error on bad theta")
	}
}
