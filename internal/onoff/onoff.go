// Package onoff implements the superposition of on/off sources with
// heavy-tailed activity periods — the construction of Willinger, Taqqu,
// Sherman & Wilson (reference [36] of the paper) that the paper cites as
// the physical explanation of long-range dependence in network traffic:
// "the superposition of many on/off sources with heavy-tailed on- and
// off-periods results in aggregate traffic with LRD", with Hurst parameter
// H = (3 − α_min)/2 where α_min is the heavier of the two period tail
// indices.
//
// The package generates binned aggregate-rate traces directly usable by
// the sim and lrdest packages, providing a second, mechanistically
// grounded LRD trace source next to the Gaussian-copula FGN synthesis in
// package traces.
package onoff

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lrd/internal/dist"
	"lrd/internal/traces"
)

// SourceParams describes one on/off source. On- and off-period lengths are
// Pareto with tail indices AlphaOn/AlphaOff and the given means; the
// source emits PeakRate while on and nothing while off.
type SourceParams struct {
	PeakRate float64 // rate while on (work units/s)
	MeanOn   float64 // mean on-period duration (s)
	MeanOff  float64 // mean off-period duration (s)
	AlphaOn  float64 // on-period tail index, 1 < α <= 2 for LRD
	AlphaOff float64 // off-period tail index
}

// Validate reports whether the parameters are usable.
func (p SourceParams) Validate() error {
	if !(p.PeakRate > 0) || !(p.MeanOn > 0) || !(p.MeanOff > 0) {
		return errors.New("onoff: peak rate and mean periods must be positive")
	}
	if !(p.AlphaOn > 1) || !(p.AlphaOff > 1) {
		return fmt.Errorf("onoff: tail indices must exceed 1 for finite means (got %v, %v)", p.AlphaOn, p.AlphaOff)
	}
	return nil
}

// MeanRate returns the long-run average rate PeakRate·MeanOn/(MeanOn+MeanOff).
func (p SourceParams) MeanRate() float64 {
	return p.PeakRate * p.MeanOn / (p.MeanOn + p.MeanOff)
}

// Hurst returns the Hurst parameter of the aggregate of many such sources:
// H = (3 − min(AlphaOn, AlphaOff))/2 (Willinger et al.).
func (p SourceParams) Hurst() float64 {
	return (3 - math.Min(p.AlphaOn, p.AlphaOff)) / 2
}

// pareto draws a Pareto variate with the given mean and tail index α:
// scale = mean·(α−1)/α, density α·scale^α/x^(α+1) on [scale, ∞).
func pareto(mean, alpha float64, rng *rand.Rand) float64 {
	scale := mean * (alpha - 1) / alpha
	return scale * math.Pow(rng.Float64(), -1/alpha)
}

// Aggregate generates a binned rate trace of the superposition of n
// independent sources with the given parameters over nbins bins of width
// binWidth seconds. Each source starts in a uniformly random phase state
// (on or off by stationary probability) with a fresh period to reduce the
// startup transient.
func Aggregate(p SourceParams, n, nbins int, binWidth float64, rng *rand.Rand) (traces.Trace, error) {
	if err := p.Validate(); err != nil {
		return traces.Trace{}, err
	}
	if n <= 0 || nbins <= 0 || !(binWidth > 0) {
		return traces.Trace{}, errors.New("onoff: need positive source count, bins, and bin width")
	}
	work := make([]float64, nbins)
	horizon := float64(nbins) * binWidth
	pOn := p.MeanOn / (p.MeanOn + p.MeanOff)
	for s := 0; s < n; s++ {
		t := 0.0
		on := rng.Float64() < pOn
		for t < horizon {
			var d float64
			if on {
				d = pareto(p.MeanOn, p.AlphaOn, rng)
			} else {
				d = pareto(p.MeanOff, p.AlphaOff, rng)
			}
			if on {
				// Deposit PeakRate·(covered length) into the bins.
				end := math.Min(t+d, horizon)
				for seg := t; seg < end; {
					bin := int(seg / binWidth)
					if bin >= nbins {
						break
					}
					binEnd := math.Min(float64(bin+1)*binWidth, end)
					if binEnd <= seg {
						// Floating-point stall guard; see fluid.GenerateBinned.
						binEnd = math.Nextafter(seg, math.Inf(1))
					}
					work[bin] += p.PeakRate * (binEnd - seg)
					seg = binEnd
				}
			}
			t += d
			on = !on
		}
	}
	for i := range work {
		work[i] /= binWidth
	}
	return traces.Trace{
		Name:     fmt.Sprintf("onoff-n%d", n),
		Rates:    work,
		BinWidth: binWidth,
	}, nil
}

// FitSource builds the paper's renewal fluid model for a *single* on/off
// source with identically distributed on and off periods: the special case
// the paper notes its model contains ("this model can be specialized into
// the familiar on/off source model with identically distributed on and off
// periods"). The marginal is {0, peak} with equal probability and the
// epoch law is the truncated Pareto with the given parameters.
func FitSource(peak, theta, alpha, cutoff float64) (dist.Marginal, dist.TruncatedPareto, error) {
	if !(peak > 0) {
		return dist.Marginal{}, dist.TruncatedPareto{}, errors.New("onoff: peak rate must be positive")
	}
	iv := dist.TruncatedPareto{Theta: theta, Alpha: alpha, Cutoff: cutoff}
	if err := iv.Validate(); err != nil {
		return dist.Marginal{}, dist.TruncatedPareto{}, err
	}
	m, err := dist.NewMarginal([]float64{0, peak}, []float64{0.5, 0.5})
	if err != nil {
		return dist.Marginal{}, dist.TruncatedPareto{}, err
	}
	return m, iv, nil
}
