package lrdest

import (
	"math"
	"math/rand"
	"testing"

	"lrd/internal/fgn"
	"lrd/internal/numerics"
)

func fgnSeries(t *testing.T, h float64, n int, seed int64) []float64 {
	t.Helper()
	x, err := fgn.DaviesHarte(h, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func whiteNoise(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func TestSampleAutocovarianceMatchesDirect(t *testing.T) {
	x := whiteNoise(500, 1)
	got, err := SampleAutocovariance(x, 10)
	if err != nil {
		t.Fatal(err)
	}
	mean, _, _ := numerics.MeanVar(x)
	for k := 0; k <= 10; k++ {
		var direct float64
		for i := 0; i+k < len(x); i++ {
			direct += (x[i] - mean) * (x[i+k] - mean)
		}
		direct /= float64(len(x))
		if !numerics.AlmostEqual(got[k], direct, 1e-9) {
			t.Fatalf("lag %d: FFT %v vs direct %v", k, got[k], direct)
		}
	}
}

func TestSampleAutocovarianceValidation(t *testing.T) {
	if _, err := SampleAutocovariance(nil, 0); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := SampleAutocovariance([]float64{1, 2}, 5); err == nil {
		t.Fatal("want error on maxLag >= n")
	}
	if _, err := SampleAutocovariance([]float64{1, 2}, -1); err == nil {
		t.Fatal("want error on negative maxLag")
	}
}

func TestSampleAutocorrelationNormalized(t *testing.T) {
	x := fgnSeries(t, 0.8, 4096, 2)
	rho, err := SampleAutocorrelation(x, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rho[0] != 1 {
		t.Fatalf("ρ(0) = %v, want 1", rho[0])
	}
	// FGN with H=0.8: ρ(1) = 2^{1.6}/2 − 1 ≈ 0.5157.
	want := fgn.Autocovariance(0.8, 1)
	if math.Abs(rho[1]-want) > 0.05 {
		t.Fatalf("ρ(1) = %v, want ≈ %v", rho[1], want)
	}
	if _, err := SampleAutocorrelation(make([]float64, 10), 2); err == nil {
		t.Fatal("want error on zero-variance series")
	}
}

// estimator recovery tolerances are generous: these are statistical
// estimators on finite samples.
func checkH(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s: H = %v, want %v ± %v", name, got, want, tol)
	}
}

func TestAggregatedVarianceRecovery(t *testing.T) {
	for _, h := range []float64{0.6, 0.8, 0.9} {
		x := fgnSeries(t, h, 1<<16, int64(100*h))
		got, err := AggregatedVariance(x)
		if err != nil {
			t.Fatal(err)
		}
		checkH(t, "aggvar", got, h, 0.08)
	}
}

func TestRescaledRangeRecovery(t *testing.T) {
	// R/S is the crudest estimator; allow a wide band but require that it
	// clearly separates white noise from strong LRD.
	white, err := RescaledRange(whiteNoise(1<<15, 3))
	if err != nil {
		t.Fatal(err)
	}
	lrd, err := RescaledRange(fgnSeries(t, 0.9, 1<<15, 4))
	if err != nil {
		t.Fatal(err)
	}
	if white > 0.68 {
		t.Errorf("R/S on white noise = %v, want ≈ 0.5–0.6", white)
	}
	if lrd < white+0.15 {
		t.Errorf("R/S failed to separate H=0.9 (%v) from white noise (%v)", lrd, white)
	}
}

func TestLocalWhittleRecovery(t *testing.T) {
	for _, h := range []float64{0.6, 0.75, 0.9} {
		x := fgnSeries(t, h, 1<<16, int64(200*h))
		got, err := LocalWhittle(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkH(t, "whittle", got, h, 0.05)
	}
}

func TestLocalWhittleWhiteNoise(t *testing.T) {
	got, err := LocalWhittle(whiteNoise(1<<15, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	checkH(t, "whittle-white", got, 0.5, 0.05)
}

func TestAbryVeitchRecovery(t *testing.T) {
	for _, h := range []float64{0.6, 0.83, 0.9} {
		x := fgnSeries(t, h, 1<<16, int64(300*h))
		got, err := AbryVeitch(x, AbryVeitchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkH(t, "abry-veitch", got, h, 0.06)
	}
}

func TestAbryVeitchRobustToLinearTrend(t *testing.T) {
	// D4 has two vanishing moments: adding a linear trend should barely
	// move the estimate, while the variance-time plot gets badly biased.
	h := 0.8
	x := fgnSeries(t, h, 1<<15, 6)
	trended := make([]float64, len(x))
	for i := range x {
		trended[i] = x[i] + 4*float64(i)/float64(len(x))
	}
	av, err := AbryVeitch(trended, AbryVeitchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkH(t, "abry-veitch-trend", av, h, 0.08)
	vt, err := AggregatedVariance(trended)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vt-h) < math.Abs(av-h) {
		t.Logf("note: aggvar %v happened to beat wavelet %v under trend", vt, av)
	}
}

func TestEstimatorsTooShort(t *testing.T) {
	short := whiteNoise(32, 7)
	if _, err := AggregatedVariance(short); err == nil {
		t.Error("aggvar accepted short series")
	}
	if _, err := RescaledRange(short); err == nil {
		t.Error("R/S accepted short series")
	}
	if _, err := LocalWhittle(short, 0); err == nil {
		t.Error("whittle accepted short series")
	}
	if _, err := AbryVeitch(short, AbryVeitchOptions{}); err == nil {
		t.Error("abry-veitch accepted short series")
	}
}

func TestEstimateAll(t *testing.T) {
	x := fgnSeries(t, 0.85, 1<<15, 8)
	est := EstimateAll(x)
	for name, e := range map[string]Estimate{
		"aggvar":  est.AggregatedVariance,
		"rs":      est.RescaledRange,
		"whittle": est.LocalWhittle,
		"av":      est.AbryVeitch,
	} {
		if e.Err != nil {
			t.Errorf("%s failed: %v", name, e.Err)
			continue
		}
		if math.IsNaN(e.H) {
			t.Errorf("%s returned NaN", name)
		}
		if e.H < 0.55 || e.H > 0.99 {
			t.Errorf("%s = %v, implausible for H=0.85", name, e.H)
		}
	}
	med, err := est.Median()
	if err != nil {
		t.Fatalf("Median: %v", err)
	}
	if med < 0.55 || med > 0.99 {
		t.Errorf("Median = %v, implausible for H=0.85", med)
	}
}

func TestEstimateAllPartial(t *testing.T) {
	// 100 samples clears the aggregated-variance minimum (64) but stays
	// below everything else (128/256): the slot-level errors must not hide
	// the estimator that can still run.
	est := EstimateAll(whiteNoise(100, 9))
	if est.AggregatedVariance.Err != nil {
		t.Errorf("aggvar failed on n=100: %v", est.AggregatedVariance.Err)
	}
	for _, ne := range []NamedEstimate{
		{"rs", est.RescaledRange},
		{"whittle", est.LocalWhittle},
		{"wavelet", est.AbryVeitch},
		{"gph", est.GPH},
	} {
		if ne.Err == nil {
			t.Errorf("%s accepted n=100", ne.Name)
		}
		if !math.IsNaN(ne.Value()) {
			t.Errorf("%s Value() = %v for a failed slot, want NaN", ne.Name, ne.Value())
		}
	}
	if med, err := est.Median(); err != nil || math.IsNaN(med) {
		t.Fatalf("Median with one live estimator = (%v, %v), want value", med, err)
	}
}

func TestEstimateAllAllFail(t *testing.T) {
	est := EstimateAll(whiteNoise(16, 9))
	for _, ne := range est.ByName() {
		if ne.Err == nil {
			t.Errorf("%s accepted a 16-sample series", ne.Name)
		}
	}
	if _, err := est.Median(); err == nil {
		t.Fatal("Median succeeded with zero live estimators")
	}
}

func TestEstimateAllConstantSeries(t *testing.T) {
	// A constant-rate trace has zero variance everywhere: every estimator
	// must reject it with an error, not return a fabricated H.
	flat := make([]float64, 1<<12)
	for i := range flat {
		flat[i] = 3.5
	}
	est := EstimateAll(flat)
	for _, ne := range est.ByName() {
		if ne.Err == nil && (ne.H <= 0 || ne.H >= 1 || math.IsNaN(ne.H)) {
			t.Errorf("%s returned invalid H=%v without error on constant series", ne.Name, ne.H)
		}
	}
	if med, err := est.Median(); err == nil && (math.IsNaN(med) || med <= 0) {
		t.Errorf("Median on constant series = %v with nil error", med)
	}
}

func TestGoldenMinimize(t *testing.T) {
	got := goldenMinimize(func(x float64) float64 { return (x - 0.37) * (x - 0.37) }, 0, 1, 1e-9)
	if !numerics.AlmostEqual(got, 0.37, 1e-6) {
		t.Fatalf("minimizer = %v, want 0.37", got)
	}
}

func TestGPHRecovery(t *testing.T) {
	for _, h := range []float64{0.6, 0.8, 0.9} {
		x := fgnSeries(t, h, 1<<16, int64(400*h))
		got, err := GPH(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		// GPH has higher variance than local Whittle; allow a wider band.
		checkH(t, "gph", got, h, 0.1)
	}
}

func TestGPHWhiteNoise(t *testing.T) {
	got, err := GPH(whiteNoise(1<<15, 11), 0)
	if err != nil {
		t.Fatal(err)
	}
	checkH(t, "gph-white", got, 0.5, 0.1)
}

func TestGPHTooShort(t *testing.T) {
	if _, err := GPH(whiteNoise(32, 12), 0); err == nil {
		t.Fatal("want error for short series")
	}
}
