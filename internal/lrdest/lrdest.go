// Package lrdest estimates the Hurst parameter of a time series and related
// second-order statistics. It implements the estimators referenced by the
// paper's measurement methodology (§III: "Using a Whittle or wavelet based
// estimator we obtained H_MTV ≈ 0.83 and H_BC ≈ 0.9"):
//
//   - AggregatedVariance — the classic variance-time plot;
//   - RescaledRange — Hurst's original R/S statistic;
//   - LocalWhittle — Robinson's semiparametric frequency-domain estimator;
//   - AbryVeitch — the wavelet-based estimator of Abry & Veitch [1];
//   - GPH — the Geweke–Porter-Hudak log-periodogram regression.
//
// All estimators are validated in tests against exact fractional Gaussian
// noise of known H (package fgn).
package lrdest

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lrd/internal/fft"
	"lrd/internal/numerics"
	"lrd/internal/wavelet"
)

// ErrTooShort is returned when the series is too short for the estimator.
var ErrTooShort = errors.New("lrdest: series too short")

// SampleAutocovariance returns the biased sample autocovariance
// γ̂(k) = (1/n)·Σ (x_i−x̄)(x_{i+k}−x̄) for k = 0..maxLag, computed in
// O(n log n) with an FFT.
func SampleAutocovariance(x []float64, maxLag int) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrTooShort
	}
	if maxLag < 0 || maxLag >= n {
		return nil, fmt.Errorf("lrdest: maxLag %d outside [0, %d)", maxLag, n)
	}
	mean, _, err := numerics.MeanVar(x)
	if err != nil {
		return nil, err
	}
	// Zero-padded FFT correlation.
	m := numerics.NextPow2(2 * n)
	z := make([]complex128, m)
	for i, v := range x {
		z[i] = complex(v-mean, 0)
	}
	spec := fft.Forward(z)
	for i, v := range spec {
		re, im := real(v), imag(v)
		spec[i] = complex(re*re+im*im, 0)
	}
	corr := fft.Inverse(spec)
	out := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		out[k] = real(corr[k]) / float64(n)
	}
	return out, nil
}

// SampleAutocorrelation returns γ̂(k)/γ̂(0) for k = 0..maxLag.
func SampleAutocorrelation(x []float64, maxLag int) ([]float64, error) {
	acov, err := SampleAutocovariance(x, maxLag)
	if err != nil {
		return nil, err
	}
	if acov[0] == 0 {
		return nil, errors.New("lrdest: zero-variance series")
	}
	inv := 1 / acov[0]
	for i := range acov {
		acov[i] *= inv
	}
	return acov, nil
}

// AggregatedVariance estimates H from the variance-time plot: for block
// sizes m on a log grid, the variance of the m-aggregated mean series
// scales as m^(2H−2) for an (asymptotically) self-similar process, so the
// log-log slope β gives H = 1 + β/2.
func AggregatedVariance(x []float64) (float64, error) {
	n := len(x)
	if n < 64 {
		return 0, ErrTooShort
	}
	// Block sizes from 2 up to n/8, at least 4 blocks per size.
	ms := numerics.Logspace(2, float64(n/8), 12)
	var logm, logv []float64
	seen := map[int]bool{}
	for _, fm := range ms {
		m := int(fm)
		if m < 2 || seen[m] {
			continue
		}
		seen[m] = true
		nb := n / m
		if nb < 4 {
			continue
		}
		agg := make([]float64, nb)
		for b := 0; b < nb; b++ {
			var s float64
			for j := 0; j < m; j++ {
				s += x[b*m+j]
			}
			agg[b] = s / float64(m)
		}
		_, v, err := numerics.MeanVar(agg)
		if err != nil || v <= 0 {
			continue
		}
		logm = append(logm, math.Log(float64(m)))
		logv = append(logv, math.Log(v))
	}
	if len(logm) < 3 {
		return 0, ErrTooShort
	}
	_, beta, err := numerics.LinearFit(logm, logv)
	if err != nil {
		return 0, err
	}
	return clampH(1 + beta/2), nil
}

// RescaledRange estimates H with Hurst's R/S statistic: for window sizes m
// on a log grid, the rescaled range averaged over non-overlapping windows
// grows like m^H.
func RescaledRange(x []float64) (float64, error) {
	n := len(x)
	if n < 128 {
		return 0, ErrTooShort
	}
	ms := numerics.Logspace(16, float64(n/4), 10)
	var logm, logrs []float64
	seen := map[int]bool{}
	for _, fm := range ms {
		m := int(fm)
		if m < 16 || seen[m] {
			continue
		}
		seen[m] = true
		nb := n / m
		if nb < 2 {
			continue
		}
		var acc numerics.Accumulator
		used := 0
		for b := 0; b < nb; b++ {
			rs, ok := rsStatistic(x[b*m : (b+1)*m])
			if ok {
				acc.Add(rs)
				used++
			}
		}
		if used == 0 {
			continue
		}
		logm = append(logm, math.Log(float64(m)))
		logrs = append(logrs, math.Log(acc.Sum()/float64(used)))
	}
	if len(logm) < 3 {
		return 0, ErrTooShort
	}
	_, h, err := numerics.LinearFit(logm, logrs)
	if err != nil {
		return 0, err
	}
	return clampH(h), nil
}

// rsStatistic computes the rescaled range R/S of one window.
func rsStatistic(w []float64) (float64, bool) {
	mean, variance, err := numerics.MeanVar(w)
	if err != nil || variance <= 0 {
		return 0, false
	}
	var cum, lo, hi float64
	for _, v := range w {
		cum += v - mean
		lo = math.Min(lo, cum)
		hi = math.Max(hi, cum)
	}
	r := hi - lo
	if r <= 0 {
		return 0, false
	}
	return r / math.Sqrt(variance), true
}

// LocalWhittle estimates H with Robinson's Gaussian semiparametric (local
// Whittle) estimator using the m lowest periodogram ordinates. It minimizes
//
//	R(H) = log( (1/m)·Σ_j λ_j^{2H−1} I(λ_j) ) − (2H−1)·(1/m)·Σ_j log λ_j
//
// over H ∈ (0, 1). Pass m <= 0 for the customary default m = n^0.65.
func LocalWhittle(x []float64, m int) (float64, error) {
	n := len(x)
	if n < 128 {
		return 0, ErrTooShort
	}
	per := fft.Periodogram(x)
	if m <= 0 {
		m = int(math.Pow(float64(n), 0.65))
	}
	if m > len(per) {
		m = len(per)
	}
	if m < 8 {
		return 0, ErrTooShort
	}
	lambda := make([]float64, m)
	var meanLog, totalPower float64
	for j := 0; j < m; j++ {
		lambda[j] = 2 * math.Pi * float64(j+1) / float64(n)
		meanLog += math.Log(lambda[j])
		totalPower += per[j]
	}
	if totalPower <= 0 {
		// A constant (or otherwise spectrally empty) series: the objective is
		// +Inf everywhere and any returned H would be fabricated.
		return 0, errors.New("lrdest: zero-variance series")
	}
	meanLog /= float64(m)
	objective := func(h float64) float64 {
		e := 2*h - 1
		var acc numerics.Accumulator
		for j := 0; j < m; j++ {
			acc.Add(math.Pow(lambda[j], e) * per[j])
		}
		k := acc.Sum() / float64(m)
		if k <= 0 {
			return math.Inf(1)
		}
		return math.Log(k) - e*meanLog
	}
	h := goldenMinimize(objective, 0.01, 0.99, 1e-7)
	return clampH(h), nil
}

// goldenMinimize minimizes a unimodal function on [a, b] by golden-section
// search to absolute precision tol.
func goldenMinimize(f func(float64) float64, a, b, tol float64) float64 {
	const phi = 0.6180339887498949 // (√5−1)/2
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// AbryVeitchOptions tunes the wavelet estimator.
type AbryVeitchOptions struct {
	// Wavelet used for the decomposition. Zero value selects Daubechies-4.
	Wavelet wavelet.Wavelet
	// MinOctave and MaxOctave bound the octaves used in the regression
	// (1-based). Zero values select [3, deepest−1], trading off short-scale
	// bias against long-scale variance.
	MinOctave, MaxOctave int
}

// AbryVeitch estimates H with the wavelet method of Abry & Veitch: the
// mean squared detail coefficient per octave j scales as 2^{j(2H−1)} for
// long-range dependent data, so a weighted regression of log2 μ_j on j has
// slope 2H−1. Weights are the per-octave coefficient counts.
func AbryVeitch(x []float64, opts AbryVeitchOptions) (float64, error) {
	if len(x) < 256 {
		return 0, ErrTooShort
	}
	mn, mx := x[0], x[0]
	for _, v := range x {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	if mn == mx {
		// A constant series leaves only roundoff in the detail energies; a
		// regression over those would fabricate an estimate.
		return 0, errors.New("lrdest: zero-variance series")
	}
	w := opts.Wavelet
	if w.Name() == "" {
		w = wavelet.Daubechies4()
	}
	// Truncate to a power-of-two-compatible length for a deep transform.
	n := len(x)
	usable := n - n%64
	dec, err := wavelet.Transform(x[:usable], w, 0)
	if err != nil {
		return 0, err
	}
	energies := wavelet.DetailEnergies(dec)
	lo, hi := opts.MinOctave, opts.MaxOctave
	if lo <= 0 {
		lo = 3
	}
	if hi <= 0 || hi > len(energies) {
		hi = len(energies) - 1
	}
	if hi < lo+2 {
		// Not enough octaves for a 3-point regression: widen as a fallback.
		lo, hi = 1, len(energies)
	}
	var js, logmu, wts []float64
	for j := lo; j <= hi && j <= len(energies); j++ {
		mu := energies[j-1]
		if mu <= 0 {
			continue
		}
		js = append(js, float64(j))
		logmu = append(logmu, math.Log2(mu))
		wts = append(wts, float64(len(dec.Details[j-1])))
	}
	if len(js) < 3 {
		return 0, ErrTooShort
	}
	_, slope, err := numerics.WeightedLinearFit(js, logmu, wts)
	if err != nil {
		return 0, err
	}
	return clampH((slope + 1) / 2), nil
}

func clampH(h float64) float64 { return numerics.Clamp(h, 0.01, 0.99) }

// Estimate is one estimator's outcome: the Hurst estimate when Err is
// nil, the reason the estimator rejected the series otherwise (too short,
// zero variance, …).
type Estimate struct {
	H   float64
	Err error
}

// Value returns the estimate, or NaN when the estimator failed — the
// plotting-friendly form of the outcome.
func (e Estimate) Value() float64 {
	if e.Err != nil {
		return math.NaN()
	}
	return e.H
}

// Estimates bundles every estimator's outcome for one series. Each slot is
// independent: one estimator rejecting a short trace never hides the
// others.
type Estimates struct {
	AggregatedVariance Estimate
	RescaledRange      Estimate
	LocalWhittle       Estimate
	AbryVeitch         Estimate
	GPH                Estimate
}

// NamedEstimate pairs an estimator's canonical wire name with its outcome.
type NamedEstimate struct {
	Name string
	Estimate
}

// ByName returns the outcomes in canonical order under the names the CLI
// and /v1/fit wire use: aggvar, rs, whittle, wavelet, gph.
func (e Estimates) ByName() []NamedEstimate {
	return []NamedEstimate{
		{"aggvar", e.AggregatedVariance},
		{"rs", e.RescaledRange},
		{"whittle", e.LocalWhittle},
		{"wavelet", e.AbryVeitch},
		{"gph", e.GPH},
	}
}

// Median returns the median of the estimators that succeeded — the robust
// consensus estimate the fit pipeline defaults to. It fails only when every
// estimator failed, carrying the per-estimator reasons.
func (e Estimates) Median() (float64, error) {
	var ok []float64
	var errs []error
	for _, ne := range e.ByName() {
		if ne.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", ne.Name, ne.Err))
			continue
		}
		ok = append(ok, ne.H)
	}
	if len(ok) == 0 {
		return 0, fmt.Errorf("lrdest: no estimator succeeded: %w", errors.Join(errs...))
	}
	sort.Float64s(ok)
	mid := len(ok) / 2
	if len(ok)%2 == 1 {
		return ok[mid], nil
	}
	return (ok[mid-1] + ok[mid]) / 2, nil
}

// EstimateAll runs every estimator on x. It always returns: estimators
// that reject the series (too short, degenerate) record their error in
// their slot while the rest still report. Use Median for the consensus
// estimate, ByName to enumerate outcomes.
func EstimateAll(x []float64) Estimates {
	mk := func(v float64, err error) Estimate { return Estimate{H: v, Err: err} }
	var out Estimates
	out.AggregatedVariance = mk(AggregatedVariance(x))
	out.RescaledRange = mk(RescaledRange(x))
	out.LocalWhittle = mk(LocalWhittle(x, 0))
	out.AbryVeitch = mk(AbryVeitch(x, AbryVeitchOptions{}))
	out.GPH = mk(GPH(x, 0))
	return out
}

// GPH estimates H with the log-periodogram regression of Geweke &
// Porter-Hudak: for the m lowest Fourier frequencies, regress
// log I(λ_j) on −log(4·sin²(λ_j/2)); the slope estimates d = H − ½.
// Pass m <= 0 for the customary default m = n^0.5.
func GPH(x []float64, m int) (float64, error) {
	n := len(x)
	if n < 128 {
		return 0, ErrTooShort
	}
	per := fft.Periodogram(x)
	if m <= 0 {
		m = int(math.Sqrt(float64(n)))
	}
	if m > len(per) {
		m = len(per)
	}
	if m < 8 {
		return 0, ErrTooShort
	}
	xs := make([]float64, 0, m)
	ys := make([]float64, 0, m)
	for j := 0; j < m; j++ {
		if per[j] <= 0 {
			continue
		}
		lambda := 2 * math.Pi * float64(j+1) / float64(n)
		s := 2 * math.Sin(lambda/2)
		xs = append(xs, -math.Log(s*s))
		ys = append(ys, math.Log(per[j]))
	}
	if len(xs) < 8 {
		return 0, ErrTooShort
	}
	_, d, err := numerics.LinearFit(xs, ys)
	if err != nil {
		return 0, err
	}
	return clampH(d + 0.5), nil
}
