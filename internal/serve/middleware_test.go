package serve

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lrd/internal/obs"
)

func getStatus(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 256)
	n, _ := resp.Body.Read(buf)
	return resp, string(buf[:n])
}

// TestReadinessLifecycle: /readyz is 503 before MarkReady, 200 when warm,
// and 503 "draining" after StartDrain — while /healthz and the solve API
// keep answering throughout (readiness gates routing, never requests that
// already arrived).
func TestReadinessLifecycle(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := getStatus(t, ts, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("cold /readyz = %d %s, want 503 starting", resp.StatusCode, body)
	}

	s.MarkReady()
	resp, body = getStatus(t, ts, "/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("warm /readyz = %d %s", resp.StatusCode, body)
	}
	if got, ok := s.reg.GaugeValue(obs.MetricServeReady); !ok || got != 1 {
		t.Fatalf("ready gauge = %v (ok=%v), want 1", got, ok)
	}

	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	resp, body = getStatus(t, ts, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining /readyz = %d %s", resp.StatusCode, body)
	}
	if got, ok := s.reg.GaugeValue(obs.MetricServeReady); !ok || got != 0 {
		t.Fatalf("ready gauge = %v (ok=%v), want 0 while draining", got, ok)
	}

	// Liveness and the solve API are unaffected.
	if resp, _ := getStatus(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain = %d", resp.StatusCode)
	}
	if sresp, sbody := post(t, ts, solveBody(0.1)); sresp.StatusCode != http.StatusOK {
		t.Fatalf("solve during drain = %d %s", sresp.StatusCode, sbody)
	}
}

// TestRateLimitSheds: with a 1 req/s single-token bucket the second
// immediate request is shed with 429 + Retry-After, a token refill lets
// the client back in, and a different client is never affected.
func TestRateLimitSheds(t *testing.T) {
	s := New(Config{RateLimit: 1, RateBurst: 1})
	clock := time.Unix(1_000_000, 0)
	s.limiter.now = func() time.Time { return clock }
	h := s.Handler()

	do := func(addr string) *httptest.ResponseRecorder {
		r := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(solveBody(0.1)))
		r.RemoteAddr = addr
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}

	if w := do("10.0.0.1:1111"); w.Code != http.StatusOK {
		t.Fatalf("first request = %d %s", w.Code, w.Body)
	}
	w := do("10.0.0.1:2222") // same host, new port: same bucket
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", w.Code)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want >= 1 second", w.Header().Get("Retry-After"))
	}
	if got := s.reg.CounterValue(obs.MetricServeRateLimited); got != 1 {
		t.Fatalf("rate-limited counter = %v, want 1", got)
	}

	// Another client is untouched (cache makes this instant).
	if w := do("10.0.0.2:1111"); w.Code != http.StatusOK {
		t.Fatalf("other client = %d", w.Code)
	}

	// A second of refill readmits the shed client.
	clock = clock.Add(time.Second)
	if w := do("10.0.0.1:3333"); w.Code != http.StatusOK {
		t.Fatalf("after refill = %d", w.Code)
	}

	// Probes and metrics are never throttled.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		r := httptest.NewRequest(http.MethodGet, path, nil)
		r.RemoteAddr = "10.0.0.1:4444"
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code == http.StatusTooManyRequests {
			t.Fatalf("%s rate-limited", path)
		}
	}
}

// TestRateRetryAfterQueueAware: a deeper solve queue lengthens the hint.
func TestRateRetryAfterQueueAware(t *testing.T) {
	s := New(Config{MaxQueue: 4, RetryAfter: 8 * time.Second})
	empty := s.rateRetryAfter(0)
	s.queue <- struct{}{}
	s.queue <- struct{}{}
	half := s.rateRetryAfter(0)
	if empty != "1" {
		t.Fatalf("empty-queue hint = %s, want the 1s floor", empty)
	}
	if half != "4" { // 8s · 2/4
		t.Fatalf("half-queue hint = %s, want 4", half)
	}
}

// TestPanicRecoveryMiddleware: a panicking handler yields a 500 and a
// metric; the server survives to serve the next request.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s := New(Config{})
	s.beforeSolve = func(key string) { panic("solver table corrupted") }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := post(t, ts, solveBody(0.1))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking solve = %d %s", resp.StatusCode, body)
	}
	if got := s.reg.CounterValue(obs.MetricServePanics); got != 1 {
		t.Fatalf("panics counter = %v, want 1", got)
	}

	s.beforeSolve = nil
	if resp, body := post(t, ts, solveBody(0.1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d %s", resp.StatusCode, body)
	}
}

// TestSweepCellPanicContained: a panic inside one sweep cell's goroutine
// marks that cell 500 and leaves the rest of the batch (and the process)
// intact.
func TestSweepCellPanicContained(t *testing.T) {
	s := New(Config{})
	var fired atomic.Bool
	s.beforeSolve = func(key string) {
		if fired.CompareAndSwap(false, true) {
			panic("one bad cell")
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"cutoff":1,"util":0.8,"buffers":[0.1,0.2]}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMultiStatus {
		t.Fatalf("sweep with one panicked cell = %d, want 207", resp.StatusCode)
	}
	if got := s.reg.CounterValue(obs.MetricServePanics); got != 1 {
		t.Fatalf("panics counter = %v, want 1", got)
	}
}

// TestRateLimiterUnit exercises the bucket math and the bounded-table
// eviction directly.
func TestRateLimiterUnit(t *testing.T) {
	clock := time.Unix(0, 0)
	l := newRateLimiter(2, 0) // default burst = ceil(2·2) = 4
	l.now = func() time.Time { return clock }

	for i := 0; i < 4; i++ {
		if ok, _ := l.take("a"); !ok {
			t.Fatalf("burst take %d refused", i)
		}
	}
	ok, wait := l.take("a")
	if ok || wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("post-burst take: ok=%v wait=%v, want refusal with <=0.5s wait", ok, wait)
	}
	clock = clock.Add(wait)
	if ok, _ := l.take("a"); !ok {
		t.Fatal("take after exact refill wait refused")
	}

	// Idle eviction keeps the table bounded.
	for i := 0; i < maxRateClients; i++ {
		l.take("client-" + strconv.Itoa(i))
	}
	clock = clock.Add(2 * rateClientIdleEvict)
	l.take("fresh")
	if n := len(l.clients); n > maxRateClients {
		t.Fatalf("table grew to %d, want <= %d", n, maxRateClients)
	}
}
