package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lrd/internal/core"
)

func postSweep(t *testing.T, ts *httptest.Server, body string) (*http.Response, SweepResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var sr SweepResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusMultiStatus {
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatalf("decoding sweep response: %v\n%s", err, data)
		}
	} else {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, data)
	}
	return resp, sr
}

// TestSweepEndpointGrid: one batch request computes a grid in row-major
// order, and every cell's body is bit-identical to the corresponding
// /v1/solve response.
func TestSweepEndpointGrid(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sweep := `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8,"buffer":1,` +
		`"buffers":[0.05,0.1],"cutoffs":[1,2]}`
	_, sr := postSweep(t, ts, sweep)
	if len(sr.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(sr.Cells))
	}
	wantOrder := [][2]float64{{0.05, 1}, {0.05, 2}, {0.1, 1}, {0.1, 2}}
	for i, cell := range sr.Cells {
		if cell.Buffer != wantOrder[i][0] || cell.Cutoff != wantOrder[i][1] {
			t.Fatalf("cell %d = (%g, %g), want %v (row-major order)", i, cell.Buffer, cell.Cutoff, wantOrder[i])
		}
		if cell.Status != http.StatusOK {
			t.Fatalf("cell %d status %d: %s", i, cell.Status, cell.Result)
		}
		body := fmt.Sprintf(`{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8,"buffer":%g,"cutoff":%g}`,
			cell.Buffer, cell.Cutoff)
		_, solo := post(t, ts, body)
		if !bytes.Equal([]byte(cell.Result), solo) {
			t.Fatalf("cell %d differs from /v1/solve:\n%s\n%s", i, cell.Result, solo)
		}
	}
}

// TestSweepRejectsOversizedGrid: the cell bound is enforced before any
// solving happens.
func TestSweepRejectsOversizedGrid(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	buffers := make([]string, 100)
	cutoffs := make([]string, 100)
	for i := range buffers {
		buffers[i] = fmt.Sprintf("%d", i+1)
		cutoffs[i] = fmt.Sprintf("%d", i+1)
	}
	body := `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8,"buffer":1,` +
		`"buffers":[` + strings.Join(buffers, ",") + `],"cutoffs":[` + strings.Join(cutoffs, ",") + `]}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if n := s.solves.Load(); n != 0 {
		t.Fatalf("solver ran %d times for a rejected grid", n)
	}
}

// TestSweepFleetSplitsAcrossReplicas: two server replicas share one lease
// journal. The same sweep posted to both concurrently is computed exactly
// once per cell fleet-wide — each replica either solves a cell or adopts
// the other's result — and both replicas return bit-identical bodies per
// cell.
func TestSweepFleetSplitsAcrossReplicas(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	openStore := func(worker string) *core.LeaseStore {
		st, err := core.OpenLeaseStore(path, core.LeaseStoreOptions{
			Worker: worker, TTL: 5 * time.Second, Poll: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}
	s1 := New(Config{Leases: openStore("replica-1")})
	s2 := New(Config{Leases: openStore("replica-2")})
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	sweep := `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8,"buffer":1,` +
		`"buffers":[0.02,0.05,0.1],"cutoffs":[1,2]}`
	const cells = 6

	var wg sync.WaitGroup
	responses := make([]SweepResponse, 2)
	for i, ts := range []*httptest.Server{ts1, ts2} {
		wg.Add(1)
		go func(i int, ts *httptest.Server) {
			defer wg.Done()
			_, responses[i] = postSweep(t, ts, sweep)
		}(i, ts)
	}
	wg.Wait()

	total := s1.solves.Load() + s2.solves.Load()
	if total != cells {
		t.Fatalf("fleet ran %d solves for %d cells (want exactly one each)", total, cells)
	}
	adopted := 0
	for i, cell := range responses[0].Cells {
		if cell.Status != http.StatusOK || responses[1].Cells[i].Status != http.StatusOK {
			t.Fatalf("cell %d statuses: %d / %d", i, cell.Status, responses[1].Cells[i].Status)
		}
		if !bytes.Equal([]byte(cell.Result), []byte(responses[1].Cells[i].Result)) {
			t.Fatalf("cell %d differs between replicas:\n%s\n%s", i, cell.Result, responses[1].Cells[i].Result)
		}
		for _, r := range responses {
			if r.Cells[i].Source == "adopted" {
				adopted++
			}
		}
	}
	// With both replicas solving some cells, at least one cell on at least
	// one replica must have been adopted from its peer — unless one replica
	// happened to win every lease, in which case the other saw all cells as
	// adopted. Either way adoption happened somewhere.
	if total == cells && adopted == 0 && s1.solves.Load() > 0 && s2.solves.Load() > 0 {
		t.Fatal("both replicas solved cells yet neither adopted any")
	}

	// A third replica starting later warm-loads every completed cell from
	// the shared journal into its cache.
	s3 := New(Config{Leases: openStore("replica-3")})
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	_, sr3 := postSweep(t, ts3, sweep)
	if got := s3.solves.Load(); got != 0 {
		t.Fatalf("late replica re-ran %d solves despite the shared journal", got)
	}
	for i, cell := range sr3.Cells {
		if !bytes.Equal([]byte(cell.Result), []byte(responses[0].Cells[i].Result)) {
			t.Fatalf("late replica cell %d differs:\n%s\n%s", i, cell.Result, responses[0].Cells[i].Result)
		}
	}
}

// TestSweepBatchBitIdentical: a batch-mode server (shared solve arena)
// returns responses byte-identical to an unbatched server, for both the
// sweep endpoint and /v1/solve.
func TestSweepBatchBitIdentical(t *testing.T) {
	plain := New(Config{})
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	batch := New(Config{Batch: true})
	tsBatch := httptest.NewServer(batch.Handler())
	defer tsBatch.Close()
	if batch.arena == nil {
		t.Fatal("batch server has no arena")
	}

	sweep := `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8,"buffer":1,` +
		`"buffers":[0.05,0.1,0.2],"cutoffs":[1,2]}`
	_, srPlain := postSweep(t, tsPlain, sweep)
	_, srBatch := postSweep(t, tsBatch, sweep)
	if len(srBatch.Cells) != len(srPlain.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(srBatch.Cells), len(srPlain.Cells))
	}
	for i := range srPlain.Cells {
		if !bytes.Equal([]byte(srBatch.Cells[i].Result), []byte(srPlain.Cells[i].Result)) {
			t.Fatalf("cell %d differs between batch and plain servers:\n%s\n%s",
				i, srBatch.Cells[i].Result, srPlain.Cells[i].Result)
		}
	}

	solo := `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8,"buffer":0.3,"cutoff":2}`
	_, bodyPlain := post(t, tsPlain, solo)
	_, bodyBatch := post(t, tsBatch, solo)
	if !bytes.Equal(bodyBatch, bodyPlain) {
		t.Fatalf("/v1/solve differs between batch and plain servers:\n%s\n%s", bodyBatch, bodyPlain)
	}
}
