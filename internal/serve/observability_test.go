package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lrd/internal/fleetstatus"
	"lrd/internal/journal"
	"lrd/internal/obs"
	"lrd/internal/solver"
)

// fleetJournal authors a synthetic two-worker journal for status tests.
func fleetJournal(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.journal")
	w, err := journal.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Hour).UnixNano()
	for _, rec := range []journal.Record{
		{Key: "a", Status: journal.StatusClaimed, Worker: "w1", Epoch: 1, Deadline: deadline},
		{Key: "a", Status: journal.StatusOK, Worker: "w1", Epoch: 1, Value: []byte(`{}`)},
		{Key: "b", Status: journal.StatusClaimed, Worker: "w2", Epoch: 1, Deadline: deadline},
	} {
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStatusEndpoint: /v1/status serves the journal-derived fleet view.
func TestStatusEndpoint(t *testing.T) {
	path := fleetJournal(t)
	s := New(Config{Status: fleetstatus.New(path, fleetstatus.Options{ExpectedCells: 4})})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var st fleetstatus.Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("status is not JSON: %v\n%s", err, data)
	}
	if st.Journal != path || st.CellsDone != 1 || st.CellsInFlight != 1 || st.CellsExpected != 4 {
		t.Fatalf("status = %+v", st)
	}
	if st.CompletionPct != 25 {
		t.Fatalf("completion = %g, want 25", st.CompletionPct)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("workers = %+v", st.Workers)
	}

	// Status on a server without a journal is the degenerate empty view,
	// not an error.
	s2 := New(Config{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("journal-less status = %d: %s", resp2.StatusCode, data2)
	}
}

// TestStatusStream: the SSE endpoint pushes a status event immediately,
// then keeps pushing on the requested interval.
func TestStatusStream(t *testing.T) {
	path := fleetJournal(t)
	s := New(Config{Status: fleetstatus.New(path, fleetstatus.Options{ExpectedCells: 2})})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/status/stream?interval_ms=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	readEvent := func() (event string, data []byte) {
		t.Helper()
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("reading SSE stream: %v", err)
			}
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimSpace(strings.TrimPrefix(line, "event: "))
			case strings.HasPrefix(line, "data: "):
				data = []byte(strings.TrimSpace(strings.TrimPrefix(line, "data: ")))
			case line == "\n":
				return event, data
			}
		}
	}
	for i := 0; i < 2; i++ { // the immediate event, then one tick later
		event, data := readEvent()
		if event != "status" {
			t.Fatalf("event %d = %q, want status", i, event)
		}
		var st fleetstatus.Status
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("event %d data is not JSON: %v\n%s", i, err, data)
		}
		if st.CellsDone != 1 || st.CellsExpected != 2 {
			t.Fatalf("event %d status = %+v", i, st)
		}
	}
}

// spanCollector is a concurrency-safe SpanSink for tests.
type spanCollector struct {
	mu    sync.Mutex
	spans []obs.Span
}

func (c *spanCollector) sink(s obs.Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = append(c.spans, s)
}

func (c *spanCollector) all() []obs.Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.Span(nil), c.spans...)
}

// TestTraceEndToEnd: one trace id minted per request is echoed in the
// X-Lrd-Trace response header, stamped on every span the request emitted
// (request → solve), carried by every solver TracePoint, and attached to
// the request's slog line.
func TestTraceEndToEnd(t *testing.T) {
	var spans spanCollector
	var tpMu sync.Mutex
	var points []solver.TracePoint
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logW := writerFunc(func(p []byte) (int, error) {
		logMu.Lock()
		defer logMu.Unlock()
		return logBuf.Write(p)
	})

	cfg := Config{
		SpanSink: spans.sink,
		Logger:   obs.NewLogger(logW, "serve-test", obs.TraceContext{}),
	}
	cfg.Solver.Trace = func(p solver.TracePoint) {
		tpMu.Lock()
		defer tpMu.Unlock()
		points = append(points, p)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := post(t, ts, solveBody(0.1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get("X-Lrd-Trace")
	if traceID == "" {
		t.Fatal("no X-Lrd-Trace response header")
	}

	all := spans.all()
	if len(all) == 0 {
		t.Fatal("no spans emitted")
	}
	names := map[string]bool{}
	for _, sp := range all {
		names[sp.Name] = true
		if sp.Trace != traceID {
			t.Fatalf("span %q trace = %s, want %s", sp.Name, sp.Trace, traceID)
		}
	}
	for _, want := range []string{"serve.solve", "solver.solve"} {
		if !names[want] {
			t.Fatalf("span %q missing; got %v", want, names)
		}
	}

	tpMu.Lock()
	defer tpMu.Unlock()
	if len(points) == 0 {
		t.Fatal("no solver trace points emitted")
	}
	for _, p := range points {
		if p.Trace != traceID {
			t.Fatalf("trace point carries trace %q, want %q", p.Trace, traceID)
		}
	}

	logMu.Lock()
	logText := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logText, "trace="+traceID) {
		t.Fatalf("slog output lacks trace id %s:\n%s", traceID, logText)
	}

	// An incoming X-Lrd-Trace header is adopted, not replaced (a cache-hit
	// request: no new solve spans, but the request span carries our id).
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(solveBody(0.1)))
	if err != nil {
		t.Fatal(err)
	}
	const inbound = "feedfacedeadbeef"
	req.Header.Set("X-Lrd-Trace", inbound)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Lrd-Trace"); got != inbound {
		t.Fatalf("inbound trace id not adopted: got %q, want %q", got, inbound)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
