package serve

import (
	"container/list"
	"sync"
)

// lru is a fixed-capacity least-recently-used cache of marshaled response
// bodies. Values are the exact bytes written to fresh responses, so a cache
// hit replays a bit-identical body.
type lru struct {
	cap int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	body []byte
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached body and promotes the entry.
func (c *lru) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// add inserts (or refreshes) an entry and returns how many entries were
// evicted to make room.
func (c *lru) add(key string, body []byte) (evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).body = body
		return 0
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		evicted++
	}
	return evicted
}

// len returns the current entry count.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
