package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"lrd/internal/api"
	"lrd/internal/core"
	"lrd/internal/fit"
	"lrd/internal/obs"
)

// maxFitBody caps the /v1/fit request body. A trace is a few hundred
// thousand float64 bins — orders of magnitude bigger than a solve request —
// so the endpoint gets its own cap instead of the 1 MiB solve cap.
const maxFitBody = 16 << 20

// handleFit is POST /v1/fit: fit the paper's model ingredients to a binned
// rate trace and return everything a SolveRequest (or ProvisionRequest)
// needs. Estimation is CPU-light next to a solve (milliseconds of FFTs), so
// fits run outside the admission perimeter and are never cached.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Add(obs.MetricServeRequests, 1)
	defer func() { s.reg.Observe(obs.MetricServeRequestSeconds, time.Since(start).Seconds()) }()
	_, finish := s.traceRequest(w, r, "serve.fit")

	var req api.FitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxFitBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		finish(http.StatusBadRequest, "")
		s.failCode(w, http.StatusBadRequest, "bad_request", api.CodeBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	tr, opts, err := fit.FromRequest(req)
	if err != nil {
		finish(http.StatusBadRequest, "")
		s.failCode(w, http.StatusBadRequest, "bad_request", api.CodeBadRequest, err)
		return
	}
	res, err := fit.Trace(tr, opts)
	if err != nil {
		status, kind := http.StatusBadRequest, "bad_request"
		var aerr *api.Error
		if errors.As(err, &aerr) && aerr.Code == api.CodeEstimation {
			// The trace was well-formed but unusable: the fit's failure, not
			// the request syntax's.
			status, kind = http.StatusUnprocessableEntity, "estimation"
		}
		finish(status, "")
		s.failCode(w, status, kind, api.CodeBadRequest, err)
		return
	}
	body, err := json.Marshal(res.Response)
	if err != nil {
		finish(http.StatusInternalServerError, "")
		s.failCode(w, http.StatusInternalServerError, "encode", api.CodeInternal, fmt.Errorf("encoding response: %w", err))
		return
	}
	finish(http.StatusOK, "")
	writeJSON(w, http.StatusOK, "", body)
}

// handleProvision is POST /v1/provision: the inverse solve. The request is
// a queue description with the provisioned dimension left open plus a loss
// SLO; the reply is the minimal buffer (or service rate) meeting it, with
// the proven loss bound as proof and the infeasible bracket point below
// it. One admission slot covers the whole root-find — an inverse solve is
// a chain of warm-started forward solves on one arena, so it costs the
// admission perimeter exactly one concurrent solve no matter how many
// iterates it spends.
func (s *Server) handleProvision(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Add(obs.MetricServeRequests, 1)
	defer func() { s.reg.Observe(obs.MetricServeRequestSeconds, time.Since(start).Seconds()) }()
	ctx, finish := s.traceRequest(w, r, "serve.provision")

	var req api.ProvisionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		finish(http.StatusBadRequest, "")
		s.failCode(w, http.StatusBadRequest, "bad_request", api.CodeBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	bs, err := buildSource(&req.SolveRequest)
	if err != nil {
		finish(http.StatusBadRequest, "")
		s.failCode(w, http.StatusBadRequest, "bad_request", api.CodeBadRequest, err)
		return
	}
	opts := core.ProvisionOptions{
		Target:  req.Target,
		SLO:     req.SLO,
		Util:    req.Util,
		Service: req.Service,
		Buffer:  req.Buffer,
		Min:     req.Min,
		Max:     req.Max,
		Tol:     req.Tol,
		Solver:  solverConfig(&req.SolveRequest, s.cfg.Solver),
	}
	opts.Solver.Recorder = s.reg
	opts.Solver.Arena = s.arena // nil when batching is off: Provision brings its own

	release, status, body := s.admit(ctx)
	if release == nil {
		finish(status, "")
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
		}
		writeJSON(w, status, "", body)
		return
	}
	defer release()

	// The request budget bounds the whole root-find through the context
	// (the per-solve degradation machinery is disabled inside Provision: a
	// budget-degraded loss would provision against the budget, not the
	// queue).
	budget := time.Duration(req.Solver.Timeout)
	if s.cfg.RequestTimeout > 0 && (budget <= 0 || budget > s.cfg.RequestTimeout) {
		budget = s.cfg.RequestTimeout
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	s.solves.Add(1)
	solveStart := time.Now()
	prov, err := core.Provision(ctx, bs.src, opts)
	s.reg.Observe(obs.MetricServeSolveSeconds, time.Since(solveStart).Seconds())
	if err != nil {
		var inf *core.InfeasibleError
		switch {
		case errors.As(err, &inf):
			finish(http.StatusUnprocessableEntity, "")
			s.failCode(w, http.StatusUnprocessableEntity, "infeasible", api.CodeInfeasible, err)
		case ctx.Err() != nil:
			finish(http.StatusServiceUnavailable, "")
			s.failCode(w, http.StatusServiceUnavailable, "client_gone", api.CodeCanceled, err)
		default:
			finish(http.StatusBadRequest, "")
			s.failCode(w, http.StatusBadRequest, "bad_request", api.CodeBadRequest, err)
		}
		return
	}
	body, merr := json.Marshal(api.ProvisionResponse{
		Target:      prov.Target,
		Value:       prov.Value,
		Loss:        prov.Loss,
		Bracket:     prov.Bracket,
		BracketLoss: prov.BracketLoss,
		SLO:         req.SLO,
		Util:        prov.Util,
		Solves:      prov.Solves,
		WarmSolves:  prov.WarmSolves,
	})
	if merr != nil {
		finish(http.StatusInternalServerError, "")
		s.failCode(w, http.StatusInternalServerError, "encode", api.CodeInternal, fmt.Errorf("encoding response: %w", merr))
		return
	}
	finish(http.StatusOK, "")
	writeJSON(w, http.StatusOK, "", body)
}
