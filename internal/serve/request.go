package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"lrd/internal/api"
	"lrd/internal/dist"
	"lrd/internal/fluid"
	"lrd/internal/solver"
	"lrd/internal/source"
)

// The /v1 wire contract lives in internal/api — one definition shared by
// the server, the typed fleet client, lrdcall, and lrdsweep -fleet. The
// aliases below keep this package's exported surface (and its tests)
// unchanged; the request *semantics* — validation, model realization, and
// the canonical cache key — stay here, since they depend on the solver
// stack the wire package deliberately does not import.
type (
	// Duration aliases api.Duration (accepts "2s" or bare seconds).
	Duration = api.Duration
	// SolverParams aliases the per-request solver overrides.
	SolverParams = api.SolverParams
	// SolveRequest aliases the POST /v1/solve body.
	SolveRequest = api.SolveRequest
	// SolveResponse aliases the POST /v1/solve reply.
	SolveResponse = api.SolveResponse
	// SweepRequest aliases the POST /v1/sweep body.
	SweepRequest = api.SweepRequest
	// SweepCellResult aliases one cell of a sweep reply.
	SweepCellResult = api.SweepCellResult
	// SweepResponse aliases the POST /v1/sweep reply.
	SweepResponse = api.SweepResponse
)

// solveJob is a validated, realized request: the model to solve and the
// canonical cache key that identifies its result.
type solveJob struct {
	model solver.Model
	key   string
}

// builtSource is a validated queue description short of the buffer/service
// realization: the realized traffic source plus the resolved reference
// parameters. It is the shared front half of /v1/solve and /v1/provision.
type builtSource struct {
	src    source.Source
	marg   dist.Marginal
	alpha  float64
	theta  float64
	cutoff float64
}

// buildSource validates the request's source description (marginal,
// correlation structure, model) and realizes the traffic model. Every
// error is a client error (HTTP 400).
func buildSource(r *SolveRequest) (builtSource, error) {
	if r.Marginal == "" {
		return builtSource{}, fmt.Errorf("marginal is required (rate:prob pairs)")
	}
	m, err := source.ParseMarginal(r.Marginal)
	if err != nil {
		return builtSource{}, err
	}
	alpha := r.Alpha
	switch {
	case r.Hurst != 0 && r.Alpha != 0:
		return builtSource{}, fmt.Errorf("give either hurst or alpha, not both")
	case r.Hurst != 0:
		alpha = dist.AlphaFromHurst(r.Hurst)
	case r.Alpha == 0:
		return builtSource{}, fmt.Errorf("one of hurst or alpha is required")
	}
	theta := r.Theta
	if theta == 0 {
		if r.Epoch == 0 {
			return builtSource{}, fmt.Errorf("one of theta or epoch is required")
		}
		theta, err = dist.CalibrateTheta(alpha, r.Epoch)
		if err != nil {
			return builtSource{}, err
		}
	}
	cutoff := r.Cutoff
	if cutoff == 0 {
		cutoff = math.Inf(1)
	}
	ref, err := fluid.New(m, dist.TruncatedPareto{Theta: theta, Alpha: alpha, Cutoff: cutoff})
	if err != nil {
		return builtSource{}, err
	}
	src, err := r.Model.Realize(ref)
	if err != nil {
		return builtSource{}, err
	}
	return builtSource{src: src, marg: m, alpha: alpha, theta: theta, cutoff: cutoff}, nil
}

// buildSolve validates the request, realizes its traffic model, and
// computes the canonical cache key. Every error is a client error (HTTP
// 400).
func buildSolve(r *SolveRequest, base solver.Config) (solveJob, error) {
	bs, err := buildSource(r)
	if err != nil {
		return solveJob{}, err
	}
	if r.Buffer <= 0 {
		return solveJob{}, fmt.Errorf("buffer is required (seconds)")
	}
	var mdl solver.Model
	switch {
	case r.Util != 0 && r.Service != 0:
		return solveJob{}, fmt.Errorf("give either util or service, not both")
	case r.Util != 0:
		mdl, err = solver.NewModelNormalized(bs.src, r.Util, r.Buffer)
	case r.Service != 0:
		mdl, err = solver.NewModelFromSource(bs.src, r.Service, r.Buffer*r.Service)
	default:
		return solveJob{}, fmt.Errorf("one of util or service is required")
	}
	if err != nil {
		return solveJob{}, err
	}
	return solveJob{model: mdl, key: cacheKey(bs.marg, bs.alpha, bs.theta, bs.cutoff, mdl, r.Model, solverConfig(r, base))}, nil
}

// solverConfig merges the request's overrides onto the server defaults.
// The per-request budget is applied by the serving loop, not here, so the
// returned config is budget-free and safe to hash into the cache key.
func solverConfig(r *SolveRequest, base solver.Config) solver.Config {
	if r.Solver.RelGap > 0 {
		base.RelGap = r.Solver.RelGap
	}
	if r.Solver.MaxBins > 0 {
		base.MaxBins = r.Solver.MaxBins
	}
	base.MaxDuration = 0
	return base
}

// cacheKey builds the canonical identity of a solve: every numeric input is
// resolved first (hurst→alpha, epoch→theta, util→service rate) and printed
// in shortest round-trippable form, so two requests that describe the same
// queue through different parameterizations share one key. The solver
// configuration enters through solver.ConfigHash with its wall-clock budget
// zeroed — budgets shape latency, not the converged answer, and converged
// results are the only ones cached.
func cacheKey(m dist.Marginal, alpha, theta, cutoff float64, mdl solver.Model, spec source.Spec, cfg solver.Config) string {
	var b strings.Builder
	b.WriteString("v1|mg=")
	for i := 0; i < m.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(gfmt(m.Rate(i)))
		b.WriteByte(':')
		b.WriteString(gfmt(m.Prob(i)))
	}
	fmt.Fprintf(&b, "|a=%s|th=%s|tc=%s|c=%s|B=%s|model=%s|cfg=%s",
		gfmt(alpha), gfmt(theta), gfmt(cutoff),
		gfmt(mdl.ServiceRate), gfmt(mdl.Buffer),
		spec.Key(), solver.ConfigHash(cfg))
	return b.String()
}

// gfmt formats a float in shortest round-trippable form (inf-safe), the
// same convention the sweep journal keys use.
func gfmt(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
