package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"lrd/internal/dist"
	"lrd/internal/fluid"
	"lrd/internal/solver"
	"lrd/internal/source"
)

// Duration is a time.Duration that unmarshals from either a Go duration
// string ("2s", "500ms") or a number of seconds, so curl-friendly request
// bodies can write whichever is natural.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("invalid duration %q: %w", s, perr)
		}
		*d = Duration(parsed)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(data, &secs); err != nil {
		return fmt.Errorf("duration must be a string like \"2s\" or a number of seconds")
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// SolverParams is the per-request subset of the solver configuration a
// client may override. Everything else comes from the server's -relgap and
// -maxbins style defaults; resource-protection knobs (iteration caps, the
// numeric watchdog) stay server-side.
type SolverParams struct {
	// RelGap is the bound convergence target (paper: 0.2).
	RelGap float64 `json:"relgap,omitempty"`
	// MaxBins caps the resolution ladder (default 32768).
	MaxBins int `json:"maxbins,omitempty"`
	// Timeout is the per-request wall-clock solve budget. It is clamped to
	// the server's request timeout and mapped onto the solver's MaxDuration
	// budget machinery, so an expired budget degrades gracefully to the
	// best-so-far bracket instead of failing.
	Timeout Duration `json:"timeout,omitempty"`
}

// SolveRequest is the POST /v1/solve body: the same queue description the
// lrdloss command takes, as JSON. The marginal uses the CLI's inline
// rate:prob syntax; the correlation structure is given by -hurst-or-alpha,
// -theta-or-epoch, and the cutoff lag; the queue by -util-or-service and
// the normalized buffer; and the optional model is a registered traffic
// model spec ({"name": ..., "params": {...}}).
type SolveRequest struct {
	// Marginal is the rate marginal as rate:prob pairs, e.g. "0:0.5,2:0.5".
	Marginal string `json:"marginal"`
	// Hurst in (0.5, 1) sets the tail index alpha = 3−2H; Alpha in (1, 2) is
	// the alternative. Exactly one must be set.
	Hurst float64 `json:"hurst,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
	// Theta is the Pareto scale in seconds; Epoch is the mean epoch duration
	// that calibrates it. Exactly one must be set.
	Theta float64 `json:"theta,omitempty"`
	Epoch float64 `json:"epoch,omitempty"`
	// Cutoff is the correlation cutoff lag Tc in seconds; 0 or absent means
	// infinite (the pure heavy-tailed source).
	Cutoff float64 `json:"cutoff,omitempty"`
	// Util in (0, 1) sets the service rate from the marginal mean; Service
	// gives the rate directly. Exactly one must be set.
	Util    float64 `json:"util,omitempty"`
	Service float64 `json:"service,omitempty"`
	// Buffer is the normalized buffer size B/c in seconds. Required.
	Buffer float64 `json:"buffer"`
	// Model realizes the reference source as a registered traffic model
	// before solving (fluid, onoff, markov, mmfq). Absent means fluid, the
	// paper's model.
	Model source.Spec `json:"model,omitempty"`
	// Solver overrides the server's default solver knobs for this request.
	Solver SolverParams `json:"solver,omitempty"`
}

// solveJob is a validated, realized request: the model to solve and the
// canonical cache key that identifies its result.
type solveJob struct {
	model solver.Model
	key   string
}

// build validates the request, realizes its traffic model, and computes the
// canonical cache key. Every error is a client error (HTTP 400).
func (r *SolveRequest) build(base solver.Config) (solveJob, error) {
	if r.Marginal == "" {
		return solveJob{}, fmt.Errorf("marginal is required (rate:prob pairs)")
	}
	m, err := source.ParseMarginal(r.Marginal)
	if err != nil {
		return solveJob{}, err
	}
	alpha := r.Alpha
	switch {
	case r.Hurst != 0 && r.Alpha != 0:
		return solveJob{}, fmt.Errorf("give either hurst or alpha, not both")
	case r.Hurst != 0:
		alpha = dist.AlphaFromHurst(r.Hurst)
	case r.Alpha == 0:
		return solveJob{}, fmt.Errorf("one of hurst or alpha is required")
	}
	theta := r.Theta
	if theta == 0 {
		if r.Epoch == 0 {
			return solveJob{}, fmt.Errorf("one of theta or epoch is required")
		}
		theta, err = dist.CalibrateTheta(alpha, r.Epoch)
		if err != nil {
			return solveJob{}, err
		}
	}
	cutoff := r.Cutoff
	if cutoff == 0 {
		cutoff = math.Inf(1)
	}
	ref, err := fluid.New(m, dist.TruncatedPareto{Theta: theta, Alpha: alpha, Cutoff: cutoff})
	if err != nil {
		return solveJob{}, err
	}
	src, err := r.Model.Realize(ref)
	if err != nil {
		return solveJob{}, err
	}
	if r.Buffer <= 0 {
		return solveJob{}, fmt.Errorf("buffer is required (seconds)")
	}
	var mdl solver.Model
	switch {
	case r.Util != 0 && r.Service != 0:
		return solveJob{}, fmt.Errorf("give either util or service, not both")
	case r.Util != 0:
		mdl, err = solver.NewModelNormalized(src, r.Util, r.Buffer)
	case r.Service != 0:
		mdl, err = solver.NewModelFromSource(src, r.Service, r.Buffer*r.Service)
	default:
		return solveJob{}, fmt.Errorf("one of util or service is required")
	}
	if err != nil {
		return solveJob{}, err
	}
	return solveJob{model: mdl, key: cacheKey(m, alpha, theta, cutoff, mdl, r.Model, r.solverConfig(base))}, nil
}

// solverConfig merges the request's overrides onto the server defaults.
// The per-request budget is applied by the serving loop, not here, so the
// returned config is budget-free and safe to hash into the cache key.
func (r *SolveRequest) solverConfig(base solver.Config) solver.Config {
	if r.Solver.RelGap > 0 {
		base.RelGap = r.Solver.RelGap
	}
	if r.Solver.MaxBins > 0 {
		base.MaxBins = r.Solver.MaxBins
	}
	base.MaxDuration = 0
	return base
}

// cacheKey builds the canonical identity of a solve: every numeric input is
// resolved first (hurst→alpha, epoch→theta, util→service rate) and printed
// in shortest round-trippable form, so two requests that describe the same
// queue through different parameterizations share one key. The solver
// configuration enters through solver.ConfigHash with its wall-clock budget
// zeroed — budgets shape latency, not the converged answer, and converged
// results are the only ones cached.
func cacheKey(m dist.Marginal, alpha, theta, cutoff float64, mdl solver.Model, spec source.Spec, cfg solver.Config) string {
	var b strings.Builder
	b.WriteString("v1|mg=")
	for i := 0; i < m.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(gfmt(m.Rate(i)))
		b.WriteByte(':')
		b.WriteString(gfmt(m.Prob(i)))
	}
	fmt.Fprintf(&b, "|a=%s|th=%s|tc=%s|c=%s|B=%s|model=%s|cfg=%s",
		gfmt(alpha), gfmt(theta), gfmt(cutoff),
		gfmt(mdl.ServiceRate), gfmt(mdl.Buffer),
		spec.Key(), solver.ConfigHash(cfg))
	return b.String()
}

// gfmt formats a float in shortest round-trippable form (inf-safe), the
// same convention the sweep journal keys use.
func gfmt(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SweepRequest is the POST /v1/sweep body: a grid of cells over one queue
// description. Buffers and Cutoffs are the grid axes (each pair is one
// cell); when an axis is absent the embedded request's scalar Buffer or
// Cutoff is the single value. Cells are returned in row-major
// (buffer-outer, cutoff-inner) order, matching the lrdsweep TSV layout.
type SweepRequest struct {
	SolveRequest
	// Buffers are the normalized buffer sizes B/c in seconds swept by this
	// request; empty means the scalar Buffer field.
	Buffers []float64 `json:"buffers,omitempty"`
	// Cutoffs are the correlation cutoff lags Tc in seconds; empty means
	// the scalar Cutoff field (0 = infinite).
	Cutoffs []float64 `json:"cutoffs,omitempty"`
}

// maxSweepCells bounds one batch request's grid: a request is cheap to
// send, so an unbounded grid would be an amplification hazard.
const maxSweepCells = 4096

// cells expands the grid into one SolveRequest per cell, row-major.
func (r *SweepRequest) cells() ([]SolveRequest, error) {
	buffers := r.Buffers
	if len(buffers) == 0 {
		buffers = []float64{r.Buffer}
	}
	cutoffs := r.Cutoffs
	if len(cutoffs) == 0 {
		cutoffs = []float64{r.Cutoff}
	}
	if n := len(buffers) * len(cutoffs); n > maxSweepCells {
		return nil, fmt.Errorf("sweep grid has %d cells, limit %d", n, maxSweepCells)
	}
	out := make([]SolveRequest, 0, len(buffers)*len(cutoffs))
	for _, b := range buffers {
		for _, tc := range cutoffs {
			cell := r.SolveRequest
			cell.Buffer = b
			cell.Cutoff = tc
			out = append(out, cell)
		}
	}
	return out, nil
}

// SweepCellResult is one cell of a POST /v1/sweep reply. Status is the
// cell's own HTTP status; Result is the /v1/solve body for that cell (a
// SolveResponse on 200, an error object otherwise). Source is the cell's
// cache disposition (hit, miss, coalesced, or adopted — the last meaning
// another replica of a lease-sharing fleet computed it).
type SweepCellResult struct {
	Buffer float64         `json:"buffer"`
	Cutoff float64         `json:"cutoff,omitempty"`
	Status int             `json:"status"`
	Source string          `json:"source,omitempty"`
	Result json.RawMessage `json:"result"`
}

// SweepResponse is the POST /v1/sweep reply: one result per cell, in the
// request's row-major grid order. The response status is 200 when every
// cell succeeded and 207 when any cell carries its own error status.
type SweepResponse struct {
	Cells []SweepCellResult `json:"cells"`
}

// SolveResponse is the POST /v1/solve reply: the loss-rate bracket and
// solve diagnostics, plus the canonical cache key the result is stored
// under. Cache disposition travels in the X-Lrd-Cache header (hit, miss, or
// coalesced), never in the body — cached, coalesced, and fresh replies for
// the same key are bit-identical.
type SolveResponse struct {
	Loss        float64 `json:"loss"`
	Lower       float64 `json:"lower"`
	Upper       float64 `json:"upper"`
	RelativeGap float64 `json:"relative_gap"`
	Bins        int     `json:"bins"`
	Iterations  int     `json:"iterations"`
	Converged   bool    `json:"converged"`
	Degraded    string  `json:"degraded,omitempty"`
	GridStep    float64 `json:"grid_step"`
	Key         string  `json:"key"`
}
