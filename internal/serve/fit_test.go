package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lrd/internal/api"
	"lrd/internal/traces"
)

// postAt is post for the non-solve endpoints.
func postAt(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// fitTrace synthesizes a small FGN trace with a known Hurst parameter; the
// fixed seed keeps the fit deterministic across runs.
func fitTrace(t *testing.T) traces.Trace {
	t.Helper()
	tr, err := traces.Synthesize(traces.Config{
		Name:     "test",
		Hurst:    0.8,
		Bins:     4096,
		BinWidth: 0.04,
		Quantile: traces.LognormalQuantile(1, 0.5),
	}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestFitEndToEnd: /v1/fit on a synthetic H=0.8 trace recovers a plausible
// Hurst estimate, and the derived solve request round-trips through
// /v1/solve — the full trace→prediction pipeline over the wire.
func TestFitEndToEnd(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tr := fitTrace(t)
	reqBody, _ := json.Marshal(api.FitRequest{Rates: tr.Rates, BinWidth: tr.BinWidth, Cutoff: 1})
	resp, body := postAt(t, ts, "/v1/fit", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit: %d %s", resp.StatusCode, body)
	}
	var fit api.FitResponse
	if err := json.Unmarshal(body, &fit); err != nil {
		t.Fatal(err)
	}
	if fit.Samples != len(tr.Rates) || fit.BinWidth != tr.BinWidth {
		t.Fatalf("echoed trace shape: %+v", fit)
	}
	if fit.Hurst < 0.6 || fit.Hurst > 0.95 {
		t.Fatalf("fitted H = %g for an H=0.8 trace", fit.Hurst)
	}
	if math.Abs(fit.Alpha-(3-2*fit.Hurst)) > 1e-12 {
		t.Fatalf("alpha %g inconsistent with H %g", fit.Alpha, fit.Hurst)
	}
	if fit.Theta <= 0 || fit.Marginal == "" || fit.Estimator != "median" {
		t.Fatalf("incomplete fit: %+v", fit)
	}
	if len(fit.Estimates) != 5 {
		t.Fatalf("estimates map has %d entries, want all 5 estimators", len(fit.Estimates))
	}

	// The response plugs straight into /v1/solve.
	solveReq, _ := json.Marshal(fit.SolveRequest(0.8, 0.1))
	resp, body = post(t, ts, string(solveReq))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("derived solve: %d %s", resp.StatusCode, body)
	}
	var sol SolveResponse
	if err := json.Unmarshal(body, &sol); err != nil {
		t.Fatal(err)
	}
	if !(sol.Loss > 0 && sol.Loss < 1) {
		t.Fatalf("derived solve loss = %g", sol.Loss)
	}
}

// TestFitEstimationError: a constant-rate trace is syntactically valid but
// has no correlation structure to estimate — 422 with the estimation code,
// not a 400.
func TestFitEstimationError(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rates := make([]float64, 256)
	for i := range rates {
		rates[i] = 1
	}
	reqBody, _ := json.Marshal(api.FitRequest{Rates: rates, BinWidth: 0.01})
	resp, body := postAt(t, ts, "/v1/fit", string(reqBody))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("constant trace: %d %s", resp.StatusCode, body)
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != api.CodeEstimation {
		t.Fatalf("error code = %q, want %q (%s)", e.Code, api.CodeEstimation, body)
	}
}

// TestFitBadRequests: malformed fit requests fail fast with 400 and the
// bad_request code.
func TestFitBadRequests(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"empty rates":   `{"rates":[],"bin_width":0.01}`,
		"zero width":    `{"rates":[1,2,3],"bin_width":0}`,
		"negative rate": `{"rates":[1,-2,3],"bin_width":0.01}`,
		"unknown field": `{"rates":[1,2,3],"bin_width":0.01,"extra":true}`,
		"not json":      `]`,
	} {
		resp, data := postAt(t, ts, "/v1/fit", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d %s", name, resp.StatusCode, data)
			continue
		}
		var e api.Error
		if err := json.Unmarshal(data, &e); err != nil {
			t.Errorf("%s: undecodable error body %s", name, data)
			continue
		}
		if e.Code != api.CodeBadRequest {
			t.Errorf("%s: code %q, want %q", name, e.Code, api.CodeBadRequest)
		}
	}
}

// TestProvisionEndpoint: the inverse solve over the wire, with the bracket
// invariant verified through independent /v1/solve calls against the same
// server.
func TestProvisionEndpoint(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const slo = 0.05
	resp, body := postAt(t, ts, "/v1/provision", fmt.Sprintf(
		`{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"cutoff":1,"util":0.8,"slo":%g,"max":2}`, slo))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("provision: %d %s", resp.StatusCode, body)
	}
	var prov api.ProvisionResponse
	if err := json.Unmarshal(body, &prov); err != nil {
		t.Fatal(err)
	}
	if prov.Target != api.TargetBuffer || prov.SLO != slo {
		t.Fatalf("provision response: %+v", prov)
	}
	if prov.Loss > slo || prov.Bracket <= 0 || prov.Bracket >= prov.Value {
		t.Fatalf("bracket shape: %+v", prov)
	}

	forward := func(buffer float64) SolveResponse {
		t.Helper()
		resp, body := post(t, ts, fmt.Sprintf(
			`{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"cutoff":1,"util":0.8,"buffer":%g}`, buffer))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("forward solve: %d %s", resp.StatusCode, body)
		}
		var sol SolveResponse
		if err := json.Unmarshal(body, &sol); err != nil {
			t.Fatal(err)
		}
		return sol
	}
	// Provision classified both ends on proven solver bounds, so a cold
	// forward solve must bracket a true loss at or below the SLO at Value and
	// above it at Bracket. The cold midpoints are not compared to the SLO
	// exactly — a 20%-gap midpoint can land either side of it even when the
	// verdict is proven.
	if sol := forward(prov.Value); sol.Lower > slo {
		t.Errorf("forward solve at provisioned buffer %g: lower bound %g > SLO", prov.Value, sol.Lower)
	}
	if sol := forward(prov.Bracket); sol.Upper <= slo {
		t.Errorf("forward solve at bracket %g: upper bound %g <= SLO (not a bracket)", prov.Bracket, sol.Upper)
	}
}

// TestProvisionInfeasible: an unreachable SLO returns 422 with the
// infeasible code and the evidence in the message.
func TestProvisionInfeasible(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postAt(t, ts, "/v1/provision",
		`{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"cutoff":1,"util":0.95,"slo":1e-300,"max":0.002}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible provision: %d %s", resp.StatusCode, body)
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != api.CodeInfeasible {
		t.Fatalf("error code = %q, want %q (%s)", e.Code, api.CodeInfeasible, body)
	}
}

// TestProvisionBadRequests: provision-specific validation errors are 400s.
func TestProvisionBadRequests(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"missing slo":    `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8}`,
		"unknown target": `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8,"slo":0.05,"target":"latency"}`,
		"bad marginal":   `{"marginal":"nope","hurst":0.8,"epoch":0.05,"util":0.8,"slo":0.05}`,
		"unknown field":  `{"marginal":"0:0.5,2:0.5","slo":0.05,"bogus":1}`,
	} {
		resp, data := postAt(t, ts, "/v1/provision", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d %s", name, resp.StatusCode, data)
		}
	}
}
