package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lrd/internal/core"
	"lrd/internal/obs"
)

// solveBody is a small request that converges in well under a second.
func solveBody(buffer float64) string {
	return fmt.Sprintf(`{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"cutoff":1,"util":0.8,"buffer":%g}`, buffer)
}

func post(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSolveCachedBitIdentical: the second identical request is a cache hit
// whose body is byte-for-byte the fresh response.
func TestSolveCachedBitIdentical(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp1, body1 := post(t, ts, solveBody(0.1))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first solve: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Lrd-Cache"); got != "miss" {
		t.Fatalf("first solve X-Lrd-Cache = %q, want miss", got)
	}
	var res SolveResponse
	if err := json.Unmarshal(body1, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Degraded != "" || !(res.Lower <= res.Loss && res.Loss <= res.Upper) {
		t.Fatalf("implausible solve result: %+v", res)
	}
	if !strings.HasPrefix(res.Key, "v1|") {
		t.Fatalf("cache key %q lacks the v1| namespace", res.Key)
	}

	resp2, body2 := post(t, ts, solveBody(0.1))
	if got := resp2.Header.Get("X-Lrd-Cache"); got != "hit" {
		t.Fatalf("second solve X-Lrd-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached body differs from fresh:\n%s\n%s", body1, body2)
	}
	if n := s.solves.Load(); n != 1 {
		t.Fatalf("solver ran %d times, want 1", n)
	}
	if hits := s.reg.CounterValue(obs.MetricServeCacheHits); hits != 1 {
		t.Fatalf("cache hits = %v, want 1", hits)
	}

	// A request describing the same queue through the alpha/theta
	// parameterization shares the cache entry: the key canonicalizes.
	alt := `{"marginal":"0:0.5,2:0.5","alpha":1.4,"epoch":0.05,"cutoff":1,"util":0.8,"buffer":0.1}`
	resp3, body3 := post(t, ts, alt)
	if got := resp3.Header.Get("X-Lrd-Cache"); got != "hit" {
		t.Fatalf("alpha-form request X-Lrd-Cache = %q, want hit (key not canonical)", got)
	}
	if !bytes.Equal(body1, body3) {
		t.Fatal("alpha-form request returned different bytes")
	}
}

// TestSingleflightCoalesces: N identical concurrent requests run the solver
// once and receive bit-identical bodies.
func TestSingleflightCoalesces(t *testing.T) {
	s := New(Config{CacheSize: -1}) // cache off: coalescing must carry it alone
	release := make(chan struct{})
	keyc := make(chan string, 1)
	s.beforeSolve = func(key string) {
		select {
		case keyc <- key:
		default:
		}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 4
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := post(t, ts, solveBody(0.1))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: %d %s", i, resp.StatusCode, body)
			}
			bodies[i] = body
		}(i)
	}

	key := <-keyc // the leader is admitted and holding
	waitFor(t, "followers to coalesce", func() bool {
		s.mu.Lock()
		f := s.flights[key]
		s.mu.Unlock()
		return f != nil && f.waiters.Load() == n-1
	})
	close(release)
	wg.Wait()

	if solves := s.solves.Load(); solves != 1 {
		t.Fatalf("solver ran %d times for %d identical requests, want 1", solves, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0:\n%s\n%s", i, bodies[0], bodies[i])
		}
	}
	if co := s.reg.CounterValue(obs.MetricServeCoalesced); co != n-1 {
		t.Fatalf("coalesced = %v, want %d", co, n-1)
	}
}

// TestOverloadShedsWithoutStarving: with one solve slot and one queue slot,
// a third distinct request is shed fast with 429 + Retry-After while the
// admitted and queued solves complete normally.
func TestOverloadShedsWithoutStarving(t *testing.T) {
	s := New(Config{MaxInflight: 1, MaxQueue: 1, CacheSize: -1})
	release := make(chan struct{})
	s.beforeSolve = func(string) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	// A: admitted, holds the only slot at the beforeSolve gate.
	go func() {
		resp, body := post(t, ts, solveBody(0.1))
		results <- result{resp.StatusCode, body}
	}()
	waitFor(t, "first solve to be admitted", func() bool {
		return s.reg.CounterValue(obs.MetricServeAdmitted) == 1
	})
	// B: distinct request, waits in the queue.
	go func() {
		resp, body := post(t, ts, solveBody(0.11))
		results <- result{resp.StatusCode, body}
	}()
	waitFor(t, "second solve to queue", func() bool {
		return s.reg.CounterValue(obs.MetricServeQueued) == 1
	})

	// C: queue full — shed fast, not enqueued behind the running solves.
	resp, body := post(t, ts, solveBody(0.12))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload response = %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 lacks Retry-After")
	}
	if shed := s.reg.CounterValue(obs.MetricServeShed); shed != 1 {
		t.Fatalf("shed = %v, want 1", shed)
	}

	// The in-flight solves were not starved by the overload.
	close(release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("in-flight solve finished with %d %s", r.status, r.body)
		}
	}
}

// TestWarmRestartFromJournal: a journal-backed cache survives a restart —
// the new server answers from cache with the exact bytes the old one
// served.
func TestWarmRestartFromJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	store, err := core.OpenJournalStore(path, core.JournalStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Journal: store})
	ts1 := httptest.NewServer(s1.Handler())
	resp, fresh := post(t, ts1, solveBody(0.1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, fresh)
	}
	ts1.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := core.OpenJournalStore(path, core.JournalStoreOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	s2 := New(Config{Journal: resumed})
	if warmed := s2.reg.CounterValue(obs.MetricServeCacheWarmed); warmed != 1 {
		t.Fatalf("cache warmed = %v, want 1", warmed)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, body2 := post(t, ts2, solveBody(0.1))
	if got := resp2.Header.Get("X-Lrd-Cache"); got != "hit" {
		t.Fatalf("post-restart X-Lrd-Cache = %q, want hit", got)
	}
	if !bytes.Equal(fresh, body2) {
		t.Fatalf("post-restart body differs:\n%s\n%s", fresh, body2)
	}
	if n := s2.solves.Load(); n != 0 {
		t.Fatalf("restarted server solved %d times, want 0", n)
	}
}

// TestDegradedResultsAreNotCached: a budget-degraded bracket is served but
// never cached — the next identical request re-solves.
func TestDegradedResultsAreNotCached(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"cutoff":1,"util":0.8,"buffer":0.1,"solver":{"timeout":"1ns"}}`
	resp, data := post(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded solve: %d %s", resp.StatusCode, data)
	}
	var res SolveResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Degraded == "" {
		t.Skip("1ns budget did not degrade on this machine")
	}
	resp2, _ := post(t, ts, body)
	if got := resp2.Header.Get("X-Lrd-Cache"); got != "miss" {
		t.Fatalf("second degraded request X-Lrd-Cache = %q, want miss (degraded result was cached)", got)
	}
	if entries, _ := s.reg.GaugeValue(obs.MetricServeCacheEntries); entries != 0 {
		t.Fatalf("cache entries = %v, want 0", entries)
	}
}

// TestRequestValidation: malformed bodies and inconsistent parameter sets
// are 400s that name the problem.
func TestRequestValidation(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body, want string
	}{
		{"empty", `{}`, "marginal is required"},
		{"not json", `{`, "decoding request"},
		{"unknown field", `{"marginal":"0:1","hurst":0.8,"epoch":0.05,"util":0.8,"buffer":0.1,"nope":1}`, "unknown field"},
		{"both hurst and alpha", `{"marginal":"0:0.5,2:0.5","hurst":0.8,"alpha":1.4,"epoch":0.05,"util":0.8,"buffer":0.1}`, "either hurst or alpha"},
		{"no theta", `{"marginal":"0:0.5,2:0.5","hurst":0.8,"util":0.8,"buffer":0.1}`, "one of theta or epoch"},
		{"no buffer", `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8}`, "buffer is required"},
		{"no service", `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"buffer":0.1}`, "one of util or service"},
		{"bad model", `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8,"buffer":0.1,"model":{"name":"nosuch"}}`, "unknown model"},
		{"bad duration", `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8,"buffer":0.1,"solver":{"timeout":"fast"}}`, "invalid duration"},
	}
	for _, tc := range cases {
		resp, data := post(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d %s, want 400", tc.name, resp.StatusCode, data)
			continue
		}
		var e map[string]string
		if err := json.Unmarshal(data, &e); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.name, data)
			continue
		}
		if !strings.Contains(e["error"], tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, e["error"], tc.want)
		}
	}
	if errs := s.reg.CounterValue(obs.Labeled(obs.MetricServeErrors, "kind", "bad_request")); errs != float64(len(cases)) {
		t.Fatalf("bad_request errors = %v, want %d", errs, len(cases))
	}
}

// TestModelRequests: a registered non-fluid model solves through the
// service and gets its own cache key.
func TestModelRequests(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fluidBody := solveBody(0.1)
	mmfqBody := `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"cutoff":1,"util":0.8,"buffer":0.1,"model":{"name":"mmfq"}}`
	_, fluidResp := post(t, ts, fluidBody)
	resp, mmfqResp := post(t, ts, mmfqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mmfq solve: %d %s", resp.StatusCode, mmfqResp)
	}
	if resp.Header.Get("X-Lrd-Cache") != "miss" {
		t.Fatal("mmfq request hit the fluid cache entry: keys do not separate models")
	}
	var f, q SolveResponse
	if err := json.Unmarshal(fluidResp, &f); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mmfqResp, &q); err != nil {
		t.Fatal(err)
	}
	if f.Key == q.Key {
		t.Fatal("fluid and mmfq requests share a cache key")
	}
	if !(q.Lower <= q.Loss && q.Loss <= q.Upper) {
		t.Fatalf("mmfq result %v outside its bounds [%v, %v]", q.Loss, q.Lower, q.Upper)
	}
}

// TestMetricsAndHealth: /metrics serves conformant Prometheus text by
// default and the JSON snapshot under ?format=json.
func TestMetricsAndHealth(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts, solveBody(0.1))

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	if err := obs.LintExposition(bytes.NewReader(prom)); err != nil {
		t.Fatalf("/metrics fails the exposition linter: %v\n%s", err, prom)
	}
	if !bytes.Contains(prom, []byte(obs.MetricServeRequests+" 1")) {
		t.Fatalf("%s missing from exposition:\n%s", obs.MetricServeRequests, prom)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, data)
	}
	if snap.Counters[obs.MetricServeRequests] != 1 {
		t.Fatalf("metrics counters = %v, want %s = 1", snap.Counters, obs.MetricServeRequests)
	}
	if snap.Counters[obs.MetricSolverSolves] != 1 {
		t.Fatalf("solver metrics not wired through the serve registry: %v", snap.Counters)
	}

	// Wrong method on the solve route is rejected by the router.
	resp, err = http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve = %d, want 405", resp.StatusCode)
	}
}
