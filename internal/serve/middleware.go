package serve

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"lrd/internal/obs"
)

// This file is the admission perimeter around the solve pipeline: the
// readiness signal load balancers route on, the per-client rate limiter
// that keeps one greedy client from starving a fleet's other tenants, and
// the panic barrier that turns a handler bug into a 500 + metric instead
// of a dead replica.

// MarkReady flips /readyz to 200. Call it once the listener is accepting
// and the cache warm-load has finished — before that, a load balancer
// routing on readiness would send traffic into the cold start.
func (s *Server) MarkReady() {
	s.ready.Store(true)
	s.reg.Set(obs.MetricServeReady, 1)
}

// StartDrain flips /readyz to 503 ("draining") while /v1 endpoints keep
// answering. Call it before closing the listener so load balancers stop
// routing new work here during the grace window; in-flight and
// stragglers still complete.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.reg.Set(obs.MetricServeReady, 0)
}

// Draining reports whether StartDrain has been called (used by tests and
// the shutdown sequencing in cmd/lrdserve).
func (s *Server) Draining() bool { return s.draining.Load() }

// handleReady is the load-balancer contract: 200 only when warm and not
// draining. It deliberately gates routing, not solving — a request that
// already arrived is served regardless.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"starting"}`)
	default:
		fmt.Fprintln(w, `{"status":"ready"}`)
	}
}

// recoverMiddleware converts a handler panic into a 500 with a metric and
// a logged stack, so one poisoned request cannot take the replica down.
// http.ErrAbortHandler passes through untouched — it is net/http's own
// sanctioned way to abort a response.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.reg.Add(obs.MetricServePanics, 1)
			s.reg.Add(obs.Labeled(obs.MetricServeErrors, "kind", "panic"), 1)
			if s.cfg.Logger != nil {
				s.cfg.Logger.Error("panic in handler",
					"path", r.URL.Path,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()))
			}
			// Best effort: if the handler already wrote, this is a no-op on
			// the status but still ends the response.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			w.Write(errBody("", "internal error"))
		}()
		next.ServeHTTP(w, r)
	})
}

// recoverCell guards one sweep cell's goroutine the same way (a goroutine
// panic would crash the process straight past any middleware).
func (s *Server) recoverCell(result *SweepCellResult) {
	rec := recover()
	if rec == nil {
		return
	}
	s.reg.Add(obs.MetricServePanics, 1)
	s.reg.Add(obs.Labeled(obs.MetricServeErrors, "kind", "panic"), 1)
	result.Status = http.StatusInternalServerError
	result.Result = errBody("", "internal error")
}

// maxRateClients bounds the limiter's per-client table; beyond it the
// stalest idle entries are evicted (an adversary cycling source addresses
// degrades to unlimited concurrency, not unbounded memory).
const maxRateClients = 10000

// rateClientIdleEvict is how long a client must be idle before eviction
// may reclaim its bucket.
const rateClientIdleEvict = time.Minute

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-client token bucket keyed by remote host. rate is
// tokens/second, burst the bucket capacity.
type rateLimiter struct {
	mu      sync.Mutex
	clients map[string]*bucket
	rate    float64
	burst   float64
	now     func() time.Time // injectable for tests
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst <= 0 {
		// Default burst: enough for a small command-line batch, scaled with
		// the rate so high-rate configs are not needlessly spiky-hostile.
		burst = int(math.Max(1, math.Ceil(2*rate)))
	}
	return &rateLimiter{
		clients: make(map[string]*bucket),
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
	}
}

// take attempts to spend one token for the client. When the bucket is
// empty it returns ok=false and how long until a token accrues.
func (l *rateLimiter) take(client string) (ok bool, wait time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[client]
	if b == nil {
		if len(l.clients) >= maxRateClients {
			l.evictLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / l.rate * float64(time.Second))
}

// evictLocked drops idle buckets; if every client is active it removes
// one arbitrarily so the table stays bounded no matter what.
func (l *rateLimiter) evictLocked(now time.Time) {
	dropped := false
	for k, b := range l.clients {
		if now.Sub(b.last) > rateClientIdleEvict {
			delete(l.clients, k)
			dropped = true
		}
	}
	if !dropped {
		for k := range l.clients {
			delete(l.clients, k)
			return
		}
	}
}

// clientKey extracts the rate-limit key from a request: the remote IP
// without the ephemeral port (one laptop = one bucket, not one bucket per
// connection).
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// rateLimitMiddleware applies the per-client bucket to the solve API only
// (/v1/…); health, readiness, and metrics stay unthrottled so operators
// and probes are never locked out by a chatty tenant on the same host.
func (s *Server) rateLimitMiddleware(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if len(r.URL.Path) >= 4 && r.URL.Path[:4] == "/v1/" {
			if ok, wait := s.limiter.take(clientKey(r)); !ok {
				s.reg.Add(obs.MetricServeRateLimited, 1)
				w.Header().Set("Retry-After", s.rateRetryAfter(wait))
				s.fail(w, http.StatusTooManyRequests, "rate_limited",
					fmt.Errorf("rate limit exceeded (%g req/s per client)", s.limiter.rate))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// rateRetryAfter turns a token-accrual wait into a Retry-After hint that
// also accounts for the solve queue's current depth: a client told to
// come back should not immediately land in a full queue and get shed
// again. Whole seconds, rounded up, floor 1.
func (s *Server) rateRetryAfter(wait time.Duration) string {
	if n := len(s.queue); n > 0 && s.cfg.MaxQueue > 0 {
		wait += time.Duration(float64(s.cfg.RetryAfter) * float64(n) / float64(s.cfg.MaxQueue))
	}
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
