package serve

import (
	"math"
	"testing"

	"lrd/internal/dist"
	"lrd/internal/solver"
)

// FuzzCanonicalCacheKey drives the solve-cache identity through arbitrary
// float tuples: build must never panic (only reject), the key must be
// deterministic, the hurst and alpha parameterizations of the same queue
// must share one key (that is the point of canonicalization), and a request
// with a different buffer must never collide.
func FuzzCanonicalCacheKey(f *testing.F) {
	f.Add(0.8, 0.05, 1.0, 0.8, 0.5)
	f.Add(0.7, 0.1, 0.0, 0.5, 0.1) // cutoff 0 = infinite
	f.Add(0.9, 1.0, 10.0, 0.95, 2.0)
	f.Add(0.51, 1e-9, 1e9, 1e-9, 1e-12)
	f.Add(math.NaN(), math.Inf(1), math.Inf(-1), -1.0, 0.0)

	base := solver.Config{}
	f.Fuzz(func(t *testing.T, hurst, epoch, cutoff, util, buffer float64) {
		r1 := &SolveRequest{
			Marginal: "0:0.5,2:0.5",
			Hurst:    hurst, Epoch: epoch, Cutoff: cutoff,
			Util: util, Buffer: buffer,
		}
		j1, err := buildSolve(r1, base) // must not panic on any input
		if err != nil {
			return // rejected: fine, nothing more to check
		}
		j1b, err := buildSolve(r1, base)
		if err != nil || j1b.key != j1.key {
			t.Fatalf("key not deterministic: %q vs %q (err %v)", j1.key, j1b.key, err)
		}

		// The resolved-alpha parameterization of the same queue must share
		// the key byte for byte.
		r2 := *r1
		r2.Hurst, r2.Alpha = 0, dist.AlphaFromHurst(hurst)
		j2, err := buildSolve(&r2, base)
		if err != nil {
			t.Fatalf("alpha form of an accepted hurst form rejected: %v", err)
		}
		if j2.key != j1.key {
			t.Fatalf("hurst/alpha parameterizations split the cache:\n %q\n %q", j1.key, j2.key)
		}

		// A genuinely different buffer must not collide.
		r3 := *r1
		r3.Buffer = buffer * 2
		if r3.Buffer != buffer && !math.IsInf(r3.Buffer, 0) {
			if j3, err := buildSolve(&r3, base); err == nil && j3.key == j1.key {
				t.Fatalf("buffers %v and %v collide on key %q", buffer, r3.Buffer, j1.key)
			}
		}
	})
}
