package serve

import (
	"encoding/json"
	"testing"

	"lrd/internal/solver"
)

// TestCacheKeyGolden pins the canonical cache key byte for byte: journals
// and fleet lease stores written by earlier servers are keyed by exactly
// this string, so a drift here silently orphans every warm-start journal.
func TestCacheKeyGolden(t *testing.T) {
	req := &SolveRequest{Marginal: "0:0.5,2:0.5", Hurst: 0.8, Epoch: 0.05, Util: 0.8, Buffer: 0.5}
	job, err := buildSolve(req, solver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const want = "v1|mg=0:0.5,2:0.5|a=1.4|th=0.019999999999999997|tc=inf|c=1.25|B=0.625|model=fluid|cfg=acd8fc77d61a4038"
	if job.key != want {
		t.Fatalf("cache key changed:\n got  %s\n want %s", job.key, want)
	}
}

// TestErrorBodyLegacyBytes pins the /v1/solve and /v1/sweep error bodies to
// the pre-envelope encoding: a code-less api.Error must produce exactly the
// bytes the old map[string]string marshal produced.
func TestErrorBodyLegacyBytes(t *testing.T) {
	legacy, _ := json.Marshal(map[string]string{"error": "overloaded: solve queue is full"})
	got := errBody("", "overloaded: solve queue is full")
	if string(got) != string(legacy) {
		t.Fatalf("legacy error bytes changed:\n got  %s\n want %s", got, legacy)
	}
	if coded := errBody("infeasible", "x"); string(coded) != `{"error":"x","code":"infeasible"}` {
		t.Fatalf("coded error bytes: %s", coded)
	}
}
