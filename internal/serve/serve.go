// Package serve is the HTTP serving spine of the lrdserve command: a
// loss-rate-as-a-service layer over the bounded solver with production
// backpressure semantics.
//
// A request travels through four stages, each observable in /metrics:
//
//  1. Cache: the request's canonical key (see cacheKey) is looked up in an
//     LRU of marshaled response bodies; a hit replays bit-identical bytes
//     with X-Lrd-Cache: hit. With a journal attached the cache survives
//     restarts: fills append to the journal, startup replays it.
//  2. Singleflight: identical in-flight requests coalesce onto one solve;
//     followers wait for the leader's bytes (X-Lrd-Cache: coalesced) and
//     consume no solver slot.
//  3. Admission: at most MaxInflight solves run concurrently; up to
//     MaxQueue leaders wait for a slot; beyond that the request is shed
//     fast with 429 and a Retry-After hint, so overload never starves the
//     solves already running.
//  4. Solve: the per-request budget (request timeout clamped to the server
//     cap) maps onto the solver's MaxDuration machinery and the request
//     context, so expiry degrades gracefully to the best-so-far bracket
//     and a client disconnect cancels the solve.
//
// Only converged, non-degraded results are cached — a degraded bracket is
// a budget artifact, not the queue's answer.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lrd/internal/api"
	"lrd/internal/core"
	"lrd/internal/fleetstatus"
	"lrd/internal/obs"
	"lrd/internal/solver"
)

// Config tunes the server. The zero value serves with the defaults below.
type Config struct {
	// MaxInflight caps concurrent solves. Default 4.
	MaxInflight int
	// MaxQueue caps requests waiting for a solve slot; beyond it requests
	// are shed with 429. Default 16.
	MaxQueue int
	// CacheSize is the solve-cache capacity in entries. Default 1024;
	// negative disables caching.
	CacheSize int
	// RequestTimeout caps every request's solve budget; per-request timeouts
	// are clamped to it. Zero means no server-side cap.
	RequestTimeout time.Duration
	// RetryAfter is the Retry-After hint on 429 responses. Default 1s.
	RetryAfter time.Duration
	// RateLimit is the per-client request rate (req/s, keyed by remote IP)
	// applied to /v1/ endpoints; 0 disables rate limiting. Excess requests
	// are shed with 429 and a queue-depth-aware Retry-After.
	RateLimit float64
	// RateBurst is the per-client burst capacity. Default max(1, ⌈2·RateLimit⌉).
	RateBurst int
	// Solver is the default solver configuration; requests may override the
	// convergence knobs (relgap, maxbins) per call.
	Solver solver.Config
	// Batch shares one solver.Arena across all the process's solves — the
	// /v1/solve singleflight path and every /v1/sweep cell — so concurrent
	// and successive solves recycle FFT workspaces, step buffers, and
	// refinement tables instead of reallocating them. Purely an allocation
	// optimization: responses are bit-identical to the unbatched server.
	Batch bool
	// Journal, when non-nil, persists the solve cache: every cache fill is
	// appended, and New warm-loads the journal's serve entries (keys are
	// namespaced, so sweep journals pass through harmlessly). Open it with
	// resume to get the warm start. Both *core.JournalStore (single
	// replica) and *core.LeaseStore (shared across a fleet) satisfy it.
	Journal CacheJournal
	// Leases, when non-nil, coordinates solves across a fleet of replicas
	// sharing one journal: before computing, a singleflight leader leases
	// the request key, and a replica that finds another replica's lease
	// blocks until that replica's result lands, then adopts it
	// (X-Lrd-Cache: adopted) — the cross-process generalization of
	// singleflight. When Leases is set and Journal is nil, the lease store
	// doubles as the cache journal.
	Leases *core.LeaseStore
	// Registry receives the serve metrics and backs /metrics. New creates
	// one when nil.
	Registry *obs.Registry
	// Status, when non-nil, backs GET /v1/status and the SSE stream with a
	// journal-derived fleet view (typically an aggregator tailing the same
	// journal the cache/lease layer writes). Without it /v1/status reports
	// an empty fleet.
	Status *fleetstatus.Aggregator
	// SpanSink, when non-nil, receives the request/solve/journal spans of
	// every request (the -trace JSONL file on lrdserve).
	SpanSink obs.SpanSink
	// Logger, when non-nil, receives one structured line per request with
	// the correlated trace id attached. Nil disables request logging.
	Logger *slog.Logger
}

// CacheJournal is the durability surface the serving layer uses: Store
// appends one completed entry, Range replays every completed entry for the
// warm start.
type CacheJournal interface {
	Store(key string, value any) error
	Range(fn func(key string, value json.RawMessage) bool)
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// flight is one in-flight solve that identical requests coalesce onto.
type flight struct {
	done    chan struct{}
	status  int
	body    []byte
	waiters atomic.Int64
}

// Server handles the lrdserve HTTP API. Create with New.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	sem   chan struct{}
	queue chan struct{}
	cache *lru
	// arena is the process-wide solve scratch pool (Config.Batch); nil when
	// batching is off.
	arena *solver.Arena

	mu      sync.Mutex
	flights map[string]*flight

	// ready/draining drive /readyz: advisory for load-balancer routing,
	// never a gate on requests that already arrived.
	ready    atomic.Bool
	draining atomic.Bool
	limiter  *rateLimiter

	// solves counts solver invocations; the singleflight e2e asserts it.
	solves atomic.Int64
	// beforeSolve, when non-nil, runs on the leader after admission and
	// before the solve — a test hook to hold solves open deterministically.
	beforeSolve func(key string)
}

// New builds a Server, warm-loading the solve cache from cfg.Journal when
// one is attached.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Journal == nil && cfg.Leases != nil {
		cfg.Journal = cfg.Leases
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		sem:     make(chan struct{}, cfg.MaxInflight),
		queue:   make(chan struct{}, cfg.MaxQueue),
		flights: make(map[string]*flight),
	}
	if cfg.Batch {
		s.arena = solver.NewArena()
	}
	if cfg.CacheSize > 0 {
		s.cache = newLRU(cfg.CacheSize)
	}
	if cfg.RateLimit > 0 {
		s.limiter = newRateLimiter(cfg.RateLimit, cfg.RateBurst)
	}
	if s.cache != nil && cfg.Journal != nil {
		warmed := 0
		cfg.Journal.Range(func(key string, value json.RawMessage) bool {
			// Only this layer's keys: a shared journal may also hold sweep
			// cells, which are not response bodies.
			if len(key) < 3 || key[:3] != "v1|" {
				return true
			}
			s.cache.add(key, append([]byte(nil), value...))
			warmed++
			return warmed < cfg.CacheSize
		})
		if warmed > 0 {
			s.reg.Add(obs.MetricServeCacheWarmed, float64(warmed))
			s.reg.Set(obs.MetricServeCacheEntries, float64(s.cache.len()))
		}
	}
	return s
}

// Handler returns the HTTP API: POST /v1/solve, POST /v1/sweep,
// POST /v1/fit, POST /v1/provision, GET /metrics (Prometheus text; ?format=json for the JSON snapshot),
// GET /v1/status (+ /v1/status/stream SSE), GET /healthz, GET /readyz.
// The stack is wrapped by the admission perimeter: per-client rate
// limiting on /v1/ paths, panic recovery outermost.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/fit", s.handleFit)
	mux.HandleFunc("POST /v1/provision", s.handleProvision)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/status/stream", s.handleStatusStream)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	return s.recoverMiddleware(s.rateLimitMiddleware(mux))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.Snapshot().WriteJSON(w); err != nil {
			// Headers are gone; nothing to do but note it.
			s.reg.Add(obs.Labeled(obs.MetricServeErrors, "kind", "metrics_write"), 1)
		}
		return
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	if err := s.reg.Snapshot().WritePrometheus(w); err != nil {
		s.reg.Add(obs.Labeled(obs.MetricServeErrors, "kind", "metrics_write"), 1)
	}
}

// statusSnapshot builds the fleet status. Without an aggregator the fleet
// view is empty (the server is running journal-less); the endpoint still
// answers so probes need not know the deployment mode.
func (s *Server) statusSnapshot() (fleetstatus.Status, error) {
	if s.cfg.Status == nil {
		return fleetstatus.Status{UnixMs: time.Now().UnixMilli()}, nil
	}
	return s.cfg.Status.Status()
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	st, err := s.statusSnapshot()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "status", err)
		return
	}
	body, err := json.Marshal(st)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "encode", err)
		return
	}
	writeJSON(w, http.StatusOK, "", body)
}

// handleStatusStream pushes the fleet status as server-sent events: one
// `status` event immediately, then one per interval (?interval_ms, default
// 1000, floor 100) until the client disconnects.
func (s *Server) handleStatusStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, "status", errors.New("streaming unsupported"))
		return
	}
	interval := time.Second
	if ms, err := strconv.Atoi(r.URL.Query().Get("interval_ms")); err == nil && ms > 0 {
		if ms < 100 {
			ms = 100
		}
		interval = time.Duration(ms) * time.Millisecond
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := s.statusSnapshot()
		if err != nil {
			fmt.Fprintf(w, "event: error\ndata: %q\n\n", err.Error())
			fl.Flush()
			return
		}
		body, err := json.Marshal(st)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: status\ndata: %s\n\n", body)
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
		}
	}
}

// writeJSON sends body with the cache disposition header. Bodies for the
// same key are bit-identical across hit/miss/coalesced.
func writeJSON(w http.ResponseWriter, status int, disposition string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if disposition != "" {
		w.Header().Set("X-Lrd-Cache", disposition)
	}
	w.WriteHeader(status)
	w.Write(body)
}

// errBody marshals the shared api.Error envelope. An empty code yields the
// legacy {"error":"..."} bytes — the /v1/solve and /v1/sweep paths pass ""
// so their wire encoding is unchanged; the fit/provision endpoints carry a
// machine-readable code.
func errBody(code, msg string) []byte {
	body, _ := json.Marshal(api.Error{Message: msg, Code: code})
	return body
}

func (s *Server) fail(w http.ResponseWriter, status int, kind string, err error) {
	s.failCode(w, status, kind, "", err)
}

// failCode is fail with a machine-readable envelope code. When err is
// already an *api.Error its own code wins, so typed errors from the
// provisioning layer pass through intact.
func (s *Server) failCode(w http.ResponseWriter, status int, kind, code string, err error) {
	s.reg.Add(obs.Labeled(obs.MetricServeErrors, "kind", kind), 1)
	msg := err.Error()
	var aerr *api.Error
	if errors.As(err, &aerr) {
		msg, code = aerr.Message, aerr.Code
	}
	writeJSON(w, status, "", errBody(code, msg))
}

// traceRequest mints (or adopts, from an incoming X-Lrd-Trace header) the
// request's TraceContext, attaches it and the server's span sink to the
// context, echoes the trace id back as the X-Lrd-Trace response header,
// and opens the root request span. The returned finish closure emits the
// span and the per-request slog line.
func (s *Server) traceRequest(w http.ResponseWriter, r *http.Request, name string) (context.Context, func(status int, disposition string)) {
	start := time.Now()
	traceID := r.Header.Get("X-Lrd-Trace")
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	ctx := obs.ContextWithTrace(r.Context(), obs.TraceContext{TraceID: traceID})
	ctx = obs.ContextWithSpanSink(ctx, s.cfg.SpanSink)
	ctx, finishSpan := obs.StartSpan(ctx, name)
	w.Header().Set("X-Lrd-Trace", traceID)
	return ctx, func(status int, disposition string) {
		if obs.Traced(ctx) {
			finishSpan(map[string]string{
				"path":        r.URL.Path,
				"status":      strconv.Itoa(status),
				"disposition": disposition,
			})
		}
		if s.cfg.Logger != nil {
			s.cfg.Logger.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", status,
				"disposition", disposition,
				"dur", time.Since(start).Round(time.Microsecond).String(),
				"trace", traceID)
		}
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Add(obs.MetricServeRequests, 1)
	defer func() { s.reg.Observe(obs.MetricServeRequestSeconds, time.Since(start).Seconds()) }()
	ctx, finish := s.traceRequest(w, r, "serve.solve")

	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		finish(http.StatusBadRequest, "")
		s.fail(w, http.StatusBadRequest, "bad_request", fmt.Errorf("decoding request: %w", err))
		return
	}
	job, err := buildSolve(&req, s.cfg.Solver)
	if err != nil {
		finish(http.StatusBadRequest, "")
		s.fail(w, http.StatusBadRequest, "bad_request", err)
		return
	}

	status, disposition, body := s.solveOne(ctx, req, job)
	finish(status, disposition)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
	}
	writeJSON(w, status, disposition, body)
}

// handleSweep is the batch endpoint: one request describes a grid of
// cells (buffers × cutoffs over a shared queue description) and every
// cell runs through the same per-key pipeline as /v1/solve — cache,
// singleflight, fleet lease, admission — concurrently within the request,
// bounded by the server's admission limits. A fleet of replicas pointed
// at one shared lease journal splits a sweep without a coordinator: each
// cell is computed by exactly one replica and adopted by the rest.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Add(obs.MetricServeRequests, 1)
	defer func() { s.reg.Observe(obs.MetricServeRequestSeconds, time.Since(start).Seconds()) }()
	ctx, finish := s.traceRequest(w, r, "serve.sweep")

	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		finish(http.StatusBadRequest, "")
		s.fail(w, http.StatusBadRequest, "bad_request", fmt.Errorf("decoding request: %w", err))
		return
	}
	cells, err := req.Cells()
	if err != nil {
		finish(http.StatusBadRequest, "")
		s.fail(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	type built struct {
		req SolveRequest
		job solveJob
	}
	jobs := make([]built, len(cells))
	for i, cr := range cells {
		job, err := buildSolve(&cr, s.cfg.Solver)
		if err != nil {
			finish(http.StatusBadRequest, "")
			s.fail(w, http.StatusBadRequest, "bad_request",
				fmt.Errorf("cell %d (buffer=%g, cutoff=%g): %w", i, cr.Buffer, cr.Cutoff, err))
			return
		}
		jobs[i] = built{req: cr, job: job}
	}

	results := make([]SweepCellResult, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The middleware's recover cannot see this goroutine; guard it
			// here or one bad cell kills the replica.
			defer s.recoverCell(&results[i])
			results[i].Buffer, results[i].Cutoff = jobs[i].req.Buffer, jobs[i].req.Cutoff
			status, disposition, body := s.solveOne(ctx, jobs[i].req, jobs[i].job)
			results[i] = SweepCellResult{
				Buffer: jobs[i].req.Buffer,
				Cutoff: jobs[i].req.Cutoff,
				Status: status,
				Source: disposition,
				Result: json.RawMessage(body),
			}
		}(i)
	}
	wg.Wait()

	status := http.StatusOK
	for _, res := range results {
		if res.Status != http.StatusOK {
			status = http.StatusMultiStatus
			if res.Status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", s.retryAfterSeconds())
			}
		}
	}
	body, err := json.Marshal(SweepResponse{Cells: results})
	if err != nil {
		finish(http.StatusInternalServerError, "")
		s.fail(w, http.StatusInternalServerError, "encode", fmt.Errorf("encoding sweep response: %w", err))
		return
	}
	finish(status, "")
	writeJSON(w, status, "", body)
}

// retryAfterSeconds renders the configured 429 hint for a Retry-After
// header (whole seconds, rounded up).
func (s *Server) retryAfterSeconds() string {
	return strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second))
}

// solveOne runs one request key through the pipeline — cache, singleflight,
// fleet lease, admission, solve — and returns the status, cache
// disposition, and body. It is context-based (no ResponseWriter) so the
// sweep endpoint can drive many keys through it per request; HTTP-only
// concerns like the Retry-After header live with the callers.
func (s *Server) solveOne(ctx context.Context, req SolveRequest, job solveJob) (int, string, []byte) {
	// Stage 1: cache.
	if s.cache != nil {
		if body, ok := s.cache.get(job.key); ok {
			s.reg.Add(obs.MetricServeCacheHits, 1)
			return http.StatusOK, "hit", body
		}
		s.reg.Add(obs.MetricServeCacheMisses, 1)
	}

	// Stage 2: singleflight. The first request for a key leads; identical
	// concurrent requests wait for its bytes without consuming solve slots.
	s.mu.Lock()
	if f, ok := s.flights[job.key]; ok {
		f.waiters.Add(1)
		s.mu.Unlock()
		s.reg.Add(obs.MetricServeCoalesced, 1)
		select {
		case <-f.done:
			return f.status, "coalesced", f.body
		case <-ctx.Done():
			s.reg.Add(obs.Labeled(obs.MetricServeErrors, "kind", "client_gone"), 1)
			return http.StatusServiceUnavailable, "", errBody("", ctx.Err().Error())
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[job.key] = f
	s.mu.Unlock()

	disposition := "miss"
	// The flight teardown is deferred so a panicking leader (unwinding to
	// the recover middleware) still releases its followers — otherwise the
	// stale flight would absorb every future request for this key forever.
	// No recover here: the panic keeps propagating; followers see a 500.
	defer func() {
		if f.status == 0 {
			f.status = http.StatusInternalServerError
			f.body = errBody("", "internal error")
		}
		s.mu.Lock()
		delete(s.flights, job.key)
		s.mu.Unlock()
		close(f.done)
	}()
	f.status, f.body = s.leaseAndSolve(ctx, req, job, &disposition)
	return f.status, disposition, f.body
}

// leaseAndSolve is the singleflight leader's path. With a fleet lease
// store attached it first claims the key across replicas: if another
// replica already completed it the result is adopted; if another replica
// holds the lease, this one blocks (bounded by ctx) and then adopts. Only
// the lease holder proceeds to admission and the solve; a solve that does
// not converge releases the lease so a peer (or retry) can take the key
// over, while a converged solve's journal append consumes it.
func (s *Server) leaseAndSolve(ctx context.Context, req SolveRequest, job solveJob, disposition *string) (int, []byte) {
	if s.cfg.Leases != nil {
		leaseCtx, finishLease := obs.StartSpan(ctx, "lease.acquire")
		raw, acquired, err := s.cfg.Leases.Acquire(leaseCtx, job.key)
		if obs.Traced(ctx) {
			finishLease(map[string]string{"key": job.key, "acquired": strconv.FormatBool(acquired)})
		}
		if err != nil {
			s.reg.Add(obs.Labeled(obs.MetricServeErrors, "kind", "lease"), 1)
			return http.StatusServiceUnavailable, errBody("", "acquiring fleet lease: "+err.Error())
		}
		if !acquired {
			body := append([]byte(nil), raw...)
			*disposition = "adopted"
			if s.cache != nil {
				// A peer only journals converged results; cache it.
				if evicted := s.cache.add(job.key, body); evicted > 0 {
					s.reg.Add(obs.MetricServeCacheEvicted, float64(evicted))
				}
				s.reg.Set(obs.MetricServeCacheEntries, float64(s.cache.len()))
			}
			return http.StatusOK, body
		}
		// Store consumes the lease when the result journals; every other
		// outcome hands it back so peers need not wait out the TTL.
		defer s.cfg.Leases.Release(job.key)
	}
	return s.admitAndSolve(ctx, req, job)
}

// admit claims a solve slot: fast path a free slot, else a bounded queue
// wait, else an immediate 429 shed. On success it returns a non-nil
// release closure and zero status; on failure release is nil and status/
// body carry the ready-to-send error. The provision handler holds one
// admission for its whole root-find, so an inverse solve consumes exactly
// one slot no matter how many forward solves it spends.
func (s *Server) admit(ctx context.Context) (release func(), status int, body []byte) {
	select {
	case s.sem <- struct{}{}:
	default:
		// All slots busy: wait in the bounded queue, or shed fast.
		select {
		case s.queue <- struct{}{}:
		default:
			s.reg.Add(obs.MetricServeShed, 1)
			return nil, http.StatusTooManyRequests, errBody("", "overloaded: solve queue is full")
		}
		s.reg.Add(obs.MetricServeQueued, 1)
		s.reg.Set(obs.MetricServeQueueDepth, float64(len(s.queue)))
		select {
		case s.sem <- struct{}{}:
			<-s.queue
			s.reg.Set(obs.MetricServeQueueDepth, float64(len(s.queue)))
		case <-ctx.Done():
			<-s.queue
			s.reg.Set(obs.MetricServeQueueDepth, float64(len(s.queue)))
			s.reg.Add(obs.Labeled(obs.MetricServeErrors, "kind", "client_gone"), 1)
			return nil, http.StatusServiceUnavailable, errBody("", "canceled while queued: "+ctx.Err().Error())
		}
	}
	s.reg.Add(obs.MetricServeAdmitted, 1)
	s.reg.Set(obs.MetricServeInflight, float64(len(s.sem)))
	return func() {
		<-s.sem
		s.reg.Set(obs.MetricServeInflight, float64(len(s.sem)))
	}, 0, nil
}

// admitAndSolve runs stages 3 and 4 for a singleflight leader: bounded
// admission, then the budgeted solve. It returns the status and body that
// both the leader and its coalesced followers receive — including shed
// (429) and canceled-while-queued outcomes, which followers share.
func (s *Server) admitAndSolve(ctx context.Context, req SolveRequest, job solveJob) (int, []byte) {
	// Stage 3: admission.
	release, status, body := s.admit(ctx)
	if release == nil {
		return status, body
	}
	defer release()

	if s.beforeSolve != nil {
		s.beforeSolve(job.key)
	}

	// Stage 4: the budgeted solve. The request budget (clamped to the
	// server cap) becomes the solver's MaxDuration; the context cancels
	// the solve when the client goes away.
	cfg := solverConfig(&req, s.cfg.Solver)
	cfg.Recorder = s.reg
	// Hash-invisible and bit-invisible: cache keys and response bodies are
	// unchanged by the shared arena (nil when batching is off).
	cfg.Arena = s.arena
	budget := time.Duration(req.Solver.Timeout)
	if s.cfg.RequestTimeout > 0 && (budget <= 0 || budget > s.cfg.RequestTimeout) {
		budget = s.cfg.RequestTimeout
	}
	cfg.MaxDuration = budget

	s.solves.Add(1)
	solveStart := time.Now()
	res, err := solver.SolveModelContext(ctx, job.model, cfg)
	s.reg.Observe(obs.MetricServeSolveSeconds, time.Since(solveStart).Seconds())
	if err != nil {
		var nerr *solver.NumericError
		kind, status := "solve", http.StatusInternalServerError
		if errors.As(err, &nerr) {
			kind = "numeric"
		}
		s.reg.Add(obs.Labeled(obs.MetricServeErrors, "kind", kind), 1)
		return status, errBody("", err.Error())
	}

	body, merr := json.Marshal(SolveResponse{
		Loss:        res.Loss,
		Lower:       res.Lower,
		Upper:       res.Upper,
		RelativeGap: res.RelativeGap(),
		Bins:        res.Bins,
		Iterations:  res.Iterations,
		Converged:   res.Converged,
		Degraded:    string(res.Degraded),
		GridStep:    res.GridStep,
		Key:         job.key,
	})
	if merr != nil {
		s.reg.Add(obs.Labeled(obs.MetricServeErrors, "kind", "encode"), 1)
		return http.StatusInternalServerError, errBody("", "encoding response: "+merr.Error())
	}

	// Only converged, non-degraded results enter the cache: a degraded
	// bracket reflects this request's budget, not the queue.
	if s.cache != nil && res.Converged && res.Degraded == "" {
		if evicted := s.cache.add(job.key, body); evicted > 0 {
			s.reg.Add(obs.MetricServeCacheEvicted, float64(evicted))
		}
		s.reg.Set(obs.MetricServeCacheEntries, float64(s.cache.len()))
		if s.cfg.Journal != nil {
			_, finishAppend := obs.StartSpan(ctx, "journal.append")
			jerr := s.cfg.Journal.Store(job.key, json.RawMessage(body))
			if obs.Traced(ctx) {
				finishAppend(map[string]string{"key": job.key})
			}
			if jerr != nil {
				// The response is still good; durability degraded.
				s.reg.Add(obs.Labeled(obs.MetricServeErrors, "kind", "journal"), 1)
			}
		}
	}
	return http.StatusOK, body
}
