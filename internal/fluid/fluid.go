// Package fluid implements the cutoff-correlated modulated fluid traffic
// model of Grossglauser & Bolot (SIGCOMM '96, §II).
//
// The source emits fluid at a piecewise-constant rate: at each arrival of a
// renewal process with truncated-Pareto interarrival times (dist.
// TruncatedPareto, Eq. 6 of the paper) a new rate is drawn i.i.d. from a
// finite marginal distribution (dist.Marginal). The resulting rate process
// {X_t} has autocovariance φ(t) = σ²·Pr{τ_res ≥ t} (Eq. 3), which matches an
// asymptotically second-order self-similar process with Hurst parameter
// H = (3−α)/2 up to the cutoff lag Tc and is exactly zero beyond it.
package fluid

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lrd/internal/dist"
)

// Source is the paper's traffic model: i.i.d. rates drawn at the epochs of a
// truncated-Pareto renewal process.
type Source struct {
	// Marginal is the fluid rate distribution (Λ, Π).
	Marginal dist.Marginal
	// Interarrival is the epoch-length distribution F_T.
	Interarrival dist.TruncatedPareto
}

// New validates and returns a Source.
func New(marginal dist.Marginal, inter dist.TruncatedPareto) (Source, error) {
	if marginal.Len() == 0 {
		return Source{}, errors.New("fluid: empty marginal")
	}
	if err := inter.Validate(); err != nil {
		return Source{}, err
	}
	return Source{Marginal: marginal, Interarrival: inter}, nil
}

// FromTraceStats builds a Source the way the paper fits its traces (§III):
// the marginal comes from a constant-bin histogram of the trace, the tail
// index is α = 3 − 2H from the estimated Hurst parameter, and θ is set so
// that the untruncated mean interarrival time θ/(α−1) matches the trace's
// mean epoch duration. cutoff is the correlation cutoff lag Tc in seconds
// (math.Inf(1) for the fully self-similar case).
func FromTraceStats(marginal dist.Marginal, hurst, meanEpoch, cutoff float64) (Source, error) {
	if !(hurst > 0.5 && hurst < 1) {
		return Source{}, fmt.Errorf("fluid: Hurst parameter %v outside (0.5, 1)", hurst)
	}
	alpha := dist.AlphaFromHurst(hurst)
	theta, err := dist.CalibrateTheta(alpha, meanEpoch)
	if err != nil {
		return Source{}, err
	}
	return New(marginal, dist.TruncatedPareto{Theta: theta, Alpha: alpha, Cutoff: cutoff})
}

// WithCutoff returns a copy of s with the interarrival cutoff lag replaced,
// leaving θ and α unchanged. This is the knob swept in the paper's first
// experiment set (Figs. 4, 5, 9).
func (s Source) WithCutoff(cutoff float64) Source {
	s.Interarrival.Cutoff = cutoff
	return s
}

// WithMarginal returns a copy of s with the marginal replaced (used for the
// scaling and superposition transforms of Figs. 10–13).
func (s Source) WithMarginal(m dist.Marginal) Source {
	s.Marginal = m
	return s
}

// MeanRate returns λ̄ = Π Λ 1ᵀ (Eq. 2).
func (s Source) MeanRate() float64 { return s.Marginal.Mean() }

// RateVariance returns σ² = Π Λ² 1ᵀ − λ̄² (Eq. 4).
func (s Source) RateVariance() float64 { return s.Marginal.Variance() }

// Hurst returns the Hurst parameter H = (3−α)/2 of the asymptotic
// self-similar correlation structure obtained as Tc → ∞.
func (s Source) Hurst() float64 { return dist.HurstFromAlpha(s.Interarrival.Alpha) }

// Autocovariance returns φ(t) = σ²·Pr{τ_res ≥ t} (Eqs. 3, 8): the covariance
// of the fluid rate at lag t. It is exactly zero for t ≥ Tc.
func (s Source) Autocovariance(t float64) float64 {
	return s.RateVariance() * s.Interarrival.ResidualCCDF(t)
}

// Autocorrelation returns φ(t)/σ², i.e. the normalized correlation
// Pr{τ_res ≥ t} of Eq. (7).
func (s Source) Autocorrelation(t float64) float64 {
	return s.Interarrival.ResidualCCDF(t)
}

// ServiceRateForUtilization returns the service rate c that loads a queue
// fed by s to the given utilization ρ = λ̄/c.
func (s Source) ServiceRateForUtilization(rho float64) (float64, error) {
	if !(rho > 0 && rho < 1) {
		return 0, fmt.Errorf("fluid: utilization %v outside (0, 1)", rho)
	}
	return s.MeanRate() / rho, nil
}

// Epoch is one piecewise-constant segment of a sample path.
type Epoch struct {
	Duration float64 // segment length T_n (seconds)
	Rate     float64 // fluid rate λ(n) during the segment
}

// GenerateEpochs samples n consecutive renewal epochs of the source.
func (s Source) GenerateEpochs(n int, rng *rand.Rand) []Epoch {
	out := make([]Epoch, n)
	for i := range out {
		out[i] = Epoch{
			Duration: s.Interarrival.Sample(rng),
			Rate:     s.Marginal.Sample(rng),
		}
	}
	return out
}

// GenerateBinned samples a stationary path of total duration horizon
// seconds and integrates it into bins of width binWidth, returning the
// average rate in each bin (the format of the paper's traces: "each trace
// element is a rate averaged over a 10 ms interval"). The first epoch's
// remaining length is drawn from the residual-life law (Eq. 7), so the
// path starts in the stationary regime rather than at a renewal instant.
func (s Source) GenerateBinned(horizon, binWidth float64, rng *rand.Rand) ([]float64, error) {
	if !(horizon > 0) || !(binWidth > 0) {
		return nil, errors.New("fluid: GenerateBinned requires positive horizon and bin width")
	}
	nbins := int(math.Ceil(horizon / binWidth))
	work := make([]float64, nbins)
	t := 0.0
	first := true
	for t < horizon {
		var d float64
		if first {
			d = s.Interarrival.SampleResidual(rng)
			first = false
		} else {
			d = s.Interarrival.Sample(rng)
		}
		if d <= 0 {
			// Zero-length epochs carry no work; resample defensively.
			continue
		}
		r := s.Marginal.Sample(rng)
		end := math.Min(t+d, horizon)
		// Spread r·(segment length) over the covered bins.
		for seg := t; seg < end; {
			bin := int(seg / binWidth)
			if bin >= nbins {
				break
			}
			binEnd := math.Min(float64(bin+1)*binWidth, end)
			if binEnd <= seg {
				// Floating-point stall: the computed boundary did not
				// advance (seg sits exactly on a bin edge whose index
				// rounded down). Force strict progress; the skipped work
				// is below one ulp.
				binEnd = math.Nextafter(seg, math.Inf(1))
			}
			work[bin] += r * (binEnd - seg)
			seg = binEnd
		}
		t += d
	}
	for i := range work {
		work[i] /= binWidth
	}
	return work, nil
}

// String summarizes the source parameters.
func (s Source) String() string {
	return fmt.Sprintf("Source{H: %.3f (α=%.3f), θ: %.4g s, Tc: %.4g s, %v}",
		s.Hurst(), s.Interarrival.Alpha, s.Interarrival.Theta, s.Interarrival.Cutoff, s.Marginal)
}
