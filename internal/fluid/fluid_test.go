package fluid

import (
	"math"
	"math/rand"
	"testing"

	"lrd/internal/dist"
	"lrd/internal/numerics"
)

func testSource(t *testing.T) Source {
	t.Helper()
	m := dist.MustMarginal([]float64{2, 8, 16}, []float64{0.3, 0.5, 0.2})
	s, err := New(m, dist.TruncatedPareto{Theta: 0.016, Alpha: 1.2, Cutoff: 10})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	m := dist.MustMarginal([]float64{1}, []float64{1})
	if _, err := New(m, dist.TruncatedPareto{Theta: 0, Alpha: 1.2, Cutoff: 1}); err == nil {
		t.Fatal("want error for invalid interarrival")
	}
	if _, err := New(dist.Marginal{}, dist.TruncatedPareto{Theta: 1, Alpha: 1.2, Cutoff: 1}); err == nil {
		t.Fatal("want error for empty marginal")
	}
}

func TestFromTraceStatsCalibration(t *testing.T) {
	m := dist.MustMarginal([]float64{5, 15}, []float64{0.5, 0.5})
	s, err := FromTraceStats(m, 0.9, 0.08, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(s.Interarrival.Alpha, 1.2, 1e-12) {
		t.Fatalf("alpha = %v", s.Interarrival.Alpha)
	}
	if !numerics.AlmostEqual(s.Interarrival.Theta, 0.016, 1e-12) {
		t.Fatalf("theta = %v", s.Interarrival.Theta)
	}
	// The untruncated mean epoch must match the input.
	if !numerics.AlmostEqual(s.Interarrival.Mean(), 0.08, 1e-12) {
		t.Fatalf("mean epoch = %v", s.Interarrival.Mean())
	}
	if !numerics.AlmostEqual(s.Hurst(), 0.9, 1e-12) {
		t.Fatalf("Hurst = %v", s.Hurst())
	}
}

func TestFromTraceStatsRejectsBadHurst(t *testing.T) {
	m := dist.MustMarginal([]float64{1}, []float64{1})
	for _, h := range []float64{0.5, 1.0, 0.2, 1.5} {
		if _, err := FromTraceStats(m, h, 0.08, 1); err == nil {
			t.Errorf("H=%v accepted", h)
		}
	}
}

func TestWithCutoffAndMarginal(t *testing.T) {
	s := testSource(t)
	s2 := s.WithCutoff(3)
	if s2.Interarrival.Cutoff != 3 || s.Interarrival.Cutoff != 10 {
		t.Fatal("WithCutoff should copy, not mutate")
	}
	m := dist.MustMarginal([]float64{4}, []float64{1})
	s3 := s.WithMarginal(m)
	if s3.MeanRate() != 4 || s.MeanRate() == 4 {
		t.Fatal("WithMarginal should copy, not mutate")
	}
}

func TestMoments(t *testing.T) {
	s := testSource(t)
	wantMean := 0.3*2 + 0.5*8 + 0.2*16
	if !numerics.AlmostEqual(s.MeanRate(), wantMean, 1e-12) {
		t.Fatalf("mean rate = %v, want %v", s.MeanRate(), wantMean)
	}
	wantVar := 0.3*4 + 0.5*64 + 0.2*256 - wantMean*wantMean
	if !numerics.AlmostEqual(s.RateVariance(), wantVar, 1e-12) {
		t.Fatalf("rate variance = %v, want %v", s.RateVariance(), wantVar)
	}
}

func TestAutocovarianceShape(t *testing.T) {
	s := testSource(t)
	// φ(0) = σ².
	if !numerics.AlmostEqual(s.Autocovariance(0), s.RateVariance(), 1e-12) {
		t.Fatalf("φ(0) = %v, want σ² = %v", s.Autocovariance(0), s.RateVariance())
	}
	// φ is non-increasing and hits zero at the cutoff.
	prev := s.Autocovariance(0)
	for _, lag := range []float64{0.01, 0.1, 1, 5, 9.99} {
		cur := s.Autocovariance(lag)
		if cur > prev+1e-15 {
			t.Fatalf("autocovariance increased at lag %v", lag)
		}
		prev = cur
	}
	if got := s.Autocovariance(10); got != 0 {
		t.Fatalf("φ(Tc) = %v, want 0 (no correlation beyond the cutoff)", got)
	}
	if got := s.Autocovariance(100); got != 0 {
		t.Fatalf("φ(>Tc) = %v, want 0", got)
	}
}

func TestAutocorrelationNormalized(t *testing.T) {
	s := testSource(t)
	if got := s.Autocorrelation(0); got != 1 {
		t.Fatalf("ρ(0) = %v, want 1", got)
	}
	for _, lag := range []float64{0.5, 2} {
		want := s.Autocovariance(lag) / s.RateVariance()
		if !numerics.AlmostEqual(s.Autocorrelation(lag), want, 1e-12) {
			t.Fatalf("ρ(%v) = %v, want %v", lag, s.Autocorrelation(lag), want)
		}
	}
}

func TestAsymptoticSelfSimilarDecay(t *testing.T) {
	// With Tc = ∞, log φ(t) vs log t should have slope ≈ −(2−2H) at large t.
	m := dist.MustMarginal([]float64{0, 1}, []float64{0.5, 0.5})
	s, err := FromTraceStats(m, 0.9, 0.05, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	lags := numerics.Logspace(10, 10000, 20)
	logt := make([]float64, len(lags))
	logphi := make([]float64, len(lags))
	for i, lag := range lags {
		logt[i] = math.Log(lag)
		logphi[i] = math.Log(s.Autocovariance(lag))
	}
	_, slope, err := numerics.LinearFit(logt, logphi)
	if err != nil {
		t.Fatal(err)
	}
	want := -(2 - 2*0.9) // = −0.2 = −(α−1)
	if !numerics.AlmostEqual(slope, want, 0.02) {
		t.Fatalf("decay slope = %v, want ≈ %v", slope, want)
	}
}

func TestServiceRateForUtilization(t *testing.T) {
	s := testSource(t)
	c, err := s.ServiceRateForUtilization(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(s.MeanRate()/c, 0.8, 1e-12) {
		t.Fatalf("utilization = %v", s.MeanRate()/c)
	}
	for _, rho := range []float64{0, 1, -0.5, 2} {
		if _, err := s.ServiceRateForUtilization(rho); err == nil {
			t.Errorf("rho=%v accepted", rho)
		}
	}
}

func TestGenerateEpochs(t *testing.T) {
	s := testSource(t)
	rng := rand.New(rand.NewSource(4))
	eps := s.GenerateEpochs(50000, rng)
	if len(eps) != 50000 {
		t.Fatalf("len = %d", len(eps))
	}
	var durAcc, rateAcc numerics.Accumulator
	for _, e := range eps {
		if e.Duration < 0 || e.Duration > s.Interarrival.Cutoff {
			t.Fatalf("epoch duration %v out of range", e.Duration)
		}
		durAcc.Add(e.Duration)
		rateAcc.Add(e.Rate)
	}
	meanDur := durAcc.Sum() / float64(len(eps))
	if !numerics.AlmostEqual(meanDur, s.Interarrival.Mean(), 0.05) {
		t.Fatalf("mean duration %v, want ≈ %v", meanDur, s.Interarrival.Mean())
	}
	meanRate := rateAcc.Sum() / float64(len(eps))
	if !numerics.AlmostEqual(meanRate, s.MeanRate(), 0.05) {
		t.Fatalf("mean rate %v, want ≈ %v", meanRate, s.MeanRate())
	}
}

func TestGenerateBinnedConservesWork(t *testing.T) {
	s := testSource(t)
	rng := rand.New(rand.NewSource(11))
	horizon, bin := 200.0, 0.01
	rates, err := s.GenerateBinned(horizon, bin, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != int(horizon/bin) {
		t.Fatalf("bins = %d", len(rates))
	}
	// Long-run average of the binned path ≈ λ̄ (each bin is fully covered by
	// epochs, so total work = ∫ X_t dt over the horizon).
	mean, err := numerics.Mean(rates)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(mean, s.MeanRate(), 0.1) {
		t.Fatalf("binned mean %v, want ≈ %v", mean, s.MeanRate())
	}
	// Every bin's rate must lie within the marginal's support.
	for i, r := range rates {
		if r < s.Marginal.Min()-1e-9 || r > s.Marginal.Max()+1e-9 {
			t.Fatalf("bin %d rate %v outside [%v, %v]", i, r, s.Marginal.Min(), s.Marginal.Max())
		}
	}
}

func TestGenerateBinnedValidation(t *testing.T) {
	s := testSource(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := s.GenerateBinned(0, 0.01, rng); err == nil {
		t.Fatal("want error for zero horizon")
	}
	if _, err := s.GenerateBinned(1, 0, rng); err == nil {
		t.Fatal("want error for zero bin width")
	}
}

func TestStringDescribes(t *testing.T) {
	if testSource(t).String() == "" {
		t.Fatal("String should be non-empty")
	}
}
