// Package ams implements the classical Anick–Mitra–Sondhi (1982) fluid
// queue with a two-state Markov (exponential) on/off source and an
// infinite buffer, in closed form. It is the canonical short-range-
// dependent baseline against which the paper contrasts long-range-
// dependent behaviour: the AMS queue's content decays exponentially,
//
//	Pr{Q > x} = ρ·exp(−η·x),  η = β/(r_on−c) − α/c
//
// whereas LRD input produces Weibullian or hyperbolic tails (§I of the
// paper). Per the paper's footnote 2, the infinite-buffer overflow
// probability upper-bounds the loss rate of the corresponding finite
// buffer, so the closed form doubles as a quick conservative estimate for
// exponential on/off traffic.
package ams

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// OnOffQueue is a fluid queue fed by one exponential on/off source.
type OnOffQueue struct {
	OnRate      float64 // fluid rate while on (work units/s), > ServiceRate
	OffToOn     float64 // α: transition rate from off to on (1/s)
	OnToOff     float64 // β: transition rate from on to off (1/s)
	ServiceRate float64 // c, with 0 < c < OnRate
}

// Validate checks the parameters and stability (utilization < 1).
func (q OnOffQueue) Validate() error {
	if !(q.OnRate > 0) || !(q.OffToOn > 0) || !(q.OnToOff > 0) || !(q.ServiceRate > 0) {
		return errors.New("ams: all rates must be positive")
	}
	if q.ServiceRate >= q.OnRate {
		return fmt.Errorf("ams: service rate %v >= on rate %v: the queue never builds", q.ServiceRate, q.OnRate)
	}
	if q.Utilization() >= 1 {
		return fmt.Errorf("ams: utilization %v >= 1: unstable", q.Utilization())
	}
	return nil
}

// POn returns the stationary probability of the on state, α/(α+β).
func (q OnOffQueue) POn() float64 { return q.OffToOn / (q.OffToOn + q.OnToOff) }

// MeanRate returns the average arrival rate POn·OnRate.
func (q OnOffQueue) MeanRate() float64 { return q.POn() * q.OnRate }

// Utilization returns ρ = MeanRate/ServiceRate.
func (q OnOffQueue) Utilization() float64 { return q.MeanRate() / q.ServiceRate }

// DecayRate returns η, the exponential decay rate of the queue tail.
func (q OnOffQueue) DecayRate() float64 {
	return q.OnToOff/(q.OnRate-q.ServiceRate) - q.OffToOn/q.ServiceRate
}

// OverflowProbability returns Pr{Q > x} = ρ·exp(−η·x) for x >= 0.
func (q OnOffQueue) OverflowProbability(x float64) float64 {
	if x < 0 {
		return 1
	}
	return q.Utilization() * math.Exp(-q.DecayRate()*x)
}

// LossUpperBound returns the infinite-buffer overflow probability at the
// buffer size, an upper bound on the finite-buffer loss rate (the paper's
// footnote 2).
func (q OnOffQueue) LossUpperBound(buffer float64) float64 {
	return math.Min(q.OverflowProbability(buffer), 1)
}

// BufferForTarget returns the buffer size needed to push the overflow
// probability down to target ∈ (0, ρ): x = ln(ρ/target)/η. For SRD traffic
// this grows only logarithmically in 1/target — the behaviour that fails
// so dramatically under LRD input (the paper's "buffer ineffectiveness").
func (q OnOffQueue) BufferForTarget(target float64) (float64, error) {
	rho := q.Utilization()
	if !(target > 0 && target < rho) {
		return 0, fmt.Errorf("ams: target %v outside (0, ρ=%v)", target, rho)
	}
	return math.Log(rho/target) / q.DecayRate(), nil
}

// SimulateOverflow estimates Pr{Q > x} by simulating the alternating
// on/off process for n cycles (an independent check of the closed form;
// exported so examples and benches can reproduce the comparison).
// It returns the fraction of time the queue content exceeds x.
func (q OnOffQueue) SimulateOverflow(x float64, cycles int, rng *rand.Rand) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if cycles <= 0 {
		return 0, errors.New("ams: need a positive cycle count")
	}
	var content, totalTime, timeAbove float64
	// timeAboveDuring integrates the time the linear trajectory from q0
	// with slope s over duration d spends above level x.
	timeAboveDuring := func(q0, s, d float64) float64 {
		q1 := q0 + s*d
		switch {
		case q0 >= x && q1 >= x:
			return d
		case q0 < x && q1 < x:
			return 0
		case s > 0: // upward crossing at t* = (x−q0)/s
			return d - (x-q0)/s
		default: // downward crossing at t* = (x−q0)/s (s < 0, q0 > x)
			return (x - q0) / s
		}
	}
	for i := 0; i < cycles; i++ {
		// Off period: drain at c (content floored at 0).
		dOff := rng.ExpFloat64() / q.OffToOn
		drainTime := math.Min(dOff, content/q.ServiceRate)
		timeAbove += timeAboveDuring(content, -q.ServiceRate, drainTime)
		content = math.Max(0, content-q.ServiceRate*dOff)
		totalTime += dOff
		// On period: fill at OnRate−c.
		dOn := rng.ExpFloat64() / q.OnToOff
		timeAbove += timeAboveDuring(content, q.OnRate-q.ServiceRate, dOn)
		content += (q.OnRate - q.ServiceRate) * dOn
		totalTime += dOn
	}
	return timeAbove / totalTime, nil
}
