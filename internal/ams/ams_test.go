package ams

import (
	"math"
	"math/rand"
	"testing"

	"lrd/internal/numerics"
)

func testQueue() OnOffQueue {
	// P(on) = 1/3, mean rate 1, utilization 2/3 at c = 1.5.
	return OnOffQueue{OnRate: 3, OffToOn: 1, OnToOff: 2, ServiceRate: 1.5}
}

func TestValidate(t *testing.T) {
	if err := testQueue().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []OnOffQueue{
		{OnRate: 0, OffToOn: 1, OnToOff: 1, ServiceRate: 1},
		{OnRate: 2, OffToOn: 0, OnToOff: 1, ServiceRate: 1},
		{OnRate: 2, OffToOn: 1, OnToOff: 0, ServiceRate: 1},
		{OnRate: 2, OffToOn: 1, OnToOff: 1, ServiceRate: 0},
		{OnRate: 2, OffToOn: 1, OnToOff: 1, ServiceRate: 2.5},  // c >= on rate
		{OnRate: 2, OffToOn: 10, OnToOff: 1, ServiceRate: 1.5}, // unstable
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("accepted invalid queue %+v", q)
		}
	}
}

func TestStationaryQuantities(t *testing.T) {
	q := testQueue()
	if !numerics.AlmostEqual(q.POn(), 1.0/3.0, 1e-12) {
		t.Fatalf("POn = %v", q.POn())
	}
	if !numerics.AlmostEqual(q.MeanRate(), 1, 1e-12) {
		t.Fatalf("mean rate = %v", q.MeanRate())
	}
	if !numerics.AlmostEqual(q.Utilization(), 2.0/3.0, 1e-12) {
		t.Fatalf("utilization = %v", q.Utilization())
	}
}

func TestDecayRatePositiveWhenStable(t *testing.T) {
	q := testQueue()
	// η = β/(r−c) − α/c = 2/1.5 − 1/1.5 = 2/3.
	if !numerics.AlmostEqual(q.DecayRate(), 2.0/3.0, 1e-12) {
		t.Fatalf("decay rate = %v", q.DecayRate())
	}
	if q.DecayRate() <= 0 {
		t.Fatal("stable queue must have positive decay rate")
	}
}

func TestOverflowProbabilityForm(t *testing.T) {
	q := testQueue()
	// At x = 0 the overflow probability equals the utilization (the
	// probability the queue is busy building, in the AMS solution).
	if !numerics.AlmostEqual(q.OverflowProbability(0), q.Utilization(), 1e-12) {
		t.Fatalf("G(0) = %v, want ρ = %v", q.OverflowProbability(0), q.Utilization())
	}
	if q.OverflowProbability(-1) != 1 {
		t.Fatal("G(x<0) must be 1")
	}
	// Exponential decay: log-linear with slope −η.
	x1, x2 := 1.0, 3.0
	slope := (math.Log(q.OverflowProbability(x2)) - math.Log(q.OverflowProbability(x1))) / (x2 - x1)
	if !numerics.AlmostEqual(slope, -q.DecayRate(), 1e-12) {
		t.Fatalf("log-slope = %v, want %v", slope, -q.DecayRate())
	}
}

func TestBufferForTarget(t *testing.T) {
	q := testQueue()
	b, err := q.BufferForTarget(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(q.OverflowProbability(b), 1e-6, 1e-9) {
		t.Fatalf("G(BufferForTarget) = %v", q.OverflowProbability(b))
	}
	// Logarithmic growth: 100× lower target costs a fixed increment.
	b2, err := q.BufferForTarget(1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(b2-b, math.Log(100)/q.DecayRate(), 1e-9) {
		t.Fatalf("buffer increment %v, want %v", b2-b, math.Log(100)/q.DecayRate())
	}
	if _, err := q.BufferForTarget(0); err == nil {
		t.Fatal("want error for target 0")
	}
	if _, err := q.BufferForTarget(0.9); err == nil {
		t.Fatal("want error for target >= ρ")
	}
}

func TestClosedFormMatchesSimulation(t *testing.T) {
	q := testQueue()
	rng := rand.New(rand.NewSource(17))
	for _, x := range []float64{0.5, 1.5, 3} {
		got, err := q.SimulateOverflow(x, 400000, rng)
		if err != nil {
			t.Fatal(err)
		}
		want := q.OverflowProbability(x)
		if math.Abs(got-want)/want > 0.1 {
			t.Fatalf("x=%v: simulated %v vs closed form %v", x, got, want)
		}
	}
}

func TestSimulateOverflowValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := (OnOffQueue{}).SimulateOverflow(1, 10, rng); err == nil {
		t.Fatal("want error on invalid queue")
	}
	if _, err := testQueue().SimulateOverflow(1, 0, rng); err == nil {
		t.Fatal("want error on zero cycles")
	}
}

func TestLossUpperBoundCapped(t *testing.T) {
	q := testQueue()
	if got := q.LossUpperBound(0); got > 1 {
		t.Fatalf("bound %v exceeds 1", got)
	}
	if q.LossUpperBound(10) >= q.LossUpperBound(1) {
		t.Fatal("bound must decrease with buffer size")
	}
}
