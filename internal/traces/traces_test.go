package traces

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"lrd/internal/lrdest"
	"lrd/internal/numerics"
)

func TestLognormalQuantileMoments(t *testing.T) {
	q := LognormalQuantile(9.5222, 0.30)
	// Integrate the quantile function over u to recover the mean.
	mean := numerics.Trapezoid(q, 1e-9, 1-1e-9, 2_000_000)
	if !numerics.AlmostEqual(mean, 9.5222, 0.01) {
		t.Fatalf("mean from quantile = %v, want 9.5222", mean)
	}
	// Median of a lognormal is exp(mu) = mean/√(1+cov²).
	wantMedian := 9.5222 / math.Sqrt(1+0.09)
	if !numerics.AlmostEqual(q(0.5), wantMedian, 1e-6) {
		t.Fatalf("median = %v, want %v", q(0.5), wantMedian)
	}
	// Monotone increasing.
	prev := 0.0
	for _, u := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		v := q(u)
		if v <= prev {
			t.Fatalf("quantile not increasing at %v", u)
		}
		prev = v
	}
}

func TestSynthesizeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Synthesize(Config{Bins: 10, BinWidth: 1}, rng); err == nil {
		t.Fatal("want error with nil quantile")
	}
	q := LognormalQuantile(1, 0.5)
	if _, err := Synthesize(Config{Quantile: q, Bins: 0, BinWidth: 1, Hurst: 0.8}, rng); err == nil {
		t.Fatal("want error with zero bins")
	}
	if _, err := Synthesize(Config{Quantile: q, Bins: 10, BinWidth: 0, Hurst: 0.8}, rng); err == nil {
		t.Fatal("want error with zero bin width")
	}
	if _, err := Synthesize(Config{Quantile: q, Bins: 10, BinWidth: 1, Hurst: 1.5}, rng); err == nil {
		t.Fatal("want error with bad Hurst")
	}
}

func TestSynthesizeMatchesTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := Config{
		Name:     "test",
		Hurst:    0.85,
		Bins:     1 << 15,
		BinWidth: 0.01,
		Quantile: LognormalQuantile(5, 0.4),
	}
	tr, err := Synthesize(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rates) != cfg.Bins || tr.BinWidth != cfg.BinWidth || tr.Name != "test" {
		t.Fatalf("metadata wrong: %d %v %q", len(tr.Rates), tr.BinWidth, tr.Name)
	}
	// Mean matches the marginal's mean.
	if !numerics.AlmostEqual(tr.MeanRate(), 5, 0.15) {
		t.Fatalf("mean rate %v, want ≈ 5", tr.MeanRate())
	}
	// All rates positive (lognormal marginal).
	for _, r := range tr.Rates {
		if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			t.Fatalf("bad rate %v", r)
		}
	}
	// The copula transform preserves the Hurst parameter.
	h, err := lrdest.AbryVeitch(tr.Rates, lrdest.AbryVeitchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.85) > 0.08 {
		t.Fatalf("synthesized trace has H = %v, want ≈ 0.85", h)
	}
}

func TestMTVStandInProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, err := MTV(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rates) != 107892 {
		t.Fatalf("MTV bins = %d, want 107892 (the paper's frame count)", len(tr.Rates))
	}
	if !numerics.AlmostEqual(tr.MeanRate(), 9.5222, 0.05) {
		t.Fatalf("MTV mean = %v, want ≈ 9.5222 Mb/s", tr.MeanRate())
	}
	// One hour of NTSC video.
	if math.Abs(tr.Duration()-3600) > 100 {
		t.Fatalf("MTV duration = %v s, want ≈ 3600", tr.Duration())
	}
	h, err := lrdest.LocalWhittle(tr.Rates, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.83) > 0.08 {
		t.Fatalf("MTV stand-in H = %v, want ≈ 0.83", h)
	}
}

func TestBellcoreStandInProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr, err := Bellcore(rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.BinWidth != 0.01 {
		t.Fatalf("Bellcore bin width = %v, want 10 ms", tr.BinWidth)
	}
	h, err := lrdest.LocalWhittle(tr.Rates, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.9) > 0.08 {
		t.Fatalf("Bellcore stand-in H = %v, want ≈ 0.9", h)
	}
	// Strongly right-skewed marginal: mean well above the median.
	med := append([]float64(nil), tr.Rates...)
	mean := tr.MeanRate()
	count := 0
	for _, r := range med {
		if r < mean {
			count++
		}
	}
	if frac := float64(count) / float64(len(med)); frac < 0.6 {
		t.Fatalf("Bellcore marginal not right-skewed: only %v below the mean", frac)
	}
}

func TestMarginalAndMeanEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, err := Synthesize(Config{
		Name: "m", Hurst: 0.8, Bins: 1 << 14, BinWidth: 0.01,
		Quantile: LognormalQuantile(2, 0.5),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tr.Marginal(50)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() == 0 || m.Len() > 50 {
		t.Fatalf("marginal atoms = %d", m.Len())
	}
	if !numerics.AlmostEqual(m.Mean(), tr.MeanRate(), 0.01) {
		t.Fatalf("marginal mean %v vs trace mean %v", m.Mean(), tr.MeanRate())
	}
	ep, err := tr.MeanEpoch(50)
	if err != nil {
		t.Fatal(err)
	}
	// Epochs are at least one bin long and far shorter than the trace.
	if ep < tr.BinWidth || ep > tr.Duration()/10 {
		t.Fatalf("mean epoch = %v s, implausible", ep)
	}
}

func TestMeanEpochEdgeCases(t *testing.T) {
	if _, err := (Trace{}).MeanEpoch(50); err == nil {
		t.Fatal("want error on empty trace")
	}
	tr := Trace{Rates: []float64{1, 1, 1}, BinWidth: 0.5}
	if _, err := tr.MeanEpoch(0); err == nil {
		t.Fatal("want error on zero bins")
	}
	ep, err := tr.MeanEpoch(50)
	if err != nil {
		t.Fatal(err)
	}
	if ep != 1.5 {
		t.Fatalf("constant trace epoch = %v, want full duration 1.5", ep)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Trace{Name: "rt", BinWidth: 0.02, Rates: []float64{1.5, 2.25, 0.75, 9.5}}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || got.BinWidth != 0.02 {
		t.Fatalf("metadata lost: %+v", got)
	}
	if len(got.Rates) != len(tr.Rates) {
		t.Fatalf("rates = %d, want %d", len(got.Rates), len(tr.Rates))
	}
	for i := range tr.Rates {
		if !numerics.AlmostEqual(got.Rates[i], tr.Rates[i], 1e-6) {
			t.Fatalf("rate %d: %v vs %v", i, got.Rates[i], tr.Rates[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := ReadCSV(strings.NewReader("# name=x binwidth=0.01\nnocomma\n")); err == nil {
		t.Fatal("want error on malformed row")
	}
	if _, err := ReadCSV(strings.NewReader("# name=x binwidth=bad\n0,1\n")); err == nil {
		t.Fatal("want error on bad binwidth")
	}
	if _, err := ReadCSV(strings.NewReader("0,notanumber\n")); err == nil {
		t.Fatal("want error on bad rate")
	}
	if _, err := ReadCSV(strings.NewReader("0,1\n")); err == nil {
		t.Fatal("want error on missing binwidth header")
	}
}

func TestSynthesizeReproducible(t *testing.T) {
	cfg := Config{Name: "r", Hurst: 0.8, Bins: 512, BinWidth: 0.01, Quantile: LognormalQuantile(1, 0.5)}
	a, err := Synthesize(cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatal("same seed must reproduce the same trace")
		}
	}
}

func TestMarginalQuantileResynthesis(t *testing.T) {
	// Fit a marginal to one trace, re-synthesize with it, and check the
	// new trace's marginal matches (mean and spread).
	rng := rand.New(rand.NewSource(77))
	orig, err := Synthesize(Config{
		Name: "o", Hurst: 0.8, Bins: 1 << 13, BinWidth: 0.01,
		Quantile: LognormalQuantile(4, 0.4),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := orig.Marginal(50)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Synthesize(Config{
		Name: "re", Hurst: 0.8, Bins: 1 << 13, BinWidth: 0.01,
		Quantile: MarginalQuantile(m),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := re.Marginal(50)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(m2.Mean(), m.Mean(), 0.1) {
		t.Fatalf("resynthesized mean %v vs %v", m2.Mean(), m.Mean())
	}
	sd1 := math.Sqrt(m.Variance())
	sd2 := math.Sqrt(m2.Variance())
	if math.Abs(sd2-sd1)/sd1 > 0.25 {
		t.Fatalf("resynthesized sd %v vs %v", sd2, sd1)
	}
}
