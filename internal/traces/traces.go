// Package traces synthesizes and analyzes the binned rate traces used in
// the paper's trace-driven experiments.
//
// The paper uses two proprietary recordings: a one-hour JPEG encoding of
// the MTV NTSC channel (107,892 frames, mean 9.5222 Mb/s, H ≈ 0.83, mean
// epoch ≈ 80 ms) and the August 1989 Bellcore "purple cable" Ethernet trace
// (10 ms bins, H ≈ 0.9, mean epoch ≈ 15 ms). Neither is distributable, so
// this package builds statistical stand-ins: exact fractional Gaussian
// noise with the target Hurst parameter is transformed through a Gaussian
// copula to the target marginal distribution. The fluid model consumes only
// the trace's histogram marginal, mean epoch length, and Hurst parameter —
// all of which the synthesis controls — and the shuffle experiments need a
// sample path with the right correlation decay, which the FGN core
// provides. See DESIGN.md §4 for the substitution rationale.
package traces

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"lrd/internal/dist"
	"lrd/internal/fgn"
	"lrd/internal/numerics"
)

// Trace is a binned rate series: Rates[i] is the average arrival rate over
// the i-th interval of width BinWidth seconds (the format of the paper's
// traces).
type Trace struct {
	Name     string
	Rates    []float64
	BinWidth float64
}

// Duration returns the covered time span in seconds.
func (t Trace) Duration() float64 { return float64(len(t.Rates)) * t.BinWidth }

// MeanRate returns the time-average rate.
func (t Trace) MeanRate() float64 {
	m, err := numerics.Mean(t.Rates)
	if err != nil {
		return 0
	}
	return m
}

// Marginal returns the constant-bin-size histogram marginal of the trace
// (the paper uses 50 bins for all experiments).
func (t Trace) Marginal(bins int) (dist.Marginal, error) {
	return dist.FromSamples(t.Rates, bins)
}

// MeanEpoch estimates the mean epoch duration the way the paper calibrates
// θ: the average number of consecutive samples falling in the same
// histogram bin, multiplied by the bin width. bins is the histogram
// resolution (the paper's 50).
func (t Trace) MeanEpoch(bins int) (float64, error) {
	if len(t.Rates) == 0 {
		return 0, errors.New("traces: empty trace")
	}
	if bins < 1 {
		return 0, errors.New("traces: need at least one histogram bin")
	}
	lo, hi := t.Rates[0], t.Rates[0]
	for _, r := range t.Rates {
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	if lo == hi {
		return t.Duration(), nil // one epoch spanning the whole trace
	}
	w := (hi - lo) / float64(bins)
	binOf := func(x float64) int {
		i := int((x - lo) / w)
		if i >= bins {
			i = bins - 1
		}
		return i
	}
	runs := 1
	prev := binOf(t.Rates[0])
	for _, r := range t.Rates[1:] {
		b := binOf(r)
		if b != prev {
			runs++
			prev = b
		}
	}
	return float64(len(t.Rates)) / float64(runs) * t.BinWidth, nil
}

// Config describes a synthetic trace: an FGN correlation core with Hurst
// parameter H, pushed through the marginal transform Quantile (the inverse
// CDF of the target marginal applied to the Gaussian copula).
type Config struct {
	Name     string
	Hurst    float64
	Bins     int     // number of samples
	BinWidth float64 // seconds per sample
	// Quantile maps u ∈ (0,1) to a rate; it is the inverse CDF of the
	// target marginal distribution.
	Quantile func(u float64) float64
}

// Synthesize generates a trace per cfg: exact Davies–Harte FGN of the given
// Hurst parameter, mapped through Φ (the standard normal CDF) to uniforms
// and then through cfg.Quantile to rates. The monotone transform preserves
// the ordering structure of the Gaussian field, and for the smooth
// marginals used here leaves the asymptotic correlation decay — hence the
// Hurst parameter — intact (verified by the estimator suite in tests).
func Synthesize(cfg Config, rng *rand.Rand) (Trace, error) {
	if cfg.Quantile == nil {
		return Trace{}, errors.New("traces: Config.Quantile is required")
	}
	if cfg.Bins <= 0 || !(cfg.BinWidth > 0) {
		return Trace{}, errors.New("traces: Bins and BinWidth must be positive")
	}
	g, err := fgn.DaviesHarte(cfg.Hurst, cfg.Bins, rng)
	if err != nil {
		return Trace{}, err
	}
	rates := make([]float64, len(g))
	for i, v := range g {
		u := 0.5 * (1 + math.Erf(v/math.Sqrt2))
		// Keep u strictly inside (0,1) so unbounded quantiles stay finite.
		u = numerics.Clamp(u, 1e-12, 1-1e-12)
		rates[i] = cfg.Quantile(u)
	}
	return Trace{Name: cfg.Name, Rates: rates, BinWidth: cfg.BinWidth}, nil
}

// LognormalQuantile returns the inverse CDF of a lognormal distribution
// parameterized by its linear-scale mean and coefficient of variation
// (sd/mean). Lognormal marginals are used for both synthetic traces: a
// narrow one (CoV ≈ 0.3) mimics the MTV JPEG video marginal, a wide one
// (CoV ≈ 1.3) the spiky near-zero-mass Bellcore Ethernet marginal.
func LognormalQuantile(mean, cov float64) func(float64) float64 {
	sigma2 := math.Log(1 + cov*cov)
	sigma := math.Sqrt(sigma2)
	mu := math.Log(mean) - sigma2/2
	return func(u float64) float64 {
		// Φ⁻¹(u) via erfinv.
		z := math.Sqrt2 * math.Erfinv(2*u-1)
		return math.Exp(mu + sigma*z)
	}
}

// MTV returns the synthetic stand-in for the paper's MTV trace: 107,892
// frames at NTSC rate (≈33.37 ms per frame), mean 9.5222 Mb/s, H = 0.83,
// with a narrow right-skewed marginal (CoV 0.30).
func MTV(rng *rand.Rand) (Trace, error) {
	return Synthesize(Config{
		Name:     "mtv",
		Hurst:    0.83,
		Bins:     107892,
		BinWidth: 1.0 / 29.97, // NTSC frame time
		Quantile: LognormalQuantile(9.5222, 0.30),
	}, rng)
}

// Bellcore returns the synthetic stand-in for the Bellcore August 1989
// Ethernet trace: 10 ms bins, H = 0.9, and a wide near-zero-mode marginal
// (CoV 1.3) with mean 1.3 Mb/s.
func Bellcore(rng *rand.Rand) (Trace, error) {
	return Synthesize(Config{
		Name:     "bellcore",
		Hurst:    0.9,
		Bins:     262144,
		BinWidth: 0.01,
		Quantile: LognormalQuantile(1.3, 1.3),
	}, rng)
}

// WriteCSV writes the trace as "time,rate" rows with a header comment
// carrying the metadata needed to read it back.
func (t Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name=%s binwidth=%g\n", t.Name, t.BinWidth); err != nil {
		return err
	}
	for i, r := range t.Rates {
		if _, err := fmt.Fprintf(bw, "%.6f,%.8g\n", float64(i)*t.BinWidth, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a trace written by WriteCSV.
func ReadCSV(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var t Trace
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if first {
				for _, field := range strings.Fields(strings.TrimPrefix(line, "#")) {
					if name, ok := strings.CutPrefix(field, "name="); ok {
						t.Name = name
					}
					if bwf, ok := strings.CutPrefix(field, "binwidth="); ok {
						v, err := strconv.ParseFloat(bwf, 64)
						if err != nil {
							return Trace{}, fmt.Errorf("traces: bad binwidth %q", bwf)
						}
						t.BinWidth = v
					}
				}
				first = false
			}
			continue
		}
		_, ratePart, ok := strings.Cut(line, ",")
		if !ok {
			return Trace{}, fmt.Errorf("traces: malformed row %q", line)
		}
		v, err := strconv.ParseFloat(ratePart, 64)
		if err != nil {
			return Trace{}, fmt.Errorf("traces: bad rate %q: %w", ratePart, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// A NaN or Inf bin silently poisons every downstream statistic
			// (marginal, variance, periodogram); reject it at the boundary.
			return Trace{}, fmt.Errorf("traces: non-finite rate %q at row %d", ratePart, len(t.Rates)+1)
		}
		t.Rates = append(t.Rates, v)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, err
	}
	if len(t.Rates) == 0 {
		return Trace{}, errors.New("traces: no samples in input")
	}
	if t.BinWidth == 0 {
		return Trace{}, errors.New("traces: missing binwidth header")
	}
	return t, nil
}

// MarginalQuantile adapts a fitted discrete marginal into the quantile
// transform Synthesize needs, enabling trace re-synthesis from measured
// histograms: the generated trace has (up to binning) the same marginal as
// the original and the Hurst parameter of the FGN core.
func MarginalQuantile(m dist.Marginal) func(float64) float64 {
	return m.Quantile
}
