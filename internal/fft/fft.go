// Package fft implements the fast Fourier transform and FFT-based linear
// convolution on float64 data using only the standard library.
//
// Two transform kernels are provided: an iterative radix-2
// Cooley–Tukey transform for power-of-two lengths and Bluestein's
// chirp-z algorithm for arbitrary lengths. Callers normally use the
// length-agnostic Forward/Inverse entry points, or ConvolveReal for linear
// convolution of real sequences (the operation at the heart of the paper's
// O(M log M) queue-occupancy recursion).
//
// Twiddle factors for the radix-2 kernel are precomputed per transform
// size and cached process-wide (the solver hits the same handful of sizes
// millions of times during a sweep). SetRecorder attaches a telemetry
// recorder counting plan-cache hits/misses, transform sizes, and which
// convolution path (direct vs. FFT) each ConvolveReal call took.
package fft

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"lrd/internal/obs"
)

// recBox wraps the recorder so a nil interface can be stored in
// atomic.Value (which rejects inconsistently-typed or nil values).
type recBox struct{ r obs.Recorder }

var globalRec atomic.Value // recBox

// SetRecorder attaches a telemetry recorder to the package's transform and
// convolution entry points; nil detaches it. Safe for concurrent use with
// running transforms.
func SetRecorder(r obs.Recorder) { globalRec.Store(recBox{r}) }

func recorder() obs.Recorder {
	if b, ok := globalRec.Load().(recBox); ok {
		return b.r
	}
	return nil
}

// directConvolutionCrossover is the work bound (len(a)*len(b)) below which
// the O(n·m) direct convolution beats the FFT path.
const directConvolutionCrossover = 4096

// DirectConvolutionSizes reports whether ConvolveReal would take the direct
// O(n·m) path for inputs of the given lengths — exported so instrumented
// callers (the solver's per-step metrics) can label the path taken without
// duplicating the crossover constant.
func DirectConvolutionSizes(n, m int) bool {
	return n*m <= directConvolutionCrossover
}

// maxCachedPlanSize bounds plan-cache memory: transforms larger than this
// (well beyond the solver's maximum convolution length) build their
// twiddles on the fly instead of being cached.
const maxCachedPlanSize = 1 << 21

// plan holds the per-stage twiddle factors of a radix-2 transform of one
// size, flattened: the stage with half-size h occupies indices
// [h-1, 2h-1). Forward and inverse tables differ only in the sign of the
// exponent.
type plan struct {
	fwd, inv []complex128
}

var planCache sync.Map // int -> *plan

// planFor returns the (possibly cached) twiddle plan for size n.
func planFor(n int) *plan {
	if v, ok := planCache.Load(n); ok {
		if rec := recorder(); rec != nil {
			rec.Add(obs.MetricFFTPlanHits, 1)
		}
		return v.(*plan)
	}
	if rec := recorder(); rec != nil {
		rec.Add(obs.MetricFFTPlanMisses, 1)
	}
	p := buildPlan(n)
	if n <= maxCachedPlanSize {
		if v, loaded := planCache.LoadOrStore(n, p); loaded {
			return v.(*plan)
		}
	}
	return p
}

// buildPlan precomputes the twiddle factors w_size^k = exp(±2πik/size) for
// every stage size 2, 4, …, n, k < size/2.
func buildPlan(n int) *plan {
	p := &plan{
		fwd: make([]complex128, n-1),
		inv: make([]complex128, n-1),
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := 2 * math.Pi / float64(size)
		for k := 0; k < half; k++ {
			s, c := math.Sincos(step * float64(k))
			p.fwd[half-1+k] = complex(c, -s)
			p.inv[half-1+k] = complex(c, s)
		}
	}
	return p
}

// Forward returns the discrete Fourier transform of x. The input is not
// modified. Any length is accepted; power-of-two lengths use the radix-2
// kernel, others use Bluestein's algorithm.
func Forward(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	transform(out, false)
	return out
}

// Inverse returns the inverse discrete Fourier transform of x, normalized by
// 1/len(x) so that Inverse(Forward(x)) == x up to roundoff.
func Inverse(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	transform(out, true)
	return out
}

// transform computes an in-place DFT (or inverse DFT) of x of any length.
func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// radix2 computes an unnormalized in-place DFT for power-of-two lengths
// using the iterative decimation-in-time Cooley–Tukey algorithm. The
// twiddle factors come from the process-wide plan cache, so after the
// first transform of a given size the kernel performs no trigonometry at
// all — the dominant setup cost of the per-step solver convolution
// otherwise.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	if rec := recorder(); rec != nil {
		rec.Observe(obs.MetricFFTTransformSize, float64(n))
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	p := planFor(n)
	tw := p.fwd
	if inverse {
		tw = p.inv
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stage := tw[half-1 : 2*half-1]
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * stage[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// bluestein computes an unnormalized DFT of arbitrary length n by expressing
// it as a linear convolution of length >= 2n-1, which is evaluated with the
// radix-2 kernel.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w[k] = exp(sign * i*pi*k^2/n). k*k can overflow for very
	// large n, so reduce k^2 mod 2n in int64 arithmetic.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		s, c := math.Sincos(sign * math.Pi * float64(kk) / float64(n))
		chirp[k] = complex(c, s)
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	conj := func(z complex128) complex128 { return complex(real(z), -imag(z)) }
	b[0] = conj(chirp[0])
	for k := 1; k < n; k++ {
		b[k] = conj(chirp[k])
		b[m-k] = b[k]
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * chirp[k]
	}
}

// ConvolveReal returns the full linear convolution of the real sequences a
// and b: out[k] = sum_i a[i]*b[k-i], with len(out) = len(a)+len(b)-1.
// The transform length is padded to the next power of two, giving
// O((n+m) log(n+m)) time. Either input being empty yields an empty result.
func ConvolveReal(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	if DirectConvolutionSizes(len(a), len(b)) {
		// Small problems: the direct algorithm is both faster and exact.
		if rec := recorder(); rec != nil {
			rec.Add(obs.MetricFFTConvolveNaive, 1)
		}
		return convolveNaive(a, b)
	}
	if rec := recorder(); rec != nil {
		rec.Add(obs.MetricFFTConvolveViaFFT, 1)
	}
	m := 1
	for m < outLen {
		m <<= 1
	}
	// Pack both real sequences into one complex transform: z = a + i*b.
	z := make([]complex128, m)
	for i, v := range a {
		z[i] = complex(v, 0)
	}
	for i, v := range b {
		z[i] += complex(0, v)
	}
	radix2(z, false)
	// With Z = A + iB, A[k] = (Z[k] + conj(Z[-k]))/2 and
	// B[k] = (Z[k] - conj(Z[-k]))/(2i); the product spectrum is A.*B.
	prod := make([]complex128, m)
	for k := 0; k <= m/2; k++ {
		kr := (m - k) % m
		zk, zkr := z[k], z[kr]
		ak := (zk + complex(real(zkr), -imag(zkr))) * 0.5
		bk := (zk - complex(real(zkr), -imag(zkr))) * complex(0, -0.5)
		p := ak * bk
		prod[k] = p
		if kr != k {
			prod[kr] = complex(real(p), -imag(p))
		}
	}
	radix2(prod, true)
	out := make([]float64, outLen)
	inv := 1 / float64(m)
	for i := range out {
		out[i] = real(prod[i]) * inv
	}
	return out
}

// convolveNaive is the O(n·m) direct convolution used for small inputs and
// as the reference implementation in tests.
func convolveNaive(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// ConvolveRealNaive exposes the direct O(n·m) linear convolution. The solver
// uses it below a crossover size where it beats the FFT, and tests use it as
// the ground truth for ConvolveReal.
func ConvolveRealNaive(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	return convolveNaive(a, b)
}

// Periodogram returns the one-sided periodogram I(f_j) of the real series x
// at the Fourier frequencies f_j = j/n for j = 1..floor((n-1)/2):
//
//	I(f_j) = |sum_t x[t] e^{-2πi f_j t}|² / (2π n)
//
// This is the normalization used by Whittle-type long-memory estimators.
func Periodogram(x []float64) []float64 {
	n := len(x)
	if n < 2 {
		return nil
	}
	z := make([]complex128, n)
	for i, v := range x {
		z[i] = complex(v, 0)
	}
	transform(z, false)
	m := (n - 1) / 2
	out := make([]float64, m)
	norm := 1 / (2 * math.Pi * float64(n))
	for j := 1; j <= m; j++ {
		re, im := real(z[j]), imag(z[j])
		out[j-1] = (re*re + im*im) * norm
	}
	return out
}
