package fft

import "lrd/internal/obs"

// Scratch holds the working buffers of one ConvolveRealInto call chain so a
// hot loop (the solver performs two convolutions per Lindley step) can reuse
// them instead of allocating ~3 transform-sized slices per call. A Scratch
// is owned by a single goroutine at a time; the zero value is ready to use
// and grows its buffers on demand, after which steady-state calls allocate
// nothing.
type Scratch struct {
	z    []complex128
	prod []complex128
	out  []float64
}

// grown returns buf resliced to length n, reallocating only when capacity is
// insufficient. Contents are unspecified; callers must fully overwrite or
// zero the slice.
func grownComplex(buf []complex128, n int) []complex128 {
	if cap(buf) < n {
		return make([]complex128, n)
	}
	return buf[:n]
}

func grownFloat(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// ConvolveRealInto is ConvolveReal with caller-owned scratch buffers: it
// performs the same arithmetic operation for operation, so the result is
// bit-identical, but the returned slice is owned by s and only valid until
// the next call with the same Scratch. A nil Scratch falls back to
// ConvolveReal.
func ConvolveRealInto(a, b []float64, s *Scratch) []float64 {
	if s == nil {
		return ConvolveReal(a, b)
	}
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	if DirectConvolutionSizes(len(a), len(b)) {
		if rec := recorder(); rec != nil {
			rec.Add(obs.MetricFFTConvolveNaive, 1)
		}
		// convolveNaive accumulates into its output, so the reused buffer
		// must start zeroed.
		s.out = grownFloat(s.out, outLen)
		clear(s.out)
		for i, av := range a {
			if av == 0 {
				continue
			}
			for j, bv := range b {
				s.out[i+j] += av * bv
			}
		}
		return s.out
	}
	if rec := recorder(); rec != nil {
		rec.Add(obs.MetricFFTConvolveViaFFT, 1)
	}
	m := 1
	for m < outLen {
		m <<= 1
	}
	// Pack both real sequences into one complex transform: z = a + i*b. The
	// tail beyond the inputs must be zero, exactly as a fresh allocation
	// would be.
	z := grownComplex(s.z, m)
	s.z = z
	clear(z)
	for i, v := range a {
		z[i] = complex(v, 0)
	}
	for i, v := range b {
		z[i] += complex(0, v)
	}
	radix2(z, false)
	// Every index of prod is written below (k covers 0..m/2, kr covers the
	// mirror half), so no clearing is needed.
	prod := grownComplex(s.prod, m)
	s.prod = prod
	for k := 0; k <= m/2; k++ {
		kr := (m - k) % m
		zk, zkr := z[k], z[kr]
		ak := (zk + complex(real(zkr), -imag(zkr))) * 0.5
		bk := (zk - complex(real(zkr), -imag(zkr))) * complex(0, -0.5)
		p := ak * bk
		prod[k] = p
		if kr != k {
			prod[kr] = complex(real(p), -imag(p))
		}
	}
	radix2(prod, true)
	s.out = grownFloat(s.out, outLen)
	inv := 1 / float64(m)
	for i := range s.out {
		s.out[i] = real(prod[i]) * inv
	}
	return s.out
}
