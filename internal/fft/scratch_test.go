package fft

import (
	"math"
	"math/rand"
	"testing"
)

// TestConvolveRealIntoBitIdentical drives ConvolveRealInto across both the
// direct and FFT paths, reusing one Scratch between calls of different
// sizes, and requires bitwise equality with ConvolveReal for every output
// element. The solver's batch mode leans on exactly this guarantee to keep
// batched sweeps byte-identical to unbatched ones.
func TestConvolveRealIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Scratch
	sizes := [][2]int{
		{1, 1}, {3, 5}, {17, 9}, {64, 129}, // direct path (n*m <= 4096)
		{65, 129}, {129, 257}, {513, 1025}, {1025, 2049}, // FFT path
		{33, 65}, {2049, 4097}, // shrink then grow: exercises buffer reuse
	}
	for _, sz := range sizes {
		a := make([]float64, sz[0])
		b := make([]float64, sz[1])
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := ConvolveReal(a, b)
		got := ConvolveRealInto(a, b, &s)
		if len(got) != len(want) {
			t.Fatalf("size %v: len %d, want %d", sz, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("size %v: out[%d] = %x, want %x (not bit-identical)",
					sz, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestConvolveRealIntoNilScratch checks the nil-Scratch fallback and empty
// inputs.
func TestConvolveRealIntoNilScratch(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4, 5}
	want := ConvolveReal(a, b)
	got := ConvolveRealInto(a, b, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil scratch: got %v, want %v", got, want)
		}
	}
	if out := ConvolveRealInto(nil, b, &Scratch{}); out != nil {
		t.Fatalf("empty input: got %v, want nil", out)
	}
}

// TestConvolveRealIntoSteadyStateAllocs verifies that after warm-up the
// scratch path allocates nothing per call.
func TestConvolveRealIntoSteadyStateAllocs(t *testing.T) {
	a := make([]float64, 257)
	b := make([]float64, 513)
	for i := range a {
		a[i] = float64(i%7) * 0.1
	}
	for i := range b {
		b[i] = float64(i%5) * 0.2
	}
	var s Scratch
	ConvolveRealInto(a, b, &s) // warm up buffers
	allocs := testing.AllocsPerRun(10, func() {
		ConvolveRealInto(a, b, &s)
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", allocs)
	}
}
