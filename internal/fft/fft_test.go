package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"lrd/internal/obs"
)

// dftNaive is the O(n²) reference DFT.
func dftNaive(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += x[t] * cmplx.Exp(complex(0, ang))
		}
		if inverse {
			acc /= complex(float64(n), 0)
		}
		out[k] = acc
	}
	return out
}

func complexAlmostEqual(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func TestForwardMatchesNaivePow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(n, int64(n))
		got := Forward(x)
		want := dftNaive(x, false)
		if !complexAlmostEqual(got, want, 1e-9*float64(n)) {
			t.Fatalf("n=%d: radix-2 FFT disagrees with naive DFT", n)
		}
	}
}

func TestForwardMatchesNaiveNonPow2(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 9, 12, 15, 17, 33, 100} {
		x := randComplex(n, int64(n))
		got := Forward(x)
		want := dftNaive(x, false)
		if !complexAlmostEqual(got, want, 1e-8*float64(n)) {
			t.Fatalf("n=%d: Bluestein FFT disagrees with naive DFT", n)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 31, 128, 129} {
		x := randComplex(n, int64(1000+n))
		y := Inverse(Forward(x))
		if !complexAlmostEqual(x, y, 1e-9*float64(n+1)) {
			t.Fatalf("n=%d: Inverse(Forward(x)) != x", n)
		}
	}
}

func TestForwardDoesNotMutateInput(t *testing.T) {
	x := randComplex(16, 5)
	orig := make([]complex128, len(x))
	copy(orig, x)
	Forward(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("Forward mutated its input")
		}
	}
}

func TestForwardImpulse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	for i, v := range Forward(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestForwardConstant(t *testing.T) {
	// DFT of a constant is an impulse of height n at bin 0.
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	got := Forward(x)
	if cmplx.Abs(got[0]-complex(float64(n), 0)) > 1e-12 {
		t.Fatalf("bin 0 = %v, want %d", got[0], n)
	}
	for i := 1; i < n; i++ {
		if cmplx.Abs(got[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, got[i])
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	// Parseval: sum |x|² == (1/n) sum |X|².
	f := func(seed int64, ln uint8) bool {
		n := int(ln%60) + 2
		x := randComplex(n, seed)
		X := Forward(x)
		var tsum, fsum float64
		for i := range x {
			tsum += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			fsum += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		fsum /= float64(n)
		return math.Abs(tsum-fsum) <= 1e-8*(tsum+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveRealMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sz := range [][2]int{{1, 1}, {3, 5}, {64, 64}, {100, 301}, {257, 1024}} {
		a := make([]float64, sz[0])
		b := make([]float64, sz[1])
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := ConvolveReal(a, b)
		want := ConvolveRealNaive(a, b)
		if len(got) != len(want) {
			t.Fatalf("len mismatch: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("sz=%v idx=%d: %v vs %v", sz, i, got[i], want[i])
			}
		}
	}
}

func TestConvolveRealEmpty(t *testing.T) {
	if got := ConvolveReal(nil, []float64{1}); got != nil {
		t.Fatalf("want nil, got %v", got)
	}
	if got := ConvolveReal([]float64{1}, nil); got != nil {
		t.Fatalf("want nil, got %v", got)
	}
}

func TestConvolveRealIdentity(t *testing.T) {
	// Convolution with [1] is the identity.
	a := []float64{3, 1, 4, 1, 5}
	got := ConvolveReal(a, []float64{1})
	for i := range a {
		if math.Abs(got[i]-a[i]) > 1e-12 {
			t.Fatalf("identity convolution failed at %d", i)
		}
	}
}

func TestConvolvePreservesMassProperty(t *testing.T) {
	// For probability vectors, the convolution's total mass is the product
	// of the input masses (here 1·1 = 1). This is the invariant the solver
	// depends on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		m := rng.Intn(200) + 1
		a := make([]float64, n)
		b := make([]float64, m)
		var sa, sb float64
		for i := range a {
			a[i] = rng.Float64()
			sa += a[i]
		}
		for i := range b {
			b[i] = rng.Float64()
			sb += b[i]
		}
		for i := range a {
			a[i] /= sa
		}
		for i := range b {
			b[i] /= sb
		}
		out := ConvolveReal(a, b)
		var total float64
		for _, v := range out {
			total += v
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		m := rng.Intn(100) + 1
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ab := ConvolveReal(a, b)
		ba := ConvolveReal(b, a)
		for i := range ab {
			if math.Abs(ab[i]-ba[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodogramWhiteNoiseFlat(t *testing.T) {
	// White noise has a flat spectrum f(λ) = σ²/(2π); the mean periodogram
	// ordinate should be close to that.
	rng := rand.New(rand.NewSource(7))
	n := 1 << 14
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	p := Periodogram(x)
	if len(p) != (n-1)/2 {
		t.Fatalf("len = %d, want %d", len(p), (n-1)/2)
	}
	var mean float64
	for _, v := range p {
		mean += v
	}
	mean /= float64(len(p))
	want := 1 / (2 * math.Pi)
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("mean periodogram %v, want ≈ %v", mean, want)
	}
}

func TestPeriodogramShortInput(t *testing.T) {
	if got := Periodogram([]float64{1}); got != nil {
		t.Fatalf("want nil for n<2, got %v", got)
	}
}

func TestPeriodogramSinusoid(t *testing.T) {
	// A pure sinusoid at Fourier frequency j/n concentrates its energy in
	// periodogram bin j-1 (bins are indexed from frequency 1/n).
	n := 1024
	j := 100
	x := make([]float64, n)
	for t := range x {
		x[t] = math.Cos(2 * math.Pi * float64(j) * float64(t) / float64(n))
	}
	p := Periodogram(x)
	maxIdx := 0
	for i, v := range p {
		if v > p[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx != j-1 {
		t.Fatalf("peak at bin %d, want %d", maxIdx, j-1)
	}
}

func BenchmarkForward1024(b *testing.B) {
	x := randComplex(1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}

func BenchmarkConvolveReal4096(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 4096)
	c := make([]float64, 8193)
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := range c {
		c[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ConvolveReal(a, c)
	}
}

func TestPlanCacheHitsAndMisses(t *testing.T) {
	reg := obs.NewRegistry()
	SetRecorder(reg)
	defer SetRecorder(nil)
	before := reg.CounterValue(obs.MetricFFTPlanHits)
	// A size never cached in this test: first transform misses, second hits.
	x := make([]complex128, 1<<9)
	x[1] = 1
	planCache.Delete(len(x))
	_ = Forward(x)
	_ = Forward(x)
	if misses := reg.CounterValue(obs.MetricFFTPlanMisses); misses < 1 {
		t.Fatalf("plan misses = %v, want >= 1", misses)
	}
	if hits := reg.CounterValue(obs.MetricFFTPlanHits); hits <= before {
		t.Fatalf("plan hits = %v, want > %v", hits, before)
	}
	if n := reg.Histogram(obs.MetricFFTTransformSize).Count(); n < 2 {
		t.Fatalf("transform size observations = %d, want >= 2", n)
	}
}

func TestPlanMatchesTrig(t *testing.T) {
	// The cached plan must reproduce the on-the-fly twiddles exactly.
	const n = 64
	p := buildPlan(n)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := 2 * math.Pi / float64(size)
		for k := 0; k < half; k++ {
			s, c := math.Sincos(step * float64(k))
			if got, want := p.fwd[half-1+k], complex(c, -s); got != want {
				t.Fatalf("fwd twiddle size=%d k=%d: %v != %v", size, k, got, want)
			}
			if got, want := p.inv[half-1+k], complex(c, s); got != want {
				t.Fatalf("inv twiddle size=%d k=%d: %v != %v", size, k, got, want)
			}
		}
	}
}

func TestConvolvePathCounters(t *testing.T) {
	reg := obs.NewRegistry()
	SetRecorder(reg)
	defer SetRecorder(nil)
	small := make([]float64, 8)
	small[0] = 1
	_ = ConvolveReal(small, small) // 64 <= crossover: direct
	big := make([]float64, 256)
	big[0] = 1
	_ = ConvolveReal(big, big) // 65536 > crossover: FFT
	if v := reg.CounterValue(obs.MetricFFTConvolveNaive); v != 1 {
		t.Fatalf("direct counter = %v, want 1", v)
	}
	if v := reg.CounterValue(obs.MetricFFTConvolveViaFFT); v != 1 {
		t.Fatalf("fft counter = %v, want 1", v)
	}
	if !DirectConvolutionSizes(8, 8) || DirectConvolutionSizes(256, 256) {
		t.Fatal("DirectConvolutionSizes disagrees with the crossover")
	}
}
