// Package mmfq solves Markov-modulated fluid queues (MMFQ) with infinite
// buffers by spectral decomposition — the classical framework of
// Anick–Mitra–Sondhi (1982) and Mitra (1988) generalized to an arbitrary
// finite modulating chain. It provides the library's second, fully
// independent analytical engine next to the paper's renewal-model solver:
//
//   - the paper contrasts LRD queueing against exactly this class of
//     Markovian models (§I, §IV, references [11], [24]);
//   - the infinite-buffer overflow probability G(B) = Pr{Q > B} computed
//     here upper-bounds the finite-buffer loss rate (paper, footnote 2),
//     giving an analytic cross-check of the bounded solver.
//
// The stationary state-occupancy vector F(x), F_j(x) = Pr{Q <= x, S = j},
// satisfies F'(x)(D − cI) = F(x)·Q. Writing solutions φ·e^{zx} yields the
// generalized eigenproblem z·(D−cI)ᵀφ = Qᵀφ, i.e. ordinary eigenpairs of
// M = (D−cI)⁻¹Qᵀ, which for these systems has a real spectrum with exactly
// one zero eigenvalue (the stationary distribution) and as many strictly
// negative eigenvalues as there are up states (d_j > c). The bounded
// solution keeps the non-positive part of the spectrum, and the
// coefficients follow from the boundary conditions F_j(0) = 0 at every up
// state.
package mmfq

import (
	"errors"
	"fmt"
	"math"

	"lrd/internal/linalg"
	"lrd/internal/numerics"
)

// Modulator is a finite CTMC with a fluid rate attached to every state.
type Modulator struct {
	// Generator is the CTMC generator matrix Q: non-negative off-diagonal
	// rates, rows summing to zero.
	Generator [][]float64
	// Rates is the fluid emission rate d_j per state.
	Rates []float64
}

// Validate checks the generator structure.
func (m Modulator) Validate() error {
	n := len(m.Generator)
	if n == 0 {
		return errors.New("mmfq: empty generator")
	}
	if len(m.Rates) != n {
		return fmt.Errorf("mmfq: %d rates for %d states", len(m.Rates), n)
	}
	for i, row := range m.Generator {
		if len(row) != n {
			return fmt.Errorf("mmfq: generator row %d has %d entries", i, len(row))
		}
		var sum numerics.Accumulator
		for j, v := range row {
			if i != j && v < 0 {
				return fmt.Errorf("mmfq: negative off-diagonal rate Q[%d][%d] = %v", i, j, v)
			}
			sum.Add(v)
		}
		if math.Abs(sum.Sum()) > 1e-9 {
			return fmt.Errorf("mmfq: generator row %d sums to %v, want 0", i, sum.Sum())
		}
	}
	for j, r := range m.Rates {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("mmfq: rate %d is %v", j, r)
		}
	}
	return nil
}

// Stationary returns the stationary distribution π of the modulating
// chain: πQ = 0 with Σπ = 1, via an LU solve with the normalization
// replacing the (redundant) last balance equation.
func (m Modulator) Stationary() ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := len(m.Generator)
	a := linalg.NewMatrix(n, n)
	// Rows 0..n−2: (Qᵀπ)_j = 0; row n−1: Σπ = 1.
	for j := 0; j < n-1; j++ {
		for i := 0; i < n; i++ {
			a.Set(j, i, m.Generator[i][j])
		}
	}
	for i := 0; i < n; i++ {
		a.Set(n-1, i, 1)
	}
	rhs := make([]float64, n)
	rhs[n-1] = 1
	lu, err := linalg.Factor(a)
	if err != nil {
		return nil, err
	}
	pi, err := lu.Solve(rhs)
	if err != nil {
		return nil, fmt.Errorf("mmfq: stationary solve: %w (is the chain irreducible?)", err)
	}
	for j, p := range pi {
		if p < -1e-9 {
			return nil, fmt.Errorf("mmfq: negative stationary probability π[%d] = %v", j, p)
		}
		if p < 0 {
			pi[j] = 0
		}
	}
	return pi, nil
}

// MeanRate returns the stationary mean fluid rate Σ π_j d_j.
func (m Modulator) MeanRate() (float64, error) {
	pi, err := m.Stationary()
	if err != nil {
		return 0, err
	}
	var acc numerics.Accumulator
	for j := range pi {
		acc.Add(pi[j] * m.Rates[j])
	}
	return acc.Sum(), nil
}

// Solution is the spectral representation of the stationary buffer-content
// distribution of the MMFQ.
type Solution struct {
	// Exponents are the strictly negative eigenvalues z_k used in the
	// bounded solution, ascending (most negative first).
	Exponents []float64
	// weights[k] = a_k · Σ_j φ_k[j]; G(x) = −Σ_k weights[k]·e^{z_k·x}.
	weights []float64
	// Utilization is λ̄/c.
	Utilization float64
}

// Solve computes the stationary solution for service rate c. The chain
// must be irreducible, stable (mean rate < c), and no state's rate may
// equal c (the paper's model excludes that trivial case too).
func Solve(m Modulator, c float64) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !(c > 0) {
		return nil, fmt.Errorf("mmfq: service rate %v, need > 0", c)
	}
	n := len(m.Rates)
	up := 0
	for _, d := range m.Rates {
		if math.Abs(d-c) < 1e-12*(math.Abs(d)+c) {
			return nil, fmt.Errorf("mmfq: state rate %v equals the service rate", d)
		}
		if d > c {
			up++
		}
	}
	pi, err := m.Stationary()
	if err != nil {
		return nil, err
	}
	var mean numerics.Accumulator
	for j := range pi {
		mean.Add(pi[j] * m.Rates[j])
	}
	if mean.Sum() >= c {
		return nil, fmt.Errorf("mmfq: unstable: mean rate %v >= service rate %v", mean.Sum(), c)
	}
	if up == 0 {
		// The buffer never fills: Q ≡ 0.
		return &Solution{Utilization: mean.Sum() / c}, nil
	}
	// M = (D−cI)⁻¹Qᵀ.
	mm := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		inv := 1 / (m.Rates[j] - c)
		for i := 0; i < n; i++ {
			mm.Set(j, i, inv*m.Generator[i][j])
		}
	}
	eig, err := linalg.RealEigenvalues(mm)
	if err != nil {
		return nil, fmt.Errorf("mmfq: spectrum: %w", err)
	}
	// Collect the strictly negative exponents; theory says there are
	// exactly `up` of them.
	scale := 0.0
	for _, e := range eig {
		scale = math.Max(scale, math.Abs(e))
	}
	var negs []float64
	for _, e := range eig {
		if e < -1e-10*scale {
			negs = append(negs, e)
		}
	}
	if len(negs) != up {
		return nil, fmt.Errorf("mmfq: found %d negative eigenvalues, expected %d (up states)", len(negs), up)
	}
	// Eigenvectors of the negative modes.
	phis := make([][]float64, len(negs))
	for k, z := range negs {
		phi, err := linalg.Eigenvector(mm, z)
		if err != nil {
			return nil, fmt.Errorf("mmfq: eigenvector for z = %v: %w", z, err)
		}
		phis[k] = phi
	}
	// Boundary conditions: for every up state j, π_j + Σ_k a_k φ_k[j] = 0.
	bc := linalg.NewMatrix(up, up)
	rhs := make([]float64, up)
	row := 0
	for j := 0; j < n; j++ {
		if m.Rates[j] <= c {
			continue
		}
		for k := range phis {
			bc.Set(row, k, phis[k][j])
		}
		rhs[row] = -pi[j]
		row++
	}
	lu, err := linalg.Factor(bc)
	if err != nil {
		return nil, err
	}
	a, err := lu.Solve(rhs)
	if err != nil {
		return nil, fmt.Errorf("mmfq: boundary system: %w", err)
	}
	sol := &Solution{
		Exponents:   negs,
		weights:     make([]float64, len(negs)),
		Utilization: mean.Sum() / c,
	}
	for k := range negs {
		var s numerics.Accumulator
		for _, v := range phis[k] {
			s.Add(v)
		}
		sol.weights[k] = a[k] * s.Sum()
	}
	return sol, nil
}

// OverflowProbability returns G(x) = Pr{Q > x} for x >= 0; 1 for x < 0.
func (s *Solution) OverflowProbability(x float64) float64 {
	if x < 0 {
		return 1
	}
	if len(s.Exponents) == 0 {
		return 0
	}
	var acc numerics.Accumulator
	for k, z := range s.Exponents {
		acc.Add(-s.weights[k] * math.Exp(z*x))
	}
	return numerics.Clamp(acc.Sum(), 0, 1)
}

// DecayRate returns the asymptotic exponential decay rate η of the queue
// tail (the magnitude of the dominant, least-negative exponent), or +Inf
// when the queue is identically empty.
func (s *Solution) DecayRate() float64 {
	if len(s.Exponents) == 0 {
		return math.Inf(1)
	}
	dominant := s.Exponents[0]
	for _, z := range s.Exponents[1:] {
		if z > dominant {
			dominant = z
		}
	}
	return -dominant
}

// NSourceOnOff builds the modulator of N independent and identical
// exponential on/off sources (the Anick–Mitra–Sondhi setting): state j
// means j sources are on, the fluid rate is j·peak, off→on rate α and
// on→off rate β per source, giving the birth–death generator with birth
// rate (N−j)·α and death rate j·β.
func NSourceOnOff(n int, peak, offToOn, onToOff float64) (Modulator, error) {
	if n <= 0 {
		return Modulator{}, errors.New("mmfq: need at least one source")
	}
	if !(peak > 0) || !(offToOn > 0) || !(onToOff > 0) {
		return Modulator{}, errors.New("mmfq: rates must be positive")
	}
	states := n + 1
	q := make([][]float64, states)
	rates := make([]float64, states)
	for j := 0; j < states; j++ {
		q[j] = make([]float64, states)
		rates[j] = float64(j) * peak
		birth := float64(n-j) * offToOn
		death := float64(j) * onToOff
		if j < n {
			q[j][j+1] = birth
		}
		if j > 0 {
			q[j][j-1] = death
		}
		q[j][j] = -(birth + death)
	}
	return Modulator{Generator: q, Rates: rates}, nil
}
