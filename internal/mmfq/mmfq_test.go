package mmfq

import (
	"math"
	"math/rand"
	"testing"

	"lrd/internal/ams"
	"lrd/internal/numerics"
)

func TestValidate(t *testing.T) {
	good := Modulator{
		Generator: [][]float64{{-1, 1}, {2, -2}},
		Rates:     []float64{0, 3},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Modulator{
		{},
		{Generator: [][]float64{{-1, 1}}, Rates: []float64{0, 1}},
		{Generator: [][]float64{{-1, 1}, {2, -2, 3}}, Rates: []float64{0, 1}},
		{Generator: [][]float64{{-1, 1}, {-2, 2}}, Rates: []float64{0, 1}}, // negative off-diagonal
		{Generator: [][]float64{{-1, 2}, {2, -2}}, Rates: []float64{0, 1}}, // row sum != 0
		{Generator: [][]float64{{-1, 1}, {2, -2}}, Rates: []float64{0, math.NaN()}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad modulator %d accepted", i)
		}
	}
}

func TestStationaryTwoState(t *testing.T) {
	m := Modulator{
		Generator: [][]float64{{-1, 1}, {2, -2}},
		Rates:     []float64{0, 3},
	}
	pi, err := m.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	// π ∝ (β, α)/(α+β) with α = 1 (off→on), β = 2 (on→off).
	if !numerics.AlmostEqual(pi[0], 2.0/3.0, 1e-10) || !numerics.AlmostEqual(pi[1], 1.0/3.0, 1e-10) {
		t.Fatalf("π = %v", pi)
	}
	mean, err := m.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(mean, 1, 1e-10) {
		t.Fatalf("mean rate = %v", mean)
	}
}

func TestStationaryBirthDeath(t *testing.T) {
	m, err := NSourceOnOff(4, 1, 0.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	// Binomial with p = α/(α+β) = 0.25.
	p := 0.25
	for j := 0; j <= 4; j++ {
		want := binom(4, j) * math.Pow(p, float64(j)) * math.Pow(1-p, float64(4-j))
		if !numerics.AlmostEqual(pi[j], want, 1e-9) {
			t.Fatalf("π[%d] = %v, want %v", j, pi[j], want)
		}
	}
}

func binom(n, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= float64(n-i) / float64(k-i)
	}
	return out
}

func TestSolveMatchesAMSClosedForm(t *testing.T) {
	// The decisive test: the general spectral solver on a single on/off
	// source must reproduce the AMS closed form exactly.
	amsQ := ams.OnOffQueue{OnRate: 3, OffToOn: 1, OnToOff: 2, ServiceRate: 1.5}
	mod := Modulator{
		Generator: [][]float64{{-1, 1}, {2, -2}},
		Rates:     []float64{0, 3},
	}
	sol, err := Solve(mod, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(sol.Utilization, amsQ.Utilization(), 1e-10) {
		t.Fatalf("utilization %v vs %v", sol.Utilization, amsQ.Utilization())
	}
	if !numerics.AlmostEqual(sol.DecayRate(), amsQ.DecayRate(), 1e-8) {
		t.Fatalf("decay rate %v vs %v", sol.DecayRate(), amsQ.DecayRate())
	}
	for _, x := range []float64{0, 0.5, 1, 2, 5} {
		got := sol.OverflowProbability(x)
		want := amsQ.OverflowProbability(x)
		if !numerics.AlmostEqual(got, want, 1e-7) {
			t.Fatalf("G(%v) = %v, AMS closed form %v", x, got, want)
		}
	}
}

func TestSolveNSourceAgainstSimulation(t *testing.T) {
	// Three on/off sources, c between 1 and 2 peaks: validate the spectral
	// solution against brute-force CTMC + fluid simulation.
	const (
		n       = 3
		peak    = 1.0
		alpha   = 0.8 // off→on
		beta    = 1.2 // on→off
		service = 1.6
	)
	mod, err := NSourceOnOff(n, peak, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(mod, service)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate: continuous-time jumps of the birth-death chain with linear
	// buffer evolution between jumps.
	rng := rand.New(rand.NewSource(77))
	state := 0
	content := 0.0
	levels := []float64{0.5, 1.5, 3}
	timeAbove := make([]float64, len(levels))
	var total float64
	timeAboveDuring := func(q0, s, d, x float64) float64 {
		q1 := q0 + s*d
		switch {
		case q0 >= x && q1 >= x:
			return d
		case q0 < x && q1 < x:
			return 0
		case s > 0:
			return d - (x-q0)/s
		default:
			return (x - q0) / s
		}
	}
	for step := 0; step < 3_000_000; step++ {
		birth := float64(n-state) * alpha
		death := float64(state) * beta
		rate := birth + death
		dwell := rng.ExpFloat64() / rate
		drift := float64(state)*peak - service
		// The buffer may hit zero mid-dwell when draining.
		drainTime := dwell
		if drift < 0 {
			drainTime = math.Min(dwell, content/-drift)
		}
		for i, x := range levels {
			timeAbove[i] += timeAboveDuring(content, drift, drainTime, x)
		}
		content = math.Max(0, content+drift*dwell)
		if drift > 0 && drainTime < dwell {
			// Unreachable (drainTime == dwell when filling); kept for clarity.
			t.Fatal("internal test inconsistency")
		}
		total += dwell
		if rng.Float64() < birth/rate {
			state++
		} else {
			state--
		}
	}
	for i, x := range levels {
		got := timeAbove[i] / total
		want := sol.OverflowProbability(x)
		if math.Abs(got-want) > 0.15*want+0.002 {
			t.Fatalf("G(%v): simulated %v vs spectral %v", x, got, want)
		}
	}
}

func TestSolveStabilityAndEdgeCases(t *testing.T) {
	mod := Modulator{
		Generator: [][]float64{{-1, 1}, {2, -2}},
		Rates:     []float64{0, 3},
	}
	if _, err := Solve(mod, 0); err == nil {
		t.Fatal("want error on zero service rate")
	}
	if _, err := Solve(mod, 0.9); err == nil {
		t.Fatal("want error on unstable system (mean 1 >= c)")
	}
	if _, err := Solve(mod, 3); err == nil {
		t.Fatal("want error when a state rate equals c")
	}
	// All states below c: queue identically empty.
	low := Modulator{
		Generator: [][]float64{{-1, 1}, {2, -2}},
		Rates:     []float64{0, 1},
	}
	sol, err := Solve(low, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g := sol.OverflowProbability(0); g != 0 {
		t.Fatalf("G(0) = %v, want 0 for an always-underloaded queue", g)
	}
	if !math.IsInf(sol.DecayRate(), 1) {
		t.Fatal("empty queue should have infinite decay rate")
	}
}

func TestOverflowProbabilityShape(t *testing.T) {
	mod, err := NSourceOnOff(5, 1, 0.6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(mod, 3.2)
	if err != nil {
		t.Fatal(err)
	}
	if sol.OverflowProbability(-1) != 1 {
		t.Fatal("G(x<0) must be 1")
	}
	prev := 1.1
	for _, x := range numerics.Linspace(0, 10, 101) {
		g := sol.OverflowProbability(x)
		if g < 0 || g > 1 {
			t.Fatalf("G(%v) = %v out of range", x, g)
		}
		if g > prev+1e-12 {
			t.Fatalf("G not non-increasing at %v", x)
		}
		prev = g
	}
	// Asymptotic slope on a log scale equals −DecayRate.
	x1, x2 := 20.0, 30.0
	slope := (math.Log(sol.OverflowProbability(x2)) - math.Log(sol.OverflowProbability(x1))) / (x2 - x1)
	if !numerics.AlmostEqual(slope, -sol.DecayRate(), 1e-3) {
		t.Fatalf("asymptotic slope %v, want %v", slope, -sol.DecayRate())
	}
}

func TestNSourceOnOffValidation(t *testing.T) {
	if _, err := NSourceOnOff(0, 1, 1, 1); err == nil {
		t.Fatal("want error on zero sources")
	}
	if _, err := NSourceOnOff(2, 0, 1, 1); err == nil {
		t.Fatal("want error on zero peak")
	}
	m, err := NSourceOnOff(3, 2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Rates) != 4 || m.Rates[3] != 6 {
		t.Fatalf("rates = %v", m.Rates)
	}
}
