package mmfq_test

import (
	"math"
	"testing"

	"lrd/internal/dist"
	"lrd/internal/mmfq"
	"lrd/internal/numerics"
	"lrd/internal/solver"
)

// renewalAsMMFQ expresses the hyperexponential-renewal fluid source as a
// Markov-modulated fluid: states (component k, rate i); each state exits
// at rate 1/τ_k into (k', i') with probability a_{k'}·π_{i'} (the renewal
// redraw). This is exact — the phase-type renewal model *is* an MMFM — so
// the spectral engine and the paper's solver describe the same system.
func renewalAsMMFQ(marg dist.Marginal, h dist.Hyperexponential) mmfq.Modulator {
	nk := len(h.Weights)
	ni := marg.Len()
	n := nk * ni
	idx := func(k, i int) int { return k*ni + i }
	q := make([][]float64, n)
	rates := make([]float64, n)
	for k := 0; k < nk; k++ {
		exit := 1 / h.Scales[k]
		for i := 0; i < ni; i++ {
			row := make([]float64, n)
			var diag float64
			for k2 := 0; k2 < nk; k2++ {
				for i2 := 0; i2 < ni; i2++ {
					if k2 == k && i2 == i {
						continue
					}
					r := exit * h.Weights[k2] * marg.Prob(i2)
					row[idx(k2, i2)] = r
					diag += r
				}
			}
			row[idx(k, i)] = -diag
			q[idx(k, i)] = row
			rates[idx(k, i)] = marg.Rate(i)
		}
	}
	return mmfq.Modulator{Generator: q, Rates: rates}
}

// TestFootnote2OverflowBoundsLoss verifies the paper's footnote 2 across
// the two independent engines: the infinite-buffer overflow probability
// (spectral MMFQ) upper-bounds the finite-buffer loss rate (bounded
// Lindley solver) for the same Markovian fluid model, at every buffer
// size.
func TestFootnote2OverflowBoundsLoss(t *testing.T) {
	marg := dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	h, err := dist.NewHyperexponential([]float64{0.7, 0.3}, []float64{0.02, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	c := 1.25 // utilization 0.8
	mod := renewalAsMMFQ(marg, h)
	sol, err := mmfq.Solve(mod, c)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the MMFQ stationary law reproduces the model's mean rate.
	mean, err := mod.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(mean, marg.Mean(), 1e-9) {
		t.Fatalf("MMFM mean rate %v, want %v", mean, marg.Mean())
	}
	for _, nbuf := range []float64{0.05, 0.2, 0.8} {
		buffer := nbuf * c
		model, err := solver.NewModel(marg, h, c, buffer)
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.SolveModel(model, solver.Config{RelGap: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		overflow := sol.OverflowProbability(buffer)
		if res.Lower > overflow*1.05+1e-12 {
			t.Fatalf("buffer %v: finite-buffer loss lower bound %v exceeds infinite-buffer overflow %v",
				buffer, res.Lower, overflow)
		}
		// The bound should also not be vacuous: same order of magnitude
		// for these short-memory models at moderate buffers.
		if overflow > 0 && res.Loss > 0 && overflow/res.Loss > 1e3 {
			t.Logf("note: bound is loose at buffer %v: overflow %v vs loss %v", buffer, overflow, res.Loss)
		}
	}
}

// TestMMFQDecayMatchesSolverTrend: as the buffer grows, the solver's loss
// should decay at (asymptotically) the MMFQ spectral decay rate for the
// same Markovian model.
func TestMMFQDecayMatchesSolverTrend(t *testing.T) {
	marg := dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	h, err := dist.NewHyperexponential([]float64{1}, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	c := 1.25
	mod := renewalAsMMFQ(marg, h)
	sol, err := mmfq.Solve(mod, c)
	if err != nil {
		t.Fatal(err)
	}
	eta := sol.DecayRate()
	if eta <= 0 {
		t.Fatalf("decay rate %v", eta)
	}
	// Loss at two buffers: the log-ratio per unit buffer approaches −η.
	losses := make([]float64, 2)
	buffers := []float64{0.5, 1.0}
	for i, b := range buffers {
		model, err := solver.NewModel(marg, h, c, b)
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.SolveModel(model, solver.Config{RelGap: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		if res.Loss <= 0 {
			t.Skipf("loss underflow at buffer %v", b)
		}
		losses[i] = res.Loss
	}
	slope := (logOf(losses[1]) - logOf(losses[0])) / (buffers[1] - buffers[0])
	if slope > -0.5*eta || slope < -2*eta {
		t.Fatalf("solver decay slope %v vs spectral −η = %v", slope, -eta)
	}
}

func logOf(x float64) float64 {
	if x <= 0 {
		return -1e300
	}
	return math.Log(x)
}
