// Package chaos is a TCP fault-injection proxy for exercising the fleet
// stack the way a bad network would: added latency, connection resets
// mid-exchange, truncated responses, and black-holed connections that
// accept and then say nothing. It exists so the e2e suite can assert the
// strong property — a sweep pointed through a chaotic proxy produces
// byte-identical results to a clean run — rather than hoping resilience
// code works from unit tests alone.
//
// Faults are counter-based and therefore deterministic: the n-th accepted
// connection (1-based) misbehaves iff n is a multiple of the corresponding
// *Every knob, with priority blackhole > reset > truncate when several
// match. Determinism matters because the e2e asserts exact recovery, not
// "usually recovers".
package chaos

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the proxy. Zero values disable each fault.
type Config struct {
	// Upstream is the host:port the proxy forwards healthy traffic to.
	Upstream string
	// Listen is the address to listen on; default "127.0.0.1:0" (ephemeral).
	Listen string
	// Latency is added once per connection before dialing upstream,
	// simulating a slow path (applies to faulty connections too).
	Latency time.Duration
	// ResetEvery sends a TCP RST on every n-th connection (0 = never).
	ResetEvery int
	// TruncateEvery forwards only TruncateBytes of the upstream response on
	// every n-th connection, then resets both sides (0 = never).
	TruncateEvery int
	// TruncateBytes is the response prefix length delivered before a
	// truncation reset. Default 512.
	TruncateBytes int64
	// BlackholeEvery accepts and then ignores every n-th connection until
	// the proxy closes (0 = never) — the client sees pure silence and must
	// save itself with a deadline.
	BlackholeEvery int
	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// Stats counts the proxy's decisions. All fields are totals since start.
type Stats struct {
	Accepted    int64
	Proxied     int64 // connections forwarded without any fault
	Resets      int64
	Truncations int64
	Blackholes  int64
}

// Proxy is a running fault injector. Create with New, stop with Close.
type Proxy struct {
	cfg Config
	ln  net.Listener

	accepted    atomic.Int64
	proxied     atomic.Int64
	resets      atomic.Int64
	truncations atomic.Int64
	blackholes  atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New starts the proxy listening (use Addr for the bound address).
func New(cfg Config) (*Proxy, error) {
	if cfg.Upstream == "" {
		return nil, errors.New("chaos: Upstream is required")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.TruncateBytes <= 0 {
		cfg.TruncateBytes = 512
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Stats returns a snapshot of fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted:    p.accepted.Load(),
		Proxied:     p.proxied.Load(),
		Resets:      p.resets.Load(),
		Truncations: p.truncations.Load(),
		Blackholes:  p.blackholes.Load(),
	}
}

// Close stops accepting, severs every live connection (black holes
// included), and waits for the handlers to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// track registers a live connection for Close to sever; returns false when
// the proxy is already closing (caller must drop the conn).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n := p.accepted.Add(1)
		if !p.track(conn) {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.untrack(conn)
			p.handle(conn, n)
		}()
	}
}

// every reports whether the n-th connection trips a fault with period k.
func every(n int64, k int) bool { return k > 0 && n%int64(k) == 0 }

// rst closes a connection with SO_LINGER=0 so the peer sees a hard RST
// instead of a polite FIN — the difference between "server hung up" and
// "network ate my connection", and exactly what resilient clients must
// treat as a transport failure.
func rst(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (p *Proxy) handle(conn net.Conn, n int64) {
	if p.cfg.Latency > 0 {
		time.Sleep(p.cfg.Latency)
	}
	switch {
	case every(n, p.cfg.BlackholeEvery):
		p.blackholes.Add(1)
		p.logf("chaos: conn %d black-holed", n)
		// Swallow whatever the client sends and never answer; the conn dies
		// when the client gives up or the proxy closes.
		io.Copy(io.Discard, conn)
		conn.Close()
	case every(n, p.cfg.ResetEvery):
		p.resets.Add(1)
		p.logf("chaos: conn %d reset", n)
		// Let the request bytes arrive so the client is mid-exchange, then
		// yank the floor out.
		conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		buf := make([]byte, 1)
		conn.Read(buf)
		rst(conn)
	case every(n, p.cfg.TruncateEvery):
		p.truncations.Add(1)
		p.logf("chaos: conn %d truncated after %d bytes", n, p.cfg.TruncateBytes)
		p.truncate(conn)
	default:
		p.proxied.Add(1)
		p.forward(conn)
	}
}

// truncate forwards the request upstream, relays only TruncateBytes of the
// response, then resets both legs.
func (p *Proxy) truncate(conn net.Conn) {
	up, err := net.Dial("tcp", p.cfg.Upstream)
	if err != nil {
		rst(conn)
		return
	}
	if !p.track(up) {
		rst(conn)
		return
	}
	defer p.untrack(up)
	done := make(chan struct{})
	go func() {
		io.Copy(up, conn) // request flows intact
		close(done)
	}()
	io.CopyN(conn, up, p.cfg.TruncateBytes)
	rst(conn)
	rst(up)
	<-done
}

// forward is the no-fault path: splice both directions until either side
// closes.
func (p *Proxy) forward(conn net.Conn) {
	up, err := net.Dial("tcp", p.cfg.Upstream)
	if err != nil {
		rst(conn)
		return
	}
	if !p.track(up) {
		rst(conn)
		return
	}
	defer p.untrack(up)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		io.Copy(up, conn)
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	go func() {
		defer wg.Done()
		io.Copy(conn, up)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	wg.Wait()
	conn.Close()
	up.Close()
}
