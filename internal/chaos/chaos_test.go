package chaos

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// upstream starts a plain HTTP server answering every request with a
// fixed body longer than the truncation cutoff used in tests.
func upstream(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	body := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv, body
}

// client returns an http.Client that never reuses connections, so each
// request maps to exactly one proxy connection and the counter-based
// faults stay predictable.
func client(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

func get(c *http.Client, url string) (string, error) {
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// TestForwardCleanly: with no faults configured the proxy is transparent.
func TestForwardCleanly(t *testing.T) {
	srv, body := upstream(t)
	p, err := New(Config{Upstream: srv.Listener.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3; i++ {
		got, err := get(client(5*time.Second), p.URL())
		if err != nil || got != body {
			t.Fatalf("request %d: len=%d err=%v", i, len(got), err)
		}
	}
	if s := p.Stats(); s.Proxied != 3 || s.Resets+s.Truncations+s.Blackholes != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestResetEvery: every second connection dies with a transport-level
// error; the others pass untouched.
func TestResetEvery(t *testing.T) {
	srv, body := upstream(t)
	p, err := New(Config{Upstream: srv.Listener.Addr().String(), ResetEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := client(5 * time.Second)
	var failures int
	for i := 1; i <= 4; i++ {
		got, err := get(c, p.URL())
		if i%2 == 0 {
			if err == nil {
				t.Fatalf("conn %d: want reset, got %d bytes", i, len(got))
			}
			failures++
		} else if err != nil || got != body {
			t.Fatalf("conn %d: err=%v", i, err)
		}
	}
	if s := p.Stats(); s.Resets != 2 || s.Proxied != 2 || failures != 2 {
		t.Fatalf("stats = %+v, failures = %d", s, failures)
	}
}

// TestTruncateEvery: the client receives a response prefix and then a
// reset — a read error, never a silently short success.
func TestTruncateEvery(t *testing.T) {
	srv, _ := upstream(t)
	p, err := New(Config{Upstream: srv.Listener.Addr().String(), TruncateEvery: 1, TruncateBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	_, err = get(client(5*time.Second), p.URL())
	if err == nil {
		t.Fatal("truncated response read without error")
	}
	if s := p.Stats(); s.Truncations != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestBlackholeEvery: the connection hangs until the client's own timeout
// saves it — the proxy never answers.
func TestBlackholeEvery(t *testing.T) {
	srv, _ := upstream(t)
	p, err := New(Config{Upstream: srv.Listener.Addr().String(), BlackholeEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	_, err = get(client(300*time.Millisecond), p.URL())
	if err == nil {
		t.Fatal("black-holed request succeeded")
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("failed after %v, want to hang until the client deadline", elapsed)
	}
	if s := p.Stats(); s.Blackholes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestLatency: the added delay is observable on the clean path.
func TestLatency(t *testing.T) {
	srv, body := upstream(t)
	p, err := New(Config{Upstream: srv.Listener.Addr().String(), Latency: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	got, err := get(client(5*time.Second), p.URL())
	if err != nil || got != body {
		t.Fatalf("err=%v", err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("round trip took %v, want >= injected 150ms", elapsed)
	}
}

// TestPriorityBlackholeOverReset: when both knobs match the same
// connection, the blackhole wins (strictly nastier fault).
func TestPriorityBlackholeOverReset(t *testing.T) {
	srv, _ := upstream(t)
	p, err := New(Config{Upstream: srv.Listener.Addr().String(), BlackholeEvery: 1, ResetEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	get(client(200*time.Millisecond), p.URL())
	if s := p.Stats(); s.Blackholes != 1 || s.Resets != 0 {
		t.Fatalf("stats = %+v, want the blackhole to shadow the reset", s)
	}
}

// TestCloseSeversBlackholes: Close must not hang waiting for a black-holed
// connection that will never finish on its own.
func TestCloseSeversBlackholes(t *testing.T) {
	srv, _ := upstream(t)
	p, err := New(Config{Upstream: srv.Listener.Addr().String(), BlackholeEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := get(client(time.Minute), p.URL())
		errc <- err
	}()
	// Wait until the proxy has swallowed the connection.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Blackholes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blackhole never engaged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a black-holed connection")
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("black-holed client somehow succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client still blocked after proxy Close")
	}
}

// TestUpstreamDown: a dead upstream surfaces as a reset, not a hang.
func TestUpstreamDown(t *testing.T) {
	// Grab a port that nothing listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	p, err := New(Config{Upstream: dead})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, p.URL(), nil)
	_, err = client(5 * time.Second).Do(req)
	if err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a prompt connection error", err)
	}
}

// TestNewRequiresUpstream: config validation.
func TestNewRequiresUpstream(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing upstream accepted")
	}
}
