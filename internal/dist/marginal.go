package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lrd/internal/numerics"
)

// Marginal is a finite discrete distribution over fluid rates: the pair
// (Λ, Π) of the paper, with Pr{λ = Rates[i]} = Probs[i]. Rates are strictly
// increasing and Probs sum to one. The zero value is not usable; construct
// with NewMarginal or FromSamples.
type Marginal struct {
	rates []float64
	probs []float64
}

// NewMarginal builds a Marginal from parallel rate/probability slices. The
// inputs are copied, co-sorted by rate, equal rates merged, zero-probability
// atoms dropped, and probabilities renormalized to sum to exactly one (a
// relative drift of up to 1e-9 is tolerated; anything larger is an error).
func NewMarginal(rates, probs []float64) (Marginal, error) {
	if len(rates) != len(probs) {
		return Marginal{}, errors.New("dist: NewMarginal length mismatch")
	}
	if len(rates) == 0 {
		return Marginal{}, errors.New("dist: NewMarginal requires at least one atom")
	}
	type atom struct{ r, p float64 }
	atoms := make([]atom, 0, len(rates))
	for i := range rates {
		if math.IsNaN(rates[i]) || math.IsInf(rates[i], 0) {
			return Marginal{}, fmt.Errorf("dist: rate %v is not finite", rates[i])
		}
		if probs[i] < 0 || math.IsNaN(probs[i]) {
			return Marginal{}, fmt.Errorf("dist: probability %v is negative or NaN", probs[i])
		}
		if probs[i] == 0 {
			continue
		}
		atoms = append(atoms, atom{rates[i], probs[i]})
	}
	if len(atoms) == 0 {
		return Marginal{}, errors.New("dist: all atoms have zero probability")
	}
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].r < atoms[j].r })
	merged := atoms[:1]
	for _, a := range atoms[1:] {
		if a.r == merged[len(merged)-1].r {
			merged[len(merged)-1].p += a.p
		} else {
			merged = append(merged, a)
		}
	}
	var total numerics.Accumulator
	for _, a := range merged {
		total.Add(a.p)
	}
	sum := total.Sum()
	if math.Abs(sum-1) > 1e-9 {
		return Marginal{}, fmt.Errorf("dist: probabilities sum to %v, want 1", sum)
	}
	m := Marginal{
		rates: make([]float64, len(merged)),
		probs: make([]float64, len(merged)),
	}
	for i, a := range merged {
		m.rates[i] = a.r
		m.probs[i] = a.p / sum
	}
	return m, nil
}

// MustMarginal is NewMarginal that panics on error; intended for literals in
// examples and tests.
func MustMarginal(rates, probs []float64) Marginal {
	m, err := NewMarginal(rates, probs)
	if err != nil {
		panic(err)
	}
	return m
}

// FromSamples builds the constant-bin-size histogram marginal the paper
// derives from its traces (§III, 50 bins): the sample range is split into
// bins equal-width intervals and each bin's probability mass is placed at
// its midpoint. Degenerate all-equal samples yield a single atom.
func FromSamples(xs []float64, bins int) (Marginal, error) {
	if len(xs) == 0 {
		return Marginal{}, errors.New("dist: FromSamples on empty data")
	}
	if bins < 1 {
		return Marginal{}, errors.New("dist: FromSamples requires bins >= 1")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Marginal{}, errors.New("dist: FromSamples on non-finite data")
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if lo == hi {
		return NewMarginal([]float64{lo}, []float64{1})
	}
	w := (hi - lo) / float64(bins)
	counts := make([]float64, bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i >= bins {
			i = bins - 1 // x == hi lands here
		}
		counts[i]++
	}
	rates := make([]float64, 0, bins)
	probs := make([]float64, 0, bins)
	n := float64(len(xs))
	for i, c := range counts {
		if c == 0 {
			continue
		}
		rates = append(rates, lo+(float64(i)+0.5)*w)
		probs = append(probs, c/n)
	}
	return NewMarginal(rates, probs)
}

// Len returns the number of atoms.
func (m Marginal) Len() int { return len(m.rates) }

// Rate returns the i-th atom's rate. Atoms are in strictly increasing
// rate order.
func (m Marginal) Rate(i int) float64 { return m.rates[i] }

// Prob returns the i-th atom's probability.
func (m Marginal) Prob(i int) float64 { return m.probs[i] }

// Rates returns a copy of the rate vector Λ.
func (m Marginal) Rates() []float64 { return append([]float64(nil), m.rates...) }

// Probs returns a copy of the probability vector Π.
func (m Marginal) Probs() []float64 { return append([]float64(nil), m.probs...) }

// Mean returns λ̄ = Π Λ 1ᵀ (Eq. 2).
func (m Marginal) Mean() float64 {
	var acc numerics.Accumulator
	for i := range m.rates {
		acc.Add(m.rates[i] * m.probs[i])
	}
	return acc.Sum()
}

// SecondMoment returns Π Λ² 1ᵀ.
func (m Marginal) SecondMoment() float64 {
	var acc numerics.Accumulator
	for i := range m.rates {
		acc.Add(m.rates[i] * m.rates[i] * m.probs[i])
	}
	return acc.Sum()
}

// Variance returns σ² = Π Λ² 1ᵀ − (Π Λ 1ᵀ)² (Eq. 4), the variance of the
// instantaneous fluid rate.
func (m Marginal) Variance() float64 {
	mu := m.Mean()
	return m.SecondMoment() - mu*mu
}

// Min and Max return the smallest and largest rates.
func (m Marginal) Min() float64 { return m.rates[0] }

// Max returns the largest rate.
func (m Marginal) Max() float64 { return m.rates[len(m.rates)-1] }

// CDF returns Pr{λ <= x}.
func (m Marginal) CDF(x float64) float64 {
	var acc float64
	for i, r := range m.rates {
		if r > x {
			break
		}
		acc += m.probs[i]
	}
	return math.Min(acc, 1)
}

// Quantile returns the smallest rate r with CDF(r) >= u, for u in (0, 1].
// u <= 0 maps to the smallest rate.
func (m Marginal) Quantile(u float64) float64 {
	var acc float64
	for i, p := range m.probs {
		acc += p
		if acc >= u {
			return m.rates[i]
		}
	}
	return m.rates[len(m.rates)-1]
}

// Sample draws one rate using rng.
func (m Marginal) Sample(rng *rand.Rand) float64 {
	return m.Quantile(rng.Float64())
}

// Scale applies the paper's first marginal transformation (§III, second
// experiment set): each rate moves to λ̄ + a·(λ − λ̄), shrinking (a < 1) or
// stretching (a > 1) the distribution around its mean while keeping the mean
// fixed. The variance scales by a². Note that a > 1 can produce negative
// rates when the original distribution has mass close to zero; the fluid
// queue recursion remains well defined (a negative rate drains the buffer
// faster), matching the paper's purely second-order treatment.
func (m Marginal) Scale(a float64) Marginal {
	mu := m.Mean()
	rates := make([]float64, len(m.rates))
	for i, r := range m.rates {
		rates[i] = mu + a*(r-mu)
	}
	out, err := NewMarginal(rates, m.Probs())
	if err != nil {
		// Unreachable: scaling preserves validity (distinct rates may merge
		// only when a == 0, which NewMarginal handles by merging atoms).
		panic(err)
	}
	return out
}

// Shift translates every rate by delta, preserving probabilities.
func (m Marginal) Shift(delta float64) Marginal {
	rates := make([]float64, len(m.rates))
	for i, r := range m.rates {
		rates[i] = r + delta
	}
	out, err := NewMarginal(rates, m.Probs())
	if err != nil {
		panic(err)
	}
	return out
}

// Superpose applies the paper's second marginal transformation (§III): the
// n-fold convolution of the marginal renormalized to the original mean.
// It models the per-stream load of n statistically multiplexed copies of
// the source, i.e. the distribution of (λ⁽¹⁾+…+λ⁽ⁿ⁾)/n. The mean is
// unchanged and the variance drops by a factor n.
//
// To keep the atom count bounded the distribution is first resampled onto a
// regular grid of gridBins points (the paper's own marginals are 50-bin
// histograms, so gridBins ≈ 64 loses nothing); the convolution is then an
// exact discrete convolution on that grid. The result has up to
// n·(gridBins−1)+1 atoms; callers who need a smaller support can Rebin it.
func (m Marginal) Superpose(n, gridBins int) (Marginal, error) {
	if n < 1 {
		return Marginal{}, errors.New("dist: Superpose requires n >= 1")
	}
	if n == 1 {
		return m, nil
	}
	if gridBins < 2 {
		return Marginal{}, errors.New("dist: Superpose requires gridBins >= 2")
	}
	lo, hi := m.Min(), m.Max()
	if lo == hi {
		return m, nil // deterministic rate: superposition is a no-op
	}
	w := (hi - lo) / float64(gridBins-1)
	grid := make([]float64, gridBins)
	for i, r := range m.rates {
		// Split each atom's mass linearly between the two neighbouring grid
		// points so the grid marginal has exactly the original mean.
		pos := (r - lo) / w
		j := int(math.Floor(pos))
		if j >= gridBins-1 {
			grid[gridBins-1] += m.probs[i]
			continue
		}
		frac := pos - float64(j)
		grid[j] += m.probs[i] * (1 - frac)
		grid[j+1] += m.probs[i] * frac
	}
	pmf := grid
	for k := 1; k < n; k++ {
		pmf = convolvePMF(pmf, grid)
	}
	rates := make([]float64, 0, len(pmf))
	probs := make([]float64, 0, len(pmf))
	for i, p := range pmf {
		if p <= 0 {
			continue
		}
		// Sum of n grid values lo + j·w, divided by n.
		rates = append(rates, (float64(n)*lo+float64(i)*w)/float64(n))
		probs = append(probs, p)
	}
	return NewMarginal(rates, probs)
}

// convolvePMF is the direct discrete convolution of two pmf vectors on a
// shared regular grid. Sizes here are small (≤ a few thousand), so the
// direct algorithm is exact and fast enough.
func convolvePMF(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// Rebin compresses the marginal to at most bins atoms by histogramming its
// mass over equal-width intervals of the support; each new atom sits at the
// probability-weighted mean of the mass in its interval, so the overall mean
// is preserved exactly (up to roundoff) and the variance decreases at most
// by the within-bin spread.
func (m Marginal) Rebin(bins int) (Marginal, error) {
	if bins < 1 {
		return Marginal{}, errors.New("dist: Rebin requires bins >= 1")
	}
	if len(m.rates) <= bins {
		return m, nil
	}
	lo, hi := m.Min(), m.Max()
	w := (hi - lo) / float64(bins)
	mass := make([]float64, bins)
	moment := make([]float64, bins)
	for i, r := range m.rates {
		j := int((r - lo) / w)
		if j >= bins {
			j = bins - 1
		}
		mass[j] += m.probs[i]
		moment[j] += m.probs[i] * r
	}
	rates := make([]float64, 0, bins)
	probs := make([]float64, 0, bins)
	for j := range mass {
		if mass[j] == 0 {
			continue
		}
		rates = append(rates, moment[j]/mass[j])
		probs = append(probs, mass[j])
	}
	return NewMarginal(rates, probs)
}

// String renders a short human-readable summary.
func (m Marginal) String() string {
	return fmt.Sprintf("Marginal{atoms: %d, mean: %.4g, sd: %.4g, range: [%.4g, %.4g]}",
		m.Len(), m.Mean(), math.Sqrt(m.Variance()), m.Min(), m.Max())
}
