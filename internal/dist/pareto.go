// Package dist provides the probability distributions used by the
// cutoff-correlated fluid model of Grossglauser & Bolot (SIGCOMM '96):
// the truncated Pareto interarrival-time law (Eq. 6 of the paper), its
// residual-life distribution (Eq. 7), and finite discrete marginal rate
// distributions with the scaling and superposition transforms studied in
// the paper's second and third experiment sets.
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lrd/internal/numerics"
)

// TruncatedPareto is the interarrival-time distribution of Eq. (6):
//
//	Pr{T > t} = ((t+θ)/θ)^(−α)  for 0 <= t < Tc,  0 for t >= Tc
//
// It is a Pareto law with scale θ and tail index α, truncated at the cutoff
// lag Tc, where the remaining tail mass ((Tc+θ)/θ)^(−α) collapses into an
// atom at Tc. Cutoff may be math.Inf(1), recovering the plain Pareto law.
// The paper uses 1 < α < 2, the range in which the untruncated law has a
// finite mean but infinite variance (the long-range-dependence regime
// H = (3−α)/2 ∈ (1/2, 1)).
type TruncatedPareto struct {
	Theta  float64 // scale θ > 0
	Alpha  float64 // tail index α > 1
	Cutoff float64 // truncation lag Tc > 0 (math.Inf(1) for untruncated)
}

// Validate reports whether the parameters define a proper distribution.
func (p TruncatedPareto) Validate() error {
	if !(p.Theta > 0) {
		return fmt.Errorf("dist: TruncatedPareto theta = %v, need > 0", p.Theta)
	}
	if !(p.Alpha > 1) {
		return fmt.Errorf("dist: TruncatedPareto alpha = %v, need > 1", p.Alpha)
	}
	if !(p.Cutoff > 0) {
		return fmt.Errorf("dist: TruncatedPareto cutoff = %v, need > 0", p.Cutoff)
	}
	return nil
}

// CCDF returns Pr{T > t}. Note the atom at Cutoff: CCDF is right-continuous
// with CCDF(Cutoff⁻) = AtomMass and CCDF(t) = 0 for t >= Cutoff.
func (p TruncatedPareto) CCDF(t float64) float64 {
	if t < 0 {
		return 1
	}
	if t >= p.Cutoff {
		return 0
	}
	return math.Pow((t+p.Theta)/p.Theta, -p.Alpha)
}

// CDF returns Pr{T <= t}.
func (p TruncatedPareto) CDF(t float64) float64 { return 1 - p.CCDF(t) }

// AtomMass returns the probability concentrated at the cutoff lag,
// Pr{T = Cutoff} = ((Tc+θ)/θ)^(−α); zero when Cutoff is infinite.
func (p TruncatedPareto) AtomMass() float64 {
	if math.IsInf(p.Cutoff, 1) {
		return 0
	}
	return math.Pow((p.Cutoff+p.Theta)/p.Theta, -p.Alpha)
}

// Mean returns E[T] per Eq. (25) of the paper:
//
//	E[T] = θ/(α−1) · [1 − (Tc/θ + 1)^(1−α)]
//
// For an infinite cutoff this reduces to θ/(α−1).
func (p TruncatedPareto) Mean() float64 {
	if math.IsInf(p.Cutoff, 1) {
		return p.Theta / (p.Alpha - 1)
	}
	return p.Theta / (p.Alpha - 1) * (1 - math.Pow(p.Cutoff/p.Theta+1, 1-p.Alpha))
}

// SecondMoment returns E[T²] = 2∫₀^Tc t·Pr{T>t} dt in closed form. It is
// finite for any finite cutoff; for an infinite cutoff it is finite only
// when α > 2 and +Inf otherwise.
func (p TruncatedPareto) SecondMoment() float64 {
	th, al := p.Theta, p.Alpha
	if math.IsInf(p.Cutoff, 1) {
		if al <= 2 {
			return math.Inf(1)
		}
		// 2θ^α ∫_θ^∞ (u−θ)u^(−α) du with u = t+θ.
		return 2 * th * th * (1/(al-2) - 1/(al-1))
	}
	hi := p.Cutoff + th
	// 2θ^α [ u^(2−α)/(2−α) − θ·u^(1−α)/(1−α) ] from θ to Tc+θ,
	// with the α = 2 term replaced by log(u).
	f := func(u float64) float64 {
		var first float64
		if al == 2 {
			first = math.Log(u)
		} else {
			first = math.Pow(u, 2-al) / (2 - al)
		}
		return first - th*math.Pow(u, 1-al)/(1-al)
	}
	return 2 * math.Pow(th, al) * (f(hi) - f(th))
}

// Variance returns Var[T].
func (p TruncatedPareto) Variance() float64 {
	m2 := p.SecondMoment()
	if math.IsInf(m2, 1) {
		return m2
	}
	m := p.Mean()
	return m2 - m*m
}

// Quantile returns the u-quantile of T for u in [0, 1): the smallest t with
// CDF(t) >= u. Quantiles in the atom's range map to Cutoff.
func (p TruncatedPareto) Quantile(u float64) float64 {
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		return p.Cutoff
	}
	// Invert 1 − ((t+θ)/θ)^(−α) = u.
	t := p.Theta * (math.Pow(1-u, -1/p.Alpha) - 1)
	if t >= p.Cutoff {
		return p.Cutoff
	}
	return t
}

// Sample draws one interarrival time using rng.
func (p TruncatedPareto) Sample(rng *rand.Rand) float64 {
	return p.Quantile(rng.Float64())
}

// ResidualCCDF returns Pr{τ_res >= t}, the probability that the residual
// life of the stationary renewal interval exceeds t (Eq. 7):
//
//	[ (t+θ)^(1−α) − (Tc+θ)^(1−α) ] / [ θ^(1−α) − (Tc+θ)^(1−α) ]  for t < Tc
//
// and 0 beyond the cutoff. By Eq. (3) the normalized autocorrelation of the
// fluid rate process equals this function.
func (p TruncatedPareto) ResidualCCDF(t float64) float64 {
	if t <= 0 {
		return 1
	}
	if t >= p.Cutoff {
		return 0
	}
	e := 1 - p.Alpha
	if math.IsInf(p.Cutoff, 1) {
		return math.Pow((t+p.Theta)/p.Theta, e)
	}
	num := math.Pow(t+p.Theta, e) - math.Pow(p.Cutoff+p.Theta, e)
	den := math.Pow(p.Theta, e) - math.Pow(p.Cutoff+p.Theta, e)
	return num / den
}

// HurstFromAlpha maps the Pareto tail index to the Hurst parameter of the
// asymptotically second-order self-similar process obtained as Tc → ∞:
// H = (3−α)/2 (paper, §II).
func HurstFromAlpha(alpha float64) float64 { return (3 - alpha) / 2 }

// AlphaFromHurst is the inverse map α = 3 − 2H.
func AlphaFromHurst(h float64) float64 { return 3 - 2*h }

// CalibrateTheta returns the scale θ that makes the *untruncated* mean
// interarrival time θ/(α−1) equal meanEpoch, the procedure the paper uses
// to fit θ from the traces' mean epoch durations (matching Eq. 25 at
// Tc = ∞).
func CalibrateTheta(alpha, meanEpoch float64) (float64, error) {
	if !(alpha > 1) {
		return 0, fmt.Errorf("dist: CalibrateTheta alpha = %v, need > 1", alpha)
	}
	if !(meanEpoch > 0) {
		return 0, errors.New("dist: CalibrateTheta requires positive mean epoch")
	}
	return (alpha - 1) * meanEpoch, nil
}

// ResidualQuantile returns the u-quantile of the stationary residual life
// τ_res, inverting Eq. (7) in closed form:
//
//	(t+θ)^(1−α) = (1−u)·θ^(1−α) + u·(Tc+θ)^(1−α)
//
// For an infinite cutoff the second term vanishes. Sampling from this law
// starts a sample path in the stationary regime (the first epoch of a
// stationary renewal process is residual-life distributed).
func (p TruncatedPareto) ResidualQuantile(u float64) float64 {
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		return p.Cutoff
	}
	e := 1 - p.Alpha
	head := math.Pow(p.Theta, e)
	tail := 0.0
	if !math.IsInf(p.Cutoff, 1) {
		tail = math.Pow(p.Cutoff+p.Theta, e)
	}
	v := (1-u)*head + u*tail
	t := math.Pow(v, 1/e) - p.Theta
	return numerics.Clamp(t, 0, p.Cutoff)
}

// SampleResidual draws one stationary residual life.
func (p TruncatedPareto) SampleResidual(rng *rand.Rand) float64 {
	return p.ResidualQuantile(rng.Float64())
}
