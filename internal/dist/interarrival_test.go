package dist

import (
	"math"
	"math/rand"
	"testing"

	"lrd/internal/numerics"
)

func TestTruncatedParetoIntegralCCDF(t *testing.T) {
	p := TruncatedPareto{Theta: 0.02, Alpha: 1.2, Cutoff: 5}
	// IntegralCCDF(0) = Mean (Eq. 25).
	if !numerics.AlmostEqual(p.IntegralCCDF(0), p.Mean(), 1e-12) {
		t.Fatalf("IntegralCCDF(0) = %v, Mean = %v", p.IntegralCCDF(0), p.Mean())
	}
	// Matches quadrature at interior points.
	for _, a := range []float64{0.01, 0.5, 2, 4.9} {
		want := numerics.Trapezoid(p.CCDF, a, p.Cutoff, 1_000_000)
		if !numerics.AlmostEqual(p.IntegralCCDF(a), want, 1e-5) {
			t.Errorf("a=%v: %v vs quadrature %v", a, p.IntegralCCDF(a), want)
		}
	}
	// Zero at and beyond the cutoff; negative a clamps to 0.
	if p.IntegralCCDF(5) != 0 || p.IntegralCCDF(7) != 0 {
		t.Fatal("IntegralCCDF beyond the cutoff must be 0")
	}
	if p.IntegralCCDF(-1) != p.Mean() {
		t.Fatal("negative a should clamp to 0")
	}
	if p.Upper() != 5 {
		t.Fatalf("Upper = %v, want the cutoff", p.Upper())
	}
}

func TestTruncatedParetoCCDFAtLeast(t *testing.T) {
	p := TruncatedPareto{Theta: 0.5, Alpha: 1.5, Cutoff: 3}
	if p.CCDFAtLeast(0) != 1 || p.CCDFAtLeast(-1) != 1 {
		t.Fatal("Pr{T >= 0} must be 1")
	}
	// Below the cutoff the law is continuous: >= equals >.
	if p.CCDFAtLeast(1) != p.CCDF(1) {
		t.Fatal("continuous region: CCDFAtLeast must equal CCDF")
	}
	// At the cutoff: the atom.
	if !numerics.AlmostEqual(p.CCDFAtLeast(3), p.AtomMass(), 1e-15) {
		t.Fatalf("Pr{T >= Tc} = %v, atom = %v", p.CCDFAtLeast(3), p.AtomMass())
	}
	if p.CCDFAtLeast(3.1) != 0 {
		t.Fatal("Pr{T >= t} beyond the cutoff must be 0")
	}
}

// TestCCDFBothBitwise is the fused-evaluation contract: each component of
// CCDFBoth must be bitwise equal to the corresponding separate call, at
// every regime boundary (negative, zero, continuous region, the cutoff
// atom, beyond the cutoff) — the solver's cdf tabulation relies on this to
// halve law evaluations without perturbing results.
func TestCCDFBothBitwise(t *testing.T) {
	p := TruncatedPareto{Theta: 0.5, Alpha: 1.5, Cutoff: 3}
	pinf := TruncatedPareto{Theta: 0.5, Alpha: 1.5, Cutoff: math.Inf(1)}
	h, err := NewHyperexponential([]float64{0.3, 0.7}, []float64{0.1, 2})
	if err != nil {
		t.Fatal(err)
	}
	laws := []interface {
		CCDF(float64) float64
		CCDFAtLeast(float64) float64
		CCDFBoth(float64) (float64, float64)
	}{p, pinf, h}
	points := []float64{-1, 0, 1e-9, 0.5, 1, 2.999, 3, 3.1, 100}
	for _, law := range laws {
		for _, x := range points {
			gt, ge := law.CCDFBoth(x)
			if gt != law.CCDF(x) || ge != law.CCDFAtLeast(x) {
				t.Errorf("%T CCDFBoth(%v) = (%v, %v), want (%v, %v)",
					law, x, gt, ge, law.CCDF(x), law.CCDFAtLeast(x))
			}
		}
	}
}

// TestIntegralCCDFFuncBitwise: the curried integral must be bitwise equal
// to IntegralCCDF everywhere, including clamped and beyond-cutoff inputs.
func TestIntegralCCDFFuncBitwise(t *testing.T) {
	p := TruncatedPareto{Theta: 0.5, Alpha: 1.5, Cutoff: 3}
	pinf := TruncatedPareto{Theta: 0.5, Alpha: 1.5, Cutoff: math.Inf(1)}
	h, err := NewHyperexponential([]float64{0.3, 0.7}, []float64{0.1, 2})
	if err != nil {
		t.Fatal(err)
	}
	laws := []interface {
		IntegralCCDF(float64) float64
		IntegralCCDFFunc() func(float64) float64
	}{p, pinf, h}
	points := []float64{-1, 0, 1e-9, 0.5, 1, 2.999, 3, 3.1, 100}
	for _, law := range laws {
		f := law.IntegralCCDFFunc()
		for _, x := range points {
			if f(x) != law.IntegralCCDF(x) {
				t.Errorf("%T IntegralCCDFFunc()(%v) = %v, want %v", law, x, f(x), law.IntegralCCDF(x))
			}
		}
	}
}

func TestNewHyperexponentialValidation(t *testing.T) {
	if _, err := NewHyperexponential(nil, nil); err == nil {
		t.Fatal("want error on empty mixture")
	}
	if _, err := NewHyperexponential([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want error on length mismatch")
	}
	if _, err := NewHyperexponential([]float64{-1, 2}, []float64{1, 1}); err == nil {
		t.Fatal("want error on negative weight")
	}
	if _, err := NewHyperexponential([]float64{1}, []float64{0}); err == nil {
		t.Fatal("want error on zero scale")
	}
	if _, err := NewHyperexponential([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("want error on zero total weight")
	}
	// Weights are renormalized.
	h, err := NewHyperexponential([]float64{2, 2}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(h.Weights[0], 0.5, 1e-12) {
		t.Fatalf("weights not renormalized: %v", h.Weights)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHyperexponentialMoments(t *testing.T) {
	h, err := NewHyperexponential([]float64{0.3, 0.7}, []float64{0.1, 2})
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.3*0.1 + 0.7*2
	if !numerics.AlmostEqual(h.Mean(), wantMean, 1e-12) {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
	wantM2 := 2 * (0.3*0.01 + 0.7*4)
	if !numerics.AlmostEqual(h.SecondMoment(), wantM2, 1e-12) {
		t.Fatalf("E[T²] = %v, want %v", h.SecondMoment(), wantM2)
	}
	if !numerics.AlmostEqual(h.Variance(), wantM2-wantMean*wantMean, 1e-12) {
		t.Fatalf("variance = %v", h.Variance())
	}
	if !math.IsInf(h.Upper(), 1) {
		t.Fatal("hyperexponential must be unbounded")
	}
}

func TestHyperexponentialCCDFAndIntegral(t *testing.T) {
	h, err := NewHyperexponential([]float64{0.5, 0.5}, []float64{0.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.CCDF(-1) != 1 || h.CCDF(0) != 1 {
		t.Fatal("CCDF at 0 must be 1")
	}
	// Against quadrature.
	for _, a := range []float64{0, 0.3, 2, 10} {
		want := numerics.Trapezoid(h.CCDF, a, 200, 2_000_000)
		if !numerics.AlmostEqual(h.IntegralCCDF(a), want, 1e-5) {
			t.Errorf("a=%v: IntegralCCDF %v vs quadrature %v", a, h.IntegralCCDF(a), want)
		}
	}
	// CCDFAtLeast coincides with CCDF away from 0 (continuous law).
	if h.CCDFAtLeast(1.5) != h.CCDF(1.5) {
		t.Fatal("continuous law: >= must equal >")
	}
	if h.CCDFAtLeast(0) != 1 {
		t.Fatal("Pr{T >= 0} = 1")
	}
}

func TestHyperexponentialResidualCCDF(t *testing.T) {
	h, err := NewHyperexponential([]float64{0.6, 0.4}, []float64{0.2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if h.ResidualCCDF(0) != 1 {
		t.Fatal("residual ccdf at 0 must be 1")
	}
	// The residual law is the scale-weighted mixture of the same
	// exponentials: r(t) = Σ (w_k τ_k/Σw_jτ_j)·e^{−t/τ_k}.
	norm := 0.6*0.2 + 0.4*3
	for _, tt := range []float64{0.1, 1, 5} {
		want := (0.6*0.2*math.Exp(-tt/0.2) + 0.4*3*math.Exp(-tt/3)) / norm
		if !numerics.AlmostEqual(h.ResidualCCDF(tt), want, 1e-12) {
			t.Errorf("t=%v: residual %v, want %v", tt, h.ResidualCCDF(tt), want)
		}
	}
}

func TestHyperexponentialSampleMoments(t *testing.T) {
	h, err := NewHyperexponential([]float64{0.25, 0.75}, []float64{0.05, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	var acc numerics.Accumulator
	n := 300000
	for i := 0; i < n; i++ {
		s := h.Sample(rng)
		if s < 0 {
			t.Fatalf("negative sample %v", s)
		}
		acc.Add(s)
	}
	if got := acc.Sum() / float64(n); !numerics.AlmostEqual(got, h.Mean(), 0.02) {
		t.Fatalf("sample mean %v, want ≈ %v", got, h.Mean())
	}
}

func TestHyperexponentialSingleComponentIsExponential(t *testing.T) {
	h, err := NewHyperexponential([]float64{1}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.5, 1, 4} {
		if !numerics.AlmostEqual(h.CCDF(tt), math.Exp(-tt/2), 1e-12) {
			t.Fatalf("CCDF(%v) = %v", tt, h.CCDF(tt))
		}
	}
	if h.String() == "" {
		t.Fatal("String should describe the mixture")
	}
}
