package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lrd/internal/numerics"
)

func twoPoint() Marginal {
	return MustMarginal([]float64{0, 10}, []float64{0.5, 0.5})
}

func TestNewMarginalValidation(t *testing.T) {
	if _, err := NewMarginal([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want error on length mismatch")
	}
	if _, err := NewMarginal(nil, nil); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := NewMarginal([]float64{1, 2}, []float64{0.5, 0.4}); err == nil {
		t.Fatal("want error on mass deficit")
	}
	if _, err := NewMarginal([]float64{1, 2}, []float64{-0.1, 1.1}); err == nil {
		t.Fatal("want error on negative probability")
	}
	if _, err := NewMarginal([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Fatal("want error on NaN rate")
	}
	if _, err := NewMarginal([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Fatal("want error when all mass is zero")
	}
}

func TestNewMarginalSortsAndMerges(t *testing.T) {
	m := MustMarginal([]float64{5, 1, 5, 3}, []float64{0.25, 0.25, 0.25, 0.25})
	if m.Len() != 3 {
		t.Fatalf("atoms = %d, want 3 (duplicates merged)", m.Len())
	}
	if m.Rate(0) != 1 || m.Rate(1) != 3 || m.Rate(2) != 5 {
		t.Fatalf("rates not sorted: %v", m.Rates())
	}
	if !numerics.AlmostEqual(m.Prob(2), 0.5, 1e-12) {
		t.Fatalf("merged prob = %v, want 0.5", m.Prob(2))
	}
}

func TestNewMarginalDropsZeroAtoms(t *testing.T) {
	m := MustMarginal([]float64{1, 2, 3}, []float64{0.5, 0, 0.5})
	if m.Len() != 2 {
		t.Fatalf("atoms = %d, want 2", m.Len())
	}
}

func TestMomentsTwoPoint(t *testing.T) {
	m := twoPoint()
	if m.Mean() != 5 {
		t.Fatalf("mean = %v", m.Mean())
	}
	if m.Variance() != 25 {
		t.Fatalf("var = %v", m.Variance())
	}
	if m.SecondMoment() != 50 {
		t.Fatalf("E[λ²] = %v", m.SecondMoment())
	}
	if m.Min() != 0 || m.Max() != 10 {
		t.Fatalf("range [%v, %v]", m.Min(), m.Max())
	}
}

func TestCDFAndQuantile(t *testing.T) {
	m := MustMarginal([]float64{1, 2, 4}, []float64{0.2, 0.3, 0.5})
	if got := m.CDF(0); got != 0 {
		t.Fatalf("CDF(0) = %v", got)
	}
	if got := m.CDF(1); !numerics.AlmostEqual(got, 0.2, 1e-12) {
		t.Fatalf("CDF(1) = %v", got)
	}
	if got := m.CDF(3); !numerics.AlmostEqual(got, 0.5, 1e-12) {
		t.Fatalf("CDF(3) = %v", got)
	}
	if got := m.CDF(4); got != 1 {
		t.Fatalf("CDF(4) = %v", got)
	}
	if got := m.Quantile(0.1); got != 1 {
		t.Fatalf("Quantile(0.1) = %v", got)
	}
	if got := m.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
	if got := m.Quantile(0.99); got != 4 {
		t.Fatalf("Quantile(0.99) = %v", got)
	}
}

func TestFromSamplesBasic(t *testing.T) {
	// 1000 samples uniform over [0, 1): the histogram mean should be ≈ 0.5
	// and every bin roughly equally loaded.
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	m, err := FromSamples(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 10 {
		t.Fatalf("atoms = %d, want 10", m.Len())
	}
	if !numerics.AlmostEqual(m.Mean(), 0.5, 0.05) {
		t.Fatalf("mean = %v", m.Mean())
	}
}

func TestFromSamplesDegenerate(t *testing.T) {
	m, err := FromSamples([]float64{7, 7, 7}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || m.Rate(0) != 7 {
		t.Fatalf("degenerate histogram = %v", m)
	}
	if _, err := FromSamples(nil, 10); err == nil {
		t.Fatal("want error on empty data")
	}
	if _, err := FromSamples([]float64{1}, 0); err == nil {
		t.Fatal("want error on zero bins")
	}
	if _, err := FromSamples([]float64{1, math.Inf(1)}, 4); err == nil {
		t.Fatal("want error on non-finite data")
	}
}

func TestScaleKeepsMeanScalesSD(t *testing.T) {
	m := MustMarginal([]float64{2, 6, 14}, []float64{0.3, 0.4, 0.3})
	for _, a := range []float64{0.5, 1.0, 1.5} {
		s := m.Scale(a)
		if !numerics.AlmostEqual(s.Mean(), m.Mean(), 1e-12) {
			t.Errorf("a=%v: mean %v != %v", a, s.Mean(), m.Mean())
		}
		if !numerics.AlmostEqual(s.Variance(), a*a*m.Variance(), 1e-9) {
			t.Errorf("a=%v: var %v != a²·%v", a, s.Variance(), m.Variance())
		}
	}
}

func TestScaleToZeroCollapses(t *testing.T) {
	m := twoPoint()
	s := m.Scale(0)
	if s.Len() != 1 || !numerics.AlmostEqual(s.Rate(0), 5, 1e-12) {
		t.Fatalf("Scale(0) = %v, want single atom at the mean", s)
	}
}

func TestShift(t *testing.T) {
	m := twoPoint().Shift(3)
	if m.Min() != 3 || m.Max() != 13 {
		t.Fatalf("shift wrong: [%v, %v]", m.Min(), m.Max())
	}
	if m.Mean() != 8 {
		t.Fatalf("mean = %v", m.Mean())
	}
}

func TestSuperposeMeanAndVariance(t *testing.T) {
	m := MustMarginal([]float64{0, 4, 10}, []float64{0.25, 0.5, 0.25})
	for _, n := range []int{1, 2, 5, 10} {
		s, err := m.Superpose(n, 128)
		if err != nil {
			t.Fatal(err)
		}
		if !numerics.AlmostEqual(s.Mean(), m.Mean(), 1e-6) {
			t.Errorf("n=%d: mean %v != %v", n, s.Mean(), m.Mean())
		}
		if !numerics.AlmostEqual(s.Variance(), m.Variance()/float64(n), 1e-3) {
			t.Errorf("n=%d: var %v != %v/n", n, s.Variance(), m.Variance())
		}
	}
}

func TestSuperposeErrors(t *testing.T) {
	m := twoPoint()
	if _, err := m.Superpose(0, 64); err == nil {
		t.Fatal("want error for n < 1")
	}
	if _, err := m.Superpose(2, 1); err == nil {
		t.Fatal("want error for gridBins < 2")
	}
}

func TestSuperposeDeterministicNoOp(t *testing.T) {
	m := MustMarginal([]float64{5}, []float64{1})
	s, err := m.Superpose(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Rate(0) != 5 {
		t.Fatalf("superpose of deterministic rate changed it: %v", s)
	}
}

func TestRebinPreservesMeanAndMass(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rates := make([]float64, 500)
	probs := make([]float64, 500)
	var sum float64
	for i := range rates {
		rates[i] = rng.Float64() * 100
		probs[i] = rng.Float64()
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	m := MustMarginal(rates, probs)
	r, err := m.Rebin(50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() > 50 {
		t.Fatalf("rebinned atoms = %d", r.Len())
	}
	if !numerics.AlmostEqual(r.Mean(), m.Mean(), 1e-9) {
		t.Fatalf("rebin changed mean: %v vs %v", r.Mean(), m.Mean())
	}
	if got := numerics.KahanSum(r.Probs()); !numerics.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("rebinned mass = %v", got)
	}
	// Rebin never increases variance beyond the original.
	if r.Variance() > m.Variance()+1e-9 {
		t.Fatalf("rebin increased variance: %v > %v", r.Variance(), m.Variance())
	}
}

func TestRebinNoOpWhenSmall(t *testing.T) {
	m := twoPoint()
	r, err := m.Rebin(50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != m.Len() {
		t.Fatal("rebin should be a no-op when already small")
	}
}

func TestSampleMatchesProbs(t *testing.T) {
	m := MustMarginal([]float64{1, 2, 3}, []float64{0.2, 0.3, 0.5})
	rng := rand.New(rand.NewSource(12))
	counts := map[float64]int{}
	n := 100000
	for i := 0; i < n; i++ {
		counts[m.Sample(rng)]++
	}
	for i := 0; i < m.Len(); i++ {
		got := float64(counts[m.Rate(i)]) / float64(n)
		if !numerics.AlmostEqual(got, m.Prob(i), 0.05) {
			t.Errorf("atom %v: freq %v, want %v", m.Rate(i), got, m.Prob(i))
		}
	}
}

// Property: FromSamples always yields unit mass and a mean within the
// sample range.
func TestFromSamplesProperty(t *testing.T) {
	f := func(seed int64, nbins uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		bins := int(nbins%100) + 1
		m, err := FromSamples(xs, bins)
		if err != nil {
			return false
		}
		mass := numerics.KahanSum(m.Probs())
		if !numerics.AlmostEqual(mass, 1, 1e-9) {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return m.Mean() >= lo-1e-9 && m.Mean() <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale(a) then Scale(1/a) restores the variance.
func TestScaleRoundTripProperty(t *testing.T) {
	m := MustMarginal([]float64{1, 3, 8, 20}, []float64{0.1, 0.4, 0.3, 0.2})
	f := func(raw float64) bool {
		a := 0.1 + math.Abs(math.Mod(raw, 3))
		s := m.Scale(a).Scale(1 / a)
		return numerics.AlmostEqual(s.Variance(), m.Variance(), 1e-6) &&
			numerics.AlmostEqual(s.Mean(), m.Mean(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummary(t *testing.T) {
	s := twoPoint().String()
	if s == "" {
		t.Fatal("String should describe the marginal")
	}
}
