package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lrd/internal/numerics"
)

// Interarrival is the contract the queue solver needs from an epoch-length
// distribution. The paper's procedure "can be used independent of the
// particular model" (§IV); this interface is that independence. A
// distribution is a law on [0, ∞) with finite mean, described by:
//
//   - CCDF(t)        = Pr{T > t}
//   - CCDFAtLeast(t) = Pr{T >= t} (differs from CCDF only at atoms)
//   - IntegralCCDF(a) = ∫_a^∞ Pr{T > t} dt, the partial mean that yields
//     the closed-form per-state expected loss E[W_l|Q=x]
//   - Mean()  = E[T] = IntegralCCDF(0)
//   - Upper() = essential supremum of T (math.Inf(1) if unbounded)
type Interarrival interface {
	CCDF(t float64) float64
	CCDFAtLeast(t float64) float64
	IntegralCCDF(a float64) float64
	Mean() float64
	Upper() float64
	Sample(rng *rand.Rand) float64
	Validate() error
}

// CCDFBoth returns Pr{T > t} and Pr{T >= t} in one evaluation. The two
// differ only at the law's atoms (t = 0 and t = Cutoff); everywhere else
// they share one power-law evaluation, so callers tabulating both (the
// solver's strict and non-strict work-increment cdfs) pay half the pow
// calls. Each component is bitwise equal to the corresponding CCDF /
// CCDFAtLeast call.
func (p TruncatedPareto) CCDFBoth(t float64) (gt, ge float64) {
	switch {
	case t <= 0:
		// CCDF(0) = ((0+θ)/θ)^(−α) = 1 exactly; CCDFAtLeast(0) = 1.
		return 1, 1
	case t < p.Cutoff:
		v := math.Pow((t+p.Theta)/p.Theta, -p.Alpha)
		return v, v
	case t == p.Cutoff:
		return 0, p.AtomMass()
	default:
		return 0, 0
	}
}

// CCDFAtLeast returns Pr{T >= t}, accounting for the atom at the cutoff.
func (p TruncatedPareto) CCDFAtLeast(t float64) float64 {
	if t <= 0 {
		return 1
	}
	if t < p.Cutoff {
		return p.CCDF(t) // continuous below the cutoff
	}
	if t == p.Cutoff {
		return p.AtomMass()
	}
	return 0
}

// IntegralCCDF returns ∫_a^∞ Pr{T > t} dt in closed form:
//
//	θ/(α−1) · [ ((a+θ)/θ)^(1−α) − ((Tc+θ)/θ)^(1−α) ]   for a < Tc
//
// and 0 for a >= Tc. IntegralCCDF(0) equals Mean() (Eq. 25).
func (p TruncatedPareto) IntegralCCDF(a float64) float64 {
	if a < 0 {
		a = 0
	}
	if a >= p.Cutoff {
		return 0
	}
	head := math.Pow((a+p.Theta)/p.Theta, 1-p.Alpha)
	tail := 0.0
	if !math.IsInf(p.Cutoff, 1) {
		tail = math.Pow((p.Cutoff+p.Theta)/p.Theta, 1-p.Alpha)
	}
	return p.Theta / (p.Alpha - 1) * (head - tail)
}

// IntegralCCDFFunc returns IntegralCCDF with the law's constants — the
// cutoff tail term and the θ/(α−1) scale — hoisted out of the per-point
// evaluation, for callers tabulating the integral at many points (the
// solver's loss table). Bitwise equal to IntegralCCDF at every point.
func (p TruncatedPareto) IntegralCCDFFunc() func(a float64) float64 {
	tail := 0.0
	if !math.IsInf(p.Cutoff, 1) {
		tail = math.Pow((p.Cutoff+p.Theta)/p.Theta, 1-p.Alpha)
	}
	scale := p.Theta / (p.Alpha - 1)
	return func(a float64) float64 {
		if a < 0 {
			a = 0
		}
		if a >= p.Cutoff {
			return 0
		}
		head := math.Pow((a+p.Theta)/p.Theta, 1-p.Alpha)
		return scale * (head - tail)
	}
}

// Upper returns the essential supremum of T, i.e. the cutoff lag.
func (p TruncatedPareto) Upper() float64 { return p.Cutoff }

// Hyperexponential is a mixture of exponential distributions:
//
//	Pr{T > t} = Σ_k Weights[k]·exp(−t/Scales[k])
//
// It is the phase-type (hence Markovian) interarrival law whose
// renewal-modulated fluid source has autocorrelation
// Σ_k w_k·exp(−t/τ_k) with w_k ∝ Weights[k]·Scales[k] — the classical
// "sum of exponentials" approximation to power-law correlation discussed
// in §IV of the paper (Markov models capturing correlation up to the
// correlation horizon).
type Hyperexponential struct {
	Weights []float64 // mixture probabilities, non-negative, sum to 1
	Scales  []float64 // per-component means τ_k > 0
}

// NewHyperexponential validates and returns the mixture; weights are
// renormalized to sum to exactly one.
func NewHyperexponential(weights, scales []float64) (Hyperexponential, error) {
	if len(weights) != len(scales) || len(weights) == 0 {
		return Hyperexponential{}, errors.New("dist: hyperexponential needs matching non-empty weights and scales")
	}
	w := append([]float64(nil), weights...)
	s := append([]float64(nil), scales...)
	var total float64
	for i := range w {
		if w[i] < 0 || math.IsNaN(w[i]) {
			return Hyperexponential{}, fmt.Errorf("dist: weight %v invalid", w[i])
		}
		if !(s[i] > 0) || math.IsInf(s[i], 1) {
			return Hyperexponential{}, fmt.Errorf("dist: scale %v invalid", s[i])
		}
		total += w[i]
	}
	if total <= 0 {
		return Hyperexponential{}, errors.New("dist: hyperexponential weights sum to zero")
	}
	for i := range w {
		w[i] /= total
	}
	return Hyperexponential{Weights: w, Scales: s}, nil
}

// Validate reports whether the mixture is well formed.
func (h Hyperexponential) Validate() error {
	if len(h.Weights) != len(h.Scales) || len(h.Weights) == 0 {
		return errors.New("dist: hyperexponential needs matching non-empty weights and scales")
	}
	var total float64
	for i := range h.Weights {
		if h.Weights[i] < 0 || math.IsNaN(h.Weights[i]) {
			return fmt.Errorf("dist: weight %v invalid", h.Weights[i])
		}
		if !(h.Scales[i] > 0) || math.IsInf(h.Scales[i], 1) {
			return fmt.Errorf("dist: scale %v invalid", h.Scales[i])
		}
		total += h.Weights[i]
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("dist: hyperexponential weights sum to %v, want 1", total)
	}
	return nil
}

// CCDF returns Pr{T > t}.
func (h Hyperexponential) CCDF(t float64) float64 {
	if t < 0 {
		return 1
	}
	var acc numerics.Accumulator
	for i := range h.Weights {
		acc.Add(h.Weights[i] * math.Exp(-t/h.Scales[i]))
	}
	return numerics.Clamp(acc.Sum(), 0, 1)
}

// CCDFBoth returns Pr{T > t} and Pr{T >= t} in one evaluation; the law is
// continuous, so the components differ only at t = 0 and otherwise share
// one exponential-mixture sum. Bitwise equal to CCDF / CCDFAtLeast.
func (h Hyperexponential) CCDFBoth(t float64) (gt, ge float64) {
	if t < 0 {
		return 1, 1
	}
	v := h.CCDF(t)
	if t == 0 {
		return v, 1
	}
	return v, v
}

// CCDFAtLeast returns Pr{T >= t}; the law is continuous, so it equals CCDF
// except at t = 0.
func (h Hyperexponential) CCDFAtLeast(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return h.CCDF(t)
}

// CDF returns Pr{T <= t}.
func (h Hyperexponential) CDF(t float64) float64 { return 1 - h.CCDF(t) }

// IntegralCCDF returns ∫_a^∞ Pr{T > t} dt = Σ_k w_k·τ_k·exp(−a/τ_k).
func (h Hyperexponential) IntegralCCDF(a float64) float64 {
	if a < 0 {
		a = 0
	}
	var acc numerics.Accumulator
	for i := range h.Weights {
		acc.Add(h.Weights[i] * h.Scales[i] * math.Exp(-a/h.Scales[i]))
	}
	return acc.Sum()
}

// IntegralCCDFFunc returns IntegralCCDF with the per-mode w_k·τ_k products
// precomputed. Bitwise equal to IntegralCCDF at every point.
func (h Hyperexponential) IntegralCCDFFunc() func(a float64) float64 {
	ws := make([]float64, len(h.Weights))
	for i := range h.Weights {
		ws[i] = h.Weights[i] * h.Scales[i]
	}
	return func(a float64) float64 {
		if a < 0 {
			a = 0
		}
		var acc numerics.Accumulator
		for i := range ws {
			acc.Add(ws[i] * math.Exp(-a/h.Scales[i]))
		}
		return acc.Sum()
	}
}

// Mean returns E[T] = Σ_k w_k·τ_k.
func (h Hyperexponential) Mean() float64 { return h.IntegralCCDF(0) }

// SecondMoment returns E[T²] = Σ_k 2·w_k·τ_k².
func (h Hyperexponential) SecondMoment() float64 {
	var acc numerics.Accumulator
	for i := range h.Weights {
		acc.Add(2 * h.Weights[i] * h.Scales[i] * h.Scales[i])
	}
	return acc.Sum()
}

// Variance returns Var[T].
func (h Hyperexponential) Variance() float64 {
	m := h.Mean()
	return h.SecondMoment() - m*m
}

// Upper returns +Inf: exponential mixtures are unbounded.
func (h Hyperexponential) Upper() float64 { return math.Inf(1) }

// Sample draws one interarrival time: pick a component by weight, then an
// exponential of that scale.
func (h Hyperexponential) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	var acc float64
	for i := range h.Weights {
		acc += h.Weights[i]
		if u <= acc {
			return rng.ExpFloat64() * h.Scales[i]
		}
	}
	return rng.ExpFloat64() * h.Scales[len(h.Scales)-1]
}

// SampleResidual draws from the stationary residual-life distribution of
// the mixture: the residual density CCDF(t)/Mean() is itself a mixture of
// the component exponentials (each memoryless) reweighted by w_k·τ_k —
// longer components are overrepresented at a stationary instant
// (length-biased sampling), but within a component the residual is again
// Exp(τ_k).
func (h Hyperexponential) SampleResidual(rng *rand.Rand) float64 {
	u := rng.Float64() * h.Mean()
	var acc float64
	for i := range h.Weights {
		acc += h.Weights[i] * h.Scales[i]
		if u <= acc {
			return rng.ExpFloat64() * h.Scales[i]
		}
	}
	return rng.ExpFloat64() * h.Scales[len(h.Scales)-1]
}

// ResidualCCDF returns Pr{τ_res >= t} = IntegralCCDF(t)/Mean() — by Eq. (3)
// of the paper this is the autocorrelation of the fluid rate process
// modulated by this law: a convex sum of exponentials with weights
// w_k·τ_k/Σ w_j·τ_j.
func (h Hyperexponential) ResidualCCDF(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return h.IntegralCCDF(t) / h.Mean()
}

// String summarizes the mixture, components sorted by scale.
func (h Hyperexponential) String() string {
	idx := make([]int, len(h.Scales))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.Scales[idx[a]] < h.Scales[idx[b]] })
	s := "Hyperexponential{"
	for n, i := range idx {
		if n > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.3g@%.3gs", h.Weights[i], h.Scales[i])
	}
	return s + "}"
}

// Compile-time checks that both laws satisfy the solver contract.
var (
	_ Interarrival = TruncatedPareto{}
	_ Interarrival = Hyperexponential{}
)
