package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lrd/internal/numerics"
)

func TestTruncatedParetoValidate(t *testing.T) {
	good := TruncatedPareto{Theta: 0.02, Alpha: 1.2, Cutoff: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid parameters rejected: %v", err)
	}
	bad := []TruncatedPareto{
		{Theta: 0, Alpha: 1.2, Cutoff: 10},
		{Theta: -1, Alpha: 1.2, Cutoff: 10},
		{Theta: 1, Alpha: 1, Cutoff: 10},
		{Theta: 1, Alpha: 0.5, Cutoff: 10},
		{Theta: 1, Alpha: 1.2, Cutoff: 0},
		{Theta: math.NaN(), Alpha: 1.2, Cutoff: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid parameters accepted: %+v", p)
		}
	}
}

func TestCCDFBoundaries(t *testing.T) {
	p := TruncatedPareto{Theta: 1, Alpha: 1.5, Cutoff: 10}
	if got := p.CCDF(-1); got != 1 {
		t.Fatalf("CCDF(-1) = %v, want 1", got)
	}
	if got := p.CCDF(0); got != 1 {
		t.Fatalf("CCDF(0) = %v, want 1", got)
	}
	if got := p.CCDF(10); got != 0 {
		t.Fatalf("CCDF(Tc) = %v, want 0", got)
	}
	if got := p.CCDF(100); got != 0 {
		t.Fatalf("CCDF(>Tc) = %v, want 0", got)
	}
	// Just below the cutoff the ccdf equals the atom mass (up to continuity).
	if !numerics.AlmostEqual(p.CCDF(10-1e-9), p.AtomMass(), 1e-6) {
		t.Fatalf("CCDF(Tc-) = %v, atom = %v", p.CCDF(10-1e-9), p.AtomMass())
	}
}

func TestCCDFMonotoneProperty(t *testing.T) {
	p := TruncatedPareto{Theta: 0.5, Alpha: 1.3, Cutoff: 20}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		a, b = math.Abs(a), math.Abs(b)
		lo, hi := math.Min(a, b), math.Max(a, b)
		return p.CCDF(lo) >= p.CCDF(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMatchesQuadrature(t *testing.T) {
	// E[T] = ∫₀^Tc CCDF(t) dt.
	for _, p := range []TruncatedPareto{
		{Theta: 0.02, Alpha: 1.2, Cutoff: 5},
		{Theta: 1, Alpha: 1.5, Cutoff: 100},
		{Theta: 0.1, Alpha: 1.9, Cutoff: 0.5},
	} {
		want := numerics.Trapezoid(p.CCDF, 0, p.Cutoff, 2_000_000)
		if !numerics.AlmostEqual(p.Mean(), want, 1e-5) {
			t.Errorf("%+v: Mean = %v, quadrature = %v", p, p.Mean(), want)
		}
	}
}

func TestMeanInfiniteCutoff(t *testing.T) {
	p := TruncatedPareto{Theta: 0.016, Alpha: 1.2, Cutoff: math.Inf(1)}
	want := p.Theta / (p.Alpha - 1)
	if !numerics.AlmostEqual(p.Mean(), want, 1e-12) {
		t.Fatalf("Mean = %v, want %v", p.Mean(), want)
	}
}

func TestMeanIncreasesWithCutoff(t *testing.T) {
	prev := 0.0
	for _, tc := range []float64{0.1, 1, 10, 100, 1000} {
		p := TruncatedPareto{Theta: 0.02, Alpha: 1.2, Cutoff: tc}
		m := p.Mean()
		if m <= prev {
			t.Fatalf("mean not increasing in cutoff: %v at Tc=%v", m, tc)
		}
		prev = m
	}
	inf := TruncatedPareto{Theta: 0.02, Alpha: 1.2, Cutoff: math.Inf(1)}
	if prev >= inf.Mean() {
		t.Fatal("finite-cutoff mean should stay below the untruncated mean")
	}
}

func TestSecondMomentMatchesQuadrature(t *testing.T) {
	// E[T²] = 2∫₀^Tc t·CCDF(t) dt.
	for _, p := range []TruncatedPareto{
		{Theta: 0.02, Alpha: 1.2, Cutoff: 5},
		{Theta: 1, Alpha: 1.5, Cutoff: 50},
		{Theta: 0.3, Alpha: 2.0, Cutoff: 10}, // α = 2 special case
	} {
		want := 2 * numerics.Trapezoid(func(t float64) float64 { return t * p.CCDF(t) }, 0, p.Cutoff, 2_000_000)
		if !numerics.AlmostEqual(p.SecondMoment(), want, 1e-5) {
			t.Errorf("%+v: E[T²] = %v, quadrature = %v", p, p.SecondMoment(), want)
		}
	}
}

func TestSecondMomentInfiniteCases(t *testing.T) {
	p := TruncatedPareto{Theta: 1, Alpha: 1.5, Cutoff: math.Inf(1)}
	if !math.IsInf(p.SecondMoment(), 1) {
		t.Fatal("E[T²] should be infinite for α < 2, Tc = ∞")
	}
	if !math.IsInf(p.Variance(), 1) {
		t.Fatal("Var[T] should be infinite for α < 2, Tc = ∞")
	}
	q := TruncatedPareto{Theta: 1, Alpha: 3, Cutoff: math.Inf(1)}
	// Pareto with α = 3: E[T²] = 2θ²(1/(α−2) − 1/(α−1)) = 2(1 − 1/2) = 1.
	if !numerics.AlmostEqual(q.SecondMoment(), 1, 1e-12) {
		t.Fatalf("E[T²] = %v, want 1", q.SecondMoment())
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	p := TruncatedPareto{Theta: 0.02, Alpha: 1.2, Cutoff: 10}
	for _, u := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		tq := p.Quantile(u)
		if tq < p.Cutoff {
			if !numerics.AlmostEqual(p.CDF(tq), u, 1e-9) {
				t.Errorf("CDF(Quantile(%v)) = %v", u, p.CDF(tq))
			}
		}
	}
	// Quantiles beyond 1 − atom mass land on the cutoff.
	atom := p.AtomMass()
	if got := p.Quantile(1 - atom/2); got != p.Cutoff {
		t.Fatalf("atom-range quantile = %v, want cutoff %v", got, p.Cutoff)
	}
	if got := p.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %v, want 0", got)
	}
}

func TestSampleMeanConverges(t *testing.T) {
	p := TruncatedPareto{Theta: 0.02, Alpha: 1.2, Cutoff: 5}
	rng := rand.New(rand.NewSource(99))
	var acc numerics.Accumulator
	n := 200000
	for i := 0; i < n; i++ {
		s := p.Sample(rng)
		if s < 0 || s > p.Cutoff {
			t.Fatalf("sample %v outside [0, Tc]", s)
		}
		acc.Add(s)
	}
	got := acc.Sum() / float64(n)
	if !numerics.AlmostEqual(got, p.Mean(), 0.05) {
		t.Fatalf("sample mean %v, want ≈ %v", got, p.Mean())
	}
}

func TestResidualCCDFBoundaries(t *testing.T) {
	p := TruncatedPareto{Theta: 0.02, Alpha: 1.2, Cutoff: 10}
	if got := p.ResidualCCDF(0); got != 1 {
		t.Fatalf("ResidualCCDF(0) = %v, want 1", got)
	}
	if got := p.ResidualCCDF(10); got != 0 {
		t.Fatalf("ResidualCCDF(Tc) = %v, want 0", got)
	}
	if got := p.ResidualCCDF(-3); got != 1 {
		t.Fatalf("ResidualCCDF(-3) = %v, want 1", got)
	}
}

func TestResidualCCDFMatchesRenewalQuadrature(t *testing.T) {
	// Eq. (5): Pr{τ_res >= t} = ∫_t^Tc CCDF(x) dx / E[T].
	p := TruncatedPareto{Theta: 0.5, Alpha: 1.4, Cutoff: 8}
	for _, tt := range []float64{0.1, 0.5, 1, 3, 7} {
		want := numerics.Trapezoid(p.CCDF, tt, p.Cutoff, 1_000_000) / p.Mean()
		if !numerics.AlmostEqual(p.ResidualCCDF(tt), want, 1e-5) {
			t.Errorf("t=%v: ResidualCCDF = %v, quadrature = %v", tt, p.ResidualCCDF(tt), want)
		}
	}
}

func TestResidualCCDFInfiniteCutoffPowerLaw(t *testing.T) {
	// With Tc = ∞ the residual ccdf is ((t+θ)/θ)^(1−α) — the power-law decay
	// t^(−(α−1)) = t^(−(2−2H)) that defines asymptotic self-similarity.
	p := TruncatedPareto{Theta: 1, Alpha: 1.2, Cutoff: math.Inf(1)}
	for _, tt := range []float64{1, 10, 100} {
		want := math.Pow((tt+1)/1, -0.2)
		if !numerics.AlmostEqual(p.ResidualCCDF(tt), want, 1e-12) {
			t.Errorf("t=%v: got %v want %v", tt, p.ResidualCCDF(tt), want)
		}
	}
}

func TestHurstAlphaRoundTrip(t *testing.T) {
	for _, h := range []float64{0.55, 0.7, 0.83, 0.9, 0.95} {
		if !numerics.AlmostEqual(HurstFromAlpha(AlphaFromHurst(h)), h, 1e-12) {
			t.Errorf("round trip failed for H=%v", h)
		}
	}
	if HurstFromAlpha(1.2) != 0.9 {
		t.Fatal("α=1.2 should map to H=0.9")
	}
	if AlphaFromHurst(0.83) != 3-2*0.83 {
		t.Fatal("H=0.83 mapping wrong")
	}
}

func TestCalibrateTheta(t *testing.T) {
	// The paper: θ such that θ/(α−1) matches the trace's mean epoch.
	th, err := CalibrateTheta(1.2, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(th, 0.016, 1e-12) {
		t.Fatalf("theta = %v, want 0.016", th)
	}
	p := TruncatedPareto{Theta: th, Alpha: 1.2, Cutoff: math.Inf(1)}
	if !numerics.AlmostEqual(p.Mean(), 0.08, 1e-12) {
		t.Fatalf("calibrated mean = %v, want 0.08", p.Mean())
	}
	if _, err := CalibrateTheta(1.0, 0.08); err == nil {
		t.Fatal("want error for alpha <= 1")
	}
	if _, err := CalibrateTheta(1.2, 0); err == nil {
		t.Fatal("want error for non-positive epoch")
	}
}

func TestAtomMassProperty(t *testing.T) {
	// CDF(Tc⁻) + atom = 1 for any valid parameters.
	f := func(th, al, tc float64) bool {
		th = 0.01 + math.Abs(math.Mod(th, 10))
		al = 1.05 + math.Abs(math.Mod(al, 0.9))
		tc = 0.1 + math.Abs(math.Mod(tc, 50))
		p := TruncatedPareto{Theta: th, Alpha: al, Cutoff: tc}
		return numerics.AlmostEqual(p.CCDF(tc-1e-12), p.AtomMass(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualQuantileInvertsResidualCCDF(t *testing.T) {
	p := TruncatedPareto{Theta: 0.02, Alpha: 1.2, Cutoff: 10}
	for _, u := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		tq := p.ResidualQuantile(u)
		// Pr{τ_res >= t} = 1−u at the u-quantile.
		if !numerics.AlmostEqual(p.ResidualCCDF(tq), 1-u, 1e-9) {
			t.Errorf("u=%v: ResidualCCDF(Q(u)) = %v, want %v", u, p.ResidualCCDF(tq), 1-u)
		}
	}
	if p.ResidualQuantile(0) != 0 || p.ResidualQuantile(1) != p.Cutoff {
		t.Fatal("endpoint quantiles wrong")
	}
}

func TestResidualQuantileInfiniteCutoff(t *testing.T) {
	p := TruncatedPareto{Theta: 1, Alpha: 1.5, Cutoff: math.Inf(1)}
	for _, u := range []float64{0.1, 0.5, 0.9} {
		tq := p.ResidualQuantile(u)
		if !numerics.AlmostEqual(p.ResidualCCDF(tq), 1-u, 1e-9) {
			t.Errorf("u=%v mismatch", u)
		}
	}
}

func TestSampleResidualMeanIsLengthBiased(t *testing.T) {
	// E[τ_res] = E[T²]/(2E[T]) — the inspection paradox; verify by Monte
	// Carlo against the closed-form moments.
	p := TruncatedPareto{Theta: 0.05, Alpha: 1.4, Cutoff: 3}
	want := p.SecondMoment() / (2 * p.Mean())
	rng := rand.New(rand.NewSource(123))
	var acc numerics.Accumulator
	n := 300000
	for i := 0; i < n; i++ {
		acc.Add(p.SampleResidual(rng))
	}
	got := acc.Sum() / float64(n)
	if !numerics.AlmostEqual(got, want, 0.03) {
		t.Fatalf("residual mean %v, want %v", got, want)
	}
}
