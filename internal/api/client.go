package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"lrd/internal/resilient"
)

// Client is the typed /v1 fleet client: every endpoint as a method taking
// and returning the wire types of this package, riding internal/resilient
// for retries, per-replica circuit breakers, and hedging. All three remote
// consumers (lrdcall, lrdsweep -fleet, lrdfit -fleet style flows) go
// through it, so a request they send is well-formed by construction.
type Client struct {
	rc *resilient.Client
}

// NewClient wraps a resilient fleet client.
func NewClient(rc *resilient.Client) *Client { return &Client{rc: rc} }

// do posts req to path and decodes a 2xx reply into out. On a non-2xx
// final response it decodes the body's Error envelope and returns it as a
// typed *Error (falling back to a code-less Error carrying the raw body
// when the body is not an envelope), alongside the raw response so callers
// can still see status, replica, and bytes.
func (c *Client) do(ctx context.Context, method, path string, req, out any) (*resilient.Response, error) {
	res, err := c.rc.DoJSON(ctx, method, path, req, out)
	var serr *resilient.StatusError
	if errors.As(err, &serr) {
		return res, decodeError(serr.Body, serr.Status)
	}
	return res, err
}

// decodeError turns a non-2xx body into the typed envelope. Statuses map
// to codes when the body carries none, so callers can switch on Code even
// against servers predating the envelope.
func decodeError(body []byte, status int) *Error {
	var e Error
	if jerr := json.Unmarshal(body, &e); jerr == nil && e.Message != "" {
		if e.Code == "" {
			e.Code = codeForStatus(status)
		}
		return &e
	}
	return &Error{Message: string(body), Code: codeForStatus(status)}
}

// codeForStatus is the fallback status→code mapping for envelope-less
// error bodies.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusUnprocessableEntity:
		return CodeInfeasible
	case http.StatusServiceUnavailable:
		return CodeCanceled
	default:
		return CodeInternal
	}
}

// Solve posts a /v1/solve request and returns the typed reply.
func (c *Client) Solve(ctx context.Context, req SolveRequest) (SolveResponse, *resilient.Response, error) {
	var out SolveResponse
	res, err := c.do(ctx, "POST", "/v1/solve", req, &out)
	return out, res, err
}

// Sweep posts a /v1/sweep grid request. A 207 (some cells failed) is
// returned as a typed reply with err nil — per-cell status lives in
// Cells[i].Status, matching the server's partial-failure contract.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepResponse, *resilient.Response, error) {
	var out SweepResponse
	res, err := c.do(ctx, "POST", "/v1/sweep", req, &out)
	var apiErr *Error
	if err != nil && errors.As(err, &apiErr) && res != nil && res.Status == http.StatusMultiStatus {
		// 207 carries a full SweepResponse body, not an error envelope.
		if jerr := json.Unmarshal(res.Body, &out); jerr == nil {
			return out, res, nil
		}
	}
	return out, res, err
}

// Fit posts a /v1/fit trace-fitting request and returns the typed reply.
func (c *Client) Fit(ctx context.Context, req FitRequest) (FitResponse, *resilient.Response, error) {
	var out FitResponse
	res, err := c.do(ctx, "POST", "/v1/fit", req, &out)
	return out, res, err
}

// Provision posts a /v1/provision inverse-solve request. An unreachable
// SLO surfaces as a typed *Error with Code CodeInfeasible.
func (c *Client) Provision(ctx context.Context, req ProvisionRequest) (ProvisionResponse, *resilient.Response, error) {
	var out ProvisionResponse
	res, err := c.do(ctx, "POST", "/v1/provision", req, &out)
	return out, res, err
}

// Raw sends an arbitrary request through the same resilient path and
// returns the raw response — for the probe and exposition endpoints
// (/readyz, /healthz, /v1/status, /metrics) whose bodies are not /v1 wire
// types, and for callers that need byte-exact passthrough.
func (c *Client) Raw(ctx context.Context, method, path string, body []byte) (*resilient.Response, error) {
	return c.rc.Do(ctx, method, path, body)
}
