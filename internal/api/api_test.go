package api

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// The compatibility contract: these byte-for-byte goldens pin the wire
// encoding that pre-package servers produced and cached. If one of them
// breaks, cached response bodies stop replaying bit-identically and every
// fleet cache key shifts — treat a failure here as an API break, not a
// test to update.

func TestSolveResponseGoldenBytes(t *testing.T) {
	got, err := json.Marshal(SolveResponse{
		Loss: 0.5, Lower: 0.25, Upper: 0.75, RelativeGap: 0.1,
		Bins: 1024, Iterations: 12, Converged: true, GridStep: 0.001, Key: "v1|test",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"loss":0.5,"lower":0.25,"upper":0.75,"relative_gap":0.1,"bins":1024,"iterations":12,"converged":true,"grid_step":0.001,"key":"v1|test"}`
	if string(got) != want {
		t.Fatalf("SolveResponse wire bytes changed:\n got  %s\n want %s", got, want)
	}
	// Degraded joins the encoding only when set (it was omitempty before the
	// package existed too).
	got, _ = json.Marshal(SolveResponse{Degraded: "deadline"})
	if !strings.Contains(string(got), `"degraded":"deadline"`) {
		t.Fatalf("degraded not encoded when set: %s", got)
	}
}

func TestSolveRequestGoldenBytes(t *testing.T) {
	body := `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8,"buffer":0.5}`
	dec := json.NewDecoder(strings.NewReader(body))
	dec.DisallowUnknownFields()
	var req SolveRequest
	if err := dec.Decode(&req); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	// The zero model spec renders as the fluid default and the zero solver
	// params as {} — exactly what the pre-package encoder emitted.
	want := `{"marginal":"0:0.5,2:0.5","hurst":0.8,"epoch":0.05,"util":0.8,"buffer":0.5,"model":{"name":"fluid"},"solver":{}}`
	if string(got) != want {
		t.Fatalf("SolveRequest wire bytes changed:\n got  %s\n want %s", got, want)
	}
}

func TestErrorEnvelopeGoldenBytes(t *testing.T) {
	// A code-less Error must match the legacy map encoding byte for byte:
	// the /v1/solve and /v1/sweep error bodies never carried a code.
	legacy, _ := json.Marshal(map[string]string{"error": "boom"})
	got, err := json.Marshal(Error{Message: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(legacy) {
		t.Fatalf("code-less envelope diverged from legacy bytes:\n got  %s\n want %s", got, legacy)
	}
	got, _ = json.Marshal(Error{Message: "slo unreachable", Code: CodeInfeasible})
	want := `{"error":"slo unreachable","code":"infeasible"}`
	if string(got) != want {
		t.Fatalf("coded envelope bytes:\n got  %s\n want %s", got, want)
	}
}

func TestErrorInterface(t *testing.T) {
	if got := Errorf("", "plain %d", 7).Error(); got != "plain 7" {
		t.Errorf("code-less Error() = %q", got)
	}
	if got := Errorf(CodeBadRequest, "missing field").Error(); got != "bad_request: missing field" {
		t.Errorf("coded Error() = %q", got)
	}
}

func TestDurationForms(t *testing.T) {
	var p SolverParams
	if err := json.Unmarshal([]byte(`{"timeout":"1500ms"}`), &p); err != nil {
		t.Fatal(err)
	}
	if time.Duration(p.Timeout) != 1500*time.Millisecond {
		t.Errorf("string form: %v", time.Duration(p.Timeout))
	}
	if err := json.Unmarshal([]byte(`{"timeout":2.5}`), &p); err != nil {
		t.Fatal(err)
	}
	if time.Duration(p.Timeout) != 2500*time.Millisecond {
		t.Errorf("numeric form: %v", time.Duration(p.Timeout))
	}
	if err := json.Unmarshal([]byte(`{"timeout":"soon"}`), &p); err == nil {
		t.Error("bogus duration accepted")
	}
	// Marshal renders the Go duration string (the pre-package form).
	b, _ := json.Marshal(Duration(2 * time.Second))
	if string(b) != `"2s"` {
		t.Errorf("duration marshal = %s", b)
	}
}

func TestSweepCellsRowMajor(t *testing.T) {
	r := SweepRequest{
		SolveRequest: SolveRequest{Marginal: "0:0.5,2:0.5", Buffer: 9},
		Buffers:      []float64{1, 2},
		Cutoffs:      []float64{10, 20, 30},
	}
	cells, err := r.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells", len(cells))
	}
	// Row-major: buffer-outer, cutoff-inner.
	wantB := []float64{1, 1, 1, 2, 2, 2}
	wantC := []float64{10, 20, 30, 10, 20, 30}
	for i, c := range cells {
		if c.Buffer != wantB[i] || c.Cutoff != wantC[i] {
			t.Errorf("cell %d = (%g, %g), want (%g, %g)", i, c.Buffer, c.Cutoff, wantB[i], wantC[i])
		}
	}
}

func TestSweepCellsScalarFallbackAndCap(t *testing.T) {
	r := SweepRequest{SolveRequest: SolveRequest{Buffer: 0.5, Cutoff: 3}}
	cells, err := r.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Buffer != 0.5 || cells[0].Cutoff != 3 {
		t.Fatalf("scalar fallback: %+v", cells)
	}
	big := SweepRequest{
		Buffers: make([]float64, 65),
		Cutoffs: make([]float64, 64),
	}
	if _, err := big.Cells(); err == nil {
		t.Fatalf("%d-cell grid accepted (limit %d)", 65*64, MaxSweepCells)
	}
}

func TestFitResponseSolveRequest(t *testing.T) {
	f := FitResponse{
		Marginal: "0:0.5,2:0.5", Alpha: 1.4, Theta: 0.02, Cutoff: 10,
	}
	req := f.SolveRequest(0.8, 0.5)
	if req.Marginal != f.Marginal || req.Alpha != 1.4 || req.Theta != 0.02 ||
		req.Cutoff != 10 || req.Util != 0.8 || req.Buffer != 0.5 {
		t.Fatalf("SolveRequest = %+v", req)
	}
	if req.Hurst != 0 || req.Epoch != 0 {
		t.Fatalf("derived request must use the resolved alpha/theta form, got hurst=%g epoch=%g", req.Hurst, req.Epoch)
	}
}
