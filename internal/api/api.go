// Package api is the single definition of the lrdserve /v1 wire contract:
// every request and response body that crosses the HTTP boundary, plus the
// shared error envelope and the typed fleet client built on
// internal/resilient.
//
// Before this package existed the contract lived in three places — the
// serve handlers owned the structs, lrdsweep's remote solver imported them
// through the server package, and lrdcall shipped raw bytes with no types
// at all — and nothing stopped them drifting. Now the server decodes,
// the clients encode, and the golden tests round-trip exactly these types,
// so a wire change is a change to this package or it is a bug.
//
// Compatibility contract: the JSON rendered by these types is
// byte-identical to the pre-package serve encoding (field order, tags,
// omitempty sets, the Duration string form, and the {"error": "..."}
// envelope), so cached response bodies and canonical cache keys written by
// older servers replay unchanged. The golden tests in api_test.go enforce
// this byte-for-byte.
package api

import (
	"encoding/json"
	"fmt"
	"time"

	"lrd/internal/source"
)

// Duration is a time.Duration that unmarshals from either a Go duration
// string ("2s", "500ms") or a number of seconds, so curl-friendly request
// bodies can write whichever is natural.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("invalid duration %q: %w", s, perr)
		}
		*d = Duration(parsed)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(data, &secs); err != nil {
		return fmt.Errorf("duration must be a string like \"2s\" or a number of seconds")
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// SolverParams is the per-request subset of the solver configuration a
// client may override. Everything else comes from the server's -relgap and
// -maxbins style defaults; resource-protection knobs (iteration caps, the
// numeric watchdog) stay server-side.
type SolverParams struct {
	// RelGap is the bound convergence target (paper: 0.2).
	RelGap float64 `json:"relgap,omitempty"`
	// MaxBins caps the resolution ladder (default 32768).
	MaxBins int `json:"maxbins,omitempty"`
	// Timeout is the per-request wall-clock solve budget. It is clamped to
	// the server's request timeout and mapped onto the solver's MaxDuration
	// budget machinery, so an expired budget degrades gracefully to the
	// best-so-far bracket instead of failing.
	Timeout Duration `json:"timeout,omitempty"`
}

// SolveRequest is the POST /v1/solve body: the same queue description the
// lrdloss command takes, as JSON. The marginal uses the CLI's inline
// rate:prob syntax; the correlation structure is given by -hurst-or-alpha,
// -theta-or-epoch, and the cutoff lag; the queue by -util-or-service and
// the normalized buffer; and the optional model is a registered traffic
// model spec ({"name": ..., "params": {...}}).
type SolveRequest struct {
	// Marginal is the rate marginal as rate:prob pairs, e.g. "0:0.5,2:0.5".
	Marginal string `json:"marginal"`
	// Hurst in (0.5, 1) sets the tail index alpha = 3−2H; Alpha in (1, 2) is
	// the alternative. Exactly one must be set.
	Hurst float64 `json:"hurst,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
	// Theta is the Pareto scale in seconds; Epoch is the mean epoch duration
	// that calibrates it. Exactly one must be set.
	Theta float64 `json:"theta,omitempty"`
	Epoch float64 `json:"epoch,omitempty"`
	// Cutoff is the correlation cutoff lag Tc in seconds; 0 or absent means
	// infinite (the pure heavy-tailed source).
	Cutoff float64 `json:"cutoff,omitempty"`
	// Util in (0, 1) sets the service rate from the marginal mean; Service
	// gives the rate directly. Exactly one must be set.
	Util    float64 `json:"util,omitempty"`
	Service float64 `json:"service,omitempty"`
	// Buffer is the normalized buffer size B/c in seconds. Required.
	Buffer float64 `json:"buffer"`
	// Model realizes the reference source as a registered traffic model
	// before solving (fluid, onoff, markov, mmfq, ams). Absent means fluid,
	// the paper's model.
	Model source.Spec `json:"model,omitempty"`
	// Solver overrides the server's default solver knobs for this request.
	Solver SolverParams `json:"solver,omitempty"`
}

// SolveResponse is the POST /v1/solve reply: the loss-rate bracket and
// solve diagnostics, plus the canonical cache key the result is stored
// under. Cache disposition travels in the X-Lrd-Cache header (hit, miss, or
// coalesced), never in the body — cached, coalesced, and fresh replies for
// the same key are bit-identical.
type SolveResponse struct {
	Loss        float64 `json:"loss"`
	Lower       float64 `json:"lower"`
	Upper       float64 `json:"upper"`
	RelativeGap float64 `json:"relative_gap"`
	Bins        int     `json:"bins"`
	Iterations  int     `json:"iterations"`
	Converged   bool    `json:"converged"`
	Degraded    string  `json:"degraded,omitempty"`
	GridStep    float64 `json:"grid_step"`
	Key         string  `json:"key"`
}

// SweepRequest is the POST /v1/sweep body: a grid of cells over one queue
// description. Buffers and Cutoffs are the grid axes (each pair is one
// cell); when an axis is absent the embedded request's scalar Buffer or
// Cutoff is the single value. Cells are returned in row-major
// (buffer-outer, cutoff-inner) order, matching the lrdsweep TSV layout.
type SweepRequest struct {
	SolveRequest
	// Buffers are the normalized buffer sizes B/c in seconds swept by this
	// request; empty means the scalar Buffer field.
	Buffers []float64 `json:"buffers,omitempty"`
	// Cutoffs are the correlation cutoff lags Tc in seconds; empty means
	// the scalar Cutoff field (0 = infinite).
	Cutoffs []float64 `json:"cutoffs,omitempty"`
}

// MaxSweepCells bounds one batch request's grid: a request is cheap to
// send, so an unbounded grid would be an amplification hazard.
const MaxSweepCells = 4096

// Cells expands the grid into one SolveRequest per cell, row-major
// (buffer-outer, cutoff-inner). It is the single definition of the grid
// order both the server and typed clients rely on.
func (r *SweepRequest) Cells() ([]SolveRequest, error) {
	buffers := r.Buffers
	if len(buffers) == 0 {
		buffers = []float64{r.Buffer}
	}
	cutoffs := r.Cutoffs
	if len(cutoffs) == 0 {
		cutoffs = []float64{r.Cutoff}
	}
	if n := len(buffers) * len(cutoffs); n > MaxSweepCells {
		return nil, fmt.Errorf("sweep grid has %d cells, limit %d", n, MaxSweepCells)
	}
	out := make([]SolveRequest, 0, len(buffers)*len(cutoffs))
	for _, b := range buffers {
		for _, tc := range cutoffs {
			cell := r.SolveRequest
			cell.Buffer = b
			cell.Cutoff = tc
			out = append(out, cell)
		}
	}
	return out, nil
}

// SweepCellResult is one cell of a POST /v1/sweep reply. Status is the
// cell's own HTTP status; Result is the /v1/solve body for that cell (a
// SolveResponse on 200, an error object otherwise). Source is the cell's
// cache disposition (hit, miss, coalesced, or adopted — the last meaning
// another replica of a lease-sharing fleet computed it).
type SweepCellResult struct {
	Buffer float64         `json:"buffer"`
	Cutoff float64         `json:"cutoff,omitempty"`
	Status int             `json:"status"`
	Source string          `json:"source,omitempty"`
	Result json.RawMessage `json:"result"`
}

// SweepResponse is the POST /v1/sweep reply: one result per cell, in the
// request's row-major grid order. The response status is 200 when every
// cell succeeded and 207 when any cell carries its own error status.
type SweepResponse struct {
	Cells []SweepCellResult `json:"cells"`
}

// FitRequest is the POST /v1/fit body: a binned rate trace to fit the
// reference model to — the server-side form of the lrdfit pipeline. The
// reply carries everything needed to build a SolveRequest (or
// ProvisionRequest) for the fitted queue, so trace → fit → solve is two
// calls with no client-side estimation.
type FitRequest struct {
	// Rates is the binned rate series (average rate per bin); BinWidth is
	// the bin width in seconds. Both are required.
	Rates    []float64 `json:"rates"`
	BinWidth float64   `json:"bin_width"`
	// Bins is the histogram resolution for the marginal and mean-epoch fit
	// (the paper's 50). 0 means 50.
	Bins int `json:"bins,omitempty"`
	// Estimator picks the Hurst estimate used for the fit: aggvar, rs,
	// whittle, wavelet, gph, or median (the default — the median of the
	// estimators that succeeded).
	Estimator string `json:"estimator,omitempty"`
	// Hurst, when nonzero, overrides estimation entirely (the estimates are
	// still computed and reported as diagnostics).
	Hurst float64 `json:"hurst,omitempty"`
	// Cutoff is the correlation cutoff lag Tc in seconds the fitted
	// reference source carries; 0 or absent means infinite.
	Cutoff float64 `json:"cutoff,omitempty"`
	// Model names the registry model the fitted spec targets (validated
	// against the registry; absent means fluid).
	Model source.Spec `json:"model,omitempty"`
}

// EstimatorResult is one estimator's outcome in a FitResponse: the Hurst
// estimate when it succeeded, the error message when it rejected the trace
// (short series, zero variance, …). Exactly one field is populated.
type EstimatorResult struct {
	Hurst float64 `json:"hurst,omitempty"`
	Error string  `json:"error,omitempty"`
}

// FitResponse is the POST /v1/fit reply: the fitted reference-source
// parameters (directly pluggable into a SolveRequest: Marginal, Hurst or
// Alpha, Theta or Epoch, Cutoff, Model) plus per-estimator diagnostics.
type FitResponse struct {
	// Samples and BinWidth echo the analyzed trace's shape.
	Samples  int     `json:"samples"`
	BinWidth float64 `json:"bin_width"`
	// MeanRate is the trace's time-average rate; MeanEpoch the paper-style
	// mean epoch duration (average same-histogram-bin run length).
	MeanRate  float64 `json:"mean_rate"`
	MeanEpoch float64 `json:"mean_epoch"`
	// Hurst is the chosen estimate (after clamping into the model's (0.5,1)
	// domain); RawHurst the unclamped value; Estimator names which estimate
	// was chosen ("median" or a single estimator).
	Hurst     float64 `json:"hurst"`
	RawHurst  float64 `json:"raw_hurst"`
	Estimator string  `json:"estimator"`
	// Alpha and Theta are the derived reference-source parameters
	// (alpha = 3−2H; theta calibrated from the mean epoch).
	Alpha float64 `json:"alpha"`
	Theta float64 `json:"theta"`
	// Cutoff echoes the requested correlation cutoff (0 = infinite).
	Cutoff float64 `json:"cutoff,omitempty"`
	// Marginal is the fitted histogram marginal in the rate:prob wire syntax
	// a SolveRequest consumes.
	Marginal string `json:"marginal"`
	// Model echoes the validated model spec the fit targets.
	Model source.Spec `json:"model"`
	// Estimates carries every estimator's outcome by name (aggvar, rs,
	// whittle, wavelet, gph) — partial results included, so one estimator
	// rejecting a short trace never hides the others.
	Estimates map[string]EstimatorResult `json:"estimates"`
}

// SolveRequest returns the forward-solve request for the fitted queue at
// the given utilization and normalized buffer — the programmatic form of
// "take the /v1/fit reply and solve it".
func (f *FitResponse) SolveRequest(util, buffer float64) SolveRequest {
	return SolveRequest{
		Marginal: f.Marginal,
		Alpha:    f.Alpha,
		Theta:    f.Theta,
		Cutoff:   f.Cutoff,
		Util:     util,
		Buffer:   buffer,
		Model:    f.Model,
	}
}

// Provision targets: what the inverse solve solves for.
const (
	// TargetBuffer finds the minimal normalized buffer (seconds) meeting
	// the SLO at the request's fixed utilization or service rate.
	TargetBuffer = "buffer"
	// TargetService finds the minimal service rate meeting the SLO at the
	// request's fixed normalized buffer.
	TargetService = "service"
)

// ProvisionRequest is the POST /v1/provision body: the same queue
// description as a SolveRequest with the provisioned dimension left open,
// plus the loss SLO. Target "buffer" (the default) solves for the minimal
// normalized buffer given util-or-service; target "service" solves for the
// minimal service rate given the buffer.
type ProvisionRequest struct {
	SolveRequest
	// SLO is the target loss rate: the answer is the minimal buffer (or
	// service rate) whose loss provably meets the SLO. Required.
	SLO float64 `json:"slo"`
	// Target is "buffer" (default) or "service".
	Target string `json:"target,omitempty"`
	// Min and Max override the bracket searched for the target value
	// (normalized-buffer seconds, or utilization in (0,1) for the service
	// target). 0 means the server default.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// Tol is the relative bracket width at which the bisection stops
	// (default 0.01: the answer is within 1% of minimal).
	Tol float64 `json:"tol,omitempty"`
}

// ProvisionResponse is the POST /v1/provision reply: the minimal feasible
// value, the tightest infeasible bracket point below it, and the
// root-find's cost diagnostics. Feasibility is decided on proven solver
// bounds, so the bracket invariant is exact: Loss <= SLO at Value and
// BracketLoss > SLO at Bracket, and an independent forward solve of Value
// brackets a true loss at or below the SLO.
type ProvisionResponse struct {
	// Target echoes the provisioned dimension ("buffer" or "service").
	Target string `json:"target"`
	// Value is the answer: minimal normalized buffer in seconds, or minimal
	// service rate in work units/s.
	Value float64 `json:"value"`
	// Loss is the proven upper bound on the loss at Value (<= SLO).
	Loss float64 `json:"loss"`
	// Bracket is the largest value probed whose loss bound failed to clear
	// the SLO, and BracketLoss that bound (> SLO). Bracket is 0 when the SLO
	// was already met at the bracket minimum, in which case BracketLoss is
	// absent.
	Bracket     float64 `json:"bracket"`
	BracketLoss float64 `json:"bracket_loss,omitempty"`
	// SLO echoes the request's target loss rate.
	SLO float64 `json:"slo"`
	// Util reports the resulting utilization at Value (service target only).
	Util float64 `json:"util,omitempty"`
	// Solves counts the forward solves spent; WarmSolves how many of them
	// were warm-started from a previous iterate's occupancy vectors.
	Solves     int `json:"solves"`
	WarmSolves int `json:"warm_solves,omitempty"`
}

// Error codes carried by the Error envelope's machine-readable Code field.
const (
	// CodeBadRequest: the request failed validation or decoding.
	CodeBadRequest = "bad_request"
	// CodeInfeasible: a provision SLO is unreachable inside the searched
	// bracket (the queue loses more than the SLO even at the bracket's
	// best-case end).
	CodeInfeasible = "infeasible"
	// CodeOverloaded: admission shed the request (429).
	CodeOverloaded = "overloaded"
	// CodeCanceled: the client went away or the request budget expired
	// before the work completed.
	CodeCanceled = "canceled"
	// CodeEstimation: the trace fit failed (no estimator produced a usable
	// Hurst estimate, degenerate marginal, …).
	CodeEstimation = "estimation"
	// CodeInternal: the server failed; the message is diagnostic only.
	CodeInternal = "internal"
)

// Error is the shared error envelope of every /v1 endpoint: a
// human-readable message under the legacy "error" key, plus an optional
// machine-readable code. A code-less Error marshals to exactly the
// pre-envelope {"error": "..."} bytes, so the /v1/solve and /v1/sweep wire
// encodings are unchanged; the new endpoints populate Code.
type Error struct {
	Message string `json:"error"`
	Code    string `json:"code,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Code != "" {
		return e.Code + ": " + e.Message
	}
	return e.Message
}

// Errorf builds a coded Error with fmt formatting. An empty code yields
// the legacy envelope.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Message: fmt.Sprintf(format, args...), Code: code}
}
