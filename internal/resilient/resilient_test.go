package resilient

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lrd/internal/obs"
)

// fakeClock is a mutex-protected manual clock; roundTrip goroutines read
// it concurrently under -race.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func httpResp(status int, body string, hdr http.Header) *http.Response {
	if hdr == nil {
		hdr = http.Header{}
	}
	return &http.Response{StatusCode: status, Header: hdr, Body: io.NopCloser(strings.NewReader(body))}
}

// harness builds a client over fake replicas with a manual clock, recorded
// sleeps (which advance the clock instead of waiting), and a fixed-jitter
// rng so every delay is exact.
type harness struct {
	clock  *fakeClock
	sleeps []time.Duration
	rngVal float64
	calls  atomic.Int64
	rec    *obs.Registry
}

func newHarness(t *testing.T, fleet []string, p Policy, rt rtFunc) (*Client, *harness) {
	t.Helper()
	h := &harness{clock: newFakeClock(), rngVal: 1}
	h.rec = obs.NewRegistry()
	c, err := New(fleet, Options{Policy: p, Recorder: h.rec, Transport: rtFunc(func(r *http.Request) (*http.Response, error) {
		h.calls.Add(1)
		return rt(r)
	})})
	if err != nil {
		t.Fatal(err)
	}
	c.now = h.clock.now
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		h.sleeps = append(h.sleeps, d)
		h.clock.advance(d)
		return nil
	}
	c.rng = func() float64 { return h.rngVal }
	return c, h
}

func (h *harness) counter(name string) float64 {
	return h.rec.Snapshot().Counters[name]
}

// TestBackoffBounds: the k-th retry delay is uniform on
// [0, min(MaxBackoff, Base·2ᵏ⁻¹)] — verified at both jitter extremes.
func TestBackoffBounds(t *testing.T) {
	c, h := newHarness(t, []string{"http://a.test"}, Policy{
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  time.Second,
	}, nil)

	h.rngVal = 1 // upper edge
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond, time.Second, time.Second}
	for k, w := range want {
		if got := c.backoff(k + 1); got != w {
			t.Errorf("backoff(%d) at jitter 1 = %v, want %v", k+1, got, w)
		}
	}
	h.rngVal = 0 // lower edge: full jitter reaches zero
	for k := 1; k <= 6; k++ {
		if got := c.backoff(k); got != 0 {
			t.Errorf("backoff(%d) at jitter 0 = %v, want 0", k, got)
		}
	}
	h.rngVal = 0.5
	if got := c.backoff(2); got != 100*time.Millisecond {
		t.Errorf("backoff(2) at jitter 0.5 = %v, want 100ms", got)
	}
}

// TestRetryOnTransportErrorThenSuccess: transport failures are retried and
// the eventual success is returned with the right attempt number.
func TestRetryOnTransportErrorThenSuccess(t *testing.T) {
	var n atomic.Int64
	c, h := newHarness(t, []string{"http://a.test"}, Policy{MaxAttempts: 4}, func(r *http.Request) (*http.Response, error) {
		if n.Add(1) <= 2 {
			return nil, errors.New("connection refused")
		}
		return httpResp(200, `{"ok":true}`, nil), nil
	})
	res, err := c.Do(context.Background(), http.MethodGet, "/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || res.Attempt != 3 || res.Replica != "http://a.test" {
		t.Fatalf("res = %+v", res)
	}
	if got := h.counter(obs.MetricResilientRetries); got != 2 {
		t.Fatalf("retries counter = %v, want 2", got)
	}
}

// TestRetryAfterHonored: a 503's Retry-After raises the next delay to the
// server's ask (jitter forced to zero), and an absurd ask is capped at
// MaxBackoff.
func TestRetryAfterHonored(t *testing.T) {
	var n atomic.Int64
	hdr1 := http.Header{"Retry-After": []string{"3"}}
	hdr2 := http.Header{"Retry-After": []string{"3600"}}
	c, h := newHarness(t, []string{"http://a.test"}, Policy{
		MaxAttempts: 4,
		MaxBackoff:  5 * time.Second,
	}, func(r *http.Request) (*http.Response, error) {
		switch n.Add(1) {
		case 1:
			return httpResp(503, "busy", hdr1), nil
		case 2:
			return httpResp(503, "busy", hdr2), nil
		default:
			return httpResp(200, "ok", nil), nil
		}
	})
	h.rngVal = 0 // jittered backoff contributes nothing; Retry-After rules
	res, err := c.Do(context.Background(), http.MethodGet, "/v1/solve", nil)
	if err != nil || res.Status != 200 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if len(h.sleeps) != 2 || h.sleeps[0] != 3*time.Second || h.sleeps[1] != 5*time.Second {
		t.Fatalf("sleeps = %v, want [3s 5s(capped)]", h.sleeps)
	}
	if got := h.counter(obs.MetricResilientRetryAfter); got != 2 {
		t.Fatalf("retry-after counter = %v, want 2", got)
	}
}

// TestRetryAfterBelowBackoffIgnored: when the jittered backoff already
// exceeds the server's ask, the longer delay wins (never sleep less than
// the policy would have).
func TestRetryAfterBelowBackoffIgnored(t *testing.T) {
	var n atomic.Int64
	c, h := newHarness(t, []string{"http://a.test"}, Policy{
		BaseBackoff: 2 * time.Second,
		MaxBackoff:  10 * time.Second,
	}, func(r *http.Request) (*http.Response, error) {
		if n.Add(1) == 1 {
			return httpResp(429, "shed", http.Header{"Retry-After": []string{"1"}}), nil
		}
		return httpResp(200, "ok", nil), nil
	})
	h.rngVal = 1
	if _, err := c.Do(context.Background(), http.MethodGet, "/", nil); err != nil {
		t.Fatal(err)
	}
	if len(h.sleeps) != 1 || h.sleeps[0] != 2*time.Second {
		t.Fatalf("sleeps = %v, want [2s] (backoff beats the 1s ask)", h.sleeps)
	}
}

// TestNonRetryableStatusReturnsImmediately: 4xx (except 429) is the
// caller's problem, not the fleet's — one transport call, err nil.
func TestNonRetryableStatusReturnsImmediately(t *testing.T) {
	c, h := newHarness(t, []string{"http://a.test"}, Policy{}, func(r *http.Request) (*http.Response, error) {
		return httpResp(400, "bad marginal", nil), nil
	})
	res, err := c.Do(context.Background(), http.MethodPost, "/v1/solve", []byte(`{}`))
	if err != nil || res.Status != 400 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if h.calls.Load() != 1 {
		t.Fatalf("transport called %d times, want 1", h.calls.Load())
	}
}

// TestBreakerOpensAndFastFails: after the failure threshold the breaker
// trips; further attempts never reach the transport while the cooldown
// runs, and Do reports every breaker open.
func TestBreakerOpensAndFastFails(t *testing.T) {
	c, h := newHarness(t, []string{"http://a.test"}, Policy{
		MaxAttempts:     1,
		BreakerFailures: 2,
		BreakerCooldown: 10 * time.Second,
	}, func(r *http.Request) (*http.Response, error) {
		return nil, errors.New("down")
	})
	for i := 0; i < 2; i++ {
		if _, err := c.Do(context.Background(), http.MethodGet, "/", nil); err == nil {
			t.Fatal("want transport error")
		}
	}
	if got := h.counter(obs.MetricResilientBreakerOpens); got != 1 {
		t.Fatalf("opens counter = %v, want 1", got)
	}
	_, err := c.Do(context.Background(), http.MethodGet, "/", nil)
	if !errors.Is(err, ErrAllBreakersOpen) {
		t.Fatalf("err = %v, want ErrAllBreakersOpen", err)
	}
	if h.calls.Load() != 2 {
		t.Fatalf("transport called %d times, want 2 (fast-fail skipped it)", h.calls.Load())
	}
	if got := h.counter(obs.MetricResilientBreakerFastFail); got != 1 {
		t.Fatalf("fastfail counter = %v, want 1", got)
	}
}

// TestBreakerHalfOpenProbe: after the cooldown one probe goes through; a
// successful probe closes the breaker, a failed probe re-opens it.
func TestBreakerHalfOpenProbe(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	c, h := newHarness(t, []string{"http://a.test"}, Policy{
		MaxAttempts:     1,
		BreakerFailures: 2,
		BreakerCooldown: 10 * time.Second,
	}, func(r *http.Request) (*http.Response, error) {
		if fail.Load() {
			return nil, errors.New("down")
		}
		return httpResp(200, "ok", nil), nil
	})
	trip := func() {
		for i := 0; i < 2; i++ {
			c.Do(context.Background(), http.MethodGet, "/", nil)
		}
	}
	trip()

	// Probe succeeds → breaker closes, traffic flows again.
	h.clock.advance(11 * time.Second)
	fail.Store(false)
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil)
	if err != nil || res.Status != 200 {
		t.Fatalf("probe: res=%+v err=%v", res, err)
	}
	if got := h.counter(obs.MetricResilientBreakerProbes); got != 1 {
		t.Fatalf("probes counter = %v, want 1", got)
	}
	if !c.replicas[0].b.closed() {
		t.Fatal("breaker still not closed after successful probe")
	}

	// Trip again; a failed probe re-opens immediately.
	fail.Store(true)
	trip()
	h.clock.advance(11 * time.Second)
	c.Do(context.Background(), http.MethodGet, "/", nil) // failed probe
	if got := h.counter(obs.MetricResilientBreakerOpens); got != 3 {
		t.Fatalf("opens counter = %v, want 3 (trip, trip, failed probe)", got)
	}
	if _, err := c.Do(context.Background(), http.MethodGet, "/", nil); !errors.Is(err, ErrAllBreakersOpen) {
		t.Fatalf("after failed probe: err = %v, want fast-fail", err)
	}
}

// TestRotationSkipsOpenBreaker: with one dead replica tripped, every
// subsequent request lands on the healthy one — no wasted attempts.
func TestRotationSkipsOpenBreaker(t *testing.T) {
	var healthy atomic.Int64
	c, _ := newHarness(t, []string{"http://dead.test", "http://live.test"}, Policy{
		MaxAttempts:     2,
		BreakerFailures: 1,
		BreakerCooldown: time.Hour,
	}, func(r *http.Request) (*http.Response, error) {
		if r.URL.Host == "dead.test" {
			return nil, errors.New("down")
		}
		healthy.Add(1)
		return httpResp(200, "ok", nil), nil
	})
	for i := 0; i < 6; i++ {
		res, err := c.Do(context.Background(), http.MethodGet, "/", nil)
		if err != nil || res.Status != 200 || res.Replica != "http://live.test" {
			t.Fatalf("iter %d: res=%+v err=%v", i, res, err)
		}
	}
	if healthy.Load() != 6 {
		t.Fatalf("healthy replica served %d, want 6", healthy.Load())
	}
}

// TestHedgedRequestWinsAndCancelsPrimary: the primary stalls, the hedge
// timer fires, a duplicate goes to the second replica and wins; the
// primary's in-flight request is canceled.
func TestHedgedRequestWinsAndCancelsPrimary(t *testing.T) {
	primaryCanceled := make(chan struct{})
	c, h := newHarness(t, []string{"http://slow.test", "http://fast.test"}, Policy{
		MaxAttempts: 1,
		HedgeAfter:  50 * time.Millisecond,
	}, func(r *http.Request) (*http.Response, error) {
		if r.URL.Host == "slow.test" {
			<-r.Context().Done() // stall until hedging cancels us
			close(primaryCanceled)
			return nil, r.Context().Err()
		}
		return httpResp(200, `{"loss":0.25}`, nil), nil
	})
	// Pre-fired hedge timer: the "delay" elapses instantly.
	fired := make(chan time.Time, 1)
	fired <- time.Time{}
	c.afterFn = func(d time.Duration) (<-chan time.Time, func() bool) {
		if d != 50*time.Millisecond {
			t.Errorf("hedge delay = %v, want 50ms", d)
		}
		return fired, func() bool { return false }
	}

	res, err := c.Do(context.Background(), http.MethodGet, "/v1/solve", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged || res.Replica != "http://fast.test" || res.Status != 200 {
		t.Fatalf("res = %+v, want hedged win from fast.test", res)
	}
	select {
	case <-primaryCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("primary request was never canceled")
	}
	if h.counter(obs.MetricResilientHedges) != 1 || h.counter(obs.MetricResilientHedgeWins) != 1 {
		t.Fatalf("hedge counters = %v/%v, want 1/1",
			h.counter(obs.MetricResilientHedges), h.counter(obs.MetricResilientHedgeWins))
	}
	// The canceled primary must not have been scored against its breaker.
	if !c.replicas[0].b.closed() {
		t.Fatal("canceled primary counted as a breaker failure")
	}
}

// TestHedgeSkipsNonClosedBreakers: with the only other replica tripped,
// the hedge timer finds no candidate and the primary's answer stands.
func TestHedgeSkipsNonClosedBreakers(t *testing.T) {
	block := make(chan struct{})
	c, h := newHarness(t, []string{"http://a.test", "http://b.test"}, Policy{
		MaxAttempts: 1,
		HedgeAfter:  time.Millisecond,
	}, func(r *http.Request) (*http.Response, error) {
		if r.URL.Host == "b.test" {
			t.Error("hedged to a replica with an open breaker")
		}
		<-block
		return httpResp(200, "ok", nil), nil
	})
	c.replicas[1].b.state = stateOpen
	c.replicas[1].b.openedAt = c.now()
	fired := make(chan time.Time, 1)
	fired <- time.Time{}
	c.afterFn = func(d time.Duration) (<-chan time.Time, func() bool) { return fired, func() bool { return false } }
	go func() { time.Sleep(10 * time.Millisecond); close(block) }()
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil)
	if err != nil || res.Hedged {
		t.Fatalf("res=%+v err=%v, want unhedged success", res, err)
	}
	if h.counter(obs.MetricResilientHedges) != 0 {
		t.Fatal("hedge launched despite open breaker")
	}
}

// TestContextCancelDuringBackoff: a canceled caller context aborts the
// retry loop from inside the backoff sleep.
func TestContextCancelDuringBackoff(t *testing.T) {
	c, _ := newHarness(t, []string{"http://a.test"}, Policy{MaxAttempts: 5}, func(r *http.Request) (*http.Response, error) {
		return nil, errors.New("down")
	})
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the deadline fires mid-backoff
		return ctx.Err()
	}
	_, err := c.Do(ctx, http.MethodGet, "/", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExhaustedAttemptsReturnLastResponse: when retries run out on a
// retryable status, the caller still gets that final response to inspect.
func TestExhaustedAttemptsReturnLastResponse(t *testing.T) {
	c, _ := newHarness(t, []string{"http://a.test"}, Policy{MaxAttempts: 3}, func(r *http.Request) (*http.Response, error) {
		return httpResp(503, "still busy", nil), nil
	})
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil)
	if err != nil || res.Status != 503 {
		t.Fatalf("res=%+v err=%v, want the final 503", res, err)
	}
}

// TestDoJSON: request/response bodies round-trip; non-2xx surfaces as a
// StatusError carrying replica and body.
func TestDoJSON(t *testing.T) {
	c, _ := newHarness(t, []string{"http://a.test"}, Policy{}, func(r *http.Request) (*http.Response, error) {
		b, _ := io.ReadAll(r.Body)
		if !strings.Contains(string(b), `"util":0.8`) {
			return httpResp(400, `{"error":"bad request"}`, nil), nil
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q", ct)
		}
		return httpResp(200, `{"loss":0.125}`, nil), nil
	})
	var out struct {
		Loss float64 `json:"loss"`
	}
	if _, err := c.DoJSON(context.Background(), http.MethodPost, "/v1/solve", map[string]float64{"util": 0.8}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Loss != 0.125 {
		t.Fatalf("loss = %v", out.Loss)
	}
	var se *StatusError
	_, err := c.DoJSON(context.Background(), http.MethodPost, "/v1/solve", map[string]float64{"util": 0.2}, &out)
	if !errors.As(err, &se) || se.Status != 400 || se.Replica != "http://a.test" {
		t.Fatalf("err = %v, want StatusError{400, a.test}", err)
	}
}

// TestParseRetryAfter covers both header forms and garbage.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		v    string
		want time.Duration
	}{
		{"", 0},
		{"7", 7 * time.Second},
		{"-1", 0},
		{"soon", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0},
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.v != "" {
			h.Set("Retry-After", tc.v)
		}
		if got := parseRetryAfter(h, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

// TestNewRejectsBadFleet: empty fleets and relative URLs are config
// errors, not runtime surprises.
func TestNewRejectsBadFleet(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := New([]string{"not-a-url"}, Options{}); err == nil {
		t.Fatal("relative URL accepted")
	}
}

// TestLatencyHistQuantile: the log₂ histogram brackets quantiles from
// above and withholds judgment below the sample floor.
func TestLatencyHistQuantile(t *testing.T) {
	var h latencyHist
	if _, ok := h.quantile(0.95); ok {
		t.Fatal("quantile reported with zero samples")
	}
	for i := 0; i < 100; i++ {
		h.observe(3 * time.Millisecond) // bucket top 2^22 ns ≈ 4.19ms
	}
	h.observe(400 * time.Millisecond)
	q, ok := h.quantile(0.95)
	if !ok || q > 8*time.Millisecond || q < 3*time.Millisecond {
		t.Fatalf("p95 = %v ok=%v, want within [3ms, 8ms]", q, ok)
	}
	q99, _ := h.quantile(0.999)
	if q99 < 256*time.Millisecond {
		t.Fatalf("p99.9 = %v, want to see the outlier", q99)
	}
}

// TestDisabledPathAllocs: with no recorder, the per-request resilience
// bookkeeping — replica pick, breaker verdict, backoff arithmetic, latency
// observation, hedge-delay lookup — allocates nothing.
func TestDisabledPathAllocs(t *testing.T) {
	c, err := New([]string{"http://a.test", "http://b.test"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		rep, _ := c.pick()
		c.settle(rep, &okResp, nil, false)
		_ = c.backoff(3)
		c.lat.observe(2 * time.Millisecond)
		_ = c.hedgeDelay()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v/op, want 0", allocs)
	}
}

var okResp = Response{Status: 200}

func BenchmarkPickSettle(b *testing.B) {
	c, err := New([]string{"http://a.test", "http://b.test", "http://c.test"}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, _ := c.pick()
		c.settle(rep, &okResp, nil, false)
	}
}

func BenchmarkBackoff(b *testing.B) {
	c, _ := New([]string{"http://a.test"}, Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.backoff(1 + i%4)
	}
}

func BenchmarkLatencyObserve(b *testing.B) {
	var h latencyHist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.observe(time.Duration(i%1000+1) * time.Microsecond)
	}
}
