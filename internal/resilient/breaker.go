package resilient

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit: closed (traffic flows,
// failures counted), open (traffic refused until the cooldown elapses),
// half-open (exactly one probe in flight decides reopen vs close).
type breakerState uint8

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// breaker guards one replica. All methods are safe for concurrent use; the
// mutex is uncontended in the common closed path and the critical sections
// never block on I/O or allocate.
type breaker struct {
	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe slot is reserved
}

// allow reports whether a request may proceed. probe is true when the
// caller holds the half-open breaker's single probe slot — its outcome
// decides the breaker's fate, so the caller must eventually call record
// (or cancelProbe if the request never ran to completion on its own
// merits).
func (b *breaker) allow(now time.Time, cooldown time.Duration) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true, false
	case stateOpen:
		if now.Sub(b.openedAt) < cooldown {
			return false, false
		}
		b.state = stateHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false // the in-flight probe owns the verdict
		}
		b.probing = true
		return true, true
	}
}

// closed reports whether the breaker is fully closed — the only state a
// hedge request may target (a half-open probe slot is too scarce to spend
// on a duplicate).
func (b *breaker) closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == stateClosed
}

// record applies a request outcome and reports whether this call tripped
// the breaker open (for the opens counter — transitions, not rejections).
func (b *breaker) record(success bool, threshold int, now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.state = stateClosed
		b.failures = 0
		b.probing = false
		return false
	}
	switch b.state {
	case stateClosed:
		b.failures++
		if b.failures >= threshold {
			b.state = stateOpen
			b.openedAt = now
			b.failures = 0
			return true
		}
	case stateHalfOpen:
		// The probe failed: straight back to open, restarting the cooldown.
		b.state = stateOpen
		b.openedAt = now
		b.probing = false
		return true
	case stateOpen:
		// A stale outcome from before the trip; nothing to update.
	}
	return false
}

// cancelProbe releases a half-open probe slot whose request was canceled
// by the caller (not failed by the replica), letting the next attempt
// probe instead of deadlocking the breaker half-open forever.
func (b *breaker) cancelProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == stateHalfOpen {
		b.probing = false
	}
}
