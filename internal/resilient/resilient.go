// Package resilient is the fleet-facing HTTP client under lrdcall and
// lrdsweep's remote mode: the piece that lets a sweep ride a flaky
// lrdserve fleet without either hammering a struggling replica or
// abandoning work a healthy one could finish.
//
// The policy layers compose per request:
//
//   - Retries with exponential backoff and full jitter (delay is uniform
//     on [0, min(cap, base·2ᵏ)]), so a thundering herd of workers decor-
//     relates instead of re-colliding. A 429/503 Retry-After header, when
//     present, raises the next delay to what the server asked for (capped
//     by MaxBackoff — a confused server cannot stall a sweep forever).
//   - Per-host circuit breakers: after BreakerFailures consecutive
//     transport errors or 5xx responses a replica's breaker opens and the
//     client stops sending to it; after BreakerCooldown one half-open
//     probe request tests the water, closing the breaker on success and
//     re-opening it immediately on failure. With several replicas the
//     round-robin rotation simply skips open breakers, so retries land on
//     healthy hosts without waiting out a dead one.
//   - Optional hedging: when a request has been in flight for HedgeAfter
//     (or the observed latency quantile, whichever is larger), a duplicate
//     is sent to a second healthy replica and the first response wins; the
//     loser is canceled. Hedging is idempotent-safe here because every
//     lrdserve endpoint is a deterministic, cacheable computation.
//   - Context-deadline propagation: the caller's ctx bounds everything —
//     transport, backoff sleeps, and hedge waits all abort with ctx.Err().
//
// All time sources (clock, sleep, hedge timer, jitter) are injectable, so
// the unit suite proves the policy under a fake clock; the disabled paths
// (no recorder, no hedging) are 0 allocs/op, matching the obs layer's bar.
package resilient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"lrd/internal/obs"
)

// Policy is the per-client resilience configuration. The zero value means
// "defaults" (see the field comments), not "disabled" — except HedgeAfter
// and HedgeQuantile, whose zero genuinely disables hedging.
type Policy struct {
	// MaxAttempts is the total tries per Do call (first attempt included).
	// Default 4.
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule: the k-th retry waits
	// uniform [0, min(MaxBackoff, BaseBackoff·2ᵏ⁻¹)]. Default 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps every delay, including an honored Retry-After.
	// Default 5s.
	MaxBackoff time.Duration
	// BreakerFailures is the consecutive-failure count that opens a host's
	// circuit breaker. Default 5.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker refuses traffic before
	// allowing one half-open probe. Default 5s.
	BreakerCooldown time.Duration
	// HedgeAfter duplicates an in-flight request to a second replica after
	// this delay. Zero disables hedging (unless HedgeQuantile is set).
	HedgeAfter time.Duration
	// HedgeQuantile, when in (0,1), derives the hedge delay from the
	// client's own observed latency distribution (e.g. 0.95 hedges the
	// slowest 5%), once enough samples exist; HedgeAfter then acts as a
	// floor. Zero uses the static HedgeAfter alone.
	HedgeQuantile float64
	// MaxBodyBytes caps a response body read. Default 8 MiB.
	MaxBodyBytes int64
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.BreakerFailures <= 0 {
		p.BreakerFailures = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 5 * time.Second
	}
	if p.MaxBodyBytes <= 0 {
		p.MaxBodyBytes = 8 << 20
	}
	return p
}

// Options configures New beyond the policy.
type Options struct {
	// Policy is the resilience configuration (zero value = defaults).
	Policy Policy
	// Transport overrides the HTTP transport (default http.DefaultTransport).
	Transport http.RoundTripper
	// Recorder receives the resilient_* metrics. Nil disables them for free.
	Recorder obs.Recorder
}

// ErrAllBreakersOpen is wrapped by Do when every replica's circuit breaker
// refused the attempt.
var ErrAllBreakersOpen = errors.New("resilient: all replica breakers are open")

// StatusError is returned by DoJSON for a non-2xx final response, carrying
// enough context to say which replica said what.
type StatusError struct {
	Status  int
	Body    []byte
	Replica string
}

func (e *StatusError) Error() string {
	body := string(e.Body)
	if len(body) > 200 {
		body = body[:200] + "…"
	}
	return fmt.Sprintf("resilient: %s replied %d: %s", e.Replica, e.Status, strings.TrimSpace(body))
}

// Response is the outcome of a Do call: the winning replica's reply with
// the body fully read.
type Response struct {
	Status  int
	Header  http.Header
	Body    []byte
	Replica string // base URL of the replica that answered
	Attempt int    // 1-based attempt number that produced this response
	Hedged  bool   // answered by the hedged duplicate, not the primary
}

// replica is one fleet member: its base URL and circuit breaker.
type replica struct {
	base    *url.URL
	baseStr string
	b       breaker
}

// Client is a fleet-aware HTTP client. Safe for concurrent use.
type Client struct {
	replicas  []*replica
	policy    Policy
	transport http.RoundTripper
	rec       obs.Recorder
	next      atomic.Uint64 // round-robin cursor over replicas
	lat       latencyHist   // successful-request latencies, feeds HedgeQuantile

	// Injectable time and randomness, for the fake-clock unit suite.
	now     func() time.Time
	sleep   func(ctx context.Context, d time.Duration) error
	afterFn func(d time.Duration) (<-chan time.Time, func() bool)
	rng     func() float64 // uniform [0,1) jitter source
}

// New builds a Client over the fleet's base URLs (e.g.
// "http://10.0.0.1:8080"). At least one replica is required; order only
// seeds the round-robin rotation.
func New(fleet []string, opts Options) (*Client, error) {
	if len(fleet) == 0 {
		return nil, errors.New("resilient: fleet must list at least one replica URL")
	}
	c := &Client{
		policy:    opts.Policy.withDefaults(),
		transport: opts.Transport,
		rec:       opts.Recorder,
		now:       time.Now,
		sleep:     sleepCtx,
		afterFn:   after,
		rng:       rand.Float64,
	}
	if c.transport == nil {
		c.transport = http.DefaultTransport
	}
	for _, raw := range fleet {
		u, err := url.Parse(strings.TrimSpace(raw))
		if err != nil {
			return nil, fmt.Errorf("resilient: replica URL %q: %w", raw, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("resilient: replica URL %q must be absolute (scheme://host)", raw)
		}
		c.replicas = append(c.replicas, &replica{base: u, baseStr: strings.TrimRight(u.String(), "/")})
	}
	return c, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func after(d time.Duration) (<-chan time.Time, func() bool) {
	t := time.NewTimer(d)
	return t.C, t.Stop
}

// backoff returns the k-th (1-based) retry's full-jitter delay.
func (c *Client) backoff(k int) time.Duration {
	d := c.policy.BaseBackoff
	for i := 1; i < k && d < c.policy.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.policy.MaxBackoff {
		d = c.policy.MaxBackoff
	}
	return time.Duration(c.rng() * float64(d))
}

// parseRetryAfter reads a Retry-After header as either delta-seconds or an
// HTTP date; 0 means absent or unusable.
func parseRetryAfter(h http.Header, now time.Time) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// retryable reports whether a response status is worth another attempt:
// 5xx (replica trouble) and 429 (shed — the fleet asked us to come back).
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// failure reports whether a response status counts against a replica's
// breaker. 429 does not: a shedding server is alive and protecting itself,
// and opening its breaker would turn backpressure into an outage.
func failure(status int) bool {
	return status >= 500
}

// Do sends one logical request to the fleet and returns the first usable
// response, retrying per the policy. A non-retryable status (2xx, 3xx,
// 4xx except 429) returns immediately with err nil — HTTP-level failure is
// the caller's to interpret. When attempts run out, the last HTTP response
// (if any) is returned with err nil, else the last transport error. A
// canceled ctx always wins: the return is (nil, ctx.Err()).
func (c *Client) Do(ctx context.Context, method, path string, body []byte) (*Response, error) {
	if c.rec != nil {
		c.rec.Add(obs.MetricResilientRequests, 1)
	}
	var (
		lastErr    error
		lastResp   *Response
		retryAfter time.Duration
	)
	for attempt := 1; attempt <= c.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			d := c.backoff(attempt - 1)
			if retryAfter > 0 {
				if retryAfter > c.policy.MaxBackoff {
					retryAfter = c.policy.MaxBackoff
				}
				if retryAfter > d {
					d = retryAfter
				}
				if c.rec != nil {
					c.rec.Add(obs.MetricResilientRetryAfter, 1)
				}
				retryAfter = 0
			}
			if err := c.sleep(ctx, d); err != nil {
				return nil, err
			}
			if c.rec != nil {
				c.rec.Add(obs.MetricResilientRetries, 1)
			}
		}
		rep, probe := c.pick()
		if rep == nil {
			lastErr = fmt.Errorf("%w (%d replicas)", ErrAllBreakersOpen, len(c.replicas))
			continue // backoff, then re-check: a cooldown may have elapsed
		}
		res, err := c.attempt(ctx, rep, probe, method, path, body)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if err != nil {
			lastErr = err
			continue
		}
		res.Attempt = attempt
		if !retryable(res.Status) {
			return res, nil
		}
		lastResp = res
		retryAfter = parseRetryAfter(res.Header, c.now())
	}
	if lastResp != nil {
		return lastResp, nil
	}
	return nil, lastErr
}

// DoJSON marshals reqBody (unless nil), Does, and unmarshals a 2xx reply
// into respBody (unless nil). Non-2xx final responses return *StatusError
// alongside the response.
func (c *Client) DoJSON(ctx context.Context, method, path string, reqBody, respBody any) (*Response, error) {
	var payload []byte
	if reqBody != nil {
		var err error
		if payload, err = json.Marshal(reqBody); err != nil {
			return nil, fmt.Errorf("resilient: encoding request: %w", err)
		}
	}
	res, err := c.Do(ctx, method, path, payload)
	if err != nil {
		return nil, err
	}
	if res.Status < 200 || res.Status > 299 {
		return res, &StatusError{Status: res.Status, Body: res.Body, Replica: res.Replica}
	}
	if respBody != nil {
		if err := json.Unmarshal(res.Body, respBody); err != nil {
			return res, fmt.Errorf("resilient: decoding %s reply: %w", res.Replica, err)
		}
	}
	return res, nil
}

// pick returns the next replica in rotation whose breaker admits a
// request, preferring closed breakers and falling back to a half-open
// probe; nil when every breaker is open.
func (c *Client) pick() (*replica, bool) {
	n := len(c.replicas)
	start := int(c.next.Add(1)-1) % n
	now := c.now()
	for i := 0; i < n; i++ {
		r := c.replicas[(start+i)%n]
		if ok, probe := r.b.allow(now, c.policy.BreakerCooldown); ok {
			if probe && c.rec != nil {
				c.rec.Add(obs.MetricResilientBreakerProbes, 1)
			}
			return r, probe
		}
	}
	if c.rec != nil {
		c.rec.Add(obs.MetricResilientBreakerFastFail, 1)
	}
	return nil, false
}

// pickHedge returns a second, distinct replica whose breaker is fully
// closed (a half-open breaker's single probe slot is never spent on a
// hedge), or nil.
func (c *Client) pickHedge(primary *replica) *replica {
	n := len(c.replicas)
	start := int(c.next.Add(1)-1) % n
	for i := 0; i < n; i++ {
		r := c.replicas[(start+i)%n]
		if r != primary && r.b.closed() {
			return r
		}
	}
	return nil
}

// hedgeDelay returns the in-flight duration after which a request is
// hedged; 0 disables.
func (c *Client) hedgeDelay() time.Duration {
	p := c.policy
	if p.HedgeQuantile > 0 && p.HedgeQuantile < 1 {
		if q, ok := c.lat.quantile(p.HedgeQuantile); ok {
			if q < p.HedgeAfter {
				return p.HedgeAfter
			}
			return q
		}
	}
	return p.HedgeAfter
}

// settle applies one attempt's outcome to a replica's breaker. Outcomes of
// requests we canceled ourselves (hedge losers) are discounted: the
// replica wasn't given a chance to answer.
func (c *Client) settle(rep *replica, res *Response, err error, canceled bool) {
	if canceled {
		rep.b.cancelProbe()
		return
	}
	success := err == nil && !failure(res.Status)
	if rep.b.record(success, c.policy.BreakerFailures, c.now()) && c.rec != nil {
		c.rec.Add(obs.MetricResilientBreakerOpens, 1)
	}
}

// attempt performs one try, hedging to a second replica if the primary is
// slow and the policy allows. probe marks a half-open breaker's test
// request, which is deliberately a single unhedged trial.
func (c *Client) attempt(ctx context.Context, rep *replica, probe bool, method, path string, body []byte) (*Response, error) {
	hedge := c.hedgeDelay()
	if probe || hedge <= 0 || len(c.replicas) < 2 {
		res, err := c.roundTrip(ctx, rep, method, path, body)
		c.settle(rep, res, err, err != nil && ctx.Err() != nil)
		return res, err
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		rep *replica
		res *Response
		err error
	}
	ch := make(chan outcome, 2) // buffered: a late loser must never leak its goroutine
	launch := func(r *replica) {
		go func() {
			res, err := c.roundTrip(cctx, r, method, path, body)
			ch <- outcome{rep: r, res: res, err: err}
		}()
	}
	launch(rep)
	inFlight := 1
	timer, stop := c.afterFn(hedge)
	defer stop()
	var hedged *replica
	for {
		select {
		case o := <-ch:
			inFlight--
			won := o.err == nil && !failure(o.res.Status)
			// A loser we cancel never reaches this receive (we return on the
			// win and its outcome lands in the buffered channel unread), so
			// every settled outcome here is the replica's own doing — except
			// a caller-level cancel, which carries no verdict.
			c.settle(o.rep, o.res, o.err, o.err != nil && ctx.Err() != nil)
			if won {
				cancel() // release the loser immediately
				if o.rep == hedged {
					o.res.Hedged = true
					if c.rec != nil {
						c.rec.Add(obs.MetricResilientHedgeWins, 1)
					}
				}
				return o.res, nil
			}
			if inFlight == 0 {
				return o.res, o.err
			}
		case <-timer:
			if h := c.pickHedge(rep); h != nil {
				hedged = h
				launch(h)
				inFlight++
				if c.rec != nil {
					c.rec.Add(obs.MetricResilientHedges, 1)
				}
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// roundTrip sends one HTTP request to one replica and reads the body.
func (c *Client) roundTrip(ctx context.Context, rep *replica, method, path string, body []byte) (*Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rep.baseStr+path, rd)
	if err != nil {
		return nil, fmt.Errorf("resilient: building request for %s: %w", rep.baseStr, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := c.now()
	hres, err := c.transport.RoundTrip(req)
	if err != nil {
		return nil, fmt.Errorf("resilient: %s: %w", rep.baseStr, err)
	}
	defer hres.Body.Close()
	b, err := io.ReadAll(io.LimitReader(hres.Body, c.policy.MaxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("resilient: reading %s reply: %w", rep.baseStr, err)
	}
	if int64(len(b)) > c.policy.MaxBodyBytes {
		return nil, fmt.Errorf("resilient: %s reply exceeds %d-byte body cap", rep.baseStr, c.policy.MaxBodyBytes)
	}
	elapsed := c.now().Sub(start)
	if c.rec != nil {
		c.rec.Observe(obs.MetricResilientRequestSeconds, elapsed.Seconds())
	}
	if !failure(hres.StatusCode) {
		// Only successful latencies feed the hedge trigger: fast failures
		// would drag the quantile down and hedge everything.
		c.lat.observe(elapsed)
	}
	return &Response{
		Status:  hres.StatusCode,
		Header:  hres.Header,
		Body:    b,
		Replica: rep.baseStr,
	}, nil
}
