package resilient

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyHist is a lock-free log₂ histogram of successful request
// latencies. Bucket k holds durations whose nanosecond count has bit
// length k, i.e. [2ᵏ⁻¹, 2ᵏ) ns — coarse (factor-of-two) resolution, which
// is plenty for a hedge trigger and costs two atomic adds per sample with
// zero allocation.
type latencyHist struct {
	buckets [64]atomic.Uint64
	count   atomic.Uint64
}

// minHedgeSamples gates the adaptive hedge delay: below this many
// observations the quantile is noise and the static HedgeAfter rules.
const minHedgeSamples = 8

func (h *latencyHist) observe(d time.Duration) {
	if d <= 0 {
		return
	}
	h.buckets[bits.Len64(uint64(d))].Add(1)
	h.count.Add(1)
}

// quantile returns an upper bound on the q-th latency quantile (the top of
// its bucket), or ok=false before minHedgeSamples observations.
func (h *latencyHist) quantile(q float64) (time.Duration, bool) {
	total := h.count.Load()
	if total < minHedgeSamples {
		return 0, false
	}
	// rank is 1-based: the ceil(q·total)-th smallest sample.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for k := range h.buckets {
		seen += h.buckets[k].Load()
		if seen >= rank {
			if k >= 63 {
				return time.Duration(1<<62 - 1), true
			}
			return time.Duration(uint64(1) << uint(k)), true
		}
	}
	return 0, false
}
