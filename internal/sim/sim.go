// Package sim provides discrete-event simulation of the finite-buffer fluid
// queue, both trace-driven (the paper's shuffle experiments, Figs. 7, 8, 14)
// and model-driven Monte Carlo (used to cross-validate the numerical solver
// of package solver against an independent implementation).
//
// Within one constant-rate segment of length T at rate λ the buffer evolves
// linearly, so the exact per-segment update is
//
//	lost  = max(Q + T·(λ−c) − B, 0)
//	Q'    = clamp(Q + T·(λ−c), 0, B)
//
// with no discretization error: the simulation is exact for piecewise-
// constant input, which is precisely the paper's fluid model and also the
// format of its binned traces.
package sim

import (
	"errors"
	"math/rand"

	"lrd/internal/fluid"
)

// LossStats accumulates the work ledger of a simulation run.
type LossStats struct {
	Arrived float64 // total work offered
	Lost    float64 // work dropped on buffer overflow
	Epochs  int     // number of constant-rate segments processed
	FinalQ  float64 // buffer occupancy at the end of the run
}

// LossRate returns Lost/Arrived, the paper's performance metric (Eq. 13).
// It is zero for an empty run.
func (s LossStats) LossRate() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return s.Lost / s.Arrived
}

// Queue is an exact fluid finite-buffer queue in work units.
// The zero value is an empty queue; set ServiceRate and Buffer before use.
type Queue struct {
	ServiceRate float64 // c > 0
	Buffer      float64 // B > 0
	Occupancy   float64 // current buffer content in [0, B]
}

// Offer feeds the queue a segment of duration dt at arrival rate rate and
// returns the work lost during the segment.
func (q *Queue) Offer(rate, dt float64) (lost float64) {
	u := q.Occupancy + dt*(rate-q.ServiceRate)
	if u > q.Buffer {
		lost = u - q.Buffer
		u = q.Buffer
	}
	if u < 0 {
		u = 0
	}
	q.Occupancy = u
	return lost
}

// RunBinnedTrace drives the queue with a binned rate trace (one average rate
// per interval of width binWidth, the paper's trace format) and returns the
// loss ledger. The queue starts empty.
func RunBinnedTrace(rates []float64, binWidth, serviceRate, buffer float64) (LossStats, error) {
	if len(rates) == 0 {
		return LossStats{}, errors.New("sim: empty trace")
	}
	if !(binWidth > 0) || !(serviceRate > 0) || !(buffer > 0) {
		return LossStats{}, errors.New("sim: binWidth, serviceRate and buffer must be positive")
	}
	q := Queue{ServiceRate: serviceRate, Buffer: buffer}
	var st LossStats
	for _, r := range rates {
		st.Arrived += r * binWidth
		st.Lost += q.Offer(r, binWidth)
		st.Epochs++
	}
	st.FinalQ = q.Occupancy
	return st, nil
}

// RunEpochs drives the queue with explicit constant-rate epochs.
func RunEpochs(epochs []fluid.Epoch, serviceRate, buffer float64) (LossStats, error) {
	if len(epochs) == 0 {
		return LossStats{}, errors.New("sim: no epochs")
	}
	if !(serviceRate > 0) || !(buffer > 0) {
		return LossStats{}, errors.New("sim: serviceRate and buffer must be positive")
	}
	q := Queue{ServiceRate: serviceRate, Buffer: buffer}
	var st LossStats
	for _, e := range epochs {
		st.Arrived += e.Rate * e.Duration
		st.Lost += q.Offer(e.Rate, e.Duration)
		st.Epochs++
	}
	st.FinalQ = q.Occupancy
	return st, nil
}

// MonteCarloLoss estimates the stationary loss rate of the fluid queue fed
// by src by simulating n renewal epochs after discarding warmup epochs. It
// is the independent ground truth the solver is validated against.
func MonteCarloLoss(src fluid.Source, serviceRate, buffer float64, n, warmup int, rng *rand.Rand) (LossStats, error) {
	if n <= 0 {
		return LossStats{}, errors.New("sim: need a positive number of epochs")
	}
	if !(serviceRate > 0) || !(buffer > 0) {
		return LossStats{}, errors.New("sim: serviceRate and buffer must be positive")
	}
	q := Queue{ServiceRate: serviceRate, Buffer: buffer}
	for i := 0; i < warmup; i++ {
		q.Offer(src.Marginal.Sample(rng), src.Interarrival.Sample(rng))
	}
	var st LossStats
	for i := 0; i < n; i++ {
		d := src.Interarrival.Sample(rng)
		r := src.Marginal.Sample(rng)
		st.Arrived += r * d
		st.Lost += q.Offer(r, d)
		st.Epochs++
	}
	st.FinalQ = q.Occupancy
	return st, nil
}
