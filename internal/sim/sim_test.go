package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lrd/internal/dist"
	"lrd/internal/fluid"
	"lrd/internal/numerics"
)

func TestOfferBasicDynamics(t *testing.T) {
	q := Queue{ServiceRate: 1, Buffer: 10}
	// Rate 3 for 2 s: net inflow 2·(3−1) = 4 → occupancy 4, no loss.
	if lost := q.Offer(3, 2); lost != 0 {
		t.Fatalf("lost = %v, want 0", lost)
	}
	if q.Occupancy != 4 {
		t.Fatalf("occupancy = %v, want 4", q.Occupancy)
	}
	// Rate 0 for 10 s drains to empty, never negative.
	if lost := q.Offer(0, 10); lost != 0 {
		t.Fatalf("lost = %v, want 0", lost)
	}
	if q.Occupancy != 0 {
		t.Fatalf("occupancy = %v, want 0", q.Occupancy)
	}
	// Rate 2 for 20 s: net inflow 20 overflows the 10-unit buffer by 10.
	if lost := q.Offer(2, 20); lost != 10 {
		t.Fatalf("lost = %v, want 10", lost)
	}
	if q.Occupancy != 10 {
		t.Fatalf("occupancy = %v, want B", q.Occupancy)
	}
}

func TestOfferWorkConservationProperty(t *testing.T) {
	// Work in = work served + work lost + change in occupancy.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := Queue{ServiceRate: 1 + rng.Float64()*5, Buffer: 0.5 + rng.Float64()*10}
		var arrived, lost, served float64
		prevQ := 0.0
		for i := 0; i < 200; i++ {
			r := rng.Float64() * 10
			dt := rng.Float64() * 2
			arrived += r * dt
			l := q.Offer(r, dt)
			lost += l
			// Served work in this segment: inflow − loss − occupancy change.
			served += r*dt - l - (q.Occupancy - prevQ)
			prevQ = q.Occupancy
		}
		// Served work can never exceed c × total time and never be negative.
		return lost >= 0 && served >= -1e-9 && math.Abs(arrived-(lost+served+q.Occupancy)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBinnedTraceValidation(t *testing.T) {
	if _, err := RunBinnedTrace(nil, 0.01, 1, 1); err == nil {
		t.Fatal("want error on empty trace")
	}
	if _, err := RunBinnedTrace([]float64{1}, 0, 1, 1); err == nil {
		t.Fatal("want error on zero bin width")
	}
	if _, err := RunBinnedTrace([]float64{1}, 0.01, 0, 1); err == nil {
		t.Fatal("want error on zero service rate")
	}
	if _, err := RunBinnedTrace([]float64{1}, 0.01, 1, 0); err == nil {
		t.Fatal("want error on zero buffer")
	}
}

func TestRunBinnedTraceDeterministic(t *testing.T) {
	// Constant rate below capacity: zero loss.
	rates := make([]float64, 100)
	for i := range rates {
		rates[i] = 0.5
	}
	st, err := RunBinnedTrace(rates, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Lost != 0 || st.LossRate() != 0 {
		t.Fatalf("loss = %v, want 0", st.Lost)
	}
	if !numerics.AlmostEqual(st.Arrived, 50, 1e-12) {
		t.Fatalf("arrived = %v, want 50", st.Arrived)
	}
	// Constant overload: rate 2 vs capacity 1; buffer fills once then all
	// excess is lost: total excess = 100·(2−1) = 100, minus the 5 stored.
	for i := range rates {
		rates[i] = 2
	}
	st, err = RunBinnedTrace(rates, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(st.Lost, 95, 1e-9) {
		t.Fatalf("lost = %v, want 95", st.Lost)
	}
	if !numerics.AlmostEqual(st.LossRate(), 95.0/200.0, 1e-12) {
		t.Fatalf("loss rate = %v", st.LossRate())
	}
	if st.FinalQ != 5 {
		t.Fatalf("final occupancy = %v, want 5", st.FinalQ)
	}
}

func TestRunEpochsMatchesRunBinnedTrace(t *testing.T) {
	// A binned trace is just a sequence of equal-duration epochs.
	rng := rand.New(rand.NewSource(21))
	rates := make([]float64, 500)
	epochs := make([]fluid.Epoch, 500)
	for i := range rates {
		rates[i] = rng.Float64() * 4
		epochs[i] = fluid.Epoch{Duration: 0.25, Rate: rates[i]}
	}
	a, err := RunBinnedTrace(rates, 0.25, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEpochs(epochs, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(a.Lost, b.Lost, 1e-12) || !numerics.AlmostEqual(a.Arrived, b.Arrived, 1e-12) {
		t.Fatalf("trace-driven and epoch-driven runs disagree: %+v vs %+v", a, b)
	}
}

func TestLossRateEmptyRun(t *testing.T) {
	if (LossStats{}).LossRate() != 0 {
		t.Fatal("empty run should have zero loss rate")
	}
}

func TestMonteCarloLossValidation(t *testing.T) {
	src := testSource(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarloLoss(src, 0, 1, 100, 0, rng); err == nil {
		t.Fatal("want error on zero service rate")
	}
	if _, err := MonteCarloLoss(src, 1, 0, 100, 0, rng); err == nil {
		t.Fatal("want error on zero buffer")
	}
	if _, err := MonteCarloLoss(src, 1, 1, 0, 0, rng); err == nil {
		t.Fatal("want error on zero epochs")
	}
}

func testSource(t *testing.T) fluid.Source {
	t.Helper()
	m := dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	src, err := fluid.New(m, dist.TruncatedPareto{Theta: 0.05, Alpha: 1.4, Cutoff: 2})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestMonteCarloLossOnOffSanity(t *testing.T) {
	// On/off source, mean rate 1, service 1.25 (utilization 0.8), small
	// buffer: loss must be positive but below the no-buffer bound
	// E[(λ−c)⁺]/λ̄ = 0.5·0.75/1 = 0.375.
	src := testSource(t)
	rng := rand.New(rand.NewSource(7))
	st, err := MonteCarloLoss(src, 1.25, 0.05, 400000, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	lr := st.LossRate()
	if lr <= 0 || lr >= 0.375 {
		t.Fatalf("loss rate %v outside (0, 0.375)", lr)
	}
	// Loss decreases with buffer size.
	rng = rand.New(rand.NewSource(7))
	bigger, err := MonteCarloLoss(src, 1.25, 1.0, 400000, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.LossRate() >= lr {
		t.Fatalf("larger buffer should lose less: %v vs %v", bigger.LossRate(), lr)
	}
}

func TestMonteCarloReproducible(t *testing.T) {
	src := testSource(t)
	a, err := MonteCarloLoss(src, 1.25, 0.2, 10000, 100, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloLoss(src, 1.25, 0.2, 10000, 100, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed must reproduce the same ledger")
	}
}
