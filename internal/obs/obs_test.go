package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Add("c", 1)
				r.Observe("h", 0.5)
				r.Set("g", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("c"); got != workers*each {
		t.Fatalf("counter = %v, want %v", got, workers*each)
	}
	if got := r.Histogram("h").Count(); got != workers*each {
		t.Fatalf("histogram count = %v, want %v", got, workers*each)
	}
	if g, ok := r.GaugeValue("g"); !ok || g != each-1 {
		t.Fatalf("gauge = %v, %v", g, ok)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// v in (2^(e-1), 2^e] must land in the bucket whose upper bound is 2^e.
	cases := []struct {
		v  float64
		le float64
	}{
		{1.0, 1.0},                           // exactly 2^0 -> le 2^0
		{1.5, 2.0},                           // in (1, 2] -> le 2^1
		{0.75, 1.0},                          // in (0.5, 1] -> le 2^0
		{1e-20, math.Ldexp(1, histMinExp-1)}, // below range -> low bucket
		{0, math.Ldexp(1, histMinExp-1)},     // zero -> low bucket
		{-3, math.Ldexp(1, histMinExp-1)},    // negative -> low bucket
		{1e20, math.Inf(1)},                  // above range -> high bucket
	}
	for _, c := range cases {
		if got := bucketUpper(bucketIndex(c.v)); got != c.le {
			t.Errorf("bucket upper for %v = %v, want %v", c.v, got, c.le)
		}
		h.Observe(c.v)
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d", h.Count())
	}
	if min := math.Float64frombits(h.min.Load()); min != -3 {
		t.Fatalf("min = %v", min)
	}
	if max := math.Float64frombits(h.max.Load()); max != 1e20 {
		t.Fatalf("max = %v", max)
	}
}

func TestHistogramMeanAndSum(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v)
	}
	if h.Sum() != 6 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Mean() != 2 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestSnapshotJSONRoundtrip(t *testing.T) {
	r := NewRegistry()
	r.Add(MetricSolverSteps, 42)
	r.Set(MetricSolverGap, 0.25)
	r.Observe(MetricSolverStepSeconds, 0.001)
	r.Observe(MetricSolverStepSeconds, 0.002)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if back.Counters[MetricSolverSteps] != 42 {
		t.Fatalf("counters = %v", back.Counters)
	}
	if back.Gauges[MetricSolverGap] != 0.25 {
		t.Fatalf("gauges = %v", back.Gauges)
	}
	h := back.Histograms[MetricSolverStepSeconds]
	if h.Count != 2 || h.Sum != 0.003 {
		t.Fatalf("histogram = %+v", h)
	}
	if len(h.Buckets) == 0 {
		t.Fatal("no buckets exported")
	}
}

func TestSnapshotSanitizesNonFinite(t *testing.T) {
	r := NewRegistry()
	r.Set("g", math.Inf(1))
	r.Gauge("nan").Set(math.NaN())
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("non-finite values broke JSON encoding: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON")
	}
}

func TestLabeled(t *testing.T) {
	got := Labeled(MetricSolverDegraded, "reason", "deadline exceeded")
	want := "solver_degraded_total{reason=deadline exceeded}"
	if got != want {
		t.Fatalf("Labeled = %q, want %q", got, want)
	}
}

func TestSummaryContainsMetrics(t *testing.T) {
	r := NewRegistry()
	r.Add("a_total", 1)
	r.Observe("b_seconds", 2)
	s := r.Snapshot().Summary()
	if !strings.Contains(s, "a_total") || !strings.Contains(s, "b_seconds") {
		t.Fatalf("summary missing metrics:\n%s", s)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	_ = r.Histogram("empty") // created but never observed
	hs := r.Snapshot().Histograms["empty"]
	if hs.Count != 0 || hs.Min != 0 || hs.Max != 0 || hs.Mean != 0 {
		t.Fatalf("empty histogram snapshot = %+v", hs)
	}
}
