package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type for the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// metricHelp carries HELP text for the well-known metric names. Unknown
// names fall back to a generic line so every family still gets a HELP.
var metricHelp = map[string]string{
	MetricSolverSolves:          "Solves started.",
	MetricSolverConverged:       "Solves that reached the requested relative gap.",
	MetricSolverDegraded:        "Solves that returned a degraded (best-effort) result, by reason.",
	MetricSolverNumericErrors:   "Solves aborted by the numeric-health watchdog.",
	MetricSolverSteps:           "Bound iterations executed across all solves.",
	MetricSolverStepSeconds:     "Wall time of one bound iteration.",
	MetricSolverSolveSeconds:    "Wall time of one full solve.",
	MetricSolverSolveIterations: "Bound iterations needed by one solve.",
	MetricSolverFinalBins:       "Grid resolution M at the end of one solve.",
	MetricSolverRefines:         "M-doubling refinements across all solves.",
	MetricSolverBins:            "Current grid resolution M.",
	MetricSolverGap:             "Current relative gap between the loss bounds.",
	MetricSolverMassDrift:       "Absolute probability-mass drift of the current iterate.",
	MetricCoreCellsPlanned:      "Sweep cells planned.",
	MetricCoreCellsStarted:      "Sweep cells started.",
	MetricCoreCellsCompleted:    "Sweep cells completed.",
	MetricCoreCellsDegraded:     "Sweep cells that completed degraded.",
	MetricCoreCellSeconds:       "Wall time of one sweep cell.",
	MetricCoreSweepSeconds:      "Wall time of one whole sweep.",
	MetricCoreWorkers:           "Sweep worker-pool size.",
	MetricCoreCellsResumed:      "Cells skipped via journal replay.",
	MetricCoreCellsRetried:      "Extra cell attempts beyond the first.",
	MetricCoreJournalBytes:      "Bytes appended to the work journal.",
	MetricCoreJournalCorrupt:    "Corrupt journal lines tolerated on load.",
	MetricCoreLeasesClaimed:     "Cells leased by this worker.",
	MetricCoreLeasesRenewed:     "Lease heartbeat renewals appended.",
	MetricCoreLeasesReleased:    "Leases released without completion.",
	MetricCoreLeasesStolen:      "Expired leases this worker took over.",
	MetricCoreLeasesFenced:      "Own leases lost to a newer fencing epoch.",
	MetricCoreLeasesLost:        "Claim races lost to another worker.",
	MetricCoreCellsAdopted:      "Cells completed by other workers and adopted locally.",
	MetricCoreLeaseWaitSecs:     "Time spent waiting on other workers' cells.",
	MetricCoreLeasesHeld:        "Leases currently held.",
	MetricCoreLeaseEpoch:        "Highest fencing epoch observed.",
	MetricServeRequests:         "HTTP requests received.",
	MetricServeAdmitted:         "Requests admitted to a fresh solve.",
	MetricServeQueued:           "Admitted requests that waited for a slot.",
	MetricServeShed:             "Requests shed with 429.",
	MetricServeCoalesced:        "Requests coalesced onto an identical in-flight solve.",
	MetricServeCacheHits:        "Response-cache hits.",
	MetricServeCacheMisses:      "Response-cache misses.",
	MetricServeCacheEvicted:     "Response-cache evictions.",
	MetricServeCacheEntries:     "Response-cache entries.",
	MetricServeCacheWarmed:      "Cache entries warm-loaded from the journal.",
	MetricServeErrors:           "Request errors, by kind.",
	MetricServeInflight:         "Solves currently in flight.",
	MetricServeQueueDepth:       "Admission-queue depth.",
	MetricServeSolveSeconds:     "Wall time of one served solve.",
	MetricServeRequestSeconds:   "Wall time of one request.",
	MetricFFTPlanHits:           "FFT twiddle-plan cache hits.",
	MetricFFTPlanMisses:         "FFT twiddle-plan cache misses.",
	MetricFFTTransformSize:      "FFT transform sizes.",
	MetricFFTConvolveNaive:      "Convolutions done directly.",
	MetricFFTConvolveViaFFT:     "Convolutions done via FFT.",
	MetricSourceFitMaxError:     "Sup-norm correlation-fit error of the active model.",
}

// splitLabeled parses a name composed by Labeled back into its base name
// and single label pair. Names without a "{label=value}" suffix return
// empty label fields.
func splitLabeled(name string) (base, label, value string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, "", ""
	}
	inner := name[i+1 : len(name)-1]
	eq := strings.IndexByte(inner, '=')
	if eq < 0 {
		return name, "", ""
	}
	return name[:i], inner[:eq], inner[eq+1:]
}

// promName maps an arbitrary metric or label name onto the Prometheus
// identifier grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value for the exposition format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// promHelpEscape escapes HELP text (only backslash and newline).
func promHelpEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promValue formats a sample value.
func promValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

type promSample struct {
	label, value string // optional single label pair
	v            float64
}

type promFamily struct {
	name, kind string
	samples    []promSample
	hist       *HistogramSnapshot
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE per family, families sorted by
// name, histogram buckets cumulative with a trailing +Inf bucket equal to
// the sample count. Labeled names composed by Labeled are decomposed back
// into proper label syntax with escaped values.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	families := map[string]*promFamily{}
	add := func(name, kind string, v float64) {
		base, label, value := splitLabeled(name)
		base = promName(base)
		f := families[base]
		if f == nil {
			f = &promFamily{name: base, kind: kind}
			families[base] = f
		}
		if label != "" {
			label = promName(label)
		}
		f.samples = append(f.samples, promSample{label: label, value: value, v: v})
	}
	for name, v := range s.Counters {
		add(name, "counter", v)
	}
	for name, v := range s.Gauges {
		add(name, "gauge", v)
	}
	for name, h := range s.Histograms {
		base := promName(name)
		hc := h
		families[base] = &promFamily{name: base, kind: "histogram", hist: &hc}
	}
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := families[name]
		help := metricHelp[name]
		if help == "" {
			help = "lrd " + f.kind + "."
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", name, promHelpEscape(help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.kind)
		if f.hist != nil {
			writePromHistogram(bw, name, f.hist)
			continue
		}
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].value < f.samples[j].value })
		for _, smp := range f.samples {
			if smp.label == "" {
				fmt.Fprintf(bw, "%s %s\n", name, promValue(smp.v))
			} else {
				fmt.Fprintf(bw, "%s{%s=\"%s\"} %s\n", name, smp.label, promEscape(smp.value), promValue(smp.v))
			}
		}
	}
	return bw.Flush()
}

func writePromHistogram(w io.Writer, name string, h *HistogramSnapshot) {
	cum := uint64(0)
	for _, b := range h.Buckets {
		if math.IsInf(b.Le, 1) {
			continue // folded into the mandatory +Inf bucket below
		}
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promValue(b.Le), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, promValue(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// LintExposition validates text against a strict subset of the Prometheus
// exposition grammar: every sample line must parse, every family must be
// announced by a HELP line immediately followed by a TYPE line before its
// first sample, samples of one family must be contiguous, and histogram
// families must have strictly increasing `le` bounds, non-decreasing
// cumulative bucket counts, a +Inf bucket, and matching _sum/_count
// lines. It exists for the conformance tests but is exported so any layer
// serving /metrics can assert its own output.
func LintExposition(r io.Reader) error {
	type famState struct {
		kind          string
		typed, sealed bool
		lastLe        float64
		lastCum       uint64
		infCount      uint64
		haveInf       bool
		haveSum       bool
		count         uint64
		haveCount     bool
	}
	fams := map[string]*famState{}
	var current string
	lineNo := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kw, name, rest, err := parseComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			f := fams[name]
			switch kw {
			case "HELP":
				if f != nil {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				fams[name] = &famState{}
			case "TYPE":
				if f == nil {
					return fmt.Errorf("line %d: TYPE %s without preceding HELP", lineNo, name)
				}
				if f.typed {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: invalid TYPE %q", lineNo, rest)
				}
				f.typed, f.kind = true, rest
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name {
				if f := fams[base]; f != nil && f.kind == "histogram" {
					fam, suffix = base, sfx
				}
				break
			}
		}
		f := fams[fam]
		if f == nil || !f.typed {
			return fmt.Errorf("line %d: sample %s before HELP/TYPE for %s", lineNo, name, fam)
		}
		if current != fam {
			if f.sealed {
				return fmt.Errorf("line %d: family %s samples are not contiguous", lineNo, fam)
			}
			if cur := fams[current]; cur != nil {
				cur.sealed = true
			}
			current = fam
		}
		switch suffix {
		case "_bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			cnt := uint64(value)
			if le == "+Inf" {
				f.haveInf, f.infCount = true, cnt
			} else {
				lef, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
				}
				if f.lastCum > 0 || f.lastLe != 0 {
					if lef <= f.lastLe {
						return fmt.Errorf("line %d: le %g not increasing (prev %g)", lineNo, lef, f.lastLe)
					}
				}
				if cnt < f.lastCum {
					return fmt.Errorf("line %d: cumulative bucket count decreased (%d < %d)", lineNo, cnt, f.lastCum)
				}
				if f.haveInf {
					return fmt.Errorf("line %d: finite le bucket after +Inf", lineNo)
				}
				f.lastLe, f.lastCum = lef, cnt
			}
		case "_sum":
			f.haveSum = true
		case "_count":
			f.haveCount, f.count = true, uint64(value)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name, f := range fams {
		if !f.typed {
			return fmt.Errorf("family %s: HELP without TYPE", name)
		}
		if f.kind != "histogram" {
			continue
		}
		switch {
		case !f.haveInf:
			return fmt.Errorf("histogram %s: missing +Inf bucket", name)
		case !f.haveSum:
			return fmt.Errorf("histogram %s: missing _sum", name)
		case !f.haveCount:
			return fmt.Errorf("histogram %s: missing _count", name)
		case f.infCount != f.count:
			return fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", name, f.infCount, f.count)
		case f.lastCum > f.count:
			return fmt.Errorf("histogram %s: last cumulative bucket %d exceeds _count %d", name, f.lastCum, f.count)
		}
	}
	return nil
}

func parseComment(line string) (kw, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kw, name = fields[1], fields[2]
	if kw != "HELP" && kw != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment keyword %q", kw)
	}
	if !validPromName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kw, name, rest, nil
}

// parseSample parses `name{label="value",...} value` with full escape
// handling on label values.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	labels = map[string]string{}
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := rest[:eq]
			if !validPromName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			val, remain, perr := parseQuoted(rest)
			if perr != nil {
				return "", nil, 0, fmt.Errorf("%v in %q", perr, line)
			}
			labels[lname] = val
			rest = remain
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

// parseQuoted consumes a double-quoted, backslash-escaped string from the
// front of s, returning the decoded value and the remainder.
func parseQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quote")
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
