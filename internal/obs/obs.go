// Package obs is the repository's zero-dependency telemetry layer: atomic
// counters, gauges, and log-bucketed histograms collected in a Registry,
// plus the Recorder interface the hot paths (solver steps, sweep workers,
// FFT transforms) accept. A nil Recorder disables instrumentation entirely
// — call sites guard with a single nil check and pass constant metric
// names, so the uninstrumented path costs nothing and allocates nothing.
//
// The Registry exports a point-in-time Snapshot as JSON (the cmd/ tools'
// -metrics flag), publishes itself through expvar for the -pprof debug
// server, and backs the periodic -progress reporter. Metric names are
// flat strings; the few labeled metrics (e.g. degraded-solve reasons)
// compose the label into the name with Labeled.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder receives telemetry events. Registry implements it; hot paths
// hold a possibly-nil Recorder and skip all recording when it is nil.
type Recorder interface {
	// Add increments the named counter by delta (monotone accumulation).
	Add(name string, delta float64)
	// Set stores the named gauge's current value (last write wins).
	Set(name string, value float64)
	// Observe adds one sample to the named log-bucketed histogram.
	Observe(name string, value float64)
}

// Metric names recorded by the instrumented layers. Kept here, in one
// place, so the CLIs' progress reporter and the tests can read them back
// from a Snapshot without stringly-typed drift.
const (
	// Solver (internal/solver): per-step and per-solve telemetry.
	MetricSolverSolves          = "solver_solves_total"
	MetricSolverConverged       = "solver_converged_total"
	MetricSolverDegraded        = "solver_degraded_total" // labeled by reason
	MetricSolverNumericErrors   = "solver_numeric_errors_total"
	MetricSolverSteps           = "solver_steps_total"
	MetricSolverStepSeconds     = "solver_step_seconds"
	MetricSolverSolveSeconds    = "solver_solve_seconds"
	MetricSolverSolveIterations = "solver_solve_iterations"
	MetricSolverFinalBins       = "solver_final_bins"
	MetricSolverRefines         = "solver_refines_total"
	MetricSolverBins            = "solver_bins"      // gauge: current M
	MetricSolverGap             = "solver_bound_gap" // gauge: relative gap
	MetricSolverMassDrift       = "solver_mass_drift_abs"
	MetricSolverConvolveDirect  = "solver_convolve_direct_total"
	MetricSolverConvolveFFT     = "solver_convolve_fft_total"

	// Batched solving (solver.Arena / solver.Batch): scratch-buffer reuse
	// and cross-cell warm-start accounting.
	MetricSolverArenaReuse    = "solver_arena_reuse_total"           // scratch sets served from the arena pool
	MetricSolverArenaAlloc    = "solver_arena_alloc_total"           // scratch sets newly allocated
	MetricSolverWarmSolves    = "solver_warm_solves_total"           // solves seeded from a neighbor's occupancy vectors
	MetricSolverWarmRejected  = "solver_warm_rejected_total"         // incompatible seeds solved cold instead
	MetricSolverWarmIterSaved = "solver_warm_iterations_saved_total" // iterations saved vs. the seeding neighbor
	MetricCoreWarmChains      = "core_warm_chains_total"             // neighbor-ordered warm chains planned
	MetricCoreWarmChainBreaks = "core_warm_chain_breaks_total"       // chains reset by resumed/adopted cells

	// Inverse capacity-planning solves (internal/core Provision).
	MetricCoreProvisions           = "core_provisions_total"            // inverse solves completed
	MetricCoreProvisionInfeasible  = "core_provision_infeasible_total"  // SLOs unreachable in the bracket
	MetricCoreProvisionSolves      = "core_provision_solves_total"      // forward solves spent by inverse solves
	MetricCoreProvisionWarmSolves  = "core_provision_warm_solves_total" // of which warm-seeded
	MetricCoreProvisionSolveBudget = "core_provision_solve_budget_hits_total"

	// Sweeps (internal/core): parallelMap worker-pool telemetry.
	MetricCoreCellsPlanned     = "core_cells_planned_total"
	MetricCoreCellsStarted     = "core_cells_started_total"
	MetricCoreCellsCompleted   = "core_cells_completed_total"
	MetricCoreCellsDegraded    = "core_cells_degraded_total"
	MetricCoreCellSeconds      = "core_cell_seconds"
	MetricCoreSweepSeconds     = "core_sweep_seconds"
	MetricCoreWorkers          = "core_workers" // gauge: pool size
	MetricCoreWorkerBusySecond = "core_worker_busy_seconds_total"

	// Sweep durability (internal/core + internal/journal): resume/retry
	// bookkeeping.
	MetricCoreCellsResumed   = "core_cells_resumed_total" // skipped via journal replay
	MetricCoreCellsRetried   = "core_cell_retries_total"  // extra attempts beyond the first
	MetricCoreJournalBytes   = "core_journal_bytes_total"
	MetricCoreJournalCorrupt = "core_journal_corrupt_lines_total"
	// Corrupt-line classification: trailing = the tolerated crash-window
	// artifact (a line torn mid-append); interior = garbage with intact
	// records after it, i.e. damage no clean crash explains.
	MetricCoreJournalCorruptInterior = "core_journal_corrupt_interior_lines_total"
	MetricCoreJournalCorruptTrailing = "core_journal_corrupt_trailing_lines_total"
	// Journal integrity: records whose CRC32C failed (content damage that
	// still parses), damaged lines preserved in the .quarantine sidecar,
	// and compaction activity.
	MetricCoreJournalCrcMismatch    = "core_journal_crc_mismatch_records_total"
	MetricCoreJournalQuarantined    = "core_journal_quarantined_records_total"
	MetricCoreJournalCompactions    = "core_journal_compactions_total"
	MetricCoreJournalCompactedBytes = "core_journal_compacted_bytes_total" // bytes reclaimed by compaction

	// Distributed sweeps (internal/core.LeaseStore): lease-protocol
	// accounting for the shared-journal work queue.
	MetricCoreLeasesClaimed  = "core_leases_claimed_total"  // cells this worker leased
	MetricCoreLeasesRenewed  = "core_leases_renewed_total"  // heartbeat renewals appended
	MetricCoreLeasesReleased = "core_leases_released_total" // leases released without completion
	MetricCoreLeasesStolen   = "core_leases_stolen_total"   // expired leases this worker took over
	MetricCoreLeasesFenced   = "core_leases_fenced_total"   // own leases lost to a newer epoch
	MetricCoreLeasesLost     = "core_leases_lost_total"     // claim races lost to another worker
	MetricCoreCellsAdopted   = "core_cells_adopted_total"   // cells completed by other workers, adopted locally
	MetricCoreLeaseWaitSecs  = "core_lease_wait_seconds"    // time spent waiting on other workers' cells
	MetricCoreLeasesHeld     = "core_leases_held"           // gauge: leases currently held
	MetricCoreLeaseEpoch     = "core_lease_max_epoch"       // gauge: highest fencing epoch observed

	// Traffic-model registry (internal/source realized through sweeps):
	// fit quality of approximating models.
	MetricSourceFitMaxError = "source_fit_max_error" // gauge: sup-norm correlation-fit error

	// Serving layer (internal/serve): per-stage request accounting for the
	// lrdserve HTTP service. Every request increments Requests and then
	// exactly one of Shed (429), CacheHits, Coalesced, or Admitted (a fresh
	// solve); Queued additionally counts admissions that waited for a slot.
	MetricServeRequests       = "serve_requests_total"
	MetricServeAdmitted       = "serve_admitted_total"
	MetricServeQueued         = "serve_queued_total"
	MetricServeShed           = "serve_shed_total"
	MetricServeCoalesced      = "serve_coalesced_total"
	MetricServeCacheHits      = "serve_cache_hits_total"
	MetricServeCacheMisses    = "serve_cache_misses_total"
	MetricServeCacheEvicted   = "serve_cache_evictions_total"
	MetricServeCacheEntries   = "serve_cache_entries" // gauge
	MetricServeCacheWarmed    = "serve_cache_warmed_total"
	MetricServeErrors         = "serve_errors_total" // labeled by kind
	MetricServeInflight       = "serve_inflight"     // gauge
	MetricServeQueueDepth     = "serve_queue_depth"  // gauge
	MetricServeSolveSeconds   = "serve_solve_seconds"
	MetricServeRequestSeconds = "serve_request_seconds"
	// Admission hardening: requests refused by the per-client token bucket,
	// handler panics converted to 500s, and the readiness gauge (1 = ready,
	// 0 = starting or draining) that /readyz reports to load balancers.
	MetricServeRateLimited = "serve_rate_limited_total"
	MetricServePanics      = "serve_panics_total"
	MetricServeReady       = "serve_ready" // gauge

	// Resilient fleet client (internal/resilient): retry, circuit-breaker,
	// and hedging accounting for lrdcall and lrdsweep -fleet.
	MetricResilientRequests        = "resilient_requests_total"
	MetricResilientRetries         = "resilient_retries_total"
	MetricResilientRetryAfter      = "resilient_retry_after_honored_total"
	MetricResilientBreakerOpens    = "resilient_breaker_opens_total"
	MetricResilientBreakerProbes   = "resilient_breaker_probes_total"
	MetricResilientBreakerFastFail = "resilient_breaker_fastfail_total" // attempts refused: every breaker open
	MetricResilientHedges          = "resilient_hedges_total"
	MetricResilientHedgeWins       = "resilient_hedge_wins_total"
	MetricResilientRequestSeconds  = "resilient_request_seconds"

	// FFT (internal/fft): plan cache and transform telemetry.
	MetricFFTPlanHits       = "fft_plan_cache_hits_total"
	MetricFFTPlanMisses     = "fft_plan_cache_misses_total"
	MetricFFTTransformSize  = "fft_transform_size"
	MetricFFTConvolveNaive  = "fft_convolve_direct_total"
	MetricFFTConvolveViaFFT = "fft_convolve_fft_total"
)

// Labeled composes a labeled metric name, e.g.
// Labeled(MetricSolverDegraded, "reason", "deadline exceeded") ==
// "solver_degraded_total{reason=deadline exceeded}". It allocates, so use
// it off the hot path (per-solve, not per-step).
func Labeled(name, label, value string) string {
	return name + "{" + label + "=" + value + "}"
}

// Counter is a monotone float64 accumulator safe for concurrent use.
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta float64) { atomicAddFloat(&c.bits, delta) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a last-write-wins float64 cell safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the most recently stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket layout: one bucket per power-of-two interval
// (2^(e-1), 2^e] for e in [histMinExp, histMaxExp], plus a low bucket for
// values <= 2^(histMinExp-1) (including zero and negatives) and a high
// bucket for values beyond 2^histMaxExp. 2^-40 ≈ 9.1e-13 and 2^40 ≈ 1.1e12
// comfortably cover nanosecond-scale durations through iteration counts.
const (
	histMinExp = -40
	histMaxExp = 40
	histBucket = histMaxExp - histMinExp + 3 // + low + high + zero-offset
)

// Histogram is a log-bucketed (base-2) histogram with atomic buckets and
// running count/sum/min/max, safe for concurrent use. Observation is
// allocation-free.
type Histogram struct {
	counts [histBucket]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
	once   sync.Once     // initializes min/max sentinels
}

func (h *Histogram) init() {
	h.once.Do(func() {
		h.min.Store(math.Float64bits(math.Inf(1)))
		h.max.Store(math.Float64bits(math.Inf(-1)))
	})
}

// bucketIndex maps a value to its bucket. Index 0 holds v <= 2^(histMinExp-1)
// (and all non-positive v); the last index holds v > 2^histMaxExp.
func bucketIndex(v float64) int {
	if !(v > 0) { // catches 0, negatives, NaN
		return 0
	}
	// frexp: v = frac · 2^exp with frac in [0.5, 1), so v in (2^(exp-1), 2^exp].
	frac, exp := math.Frexp(v)
	if frac == 0.5 { // exact power of two: belongs to the lower interval
		exp--
	}
	switch {
	case exp < histMinExp:
		return 0
	case exp > histMaxExp:
		return histBucket - 1
	default:
		return exp - histMinExp + 1
	}
}

// bucketUpper returns the inclusive upper bound of bucket i ("le").
func bucketUpper(i int) float64 {
	switch {
	case i <= 0:
		return math.Ldexp(1, histMinExp-1)
	case i >= histBucket-1:
		return math.Inf(1)
	default:
		return math.Ldexp(1, histMinExp+i-1)
	}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	h.init()
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sum, v)
	atomicMinFloat(&h.min, v)
	atomicMaxFloat(&h.max, v)
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the sample mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	return h.Sum() / float64(n)
}

// atomicAddFloat CAS-accumulates delta into a float64 stored as bits.
func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v || bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v || bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Registry is a concurrent collection of named counters, gauges, and
// histograms. The zero value is not usable; call NewRegistry. Registry
// implements Recorder.
type Registry struct {
	counters   sync.Map // string -> *Counter
	gauges     sync.Map // string -> *Gauge
	histograms sync.Map // string -> *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, new(Counter))
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, new(Gauge))
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if v, ok := r.histograms.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.histograms.LoadOrStore(name, new(Histogram))
	return v.(*Histogram)
}

// Add implements Recorder.
func (r *Registry) Add(name string, delta float64) { r.Counter(name).Add(delta) }

// Set implements Recorder.
func (r *Registry) Set(name string, value float64) { r.Gauge(name).Set(value) }

// Observe implements Recorder.
func (r *Registry) Observe(name string, value float64) { r.Histogram(name).Observe(value) }

// CounterValue returns the named counter's total, or 0 if it was never
// touched (reading does not create the metric).
func (r *Registry) CounterValue(name string) float64 {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter).Value()
	}
	return 0
}

// GaugeValue returns the named gauge's value and whether it exists.
func (r *Registry) GaugeValue(name string) (float64, bool) {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge).Value(), true
	}
	return 0, false
}

// Bucket is one non-empty histogram bucket in a snapshot: Count samples
// with value <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is the exported state of one histogram. P50/P90/P99
// are estimated quantiles: exact to within one log₂ bucket, linearly
// interpolated inside the bucket and clamped to the observed [Min, Max].
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts.
// Within the containing bucket the value is linearly interpolated between
// the bucket's bounds; the estimate is clamped to [Min, Max], which makes
// it exact for single-bucket histograms. Returns NaN when empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	target := q * float64(h.Count)
	cum := 0.0
	for _, b := range h.Buckets {
		prev := cum
		cum += float64(b.Count)
		if cum >= target {
			hi := b.Le
			if math.IsInf(hi, 1) {
				return h.Max
			}
			lo := hi / 2 // log₂ buckets span (le/2, le]; clamping fixes the low bucket
			v := lo + (hi-lo)*(target-prev)/float64(b.Count)
			return math.Min(math.Max(v, h.Min), h.Max)
		}
	}
	return h.Max
}

// Snapshot is a point-in-time copy of a Registry, ready for JSON encoding.
// Non-finite values (an empty histogram's min/max, a NaN gauge) are
// rendered as strings by MarshalJSON since JSON has no Inf/NaN.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state. It is safe to call
// concurrently with recording; each metric is read atomically (the
// snapshot as a whole is not a consistent cut, which is fine for
// monitoring output).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.histograms.Range(func(k, v any) bool {
		s.Histograms[k.(string)] = snapshotHistogram(v.(*Histogram))
		return true
	})
	return s
}

// snapshotHistogram copies one histogram's atomics into an exported
// snapshot, including the estimated tail quantiles.
func snapshotHistogram(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Min:   math.Float64frombits(h.min.Load()),
		Max:   math.Float64frombits(h.max.Load()),
	}
	if hs.Count == 0 {
		hs.Min, hs.Max, hs.Mean = 0, 0, 0
	}
	for i := 0; i < histBucket; i++ {
		if c := h.counts[i].Load(); c > 0 {
			hs.Buckets = append(hs.Buckets, Bucket{Le: bucketUpper(i), Count: c})
		}
	}
	if hs.Count > 0 {
		hs.P50 = hs.Quantile(0.50)
		hs.P90 = hs.Quantile(0.90)
		hs.P99 = hs.Quantile(0.99)
	}
	return hs
}

// HistogramSnapshotFor snapshots the single named histogram and reports
// whether it exists (reading does not create the metric).
func (r *Registry) HistogramSnapshotFor(name string) (HistogramSnapshot, bool) {
	if v, ok := r.histograms.Load(name); ok {
		return snapshotHistogram(v.(*Histogram)), true
	}
	return HistogramSnapshot{}, false
}

// WriteJSON writes the snapshot as indented JSON. Non-finite floats are
// replaced with large sentinels JSON can carry (see sanitizeFloat).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.sanitized())
}

// sanitized returns a copy with every non-finite float replaced, since
// encoding/json rejects NaN and ±Inf.
func (s Snapshot) sanitized() Snapshot {
	out := Snapshot{
		Counters:   make(map[string]float64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = sanitizeFloat(v)
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = sanitizeFloat(v)
	}
	for k, h := range s.Histograms {
		h.Sum = sanitizeFloat(h.Sum)
		h.Mean = sanitizeFloat(h.Mean)
		h.Min = sanitizeFloat(h.Min)
		h.Max = sanitizeFloat(h.Max)
		h.P50 = sanitizeFloat(h.P50)
		h.P90 = sanitizeFloat(h.P90)
		h.P99 = sanitizeFloat(h.P99)
		buckets := make([]Bucket, len(h.Buckets))
		for i, b := range h.Buckets {
			buckets[i] = Bucket{Le: sanitizeFloat(b.Le), Count: b.Count}
		}
		h.Buckets = buckets
		out.Histograms[k] = h
	}
	return out
}

// sanitizeFloat maps values JSON cannot represent onto extreme finite ones.
func sanitizeFloat(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	default:
		return v
	}
}

// Summary renders a compact sorted text dump of every metric, one per
// line — handy in tests and ad-hoc debugging.
func (s Snapshot) Summary() string {
	var lines []string
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter %s = %g", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %g", k, v))
	}
	for k, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("histogram %s: count=%d mean=%g min=%g max=%g", k, h.Count, h.Mean, h.Min, h.Max))
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
