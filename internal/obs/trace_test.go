package obs

import (
	"context"
	"sync"
	"testing"
)

// TestStartSpanDisabledIsAllocationFree: with no SpanSink attached,
// StartSpan, the finish call, and the context lookups must not allocate —
// this is the hot-path contract the solver and sweep layers rely on.
func TestStartSpanDisabledIsAllocationFree(t *testing.T) {
	ctx := ContextWithTrace(context.Background(), NewTrace())
	if allocs := testing.AllocsPerRun(200, func() {
		spanCtx, finish := StartSpan(ctx, "op")
		if Traced(spanCtx) {
			t.Fatal("no sink attached but Traced = true")
		}
		if _, ok := TraceFromContext(spanCtx); !ok {
			t.Fatal("trace context lost")
		}
		finish(nil)
	}); allocs != 0 {
		t.Fatalf("disabled StartSpan path allocates %v allocs/op, want 0", allocs)
	}
}

// TestStartSpanDisabledReturnsSameContext: no sink → the context is
// returned unchanged (no wrapping layers pile up on deep call chains).
func TestStartSpanDisabledReturnsSameContext(t *testing.T) {
	ctx := ContextWithTrace(context.Background(), NewTrace())
	spanCtx, _ := StartSpan(ctx, "op")
	if spanCtx != ctx {
		t.Fatal("disabled StartSpan wrapped the context")
	}
}

// TestSpanEmissionAndParenting: nested spans share the trace id, chain
// parent span ids, and carry attributes and positive durations.
func TestSpanEmissionAndParenting(t *testing.T) {
	var mu sync.Mutex
	var spans []Span
	sink := func(s Span) { mu.Lock(); spans = append(spans, s); mu.Unlock() }

	root := NewTrace()
	ctx := ContextWithSpanSink(ContextWithTrace(context.Background(), root), SpanSink(sink))
	if !Traced(ctx) {
		t.Fatal("sink attached but Traced = false")
	}

	outerCtx, finishOuter := StartSpan(ctx, "outer")
	innerCtx, finishInner := StartSpan(outerCtx, "inner")
	finishInner(map[string]string{"key": "cell-7"})
	finishOuter(nil)

	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	inner, outer := spans[0], spans[1]
	if inner.Name != "inner" || outer.Name != "outer" {
		t.Fatalf("span order: %q then %q", inner.Name, outer.Name)
	}
	if inner.Trace != root.TraceID || outer.Trace != root.TraceID {
		t.Fatalf("trace ids diverged: root %s, inner %s, outer %s", root.TraceID, inner.Trace, outer.Trace)
	}
	if outer.Parent != root.SpanID {
		t.Fatalf("outer parent = %s, want root span %s", outer.Parent, root.SpanID)
	}
	outerTC, _ := TraceFromContext(outerCtx)
	if inner.Parent != outerTC.SpanID {
		t.Fatalf("inner parent = %s, want outer span %s", inner.Parent, outerTC.SpanID)
	}
	innerTC, _ := TraceFromContext(innerCtx)
	if inner.Span != innerTC.SpanID {
		t.Fatalf("inner span id = %s, want %s", inner.Span, innerTC.SpanID)
	}
	if inner.Attrs["key"] != "cell-7" {
		t.Fatalf("attrs = %v", inner.Attrs)
	}
	if inner.Type != "span" || inner.Seconds < 0 || inner.StartNS == 0 {
		t.Fatalf("malformed span: %+v", inner)
	}
}

// TestStartSpanMintsTraceWhenAbsent: a sink with no inherited trace still
// yields a usable trace id.
func TestStartSpanMintsTraceWhenAbsent(t *testing.T) {
	var got Span
	ctx := ContextWithSpanSink(context.Background(), func(s Span) { got = s })
	_, finish := StartSpan(ctx, "orphan")
	finish(nil)
	if got.Trace == "" || got.Span == "" {
		t.Fatalf("span without ids: %+v", got)
	}
	if got.Parent != "" {
		t.Fatalf("orphan span has parent %q", got.Parent)
	}
}

func TestNewTraceIDsAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q is not 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}
