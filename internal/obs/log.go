package obs

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the standard CLI/server diagnostic logger: slog text
// records on w with the program name and the run's trace id attached to
// every line, so grep-by-trace works across slog output, JSONL spans, and
// solver trace points.
func NewLogger(w io.Writer, name string, tc TraceContext) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo})
	l := slog.New(h)
	if name != "" {
		l = l.With("prog", name)
	}
	if tc.TraceID != "" {
		l = l.With("trace", tc.TraceID)
	}
	return l
}

// LogWriter adapts a slog.Logger to io.Writer so legacy warn-writer
// plumbing (LeaseStore warnings, journal resume notices) routes through
// structured logging without changing those interfaces. Each written line
// becomes one log record at the configured level.
type LogWriter struct {
	l     *slog.Logger
	level slog.Level
}

// NewLogWriter wraps l at the given level.
func NewLogWriter(l *slog.Logger, level slog.Level) *LogWriter {
	return &LogWriter{l: l, level: level}
}

// Write implements io.Writer, logging each non-empty line of p.
func (w *LogWriter) Write(p []byte) (int, error) {
	for _, line := range strings.Split(strings.TrimRight(string(p), "\n"), "\n") {
		if line != "" {
			w.l.Log(context.Background(), w.level, line)
		}
	}
	return len(p), nil
}
