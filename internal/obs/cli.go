package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// CLIOptions selects the observability surface a command wires up from its
// flags. The zero value disables everything.
type CLIOptions struct {
	// Name prefixes progress lines, e.g. "lrdsweep".
	Name string
	// MetricsPath, when nonempty, receives a JSON metrics snapshot when
	// Close is called (the -metrics flag). The write happens on every exit
	// path, including interruption, as long as the command reaches Close.
	MetricsPath string
	// TracePath, when nonempty, receives JSONL records through the
	// TraceEncoder (the -trace flag).
	TracePath string
	// PprofAddr, when nonempty, serves net/http/pprof and expvar (which
	// includes this registry under "lrd_metrics") on that address
	// (the -pprof flag), e.g. "localhost:6060".
	PprofAddr string
	// Progress enables a periodic progress line on ProgressOut
	// (the -progress flag).
	Progress bool
	// ProgressInterval defaults to 2 s.
	ProgressInterval time.Duration
	// ProgressOut defaults to os.Stderr.
	ProgressOut io.Writer
}

// CLI bundles one command's observability surface: a Registry every
// instrumented layer records into, an optional JSONL trace sink, an
// optional progress reporter, and an optional pprof server. Construct with
// StartCLI and Close before exiting.
type CLI struct {
	opts     CLIOptions
	registry *Registry
	start    time.Time
	trace    TraceContext

	traceMu   sync.Mutex
	traceFile *os.File
	traceEnc  *json.Encoder
	traceErr  error

	pprofLn  net.Listener
	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// StartCLI wires up the requested surface. It always returns a usable *CLI
// (Close is a cheap no-op when nothing was requested); the error reports
// an unopenable trace file or pprof address.
func StartCLI(opts CLIOptions) (*CLI, error) {
	if opts.ProgressInterval <= 0 {
		opts.ProgressInterval = 2 * time.Second
	}
	if opts.ProgressOut == nil {
		opts.ProgressOut = os.Stderr
	}
	c := &CLI{
		opts:     opts,
		registry: NewRegistry(),
		start:    time.Now(),
		trace:    NewTrace(),
		stopCh:   make(chan struct{}),
	}
	if opts.TracePath != "" {
		f, err := os.Create(opts.TracePath)
		if err != nil {
			return nil, fmt.Errorf("obs: opening trace file: %w", err)
		}
		c.traceFile = f
		c.traceEnc = json.NewEncoder(f)
	}
	if opts.PprofAddr != "" {
		ln, err := net.Listen("tcp", opts.PprofAddr)
		if err != nil {
			c.closeTrace()
			return nil, fmt.Errorf("obs: pprof listener: %w", err)
		}
		c.pprofLn = ln
		publishDebug(c.registry)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			// The default mux carries net/http/pprof and expvar handlers.
			_ = http.Serve(ln, nil) //nolint:gosec // local debug endpoint by construction
		}()
	}
	if opts.Progress {
		c.wg.Add(1)
		go c.progressLoop()
	}
	return c, nil
}

// Recorder returns the registry as a Recorder when any metrics-consuming
// surface (-metrics, -progress, -pprof) was requested, and nil otherwise —
// so an unobserved run keeps the hot paths on their uninstrumented branch.
func (c *CLI) Recorder() Recorder {
	if c.opts.MetricsPath == "" && !c.opts.Progress && c.opts.PprofAddr == "" {
		return nil
	}
	return c.registry
}

// Registry returns the underlying registry (always non-nil).
func (c *CLI) Registry() *Registry { return c.registry }

// Trace returns the root TraceContext minted for this run. Every CLI run
// gets one, whether or not a trace file was requested, so slog lines can
// always carry a trace id.
func (c *CLI) Trace() TraceContext { return c.trace }

// SpanSink returns a concurrency-safe sink writing spans to the -trace
// JSONL file, or nil when no trace was requested — attach it with
// ContextWithSpanSink so StartSpan becomes live down the call tree.
func (c *CLI) SpanSink() SpanSink {
	enc := c.TraceEncoder()
	if enc == nil {
		return nil
	}
	return func(s Span) { enc(s) }
}

// Context attaches this run's root trace context, and span sink when
// tracing is enabled, to ctx.
func (c *CLI) Context(ctx context.Context) context.Context {
	ctx = ContextWithTrace(ctx, c.trace)
	return ContextWithSpanSink(ctx, c.SpanSink())
}

// TraceEncoder returns a concurrency-safe JSONL encoder writing to the
// -trace file, or nil when no trace was requested. Encoding errors are
// remembered and surfaced by Close.
func (c *CLI) TraceEncoder() func(v any) {
	if c.traceEnc == nil {
		return nil
	}
	return func(v any) {
		c.traceMu.Lock()
		defer c.traceMu.Unlock()
		if c.traceErr == nil && c.traceEnc != nil {
			c.traceErr = c.traceEnc.Encode(v)
		}
	}
}

// Close stops the progress reporter and pprof server, flushes and closes
// the trace file, and writes the metrics snapshot. Safe to call more than
// once; only the first call does the work.
func (c *CLI) Close() error {
	var err error
	c.stopOnce.Do(func() {
		close(c.stopCh)
		if c.pprofLn != nil {
			_ = c.pprofLn.Close()
		}
		c.wg.Wait()
		err = c.closeTrace()
		if c.opts.MetricsPath != "" {
			if werr := c.writeMetrics(); werr != nil && err == nil {
				err = werr
			}
		}
	})
	return err
}

func (c *CLI) closeTrace() error {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	if c.traceFile == nil {
		return nil
	}
	err := c.traceErr
	if cerr := c.traceFile.Close(); cerr != nil && err == nil {
		err = cerr
	}
	c.traceFile = nil
	c.traceEnc = nil
	return err
}

func (c *CLI) writeMetrics() error {
	f, err := os.Create(c.opts.MetricsPath)
	if err != nil {
		return fmt.Errorf("obs: writing metrics snapshot: %w", err)
	}
	if err := c.registry.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing metrics snapshot: %w", err)
	}
	return f.Close()
}

func (c *CLI) progressLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.ProgressInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			fmt.Fprintln(c.opts.ProgressOut, c.ProgressLine())
		}
	}
}

// ProgressLine renders the current progress: sweep cells done/total with an
// ETA when a sweep is running, otherwise the single-solve view (iterations,
// resolution, current bound gap).
func (c *CLI) ProgressLine() string {
	r := c.registry
	elapsed := time.Since(c.start)
	line := fmt.Sprintf("%s: elapsed %s", c.opts.Name, elapsed.Round(time.Second))
	planned := r.CounterValue(MetricCoreCellsPlanned)
	completed := r.CounterValue(MetricCoreCellsCompleted)
	if planned > 0 {
		line += fmt.Sprintf(", cells %.0f/%.0f", completed, planned)
		if deg := r.CounterValue(MetricCoreCellsDegraded); deg > 0 {
			line += fmt.Sprintf(" (%.0f degraded)", deg)
		}
		if res := r.CounterValue(MetricCoreCellsResumed); res > 0 {
			line += fmt.Sprintf(" (%.0f resumed)", res)
		}
		if completed > 0 && completed < planned {
			eta := time.Duration(float64(elapsed) / completed * (planned - completed))
			line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
		}
	}
	if hs, ok := r.HistogramSnapshotFor(MetricCoreCellSeconds); ok && hs.Count > 0 {
		line += fmt.Sprintf(", cell p50/p99 %.3gs/%.3gs", hs.P50, hs.P99)
	}
	if steps := r.CounterValue(MetricSolverSteps); steps > 0 {
		line += fmt.Sprintf(", %.0f iters", steps)
	}
	if bins, ok := r.GaugeValue(MetricSolverBins); ok && planned == 0 {
		line += fmt.Sprintf(", M=%.0f", bins)
	}
	if gap, ok := r.GaugeValue(MetricSolverGap); ok {
		line += fmt.Sprintf(", gap %.3g", gap)
	}
	return line
}

// Debug-mux publication: expvar.Publish and http.HandleFunc both panic on
// duplicate registration, so the process-wide "lrd_metrics" expvar and the
// default-mux /metrics Prometheus handler are registered once and
// redirected to the most recently started CLI's registry.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

func publishDebug(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("lrd_metrics", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Snapshot().sanitized()
			}
			return nil
		}))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
			reg := expvarReg.Load()
			if reg == nil {
				http.Error(w, "metrics registry not started", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = reg.Snapshot().WritePrometheus(w)
		})
	})
}
