package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// populate fills a registry with one of everything the encoder must
// handle: plain and labeled counters (the label value exercises every
// escape class), a gauge, and a histogram spanning several log₂ buckets.
func populate(r *Registry) {
	r.Add("solver_solves_total", 3)
	r.Add(Labeled("sweep_cells_total", "status", `ok`), 2)
	r.Add(Labeled("sweep_cells_total", "status", "we\"ird\\va\nl"), 1)
	r.Set("solver_bins", 1024)
	for _, v := range []float64{0.0003, 0.004, 0.05, 0.6, 7, 80} {
		r.Observe("core_cell_seconds", v)
	}
}

func TestPrometheusExpositionConformance(t *testing.T) {
	r := NewRegistry()
	populate(r)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := LintExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition fails its own linter: %v\n%s", err, text)
	}

	for _, want := range []string{
		"# TYPE solver_solves_total counter",
		"solver_solves_total 3",
		"# TYPE solver_bins gauge",
		"solver_bins 1024",
		`sweep_cells_total{status="ok"} 2`,
		// Escaping: backslash, quote, and newline in a label value.
		`sweep_cells_total{status="we\"ird\\va\nl"} 1`,
		"# TYPE core_cell_seconds histogram",
		"core_cell_seconds_count 6",
		`core_cell_seconds_bucket{le="+Inf"} 6`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// HELP must precede TYPE, which must precede samples, per family.
	helpAt := strings.Index(text, "# HELP solver_solves_total")
	typeAt := strings.Index(text, "# TYPE solver_solves_total")
	sampleAt := strings.Index(text, "\nsolver_solves_total 3")
	if helpAt < 0 || typeAt < helpAt || sampleAt < typeAt {
		t.Fatalf("HELP/TYPE/sample ordering broken (%d, %d, %d):\n%s", helpAt, typeAt, sampleAt, text)
	}
}

// TestPrometheusHistogramCumulative: the per-bucket counts in a Snapshot
// are non-cumulative; the exposition must render cumulative counts that
// end exactly at _count.
func TestPrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	for _, v := range []float64{0.25, 0.5, 1, 2, 4} {
		r.Observe("h_seconds", v)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "h_seconds_bucket{") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q (prev %g)", line, prev)
		}
		prev = v
	}
	if prev != 5 {
		t.Fatalf("final (+Inf) bucket = %g, want 5", prev)
	}
	if err := LintExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
}

// TestLintExpositionRejects: the linter is strict enough to catch the
// classic exposition mistakes.
func TestLintExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"type after sample":  "a_total 1\n# TYPE a_total counter\na_total 2\n",
		"duplicate type":     "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n",
		"interleaved family": "# TYPE a_total counter\na_total 1\nb_total 2\na_total 3\n",
		"unsorted le": "# TYPE h histogram\n" +
			`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 2` + "\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n",
		"non-monotone cumulative": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"inf bucket != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 5\n",
		"missing sum": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_count 5\n",
		"bad name":  "# TYPE 9bad counter\n9bad 1\n",
		"bad value": "# TYPE a_total counter\na_total notanumber\n",
	}
	for name, text := range cases {
		if err := LintExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: linter accepted invalid exposition:\n%s", name, text)
		}
	}
}

// TestPrometheusConcurrentScrape hammers the registry from writer
// goroutines while scraping and linting concurrently — the race-mode
// guard for the /metrics handler path.
func TestPrometheusConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Add("writes_total", 1)
				r.Add(Labeled("writes_total", "worker", fmt.Sprintf("w%d", id)), 1)
				r.Observe("write_seconds", float64(n%7)/10)
				r.Set("last_n", float64(n))
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if err := LintExposition(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("scrape %d: %v\n%s", i, err, buf.String())
		}
	}
	close(stop)
	wg.Wait()
}
