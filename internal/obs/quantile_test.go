package obs

import (
	"math"
	"testing"
)

// TestHistogramQuantiles: the log₂-bucket quantile estimates must be
// ordered, clamped to the observed [Min, Max], and exact when every
// observation lands in one bucket.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.Observe("one_bucket", 1.5)
	}
	hs, ok := r.HistogramSnapshotFor("one_bucket")
	if !ok {
		t.Fatal("histogram missing")
	}
	// All mass in one bucket: interpolation clamps to Min == Max == 1.5.
	if hs.P50 != 1.5 || hs.P90 != 1.5 || hs.P99 != 1.5 {
		t.Fatalf("degenerate quantiles = %g/%g/%g, want 1.5", hs.P50, hs.P90, hs.P99)
	}

	r2 := NewRegistry()
	for i := 1; i <= 1000; i++ {
		r2.Observe("spread", float64(i)/100) // 0.01 .. 10
	}
	s, ok := r2.HistogramSnapshotFor("spread")
	if !ok {
		t.Fatal("histogram missing")
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99) {
		t.Fatalf("quantiles not ordered: %g/%g/%g", s.P50, s.P90, s.P99)
	}
	for _, q := range []float64{s.P50, s.P90, s.P99} {
		if q < s.Min || q > s.Max {
			t.Fatalf("quantile %g outside observed range [%g, %g]", q, s.Min, s.Max)
		}
	}
	// Within log₂ buckets the estimate can be off by at most one bucket
	// width: the true p50 is 5.0, whose bucket spans (4, 8].
	if s.P50 < 4 || s.P50 > 8 {
		t.Fatalf("p50 = %g, want within the (4, 8] bucket of the true median 5", s.P50)
	}
	if s.P99 < 8 || s.P99 > 10 {
		t.Fatalf("p99 = %g, want within [8, 10] for a true p99 of 9.9", s.P99)
	}

	// Quantile() on an empty histogram is NaN, and the JSON snapshot
	// sanitizes it away.
	var empty HistogramSnapshot
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}
