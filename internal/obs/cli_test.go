package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCLIMetricsSnapshotOnClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	c, err := StartCLI(CLIOptions{Name: "test", MetricsPath: path})
	if err != nil {
		t.Fatal(err)
	}
	rec := c.Recorder()
	if rec == nil {
		t.Fatal("Recorder() = nil with -metrics requested")
	}
	rec.Add(MetricSolverSolves, 3)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file does not parse: %v", err)
	}
	if snap.Counters[MetricSolverSolves] != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Close is idempotent.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCLITraceJSONL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	c, err := StartCLI(CLIOptions{Name: "test", TracePath: path})
	if err != nil {
		t.Fatal(err)
	}
	enc := c.TraceEncoder()
	if enc == nil {
		t.Fatal("TraceEncoder() = nil with -trace requested")
	}
	type rec struct {
		Iter  int     `json:"iter"`
		Lower float64 `json:"lower"`
	}
	for i := 0; i < 5; i++ {
		enc(rec{Iter: i, Lower: float64(i) * 0.1})
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	n := 0
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d does not parse: %v", n, err)
		}
		if r.Iter != n {
			t.Fatalf("line %d: iter = %d", n, r.Iter)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("got %d JSONL lines, want 5", n)
	}
}

func TestCLINoSurfaceRequested(t *testing.T) {
	c, err := StartCLI(CLIOptions{Name: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Recorder() != nil {
		t.Fatal("Recorder() non-nil with nothing requested")
	}
	if c.TraceEncoder() != nil {
		t.Fatal("TraceEncoder() non-nil with nothing requested")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// lockedBuffer synchronizes test reads with the progress goroutine's writes.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func TestCLIProgressLine(t *testing.T) {
	var buf lockedBuffer
	c, err := StartCLI(CLIOptions{
		Name: "sweep", Progress: true,
		ProgressInterval: 10 * time.Millisecond, ProgressOut: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := c.Registry()
	r.Add(MetricCoreCellsPlanned, 10)
	r.Add(MetricCoreCellsCompleted, 4)
	r.Add(MetricCoreCellsDegraded, 1)
	r.Add(MetricSolverSteps, 1234)
	r.Set(MetricSolverGap, 0.5)
	line := c.ProgressLine()
	for _, want := range []string{"sweep:", "cells 4/10", "(1 degraded)", "eta", "1234 iters", "gap 0.5"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
	// The loop actually emits lines.
	deadline := time.Now().Add(2 * time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("progress loop emitted nothing")
	}
}

func TestCLIPprofServesMetrics(t *testing.T) {
	c, err := StartCLI(CLIOptions{Name: "test", PprofAddr: "127.0.0.1:0"})
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer c.Close()
	c.Registry().Add(MetricSolverSolves, 1)
	addr := c.pprofLn.Addr().String()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "lrd_metrics") {
		t.Fatalf("/debug/vars missing lrd_metrics:\n%.400s", body)
	}
	resp2, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint status %d", resp2.StatusCode)
	}
}
