// Correlated tracing: a TraceContext (trace id + span id) is minted at
// every entry point — an HTTP request, a sweep cell, a CLI run — and
// threaded through context.Context so the serve layer, the sweep engine,
// lease operations, solver steps, and journal appends all stamp the same
// trace id. Spans are emitted through a SpanSink (typically the -trace
// JSONL encoder) as {"type":"span",...} records interleaved with the
// solver's TracePoints.
//
// The disabled path is allocation-free: context keys are zero-size
// structs (Value lookups do not allocate), and StartSpan with no sink in
// the context returns the context unchanged and a shared no-op finish
// function.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceContext identifies one causal chain (TraceID) and one operation
// within it (SpanID). The zero value means "no trace".
type TraceContext struct {
	TraceID string `json:"trace"`
	SpanID  string `json:"span"`
}

// Span is one completed traced operation, emitted as a JSONL record. The
// fixed Type field ("span") discriminates spans from solver TracePoints
// sharing the same trace file.
type Span struct {
	Type    string            `json:"type"` // always "span"
	Trace   string            `json:"trace"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartNS int64             `json:"start_unix_ns"`
	Seconds float64           `json:"dur_s"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// SpanSink receives completed spans. Implementations must be safe for
// concurrent use (the CLI's TraceEncoder is).
type SpanSink func(Span)

var spanSeq atomic.Uint64

// NewTraceID returns a fresh 16-hex-digit trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// rand.Read cannot fail on supported platforms; keep ids unique anyway.
		return "t" + strconv.FormatUint(spanSeq.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

// newSpanID returns a process-unique span id (cheap: no entropy needed,
// uniqueness only matters within one trace file).
func newSpanID() string { return strconv.FormatUint(spanSeq.Add(1), 16) }

// NewTrace mints a root TraceContext for a new entry point.
func NewTrace() TraceContext {
	return TraceContext{TraceID: NewTraceID(), SpanID: newSpanID()}
}

type traceCtxKey struct{}
type spanSinkKey struct{}

// ContextWithTrace attaches tc as the current trace context.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the current trace context, if any. The lookup
// does not allocate.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// ContextWithSpanSink attaches a span sink; StartSpan below it becomes
// live. A nil sink returns ctx unchanged.
func ContextWithSpanSink(ctx context.Context, sink SpanSink) context.Context {
	if sink == nil {
		return ctx
	}
	return context.WithValue(ctx, spanSinkKey{}, sink)
}

// SpanSinkFromContext returns the attached span sink or nil. The lookup
// does not allocate.
func SpanSinkFromContext(ctx context.Context) SpanSink {
	sink, _ := ctx.Value(spanSinkKey{}).(SpanSink)
	return sink
}

// Traced reports whether ctx carries a live SpanSink. Hot paths use it to
// skip building span attributes (maps allocate) when nothing is listening.
func Traced(ctx context.Context) bool { return SpanSinkFromContext(ctx) != nil }

// noopFinish is the shared finish function for untraced StartSpan calls,
// so the disabled path allocates nothing.
var noopFinish = func(map[string]string) {}

// StartSpan begins a span named name as a child of the context's current
// trace (minting a fresh trace id when there is none) and returns a
// context carrying the child TraceContext plus a finish function that
// emits the completed span with optional attributes. When the context
// carries no SpanSink the call is free: it returns ctx unchanged and a
// shared no-op finish.
func StartSpan(ctx context.Context, name string) (context.Context, func(attrs map[string]string)) {
	sink := SpanSinkFromContext(ctx)
	if sink == nil {
		return ctx, noopFinish
	}
	parent, _ := TraceFromContext(ctx)
	tc := TraceContext{TraceID: parent.TraceID, SpanID: newSpanID()}
	if tc.TraceID == "" {
		tc.TraceID = NewTraceID()
	}
	start := time.Now()
	return ContextWithTrace(ctx, tc), func(attrs map[string]string) {
		sink(Span{
			Type:    "span",
			Trace:   tc.TraceID,
			Span:    tc.SpanID,
			Parent:  parent.SpanID,
			Name:    name,
			StartNS: start.UnixNano(),
			Seconds: time.Since(start).Seconds(),
			Attrs:   attrs,
		})
	}
}
