// Package linalg provides the small-matrix linear algebra the spectral
// fluid-queue solvers need: LU factorization with partial pivoting, a
// Hessenberg-reduction + shifted-QR eigenvalue solver for real matrices
// with real spectra, and inverse iteration for the matching eigenvectors.
//
// Markov-modulated fluid queues (package mmfq) lead to generalized
// eigenproblems z·(D−cI)φ = Qᵀφ whose spectra are provably real; the
// solver here exploits that and reports an error if it encounters an
// irreducible complex pair, rather than silently returning garbage. All
// matrices are dense row-major float64 — the modulating chains in this
// library have at most a few hundred states.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic("linalg: non-positive dimensions")
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices (copied).
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: empty matrix")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("linalg: ragged row %d", i)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Rows and Cols return the dimensions.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec returns A·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic("linalg: dimension mismatch in MulVec")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var acc float64
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			acc += v * x[j]
		}
		out[i] = acc
	}
	return out
}

// LU is a PA = LU factorization with partial pivoting.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// Factor computes the LU decomposition of a square matrix. Singular (to
// working precision) matrices yield an error at Solve time, not here, so
// callers can use Factor for slightly perturbed shifted systems.
func Factor(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, errors.New("linalg: LU of non-square matrix")
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				p, max = i, v
			}
		}
		piv[k] = p
		if p != k {
			for j := 0; j < n; j++ {
				vk, vp := lu.At(k, j), lu.At(p, j)
				lu.Set(k, j, vp)
				lu.Set(p, j, vk)
			}
			sign = -sign
		}
		pivVal := lu.At(k, k)
		if pivVal == 0 {
			continue // singular column; Solve will detect
		}
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivVal
			lu.Set(i, k, f)
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, pivot: piv, sign: sign}, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, errors.New("linalg: dimension mismatch in Solve")
	}
	x := append([]float64(nil), b...)
	// Apply the full permutation first: the stored L rows reflect the
	// final (post-all-swaps) ordering, so the right-hand side must be in
	// that ordering before substitution begins.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward-substitute L (unit diagonal).
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			x[i] -= f.lu.At(i, k) * x[k]
		}
	}
	// Back-substitute U.
	for i := n - 1; i >= 0; i-- {
		d := f.lu.At(i, i)
		if d == 0 || math.Abs(d) < 1e-300 {
			return nil, errors.New("linalg: singular matrix in Solve")
		}
		for j := i + 1; j < n; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
		x[i] /= d
	}
	return x, nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// hessenberg reduces a (copy of a) to upper Hessenberg form in place by
// Householder reflections; similarity is preserved, so the eigenvalues are
// unchanged.
func hessenberg(a *Matrix) *Matrix {
	n := a.rows
	h := a.Clone()
	v := make([]float64, n)
	for k := 0; k < n-2; k++ {
		// Build the Householder vector annihilating column k below k+1.
		var norm float64
		for i := k + 1; i < n; i++ {
			norm += h.At(i, k) * h.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -norm
		if h.At(k+1, k) < 0 {
			alpha = norm
		}
		var vnorm2 float64
		for i := 0; i < n; i++ {
			v[i] = 0
		}
		v[k+1] = h.At(k+1, k) - alpha
		vnorm2 = v[k+1] * v[k+1]
		for i := k + 2; i < n; i++ {
			v[i] = h.At(i, k)
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			continue
		}
		beta := 2 / vnorm2
		// H := (I − βvvᵀ) H (I − βvvᵀ)
		// Left multiply.
		for j := 0; j < n; j++ {
			var dot float64
			for i := k + 1; i < n; i++ {
				dot += v[i] * h.At(i, j)
			}
			dot *= beta
			for i := k + 1; i < n; i++ {
				h.Set(i, j, h.At(i, j)-dot*v[i])
			}
		}
		// Right multiply.
		for i := 0; i < n; i++ {
			var dot float64
			for j := k + 1; j < n; j++ {
				dot += h.At(i, j) * v[j]
			}
			dot *= beta
			for j := k + 1; j < n; j++ {
				h.Set(i, j, h.At(i, j)-dot*v[j])
			}
		}
	}
	// Clean the below-subdiagonal entries to exact zeros.
	for i := 2; i < n; i++ {
		for j := 0; j < i-1; j++ {
			h.Set(i, j, 0)
		}
	}
	return h
}

// RealEigenvalues returns the eigenvalues of a real square matrix whose
// spectrum is real, in ascending order, via Hessenberg reduction and
// Wilkinson-shifted QR iteration with deflation. It returns an error if
// an irreducible 2×2 block with complex eigenvalues survives (i.e. the
// matrix has a complex pair) or if the iteration fails to converge.
func RealEigenvalues(a *Matrix) ([]float64, error) {
	if a.rows != a.cols {
		return nil, errors.New("linalg: eigenvalues of non-square matrix")
	}
	n := a.rows
	if n == 1 {
		return []float64{a.At(0, 0)}, nil
	}
	h := hessenberg(a)
	eig := make([]float64, 0, n)
	hi := n - 1 // active block is rows/cols 0..hi
	const maxIter = 30000
	iter := 0
	for hi >= 0 {
		if iter++; iter > maxIter {
			return nil, errors.New("linalg: QR iteration did not converge")
		}
		// Deflate: find the start of the trailing irreducible block.
		lo := hi
		for lo > 0 {
			offdiag := math.Abs(h.At(lo, lo-1))
			scale := math.Abs(h.At(lo-1, lo-1)) + math.Abs(h.At(lo, lo))
			if offdiag <= 1e-14*(scale+1e-300) {
				h.Set(lo, lo-1, 0)
				break
			}
			lo--
		}
		if lo == hi {
			// 1×1 block: an eigenvalue.
			eig = append(eig, h.At(hi, hi))
			hi--
			continue
		}
		if lo == hi-1 {
			// 2×2 block: solve its quadratic directly.
			a11, a12 := h.At(lo, lo), h.At(lo, hi)
			a21, a22 := h.At(hi, lo), h.At(hi, hi)
			tr := a11 + a22
			det := a11*a22 - a12*a21
			disc := tr*tr/4 - det
			if disc < -1e-12*(tr*tr+math.Abs(det)+1) {
				return nil, fmt.Errorf("linalg: complex eigenvalue pair (disc = %v)", disc)
			}
			if disc < 0 {
				disc = 0
			}
			s := math.Sqrt(disc)
			eig = append(eig, tr/2-s, tr/2+s)
			hi -= 2
			continue
		}
		// Wilkinson shift from the trailing 2×2 of the active block.
		a11, a12 := h.At(hi-1, hi-1), h.At(hi-1, hi)
		a21, a22 := h.At(hi, hi-1), h.At(hi, hi)
		tr := a11 + a22
		det := a11*a22 - a12*a21
		disc := tr*tr/4 - det
		shift := a22
		if disc >= 0 {
			s := math.Sqrt(disc)
			e1, e2 := tr/2-s, tr/2+s
			if math.Abs(e1-a22) < math.Abs(e2-a22) {
				shift = e1
			} else {
				shift = e2
			}
		}
		qrStepHessenberg(h, lo, hi, shift)
	}
	sortAscending(eig)
	return eig, nil
}

// qrStepHessenberg performs one implicit shifted QR sweep on the active
// Hessenberg block h[lo..hi][lo..hi] using Givens rotations.
func qrStepHessenberg(h *Matrix, lo, hi int, shift float64) {
	n := hi - lo + 1
	cs := make([]float64, n-1)
	sn := make([]float64, n-1)
	// Form H − shift·I on the active block.
	for k := lo; k <= hi; k++ {
		h.Set(k, k, h.At(k, k)-shift)
	}
	// QR factorization by Givens rotations: at step k, zero the
	// subdiagonal entry (k+1, k) by rotating rows (k, k+1).
	for k := lo; k < hi; k++ {
		x := h.At(k, k)
		y := h.At(k+1, k)
		r := math.Hypot(x, y)
		var c, s float64
		if r == 0 {
			c, s = 1, 0
		} else {
			c, s = x/r, y/r
		}
		cs[k-lo], sn[k-lo] = c, s
		for j := k; j <= hi; j++ {
			hkj, hk1j := h.At(k, j), h.At(k+1, j)
			h.Set(k, j, c*hkj+s*hk1j)
			h.Set(k+1, j, -s*hkj+c*hk1j)
		}
	}
	// RQ: multiply by the transposed rotations on the right and restore
	// the shift.
	for k := lo; k < hi; k++ {
		c, s := cs[k-lo], sn[k-lo]
		for i := lo; i <= minInt(hi, k+2); i++ {
			hik, hik1 := h.At(i, k), h.At(i, k+1)
			h.Set(i, k, c*hik+s*hik1)
			h.Set(i, k+1, -s*hik+c*hik1)
		}
	}
	for k := lo; k <= hi; k++ {
		h.Set(k, k, h.At(k, k)+shift)
	}
	// Numerical hygiene: clear anything below the subdiagonal.
	for i := lo + 2; i <= hi; i++ {
		for j := lo; j < i-1; j++ {
			h.Set(i, j, 0)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortAscending(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Eigenvector returns a (right) eigenvector of a for the given eigenvalue
// by inverse iteration on (A − λ̃I) with a slightly perturbed shift. The
// result has unit Euclidean norm. It fails if the iteration does not
// settle, which indicates the eigenvalue estimate is poor.
func Eigenvector(a *Matrix, lambda float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, errors.New("linalg: eigenvector of non-square matrix")
	}
	n := a.rows
	// Scale-aware perturbation keeps (A − λ̃I) invertible.
	var scale float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			scale = math.Max(scale, math.Abs(a.At(i, j)))
		}
	}
	if scale == 0 {
		scale = 1
	}
	eps := 1e-10 * scale
	shifted := a.Clone()
	for i := 0; i < n; i++ {
		shifted.Set(i, i, shifted.At(i, i)-(lambda+eps))
	}
	lu, err := Factor(shifted)
	if err != nil {
		return nil, err
	}
	// Start from a deterministic non-degenerate vector.
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n)+float64(i))
	}
	normalize(v)
	var prev []float64
	for it := 0; it < 200; it++ {
		w, err := lu.Solve(v)
		if err != nil {
			// (A − λ̃I) numerically singular: the current v is already an
			// excellent eigenvector direction; perturb the shift more.
			eps *= 10
			shifted = a.Clone()
			for i := 0; i < n; i++ {
				shifted.Set(i, i, shifted.At(i, i)-(lambda+eps))
			}
			if lu, err = Factor(shifted); err != nil {
				return nil, err
			}
			continue
		}
		normalize(w)
		if prev != nil {
			diff := 0.0
			for i := range w {
				diff += math.Abs(math.Abs(w[i]) - math.Abs(prev[i]))
			}
			if diff < 1e-12 {
				return w, nil
			}
		}
		prev = v
		v = w
	}
	// Verify the residual before accepting a slow-converging vector.
	r := a.MulVec(v)
	var resid float64
	for i := range r {
		resid += math.Abs(r[i] - lambda*v[i])
	}
	if resid > 1e-6*(scale+math.Abs(lambda)) {
		return nil, fmt.Errorf("linalg: inverse iteration residual %v too large", resid)
	}
	return v, nil
}

func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	n = math.Sqrt(n)
	if n == 0 {
		return
	}
	// Fix the sign convention: largest-magnitude entry positive.
	maxIdx := 0
	for i, x := range v {
		if math.Abs(x) > math.Abs(v[maxIdx]) {
			maxIdx = i
		}
	}
	if v[maxIdx] < 0 {
		n = -n
	}
	for i := range v {
		v[i] /= n
	}
}
