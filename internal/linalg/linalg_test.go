package linalg

import (
	"math"
	"math/rand"
	"testing"

	"lrd/internal/numerics"
)

func TestFromRowsValidation(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("want error on ragged rows")
	}
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.Rows() != 2 || m.Cols() != 2 {
		t.Fatal("FromRows content wrong")
	}
}

func TestMulVec(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestLUSolveKnownSystem(t *testing.T) {
	a, err := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := lu.Solve([]float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !numerics.AlmostEqual(x[i], want[i], 1e-10) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	if !numerics.AlmostEqual(lu.Det(), -1, 1e-10) {
		t.Fatalf("det = %v, want -1", lu.Det())
	}
}

func TestLUSolveRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(20) + 2
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		lu, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		x, err := lu.Solve(b)
		if err != nil {
			continue // singular draw: acceptable
		}
		r := a.MulVec(x)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-8 {
				t.Fatalf("trial %d: residual %v", trial, r[i]-b[i])
			}
		}
	}
}

func TestLUSingularDetected(t *testing.T) {
	a, err := FromRows([][]float64{{1, 2}, {2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lu.Solve([]float64{1, 1}); err == nil {
		t.Fatal("want error for singular matrix")
	}
}

func TestRealEigenvaluesDiagonal(t *testing.T) {
	a, err := FromRows([][]float64{
		{3, 0, 0},
		{0, -1, 0},
		{0, 0, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	eig, err := RealEigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 3}
	for i := range want {
		if !numerics.AlmostEqual(eig[i], want[i], 1e-10) {
			t.Fatalf("eig = %v, want %v", eig, want)
		}
	}
}

func TestRealEigenvaluesTriangular(t *testing.T) {
	a, err := FromRows([][]float64{
		{1, 5, -3},
		{0, 4, 2},
		{0, 0, -2},
	})
	if err != nil {
		t.Fatal(err)
	}
	eig, err := RealEigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-2, 1, 4}
	for i := range want {
		if !numerics.AlmostEqual(eig[i], want[i], 1e-9) {
			t.Fatalf("eig = %v, want %v", eig, want)
		}
	}
}

func TestRealEigenvalues2x2(t *testing.T) {
	a, err := FromRows([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	eig, err := RealEigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(eig[0], 1, 1e-10) || !numerics.AlmostEqual(eig[1], 3, 1e-10) {
		t.Fatalf("eig = %v, want [1 3]", eig)
	}
}

// randomSymmetric builds a random symmetric matrix (real spectrum
// guaranteed).
func randomSymmetric(n int, rng *rand.Rand) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestRealEigenvaluesSymmetricInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(15) + 2
		a := randomSymmetric(n, rng)
		eig, err := RealEigenvalues(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(eig) != n {
			t.Fatalf("trial %d: %d eigenvalues for n=%d", trial, len(eig), n)
		}
		// Trace and determinant invariants.
		var trace float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		var sum, prod float64 = 0, 1
		for _, e := range eig {
			sum += e
			prod *= e
		}
		if !numerics.AlmostEqual(sum, trace, 1e-7) {
			t.Fatalf("trial %d: Σλ = %v, trace = %v", trial, sum, trace)
		}
		lu, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		det := lu.Det()
		if math.Abs(prod-det) > 1e-6*(math.Abs(det)+1) {
			t.Fatalf("trial %d: Πλ = %v, det = %v", trial, prod, det)
		}
		// Each eigenvalue is a root of det(A − λI).
		for _, e := range eig {
			shifted := a.Clone()
			for i := 0; i < n; i++ {
				shifted.Set(i, i, shifted.At(i, i)-e)
			}
			slu, err := Factor(shifted)
			if err != nil {
				t.Fatal(err)
			}
			// Normalize by the product of the largest n−1 diagonal factors.
			if d := math.Abs(slu.Det()); d > 1e-5*math.Pow(frobenius(a)+1, float64(n)) {
				t.Fatalf("trial %d: det(A−λI) = %v at λ = %v", trial, d, e)
			}
		}
	}
}

func frobenius(a *Matrix) float64 {
	var acc float64
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			acc += a.At(i, j) * a.At(i, j)
		}
	}
	return math.Sqrt(acc)
}

func TestRealEigenvaluesRejectsComplexPair(t *testing.T) {
	// A rotation matrix has eigenvalues e^{±iθ}: must be rejected.
	a, err := FromRows([][]float64{{0, -1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RealEigenvalues(a); err == nil {
		t.Fatal("want error for complex spectrum")
	}
}

func TestRealEigenvaluesNonSymmetricRealSpectrum(t *testing.T) {
	// Build A = S·D·S⁻¹ with known real spectrum via a similarity by a
	// well-conditioned matrix; check recovery.
	d := []float64{-3, -1, 0.5, 2, 4}
	n := len(d)
	rng := rand.New(rand.NewSource(3))
	// S = I + small random perturbation keeps conditioning mild.
	s := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 0.3 * rng.NormFloat64()
			if i == j {
				v += 1
			}
			s.Set(i, j, v)
		}
	}
	slu, err := Factor(s)
	if err != nil {
		t.Fatal(err)
	}
	// A columns: A e_j = S D S⁻¹ e_j.
	a := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		y, err := slu.Solve(e) // y = S⁻¹ e_j
		if err != nil {
			t.Fatal(err)
		}
		for i := range y {
			y[i] *= d[i]
		}
		col := s.MulVec(y)
		for i := 0; i < n; i++ {
			a.Set(i, j, col[i])
		}
	}
	eig, err := RealEigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if !numerics.AlmostEqual(eig[i], d[i], 1e-6) {
			t.Fatalf("eig = %v, want %v", eig, d)
		}
	}
}

func TestEigenvectorResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSymmetric(8, rng)
	eig, err := RealEigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range eig {
		v, err := Eigenvector(a, lambda)
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		av := a.MulVec(v)
		for i := range v {
			if math.Abs(av[i]-lambda*v[i]) > 1e-6 {
				t.Fatalf("λ=%v: residual %v at %d", lambda, av[i]-lambda*v[i], i)
			}
		}
		// Unit norm.
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		if !numerics.AlmostEqual(norm, 1, 1e-9) {
			t.Fatalf("‖v‖² = %v", norm)
		}
	}
}

func TestEigenvalues1x1(t *testing.T) {
	a, err := FromRows([][]float64{{7}})
	if err != nil {
		t.Fatal(err)
	}
	eig, err := RealEigenvalues(a)
	if err != nil || len(eig) != 1 || eig[0] != 7 {
		t.Fatalf("eig = %v, err = %v", eig, err)
	}
}

func TestNonSquareRejected(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := RealEigenvalues(a); err == nil {
		t.Fatal("want error on non-square")
	}
	if _, err := Factor(a); err == nil {
		t.Fatal("want error on non-square")
	}
	if _, err := Eigenvector(a, 1); err == nil {
		t.Fatal("want error on non-square")
	}
}
