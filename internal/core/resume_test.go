package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"lrd/internal/faultinject"
	"lrd/internal/journal"
	"lrd/internal/obs"
)

func TestPointJSONRoundTripsNonFinite(t *testing.T) {
	pts := []Point{
		{NormalizedBuffer: 0.05, Cutoff: math.Inf(1), Loss: 1e-7, Lower: 9e-8, Upper: 2e-7, Converged: true},
		{Cutoff: 0.5, Hurst: 0.85, Scale: 1.5, Streams: 4, Degraded: "iterations"},
		{Loss: math.NaN(), Lower: math.Inf(-1)},
	}
	for _, want := range pts {
		raw, err := want.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %+v: %v", want, err)
		}
		var got Point
		if err := got.UnmarshalJSON(raw); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		// NaN breaks DeepEqual by design; compare it separately.
		if math.IsNaN(want.Loss) {
			if !math.IsNaN(got.Loss) {
				t.Fatalf("NaN loss did not round-trip: %s", raw)
			}
			want.Loss, got.Loss = 0, 0
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v (json %s)", got, want, raw)
		}
	}
	sp := ShufflePoint{NormalizedBuffer: 0.1, BlockLen: math.Inf(1), Loss: 0.02}
	raw, err := sp.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var got ShufflePoint
	if err := got.UnmarshalJSON(raw); err != nil {
		t.Fatal(err)
	}
	if got != sp {
		t.Fatalf("shuffle point round trip: got %+v, want %+v", got, sp)
	}
}

// cancelAfterCells is a Recorder that cancels a context once n sweep cells
// have completed — the test's stand-in for a crash mid-sweep. By the time
// MetricCoreCellsCompleted fires the cell has already been journaled, so
// the "crash" always lands between durable checkpoints.
type cancelAfterCells struct {
	obs.Recorder
	cancel context.CancelFunc
	limit  int64
	n      atomic.Int64
}

func (c *cancelAfterCells) Add(name string, delta float64) {
	c.Recorder.Add(name, delta)
	if name == obs.MetricCoreCellsCompleted && c.n.Add(int64(delta)) >= c.limit {
		c.cancel()
	}
}

// TestSweepResumeBitIdentical is the crash-recovery contract: a sweep
// killed mid-run and resumed from its journal must produce results
// identical to an uninterrupted run.
func TestSweepResumeBitIdentical(t *testing.T) {
	tm := quickModel(t)
	buffers := []float64{0.05, 0.2}
	cutoffs := []float64{0.5, math.Inf(1)}

	clean, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, Sweep(fastCfg()))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.journal")
	store, err := OpenJournalStore(path, JournalStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := obs.NewRegistry()
	icfg := fastCfg()
	icfg.Recorder = &cancelAfterCells{Recorder: reg, cancel: cancel, limit: 1}
	_, _ = LossVsBufferAndCutoff(ctx, tm, 0.85, buffers, cutoffs, SweepConfig{Solver: icfg, Store: store, Prefix: "t|"})
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	rreg := obs.NewRegistry()
	rstore, err := OpenJournalStore(path, JournalStoreOptions{Resume: true, Recorder: rreg})
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	if rstore.Completed() == 0 {
		t.Fatal("interrupted run journaled no cells")
	}
	rcfg := fastCfg()
	rcfg.Recorder = rreg
	resumed, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, SweepConfig{Solver: rcfg, Store: rstore, Prefix: "t|"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, clean) {
		t.Fatalf("resumed sweep differs from uninterrupted run:\nresumed %+v\nclean   %+v", resumed, clean)
	}
	if got := rreg.CounterValue(obs.MetricCoreCellsResumed); got < 1 {
		t.Fatalf("cells resumed = %v, want >= 1", got)
	}
}

// TestResumeSkipsCorruptTrailingLine: a journal whose last line was
// truncated by a crash mid-append must warn, recompute that cell, and
// still converge to the uninterrupted result.
func TestResumeSkipsCorruptTrailingLine(t *testing.T) {
	tm := quickModel(t)
	buffers := []float64{0.05, 0.2}
	cutoffs := []float64{0.5, math.Inf(1)}

	clean, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, Sweep(fastCfg()))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.journal")
	store, err := OpenJournalStore(path, JournalStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, SweepConfig{Solver: fastCfg(), Store: store, Prefix: "t|"}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail off the last record, as a crash mid-append would.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-12], 0o644); err != nil {
		t.Fatal(err)
	}

	var warn bytes.Buffer
	reg := obs.NewRegistry()
	rstore, err := OpenJournalStore(path, JournalStoreOptions{Resume: true, Recorder: reg, Warn: &warn})
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	if got := reg.CounterValue(obs.MetricCoreJournalCorrupt); got != 1 {
		t.Fatalf("corrupt lines = %v, want 1", got)
	}
	if !bytes.Contains(warn.Bytes(), []byte("corrupt")) {
		t.Fatalf("no corruption warning emitted; warn output: %q", warn.String())
	}
	if got := rstore.Completed(); got != len(clean)-1 {
		t.Fatalf("journal recovered %d cells, want %d", got, len(clean)-1)
	}
	rcfg := fastCfg()
	rcfg.Recorder = reg
	resumed, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, SweepConfig{Solver: rcfg, Store: rstore, Prefix: "t|"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, clean) {
		t.Fatalf("resume after corruption differs from clean run")
	}
	if got := reg.CounterValue(obs.MetricCoreCellsResumed); got != float64(len(clean)-1) {
		t.Fatalf("cells resumed = %v, want %d", got, len(clean)-1)
	}
}

// TestRetryRecoversInjectedNumericFault: a cell whose first solve trips
// the numeric watchdog (via fault injection) must succeed on retry, with
// the attempt counted and the failure journaled.
func TestRetryRecoversInjectedNumericFault(t *testing.T) {
	defer faultinject.Reset()
	tm := quickModel(t)
	var fired atomic.Bool
	faultinject.Arm(faultinject.SolverLossBounds, func(pair []float64) {
		if fired.CompareAndSwap(false, true) {
			pair[0], pair[1] = 0.9, 0.1 // lower > upper: bound-order violation
		}
	})

	path := filepath.Join(t.TempDir(), "sweep.journal")
	store, err := OpenJournalStore(path, JournalStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := fastCfg()
	cfg.Recorder = reg
	pts, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, []float64{0.1}, []float64{0.5},
		SweepConfig{
			Solver: cfg,
			Store:  store,
			Retry:  RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond},
			Prefix: "t|",
		})
	if err != nil {
		t.Fatalf("sweep failed despite retry budget: %v", err)
	}
	if len(pts) != 1 || pts[0].Degraded != "" {
		t.Fatalf("want one healthy point, got %+v", pts)
	}
	if got := reg.CounterValue(obs.MetricCoreCellsRetried); got != 1 {
		t.Fatalf("cells retried = %v, want 1", got)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := journal.Load(path)
	if err != nil || stats.Corrupt() != 0 {
		t.Fatalf("journal load: err %v, skipped %d", err, stats.Corrupt())
	}
	var fails, oks int
	for _, r := range recs {
		switch r.Status {
		case journal.StatusFail:
			fails++
			if r.Attempt != 1 || r.Error == "" {
				t.Fatalf("fail record: %+v", r)
			}
		case journal.StatusOK:
			oks++
		}
	}
	if fails != 1 || oks != 1 {
		t.Fatalf("journal has %d fail / %d ok records, want 1 / 1", fails, oks)
	}
}

// TestRetryGivesUpAfterBudget: a persistently failing cell exhausts its
// attempts and surfaces the error instead of looping.
func TestRetryGivesUpAfterBudget(t *testing.T) {
	defer faultinject.Reset()
	tm := quickModel(t)
	faultinject.Arm(faultinject.SolverLossBounds, func(pair []float64) {
		pair[0], pair[1] = 0.9, 0.1
	})
	reg := obs.NewRegistry()
	cfg := fastCfg()
	cfg.Recorder = reg
	_, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, []float64{0.1}, []float64{0.5},
		SweepConfig{Solver: cfg, Retry: RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}})
	if err == nil {
		t.Fatal("want error once the retry budget is exhausted")
	}
	if got := reg.CounterValue(obs.MetricCoreCellsRetried); got != 2 {
		t.Fatalf("cells retried = %v, want 2", got)
	}
}

// cancelAfterStores interrupts a serial sweep after n durable checkpoints.
type cancelAfterStores struct {
	CellStore
	cancel context.CancelFunc
	limit  int32
	n      atomic.Int32
}

func (s *cancelAfterStores) Store(key string, v any) error {
	err := s.CellStore.Store(key, v)
	if s.n.Add(1) >= s.limit {
		s.cancel()
	}
	return err
}

// TestShuffleSurfaceResumeDeterministic: the shuffle surface consumes its
// rng block by block, so an interrupted-then-resumed run (which skips the
// simulations of journaled cells but still performs every shuffle) must
// reproduce the uninterrupted surface exactly.
func TestShuffleSurfaceResumeDeterministic(t *testing.T) {
	tr := quickTrace(t, 3)
	buffers := []float64{0.05, 0.2}
	blocks := []float64{0.5, math.Inf(1)}

	clean, err := ShuffleLossSurface(context.Background(), tr, 0.85, buffers, blocks,
		rand.New(rand.NewSource(42)), SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "shuffle.journal")
	store, err := OpenJournalStore(path, JournalStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, err := ShuffleLossSurface(ctx, tr, 0.85, buffers, blocks,
		rand.New(rand.NewSource(42)),
		SweepConfig{Store: &cancelAfterStores{CellStore: store, cancel: cancel, limit: 1}, Prefix: "t|"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err %v, want context.Canceled", err)
	}
	if len(partial) == 0 || len(partial) == len(clean) {
		t.Fatalf("interrupted run returned %d of %d cells; want a strict subset", len(partial), len(clean))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	rstore, err := OpenJournalStore(path, JournalStoreOptions{Resume: true, Recorder: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	rcfg := SweepConfig{Store: rstore, Prefix: "t|"}
	rcfg.Solver.Recorder = reg
	resumed, err := ShuffleLossSurface(context.Background(), tr, 0.85, buffers, blocks,
		rand.New(rand.NewSource(42)), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, clean) {
		t.Fatalf("resumed shuffle surface differs from uninterrupted run:\nresumed %+v\nclean   %+v", resumed, clean)
	}
	if got := reg.CounterValue(obs.MetricCoreCellsResumed); got < 1 {
		t.Fatalf("cells resumed = %v, want >= 1", got)
	}
}

// TestExperimentResumeViaRunOptions drives the durability layer the way
// the CLIs do — through RunOptions — and checks an interrupted experiment
// resumes to the uninterrupted table.
func TestExperimentResumeViaRunOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment resume is not a -short test")
	}
	exp, err := ExperimentByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	base := RunOptions{Seed: 7, Quick: true, Solver: fastCfg()}
	clean, err := exp.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "fig4.journal")
	store, err := OpenJournalStore(path, JournalStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := obs.NewRegistry()
	iopts := base
	iopts.Store = store
	iopts.Solver.Recorder = &cancelAfterCells{Recorder: reg, cancel: cancel, limit: 2}
	_, _ = exp.Run(ctx, iopts)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	rstore, err := OpenJournalStore(path, JournalStoreOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	if rstore.Completed() == 0 {
		t.Fatal("interrupted experiment journaled no cells")
	}
	ropts := base
	ropts.Store = rstore
	resumed, err := exp.Run(context.Background(), ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, clean) {
		t.Fatalf("resumed experiment table differs from uninterrupted run")
	}
}
