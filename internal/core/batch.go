package core

import (
	"context"
	"sort"
	"sync"

	"lrd/internal/fluid"
	"lrd/internal/obs"
	"lrd/internal/solver"
	"lrd/internal/source"
)

// batchLocal reports whether batch-mode resource sharing — one solver.Arena
// across the sweep's cells, per-column realized-source reuse — applies:
// batching is requested and the cells solve in-process (remote fleets own
// their buffers).
func (c SweepConfig) batchLocal() bool {
	return (c.Batch || c.WarmStarts) && c.Remote == nil
}

// withBatchArena attaches a fresh shared Arena in batch mode. Sweep entry
// points call it before building their compute closures (the closures
// capture the config by value, so attaching any later would be a no-op).
// The arena is excluded from ConfigHash and bit-invisible to results, so
// journal prefixes — and the cells themselves — are unchanged.
func (c SweepConfig) withBatchArena() SweepConfig {
	if c.batchLocal() && c.Solver.Arena == nil {
		c.Solver.Arena = solver.NewArena()
	}
	return c
}

// realizeModel transforms a reference fluid source into the sweep's
// configured traffic model, surfacing approximation fit error exactly as
// the per-cell path does.
func realizeModel(cfg SweepConfig, ref fluid.Source) (source.Source, error) {
	s, err := cfg.Model.Realize(ref)
	if err != nil {
		return nil, err
	}
	if fq, ok := s.(source.FitQuality); ok && cfg.Solver.Recorder != nil {
		cfg.Solver.Recorder.Set(obs.MetricSourceFitMaxError, fq.FitMaxError())
	}
	return s, nil
}

// newColumnCache memoizes per-column realized sources: a batch sweep
// realizes each cutoff column's source once and shares it across the
// column's cells. Source realization is deterministic, so the shared source
// is bit-identical to per-cell realization — only the redundant work (trace
// stats, correlation fits) disappears.
func newColumnCache(n int, realize func(int) (source.Source, error)) func(int) (source.Source, error) {
	type entry struct {
		once sync.Once
		src  source.Source
		err  error
	}
	entries := make([]entry, n)
	return func(c int) (source.Source, error) {
		e := &entries[c]
		e.once.Do(func() { e.src, e.err = realize(c) })
		return e.src, e.err
	}
}

// solveCellSeeded is solveCell with an optional cross-cell warm-start seed.
// It returns the seed for the cell's next larger-buffer neighbor (nil when
// the result carries no usable occupancy vectors). A nil input seed solves
// cold, bit-identical to solveCell.
func solveCellSeeded(ctx context.Context, src source.Source, util, nbuf float64, cfg solver.Config, seed *solver.Seed) (Point, *solver.Seed, error) {
	m, err := solver.NewModelNormalized(src, util, nbuf)
	if err != nil {
		return Point{}, nil, err
	}
	res, err := solver.SolveModelSeeded(ctx, m, cfg, seed)
	if err != nil {
		return Point{}, nil, err
	}
	if res.Degraded != "" && cfg.Recorder != nil {
		cfg.Recorder.Add(obs.MetricCoreCellsDegraded, 1)
	}
	next := solver.SeedFromResult(m, res)
	if next != nil && seed != nil && seed.Iterations > next.Iterations {
		// Keep the chain head's cost as the running cold-cost estimate for
		// the iterations-saved metric.
		next.Iterations = seed.Iterations
	}
	return Point{
		NormalizedBuffer: nbuf,
		Cutoff:           src.Cutoff(),
		Hurst:            src.Hurst(),
		Scale:            1,
		Streams:          1,
		Loss:             res.Loss,
		Lower:            res.Lower,
		Upper:            res.Upper,
		Converged:        res.Converged,
		Degraded:         res.Degraded,
	}, next, nil
}

// bufferChains partitions the row-major buffer×cutoff grid (cell i maps to
// buffer i/nc, cutoff i%nc) into per-cutoff chains ordered by ascending
// buffer — the direction the warm-start coupling argument permits. No such
// ordering exists along the cutoff axis (the work increment takes both
// signs), so chains never cross columns.
func bufferChains(buffers []float64, nc int) [][]int {
	order := make([]int, len(buffers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return buffers[order[a]] < buffers[order[b]] })
	chains := make([][]int, nc)
	for c := 0; c < nc; c++ {
		chain := make([]int, len(buffers))
		for k, bi := range order {
			chain[k] = bi*nc + c
		}
		chains[c] = chain
	}
	return chains
}

// gridSweepChained is gridSweep for warm-chained sweeps: each chain's cells
// execute sequentially, threading a warm-start seed from every freshly
// computed cell into its successor; chains run in parallel on the worker
// pool (so the parallelMap scheduling unit — and its started/completed
// telemetry — is a chain, not a cell).
//
// Durability semantics are unchanged: every cell still goes through
// runCell, so journaled cells replay their committed results untouched and
// leases are honored. A replayed (resumed or adopted) cell carries no
// occupancy vectors, so it breaks the chain — the next cell starts cold —
// which is exactly the "warm starts never change committed results, only
// iteration counts" contract.
func gridSweepChained(ctx context.Context, cfg SweepConfig, n int, chains [][]int, key func(int) string, compute func(context.Context, int, *solver.Seed) (Point, *solver.Seed, error)) ([]Point, error) {
	rec := cfg.Solver.Recorder
	out := make([]Point, n)
	cellDone := make([]bool, n) // written by workers, read after the pool drains
	_, err := parallelMap(ctx, rec, cfg.Workers, len(chains), func(ci int) error {
		if rec != nil {
			rec.Add(obs.MetricCoreWarmChains, 1)
		}
		var seed *solver.Seed
		for _, i := range chains[ci] {
			var next *solver.Seed
			p, err := runCell(ctx, cfg, key(i), func(ctx context.Context) (Point, error) {
				pt, ns, cerr := compute(ctx, i, seed)
				next = ns
				return pt, cerr
			})
			if err != nil {
				return err
			}
			out[i] = p
			cellDone[i] = true
			if next == nil && seed != nil && rec != nil {
				rec.Add(obs.MetricCoreWarmChainBreaks, 1)
			}
			seed = next
		}
		return nil
	})
	return completedPoints(out, cellDone), err
}
