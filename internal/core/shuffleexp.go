package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lrd/internal/horizon"
	"lrd/internal/obs"
	"lrd/internal/shuffle"
	"lrd/internal/sim"
	"lrd/internal/traces"
)

// ShufflePoint is one cell of a trace-driven shuffle experiment
// (Figs. 7, 8, 14): the simulated loss of the finite-buffer queue fed by
// an externally shuffled trace.
type ShufflePoint struct {
	NormalizedBuffer float64 // B/c in seconds
	BlockLen         float64 // shuffle block length in seconds ("cutoff")
	Loss             float64
}

// ShuffleLossSurface reproduces Figs. 7 and 8: for each shuffle block
// length (the empirical cutoff lag) the trace is externally shuffled once
// and driven through queues of every buffer size. A block length of
// math.Inf(1) means no shuffling (the original trace). The service rate is
// set from the trace's mean rate and the requested utilization.
//
// The context is observed between cells: on cancellation the completed
// points are returned together with the context's error, so an interrupted
// sweep still yields its partial surface.
//
// With a cfg.Store the surface is resumable: each simulated cell is
// journaled, and journaled cells skip the queue simulation on resume. The
// shuffle itself always runs — it consumes the rng, and skipping it would
// desynchronize later blocks' shuffles between an interrupted run and its
// resume.
func ShuffleLossSurface(ctx context.Context, tr traces.Trace, util float64, buffers, blocks []float64, rng *rand.Rand, cfg SweepConfig) ([]ShufflePoint, error) {
	if len(tr.Rates) == 0 {
		return nil, errors.New("core: empty trace")
	}
	if len(buffers) == 0 || len(blocks) == 0 {
		return nil, errors.New("core: empty parameter grid")
	}
	if !(util > 0 && util < 1) {
		return nil, fmt.Errorf("core: utilization %v outside (0, 1)", util)
	}
	c := tr.MeanRate() / util
	out := make([]ShufflePoint, 0, len(buffers)*len(blocks))
	for _, blk := range blocks {
		// The shuffle must run even on a canceled context (and on cached
		// cells) so the rng consumption — and hence later blocks' shuffles —
		// stays deterministic regardless of where the interruption lands;
		// the cheap check below still stops the expensive queue simulations
		// promptly.
		var series []float64
		switch {
		case math.IsInf(blk, 1):
			series = tr.Rates
		default:
			nbins := int(math.Round(blk / tr.BinWidth))
			if nbins < 1 {
				nbins = 1
			}
			var err error
			series, err = shuffle.External(tr.Rates, nbins, rng)
			if err != nil {
				return nil, err
			}
		}
		for _, b := range buffers {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			key := cfg.Prefix + "shuffle|u=" + fkey(util) + "|b=" + fkey(b) + "|blk=" + fkey(blk)
			if cfg.Store != nil {
				if raw, ok := cfg.Store.Lookup(key); ok {
					var p ShufflePoint
					if err := json.Unmarshal(raw, &p); err == nil {
						if rec := cfg.Solver.Recorder; rec != nil {
							rec.Add(obs.MetricCoreCellsResumed, 1)
						}
						out = append(out, p)
						continue
					}
				}
			}
			st, err := sim.RunBinnedTrace(series, tr.BinWidth, c, b*c)
			if err != nil {
				return nil, err
			}
			p := ShufflePoint{NormalizedBuffer: b, BlockLen: blk, Loss: st.LossRate()}
			if cfg.Store != nil {
				if err := cfg.Store.Store(key, p); err != nil {
					return out, err
				}
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// HorizonScaling reproduces the Fig. 14 analysis: from a shuffle (or model)
// loss surface it extracts, for every buffer size, the empirical
// correlation horizon — the smallest cutoff whose loss is within tol of
// that buffer's plateau — and fits the horizon-vs-buffer scaling law. The
// paper's finding is an exponent ≈ 1 (the plateau runs parallel to
// B/Tc = γ).
type HorizonScalingResult struct {
	Buffers  []float64 // normalized buffer sizes with a detectable horizon
	Horizons []float64 // empirical correlation horizons (seconds)
	Fit      horizon.ScalingFit
}

// HorizonFromSurface extracts per-buffer horizons from shuffle points and
// fits the scaling law. Points with a zero plateau (no loss even at full
// correlation) are skipped; at least two usable buffers are required.
func HorizonFromSurface(points []ShufflePoint, tol float64) (HorizonScalingResult, error) {
	byBuffer := map[float64]map[float64]float64{} // buffer -> cutoff -> loss
	for _, p := range points {
		if byBuffer[p.NormalizedBuffer] == nil {
			byBuffer[p.NormalizedBuffer] = map[float64]float64{}
		}
		byBuffer[p.NormalizedBuffer][p.BlockLen] = p.Loss
	}
	var res HorizonScalingResult
	for b, curve := range byBuffer {
		cutoffs := make([]float64, 0, len(curve))
		for tc := range curve {
			if !math.IsInf(tc, 1) {
				cutoffs = append(cutoffs, tc)
			}
		}
		if len(cutoffs) < 2 {
			continue
		}
		sort.Float64s(cutoffs)
		losses := make([]float64, len(cutoffs))
		for i, tc := range cutoffs {
			losses[i] = curve[tc]
		}
		ch, err := horizon.FromCurve(cutoffs, losses, tol)
		if err != nil {
			continue // zero plateau: this buffer never loses work
		}
		res.Buffers = append(res.Buffers, b)
		res.Horizons = append(res.Horizons, ch)
	}
	if len(res.Buffers) < 2 {
		return HorizonScalingResult{}, errors.New("core: fewer than two buffers with detectable horizons")
	}
	sortPairs(res.Buffers, res.Horizons)
	fit, err := horizon.LinearScaling(res.Buffers, res.Horizons)
	if err != nil {
		return HorizonScalingResult{}, err
	}
	res.Fit = fit
	return res, nil
}

func sortPairs(keys, vals []float64) {
	sort.Sort(&pairSorter{keys: keys, vals: vals})
}

type pairSorter struct{ keys, vals []float64 }

func (p *pairSorter) Len() int           { return len(p.keys) }
func (p *pairSorter) Less(i, j int) bool { return p.keys[i] < p.keys[j] }
func (p *pairSorter) Swap(i, j int) {
	p.keys[i], p.keys[j] = p.keys[j], p.keys[i]
	p.vals[i], p.vals[j] = p.vals[j], p.vals[i]
}
