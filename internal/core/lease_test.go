package core

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lrd/internal/faultinject"
	"lrd/internal/journal"
	"lrd/internal/obs"
)

func leasePath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "shared.journal")
}

func openLease(t *testing.T, path, worker string, ttl time.Duration) *LeaseStore {
	t.Helper()
	s, err := OpenLeaseStore(path, LeaseStoreOptions{Worker: worker, TTL: ttl, Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestOpenLeaseStoreValidation(t *testing.T) {
	path := leasePath(t)
	if _, err := OpenLeaseStore(path, LeaseStoreOptions{Worker: "", TTL: time.Second}); err == nil {
		t.Fatal("want error for empty worker id")
	}
	if _, err := OpenLeaseStore(path, LeaseStoreOptions{Worker: "w1", TTL: 0}); err == nil {
		t.Fatal("want error for zero TTL")
	}
	if _, err := OpenLeaseStore(path, LeaseStoreOptions{Worker: "w1", TTL: -time.Second}); err == nil {
		t.Fatal("want error for negative TTL")
	}
}

// TestLeaseAcquireStoreAdopt: worker 1 leases and completes a cell; worker
// 2's Acquire on the same key adopts the completed value instead of
// leasing.
func TestLeaseAcquireStoreAdopt(t *testing.T) {
	path := leasePath(t)
	w1 := openLease(t, path, "w1", time.Minute)
	w2 := openLease(t, path, "w2", time.Minute)
	ctx := context.Background()

	_, acquired, err := w1.Acquire(ctx, "cell")
	if err != nil || !acquired {
		t.Fatalf("w1 acquire: acquired=%t err=%v", acquired, err)
	}
	if err := w1.Store("cell", map[string]int{"x": 7}); err != nil {
		t.Fatal(err)
	}
	raw, acquired, err := w2.Acquire(ctx, "cell")
	if err != nil || acquired {
		t.Fatalf("w2 acquire: acquired=%t err=%v", acquired, err)
	}
	var got map[string]int
	if err := json.Unmarshal(raw, &got); err != nil || got["x"] != 7 {
		t.Fatalf("adopted value = %s (err %v)", raw, err)
	}
	// Lookup agrees.
	if raw, ok := w2.Lookup("cell"); !ok || string(raw) != `{"x":7}` {
		t.Fatalf("lookup = %q, %t", raw, ok)
	}
}

// TestLeaseBlocksWhileHeld: a second worker's Acquire blocks while the
// first holds a live lease and adopts as soon as the holder completes.
func TestLeaseBlocksWhileHeld(t *testing.T) {
	path := leasePath(t)
	w1 := openLease(t, path, "w1", time.Minute)
	w2 := openLease(t, path, "w2", time.Minute)
	ctx := context.Background()

	if _, acquired, err := w1.Acquire(ctx, "cell"); err != nil || !acquired {
		t.Fatalf("w1 acquire: acquired=%t err=%v", acquired, err)
	}

	type result struct {
		raw      json.RawMessage
		acquired bool
		err      error
	}
	resCh := make(chan result, 1)
	go func() {
		raw, acquired, err := w2.Acquire(ctx, "cell")
		resCh <- result{raw, acquired, err}
	}()
	select {
	case r := <-resCh:
		t.Fatalf("w2 acquire returned while lease held: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}
	if err := w1.Store("cell", 42); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-resCh:
		if r.err != nil || r.acquired || string(r.raw) != "42" {
			t.Fatalf("w2 adopt: %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("w2 acquire did not unblock after completion")
	}
}

// TestLeaseAcquireHonorsContext: a worker blocked on another's lease
// returns promptly with the context error when canceled.
func TestLeaseAcquireHonorsContext(t *testing.T) {
	path := leasePath(t)
	w1 := openLease(t, path, "w1", time.Minute)
	w2 := openLease(t, path, "w2", time.Minute)
	if _, acquired, err := w1.Acquire(context.Background(), "cell"); err != nil || !acquired {
		t.Fatalf("w1 acquire: acquired=%t err=%v", acquired, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := w2.Acquire(ctx, "cell"); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestLeaseSimultaneousClaim: two workers racing Acquire on one key —
// exactly one wins the lease; after it completes, the loser adopts.
func TestLeaseSimultaneousClaim(t *testing.T) {
	path := leasePath(t)
	w1 := openLease(t, path, "w1", time.Minute)
	w2 := openLease(t, path, "w2", time.Minute)
	ctx := context.Background()

	var mu sync.Mutex
	winners := 0
	var wg sync.WaitGroup
	for _, s := range []*LeaseStore{w1, w2} {
		wg.Add(1)
		go func(s *LeaseStore) {
			defer wg.Done()
			raw, acquired, err := s.Acquire(ctx, "cell")
			if err != nil {
				t.Error(err)
				return
			}
			if acquired {
				mu.Lock()
				winners++
				mu.Unlock()
				if err := s.Store("cell", s.worker); err != nil {
					t.Error(err)
				}
				return
			}
			var adopted string
			if err := json.Unmarshal(raw, &adopted); err != nil {
				t.Errorf("adopted value %s: %v", raw, err)
			}
		}(s)
	}
	wg.Wait()
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
	// The journal agrees with itself on a re-open.
	fresh := openLease(t, path, "w3", time.Minute)
	if _, ok := fresh.Lookup("cell"); !ok {
		t.Fatal("completed cell missing on fresh fold")
	}
}

// fakeClock is a settable wall clock shared between lease stores.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestLeaseStealAfterExpiryAndFencing is the straggler/zombie scenario:
// worker 1 leases a cell and stalls past its TTL; worker 2 steals the
// lease at a higher fencing epoch and completes the cell; worker 1 wakes
// up and completes it anyway — and its stale-epoch write must lose
// everywhere: in both workers' live state and in a cold journal replay.
func TestLeaseStealAfterExpiryAndFencing(t *testing.T) {
	path := leasePath(t)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	rec1, rec2 := obs.NewRegistry(), obs.NewRegistry()
	w1, err := OpenLeaseStore(path, LeaseStoreOptions{Worker: "w1", TTL: time.Second, Poll: time.Millisecond, Recorder: rec1})
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := OpenLeaseStore(path, LeaseStoreOptions{Worker: "w2", TTL: time.Second, Poll: time.Millisecond, Recorder: rec2})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	w1.now, w2.now = clock.now, clock.now

	ctx := context.Background()
	if _, acquired, err := w1.Acquire(ctx, "cell"); err != nil || !acquired {
		t.Fatalf("w1 acquire: acquired=%t err=%v", acquired, err)
	}
	// w1 stalls: no renewal, the lease expires.
	clock.advance(2 * time.Second)
	if _, acquired, err := w2.Acquire(ctx, "cell"); err != nil || !acquired {
		t.Fatalf("w2 steal: acquired=%t err=%v", acquired, err)
	}
	if got := rec2.CounterValue(obs.MetricCoreLeasesStolen); got != 1 {
		t.Fatalf("stolen counter = %v, want 1", got)
	}
	if err := w2.Store("cell", "winner"); err != nil {
		t.Fatal(err)
	}
	// Zombie w1 finishes anyway — after the thief completed.
	if err := w1.Store("cell", "zombie"); err != nil {
		t.Fatal(err)
	}
	if got := rec1.CounterValue(obs.MetricCoreLeasesFenced); got != 1 {
		t.Fatalf("fenced counter = %v, want 1", got)
	}
	for name, s := range map[string]*LeaseStore{"w1": w1, "w2": w2} {
		raw, ok := s.Lookup("cell")
		if !ok || string(raw) != `"winner"` {
			t.Fatalf("%s lookup = %q, %t — zombie write overwrote the newer result", name, raw, ok)
		}
	}
	// Cold replay agrees: the fold is epoch-fenced, not last-write-wins.
	recs, stats, err := journal.Load(path)
	if err != nil || stats.Corrupt() != 0 {
		t.Fatalf("load: stats=%+v err=%v", stats, err)
	}
	if got := journal.Completed(recs); string(got["cell"]) != `"winner"` {
		t.Fatalf("cold replay = %s, want the epoch-2 value", got["cell"])
	}
}

// TestLeaseRenewAfterExpiryLosesFencingRace: a holder whose lease was
// stolen while it stalled must not resurrect it via heartbeat renewal —
// renewHeld detects the theft, drops the lease, and the eventual
// stale-epoch completion is fenced.
func TestLeaseRenewAfterExpiryLosesFencingRace(t *testing.T) {
	path := leasePath(t)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	rec1 := obs.NewRegistry()
	w1, err := OpenLeaseStore(path, LeaseStoreOptions{Worker: "w1", TTL: time.Second, Poll: time.Millisecond, Recorder: rec1})
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := OpenLeaseStore(path, LeaseStoreOptions{Worker: "w2", TTL: time.Second, Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	w1.now, w2.now = clock.now, clock.now

	ctx := context.Background()
	if _, acquired, err := w1.Acquire(ctx, "cell"); err != nil || !acquired {
		t.Fatal("w1 acquire failed")
	}
	clock.advance(2 * time.Second)
	if _, acquired, err := w2.Acquire(ctx, "cell"); err != nil || !acquired {
		t.Fatal("w2 steal failed")
	}
	// w1 wakes up and tries to renew: it must notice the theft and drop the
	// lease rather than extend a dead claim.
	w1.renewHeld()
	if got := rec1.CounterValue(obs.MetricCoreLeasesFenced); got != 1 {
		t.Fatalf("fenced counter after renew = %v, want 1", got)
	}
	w1.mu.Lock()
	_, stillHeld := w1.held["cell"]
	w1.mu.Unlock()
	if stillHeld {
		t.Fatal("w1 still believes it holds a stolen lease")
	}
	if err := w2.Store("cell", "winner"); err != nil {
		t.Fatal(err)
	}
	if err := w1.Store("cell", "zombie"); err != nil {
		t.Fatal(err)
	}
	recs, _, err := journal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := journal.Completed(recs); string(got["cell"]) != `"winner"` {
		t.Fatalf("completed = %s, want the thief's value", got["cell"])
	}
}

// TestLeaseReleaseMakesCellImmediatelyClaimable: an explicit release lets
// another worker claim the cell at a higher epoch without waiting out the
// TTL.
func TestLeaseReleaseMakesCellImmediatelyClaimable(t *testing.T) {
	path := leasePath(t)
	w1 := openLease(t, path, "w1", time.Hour) // TTL far beyond the test
	w2 := openLease(t, path, "w2", time.Hour)
	ctx := context.Background()

	if _, acquired, err := w1.Acquire(ctx, "cell"); err != nil || !acquired {
		t.Fatal("w1 acquire failed")
	}
	if err := w1.Release("cell"); err != nil {
		t.Fatal(err)
	}
	if _, acquired, err := w2.Acquire(ctx, "cell"); err != nil || !acquired {
		t.Fatalf("w2 acquire after release: acquired=%t err=%v", acquired, err)
	}
	w2.mu.Lock()
	epoch := w2.held["cell"]
	w2.mu.Unlock()
	if epoch != 2 {
		t.Fatalf("epoch after release-reclaim = %d, want 2", epoch)
	}
	// Releasing a lease we do not hold is a no-op.
	if err := w1.Release("cell"); err != nil {
		t.Fatal(err)
	}
	w2.mu.Lock()
	defer w2.mu.Unlock()
	if err := w2.refreshLocked(); err != nil {
		t.Fatal(err)
	}
	if c, ok := w2.claims["cell"]; !ok || c.worker != "w2" {
		t.Fatalf("w1's stale release disturbed w2's claim: %+v ok=%t", c, ok)
	}
}

// TestLeaseHeartbeatKeepsLeaseAlive: with the heartbeat running, a lease
// outlives many TTLs; with renewal stalled by fault injection, it expires
// and is stolen.
func TestLeaseHeartbeatKeepsLeaseAlive(t *testing.T) {
	defer faultinject.Reset()
	path := leasePath(t)
	ttl := 100 * time.Millisecond
	w1 := openLease(t, path, "w1", ttl)
	w2 := openLease(t, path, "w2", ttl)
	ctx := context.Background()

	if _, acquired, err := w1.Acquire(ctx, "cell"); err != nil || !acquired {
		t.Fatal("w1 acquire failed")
	}
	stop := w1.StartHeartbeat(ctx)
	defer stop()

	// Well past several TTLs, the lease must still be live: w2 cannot get
	// the cell.
	waitCtx, cancel := context.WithTimeout(ctx, 4*ttl)
	_, _, err := w2.Acquire(waitCtx, "cell")
	cancel()
	if err != context.DeadlineExceeded {
		t.Fatalf("w2 acquired (err=%v) despite live heartbeat", err)
	}

	// Stall the heartbeat: renewals are skipped, the lease expires, w2
	// steals.
	faultinject.ArmErr(faultinject.LeaseRenew, func() error {
		return fmt.Errorf("injected renew stall")
	})
	stealCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, acquired, err := w2.Acquire(stealCtx, "cell"); err != nil || !acquired {
		t.Fatalf("w2 steal after stalled heartbeat: acquired=%t err=%v", acquired, err)
	}
}

// TestLeaseChaosInProcess: N workers, one of which "dies" holding leases,
// race through a grid of cells sharing one journal. Every cell must end
// with exactly the deterministic value of its one winning computation, and
// a cold replay must agree with every live worker.
func TestLeaseChaosInProcess(t *testing.T) {
	path := leasePath(t)
	const cells = 24
	ttl := 150 * time.Millisecond
	ctx := context.Background()

	key := func(i int) string { return fmt.Sprintf("cell-%02d", i) }
	value := func(i int) string { return fmt.Sprintf("v-%02d", i) } // deterministic: same from any worker

	// The dying worker grabs a handful of leases and never completes or
	// renews them — the in-process stand-in for SIGKILL.
	dead := openLease(t, path, "dead", ttl)
	for i := 0; i < 6; i++ {
		if _, acquired, err := dead.Acquire(ctx, key(i)); err != nil || !acquired {
			t.Fatalf("dead worker acquire %d: acquired=%t err=%v", i, acquired, err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		worker := fmt.Sprintf("w%d", w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := OpenLeaseStore(path, LeaseStoreOptions{Worker: worker, TTL: ttl, Poll: 5 * time.Millisecond})
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			stop := s.StartHeartbeat(ctx)
			defer stop()
			for i := 0; i < cells; i++ {
				raw, acquired, err := s.Acquire(ctx, key(i))
				if err != nil {
					t.Errorf("%s acquire %d: %v", worker, i, err)
					return
				}
				if acquired {
					if err := s.Store(key(i), value(i)); err != nil {
						t.Errorf("%s store %d: %v", worker, i, err)
						return
					}
				} else if string(raw) != fmt.Sprintf("%q", value(i)) {
					t.Errorf("%s adopted %d = %s, want %q", worker, i, raw, value(i))
				}
			}
		}()
	}
	wg.Wait()

	recs, stats, err := journal.Load(path)
	if err != nil || stats.Corrupt() != 0 {
		t.Fatalf("load: stats=%+v err=%v", stats, err)
	}
	done := journal.Completed(recs)
	if len(done) != cells {
		t.Fatalf("completed = %d cells, want %d", len(done), cells)
	}
	for i := 0; i < cells; i++ {
		if string(done[key(i)]) != fmt.Sprintf("%q", value(i)) {
			t.Fatalf("cell %d = %s", i, done[key(i)])
		}
	}
}

// TestRunCellWithLeaseStore wires the lease store through the sweep
// engine's runCell: one config computes the cell under a lease; a second
// config sharing the journal adopts it instead of recomputing.
func TestRunCellWithLeaseStore(t *testing.T) {
	path := leasePath(t)
	w1 := openLease(t, path, "w1", time.Minute)
	w2 := openLease(t, path, "w2", time.Minute)
	ctx := context.Background()

	computes := 0
	compute := func(context.Context) (Point, error) {
		computes++
		return Point{Loss: 0.125, Converged: true}, nil
	}
	cfg1 := SweepConfig{Store: w1, Prefix: "t|"}
	p, err := runCell(ctx, cfg1, "cell", compute)
	if err != nil || p.Loss != 0.125 {
		t.Fatalf("runCell via w1: %+v err=%v", p, err)
	}
	cfg2 := SweepConfig{Store: w2, Prefix: "t|"}
	p, err = runCell(ctx, cfg2, "cell", compute)
	if err != nil || p.Loss != 0.125 {
		t.Fatalf("runCell via w2: %+v err=%v", p, err)
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (second worker must adopt)", computes)
	}
	// No lease lingers: both stores report the cell done and hold nothing.
	for _, s := range []*LeaseStore{w1, w2} {
		s.mu.Lock()
		held := len(s.held)
		s.mu.Unlock()
		if held != 0 {
			t.Fatalf("%s still holds %d lease(s)", s.worker, held)
		}
	}
}
