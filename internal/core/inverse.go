package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"lrd/internal/obs"
	"lrd/internal/solver"
	"lrd/internal/source"
)

// Provision targets: the dimension the inverse solve provisions.
const (
	// TargetBuffer finds the minimal normalized buffer (seconds) whose loss
	// meets the SLO at a fixed utilization or service rate.
	TargetBuffer = "buffer"
	// TargetService finds the minimal service rate whose loss meets the SLO
	// at a fixed normalized buffer.
	TargetService = "service"
)

// Default search brackets and stopping parameters for Provision.
const (
	// DefaultMinBuffer / DefaultMaxBuffer bound the buffer search in
	// normalized-buffer seconds: from a millisecond of buffering to about
	// three hours, beyond which a queue that still misses its SLO is
	// operating in a regime the fluid model has nothing useful to say about.
	DefaultMinBuffer = 1e-3
	DefaultMaxBuffer = 1e4
	// DefaultMinUtil / DefaultMaxUtil bound the service search, expressed in
	// utilization: the minimal service rate is found by pushing utilization
	// as high as the SLO allows.
	DefaultMinUtil = 0.01
	DefaultMaxUtil = 0.999
	// DefaultProvisionTol is the relative bracket width at which the
	// bisection stops: the answer is within 1% of minimal.
	DefaultProvisionTol = 0.01
	// DefaultMaxProvisionSolves caps the forward solves one inverse solve
	// may spend. The log-scale bisection needs ~15 at the default
	// tolerance; the cap is a hard guarantee that an inverse solve
	// terminates no matter the inputs.
	DefaultMaxProvisionSolves = 64
)

// ProvisionOptions configures an inverse solve over one realized source.
type ProvisionOptions struct {
	// Target is TargetBuffer (default) or TargetService.
	Target string
	// SLO is the target loss rate in (0, 1). Required.
	SLO float64
	// Util fixes the utilization for the buffer target (exclusive with
	// Service); for the service target it is ignored.
	Util float64
	// Service fixes the service rate for the buffer target (alternative to
	// Util).
	Service float64
	// Buffer fixes the normalized buffer (seconds) for the service target.
	Buffer float64
	// Min and Max override the search bracket: normalized-buffer seconds
	// for TargetBuffer, utilization in (0, 1) for TargetService. Zero means
	// the default.
	Min, Max float64
	// Tol is the relative bracket width at which bisection stops (default
	// DefaultProvisionTol).
	Tol float64
	// MaxSolves caps forward solves (default DefaultMaxProvisionSolves).
	MaxSolves int
	// Solver configures the forward solves. Provision shares one
	// solver.Arena across all its iterates (attaching one if none is set)
	// and threads warm-start seeds through the buffer chain.
	Solver solver.Config
}

// Provisioned is a successful inverse solve: the minimal feasible value
// with the proven loss bound that certifies it, plus the largest infeasible
// value probed. Feasibility is classified on proven solver bounds, not
// midpoints: at Value the solve's upper bound cleared the SLO, so the true
// loss there provably meets it and any independent forward solve of Value
// brackets a loss at or below the SLO; at Bracket the proof failed even
// after tightening the bound gap.
type Provisioned struct {
	Target string
	// Value is the answer: minimal normalized buffer (seconds), or minimal
	// service rate (work units/s).
	Value float64
	// Loss is the proven upper bound on the loss at Value — the quantity the
	// feasibility verdict is decided on, so Loss <= SLO holds exactly.
	Loss float64
	// Bracket is the largest value probed whose loss bound failed to clear
	// the SLO, and BracketLoss that bound (> SLO, again exactly). Bracket is
	// 0 when the SLO was already met at the bracket's cheapest end.
	Bracket     float64
	BracketLoss float64
	// Util is the utilization at Value (service target only; 0 otherwise).
	Util float64
	// Solves counts forward solves spent; WarmSolves how many were seeded
	// from a previous iterate's occupancy vectors.
	Solves     int
	WarmSolves int
}

// InfeasibleError reports an SLO unreachable anywhere in the searched
// bracket: even its most generous end (largest buffer, lowest utilization)
// loses more than the SLO.
type InfeasibleError struct {
	Target string
	SLO    float64
	// Best is the bracket end probed and BestLoss its proven loss bound (> SLO).
	Best     float64
	BestLoss float64
}

// Error implements the error interface.
func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("core: SLO %.3g infeasible for target %s: loss %.3g > SLO at %s %.6g (widen the bracket or relax the SLO)",
		e.SLO, e.Target, e.BestLoss, e.Target, e.Best)
}

// probeGapFloor floors the adaptive bound tightening of SLO-straddling
// probes (see prober.solve): below a 0.1% relative gap the verdict is as
// resolved as any practical SLO comparison needs, and MaxBins usually caps
// the achievable resolution long before.
const probeGapFloor = 1e-3

// prober runs the forward solves of one inverse solve, counting them and
// enforcing the solve budget.
type prober struct {
	src    source.Source
	cfg    solver.Config
	slo    float64
	max    int
	solves int
	warm   int
}

func (p *prober) budget() error {
	if p.solves >= p.max {
		if p.cfg.Recorder != nil {
			p.cfg.Recorder.Add(obs.MetricCoreProvisionSolveBudget, 1)
		}
		return fmt.Errorf("core: provision exceeded its %d-solve budget before converging", p.max)
	}
	return nil
}

// solve forward-solves one iterate and resolves its SLO verdict. The
// bisection consumes the verdict, not the loss estimate: feasible means the
// solver proved loss <= SLO (the upper bound cleared it). A probe whose
// bound bracket straddles the SLO proves neither verdict — a midpoint
// comparison there would depend on which way the bracket happens to lean,
// and an independent forward solve of the returned value could flip it. Such
// probes are re-solved at geometrically tighter gaps, warm-seeded from their
// own iterate, until a bound clears the SLO, the gap floor is reached, or
// the bracket stops shrinking (MaxBins caps resolution); each refinement
// counts against the solve budget.
func (p *prober) solve(ctx context.Context, serviceRate, buffer float64, seed *solver.Seed) (solver.Result, *solver.Seed, bool, error) {
	if err := ctx.Err(); err != nil {
		return solver.Result{}, nil, false, err
	}
	if err := p.budget(); err != nil {
		return solver.Result{}, nil, false, err
	}
	m, err := solver.NewModelFromSource(p.src, serviceRate, buffer*serviceRate)
	if err != nil {
		return solver.Result{}, nil, false, err
	}
	p.solves++
	if seed != nil && seed.ServiceRate == m.ServiceRate && seed.Buffer <= m.Buffer {
		p.warm++
	}
	cfg := p.cfg
	res, err := solver.SolveModelSeeded(ctx, m, cfg, seed)
	if err != nil {
		return solver.Result{}, nil, false, err
	}
	for res.Lower <= p.slo && p.slo < res.Upper {
		gap := cfg.RelGap
		if gap <= 0 {
			gap = 0.2 // the solver's documented default
		}
		if gap <= probeGapFloor {
			break
		}
		cfg.RelGap = math.Max(gap/4, probeGapFloor)
		if err := ctx.Err(); err != nil {
			return solver.Result{}, nil, false, err
		}
		if err := p.budget(); err != nil {
			return solver.Result{}, nil, false, err
		}
		p.solves++
		p.warm++
		width := res.Upper - res.Lower
		res, err = solver.SolveModelSeeded(ctx, m, cfg, solver.SeedFromResult(m, res))
		if err != nil {
			return solver.Result{}, nil, false, err
		}
		if !(res.Upper-res.Lower < width) {
			break
		}
	}
	return res, solver.SeedFromResult(m, res), res.Upper <= p.slo, nil
}

// Provision answers the capacity-planning question for one realized
// source: the minimal buffer (or minimal service rate) whose loss meets
// the SLO. It is a bracketed bisection on the solver's monotone loss —
// decreasing in buffer, increasing in utilization — so every step keeps a
// proven two-sided bracket and the solve count is logarithmic in the
// bracket width. Successive iterates are near-identical queues: the solves
// share one arena, and the buffer search threads warm-start seeds along
// its ascending-buffer moves (the direction the warm-start coupling
// argument permits), so later iterates cost a fraction of the first.
func Provision(ctx context.Context, src source.Source, opts ProvisionOptions) (Provisioned, error) {
	if !(opts.SLO > 0 && opts.SLO < 1) {
		return Provisioned{}, fmt.Errorf("core: SLO must be in (0, 1), got %g", opts.SLO)
	}
	if opts.Tol == 0 {
		opts.Tol = DefaultProvisionTol
	}
	if !(opts.Tol > 0 && opts.Tol < 1) {
		return Provisioned{}, fmt.Errorf("core: tol must be in (0, 1), got %g", opts.Tol)
	}
	if opts.MaxSolves <= 0 {
		opts.MaxSolves = DefaultMaxProvisionSolves
	}
	if opts.Solver.Arena == nil {
		opts.Solver.Arena = solver.NewArena()
	}
	// The solver's budget machinery may degrade a single forward solve to a
	// best-so-far bracket; an inverse solve built on degraded losses would
	// silently provision against the budget, not the queue.
	opts.Solver.MaxDuration = 0

	var out Provisioned
	var err error
	switch opts.Target {
	case "", TargetBuffer:
		out, err = provisionBuffer(ctx, src, opts)
	case TargetService:
		out, err = provisionService(ctx, src, opts)
	default:
		return Provisioned{}, fmt.Errorf("core: unknown provision target %q (want %q or %q)", opts.Target, TargetBuffer, TargetService)
	}
	if rec := opts.Solver.Recorder; rec != nil {
		var inf *InfeasibleError
		switch {
		case err == nil:
			rec.Add(obs.MetricCoreProvisions, 1)
			rec.Add(obs.MetricCoreProvisionSolves, float64(out.Solves))
			rec.Add(obs.MetricCoreProvisionWarmSolves, float64(out.WarmSolves))
		case errors.As(err, &inf):
			rec.Add(obs.MetricCoreProvisionInfeasible, 1)
		}
	}
	return out, err
}

// provisionBuffer finds the minimal normalized buffer: loss is decreasing
// in buffer, so [lo, hi] keeps loss(lo) > SLO and loss(hi) <= SLO and the
// log-scale midpoint replaces the matching end.
func provisionBuffer(ctx context.Context, src source.Source, opts ProvisionOptions) (Provisioned, error) {
	var serviceRate float64
	switch {
	case opts.Util != 0 && opts.Service != 0:
		return Provisioned{}, fmt.Errorf("core: give either util or service, not both")
	case opts.Util != 0:
		if !(opts.Util > 0 && opts.Util < 1) {
			return Provisioned{}, fmt.Errorf("core: utilization %g outside (0, 1)", opts.Util)
		}
		serviceRate = src.MeanRate() / opts.Util
	case opts.Service != 0:
		if opts.Service <= src.MeanRate() {
			return Provisioned{}, fmt.Errorf("core: service rate %g must exceed the mean rate %g", opts.Service, src.MeanRate())
		}
		serviceRate = opts.Service
	default:
		return Provisioned{}, fmt.Errorf("core: one of util or service is required for the buffer target")
	}
	lo, hi := opts.Min, opts.Max
	if lo == 0 {
		lo = DefaultMinBuffer
	}
	if hi == 0 {
		hi = DefaultMaxBuffer
	}
	if !(lo > 0 && hi > lo) {
		return Provisioned{}, fmt.Errorf("core: buffer bracket [%g, %g] must satisfy 0 < min < max", lo, hi)
	}

	p := &prober{src: src, cfg: opts.Solver, slo: opts.SLO, max: opts.MaxSolves}
	// Probe the cheap end first: done if it already meets the SLO. Its seed
	// warm-starts every later iterate — all at larger buffers.
	resLo, seed, feasLo, err := p.solve(ctx, serviceRate, lo, nil)
	if err != nil {
		return Provisioned{}, err
	}
	if feasLo {
		// Already feasible at the bracket minimum: no infeasible point
		// exists in the bracket, reported as Bracket 0.
		return Provisioned{
			Target: TargetBuffer, Value: lo, Loss: resLo.Upper,
			Solves: p.solves, WarmSolves: p.warm,
		}, nil
	}
	brLoss := resLo.Upper
	resHi, _, feasHi, err := p.solve(ctx, serviceRate, hi, seed)
	if err != nil {
		return Provisioned{}, err
	}
	if !feasHi {
		return Provisioned{}, &InfeasibleError{Target: TargetBuffer, SLO: opts.SLO, Best: hi, BestLoss: resHi.Upper}
	}
	feasLoss := resHi.Upper

	for hi/lo-1 > opts.Tol {
		if cerr := ctx.Err(); cerr != nil {
			return Provisioned{}, cerr
		}
		mid := math.Sqrt(lo * hi)
		if !(mid > lo && mid < hi) {
			break // bracket has collapsed to adjacent floats
		}
		res, midSeed, feas, err := p.solve(ctx, serviceRate, mid, seed)
		if err != nil {
			return Provisioned{}, err
		}
		if feas {
			hi, feasLoss = mid, res.Upper
		} else {
			lo, brLoss = mid, res.Upper
			seed = midSeed // every later midpoint is above the new lo
		}
	}
	return Provisioned{
		Target: TargetBuffer, Value: hi, Loss: feasLoss,
		Bracket: lo, BracketLoss: brLoss,
		Solves: p.solves, WarmSolves: p.warm,
	}, nil
}

// provisionService finds the minimal service rate by pushing utilization
// as high as the SLO allows: loss is increasing in utilization, so [lo,
// hi] keeps loss(lo) <= SLO and loss(hi) > SLO (or hi untested beyond the
// cap).
func provisionService(ctx context.Context, src source.Source, opts ProvisionOptions) (Provisioned, error) {
	if opts.Buffer <= 0 {
		return Provisioned{}, fmt.Errorf("core: the service target requires a positive buffer, got %g", opts.Buffer)
	}
	mean := src.MeanRate()
	if !(mean > 0) {
		return Provisioned{}, fmt.Errorf("core: source mean rate must be positive, got %g", mean)
	}
	lo, hi := opts.Min, opts.Max
	if lo == 0 {
		lo = DefaultMinUtil
	}
	if hi == 0 {
		hi = DefaultMaxUtil
	}
	if !(lo > 0 && hi > lo && hi < 1) {
		return Provisioned{}, fmt.Errorf("core: utilization bracket [%g, %g] must satisfy 0 < min < max < 1", lo, hi)
	}

	p := &prober{src: src, cfg: opts.Solver, slo: opts.SLO, max: opts.MaxSolves}
	// Each iterate changes the service rate, so warm seeds never transfer
	// (the seed compatibility contract pins the service rate); the shared
	// arena still recycles every iterate's scratch.
	resLo, _, feasLo, err := p.solve(ctx, mean/lo, opts.Buffer, nil)
	if err != nil {
		return Provisioned{}, err
	}
	if !feasLo {
		return Provisioned{}, &InfeasibleError{Target: TargetService, SLO: opts.SLO, Best: mean / lo, BestLoss: resLo.Upper}
	}
	feasUtil, feasLoss := lo, resLo.Upper

	resHi, _, feasHi, err := p.solve(ctx, mean/hi, opts.Buffer, nil)
	if err != nil {
		return Provisioned{}, err
	}
	if feasHi {
		// The SLO holds even at the bracket's highest utilization: the
		// minimal service inside the searched range, with no infeasible
		// bracket point probed.
		return Provisioned{
			Target: TargetService, Value: mean / hi, Loss: resHi.Upper, Util: hi,
			Solves: p.solves, WarmSolves: p.warm,
		}, nil
	}
	infUtil, infLoss := hi, resHi.Upper

	for infUtil/feasUtil-1 > opts.Tol {
		if cerr := ctx.Err(); cerr != nil {
			return Provisioned{}, cerr
		}
		mid := math.Sqrt(feasUtil * infUtil)
		if !(mid > feasUtil && mid < infUtil) {
			break
		}
		res, _, feas, err := p.solve(ctx, mean/mid, opts.Buffer, nil)
		if err != nil {
			return Provisioned{}, err
		}
		if feas {
			feasUtil, feasLoss = mid, res.Upper
		} else {
			infUtil, infLoss = mid, res.Upper
		}
	}
	return Provisioned{
		Target: TargetService, Value: mean / feasUtil, Loss: feasLoss, Util: feasUtil,
		Bracket: mean / infUtil, BracketLoss: infLoss,
		Solves: p.solves, WarmSolves: p.warm,
	}, nil
}
