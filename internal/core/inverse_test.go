package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"lrd/internal/dist"
	"lrd/internal/fluid"
	"lrd/internal/obs"
	"lrd/internal/solver"
	"lrd/internal/source"
)

// provisionSource is the shared two-state test queue: a 0/2 marginal with a
// cutoff-Pareto interarrival, small enough that each forward solve is
// milliseconds.
func provisionSource(t *testing.T) source.Source {
	t.Helper()
	m, err := dist.NewMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	src, err := fluid.New(m, dist.TruncatedPareto{Theta: 0.02, Alpha: 1.4, Cutoff: 10})
	if err != nil {
		t.Fatal(err)
	}
	return source.NewFluid(src)
}

func provisionCfg() solver.Config {
	return solver.Config{RelGap: 0.2, MaxBins: 1 << 13}
}

// forwardSolve solves the queue at one operating point, cold and unseeded —
// the independent check of the bracket invariant. The returned bounds
// bracket the true loss (Prop. II.1), so they are the bit-robust way to
// check Provision's verdicts: a warm-seeded probe chain and a cold solve
// may disagree bitwise on midpoints, but both must bracket the same truth.
func forwardSolve(t *testing.T, src source.Source, util, nbuf float64, cfg solver.Config) solver.Result {
	t.Helper()
	m, err := solver.NewModelNormalized(src, util, nbuf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.SolveModelContext(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestProvisionBufferBracketInvariant is the acceptance criterion: the
// provisioned buffer provably meets the SLO (and a cold forward solve
// brackets a loss at or below it), while the reported bracket point below
// it provably does not.
func TestProvisionBufferBracketInvariant(t *testing.T) {
	src := provisionSource(t)
	// The heavy tail (alpha 1.4) makes loss decay slowly in buffer, so the
	// test pins the bracket to [default min, 2] where every forward solve is
	// fast; SLO 0.05 sits strictly inside that bracket's loss range.
	const util, slo = 0.8, 0.05
	p, err := Provision(context.Background(), src, ProvisionOptions{
		SLO: slo, Util: util, Max: 2, Solver: provisionCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Target != TargetBuffer {
		t.Errorf("target = %q", p.Target)
	}
	if p.Loss > slo {
		t.Errorf("reported loss %g > SLO %g at value %g", p.Loss, slo, p.Value)
	}
	if p.Bracket <= 0 || p.Bracket >= p.Value {
		t.Fatalf("bracket %g not below value %g", p.Bracket, p.Value)
	}
	if p.BracketLoss <= slo {
		t.Errorf("reported bracket loss %g <= SLO", p.BracketLoss)
	}
	if p.Value/p.Bracket-1 > DefaultProvisionTol*1.0001 {
		t.Errorf("bracket width %g exceeds tol %g", p.Value/p.Bracket-1, DefaultProvisionTol)
	}
	// Independent cold forward solves confirm both sides of the bracket.
	// Provision proved true loss <= SLO at Value, so any valid forward
	// bracket there must reach down to the SLO; at Bracket the true loss
	// exceeds it, so any valid forward bracket must reach above it. (The
	// midpoints are not compared exactly: a 20%-gap midpoint can sit either
	// side of the SLO even when the verdict is proven.)
	fv := forwardSolve(t, src, util, p.Value, provisionCfg())
	if fv.Lower > slo {
		t.Errorf("forward solve at value %g: lower bound %g > SLO %g", p.Value, fv.Lower, slo)
	}
	if fv.Loss > slo*(1+provisionCfg().RelGap) {
		t.Errorf("forward solve at value %g: loss %g far above SLO %g", p.Value, fv.Loss, slo)
	}
	fb := forwardSolve(t, src, util, p.Bracket, provisionCfg())
	if fb.Upper <= slo {
		t.Errorf("forward solve at bracket %g: upper bound %g <= SLO %g (not a bracket)", p.Bracket, fb.Upper, slo)
	}
	if p.Solves > DefaultMaxProvisionSolves {
		t.Errorf("spent %d solves, cap %d", p.Solves, DefaultMaxProvisionSolves)
	}
	if p.WarmSolves == 0 {
		t.Errorf("no warm-seeded solves in a %d-solve ascending chain", p.Solves)
	}
}

// TestProvisionServiceTarget provisions the other dimension: minimal
// service rate at a fixed buffer, verified by a forward solve at the
// resulting utilization.
func TestProvisionServiceTarget(t *testing.T) {
	src := provisionSource(t)
	const nbuf, slo = 0.1, 1e-3
	p, err := Provision(context.Background(), src, ProvisionOptions{
		Target: TargetService, SLO: slo, Buffer: nbuf, Solver: provisionCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Value <= src.MeanRate() {
		t.Fatalf("provisioned service %g below mean rate %g", p.Value, src.MeanRate())
	}
	if p.Util <= 0 || p.Util >= 1 {
		t.Fatalf("util = %g", p.Util)
	}
	if p.Loss > slo {
		t.Errorf("reported loss %g > SLO", p.Loss)
	}
	if got := forwardSolve(t, src, p.Util, nbuf, provisionCfg()); got.Lower > slo {
		t.Errorf("forward solve at util %g: lower bound %g > SLO %g", p.Util, got.Lower, slo)
	}
	if p.Bracket != 0 {
		// A bracket was found: it must be the cheaper (smaller service) side
		// and must violate the SLO.
		if p.Bracket >= p.Value {
			t.Errorf("bracket service %g not below value %g", p.Bracket, p.Value)
		}
		if p.BracketLoss <= slo {
			t.Errorf("bracket loss %g <= SLO", p.BracketLoss)
		}
	}
}

// TestProvisionInfeasibleSLO is the satellite requirement: an SLO below
// anything the bracket can reach returns the typed infeasible error — with
// the probed bracket end as evidence — instead of iterating forever.
func TestProvisionInfeasibleSLO(t *testing.T) {
	src := provisionSource(t)
	reg := obs.NewRegistry()
	cfg := provisionCfg()
	cfg.Recorder = reg
	// Max buffer pinned to a tiny value: even the "best case" end of the
	// bracket loses far more than the absurd 1e-300 SLO.
	_, err := Provision(context.Background(), src, ProvisionOptions{
		SLO: 1e-300, Util: 0.95, Max: 0.002, Solver: cfg,
	})
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want *InfeasibleError", err)
	}
	if inf.Target != TargetBuffer || inf.Best != 0.002 || inf.BestLoss <= 1e-300 {
		t.Errorf("infeasible evidence: %+v", inf)
	}
	if got := reg.Snapshot().Counters[obs.MetricCoreProvisionInfeasible]; got != 1 {
		t.Errorf("infeasible metric = %v", got)
	}

	// Service target: even the bracket's most generous service rate (lowest
	// utilization) cannot hit the SLO with a near-zero buffer. Min stays
	// above 0.5: at util 0.5 the service rate equals the 0/2 marginal's peak
	// rate, the queue never builds, and loss is exactly zero — feasible for
	// any SLO.
	_, err = Provision(context.Background(), src, ProvisionOptions{
		Target: TargetService, SLO: 1e-300, Buffer: 1e-6, Min: 0.7, Solver: provisionCfg(),
	})
	if !errors.As(err, &inf) {
		t.Fatalf("service target err = %v, want *InfeasibleError", err)
	}
	if inf.Target != TargetService {
		t.Errorf("infeasible target = %q", inf.Target)
	}
}

// TestProvisionAlreadyFeasible: an SLO met at the bracket minimum returns
// that minimum with no bracket point (Bracket 0).
func TestProvisionAlreadyFeasible(t *testing.T) {
	src := provisionSource(t)
	p, err := Provision(context.Background(), src, ProvisionOptions{
		SLO: 0.9, Util: 0.6, Solver: provisionCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Value != DefaultMinBuffer {
		t.Errorf("value = %g, want bracket minimum %g", p.Value, DefaultMinBuffer)
	}
	if p.Bracket != 0 || p.BracketLoss != 0 {
		t.Errorf("bracket = (%g, %g), want none", p.Bracket, p.BracketLoss)
	}
	if p.Solves != 1 {
		t.Errorf("spent %d solves for an immediately feasible SLO", p.Solves)
	}
}

// TestProvisionValidation covers the argument errors.
func TestProvisionValidation(t *testing.T) {
	src := provisionSource(t)
	ctx := context.Background()
	cases := []ProvisionOptions{
		{SLO: 0, Util: 0.8},                                   // SLO required
		{SLO: 1.5, Util: 0.8},                                 // SLO out of range
		{SLO: 1e-3, Util: 0.8, Target: "latency"},             // unknown target
		{SLO: 1e-3},                                           // buffer target needs util or service
		{SLO: 1e-3, Util: 0.8, Service: 3},                    // not both
		{SLO: 1e-3, Util: 1.2},                                // util out of range
		{SLO: 1e-3, Service: 0.5},                             // service below mean rate
		{SLO: 1e-3, Util: 0.8, Min: 5, Max: 1},                // inverted bracket
		{SLO: 1e-3, Util: 0.8, Tol: 2},                        // tol out of range
		{SLO: 1e-3, Target: TargetService},                    // service target needs buffer
		{SLO: 1e-3, Target: TargetService, Buffer: 1, Max: 2}, // util bracket must stay < 1
	}
	for i, opts := range cases {
		opts.Solver = provisionCfg()
		if _, err := Provision(ctx, src, opts); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opts)
		} else {
			var inf *InfeasibleError
			if errors.As(err, &inf) {
				t.Errorf("case %d: validation error reported as infeasible: %v", i, err)
			}
		}
	}
}

// TestProvisionSolveBudget: a pathologically tight tolerance terminates at
// the solve cap with an error instead of iterating forever.
func TestProvisionSolveBudget(t *testing.T) {
	src := provisionSource(t)
	_, err := Provision(context.Background(), src, ProvisionOptions{
		SLO: 0.05, Util: 0.8, Max: 2, Tol: 1e-15, MaxSolves: 6, Solver: provisionCfg(),
	})
	if err == nil || !strings.Contains(err.Error(), "solve budget") {
		t.Fatalf("err = %v, want solve-budget error", err)
	}
}

// TestProvisionCancellation: a canceled context aborts the root-find with
// the context error.
func TestProvisionCancellation(t *testing.T) {
	src := provisionSource(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Provision(ctx, src, ProvisionOptions{SLO: 0.05, Util: 0.8, Max: 2, Solver: provisionCfg()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
