package core

import (
	"context"
	"math"
	"strconv"
	"testing"

	"lrd/internal/solver"
)

func quickOpts() RunOptions {
	return RunOptions{
		Seed:   1,
		Quick:  true,
		Solver: solver.Config{InitialBins: 64, MaxBins: 1024, MaxIterations: 10000},
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "hurst", "markov",
		"arqfec", "eq26", "modelfit", "delay",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("experiments = %d, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, got[i].ID, id)
		}
		if got[i].Title == "" || got[i].Run == nil {
			t.Errorf("experiment %q incomplete", got[i].ID)
		}
	}
}

func TestExperimentByID(t *testing.T) {
	e, err := ExperimentByID("fig9")
	if err != nil || e.ID != "fig9" {
		t.Fatalf("lookup failed: %v %v", e.ID, err)
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Fatal("want error for unknown id")
	}
}

// TestAllExperimentsRunQuick smoke-tests every experiment end to end in
// quick mode: each must produce a non-empty, rectangular table.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take tens of seconds")
	}
	opts := quickOpts()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(context.Background(), opts)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tb.Header) == 0 || len(tb.Rows) == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			for i, row := range tb.Rows {
				if len(row) != len(tb.Header) {
					t.Fatalf("%s row %d has %d cells, header has %d", e.ID, i, len(row), len(tb.Header))
				}
			}
		})
	}
}

// TestFig9ShowsMarginalDominance checks the headline claim on the quick
// corpus: at identical (B, util, θ, H), the wide Bellcore marginal loses
// orders of magnitude more than the narrow MTV marginal.
func TestFig9ShowsMarginalDominance(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus synthesis and the fig9 sweep are slow")
	}
	tb, err := runFig9(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	loss := map[string]float64{}
	for _, row := range tb.Rows {
		if row[1] == "inf" { // the fully correlated endpoint
			v, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatal(err)
			}
			loss[row[0]] = v
		}
	}
	if len(loss) != 2 {
		t.Fatalf("missing endpoints: %v", loss)
	}
	if loss["bellcore"] < 10*loss["mtv"] {
		t.Fatalf("marginal dominance not reproduced: bellcore %v vs mtv %v", loss["bellcore"], loss["mtv"])
	}
}

// TestFig14HorizonScalesWithBuffer checks the Fig. 14 claim on the quick
// corpus: the fitted horizon-vs-buffer exponent is near 1 and positive.
func TestFig14HorizonScalesWithBuffer(t *testing.T) {
	tb, err := runFig14(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 2 {
		t.Fatalf("too few horizon rows: %d", len(tb.Rows))
	}
	exp, err := strconv.ParseFloat(tb.Rows[0][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if exp <= 0 || math.IsNaN(exp) {
		t.Fatalf("horizon scaling exponent = %v, want positive", exp)
	}
}

// TestMarkovExperimentRatioNearOne: the §IV experiment's loss ratio
// between the fitted Markovian model and the original must be O(1).
func TestMarkovExperimentRatioNearOne(t *testing.T) {
	tb, err := runMarkov(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		ratio, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(ratio) {
			continue // zero-loss cell
		}
		if ratio < 0.3 || ratio > 3 {
			t.Fatalf("markov/pareto loss ratio %v too far from 1 (buffer %s)", ratio, row[0])
		}
	}
}

// TestARQFECTrend: FEC residual worsens and ARQ burst length grows as the
// correlation block grows.
func TestARQFECTrend(t *testing.T) {
	tb, err := runARQFEC(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var fec, burst []float64
	for _, row := range tb.Rows {
		if row[0] == "-1" {
			continue // unshuffled original, listed first
		}
		v1, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		fec = append(fec, v1)
		burst = append(burst, v2)
	}
	if len(fec) < 3 {
		t.Fatalf("too few rows: %d", len(fec))
	}
	if !(fec[len(fec)-1] > fec[0]) {
		t.Fatalf("FEC residual should grow with the correlation block: %v", fec)
	}
	if !(burst[len(burst)-1] > burst[0]) {
		t.Fatalf("ARQ bursts should lengthen with the correlation block: %v", burst)
	}
}
