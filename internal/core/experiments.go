package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"lrd/internal/dist"
	"lrd/internal/errctl"
	"lrd/internal/fluid"
	"lrd/internal/horizon"
	"lrd/internal/lrdest"
	"lrd/internal/numerics"
	"lrd/internal/obs"
	"lrd/internal/shuffle"
	"lrd/internal/solver"
	"lrd/internal/source"
	"lrd/internal/traces"
)

// Table is a formatted experiment result: a header plus rows of cells,
// ready for TSV output.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

func f(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// deg renders a cell's degradation reason for TSV output ("-" = none).
func deg(r solver.DegradeReason) string {
	if r == "" {
		return "-"
	}
	return string(r)
}

// Experiment is one reproducible unit of the paper's evaluation. Run
// observes ctx between parameter points: on cancellation or deadline expiry
// it returns the rows completed so far together with the context's error,
// so a sweep always produces partial, clearly-marked output instead of
// hanging or discarding finished work.
type Experiment struct {
	ID    string // e.g. "fig4"
	Title string // what the paper's figure/table shows
	Run   func(ctx context.Context, opts RunOptions) (Table, error)
}

// RunOptions controls experiment scale and per-point budgets.
type RunOptions struct {
	// Seed drives all randomness (trace synthesis, shuffling).
	Seed int64
	// Quick shrinks the grids for smoke tests and benches; the full grids
	// match the ranges in the paper's §III.
	Quick bool
	// Solver overrides the solver configuration (zero value = defaults).
	// Its MaxIterations field doubles as the per-point iteration budget.
	Solver solver.Config
	// PointTimeout is a per-point wall-clock budget. A pathological cell
	// (α→1, ρ→1, huge B) then yields a degraded bracketed row instead of
	// wedging the whole sweep. Zero means no per-point budget.
	PointTimeout time.Duration
	// Store, when non-nil, journals every completed sweep cell and replays
	// journaled cells on resume (see JournalStore).
	Store CellStore
	// Retry re-runs transiently failed or degraded cells (see RetryPolicy).
	Retry RetryPolicy
	// Model selects the registered traffic model (internal/source) every
	// sweep cell is realized as. The zero spec is the fluid identity — the
	// paper's model, bit-identical to the pre-registry code path.
	Model source.Spec
	// MarkovFit parameterizes the "markov" experiment's correlation fit
	// (the registry's markov-model parameters: horizon, components, samples,
	// iterations). Nil uses the registry defaults — the fit horizon falls
	// back to the reference source's correlated range.
	MarkovFit source.Params
	// Workers caps the in-process sweep worker pool (see
	// SweepConfig.Workers). Zero means one worker per CPU.
	Workers int
	// Remote, when non-nil, sends each cell's realize+solve to a remote
	// fleet instead of the in-process solver (see SweepConfig.Remote).
	Remote RemoteSolveFunc
	// Batch enables exact batch-mode solving — shared arena and per-column
	// source reuse, bit-identical results (see SweepConfig.Batch).
	Batch bool
	// WarmStarts additionally chains cross-cell warm starts along the
	// buffer axis (see SweepConfig.WarmStarts). Implies Batch.
	WarmStarts bool
}

// solverConfig returns the effective per-point solver configuration with
// the RunOptions budgets applied.
func (o RunOptions) solverConfig() solver.Config {
	cfg := o.Solver
	if o.PointTimeout > 0 {
		cfg.MaxDuration = o.PointTimeout
	}
	return cfg
}

// sweepConfig bundles the solver configuration with the traffic model and
// the durability layer for one experiment's sweeps. The key prefix carries
// everything outside the per-cell grid coordinates that determines cell
// results — experiment id, seed, solver-config hash, and the canonical
// model spec (name plus sorted parameters) — so a journal is only ever
// replayed into the run it belongs to and never across models.
func (o RunOptions) sweepConfig(id string) SweepConfig {
	cfg := o.solverConfig()
	return SweepConfig{
		Solver:  cfg,
		Model:   o.Model,
		Store:   o.Store,
		Retry:   o.Retry,
		Prefix:  fmt.Sprintf("%s|seed=%d|quick=%t|cfg=%s|model=%s|", id, o.Seed, o.Quick, ConfigHash(cfg), o.Model.Key()),
		Workers: o.Workers,
		Remote:  o.Remote,
		Batch:   o.Batch,
		// Warm sweeps namespace their own journal keys (see
		// LossVsBufferAndCutoff), so the prefix here stays shared.
		WarmStarts: o.WarmStarts,
	}
}

func (o RunOptions) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(o.Seed*1000003 + offset))
}

// grids returns (buffers, cutoffs) for the loss-surface experiments.
func (o RunOptions) surfaceGrids() (buffers, cutoffs []float64) {
	if o.Quick {
		return []float64{0.05, 0.2, 1},
			[]float64{0.1, 1, 10, math.Inf(1)}
	}
	// Paper: normalized buffers up to a few seconds; cutoff lags spanning
	// milliseconds to minutes plus the fully correlated case.
	return numerics.Logspace(0.01, 3, 9),
		append(numerics.Logspace(0.05, 100, 9), math.Inf(1))
}

func (o RunOptions) hurstGrid() []float64 {
	if o.Quick {
		return []float64{0.55, 0.75, 0.95}
	}
	return []float64{0.55, 0.65, 0.75, 0.85, 0.95}
}

func (o RunOptions) scaleGrid() []float64 {
	if o.Quick {
		return []float64{0.5, 1, 1.5}
	}
	return []float64{0.5, 0.75, 1, 1.25, 1.5}
}

func (o RunOptions) streamsGrid() []int {
	if o.Quick {
		return []int{1, 2, 5}
	}
	return []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
}

// mtv and bellcore memoize the synthesized corpus per (seed, quick) so the
// fig* experiments share one synthesis.
func (o RunOptions) mtv() (TraceModel, error) {
	if o.Quick {
		return quickCorpus(o, "mtv")
	}
	return MTVModel(o.Seed)
}

func (o RunOptions) bellcore() (TraceModel, error) {
	if o.Quick {
		return quickCorpus(o, "bellcore")
	}
	return BellcoreModel(o.Seed)
}

// quickCorpus synthesizes small stand-ins for fast runs.
func quickCorpus(o RunOptions, which string) (TraceModel, error) {
	cfgs := map[string]struct {
		h, mean, cov, bw float64
	}{
		"mtv":      {0.83, 9.5222, 0.30, 1.0 / 30},
		"bellcore": {0.9, 1.3, 1.3, 0.01},
	}
	c := cfgs[which]
	tr, err := synthQuick(which, c.h, c.mean, c.cov, c.bw, o.rng(int64(len(which))))
	if err != nil {
		return TraceModel{}, err
	}
	return BuildTraceModel(tr, c.h)
}

// pointsTable renders solver points.
func pointsTable(header []string, pts []Point, cells func(Point) []string) Table {
	t := Table{Header: header}
	for _, p := range pts {
		t.Rows = append(t.Rows, cells(p))
	}
	return t
}

// Experiments returns the full registry, one entry per figure of the
// paper's evaluation plus the extension experiments documented in
// DESIGN.md.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig2", Title: "Convergence of the discrete occupancy bounds (n = 5, 10, 30; M = 100)", Run: runFig2},
		{ID: "fig3", Title: "Marginal distributions of the MTV and Bellcore traces (50-bin histograms)", Run: runFig3},
		{ID: "fig4", Title: "Model loss vs normalized buffer and cutoff lag (MTV, util 0.8)", Run: runFig4},
		{ID: "fig5", Title: "Model loss vs normalized buffer and cutoff lag (Bellcore, util 0.4)", Run: runFig5},
		{ID: "fig6", Title: "External shuffling demonstration (correlation before/after)", Run: runFig6},
		{ID: "fig7", Title: "Shuffle-simulated loss vs buffer and block length (MTV, util 0.8)", Run: runFig7},
		{ID: "fig8", Title: "Shuffle-simulated loss vs buffer and block length (Bellcore, util 0.4)", Run: runFig8},
		{ID: "fig9", Title: "Loss vs cutoff lag for the MTV and Bellcore marginals (B/c = 1 s, util 2/3, θ = 20 ms, H = 0.9)", Run: runFig9},
		{ID: "fig10", Title: "Loss vs Hurst parameter and marginal scaling factor (MTV, util 0.8, B/c = 1 s, Tc = ∞)", Run: runFig10},
		{ID: "fig11", Title: "Loss vs Hurst parameter and number of superposed streams (MTV, util 0.8)", Run: runFig11},
		{ID: "fig12", Title: "Loss vs normalized buffer and marginal scaling factor (MTV, util 0.8)", Run: runFig12},
		{ID: "fig13", Title: "Loss vs normalized buffer and marginal scaling factor (Bellcore, util 0.4)", Run: runFig13},
		{ID: "fig14", Title: "Correlation-horizon scaling: per-buffer horizons and the B/Tc = γ fit (MTV shuffle surface)", Run: runFig14},
		{ID: "hurst", Title: "Hurst-parameter estimates for both traces (§III: H_MTV ≈ 0.83, H_BC ≈ 0.9)", Run: runHurst},
		{ID: "markov", Title: "Markovian model matched to the correlation up to CH predicts the same loss (§IV)", Run: runMarkov},
		{ID: "arqfec", Title: "ARQ vs FEC across loss-correlation time scales (§V)", Run: runARQFEC},
		{ID: "eq26", Title: "Analytic correlation horizon (Eq. 26) vs buffer size", Run: runEq26},
		{ID: "modelfit", Title: "Model-vs-shuffle-simulation agreement on the shared (B, Tc) grid (MTV, §III)", Run: runModelFit},
		{ID: "delay", Title: "Queueing-delay quantiles vs cutoff lag: the horizon governs delay too (extension)", Run: runDelay},
	}
}

// ExperimentByID returns the experiment with the given id.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

func runFig2(ctx context.Context, o RunOptions) (Table, error) {
	tm, err := o.mtv()
	if err != nil {
		return Table{}, err
	}
	if err := ctx.Err(); err != nil {
		return Table{}, err
	}
	snaps, err := BoundConvergence(tm, 0.8, 1.0, 100, []int{5, 10, 30})
	if err != nil {
		return Table{}, err
	}
	t := Table{Header: []string{"iteration", "occupancy_s", "lower_cdf", "upper_cdf"}}
	for _, s := range snaps {
		for i := range s.Grid {
			t.Add(strconv.Itoa(s.Iteration), f(s.Grid[i]), f(s.LowerCDF[i]), f(s.UpperCDF[i]))
		}
	}
	return t, nil
}

func runFig3(_ context.Context, o RunOptions) (Table, error) {
	t := Table{Header: []string{"trace", "rate_mbps", "probability"}}
	for _, get := range []func() (TraceModel, error){o.mtv, o.bellcore} {
		tm, err := get()
		if err != nil {
			return Table{}, err
		}
		for i := 0; i < tm.Marginal.Len(); i++ {
			t.Add(tm.Trace.Name, f(tm.Marginal.Rate(i)), f(tm.Marginal.Prob(i)))
		}
	}
	return t, nil
}

func surfaceRun(ctx context.Context, o RunOptions, id string, get func() (TraceModel, error), util float64) (Table, error) {
	tm, err := get()
	if err != nil {
		return Table{}, err
	}
	buffers, cutoffs := o.surfaceGrids()
	pts, err := LossVsBufferAndCutoff(ctx, tm, util, buffers, cutoffs, o.sweepConfig(id))
	if err != nil && len(pts) == 0 {
		return Table{}, err
	}
	return pointsTable(
		[]string{"buffer_s", "cutoff_s", "loss", "lower", "upper", "converged", "degraded"},
		pts,
		func(p Point) []string {
			return []string{f(p.NormalizedBuffer), f(p.Cutoff), f(p.Loss), f(p.Lower), f(p.Upper), strconv.FormatBool(p.Converged), deg(p.Degraded)}
		}), err
}

func runFig4(ctx context.Context, o RunOptions) (Table, error) {
	return surfaceRun(ctx, o, "fig4", o.mtv, 0.8)
}
func runFig5(ctx context.Context, o RunOptions) (Table, error) {
	return surfaceRun(ctx, o, "fig5", o.bellcore, 0.4)
}

func runFig6(_ context.Context, o RunOptions) (Table, error) {
	tm, err := o.mtv()
	if err != nil {
		return Table{}, err
	}
	rng := o.rng(6)
	lags := []int{1, 4, 16, 64, 256}
	maxLag := 256
	orig, err := lrdest.SampleAutocorrelation(tm.Trace.Rates, maxLag)
	if err != nil {
		return Table{}, err
	}
	blockBins := 32
	shuffled, err := shuffleSeries(tm.Trace.Rates, blockBins, rng)
	if err != nil {
		return Table{}, err
	}
	shufACF, err := lrdest.SampleAutocorrelation(shuffled, maxLag)
	if err != nil {
		return Table{}, err
	}
	t := Table{Header: []string{"lag_bins", "acf_original", "acf_shuffled_block32"}}
	for _, l := range lags {
		t.Add(strconv.Itoa(l), f(orig[l]), f(shufACF[l]))
	}
	return t, nil
}

func shuffleRun(ctx context.Context, o RunOptions, id string, get func() (TraceModel, error), util float64, seedOff int64) (Table, []ShufflePoint, error) {
	tm, err := get()
	if err != nil {
		return Table{}, nil, err
	}
	buffers, cutoffs := o.surfaceGrids()
	blocks := make([]float64, 0, len(cutoffs))
	for _, tc := range cutoffs {
		blocks = append(blocks, tc) // block length in seconds == cutoff lag
	}
	pts, err := ShuffleLossSurface(ctx, tm.Trace, util, buffers, blocks, o.rng(seedOff), o.sweepConfig(id))
	if err != nil && len(pts) == 0 {
		return Table{}, nil, err
	}
	t := Table{Header: []string{"buffer_s", "block_s", "loss"}}
	for _, p := range pts {
		t.Add(f(p.NormalizedBuffer), f(p.BlockLen), f(p.Loss))
	}
	return t, pts, err
}

func runFig7(ctx context.Context, o RunOptions) (Table, error) {
	t, _, err := shuffleRun(ctx, o, "fig7", o.mtv, 0.8, 7)
	return t, err
}

func runFig8(ctx context.Context, o RunOptions) (Table, error) {
	t, _, err := shuffleRun(ctx, o, "fig8", o.bellcore, 0.4, 8)
	return t, err
}

func runFig9(ctx context.Context, o RunOptions) (Table, error) {
	mtv, err := o.mtv()
	if err != nil {
		return Table{}, err
	}
	bc, err := o.bellcore()
	if err != nil {
		return Table{}, err
	}
	var cutoffs []float64
	if o.Quick {
		cutoffs = append(numerics.Logspace(0.05, 20, 5), math.Inf(1))
	} else {
		cutoffs = append(numerics.Logspace(0.02, 100, 11), math.Inf(1))
	}
	t := Table{Header: []string{"marginal", "cutoff_s", "loss", "lower", "upper", "degraded"}}
	var sweepErr error
	for _, tc := range []struct {
		name string
		tm   TraceModel
	}{{"mtv", mtv}, {"bellcore", bc}} {
		// Fig. 9 normalizes the comparison: B/c = 1 s, util = 2/3,
		// θ = 20 ms, H = 0.9 for both marginals.
		pts, err := LossVsCutoffFixedTheta(ctx, tc.tm.Marginal, 2.0/3.0, 1.0, 0.02, 0.9, cutoffs, o.sweepConfig("fig9").Sub(tc.name))
		if err != nil && len(pts) == 0 && sweepErr == nil {
			return Table{}, err
		}
		sweepErr = err
		for _, p := range pts {
			t.Add(tc.name, f(p.Cutoff), f(p.Loss), f(p.Lower), f(p.Upper), deg(p.Degraded))
		}
	}
	return t, sweepErr
}

func runFig10(ctx context.Context, o RunOptions) (Table, error) {
	tm, err := o.mtv()
	if err != nil {
		return Table{}, err
	}
	pts, err := LossVsHurstAndScale(ctx, tm, 0.8, 1.0, o.hurstGrid(), o.scaleGrid(), o.sweepConfig("fig10"))
	if err != nil && len(pts) == 0 {
		return Table{}, err
	}
	return pointsTable(
		[]string{"hurst", "scale", "loss", "lower", "upper", "degraded"},
		pts,
		func(p Point) []string {
			return []string{f(p.Hurst), f(p.Scale), f(p.Loss), f(p.Lower), f(p.Upper), deg(p.Degraded)}
		}), err
}

func runFig11(ctx context.Context, o RunOptions) (Table, error) {
	tm, err := o.mtv()
	if err != nil {
		return Table{}, err
	}
	pts, err := LossVsHurstAndStreams(ctx, tm, 0.8, 1.0, o.hurstGrid(), o.streamsGrid(), o.sweepConfig("fig11"))
	if err != nil && len(pts) == 0 {
		return Table{}, err
	}
	return pointsTable(
		[]string{"hurst", "streams", "loss", "lower", "upper", "degraded"},
		pts,
		func(p Point) []string {
			return []string{f(p.Hurst), strconv.Itoa(p.Streams), f(p.Loss), f(p.Lower), f(p.Upper), deg(p.Degraded)}
		}), err
}

func bufferScaleRun(ctx context.Context, o RunOptions, id string, get func() (TraceModel, error), util float64) (Table, error) {
	tm, err := get()
	if err != nil {
		return Table{}, err
	}
	var buffers []float64
	if o.Quick {
		buffers = []float64{0.1, 1, 5}
	} else {
		buffers = numerics.Logspace(0.1, 5, 7)
	}
	pts, err := LossVsBufferAndScale(ctx, tm, util, buffers, o.scaleGrid(), o.sweepConfig(id))
	if err != nil && len(pts) == 0 {
		return Table{}, err
	}
	return pointsTable(
		[]string{"buffer_s", "scale", "loss", "lower", "upper", "degraded"},
		pts,
		func(p Point) []string {
			return []string{f(p.NormalizedBuffer), f(p.Scale), f(p.Loss), f(p.Lower), f(p.Upper), deg(p.Degraded)}
		}), err
}

func runFig12(ctx context.Context, o RunOptions) (Table, error) {
	return bufferScaleRun(ctx, o, "fig12", o.mtv, 0.8)
}
func runFig13(ctx context.Context, o RunOptions) (Table, error) {
	return bufferScaleRun(ctx, o, "fig13", o.bellcore, 0.4)
}

func runFig14(ctx context.Context, o RunOptions) (Table, error) {
	var pts []ShufflePoint
	if o.Quick {
		var err error
		_, pts, err = shuffleRun(ctx, o, "fig14", o.mtv, 0.8, 14)
		if err != nil {
			return Table{}, err
		}
	} else {
		// Fig. 14 needs block lengths extending far beyond the largest
		// buffer's horizon (the trace spans an hour), otherwise the
		// detected horizons saturate at the grid edge and bias the
		// scaling exponent upward.
		tm, err := o.mtv()
		if err != nil {
			return Table{}, err
		}
		buffers := numerics.Logspace(0.02, 1, 7)
		blocks := append(numerics.Logspace(0.05, 2000, 14), math.Inf(1))
		pts, err = ShuffleLossSurface(ctx, tm.Trace, 0.8, buffers, blocks, o.rng(14), o.sweepConfig("fig14"))
		if err != nil {
			return Table{}, err
		}
	}
	res, err := HorizonFromSurface(pts, 0.2)
	if err != nil {
		return Table{}, err
	}
	t := Table{Header: []string{"buffer_s", "horizon_s", "gamma_fit", "exponent_fit"}}
	for i := range res.Buffers {
		t.Add(f(res.Buffers[i]), f(res.Horizons[i]), f(res.Fit.Gamma), f(res.Fit.Exponent))
	}
	return t, nil
}

func runHurst(_ context.Context, o RunOptions) (Table, error) {
	t := Table{Header: []string{"trace", "aggvar", "rs", "whittle", "abry_veitch", "gph", "paper"}}
	for _, tc := range []struct {
		get   func() (TraceModel, error)
		paper float64
	}{{o.mtv, 0.83}, {o.bellcore, 0.9}} {
		tm, err := tc.get()
		if err != nil {
			return Table{}, err
		}
		est := lrdest.EstimateAll(tm.Trace.Rates)
		t.Add(tm.Trace.Name, f(est.AggregatedVariance.Value()), f(est.RescaledRange.Value()),
			f(est.LocalWhittle.Value()), f(est.AbryVeitch.Value()), f(est.GPH.Value()), f(tc.paper))
	}
	return t, nil
}

func runMarkov(ctx context.Context, o RunOptions) (Table, error) {
	tm, err := o.mtv()
	if err != nil {
		return Table{}, err
	}
	src, err := tm.Source(10) // a 10 s cutoff keeps the epoch variance finite
	if err != nil {
		return Table{}, err
	}
	// The Markovian source comes from the model registry, parameterized by
	// RunOptions.MarkovFit instead of a hardcoded fit call. With no
	// parameters the fit horizon defaults to the source's full correlated
	// range (10 s here, ≥ any correlation horizon of these queues).
	ms, err := source.Build("markov", src, o.MarkovFit)
	if err != nil {
		return Table{}, err
	}
	horizon := math.NaN()
	if fh, ok := ms.(interface{ FitHorizon() float64 }); ok {
		horizon = fh.FitHorizon()
	}
	if fq, ok := ms.(source.FitQuality); ok && o.Solver.Recorder != nil {
		o.Solver.Recorder.Set(obs.MetricSourceFitMaxError, fq.FitMaxError())
	}
	t := Table{Header: []string{"buffer_s", "loss_pareto", "loss_markov", "ratio", "fit_horizon_s"}}
	buffers := []float64{0.1, 0.5, 2}
	if o.Quick {
		buffers = []float64{0.1, 0.5}
	}
	for _, b := range buffers {
		if err := ctx.Err(); err != nil {
			return t, err // completed rows survive the interruption
		}
		q, err := solver.NewQueueNormalized(src, 0.8, b)
		if err != nil {
			return Table{}, err
		}
		orig, err := solver.SolveContext(ctx, q, o.solverConfig())
		if err != nil {
			return Table{}, err
		}
		// Same service rate and buffer, Markovian epoch law.
		mk, err := solver.NewModelFromSource(ms, q.ServiceRate, q.Buffer)
		if err != nil {
			return Table{}, err
		}
		alt, err := solver.SolveModelContext(ctx, mk, o.solverConfig())
		if err != nil {
			return Table{}, err
		}
		ratio := math.NaN()
		if orig.Loss > 0 {
			ratio = alt.Loss / orig.Loss
		}
		t.Add(f(b), f(orig.Loss), f(alt.Loss), f(ratio), f(horizon))
	}
	return t, nil
}

func runARQFEC(ctx context.Context, o RunOptions) (Table, error) {
	m, iv, err := onoffLossModel()
	if err != nil {
		return Table{}, err
	}
	src := fluidSource(m, iv)
	n := 2_000_000
	if o.Quick {
		n = 200_000
	}
	if err := ctx.Err(); err != nil {
		return Table{}, err
	}
	losses, err := errctl.GenerateLosses(src, n, 0.001, o.rng(15))
	if err != nil {
		return Table{}, err
	}
	pts, err := errctl.CompareAcrossTimescales(losses, []int{1, 10, 100, 1000, 10000},
		errctl.FECParams{BlockLen: 16, MaxRepair: 2}, o.rng(16))
	if err != nil {
		return Table{}, err
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].BlockLen < pts[j].BlockLen })
	t := Table{Header: []string{"corr_block_slots", "fec_residual_rate", "arq_mean_burst", "arq_requests_per_1k"}}
	for _, p := range pts {
		t.Add(strconv.Itoa(p.BlockLen), f(p.FEC.ResidualRate), f(p.ARQ.MeanBurstLen), f(p.ARQ.RequestsPerKP))
	}
	return t, nil
}

func runEq26(ctx context.Context, o RunOptions) (Table, error) {
	tm, err := o.mtv()
	if err != nil {
		return Table{}, err
	}
	src, err := tm.Source(10)
	if err != nil {
		return Table{}, err
	}
	t := Table{Header: []string{"buffer_s", "analytic_horizon_s"}}
	for _, b := range []float64{0.1, 0.3, 1, 3} {
		if err := ctx.Err(); err != nil {
			return t, err
		}
		q, err := solver.NewQueueNormalized(src, 0.8, b)
		if err != nil {
			return Table{}, err
		}
		ch, err := horizon.Analytic(q.Model(), 0.05)
		if err != nil {
			return Table{}, err
		}
		t.Add(f(b), f(ch))
	}
	return t, nil
}

// synthQuick builds a small lognormal-marginal synthetic trace for Quick
// runs.
func synthQuick(name string, h, mean, cov, binWidth float64, rng *rand.Rand) (traces.Trace, error) {
	return traces.Synthesize(traces.Config{
		Name:     name,
		Hurst:    h,
		Bins:     1 << 13,
		BinWidth: binWidth,
		Quantile: traces.LognormalQuantile(mean, cov),
	}, rng)
}

// shuffleSeries externally shuffles a series with the given block length
// in bins.
func shuffleSeries(xs []float64, blockBins int, rng *rand.Rand) ([]float64, error) {
	return shuffle.External(xs, blockBins, rng)
}

// onoffLossModel is the bursty loss-intensity source used by the ARQ/FEC
// experiment: mostly near-lossless with occasional intense loss episodes,
// correlated up to a 5 s cutoff.
func onoffLossModel() (dist.Marginal, dist.TruncatedPareto, error) {
	m, err := dist.NewMarginal([]float64{0.001, 0.6}, []float64{0.9, 0.1})
	if err != nil {
		return dist.Marginal{}, dist.TruncatedPareto{}, err
	}
	return m, dist.TruncatedPareto{Theta: 0.02, Alpha: 1.2, Cutoff: 5}, nil
}

// fluidSource wraps a (marginal, interarrival) pair, panicking on the
// impossible invalid case (inputs come from onoffLossModel).
func fluidSource(m dist.Marginal, iv dist.TruncatedPareto) fluid.Source {
	src, err := fluid.New(m, iv)
	if err != nil {
		panic(err)
	}
	return src
}

// runModelFit joins the Fig. 4 model surface and the Fig. 7 shuffle
// surface cell by cell, reporting the prediction ratio — the paper's
// "the loss predicted by the model is very close to that obtained with
// shuffling and simulation" check, quantified.
func runModelFit(ctx context.Context, o RunOptions) (Table, error) {
	tm, err := o.mtv()
	if err != nil {
		return Table{}, err
	}
	buffers, cutoffs := o.surfaceGrids()
	model, err := LossVsBufferAndCutoff(ctx, tm, 0.8, buffers, cutoffs, o.sweepConfig("modelfit"))
	if err != nil {
		return Table{}, err
	}
	shufflePts, err := ShuffleLossSurface(ctx, tm.Trace, 0.8, buffers, cutoffs, o.rng(99), o.sweepConfig("modelfit").Sub("sim"))
	if err != nil {
		return Table{}, err
	}
	simLoss := map[[2]float64]float64{}
	for _, p := range shufflePts {
		simLoss[[2]float64{p.NormalizedBuffer, p.BlockLen}] = p.Loss
	}
	t := Table{Header: []string{"buffer_s", "cutoff_s", "loss_model", "loss_sim", "ratio"}}
	for _, p := range model {
		s, ok := simLoss[[2]float64{p.NormalizedBuffer, p.Cutoff}]
		if !ok {
			continue
		}
		ratio := math.NaN()
		if s > 0 && p.Loss > 0 {
			ratio = p.Loss / s
		}
		t.Add(f(p.NormalizedBuffer), f(p.Cutoff), f(p.Loss), f(s), f(ratio))
	}
	return t, nil
}

// runDelay extends the loss-centric analysis to delay: the occupancy
// distribution the solver already brackets yields waiting-time quantiles
// (delay = occupancy / service rate). Like the loss rate, the delay
// quantiles saturate once the cutoff lag passes the correlation horizon —
// the horizon is a property of the system, not of the metric chosen.
func runDelay(ctx context.Context, o RunOptions) (Table, error) {
	tm, err := o.mtv()
	if err != nil {
		return Table{}, err
	}
	var cutoffs []float64
	if o.Quick {
		cutoffs = []float64{0.1, 1, 10, math.Inf(1)}
	} else {
		cutoffs = append(numerics.Logspace(0.05, 100, 8), math.Inf(1))
	}
	t := Table{Header: []string{"cutoff_s", "delay_p50_s", "delay_p95_s", "delay_p99_s", "loss", "degraded"}}
	for _, tc := range cutoffs {
		if err := ctx.Err(); err != nil {
			return t, err // completed rows survive the interruption
		}
		src, err := tm.Source(tc)
		if err != nil {
			return Table{}, err
		}
		q, err := solver.NewQueueNormalized(src, 0.8, 1.0)
		if err != nil {
			return Table{}, err
		}
		res, err := solver.SolveContext(ctx, q, o.solverConfig())
		if err != nil {
			return Table{}, err
		}
		row := []string{f(tc)}
		for _, u := range []float64{0.5, 0.95, 0.99} {
			lo, hi := res.OccupancyQuantile(u)
			// Report the bracket midpoint as seconds of delay.
			row = append(row, f((lo+hi)/2/q.ServiceRate))
		}
		row = append(row, f(res.Loss), deg(res.Degraded))
		t.Add(row...)
	}
	return t, nil
}
