package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"lrd/internal/faultinject"
	"lrd/internal/journal"
	"lrd/internal/obs"
)

// LeaseClaimer is the coordination interface lease-aware cell stores add
// on top of CellStore. The sweep engine consults it before computing a
// cell: Acquire either hands the caller an exclusive lease on the cell
// (acquired true — compute it, then Store to complete or Release to give
// it back) or blocks until another worker completes the cell and returns
// its value (acquired false — adopt it). This is what makes N independent
// worker processes sharing one journal converge on exactly one computation
// per cell while every worker still ends up holding the full result table.
type LeaseClaimer interface {
	// Acquire returns either the cell's completed value (acquired false) or
	// an exclusive lease on it (acquired true). It blocks while another
	// live worker holds the lease, and takes over — with a higher fencing
	// epoch — when a holder's lease expires unrenewed.
	Acquire(ctx context.Context, key string) (value json.RawMessage, acquired bool, err error)
	// Release gives back a lease acquired but not completed (the cell's
	// outcome was transient and must be recomputable). Releasing a lease
	// that is not held is a no-op.
	Release(key string) error
}

// LeaseStoreOptions configures OpenLeaseStore.
type LeaseStoreOptions struct {
	// Worker identifies this process in the shared journal. Required, and
	// must differ between the workers sharing a journal — two workers with
	// one id would treat each other's claims as their own.
	Worker string
	// TTL is the lease duration. A worker that neither completes, renews,
	// nor releases a lease within TTL is presumed dead and its cell is
	// re-leased by whoever gets there first. Required (> 0); it must
	// comfortably exceed both the heartbeat interval (TTL/3) and any
	// wall-clock skew between workers sharing the journal.
	TTL time.Duration
	// Poll is the interval at which a worker blocked on another worker's
	// lease re-reads the journal. Defaults to TTL/4 capped at 250ms.
	Poll time.Duration
	// Recorder receives lease telemetry. Nil disables it.
	Recorder obs.Recorder
	// Warn receives human-readable warnings (corrupt journal lines, failed
	// renewals). Nil silences them.
	Warn io.Writer
}

type leaseDone struct {
	value json.RawMessage
	epoch int64
}

type leaseClaim struct {
	worker   string
	epoch    int64
	deadline int64 // UnixNano
}

// LeaseStore is the distributed CellStore: an append-only journal
// (internal/journal) shared by N coordinator-free worker processes, used
// both as the durability layer and as the work queue. Ownership of a cell
// is a lease — a claimed record naming the worker, a fencing epoch, and a
// wall-clock deadline — published by appending to the journal and observed
// by every worker tail-reading it (journal.ReadFrom). The protocol:
//
//   - Claim: append a claimed record at epoch = 1 + the highest epoch ever
//     seen for the cell, then re-read the journal. The first claim in file
//     order at the winning epoch holds the lease; O_APPEND makes the file
//     order a total order all workers agree on, so no coordinator is
//     needed to break ties.
//   - Renew: a heartbeat goroutine (StartHeartbeat) re-appends each held
//     claim with an extended deadline every TTL/3. Deadlines only ever
//     move forward.
//   - Steal: a claim whose deadline has passed is presumed dead; the next
//     claimant takes the cell over at a higher epoch.
//   - Fence: completions carry the epoch of the lease they were computed
//     under, and on conflicting completions the highest epoch wins
//     regardless of append order (journal.Completed). A zombie — a worker
//     that stalled, lost its lease, and finished anyway — appends a
//     completion with a visibly stale epoch that loses every fold, so it
//     can never overwrite the newer holder's result.
//
// LeaseStore implements CellStore and LeaseClaimer; it is safe for
// concurrent use by the sweep worker pool plus the heartbeat goroutine.
type LeaseStore struct {
	path   string
	worker string
	ttl    time.Duration
	poll   time.Duration
	rec    obs.Recorder
	warn   io.Writer
	now    func() time.Time // injectable clock for tests

	w *journal.Writer

	mu     sync.Mutex
	offset int64                 // journal bytes folded so far
	done   map[string]leaseDone  // winning completion per cell
	claims map[string]leaseClaim // live claim per cell
	epochs map[string]int64      // highest epoch ever seen per cell
	held   map[string]int64      // leases this worker holds -> epoch
}

// OpenLeaseStore opens the shared work journal at path and folds its
// current contents. The journal is always opened in resume mode: it is
// shared state, and truncating it out from under the other workers would
// destroy their claims and results — callers wanting a fresh sweep delete
// the file instead.
func OpenLeaseStore(path string, opts LeaseStoreOptions) (*LeaseStore, error) {
	if opts.Worker == "" {
		return nil, fmt.Errorf("core: lease store requires a non-empty worker id")
	}
	if opts.TTL <= 0 {
		return nil, fmt.Errorf("core: lease TTL must be positive, got %v", opts.TTL)
	}
	poll := opts.Poll
	if poll <= 0 {
		poll = opts.TTL / 4
		if poll > 250*time.Millisecond {
			poll = 250 * time.Millisecond
		}
		if poll <= 0 {
			poll = time.Millisecond
		}
	}
	s := &LeaseStore{
		path:   path,
		worker: opts.Worker,
		ttl:    opts.TTL,
		poll:   poll,
		rec:    opts.Recorder,
		warn:   opts.Warn,
		now:    time.Now,
		done:   map[string]leaseDone{},
		claims: map[string]leaseClaim{},
		epochs: map[string]int64{},
		held:   map[string]int64{},
	}
	w, err := journal.Open(path, true)
	if err != nil {
		return nil, err
	}
	s.w = w
	// Initial fold via LoadAndQuarantine rather than the tailing reader:
	// opening is the once-per-process moment to preserve damaged lines in
	// the .quarantine sidecar and classify them (every tailer re-reporting
	// the same evidence would only duplicate it). Open(resume) above has
	// already newline-terminated any torn tail, so stats.NextOffset is a
	// line boundary the incremental ReadFrom tail can continue from.
	recs, stats, err := journal.LoadAndQuarantine(path)
	if err != nil {
		w.Close()
		return nil, err
	}
	warnCorrupt(path, stats, s.rec, s.warn)
	s.mu.Lock()
	s.offset = stats.NextOffset
	for _, rec := range recs {
		s.foldLocked(rec)
	}
	s.mu.Unlock()
	return s, nil
}

// refreshLocked folds the journal records appended (by anyone, this worker
// included) since the last refresh. Callers hold s.mu.
func (s *LeaseStore) refreshLocked() error {
	recs, tail, next, err := journal.ReadFrom(s.path, s.offset)
	if err != nil {
		return err
	}
	s.offset = next
	if tail.Total() > 0 {
		// A complete-but-undecodable line in a live shared journal is
		// interior corruption: appends never tear (single O_APPEND writes),
		// so this is disk damage or a foreign writer. CRC mismatches are the
		// same damage caught at the content layer.
		if s.warn != nil {
			fmt.Fprintf(s.warn, "journal: skipped %d damaged line(s) tailing %s (%d undecodable, %d CRC-mismatched) — not a crash artifact, check the disk or concurrent writers\n",
				tail.Total(), s.path, tail.Corrupt, tail.CrcMismatch)
		}
		if s.rec != nil {
			if tail.Corrupt > 0 {
				s.rec.Add(obs.MetricCoreJournalCorrupt, float64(tail.Corrupt))
				s.rec.Add(obs.MetricCoreJournalCorruptInterior, float64(tail.Corrupt))
			}
			if tail.CrcMismatch > 0 {
				s.rec.Add(obs.MetricCoreJournalCrcMismatch, float64(tail.CrcMismatch))
			}
		}
	}
	for _, rec := range recs {
		s.foldLocked(rec)
	}
	return nil
}

// foldLocked applies one journal record to the in-memory lease state.
// These rules are the shared-queue semantics; every worker folds the same
// records in the same file order, so all reach the same state.
func (s *LeaseStore) foldLocked(rec journal.Record) {
	if rec.Epoch > s.epochs[rec.Key] {
		s.epochs[rec.Key] = rec.Epoch
		if s.rec != nil {
			s.rec.Set(obs.MetricCoreLeaseEpoch, float64(rec.Epoch))
		}
	}
	switch rec.Status {
	case journal.StatusOK:
		if cur, ok := s.done[rec.Key]; !ok || rec.Epoch >= cur.epoch {
			s.done[rec.Key] = leaseDone{value: rec.Value, epoch: rec.Epoch}
			// The completion consumes any claim it supersedes.
			if c, ok := s.claims[rec.Key]; ok && rec.Epoch >= c.epoch {
				delete(s.claims, rec.Key)
			}
		}
		// Else: a fenced zombie write — counted by whoever observes it.
		// (Our own fenced completions are counted at Store time.)
	case journal.StatusFail:
		if cur, ok := s.done[rec.Key]; ok && rec.Epoch >= cur.epoch {
			delete(s.done, rec.Key)
		}
	case journal.StatusClaimed:
		cur, ok := s.claims[rec.Key]
		switch {
		case rec.Deadline <= 0:
			// Release: only the holder at the claim's own epoch may release.
			if ok && cur.worker == rec.Worker && cur.epoch == rec.Epoch {
				delete(s.claims, rec.Key)
			}
		case !ok || rec.Epoch > cur.epoch:
			s.claims[rec.Key] = leaseClaim{worker: rec.Worker, epoch: rec.Epoch, deadline: rec.Deadline}
		case rec.Epoch == cur.epoch && rec.Worker == cur.worker:
			// Renewal: deadlines only ever extend.
			if rec.Deadline > cur.deadline {
				cur.deadline = rec.Deadline
				s.claims[rec.Key] = cur
			}
			// Equal-epoch claims from a different worker lose by file order:
			// the fold keeps the first, ignores the rest.
		}
	}
}

// Acquire implements LeaseClaimer. It loops: adopt the cell if some worker
// completed it, claim it if it is unclaimed / expired / released, wait
// (polling the journal) while a live worker holds it.
func (s *LeaseStore) Acquire(ctx context.Context, key string) (json.RawMessage, bool, error) {
	start := s.now()
	waited := false
	defer func() {
		if waited && s.rec != nil {
			s.rec.Observe(obs.MetricCoreLeaseWaitSecs, s.now().Sub(start).Seconds())
		}
	}()
	for {
		v, acquired, decided, err := s.tryAcquire(key)
		if err != nil {
			return nil, false, err
		}
		if decided {
			return v, acquired, nil
		}
		// Another live worker holds the cell: wait and re-read.
		waited = true
		if err := sleepCtx(ctx, s.poll); err != nil {
			return nil, false, err
		}
	}
}

// tryAcquire makes one pass at the cell: decided reports whether the cell
// reached an outcome (adopted or leased); !decided means a live claim by
// another worker blocks it.
func (s *LeaseStore) tryAcquire(key string) (value json.RawMessage, acquired, decided bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.refreshLocked(); err != nil {
		return nil, false, false, err
	}
	if d, ok := s.done[key]; ok {
		return d.value, false, true, nil
	}
	if _, ok := s.held[key]; ok {
		// Re-entrant acquire of a lease this worker already holds.
		return nil, true, true, nil
	}
	now := s.now().UnixNano()
	c, claimed := s.claims[key]
	if claimed && c.deadline > now {
		return nil, false, false, nil // live claim by another worker
	}
	// Unclaimed, expired, or released: claim at a fresh fencing epoch.
	epoch := s.epochs[key] + 1
	deadline := s.now().Add(s.ttl).UnixNano()
	if _, err := s.w.Append(journal.Record{
		Key: key, Status: journal.StatusClaimed,
		Worker: s.worker, Epoch: epoch, Deadline: deadline,
	}); err != nil {
		return nil, false, false, err
	}
	// Re-read to resolve the race: the first claim in file order at the
	// winning epoch holds the lease.
	if err := s.refreshLocked(); err != nil {
		return nil, false, false, err
	}
	if d, ok := s.done[key]; ok {
		// A completion slipped in between our read and our claim.
		return d.value, false, true, nil
	}
	if w, ok := s.claims[key]; ok && w.worker == s.worker && w.epoch == epoch {
		s.held[key] = epoch
		if s.rec != nil {
			s.rec.Add(obs.MetricCoreLeasesClaimed, 1)
			if claimed {
				s.rec.Add(obs.MetricCoreLeasesStolen, 1)
			}
			s.rec.Set(obs.MetricCoreLeasesHeld, float64(len(s.held)))
		}
		return nil, true, true, nil
	}
	// Lost the claim race to another worker's append.
	if s.rec != nil {
		s.rec.Add(obs.MetricCoreLeasesLost, 1)
	}
	return nil, false, false, nil
}

// Release implements LeaseClaimer: it gives back a held lease by
// appending a claimed record with Deadline 0 at the lease's epoch, letting
// other workers take the cell over immediately instead of waiting out the
// TTL.
func (s *LeaseStore) Release(key string) error {
	s.mu.Lock()
	epoch, ok := s.held[key]
	if ok {
		delete(s.held, key)
		if s.rec != nil {
			s.rec.Add(obs.MetricCoreLeasesReleased, 1)
			s.rec.Set(obs.MetricCoreLeasesHeld, float64(len(s.held)))
		}
	}
	s.mu.Unlock()
	if !ok {
		return nil
	}
	_, err := s.w.Append(journal.Record{
		Key: key, Status: journal.StatusClaimed,
		Worker: s.worker, Epoch: epoch, Deadline: 0,
	})
	return err
}

// Lookup implements CellStore from the folded journal. Refresh errors
// surface as a miss: recomputing the cell is always safe.
func (s *LeaseStore) Lookup(key string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.refreshLocked(); err != nil {
		return nil, false
	}
	d, ok := s.done[key]
	return d.value, ok
}

// Store implements CellStore: it completes the cell under the lease this
// worker holds (epoch-stamping the record so a stale holder's write can
// never beat a newer one) and consumes the lease.
func (s *LeaseStore) Store(key string, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("core: encoding cell %q: %w", key, err)
	}
	s.mu.Lock()
	epoch := s.held[key] // zero when storing without a lease
	delete(s.held, key)
	if s.rec != nil {
		s.rec.Set(obs.MetricCoreLeasesHeld, float64(len(s.held)))
	}
	s.mu.Unlock()
	n, err := s.w.Append(journal.Record{
		Key: key, Status: journal.StatusOK, Value: raw,
		Worker: s.worker, Epoch: epoch,
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	// Fold everything appended since our last read (our own record
	// included) before judging the conflict: a zombie must see the thief's
	// newer completion, not just its own stale state. A refresh error here
	// is tolerable — the append above already made the record durable and
	// the next refresh re-folds from the same offset.
	_ = s.refreshLocked()
	if cur, ok := s.done[key]; !ok || epoch >= cur.epoch {
		s.done[key] = leaseDone{value: raw, epoch: epoch}
		if c, ok := s.claims[key]; ok && epoch >= c.epoch {
			delete(s.claims, key)
		}
	} else if s.rec != nil {
		// Our lease was stolen mid-compute and the thief finished first:
		// our write just lost the epoch fold. Harmless — fencing working
		// as designed — but worth counting.
		s.rec.Add(obs.MetricCoreLeasesFenced, 1)
	}
	if epoch > s.epochs[key] {
		s.epochs[key] = epoch
	}
	s.mu.Unlock()
	if s.rec != nil {
		s.rec.Add(obs.MetricCoreJournalBytes, float64(n))
	}
	return nil
}

// Fail implements CellStore. The record is informational (resumed runs
// recompute failed cells) and keeps the lease: the retry loop re-attempts
// the cell under the same lease.
func (s *LeaseStore) Fail(key string, attempt int, err error) error {
	s.mu.Lock()
	epoch := s.held[key]
	s.mu.Unlock()
	n, aerr := s.w.Append(journal.Record{
		Key: key, Status: journal.StatusFail, Attempt: attempt, Error: err.Error(),
		Worker: s.worker, Epoch: epoch,
	})
	if aerr != nil {
		return aerr
	}
	if s.rec != nil {
		s.rec.Add(obs.MetricCoreJournalBytes, float64(n))
	}
	return nil
}

// Completed returns the number of completed cells currently folded.
func (s *LeaseStore) Completed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.refreshLocked() // best effort; a refresh error just undercounts
	return len(s.done)
}

// Range calls fn for every completed cell currently folded, stopping early
// when fn returns false. Iteration order is unspecified; fn must not call
// back into the store.
func (s *LeaseStore) Range(fn func(key string, value json.RawMessage) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, d := range s.done {
		if !fn(k, d.value) {
			return
		}
	}
}

// StartHeartbeat starts the lease-renewal goroutine: every TTL/3 it
// re-appends each held claim with an extended deadline, so live workers
// keep their cells while dead workers' leases expire. The returned stop
// function halts it and waits for it to exit; stopping (or canceling ctx)
// without releasing is how a crashing worker's leases end up expiring.
func (s *LeaseStore) StartHeartbeat(ctx context.Context) (stop func()) {
	interval := s.ttl / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.renewHeld()
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// renewHeld appends a renewal for every lease this worker still holds.
// The faultinject hook simulates a stalled worker: an injected error
// silently skips the round, so the worker's leases drift toward expiry
// exactly as a wedged process's would.
func (s *LeaseStore) renewHeld() {
	if err := faultinject.ApplyErr(faultinject.LeaseRenew); err != nil {
		return
	}
	s.mu.Lock()
	if err := s.refreshLocked(); err != nil {
		s.mu.Unlock()
		return
	}
	type renewal struct {
		key   string
		epoch int64
	}
	var renew []renewal
	for key, epoch := range s.held {
		if c, ok := s.claims[key]; !ok || c.worker != s.worker || c.epoch != epoch {
			// The lease was stolen out from under us (we stalled past the
			// TTL). Stop renewing; if the compute still in flight completes,
			// its stale-epoch write will be fenced out.
			delete(s.held, key)
			if s.rec != nil {
				s.rec.Add(obs.MetricCoreLeasesFenced, 1)
				s.rec.Set(obs.MetricCoreLeasesHeld, float64(len(s.held)))
			}
			if s.warn != nil {
				fmt.Fprintf(s.warn, "lease: worker %s lost its lease on %q (stalled past the TTL); its result will be fenced\n", s.worker, key)
			}
			continue
		}
		renew = append(renew, renewal{key, epoch})
	}
	deadline := s.now().Add(s.ttl).UnixNano()
	s.mu.Unlock()
	for _, r := range renew {
		if _, err := s.w.Append(journal.Record{
			Key: r.key, Status: journal.StatusClaimed,
			Worker: s.worker, Epoch: r.epoch, Deadline: deadline,
		}); err != nil {
			if s.warn != nil {
				fmt.Fprintf(s.warn, "lease: renewing %q: %v\n", r.key, err)
			}
			return // writer is poisoned; further appends fail the same way
		}
		if s.rec != nil {
			s.rec.Add(obs.MetricCoreLeasesRenewed, 1)
		}
	}
}

// Close releases every still-held lease (best effort — if this fails the
// leases simply expire) and closes the journal writer.
func (s *LeaseStore) Close() error {
	s.mu.Lock()
	keys := make([]string, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	for _, k := range keys {
		s.Release(k)
	}
	return s.w.Close()
}
