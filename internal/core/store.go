package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"time"

	"lrd/internal/fluid"
	"lrd/internal/journal"
	"lrd/internal/obs"
	"lrd/internal/solver"
	"lrd/internal/source"
)

// CellStore persists per-cell sweep outcomes and replays them on resume.
// Keys are opaque strings composed by the sweep layer from everything that
// determines a cell's result (experiment id, seed, solver-config hash, and
// grid coordinates); values are the cell's JSON-serialized result.
//
// Implementations must be safe for concurrent use: sweep workers store and
// look up cells in parallel.
type CellStore interface {
	// Lookup returns the serialized result of a previously completed cell.
	Lookup(key string) (json.RawMessage, bool)
	// Store durably records a completed cell. An error fails the sweep —
	// silently losing durability would defeat the journal's purpose.
	Store(key string, value any) error
	// Fail records a failed attempt at a cell (informational: a resumed
	// sweep recomputes failed cells).
	Fail(key string, attempt int, err error) error
}

// JournalStore is the CellStore backed by an append-only JSONL journal
// (internal/journal): every Store fsyncs one line, and opening with resume
// replays the journal so completed cells are served from memory.
type JournalStore struct {
	w   *journal.Writer
	rec obs.Recorder

	mu     sync.RWMutex
	cached map[string]json.RawMessage
}

// JournalStoreOptions configures OpenJournalStore.
type JournalStoreOptions struct {
	// Resume replays the existing journal (completed cells will be skipped)
	// instead of truncating it.
	Resume bool
	// Recorder receives journal telemetry: cells resumed, bytes appended,
	// corrupt lines skipped. Nil disables it.
	Recorder obs.Recorder
	// Warn receives human-readable warnings (corrupt journal lines). Nil
	// silences them.
	Warn io.Writer
	// CompactOverBytes, when > 0 and Resume is set, compacts the journal
	// (journal.Compact: one record per key, atomic rewrite) before replay
	// if it exceeds this many bytes, bounding the growth of a long-lived
	// single-process journal. Never enable it for a journal shared by a
	// live fleet — compaction must not race appenders holding the old
	// inode open.
	CompactOverBytes int64
}

// OpenJournalStore opens (or creates) the cell journal at path. With
// opts.Resume the journal's intact records are loaded — corrupt lines,
// e.g. a trailing line truncated by a crash, are skipped with a warning
// and their cells recomputed — and new records append; otherwise the
// journal starts fresh.
func OpenJournalStore(path string, opts JournalStoreOptions) (*JournalStore, error) {
	s := &JournalStore{rec: opts.Recorder, cached: map[string]json.RawMessage{}}
	if opts.Resume {
		if opts.CompactOverBytes > 0 {
			if fi, err := os.Stat(path); err == nil && fi.Size() > opts.CompactOverBytes {
				cs, err := journal.Compact(path)
				if err != nil {
					return nil, err
				}
				if s.rec != nil {
					s.rec.Add(obs.MetricCoreJournalCompactions, 1)
					s.rec.Add(obs.MetricCoreJournalCompactedBytes, float64(cs.Reclaimed()))
				}
				if opts.Warn != nil {
					fmt.Fprintf(opts.Warn, "journal: compacted %s: %d → %d records, %d → %d bytes\n",
						path, cs.RecordsIn, cs.RecordsOut, cs.BytesBefore, cs.BytesAfter)
				}
			}
		}
		recs, stats, err := journal.LoadAndQuarantine(path)
		if err != nil {
			return nil, err
		}
		warnCorrupt(path, stats, s.rec, opts.Warn)
		s.cached = journal.Completed(recs)
	}
	w, err := journal.Open(path, opts.Resume)
	if err != nil {
		return nil, err
	}
	s.w = w
	return s, nil
}

// warnCorrupt reports a replay's skipped lines: both kinds are recoverable
// (the cells recompute), but interior corruption — which no clean crash
// produces — is called out distinctly from the tolerated torn trailing
// line, and each kind feeds its own counter alongside the combined one.
func warnCorrupt(path string, stats journal.LoadStats, rec obs.Recorder, warn io.Writer) {
	if stats.Corrupt() == 0 && stats.CrcMismatch == 0 {
		return
	}
	if warn != nil {
		if stats.Corrupt() > 0 {
			fmt.Fprintf(warn, "journal: skipped %d corrupt line(s) in %s (%d interior, %d trailing); their cells will be recomputed\n",
				stats.Corrupt(), path, stats.CorruptInterior, stats.CorruptTrailing)
		}
		if stats.CrcMismatch > 0 {
			fmt.Fprintf(warn, "journal: %d record(s) in %s failed their CRC32C check and will not be trusted; their cells will be recomputed\n",
				stats.CrcMismatch, path)
		}
		if stats.CorruptInterior > 0 || stats.CrcMismatch > 0 {
			fmt.Fprintf(warn, "journal: interior corruption in %s is not a crash artifact — check the disk or concurrent writers\n", path)
		}
		if stats.Quarantined > 0 {
			fmt.Fprintf(warn, "journal: preserved %d damaged line(s) in %s%s\n",
				stats.Quarantined, path, journal.QuarantineSuffix)
		}
	}
	if rec != nil {
		rec.Add(obs.MetricCoreJournalCorrupt, float64(stats.Corrupt()))
		if stats.CorruptInterior > 0 {
			rec.Add(obs.MetricCoreJournalCorruptInterior, float64(stats.CorruptInterior))
		}
		if stats.CorruptTrailing > 0 {
			rec.Add(obs.MetricCoreJournalCorruptTrailing, float64(stats.CorruptTrailing))
		}
		if stats.CrcMismatch > 0 {
			rec.Add(obs.MetricCoreJournalCrcMismatch, float64(stats.CrcMismatch))
		}
		if stats.Quarantined > 0 {
			rec.Add(obs.MetricCoreJournalQuarantined, float64(stats.Quarantined))
		}
	}
}

// Lookup implements CellStore from the replayed journal.
func (s *JournalStore) Lookup(key string) (json.RawMessage, bool) {
	s.mu.RLock()
	v, ok := s.cached[key]
	s.mu.RUnlock()
	return v, ok
}

// Completed returns the number of cells the journal replay recovered.
func (s *JournalStore) Completed() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.cached)
}

// Store implements CellStore: one fsync'd journal append per cell.
func (s *JournalStore) Store(key string, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("core: encoding cell %q: %w", key, err)
	}
	n, err := s.w.Append(journal.Record{Key: key, Status: journal.StatusOK, Value: raw})
	if err != nil {
		return err
	}
	if s.rec != nil {
		s.rec.Add(obs.MetricCoreJournalBytes, float64(n))
	}
	s.mu.Lock()
	s.cached[key] = raw
	s.mu.Unlock()
	return nil
}

// Range calls fn for every completed cell the store currently holds
// (journal-replayed and stored this run alike), stopping early when fn
// returns false. Iteration order is unspecified. The serving layer uses it
// to warm its in-memory solve cache from a persisted journal on restart.
// fn must not call back into the store.
func (s *JournalStore) Range(fn func(key string, value json.RawMessage) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, v := range s.cached {
		if !fn(k, v) {
			return
		}
	}
}

// Fail implements CellStore.
func (s *JournalStore) Fail(key string, attempt int, err error) error {
	n, aerr := s.w.Append(journal.Record{Key: key, Status: journal.StatusFail, Attempt: attempt, Error: err.Error()})
	if aerr != nil {
		return aerr
	}
	if s.rec != nil {
		s.rec.Add(obs.MetricCoreJournalBytes, float64(n))
	}
	return nil
}

// Close closes the underlying journal.
func (s *JournalStore) Close() error { return s.w.Close() }

// RetryPolicy bounds the re-execution of transiently failed or degraded
// sweep cells: a cell whose solve tripped the numeric watchdog
// (solver.RetryableError) or degraded for a retryable reason
// (DegradeReason.Retryable — deadline, cancellation) is re-run up to
// MaxAttempts times with exponential backoff and jitter between attempts.
// Terminal outcomes — iteration-budget exhaustion, numeric stalls,
// malformed inputs — are never retried. The zero value disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per cell (first try
	// included). Values below 1 mean a single attempt, i.e. no retry.
	MaxAttempts int
	// Backoff is the base delay before the second attempt; attempt k waits
	// Backoff·2^(k-2), jittered uniformly over [0.5×, 1.5×]. Default 100 ms.
	Backoff time.Duration
	// MaxBackoff caps the jittered delay. Default 5 s.
	MaxBackoff time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the jittered delay to wait after a failed attempt
// (attempt counts from 1). Jitter decorrelates the retries of cells that
// failed together — e.g. a whole worker pool degraded by one slow machine
// moment — so they do not re-land in lockstep.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	limit := p.MaxBackoff
	if limit <= 0 {
		limit = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= limit || d <= 0 { // overflow guard
			d = limit
			break
		}
	}
	if d > limit {
		d = limit
	}
	// Uniform jitter in [0.5·d, 1.5·d]. Timing-only randomness: results are
	// unaffected, so sweep determinism is preserved.
	j := d/2 + time.Duration(rand.Int63n(int64(d)+1))
	if j > limit {
		j = limit
	}
	return j
}

// sleepCtx waits d or until ctx is done, returning the context error when
// interrupted.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SweepConfig bundles what every sweep needs beyond its grid: the solver
// configuration, the traffic model the sweep's cells are realized as, and
// the optional durability layer (cell store, retry policy, key namespace).
type SweepConfig struct {
	// Solver is the per-cell solver configuration.
	Solver solver.Config
	// Model selects the registered traffic model every cell's reference
	// fluid source is transformed into before solving (see internal/source).
	// The zero spec is the fluid identity: the paper's model, bit-identical
	// to the pre-registry code path.
	Model source.Spec
	// Store, when non-nil, is consulted before each cell is solved (cells
	// already journaled are skipped) and receives each completed cell.
	Store CellStore
	// Retry re-runs transiently failed or degraded cells (see RetryPolicy).
	Retry RetryPolicy
	// Prefix namespaces this sweep's journal keys. It must capture every
	// input that determines cell results but is not part of the per-cell
	// key — experiment id, trace/seed identity, solver-config hash, and
	// model spec (see RunOptions.sweepConfig), so a journal written under
	// one model is never replayed into a run with another. Irrelevant when
	// Store is nil.
	Prefix string
	// Workers caps the in-process worker pool. Zero or negative means one
	// worker per CPU. Distributed runs (several processes sharing one
	// journal, see LeaseStore) set it so the fleet's total matches the
	// machine instead of oversubscribing it NumCPU-fold.
	Workers int
	// Remote, when non-nil, delegates each cell's realize+solve to a remote
	// fleet (lrdsweep -fleet wires it to lrdserve replicas through the
	// resilient client) instead of the in-process solver. Journaling,
	// leasing, and retries still run locally — only the numeric work moves.
	Remote RemoteSolveFunc
	// Batch enables exact batch mode: the sweep's cells share one
	// solver.Arena (FFT workspaces, step buffers, refinement tables) and
	// buffer×cutoff sweeps realize each cutoff column's source once. Every
	// cell still starts cold, so results — and therefore TSVs and journals —
	// are bit-identical to the unbatched path, and the journal prefix is
	// unchanged: batched and unbatched runs resume each other freely.
	// Ignored for cells delegated to a remote fleet.
	Batch bool
	// WarmStarts additionally chains cross-cell warm starts along the
	// buffer axis where a sweep supports it (LossVsBufferAndCutoff): each
	// cell's bound iteration is seeded from its smaller-buffer neighbor's
	// final occupancy vectors. Bounds stay provably valid (see solver.Seed)
	// but land elsewhere inside the bracket than a cold solve's, so warm
	// sweeps journal under a "warm=1|"-extended prefix and never share
	// journals with exact runs. Implies Batch; ignored for remote cells.
	WarmStarts bool
}

// RemoteCell is one sweep cell handed to a RemoteSolveFunc: the reference
// fluid source plus the model spec and solver configuration the remote end
// must realize and solve it under — everything a SolveRequest needs.
type RemoteCell struct {
	Ref              fluid.Source
	Model            source.Spec
	Util             float64
	NormalizedBuffer float64
	Config           solver.Config
}

// RemoteSolveFunc computes one cell remotely. The returned Point must be
// populated exactly as solveCell would (reference Hurst/Cutoff coordinates,
// Scale 1, Streams 1) so remote sweeps stay bit-compatible with local ones.
type RemoteSolveFunc func(ctx context.Context, cell RemoteCell) (Point, error)

// Sweep wraps a bare solver configuration into a SweepConfig with no
// durability layer — the zero-migration path for direct library callers.
func Sweep(cfg solver.Config) SweepConfig { return SweepConfig{Solver: cfg} }

// Sub returns a copy whose journal keys are further namespaced by extra,
// for experiments that run the same sweep function more than once (e.g.
// fig9's per-marginal cutoff scans).
func (c SweepConfig) Sub(extra string) SweepConfig {
	c.Prefix += extra + "|"
	return c
}

// ConfigHash returns a short stable hash of the solver-configuration
// fields that influence cell results. Sweep key prefixes include it so a
// journal written under one configuration is never replayed into a run
// with another (the cells would not be comparable). It is solver.ConfigHash
// (the canonical implementation, shared with the serving layer's solve
// cache) re-exported under its historical name; the hash bytes are
// unchanged, so pre-existing journals keep replaying.
func ConfigHash(cfg solver.Config) string { return solver.ConfigHash(cfg) }

// fkey formats a float for use in a journal key: shortest round-trippable
// form, so the same grid value always produces the same key.
func fkey(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
