package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"lrd/internal/obs"
	"lrd/internal/solver"
)

// TestSweepTelemetryConcurrent drives a real sweep with a shared Registry
// so the race detector exercises concurrent counter/gauge/histogram
// updates from every parallelMap worker, then checks the bookkeeping adds
// up: planned == completed + (not started), solves == cells solved.
func TestSweepTelemetryConcurrent(t *testing.T) {
	tm := quickModel(t)
	reg := obs.NewRegistry()
	cfg := fastCfg()
	cfg.Recorder = reg
	var mu sync.Mutex
	var points []solver.TracePoint
	cfg.Trace = func(p solver.TracePoint) {
		mu.Lock()
		points = append(points, p)
		mu.Unlock()
	}
	buffers := []float64{0.05, 0.2}
	cutoffs := []float64{0.5, math.Inf(1)}
	pts, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, Sweep(cfg))
	if err != nil {
		t.Fatal(err)
	}
	cells := float64(len(buffers) * len(cutoffs))
	if got := reg.CounterValue(obs.MetricCoreCellsPlanned); got != cells {
		t.Fatalf("cells planned = %v, want %v", got, cells)
	}
	if got := reg.CounterValue(obs.MetricCoreCellsCompleted); got != cells {
		t.Fatalf("cells completed = %v, want %v", got, cells)
	}
	if got := reg.CounterValue(obs.MetricSolverSolves); got != cells {
		t.Fatalf("solves = %v, want %v", got, cells)
	}
	if len(pts) != int(cells) {
		t.Fatalf("points = %d, want %v", len(pts), cells)
	}

	// The interleaved trace stream must separate cleanly by solve id, and
	// each per-solve stream must keep the Prop. II.1 monotone-bounds shape.
	bySolve := map[uint64][]solver.TracePoint{}
	for _, p := range points {
		bySolve[p.Solve] = append(bySolve[p.Solve], p)
	}
	if len(bySolve) != int(cells) {
		t.Fatalf("distinct solve ids = %d, want %v", len(bySolve), cells)
	}
	for id, ps := range bySolve {
		for i := 1; i < len(ps); i++ {
			if ps[i].Lower < ps[i-1].Lower {
				t.Fatalf("solve %d: lower bound decreased", id)
			}
			if ps[i].Upper > ps[i-1].Upper {
				t.Fatalf("solve %d: upper bound increased", id)
			}
		}
		if !ps[len(ps)-1].Final {
			t.Fatalf("solve %d: stream does not end with a final point", id)
		}
	}
}

// TestParallelMapNilRecorder: the instrumentation must be inert (and not
// panic) when no recorder is attached.
func TestParallelMapNilRecorder(t *testing.T) {
	done, err := parallelMap(context.Background(), nil, 0, 8, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("cell %d not done", i)
		}
	}
}
