// Package core orchestrates the paper's experiments: it binds traces to
// fluid models the way §III describes (50-bin histogram marginal, θ
// calibrated from the mean epoch duration, α from the Hurst parameter) and
// runs the parameter sweeps behind every figure of the evaluation. Each
// experiment function returns plain row data; the cmd/ tools and the bench
// harness format it.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"lrd/internal/dist"
	"lrd/internal/fluid"
	"lrd/internal/lrdest"
	"lrd/internal/obs"
	"lrd/internal/solver"
	"lrd/internal/source"
	"lrd/internal/traces"
)

// HistogramBins is the marginal resolution the paper uses for all
// experiments ("We set the number of bins to 50 in all experiments").
const HistogramBins = 50

// TraceModel bundles a trace with the fitted model ingredients.
type TraceModel struct {
	Trace     traces.Trace
	Marginal  dist.Marginal // 50-bin histogram marginal
	Hurst     float64       // Hurst parameter (measured or imposed)
	MeanEpoch float64       // mean epoch duration in seconds
}

// BuildTraceModel fits the model ingredients to a trace. A positive hurst
// imposes that value (the paper quotes its Whittle/wavelet estimates);
// hurst <= 0 estimates it with the local Whittle estimator.
func BuildTraceModel(tr traces.Trace, hurst float64) (TraceModel, error) {
	if len(tr.Rates) == 0 {
		return TraceModel{}, errors.New("core: empty trace")
	}
	m, err := tr.Marginal(HistogramBins)
	if err != nil {
		return TraceModel{}, err
	}
	epoch, err := tr.MeanEpoch(HistogramBins)
	if err != nil {
		return TraceModel{}, err
	}
	if hurst <= 0 {
		hurst, err = lrdest.LocalWhittle(tr.Rates, 0)
		if err != nil {
			return TraceModel{}, fmt.Errorf("core: estimating Hurst: %w", err)
		}
	}
	return TraceModel{Trace: tr, Marginal: m, Hurst: hurst, MeanEpoch: epoch}, nil
}

// Source builds the cutoff-correlated fluid source for this trace model
// with the given cutoff lag (seconds; math.Inf(1) for no cutoff).
func (tm TraceModel) Source(cutoff float64) (fluid.Source, error) {
	return fluid.FromTraceStats(tm.Marginal, tm.Hurst, tm.MeanEpoch, cutoff)
}

// SourceWithHurst builds a source with an overridden Hurst parameter but θ
// calibrated at the model's nominal Hurst value — the protocol of the
// paper's Figs. 10–11 ("we use the same θ in the entire experiment, by
// matching the average interval length for the nominal Hurst parameter").
func (tm TraceModel) SourceWithHurst(hurst, cutoff float64) (fluid.Source, error) {
	if !(hurst > 0.5 && hurst < 1) {
		return fluid.Source{}, fmt.Errorf("core: Hurst %v outside (0.5, 1)", hurst)
	}
	alphaNominal := dist.AlphaFromHurst(tm.Hurst)
	theta, err := dist.CalibrateTheta(alphaNominal, tm.MeanEpoch)
	if err != nil {
		return fluid.Source{}, err
	}
	return fluid.New(tm.Marginal, dist.TruncatedPareto{
		Theta:  theta,
		Alpha:  dist.AlphaFromHurst(hurst),
		Cutoff: cutoff,
	})
}

// MTVModel synthesizes the MTV stand-in trace and fits its model using the
// paper's quoted H = 0.83.
func MTVModel(seed int64) (TraceModel, error) {
	tr, err := traces.MTV(newRand(seed))
	if err != nil {
		return TraceModel{}, err
	}
	return BuildTraceModel(tr, 0.83)
}

// BellcoreModel synthesizes the Bellcore stand-in trace and fits its model
// using the paper's quoted H = 0.9.
func BellcoreModel(seed int64) (TraceModel, error) {
	tr, err := traces.Bellcore(newRand(seed))
	if err != nil {
		return TraceModel{}, err
	}
	return BuildTraceModel(tr, 0.9)
}

// Point is one cell of a loss surface. Fields that do not vary in a given
// experiment hold that experiment's fixed value.
type Point struct {
	NormalizedBuffer float64 // B/c in seconds
	Cutoff           float64 // Tc in seconds (math.Inf(1) = no cutoff)
	Hurst            float64
	Scale            float64 // marginal scaling factor a
	Streams          int     // number of superposed streams n
	Loss             float64
	Lower, Upper     float64
	Converged        bool
	// Degraded is nonempty when this cell's solve stopped early (deadline,
	// cancellation, or budget exhaustion); the bounds still bracket the
	// true loss.
	Degraded solver.DegradeReason
}

// parallelMap runs f over n indices on a bounded worker pool. It returns a
// per-index completion mask and the first error. When ctx is canceled,
// dispatch stops, in-flight cells finish, and the returned error is
// ctx.Err() — completed indices remain marked done, so callers can emit
// partial, clearly-marked results instead of discarding the sweep.
//
// A non-nil rec receives the sweep telemetry: cells planned/started/
// completed, per-cell wall time, worker-pool size, and accumulated busy
// time (worker utilization = busy seconds / (workers × sweep seconds)).
func parallelMap(ctx context.Context, rec obs.Recorder, workers, n int, f func(i int) error) ([]bool, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if rec != nil {
		rec.Add(obs.MetricCoreCellsPlanned, float64(n))
		rec.Set(obs.MetricCoreWorkers, float64(workers))
		sweepStart := time.Now()
		defer func() {
			rec.Observe(obs.MetricCoreSweepSeconds, time.Since(sweepStart).Seconds())
		}()
	}
	// An internal cancel lets an erroring worker unblock the dispatcher
	// (which would otherwise wait forever on the unbuffered jobs send).
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make([]bool, n)
	jobs := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var cellStart time.Time
				if rec != nil {
					rec.Add(obs.MetricCoreCellsStarted, 1)
					cellStart = time.Now()
				}
				err := f(i)
				if rec != nil {
					d := time.Since(cellStart).Seconds()
					rec.Observe(obs.MetricCoreCellSeconds, d)
					rec.Add(obs.MetricCoreWorkerBusySecond, d)
				}
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					cancel()
					return
				}
				done[i] = true
				if rec != nil {
					rec.Add(obs.MetricCoreCellsCompleted, 1)
				}
			}
		}()
	}
	var ctxErr error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return done, err
	default:
		return done, ctxErr
	}
}

// completedPoints filters a parallelMap output down to the cells that
// actually finished.
func completedPoints(pts []Point, done []bool) []Point {
	out := make([]Point, 0, len(pts))
	for i, p := range pts {
		if done[i] {
			out = append(out, p)
		}
	}
	return out
}

// gridSweep is the durable execution engine under every Point-valued
// sweep: it runs compute over n cells on the parallelMap worker pool,
// consulting cfg.Store to skip cells a previous (interrupted) run already
// journaled and pushing every fresh result through the bounded retry
// policy before journaling it. key(i) must identify cell i within
// cfg.Prefix's namespace.
func gridSweep(ctx context.Context, cfg SweepConfig, n int, key func(int) string, compute func(context.Context, int) (Point, error)) ([]Point, error) {
	out := make([]Point, n)
	done, err := parallelMap(ctx, cfg.Solver.Recorder, cfg.Workers, n, func(i int) error {
		p, err := runCell(ctx, cfg, key(i), func(ctx context.Context) (Point, error) { return compute(ctx, i) })
		if err != nil {
			return err
		}
		out[i] = p
		return nil
	})
	return completedPoints(out, done), err
}

// runCell executes one sweep cell durably:
//
//  1. a cell already in the store (journaled by a previous run under the
//     same key) is returned without recomputation;
//  2. when the store coordinates ownership (LeaseClaimer, i.e. a shared
//     journal with other worker processes on it), the cell is either
//     adopted — another worker completed it while we waited — or computed
//     under an exclusive lease that Store consumes on completion and that
//     is released when the outcome stayed transient;
//  3. a computed cell that is final — clean, or degraded for a terminal
//     reason that a re-run would deterministically reproduce — is
//     journaled and returned;
//  4. a transient outcome — a retryable degradation (deadline,
//     cancellation) or a retryable error (numeric-watchdog trip) — is
//     re-attempted under cfg.Retry with exponential backoff, and is never
//     journaled as complete, so a resumed sweep recomputes it.
//
// Store write failures are returned as errors: losing durability silently
// would defeat the journal.
func runCell(ctx context.Context, cfg SweepConfig, key string, compute func(context.Context) (Point, error)) (Point, error) {
	rec := cfg.Solver.Recorder
	fullKey := cfg.Prefix + key
	// Every cell is a tracing entry point: the cell span becomes the parent
	// of the lease, solver, and journal-append spans below it. When no span
	// sink rides the context this is free.
	ctx, finishCell := obs.StartSpan(ctx, "core.cell")
	outcome := "computed"
	if obs.Traced(ctx) {
		defer func() { finishCell(map[string]string{"key": fullKey, "outcome": outcome}) }()
	}
	if cfg.Store != nil {
		if raw, ok := cfg.Store.Lookup(fullKey); ok {
			var p Point
			if err := json.Unmarshal(raw, &p); err == nil {
				if rec != nil {
					rec.Add(obs.MetricCoreCellsResumed, 1)
				}
				outcome = "resumed"
				return p, nil
			}
			// Undecodable cached value (journal written by an incompatible
			// schema): recompute rather than fail the sweep.
		}
	}
	claimer, leased := cfg.Store.(LeaseClaimer)
	if !leased {
		return computeCell(ctx, cfg, fullKey, compute)
	}
	leaseCtx, finishLease := obs.StartSpan(ctx, "lease.acquire")
	raw, acquired, err := claimer.Acquire(leaseCtx, fullKey)
	if obs.Traced(ctx) {
		finishLease(map[string]string{"key": fullKey, "acquired": strconv.FormatBool(acquired)})
	}
	if err != nil {
		outcome = "error"
		return Point{}, err
	}
	if !acquired {
		// Another worker computed the cell; adopt its result. An
		// undecodable value here means the fleet is running incompatible
		// schemas — fail loudly rather than silently double-compute.
		var p Point
		if uerr := json.Unmarshal(raw, &p); uerr != nil {
			outcome = "error"
			return Point{}, fmt.Errorf("core: adopting cell %q from a peer worker: %w", fullKey, uerr)
		}
		if rec != nil {
			rec.Add(obs.MetricCoreCellsAdopted, 1)
		}
		outcome = "adopted"
		return p, nil
	}
	p, err := computeCell(ctx, cfg, fullKey, compute)
	if err != nil {
		outcome = "error"
	}
	// Store consumes the lease on completion, making this a no-op; when the
	// outcome stayed transient (or errored) it hands the lease back so
	// another worker — or a resumed run — can take the cell without waiting
	// out the TTL.
	if rerr := claimer.Release(fullKey); rerr != nil && err == nil {
		err = rerr
	}
	return p, err
}

// computeCell is runCell's compute-and-retry loop (steps 3 and 4 of the
// runCell contract).
func computeCell(ctx context.Context, cfg SweepConfig, fullKey string, compute func(context.Context) (Point, error)) (Point, error) {
	rec := cfg.Solver.Recorder
	for attempt := 1; ; attempt++ {
		p, err := compute(ctx)
		if err == nil && !p.Degraded.Retryable() {
			// Final: clean, or a terminal degradation a re-run would
			// deterministically reproduce.
			if cfg.Store != nil {
				_, finishAppend := obs.StartSpan(ctx, "journal.append")
				serr := cfg.Store.Store(fullKey, p)
				if obs.Traced(ctx) {
					finishAppend(map[string]string{"key": fullKey})
				}
				if serr != nil {
					return Point{}, serr
				}
			}
			return p, nil
		}
		if err != nil && cfg.Store != nil {
			if serr := cfg.Store.Fail(fullKey, attempt, err); serr != nil {
				return Point{}, serr
			}
		}
		retryable := err == nil || solver.RetryableError(err)
		if !retryable || attempt >= cfg.Retry.attempts() || ctx.Err() != nil {
			if err != nil {
				return Point{}, err
			}
			// A transiently degraded cell keeps its best-so-far bracket in
			// the partial table but is not journaled as complete.
			return p, nil
		}
		if rec != nil {
			rec.Add(obs.MetricCoreCellsRetried, 1)
		}
		if serr := sleepCtx(ctx, cfg.Retry.backoff(attempt)); serr != nil {
			if err != nil {
				return Point{}, err
			}
			return p, nil
		}
	}
}

// solveCell runs the solver on one parameter cell for any traffic model.
// Cancellation or budget expiry never errors: the cell comes back with its
// best-so-far bracket and a nonempty Degraded reason. The reported Cutoff
// and Hurst are the source's *reference* coordinates (the grid cell it
// models), so non-fluid cells land in the same table rows as fluid ones.
func solveCell(ctx context.Context, src source.Source, util, nbuf float64, cfg solver.Config) (Point, error) {
	m, err := solver.NewModelNormalized(src, util, nbuf)
	if err != nil {
		return Point{}, err
	}
	res, err := solver.SolveModelContext(ctx, m, cfg)
	if err != nil {
		return Point{}, err
	}
	if res.Degraded != "" && cfg.Recorder != nil {
		cfg.Recorder.Add(obs.MetricCoreCellsDegraded, 1)
	}
	return Point{
		NormalizedBuffer: nbuf,
		Cutoff:           src.Cutoff(),
		Hurst:            src.Hurst(),
		Scale:            1,
		Streams:          1,
		Loss:             res.Loss,
		Lower:            res.Lower,
		Upper:            res.Upper,
		Converged:        res.Converged,
		Degraded:         res.Degraded,
	}, nil
}

// realizeCell transforms one cell's reference fluid source into the
// sweep's configured traffic model (SweepConfig.Model; the zero spec is
// the fluid identity) and solves it. Models fitted by approximation (e.g.
// markov) surface their correlation-fit error through the
// MetricSourceFitMaxError gauge.
func realizeCell(ctx context.Context, cfg SweepConfig, ref fluid.Source, util, nbuf float64) (Point, error) {
	if cfg.Remote != nil {
		p, err := cfg.Remote(ctx, RemoteCell{
			Ref: ref, Model: cfg.Model, Util: util, NormalizedBuffer: nbuf,
			Config: cfg.Solver,
		})
		if err != nil {
			return Point{}, err
		}
		if p.Degraded != "" && cfg.Solver.Recorder != nil {
			cfg.Solver.Recorder.Add(obs.MetricCoreCellsDegraded, 1)
		}
		return p, nil
	}
	s, err := cfg.Model.Realize(ref)
	if err != nil {
		return Point{}, err
	}
	if fq, ok := s.(source.FitQuality); ok && cfg.Solver.Recorder != nil {
		cfg.Solver.Recorder.Set(obs.MetricSourceFitMaxError, fq.FitMaxError())
	}
	return solveCell(ctx, s, util, nbuf, cfg.Solver)
}

// LossVsBufferAndCutoff computes the model loss surface of Figs. 4 and 5:
// loss rate over a (normalized buffer, cutoff lag) grid at fixed
// utilization. On context cancellation it returns the completed cells
// alongside the context error, so a sweep always yields its partial rows.
//
// This is the batch-first sweep: with cfg.Batch the cells share one solver
// arena and each cutoff column's realized source (bit-identical results);
// with cfg.WarmStarts each column additionally runs as an ascending-buffer
// warm-start chain (valid bounds, different low-order digits, namespaced
// journal — see SweepConfig).
func LossVsBufferAndCutoff(ctx context.Context, tm TraceModel, util float64, buffers, cutoffs []float64, cfg SweepConfig) ([]Point, error) {
	if len(buffers) == 0 || len(cutoffs) == 0 {
		return nil, errors.New("core: empty parameter grid")
	}
	cfg = cfg.withBatchArena()
	nc := len(cutoffs)
	n := len(buffers) * nc
	key := func(i int) string {
		return "bufcut|u=" + fkey(util) + "|b=" + fkey(buffers[i/nc]) + "|tc=" + fkey(cutoffs[i%nc])
	}
	var realized func(int) (source.Source, error)
	if cfg.batchLocal() {
		realized = newColumnCache(nc, func(c int) (source.Source, error) {
			ref, err := tm.Source(cutoffs[c])
			if err != nil {
				return nil, err
			}
			return realizeModel(cfg, ref)
		})
	}
	compute := func(ctx context.Context, i int, seed *solver.Seed) (Point, *solver.Seed, error) {
		b := buffers[i/nc]
		if realized == nil {
			src, err := tm.Source(cutoffs[i%nc])
			if err != nil {
				return Point{}, nil, err
			}
			p, err := realizeCell(ctx, cfg, src, util, b)
			return p, nil, err
		}
		s, err := realized(i % nc)
		if err != nil {
			return Point{}, nil, err
		}
		return solveCellSeeded(ctx, s, util, b, cfg.Solver, seed)
	}
	if cfg.WarmStarts && cfg.Remote == nil {
		// Warm results differ from cold ones in their low-order digits, so
		// they journal under their own namespace: a warm run never replays an
		// exact journal and vice versa.
		cfg.Prefix += "warm=1|"
		return gridSweepChained(ctx, cfg, n, bufferChains(buffers, nc), key, compute)
	}
	return gridSweep(ctx, cfg, n, key, func(ctx context.Context, i int) (Point, error) {
		p, _, err := compute(ctx, i, nil)
		return p, err
	})
}

// LossVsCutoffFixedTheta reproduces Fig. 9: loss rate versus cutoff lag
// with *all* other parameters fixed across marginals (normalized buffer,
// utilization, θ, and H), isolating the marginal's influence.
func LossVsCutoffFixedTheta(ctx context.Context, marginal dist.Marginal, util, nbuf, theta, hurst float64, cutoffs []float64, cfg SweepConfig) ([]Point, error) {
	if len(cutoffs) == 0 {
		return nil, errors.New("core: empty cutoff grid")
	}
	cfg = cfg.withBatchArena()
	alpha := dist.AlphaFromHurst(hurst)
	keyBase := "cutfix|u=" + fkey(util) + "|b=" + fkey(nbuf) + "|th=" + fkey(theta) + "|h=" + fkey(hurst)
	return gridSweep(ctx, cfg, len(cutoffs),
		func(i int) string { return keyBase + "|tc=" + fkey(cutoffs[i]) },
		func(ctx context.Context, i int) (Point, error) {
			src, err := fluid.New(marginal, dist.TruncatedPareto{Theta: theta, Alpha: alpha, Cutoff: cutoffs[i]})
			if err != nil {
				return Point{}, err
			}
			return realizeCell(ctx, cfg, src, util, nbuf)
		})
}

// LossVsHurstAndScale reproduces Fig. 10: loss over a (Hurst, marginal
// scaling factor) grid at fixed normalized buffer, utilization, and an
// infinite cutoff; θ is matched at the trace model's nominal H.
func LossVsHurstAndScale(ctx context.Context, tm TraceModel, util, nbuf float64, hursts, scales []float64, cfg SweepConfig) ([]Point, error) {
	if len(hursts) == 0 || len(scales) == 0 {
		return nil, errors.New("core: empty parameter grid")
	}
	cfg = cfg.withBatchArena()
	keyBase := "hscale|u=" + fkey(util) + "|b=" + fkey(nbuf)
	return gridSweep(ctx, cfg, len(hursts)*len(scales),
		func(i int) string {
			return keyBase + "|h=" + fkey(hursts[i/len(scales)]) + "|a=" + fkey(scales[i%len(scales)])
		},
		func(ctx context.Context, i int) (Point, error) {
			h := hursts[i/len(scales)]
			a := scales[i%len(scales)]
			src, err := tm.SourceWithHurst(h, math.Inf(1))
			if err != nil {
				return Point{}, err
			}
			src = src.WithMarginal(tm.Marginal.Scale(a))
			p, err := realizeCell(ctx, cfg, src, util, nbuf)
			if err != nil {
				return Point{}, err
			}
			p.Hurst, p.Scale = h, a
			return p, nil
		})
}

// LossVsHurstAndStreams reproduces Fig. 11: loss over a (Hurst, number of
// superposed streams) grid; the marginal is the n-fold convolution
// renormalized to the original mean, with buffer and service rate per
// stream kept constant.
func LossVsHurstAndStreams(ctx context.Context, tm TraceModel, util, nbuf float64, hursts []float64, streams []int, cfg SweepConfig) ([]Point, error) {
	if len(hursts) == 0 || len(streams) == 0 {
		return nil, errors.New("core: empty parameter grid")
	}
	cfg = cfg.withBatchArena()
	// Precompute superposed marginals (shared across Hurst values).
	margs := make([]dist.Marginal, len(streams))
	for j, n := range streams {
		sm, err := tm.Marginal.Superpose(n, 64)
		if err != nil {
			return nil, err
		}
		if sm, err = sm.Rebin(HistogramBins); err != nil {
			return nil, err
		}
		margs[j] = sm
	}
	keyBase := "hstreams|u=" + fkey(util) + "|b=" + fkey(nbuf)
	return gridSweep(ctx, cfg, len(hursts)*len(streams),
		func(i int) string {
			return keyBase + "|h=" + fkey(hursts[i/len(streams)]) + "|n=" + strconv.Itoa(streams[i%len(streams)])
		},
		func(ctx context.Context, i int) (Point, error) {
			h := hursts[i/len(streams)]
			j := i % len(streams)
			src, err := tm.SourceWithHurst(h, math.Inf(1))
			if err != nil {
				return Point{}, err
			}
			src = src.WithMarginal(margs[j])
			p, err := realizeCell(ctx, cfg, src, util, nbuf)
			if err != nil {
				return Point{}, err
			}
			p.Hurst, p.Streams = h, streams[j]
			return p, nil
		})
}

// LossVsBufferAndScale reproduces Figs. 12 and 13: loss over a (normalized
// buffer, marginal scaling factor) grid with an infinite cutoff.
func LossVsBufferAndScale(ctx context.Context, tm TraceModel, util float64, buffers, scales []float64, cfg SweepConfig) ([]Point, error) {
	if len(buffers) == 0 || len(scales) == 0 {
		return nil, errors.New("core: empty parameter grid")
	}
	cfg = cfg.withBatchArena()
	return gridSweep(ctx, cfg, len(buffers)*len(scales),
		func(i int) string {
			return "bscale|u=" + fkey(util) + "|b=" + fkey(buffers[i/len(scales)]) + "|a=" + fkey(scales[i%len(scales)])
		},
		func(ctx context.Context, i int) (Point, error) {
			b := buffers[i/len(scales)]
			a := scales[i%len(scales)]
			src, err := tm.Source(math.Inf(1))
			if err != nil {
				return Point{}, err
			}
			src = src.WithMarginal(tm.Marginal.Scale(a))
			p, err := realizeCell(ctx, cfg, src, util, b)
			if err != nil {
				return Point{}, err
			}
			p.Scale = a
			return p, nil
		})
}

// BoundSnapshot is the occupancy-bound state after a given iteration count
// (the content of the paper's Fig. 2).
type BoundSnapshot struct {
	Iteration int
	// Grid[i] is the occupancy value i·d; LowerCDF/UpperCDF are the
	// cumulative occupancy distributions of the two bound processes.
	Grid               []float64
	LowerCDF, UpperCDF []float64
}

// BoundConvergence reproduces Fig. 2: the discrete lower/upper occupancy
// bounds after the requested iteration counts with a fixed resolution M.
func BoundConvergence(tm TraceModel, util, nbuf float64, bins int, iterations []int) ([]BoundSnapshot, error) {
	src, err := tm.Source(math.Inf(1))
	if err != nil {
		return nil, err
	}
	q, err := solver.NewQueueNormalized(src, util, nbuf)
	if err != nil {
		return nil, err
	}
	it, err := solver.NewIterator(q, solver.Config{InitialBins: bins, MaxBins: bins})
	if err != nil {
		return nil, err
	}
	var out []BoundSnapshot
	step := 0
	for _, target := range iterations {
		if target < step {
			return nil, fmt.Errorf("core: iteration targets must be non-decreasing (got %d after %d)", target, step)
		}
		for step < target {
			if err := it.Step(); err != nil {
				return nil, err
			}
			step++
		}
		lower := it.LowerOccupancy()
		upper := it.UpperOccupancy()
		grid := make([]float64, len(lower))
		lcdf := make([]float64, len(lower))
		ucdf := make([]float64, len(lower))
		var la, ua float64
		for i := range lower {
			grid[i] = float64(i) * it.GridStep() / q.ServiceRate // in seconds of buffering
			la += lower[i]
			ua += upper[i]
			lcdf[i], ucdf[i] = la, ua
		}
		out = append(out, BoundSnapshot{Iteration: target, Grid: grid, LowerCDF: lcdf, UpperCDF: ucdf})
	}
	return out, nil
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
