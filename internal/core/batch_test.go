package core

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"lrd/internal/obs"
)

// TestBatchSweepBitIdentical is the exact-mode contract at the sweep level:
// a batched LossVsBufferAndCutoff — shared arena, per-column realized
// sources — produces Points deep-equal (all floats bitwise, via ==) to the
// unbatched sweep.
func TestBatchSweepBitIdentical(t *testing.T) {
	tm := quickModel(t)
	buffers := []float64{0.05, 0.1, 0.2}
	cutoffs := []float64{0.5, 2, math.Inf(1)}

	plain, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, Sweep(fastCfg()))
	if err != nil {
		t.Fatal(err)
	}
	bcfg := Sweep(fastCfg())
	bcfg.Batch = true
	batched, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched, plain) {
		t.Fatalf("batched sweep differs from plain sweep:\nbatched %+v\nplain   %+v", batched, plain)
	}
}

// TestBatchSweepArenaMetrics: a batched sweep actually reuses arena scratch
// across cells (more reuses than allocations after the pool warms up).
func TestBatchSweepArenaMetrics(t *testing.T) {
	tm := quickModel(t)
	reg := obs.NewRegistry()
	cfg := fastCfg()
	cfg.Recorder = reg
	bcfg := Sweep(cfg)
	bcfg.Batch = true
	bcfg.Workers = 1 // serial: every cell after the first must hit the pool
	_, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85,
		[]float64{0.05, 0.1, 0.2}, []float64{0.5, math.Inf(1)}, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue(obs.MetricSolverArenaAlloc); got != 1 {
		t.Fatalf("arena allocs = %v, want 1 (single worker)", got)
	}
	if got := reg.CounterValue(obs.MetricSolverArenaReuse); got != 5 {
		t.Fatalf("arena reuses = %v, want 5", got)
	}
}

// TestWarmSweepDeterministic: warm-chained sweeps are reproducible — two
// runs over the same grid, including a parallel one, produce identical
// points — and the warm metrics record chain activity.
func TestWarmSweepDeterministic(t *testing.T) {
	tm := quickModel(t)
	buffers := []float64{0.2, 0.05, 0.1} // unsorted: chains must order them
	cutoffs := []float64{0.5, math.Inf(1)}
	run := func(workers int) []Point {
		reg := obs.NewRegistry()
		cfg := fastCfg()
		cfg.Recorder = reg
		wcfg := Sweep(cfg)
		wcfg.WarmStarts = true
		wcfg.Workers = workers
		pts, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, wcfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := reg.CounterValue(obs.MetricCoreWarmChains); got != float64(len(cutoffs)) {
			t.Fatalf("warm chains = %v, want %d", got, len(cutoffs))
		}
		if got := reg.CounterValue(obs.MetricSolverWarmSolves); got == 0 {
			t.Fatal("no warm solves recorded in a warm sweep")
		}
		return pts
	}
	a, b, c := run(1), run(1), run(4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two serial warm sweeps differ:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("parallel warm sweep differs from serial:\nserial   %+v\nparallel %+v", a, c)
	}
	// Warm bounds are valid: every point still brackets its own loss.
	for i, p := range a {
		if !(p.Lower <= p.Loss && p.Loss <= p.Upper) {
			t.Fatalf("point %d: invalid bracket [%g, %g] around %g", i, p.Lower, p.Upper, p.Loss)
		}
	}
}

// TestWarmSweepResumeKeepsCommittedResults is the "a warm start must never
// change committed results" contract: cells journaled by an interrupted
// warm sweep replay untouched on resume, the chain restarts cold after each
// replayed cell (chain-break accounting), and the full resumed table equals
// the table of rows actually journaled plus freshly chained remainders —
// i.e. resume never rewrites a committed point.
func TestWarmSweepResumeKeepsCommittedResults(t *testing.T) {
	tm := quickModel(t)
	buffers := []float64{0.05, 0.1, 0.2}
	cutoffs := []float64{0.5, math.Inf(1)}
	util := 0.85

	path := filepath.Join(t.TempDir(), "warm.journal")
	store, err := OpenJournalStore(path, JournalStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel after two journal appends: mid-chain, so the interrupted run
	// leaves some cells committed and others not.
	interrupting := &cancelAfterStores{CellStore: store, cancel: cancel, limit: 2}
	_, _ = LossVsBufferAndCutoff(ctx, tm, util, buffers, cutoffs,
		SweepConfig{Solver: fastCfg(), Store: interrupting, Prefix: "t|", WarmStarts: true, Workers: 1})
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	rreg := obs.NewRegistry()
	rstore, err := OpenJournalStore(path, JournalStoreOptions{Resume: true, Recorder: rreg})
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	committed := rstore.Completed()
	if committed == 0 {
		t.Fatal("interrupted warm run journaled no cells")
	}
	// Snapshot the committed points before resuming.
	before := make(map[string]Point)
	nc := len(cutoffs)
	for i := 0; i < len(buffers)*nc; i++ {
		key := "t|warm=1|bufcut|u=" + fkey(util) + "|b=" + fkey(buffers[i/nc]) + "|tc=" + fkey(cutoffs[i%nc])
		if raw, ok := rstore.Lookup(key); ok {
			var p Point
			if err := p.UnmarshalJSON(raw); err != nil {
				t.Fatalf("journaled cell %q: %v", key, err)
			}
			before[key] = p
		}
	}
	if len(before) != committed {
		t.Fatalf("found %d journaled cells under the warm prefix, store reports %d", len(before), committed)
	}

	rcfg := fastCfg()
	rcfg.Recorder = rreg
	resumed, err := LossVsBufferAndCutoff(context.Background(), tm, util, buffers, cutoffs,
		SweepConfig{Solver: rcfg, Store: rstore, Prefix: "t|", WarmStarts: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(buffers)*nc {
		t.Fatalf("resumed warm sweep returned %d points, want %d", len(resumed), len(buffers)*nc)
	}
	if got := rreg.CounterValue(obs.MetricCoreCellsResumed); got != float64(committed) {
		t.Fatalf("cells resumed = %v, want %d", got, committed)
	}
	// Every committed point must appear in the resumed table byte-for-byte.
	for i, p := range resumed {
		key := "t|warm=1|bufcut|u=" + fkey(util) + "|b=" + fkey(buffers[i/nc]) + "|tc=" + fkey(cutoffs[i%nc])
		if want, ok := before[key]; ok && p != want {
			t.Fatalf("resume rewrote committed cell %q:\nbefore %+v\nafter  %+v", key, want, p)
		}
	}
}

// TestWarmSweepJournalNamespaced: a warm sweep and an exact sweep sharing
// one journal never replay each other's cells.
func TestWarmSweepJournalNamespaced(t *testing.T) {
	tm := quickModel(t)
	buffers := []float64{0.05, 0.1}
	cutoffs := []float64{math.Inf(1)}

	path := filepath.Join(t.TempDir(), "shared.journal")
	store, err := OpenJournalStore(path, JournalStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	exact := SweepConfig{Solver: fastCfg(), Store: store, Prefix: "t|", Batch: true}
	if _, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, exact); err != nil {
		t.Fatal(err)
	}
	afterExact := store.Completed()

	reg := obs.NewRegistry()
	wcfg := fastCfg()
	wcfg.Recorder = reg
	warm := SweepConfig{Solver: wcfg, Store: store, Prefix: "t|", WarmStarts: true}
	if _, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, warm); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue(obs.MetricCoreCellsResumed); got != 0 {
		t.Fatalf("warm sweep replayed %v exact cells; namespaces leaked", got)
	}
	if store.Completed() != afterExact+len(buffers)*len(cutoffs) {
		t.Fatalf("journal holds %d cells after warm run, want %d exact + %d warm",
			store.Completed(), afterExact, len(buffers)*len(cutoffs))
	}
}
