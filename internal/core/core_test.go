package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"lrd/internal/dist"
	"lrd/internal/numerics"
	"lrd/internal/solver"
	"lrd/internal/traces"
)

// quickTrace builds a small synthetic trace for fast tests.
func quickTrace(t *testing.T, seed int64) traces.Trace {
	t.Helper()
	tr, err := traces.Synthesize(traces.Config{
		Name:     "quick",
		Hurst:    0.85,
		Bins:     1 << 13,
		BinWidth: 0.02,
		Quantile: traces.LognormalQuantile(4, 0.5),
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func quickModel(t *testing.T) TraceModel {
	t.Helper()
	tm, err := BuildTraceModel(quickTrace(t, 1), 0.85)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

// fastCfg keeps solver work small in tests.
func fastCfg() solver.Config {
	return solver.Config{InitialBins: 64, MaxBins: 2048, MaxIterations: 20000}
}

func TestBuildTraceModel(t *testing.T) {
	tm := quickModel(t)
	if tm.Marginal.Len() == 0 || tm.Marginal.Len() > HistogramBins {
		t.Fatalf("marginal atoms = %d", tm.Marginal.Len())
	}
	if tm.Hurst != 0.85 {
		t.Fatalf("imposed Hurst = %v", tm.Hurst)
	}
	if tm.MeanEpoch <= 0 {
		t.Fatalf("mean epoch = %v", tm.MeanEpoch)
	}
	if _, err := BuildTraceModel(traces.Trace{}, 0.8); err == nil {
		t.Fatal("want error on empty trace")
	}
}

func TestBuildTraceModelEstimatesHurst(t *testing.T) {
	tm, err := BuildTraceModel(quickTrace(t, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm.Hurst-0.85) > 0.1 {
		t.Fatalf("estimated Hurst = %v, want ≈ 0.85", tm.Hurst)
	}
}

func TestSourceCalibration(t *testing.T) {
	tm := quickModel(t)
	src, err := tm.Source(5)
	if err != nil {
		t.Fatal(err)
	}
	if src.Interarrival.Cutoff != 5 {
		t.Fatalf("cutoff = %v", src.Interarrival.Cutoff)
	}
	// θ calibrated so the untruncated mean epoch matches.
	alpha := dist.AlphaFromHurst(tm.Hurst)
	if !numerics.AlmostEqual(src.Interarrival.Theta/(alpha-1), tm.MeanEpoch, 1e-9) {
		t.Fatalf("θ calibration off: %v vs %v", src.Interarrival.Theta/(alpha-1), tm.MeanEpoch)
	}
}

func TestSourceWithHurstKeepsTheta(t *testing.T) {
	tm := quickModel(t)
	a, err := tm.SourceWithHurst(0.6, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tm.SourceWithHurst(0.95, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Interarrival.Theta != b.Interarrival.Theta {
		t.Fatalf("θ must be fixed across H: %v vs %v", a.Interarrival.Theta, b.Interarrival.Theta)
	}
	if a.Hurst() != 0.6 || b.Hurst() != 0.95 {
		t.Fatalf("Hurst override failed: %v %v", a.Hurst(), b.Hurst())
	}
	if _, err := tm.SourceWithHurst(1.2, 1); err == nil {
		t.Fatal("want error for Hurst outside (0.5, 1)")
	}
}

func TestLossVsBufferAndCutoffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 2×3 sweep with near-zero-loss cells is slow")
	}
	tm := quickModel(t)
	buffers := []float64{0.05, 0.5}
	cutoffs := []float64{0.1, 2, math.Inf(1)}
	pts, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, buffers, cutoffs, Sweep(fastCfg()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6", len(pts))
	}
	// Loss non-decreasing in cutoff at fixed buffer; non-increasing in
	// buffer at fixed cutoff — the qualitative shape of Figs. 4/5.
	get := func(b, tc float64) float64 {
		for _, p := range pts {
			if p.NormalizedBuffer == b && (p.Cutoff == tc || (math.IsInf(tc, 1) && math.IsInf(p.Cutoff, 1))) {
				return p.Loss
			}
		}
		t.Fatalf("missing point (%v, %v)", b, tc)
		return 0
	}
	for _, b := range buffers {
		if get(b, 0.1) > get(b, 2)*1.05+1e-15 || get(b, 2) > get(b, math.Inf(1))*1.05+1e-15 {
			t.Fatalf("loss not increasing in cutoff at b=%v", b)
		}
	}
	for _, tc := range cutoffs {
		if get(0.5, tc) > get(0.05, tc)*1.05+1e-15 {
			t.Fatalf("loss not decreasing in buffer at Tc=%v", tc)
		}
	}
	if _, err := LossVsBufferAndCutoff(context.Background(), tm, 0.85, nil, cutoffs, Sweep(fastCfg())); err == nil {
		t.Fatal("want error on empty grid")
	}
}

func TestLossVsCutoffFixedThetaSeparatesMarginals(t *testing.T) {
	// Fig. 9's point: two marginals with the same θ, H, buffer, and
	// utilization produce very different loss. A wide two-point marginal
	// against a narrow one.
	wide := dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	narrow := dist.MustMarginal([]float64{0.8, 1.2}, []float64{0.5, 0.5})
	cutoffs := []float64{0.5, 5}
	wpts, err := LossVsCutoffFixedTheta(context.Background(), wide, 2.0/3.0, 0.5, 0.02, 0.9, cutoffs, Sweep(fastCfg()))
	if err != nil {
		t.Fatal(err)
	}
	npts, err := LossVsCutoffFixedTheta(context.Background(), narrow, 2.0/3.0, 0.5, 0.02, 0.9, cutoffs, Sweep(fastCfg()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range cutoffs {
		if wpts[i].Loss <= npts[i].Loss*10 {
			t.Fatalf("marginal effect too weak: wide %v vs narrow %v at Tc=%v",
				wpts[i].Loss, npts[i].Loss, cutoffs[i])
		}
	}
}

func TestLossVsHurstAndScaleShape(t *testing.T) {
	// An MTV-like narrow marginal (CoV 0.3): the regime in which the paper
	// demonstrates the dominance of the marginal over the Hurst parameter.
	tr, err := traces.Synthesize(traces.Config{
		Name:     "mtv-like",
		Hurst:    0.83,
		Bins:     1 << 13,
		BinWidth: 1.0 / 30,
		Quantile: traces.LognormalQuantile(9.5, 0.3),
	}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	tm, err := BuildTraceModel(tr, 0.83)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ranges: H ∈ (0.55, 0.95), a ∈ (0.5, 1.5), Tc = ∞, B/c = 1 s.
	pts, err := LossVsHurstAndScale(context.Background(), tm, 0.8, 1.0, []float64{0.55, 0.75, 0.95}, []float64{0.5, 1.0, 1.5}, Sweep(fastCfg()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("points = %d", len(pts))
	}
	// The paper's Fig. 10 finding: scale dominates. At fixed H, loss must
	// increase strongly with the scaling factor.
	get := func(h, a float64) float64 {
		for _, p := range pts {
			if p.Hurst == h && p.Scale == a {
				return p.Loss
			}
		}
		t.Fatalf("missing point (%v, %v)", h, a)
		return 0
	}
	floor := func(x float64) float64 { return math.Max(x, 1e-10) }
	for _, h := range []float64{0.55, 0.95} {
		lo, mid, hi := get(h, 0.5), get(h, 1.0), get(h, 1.5)
		if !(lo <= mid && mid < hi) {
			t.Fatalf("H=%v: loss not increasing in scale: %v %v %v", h, lo, mid, hi)
		}
	}
	// The paper's comparison ("changing α from 1.0 to 0.5 decreases the
	// loss rate by more than an order of magnitude. In contrast, changing
	// the value of H has much less of an impact"): a half-scale move must
	// beat a comparable single step of the Hurst parameter.
	scaleHalving := floor(get(0.95, 1.0)) / floor(get(0.95, 0.5))
	hurstStep := floor(get(0.95, 1.0)) / floor(get(0.75, 1.0))
	if scaleHalving < 5 {
		t.Fatalf("halving the marginal width should cut loss by ≈10×, got %v", scaleHalving)
	}
	if scaleHalving < hurstStep*0.6 {
		t.Fatalf("scale halving (%v×) should rival or beat an H step (%v×)", scaleHalving, hurstStep)
	}
}

func TestLossVsHurstAndStreamsShape(t *testing.T) {
	tm := quickModel(t)
	pts, err := LossVsHurstAndStreams(context.Background(), tm, 0.85, 0.3, []float64{0.85}, []int{1, 4}, Sweep(fastCfg()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	var single, multi float64
	for _, p := range pts {
		switch p.Streams {
		case 1:
			single = p.Loss
		case 4:
			multi = p.Loss
		}
	}
	// Fig. 11: superposing streams sharply decreases loss.
	if multi >= single/2 {
		t.Fatalf("superposition effect too weak: 1 stream %v, 4 streams %v", single, multi)
	}
}

func TestLossVsBufferAndScaleShape(t *testing.T) {
	tm := quickModel(t)
	pts, err := LossVsBufferAndScale(context.Background(), tm, 0.85, []float64{0.1, 1.0}, []float64{0.5, 1.0}, Sweep(fastCfg()))
	if err != nil {
		t.Fatal(err)
	}
	get := func(b, a float64) float64 {
		for _, p := range pts {
			if p.NormalizedBuffer == b && p.Scale == a {
				return p.Loss
			}
		}
		t.Fatalf("missing point (%v, %v)", b, a)
		return 0
	}
	// Fig. 12's claim: halving the marginal width cuts loss more than a
	// 10-fold buffer increase.
	bufferGain := get(0.1, 1.0) / math.Max(get(1.0, 1.0), 1e-300)
	scaleGain := get(0.1, 1.0) / math.Max(get(0.1, 0.5), 1e-300)
	if scaleGain < bufferGain {
		t.Fatalf("scaling gain %v should beat buffer gain %v for LRD input", scaleGain, bufferGain)
	}
}

func TestBoundConvergenceSnapshots(t *testing.T) {
	tm := quickModel(t)
	snaps, err := BoundConvergence(tm, 0.85, 0.5, 100, []int{5, 10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	for _, s := range snaps {
		if len(s.Grid) != 101 || len(s.LowerCDF) != 101 || len(s.UpperCDF) != 101 {
			t.Fatalf("n=%d: wrong vector lengths", s.Iteration)
		}
		// CDFs end at 1 and the lower process is stochastically smaller,
		// i.e. its CDF dominates pointwise.
		if !numerics.AlmostEqual(s.LowerCDF[100], 1, 1e-9) || !numerics.AlmostEqual(s.UpperCDF[100], 1, 1e-9) {
			t.Fatalf("n=%d: CDFs do not reach 1", s.Iteration)
		}
		for i := range s.Grid {
			if s.LowerCDF[i] < s.UpperCDF[i]-1e-9 {
				t.Fatalf("n=%d: bound ordering violated at %d", s.Iteration, i)
			}
		}
	}
	// The gap between the bound CDFs shrinks with n (Fig. 2's message).
	gap := func(s BoundSnapshot) float64 {
		var g float64
		for i := range s.Grid {
			g += s.LowerCDF[i] - s.UpperCDF[i]
		}
		return g
	}
	if !(gap(snaps[2]) < gap(snaps[0])) {
		t.Fatalf("bound gap did not shrink: %v -> %v", gap(snaps[0]), gap(snaps[2]))
	}
	if _, err := BoundConvergence(tm, 0.85, 0.5, 100, []int{10, 5}); err == nil {
		t.Fatal("want error on decreasing iteration targets")
	}
}

func TestShuffleLossSurface(t *testing.T) {
	tr := quickTrace(t, 3)
	rng := rand.New(rand.NewSource(4))
	buffers := []float64{0.05, 0.5}
	blocks := []float64{0.1, 5, math.Inf(1)}
	pts, err := ShuffleLossSurface(context.Background(), tr, 0.85, buffers, blocks, rng, SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	get := func(b, blk float64) float64 {
		for _, p := range pts {
			if p.NormalizedBuffer == b && (p.BlockLen == blk || (math.IsInf(blk, 1) && math.IsInf(p.BlockLen, 1))) {
				return p.Loss
			}
		}
		t.Fatalf("missing point")
		return 0
	}
	// Larger blocks (more retained correlation) cannot reduce loss much;
	// allow simulation noise via a generous factor.
	for _, b := range buffers {
		if get(b, 0.1) > get(b, math.Inf(1))*1.5+1e-12 {
			t.Fatalf("b=%v: shuffled loss %v above unshuffled %v", b, get(b, 0.1), get(b, math.Inf(1)))
		}
	}
	// Validation errors.
	if _, err := ShuffleLossSurface(context.Background(), traces.Trace{}, 0.8, buffers, blocks, rng, SweepConfig{}); err == nil {
		t.Fatal("want error on empty trace")
	}
	if _, err := ShuffleLossSurface(context.Background(), tr, 1.5, buffers, blocks, rng, SweepConfig{}); err == nil {
		t.Fatal("want error on bad utilization")
	}
	if _, err := ShuffleLossSurface(context.Background(), tr, 0.8, nil, blocks, rng, SweepConfig{}); err == nil {
		t.Fatal("want error on empty grid")
	}
}

func TestHorizonFromSurface(t *testing.T) {
	// Synthetic surface with known horizons: loss saturates at cutoff = 2·b.
	var pts []ShufflePoint
	buffers := []float64{0.1, 0.2, 0.4, 0.8}
	cutoffs := []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2}
	for _, b := range buffers {
		for _, tc := range cutoffs {
			loss := 1e-3
			if tc < 2*b {
				loss = 1e-3 * tc / (2 * b)
			}
			pts = append(pts, ShufflePoint{NormalizedBuffer: b, BlockLen: tc, Loss: loss})
		}
	}
	res, err := HorizonFromSurface(pts, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buffers) != len(buffers) {
		t.Fatalf("buffers with horizons = %d", len(res.Buffers))
	}
	if math.Abs(res.Fit.Exponent-1) > 0.35 {
		t.Fatalf("scaling exponent = %v, want ≈ 1", res.Fit.Exponent)
	}
	if _, err := HorizonFromSurface(nil, 0.1); err == nil {
		t.Fatal("want error on empty surface")
	}
}

func TestMTVAndBellcoreModels(t *testing.T) {
	if testing.Short() {
		t.Skip("trace synthesis is slow")
	}
	tm, err := MTVModel(7)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(tm.Marginal.Mean(), 9.5222, 0.1) {
		t.Fatalf("MTV marginal mean = %v", tm.Marginal.Mean())
	}
	if tm.Hurst != 0.83 {
		t.Fatalf("MTV H = %v", tm.Hurst)
	}
	bc, err := BellcoreModel(8)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Hurst != 0.9 {
		t.Fatalf("BC H = %v", bc.Hurst)
	}
	// The paper quotes mean epochs of ≈80 ms (MTV) and ≈15 ms (BC); our
	// stand-ins should land in the same range (a factor of ~3).
	if tm.MeanEpoch < 0.02 || tm.MeanEpoch > 0.5 {
		t.Fatalf("MTV mean epoch = %v s", tm.MeanEpoch)
	}
	if bc.MeanEpoch < 0.005 || bc.MeanEpoch > 0.1 {
		t.Fatalf("BC mean epoch = %v s", bc.MeanEpoch)
	}
}

func TestParallelMapPropagatesError(t *testing.T) {
	ctx := context.Background()
	_, err := parallelMap(ctx, nil, 0, 64, func(i int) error {
		if i == 17 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("err = %v, want errTest", err)
	}
	if _, err := parallelMap(ctx, nil, 0, 0, func(int) error { return nil }); err != nil {
		t.Fatalf("empty map errored: %v", err)
	}
	// Order-independence: results land in their own slots, and the done
	// mask marks every index.
	out := make([]int, 100)
	done, err := parallelMap(ctx, nil, 0, 100, func(i int) error {
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
		if !done[i] {
			t.Fatalf("slot %d not marked done", i)
		}
	}
}

func TestParallelMapCancellation(t *testing.T) {
	// A pre-canceled context: no work dispatched, ctx error reported,
	// nothing marked done.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done, err := parallelMap(ctx, nil, 0, 32, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, d := range done {
		if d {
			t.Fatalf("index %d ran despite canceled context", i)
		}
	}
	// Cancellation mid-run: the call returns (no deadlock) and reports the
	// context error, keeping whatever completed. n is far above any
	// plausible worker count so completion stays partial.
	const n = 1 << 14
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2, err2 := parallelMap(ctx2, nil, 0, n, func(i int) error {
		if i == 3 {
			cancel2()
		}
		return nil
	})
	if !errors.Is(err2, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err2)
	}
	completed := 0
	for _, d := range done2 {
		if d {
			completed++
		}
	}
	if completed == 0 || completed >= n {
		t.Fatalf("completed = %d, want partial completion", completed)
	}
}

var errTest = errors.New("boom")
