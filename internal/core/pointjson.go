package core

import (
	"encoding/json"
	"fmt"
	"math"

	"lrd/internal/solver"
)

// encoding/json rejects non-finite floats, but sweep cells legitimately
// carry them — Point.Cutoff and ShufflePoint.BlockLen are math.Inf(1) for
// the fully correlated case. The journal must round-trip every cell
// exactly, so Point and ShufflePoint marshal their floats through
// jsonFloat, which spells the non-finite values as quoted strings.

// jsonFloat is a float64 whose JSON form round-trips ±Inf and NaN.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-inf"`), nil
	case math.IsNaN(v):
		return []byte(`"nan"`), nil
	}
	return json.Marshal(v)
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"inf"`:
		*f = jsonFloat(math.Inf(1))
		return nil
	case `"-inf"`:
		*f = jsonFloat(math.Inf(-1))
		return nil
	case `"nan"`:
		*f = jsonFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("core: bad float %s: %w", b, err)
	}
	*f = jsonFloat(v)
	return nil
}

// pointJSON mirrors Point field for field with journal-safe floats.
type pointJSON struct {
	NormalizedBuffer jsonFloat            `json:"buffer"`
	Cutoff           jsonFloat            `json:"cutoff"`
	Hurst            jsonFloat            `json:"hurst"`
	Scale            jsonFloat            `json:"scale"`
	Streams          int                  `json:"streams"`
	Loss             jsonFloat            `json:"loss"`
	Lower            jsonFloat            `json:"lower"`
	Upper            jsonFloat            `json:"upper"`
	Converged        bool                 `json:"converged"`
	Degraded         solver.DegradeReason `json:"degraded,omitempty"`
}

// MarshalJSON implements json.Marshaler with non-finite floats preserved.
func (p Point) MarshalJSON() ([]byte, error) {
	return json.Marshal(pointJSON{
		NormalizedBuffer: jsonFloat(p.NormalizedBuffer),
		Cutoff:           jsonFloat(p.Cutoff),
		Hurst:            jsonFloat(p.Hurst),
		Scale:            jsonFloat(p.Scale),
		Streams:          p.Streams,
		Loss:             jsonFloat(p.Loss),
		Lower:            jsonFloat(p.Lower),
		Upper:            jsonFloat(p.Upper),
		Converged:        p.Converged,
		Degraded:         p.Degraded,
	})
}

// UnmarshalJSON implements json.Unmarshaler, the inverse of MarshalJSON.
func (p *Point) UnmarshalJSON(b []byte) error {
	var m pointJSON
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	*p = Point{
		NormalizedBuffer: float64(m.NormalizedBuffer),
		Cutoff:           float64(m.Cutoff),
		Hurst:            float64(m.Hurst),
		Scale:            float64(m.Scale),
		Streams:          m.Streams,
		Loss:             float64(m.Loss),
		Lower:            float64(m.Lower),
		Upper:            float64(m.Upper),
		Converged:        m.Converged,
		Degraded:         m.Degraded,
	}
	return nil
}

// shufflePointJSON mirrors ShufflePoint with journal-safe floats.
type shufflePointJSON struct {
	NormalizedBuffer jsonFloat `json:"buffer"`
	BlockLen         jsonFloat `json:"block"`
	Loss             jsonFloat `json:"loss"`
}

// MarshalJSON implements json.Marshaler with non-finite floats preserved.
func (p ShufflePoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(shufflePointJSON{
		NormalizedBuffer: jsonFloat(p.NormalizedBuffer),
		BlockLen:         jsonFloat(p.BlockLen),
		Loss:             jsonFloat(p.Loss),
	})
}

// UnmarshalJSON implements json.Unmarshaler, the inverse of MarshalJSON.
func (p *ShufflePoint) UnmarshalJSON(b []byte) error {
	var m shufflePointJSON
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	*p = ShufflePoint{
		NormalizedBuffer: float64(m.NormalizedBuffer),
		BlockLen:         float64(m.BlockLen),
		Loss:             float64(m.Loss),
	}
	return nil
}
