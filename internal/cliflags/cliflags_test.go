package cliflags

import (
	"bytes"
	"context"
	"flag"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newFlagSet registers every shared group on one FlagSet and returns it
// with its captured usage output.
func newFlagSet() (*flag.FlagSet, *Obs, *Journal, *Retry, *Budget, *PointBudget, *bytes.Buffer) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	o := ObsGroup(fs)
	j := JournalGroup(fs)
	r := RetryGroup(fs)
	b := BudgetGroup(fs)
	p := PointBudgetGroup(fs)
	BatchGroup(fs)
	ModelGroup(fs)
	return fs, o, j, r, b, p, &buf
}

// TestCanonMatchesRegistrations is the self-test of the drift check: the
// usage text a FlagSet carrying every shared group actually prints must
// satisfy CheckUsage for every canonical flag. If a group constructor and
// the canon table ever disagree, this fails here — before any per-binary
// test runs.
func TestCanonMatchesRegistrations(t *testing.T) {
	fs, _, _, _, _, _, buf := newFlagSet()
	fs.PrintDefaults()
	if err := CheckUsage(buf.String(),
		"metrics", "trace", "progress", "pprof",
		"journal", "resume", "retries", "retry-backoff",
		"timeout", "point-timeout", "model", "model-params",
		"batch", "warm",
	); err != nil {
		t.Fatal(err)
	}
}

func TestCheckUsageDetectsDrift(t *testing.T) {
	fs := flag.NewFlagSet("drift", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Int("retries", 3, "a diverged help text")
	fs.PrintDefaults()
	err := CheckUsage(buf.String(), "retries")
	if err == nil {
		t.Fatal("CheckUsage accepted a diverged flag")
	}
	if !strings.Contains(err.Error(), "retries") {
		t.Fatalf("drift error does not name the flag: %v", err)
	}
	if err := CheckUsage(buf.String(), "metrics"); err == nil {
		t.Fatal("CheckUsage accepted a missing flag")
	}
	if err := CheckUsage("", "no-such-canonical-flag"); err == nil {
		t.Fatal("CheckUsage accepted a name outside the canon table")
	}
}

func TestGroupsParse(t *testing.T) {
	fs, o, j, r, b, p, _ := newFlagSet()
	err := fs.Parse([]string{
		"-metrics", "m.json", "-trace", "t.jsonl", "-progress", "-pprof", "localhost:0",
		"-journal", "j.jsonl", "-resume",
		"-retries", "4", "-retry-backoff", "250ms",
		"-timeout", "2m", "-point-timeout", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := o.CLIOptions("prog", io.Discard)
	if opts.Name != "prog" || opts.MetricsPath != "m.json" || opts.TracePath != "t.jsonl" ||
		opts.PprofAddr != "localhost:0" || !opts.Progress {
		t.Fatalf("CLIOptions = %+v", opts)
	}
	if *j.Path != "j.jsonl" || !*j.Resume {
		t.Fatalf("journal group = %q resume=%v", *j.Path, *j.Resume)
	}
	pol := r.Policy()
	if pol.MaxAttempts != 4 || pol.Backoff != 250*time.Millisecond {
		t.Fatalf("retry policy = %+v", pol)
	}
	if *b.Timeout != 2*time.Minute || *p.PointTimeout != 5*time.Second {
		t.Fatalf("budgets = %v / %v", *b.Timeout, *p.PointTimeout)
	}
}

func TestBudgetContext(t *testing.T) {
	fs := flag.NewFlagSet("b", flag.ContinueOnError)
	b := BudgetGroup(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := b.Context(context.Background())
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero -timeout must not set a deadline")
	}
	cancel()
	if ctx.Err() == nil {
		t.Fatal("cancel func must cancel the derived context")
	}

	fs2 := flag.NewFlagSet("b2", flag.ContinueOnError)
	b2 := BudgetGroup(fs2)
	if err := fs2.Parse([]string{"-timeout", "1h"}); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := b2.Context(context.Background())
	defer cancel2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Fatal("-timeout must set a deadline")
	}
}

func TestJournalOpen(t *testing.T) {
	// -resume without -journal is a usage error naming the program.
	fs := flag.NewFlagSet("j", flag.ContinueOnError)
	j := JournalGroup(fs)
	if err := fs.Parse([]string{"-resume"}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Open("prog", nil, io.Discard); err == nil || !strings.Contains(err.Error(), "prog: -resume requires -journal") {
		t.Fatalf("Open = %v, want the -resume usage error", err)
	}

	// No journal flags at all: no store, no error.
	fs2 := flag.NewFlagSet("j2", flag.ContinueOnError)
	j2 := JournalGroup(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if store, err := j2.Open("prog", nil, io.Discard); err != nil || store != nil {
		t.Fatalf("Open = (%v, %v), want (nil, nil)", store, err)
	}

	// A real journal round-trip: write one cell, reopen with -resume, and
	// the standard resuming notice names the program and the cell count.
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	fs3 := flag.NewFlagSet("j3", flag.ContinueOnError)
	j3 := JournalGroup(fs3)
	if err := fs3.Parse([]string{"-journal", path}); err != nil {
		t.Fatal(err)
	}
	store, err := j3.Open("prog", nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Store("cell-1", map[string]float64{"loss": 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	fs4 := flag.NewFlagSet("j4", flag.ContinueOnError)
	j4 := JournalGroup(fs4)
	if err := fs4.Parse([]string{"-journal", path, "-resume"}); err != nil {
		t.Fatal(err)
	}
	var warn bytes.Buffer
	resumed, err := j4.Open("prog", nil, &warn)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Completed() != 1 {
		t.Fatalf("resumed %d cells, want 1", resumed.Completed())
	}
	if got := warn.String(); !strings.Contains(got, "prog: resuming; 1 journaled cell(s) will be skipped") {
		t.Fatalf("resume notice = %q", got)
	}
}
