// Package cliflags is the single definition of the flag groups the lrd
// commands share. Before it existed, every binary hand-duplicated the
// observability flags (-metrics/-trace/-progress/-pprof), the durability
// flags (-journal/-resume/-retries/-retry-backoff), the budget flags
// (-timeout/-point-timeout), and the model flags (-model/-model-params),
// and the copies drifted. Each group is now registered by one function, so
// a flag's name, default, and help text are identical in every binary that
// offers it — and the Canon table plus CheckUsage let each command's tests
// assert exactly that against the binary's own -h output.
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"lrd/internal/core"
	"lrd/internal/fleetstatus"
	"lrd/internal/obs"
	"lrd/internal/resilient"
	"lrd/internal/source"
)

// Obs is the shared observability flag group. Wire it to obs.StartCLI with
// CLIOptions.
type Obs struct {
	Metrics  *string
	Trace    *string
	Progress *bool
	Pprof    *string
}

// ObsGroup registers -metrics, -trace, -progress, and -pprof on fs.
func ObsGroup(fs *flag.FlagSet) *Obs {
	return &Obs{
		Metrics:  fs.String("metrics", "", canon["metrics"].Usage),
		Trace:    fs.String("trace", "", canon["trace"].Usage),
		Progress: fs.Bool("progress", false, canon["progress"].Usage),
		Pprof:    fs.String("pprof", "", canon["pprof"].Usage),
	}
}

// CLIOptions assembles the obs.StartCLI options for the parsed group.
func (o *Obs) CLIOptions(name string, progressOut io.Writer) obs.CLIOptions {
	return obs.CLIOptions{
		Name:        name,
		MetricsPath: *o.Metrics,
		TracePath:   *o.Trace,
		PprofAddr:   *o.Pprof,
		Progress:    *o.Progress,
		ProgressOut: progressOut,
	}
}

// Journal is the shared durability flag group.
type Journal struct {
	Path      *string
	Resume    *bool
	CompactMB *int64
}

// JournalGroup registers -journal, -resume, and -compact-mb on fs.
func JournalGroup(fs *flag.FlagSet) *Journal {
	return &Journal{
		Path:      fs.String("journal", "", canon["journal"].Usage),
		Resume:    fs.Bool("resume", false, canon["resume"].Usage),
		CompactMB: fs.Int64("compact-mb", 0, canon["compact-mb"].Usage),
	}
}

// Open validates the group and opens the journal store: nil when no
// -journal was given, an error for -resume without -journal or an
// unopenable journal. When resuming a non-empty journal it prints the
// standard "resuming; N journaled cell(s) will be skipped" notice to warn.
func (j *Journal) Open(prog string, rec obs.Recorder, warn io.Writer) (*core.JournalStore, error) {
	if *j.Path == "" {
		if *j.Resume {
			return nil, fmt.Errorf("%s: -resume requires -journal", prog)
		}
		return nil, nil
	}
	store, err := core.OpenJournalStore(*j.Path, core.JournalStoreOptions{
		Resume:           *j.Resume,
		Recorder:         rec,
		Warn:             warn,
		CompactOverBytes: *j.CompactMB << 20,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", prog, err)
	}
	if *j.Resume && store.Completed() > 0 && warn != nil {
		fmt.Fprintf(warn, "%s: resuming; %d journaled cell(s) will be skipped\n", prog, store.Completed())
	}
	return store, nil
}

// Lease is the shared distributed-fleet flag group: -worker-id and
// -lease-ttl turn the -journal into a coordinator-free work queue shared by
// a fleet of processes (see core.LeaseStore).
type Lease struct {
	WorkerID *string
	TTL      *time.Duration
}

// LeaseGroup registers -worker-id and -lease-ttl on fs.
func LeaseGroup(fs *flag.FlagSet) *Lease {
	return &Lease{
		WorkerID: fs.String("worker-id", "", canon["worker-id"].Usage),
		TTL:      fs.Duration("lease-ttl", 10*time.Second, canon["lease-ttl"].Usage),
	}
}

// WorkersFlag registers the shared -workers pool-cap flag on fs. It is
// separate from LeaseGroup because the sweep commands want it even for
// single-process runs (and the serve command, which has -max-inflight,
// does not want it at all).
func WorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, canon["workers"].Usage)
}

// Open validates the group and opens the shared lease store: nil when no
// -worker-id was given (the run is not distributed), an error for
// -worker-id without -journal. The journal is always opened in resume
// mode — it is shared state, so no worker may truncate it; pair a fresh
// sweep with a fresh journal path (or delete the old file) instead.
func (l *Lease) Open(prog string, j *Journal, rec obs.Recorder, warn io.Writer) (*core.LeaseStore, error) {
	if *l.WorkerID == "" {
		return nil, nil
	}
	if *j.Path == "" {
		return nil, fmt.Errorf("%s: -worker-id requires -journal (the shared work queue)", prog)
	}
	store, err := core.OpenLeaseStore(*j.Path, core.LeaseStoreOptions{
		Worker:   *l.WorkerID,
		TTL:      *l.TTL,
		Recorder: rec,
		Warn:     warn,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", prog, err)
	}
	if store.Completed() > 0 && warn != nil {
		fmt.Fprintf(warn, "%s: joining shared journal; %d completed cell(s) will be adopted\n", prog, store.Completed())
	}
	return store, nil
}

// Fleet is the shared remote-fleet flag group (lrdsweep -fleet and
// lrdcall): -fleet lists lrdserve replica base URLs, the rest tune the
// resilient client — retry attempts, hedging, and the per-replica circuit
// breakers.
type Fleet struct {
	Fleet           *string
	Attempts        *int
	HedgeAfter      *time.Duration
	BreakerFails    *int
	BreakerCooldown *time.Duration
}

// FleetGroup registers -fleet, -attempts, -hedge-after, -breaker-fails,
// and -breaker-cooldown on fs.
func FleetGroup(fs *flag.FlagSet) *Fleet {
	return &Fleet{
		Fleet:           fs.String("fleet", "", canon["fleet"].Usage),
		Attempts:        fs.Int("attempts", 4, canon["attempts"].Usage),
		HedgeAfter:      fs.Duration("hedge-after", 0, canon["hedge-after"].Usage),
		BreakerFails:    fs.Int("breaker-fails", 5, canon["breaker-fails"].Usage),
		BreakerCooldown: fs.Duration("breaker-cooldown", 5*time.Second, canon["breaker-cooldown"].Usage),
	}
}

// Enabled reports whether -fleet was given.
func (f *Fleet) Enabled() bool { return *f.Fleet != "" }

// Replicas returns the parsed -fleet list (comma-separated base URLs).
func (f *Fleet) Replicas() []string {
	var out []string
	for _, r := range strings.Split(*f.Fleet, ",") {
		if r = strings.TrimSpace(r); r != "" {
			out = append(out, r)
		}
	}
	return out
}

// Policy returns the parsed group as a resilient.Policy.
func (f *Fleet) Policy() resilient.Policy {
	return resilient.Policy{
		MaxAttempts:     *f.Attempts,
		HedgeAfter:      *f.HedgeAfter,
		BreakerFailures: *f.BreakerFails,
		BreakerCooldown: *f.BreakerCooldown,
	}
}

// Client builds the resilient fleet client for the parsed group; call only
// when Enabled.
func (f *Fleet) Client(prog string, rec obs.Recorder) (*resilient.Client, error) {
	c, err := resilient.New(f.Replicas(), resilient.Options{Policy: f.Policy(), Recorder: rec})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", prog, err)
	}
	return c, nil
}

// StatusFlags is the shared fleet-status flag group (lrdsweep -status and
// lrdtop): -expect-cells supplies the grid size the journal alone cannot
// know, so the status table can show a true completion percentage.
type StatusFlags struct {
	ExpectCells *int
}

// StatusGroup registers -expect-cells on fs.
func StatusGroup(fs *flag.FlagSet) *StatusFlags {
	return &StatusFlags{ExpectCells: fs.Int("expect-cells", 0, canon["expect-cells"].Usage)}
}

// Options returns the parsed group as fleetstatus Options.
func (s *StatusFlags) Options() fleetstatus.Options {
	return fleetstatus.Options{ExpectedCells: *s.ExpectCells}
}

// Batch is the shared batch-solving flag group: -batch shares solver
// buffers and plans across a run's cells (bit-identical results), -warm
// additionally chains cross-cell warm starts along the buffer axis where a
// sweep supports it (valid bounds, but not bit-identical to cold solves —
// see core.SweepConfig). -warm implies -batch.
type Batch struct {
	Batch *bool
	Warm  *bool
}

// BatchGroup registers -batch and -warm on fs.
func BatchGroup(fs *flag.FlagSet) *Batch {
	return &Batch{
		Batch: fs.Bool("batch", false, canon["batch"].Usage),
		Warm:  fs.Bool("warm", false, canon["warm"].Usage),
	}
}

// BatchFlag registers only -batch on fs, for commands with no warm-startable
// sweep axis (lrdserve).
func BatchFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("batch", false, canon["batch"].Usage)
}

// Retry is the shared per-cell retry flag group.
type Retry struct {
	Retries *int
	Backoff *time.Duration
}

// RetryGroup registers -retries and -retry-backoff on fs.
func RetryGroup(fs *flag.FlagSet) *Retry {
	return &Retry{
		Retries: fs.Int("retries", 1, canon["retries"].Usage),
		Backoff: fs.Duration("retry-backoff", 100*time.Millisecond, canon["retry-backoff"].Usage),
	}
}

// Policy returns the parsed group as a core.RetryPolicy.
func (r *Retry) Policy() core.RetryPolicy {
	return core.RetryPolicy{MaxAttempts: *r.Retries, Backoff: *r.Backoff}
}

// Budget is the shared whole-run budget flag (-timeout).
type Budget struct {
	Timeout *time.Duration
}

// BudgetGroup registers -timeout on fs.
func BudgetGroup(fs *flag.FlagSet) *Budget {
	return &Budget{Timeout: fs.Duration("timeout", 0, canon["timeout"].Usage)}
}

// Context wraps parent with the -timeout budget when one was given. The
// returned cancel func is always non-nil.
func (b *Budget) Context(parent context.Context) (context.Context, context.CancelFunc) {
	if *b.Timeout > 0 {
		return context.WithTimeout(parent, *b.Timeout)
	}
	return context.WithCancel(parent)
}

// PointBudget is the shared per-cell budget flag (-point-timeout), for the
// sweep commands whose cells solve independently.
type PointBudget struct {
	PointTimeout *time.Duration
}

// PointBudgetGroup registers -point-timeout on fs.
func PointBudgetGroup(fs *flag.FlagSet) *PointBudget {
	return &PointBudget{PointTimeout: fs.Duration("point-timeout", 0, canon["point-timeout"].Usage)}
}

// ModelGroup registers the shared -model/-model-params pair on fs and
// returns the closure that parses them (after fs.Parse) into model specs.
// It delegates to internal/source, which owns the registry the flags
// enumerate.
func ModelGroup(fs *flag.FlagSet) func() ([]source.Spec, error) {
	return source.ModelFlags(fs)
}

// FlagSpec is one canonical shared flag: its name, the exact "(default …)"
// fragment flag.PrintDefaults renders for it ("" when the zero default is
// not printed), and its help text.
type FlagSpec struct {
	Name    string
	Default string
	Usage   string
}

// canon is the single source of truth for the shared flags' help text and
// printed defaults. The group constructors above read their usage strings
// from it, so the table cannot drift from the registrations; the per-binary
// drift tests check -h output against it, so no binary can drift from the
// table.
var canon = map[string]FlagSpec{
	"metrics":          {"metrics", "", "write a JSON metrics snapshot to this file on exit"},
	"trace":            {"trace", "", "write solver convergence points and trace spans to this file as JSONL"},
	"progress":         {"progress", "", "print a periodic progress line to stderr"},
	"pprof":            {"pprof", "", "serve net/http/pprof, expvar, and Prometheus /metrics on this address (e.g. localhost:6060)"},
	"expect-cells":     {"expect-cells", "", "expected total grid cells, for a true completion percentage in fleet status (0 = unknown)"},
	"journal":          {"journal", "", "checkpoint every completed cell to this append-only journal"},
	"resume":           {"resume", "", "replay the -journal and skip its completed cells"},
	"compact-mb":       {"compact-mb", "", "auto-compact a resumed -journal larger than this many MiB before replaying (0 = never; single-process journals only)"},
	"workers":          {"workers", "", "cap the in-process sweep worker pool (0 = one per CPU)"},
	"worker-id":        {"worker-id", "", "join the -journal as this named worker of a distributed fleet (leases cells, adopts peers' results)"},
	"lease-ttl":        {"lease-ttl", "(default 10s)", "lease duration before an unrenewed cell claim is presumed dead and re-leased"},
	"retries":          {"retries", "(default 1)", "attempts per cell for transiently failed/degraded cells"},
	"retry-backoff":    {"retry-backoff", "(default 100ms)", "base backoff between per-cell retry attempts"},
	"timeout":          {"timeout", "", "wall-clock budget for the whole run (0 = none)"},
	"point-timeout":    {"point-timeout", "", "wall-clock budget per solver cell (0 = none)"},
	"model":            {"model", `(default "fluid")`, ""}, // usage is registry-derived; checked by name+default only
	"model-params":     {"model-params", "", "model parameters as key=value,… applied to every -model entry"},
	"batch":            {"batch", "", "share solver buffers and plans across cells (results stay bit-identical to unbatched runs)"},
	"warm":             {"warm", "", "chain cross-cell warm starts along the buffer axis (implies -batch; bounds stay valid but differ bitwise from cold solves, so journals are namespaced)"},
	"fleet":            {"fleet", "", "offload solves to these lrdserve replicas (comma-separated base URLs) via the resilient fleet client"},
	"attempts":         {"attempts", "(default 4)", "total tries per fleet request, first attempt included"},
	"hedge-after":      {"hedge-after", "", "duplicate a slow fleet request to a second replica after this delay (0 = no hedging)"},
	"breaker-fails":    {"breaker-fails", "(default 5)", "consecutive failures that open a replica's circuit breaker"},
	"breaker-cooldown": {"breaker-cooldown", "(default 5s)", "how long an open circuit breaker refuses a replica before a half-open probe"},
}

// Canon returns the canonical spec for each named shared flag, failing on
// names outside the table so a drift test cannot silently check nothing.
func Canon(names ...string) ([]FlagSpec, error) {
	out := make([]FlagSpec, 0, len(names))
	for _, n := range names {
		spec, ok := canon[n]
		if !ok {
			return nil, fmt.Errorf("cliflags: %q is not a canonical shared flag", n)
		}
		out = append(out, spec)
	}
	return out, nil
}

// CheckUsage verifies that a binary's -h output registers each named
// canonical flag with the canonical help text and printed default. It is
// the cross-binary drift check: every command's test feeds its own usage
// dump through here, so two binaries can only ever disagree about a shared
// flag by one of them failing its own test.
func CheckUsage(usage string, names ...string) error {
	specs, err := Canon(names...)
	if err != nil {
		return err
	}
	var missing []string
	for _, spec := range specs {
		// PrintDefaults renders "  -name" at the start of a line.
		block := flagBlock(usage, spec.Name)
		switch {
		case block == "":
			missing = append(missing, fmt.Sprintf("%s: flag not registered", spec.Name))
		case spec.Usage != "" && !strings.Contains(block, spec.Usage):
			missing = append(missing, fmt.Sprintf("%s: help text diverged from canon (got %q)", spec.Name, strings.TrimSpace(block)))
		case spec.Default != "" && !strings.Contains(block, spec.Default):
			missing = append(missing, fmt.Sprintf("%s: default diverged from canon %s (got %q)", spec.Name, spec.Default, strings.TrimSpace(block)))
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("cliflags: usage drift:\n  %s", strings.Join(missing, "\n  "))
	}
	return nil
}

// flagBlock extracts the PrintDefaults block for one flag: the "  -name"
// line plus its indented continuation lines.
func flagBlock(usage, name string) string {
	lines := strings.Split(usage, "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "  -"+name+" ") || line == "  -"+name {
			block := line
			for j := i + 1; j < len(lines) && strings.HasPrefix(lines[j], "    "); j++ {
				block += "\n" + lines[j]
			}
			return block
		}
	}
	return ""
}
