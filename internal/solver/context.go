package solver

import (
	"context"
	"errors"
	"strconv"
	"time"

	"lrd/internal/obs"
)

// DegradeReason explains why a Result was returned before the convergence
// target was met. An empty reason means the solve ran to completion.
type DegradeReason string

const (
	// DegradedCanceled: the context was canceled mid-solve.
	DegradedCanceled DegradeReason = "canceled"
	// DegradedDeadline: the context deadline (or Config.MaxDuration budget)
	// expired mid-solve.
	DegradedDeadline DegradeReason = "deadline exceeded"
	// DegradedIterations: the Config.MaxIterations budget was exhausted.
	DegradedIterations DegradeReason = "iteration budget exhausted"
	// DegradedStalled: the bounds stopped moving numerically at the maximum
	// resolution without reaching the RelGap target.
	DegradedStalled DegradeReason = "bounds stalled at maximum resolution"
)

// Retryable classifies a degradation as transient or terminal for retry
// policies (and any caller deciding whether re-running a cell could help):
//
//   - canceled / deadline exceeded — retryable: the solve was cut short by
//     wall-clock circumstances, not by the problem; a fresh attempt with a
//     fresh budget may converge.
//   - iteration budget exhausted / bounds stalled — terminal: the solve is
//     deterministic, so re-running it reproduces the same degradation and
//     burns the same budget.
//
// The empty reason (no degradation) is terminal: there is nothing to retry.
func (r DegradeReason) Retryable() bool {
	switch r {
	case DegradedCanceled, DegradedDeadline:
		return true
	default:
		return false
	}
}

// RetryableError reports whether a solve error could plausibly vanish on a
// retry. Numeric-watchdog trips (ErrNumeric) qualify: the watchdog exists
// to catch transient corruption (an injected fault, a flipped bit), and the
// iterator state it aborted from is discarded, so a fresh solve starts
// clean. A deterministic numeric bug will simply re-trip the watchdog and
// surface after the bounded attempts run out. Everything else — malformed
// inputs, validation failures — is terminal.
func RetryableError(err error) bool {
	return errors.Is(err, ErrNumeric)
}

func degradeReasonFromContext(err error) DegradeReason {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return DegradedDeadline
	case errors.Is(err, context.Canceled):
		return DegradedCanceled
	case err != nil:
		return DegradeReason(err.Error())
	}
	return ""
}

// SolveContext is Solve with cancellation and deadline support. The context
// is checked between Lindley iterations; on cancellation or deadline expiry
// the solver does not discard its work — by Proposition II.1 the bounds are
// valid at every iteration, so it returns the best-so-far bracketed Result
// with Result.Degraded set and a nil error. Errors are returned only for
// malformed inputs or numeric-watchdog violations (see ErrNumeric).
func SolveContext(ctx context.Context, q Queue, cfg Config) (Result, error) {
	it, err := NewIterator(q, cfg)
	if err != nil {
		return Result{}, err
	}
	return it.RunContext(ctx)
}

// SolveModelContext is SolveModel with cancellation and deadline support;
// it follows the same degrade-gracefully contract as SolveContext.
func SolveModelContext(ctx context.Context, m Model, cfg Config) (Result, error) {
	it, err := NewModelIterator(m, cfg)
	if err != nil {
		return Result{}, err
	}
	return it.RunContext(ctx)
}

// RunContext drives the iterate/refine loop to completion, checking ctx
// between Lindley steps. A positive Config.MaxDuration additionally imposes
// a per-solve wall-clock budget on top of any deadline already carried by
// ctx. On cancellation or expiry the current bracket is returned as a
// degraded Result (Converged false, Degraded set, Lower <= Loss <= Upper)
// with a nil error.
func (it *Iterator) RunContext(ctx context.Context) (Result, error) {
	// Correlated tracing: stamp the context's trace id on every TracePoint
	// and bracket the solve in a span. Both are gated so the untraced path
	// (Trace nil, no SpanSink in ctx) stays allocation-free.
	if it.cfg.Trace != nil {
		if tc, ok := obs.TraceFromContext(ctx); ok {
			it.traceID = tc.TraceID
		}
	}
	ctx, finish := obs.StartSpan(ctx, "solver.solve")
	r, err := it.runContext(ctx)
	it.observeFinish(r, err)
	it.release() // recycle batch-mode scratch; no-op without an Arena
	if obs.Traced(ctx) {
		finish(map[string]string{
			"solve":      strconv.FormatUint(it.id, 10),
			"iterations": strconv.Itoa(it.iterations),
			"bins":       strconv.Itoa(it.bins),
			"degraded":   string(r.Degraded),
		})
	}
	return r, err
}

// observeFinish records the per-solve summary telemetry (outcome counters,
// duration, iteration count, final resolution) and emits the final trace
// point. It runs on every RunContext exit path; with no Recorder and no
// Trace configured it is a pair of nil checks.
func (it *Iterator) observeFinish(r Result, err error) {
	if rec := it.cfg.Recorder; rec != nil {
		rec.Add(obs.MetricSolverSolves, 1)
		rec.Observe(obs.MetricSolverSolveSeconds, time.Since(it.start).Seconds())
		rec.Observe(obs.MetricSolverSolveIterations, float64(it.iterations))
		rec.Observe(obs.MetricSolverFinalBins, float64(it.bins))
		// Numeric errors are counted at the offending Step, not here.
		if err == nil && r.Converged {
			rec.Add(obs.MetricSolverConverged, 1)
		}
		if r.Degraded != "" {
			// Labeled allocates; degradation is a per-solve event, not
			// per-step, so the cost is negligible.
			rec.Add(obs.Labeled(obs.MetricSolverDegraded, "reason", string(r.Degraded)), 1)
		}
		if it.warm {
			rec.Add(obs.MetricSolverWarmSolves, 1)
			if saved := it.seedIters - it.iterations; saved > 0 {
				// The seeding neighbor's iteration count is the natural
				// estimate of what this near-identical cell would have cost
				// cold.
				rec.Add(obs.MetricSolverWarmIterSaved, float64(saved))
			}
		}
	}
	if trace := it.cfg.Trace; trace != nil && err == nil {
		trace(it.tracePoint(true))
	}
}

func (it *Iterator) runContext(ctx context.Context) (Result, error) {
	if it.cfg.MaxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, it.cfg.MaxDuration)
		defer cancel()
	}
	const hardStallTol = 1e-12 // below this the n-recursion is numerically fixed
	// Bound values far below the loss floor are roundoff noise; snap them
	// to zero so their jitter does not mask stationarity (otherwise a cell
	// whose lower bound hovers around 1e-17 never triggers refinement).
	snap := func(v float64) float64 {
		if v < it.cfg.LossFloor/100 {
			return 0
		}
		return v
	}
	prevLo, prevHi := snap(it.lowerLoss), snap(it.upperLoss)
	stall, hardStall := 0, 0
	outOfResolution := false
	for it.iterations < it.cfg.MaxIterations {
		if r, ok := it.converged(); ok {
			return r, nil
		}
		if err := ctx.Err(); err != nil {
			return it.degraded(degradeReasonFromContext(err)), nil
		}
		if err := it.Step(); err != nil {
			return Result{}, err
		}
		// Stationarity in n at this resolution: both bounds barely moving.
		loMove := relChange(prevLo, snap(it.lowerLoss))
		hiMove := relChange(prevHi, snap(it.upperLoss))
		prevLo, prevHi = snap(it.lowerLoss), snap(it.upperLoss)
		if loMove < it.cfg.StallTol && hiMove < it.cfg.StallTol {
			stall++
		} else {
			stall = 0
		}
		if loMove < hardStallTol && hiMove < hardStallTol {
			hardStall++
		} else {
			hardStall = 0
		}
		if outOfResolution {
			// Out of resolution. Keep iterating — the bounds may still
			// tighten in n — but give up once they are numerically fixed.
			if hardStall >= 10 {
				break
			}
			continue
		}
		if stall >= 5 {
			stall, hardStall = 0, 0
			if !it.Refine() {
				outOfResolution = true
			}
		}
	}
	if r, ok := it.converged(); ok {
		return r, nil
	}
	reason := DegradedStalled
	if it.iterations >= it.cfg.MaxIterations {
		reason = DegradedIterations
	}
	return it.degraded(reason), nil
}

// degraded packages the current bracket as a valid, clearly tagged partial
// result: the loss is the bracket midpoint, Converged is false, and
// Degraded records why the solve stopped early.
func (it *Iterator) degraded(reason DegradeReason) Result {
	r := it.result((it.lowerLoss+it.upperLoss)/2, it.lowerLoss, it.upperLoss, false)
	r.Degraded = reason
	return r
}
