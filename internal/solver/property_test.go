package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lrd/internal/dist"
	"lrd/internal/fluid"
	"lrd/internal/numerics"
)

// randomModel draws a random, valid, stable queue from a seed.
func randomModel(seed int64) (Queue, bool) {
	rng := rand.New(rand.NewSource(seed))
	// Marginal: 2–6 atoms with random rates in [0, 10).
	n := rng.Intn(5) + 2
	rates := make([]float64, n)
	probs := make([]float64, n)
	var total float64
	for i := range rates {
		rates[i] = rng.Float64() * 10
		probs[i] = rng.Float64() + 0.01
		total += probs[i]
	}
	for i := range probs {
		probs[i] /= total
	}
	m, err := dist.NewMarginal(rates, probs)
	if err != nil {
		return Queue{}, false
	}
	if m.Variance() <= 1e-6 {
		return Queue{}, false
	}
	src, err := fluid.New(m, dist.TruncatedPareto{
		Theta:  0.005 + rng.Float64()*0.1,
		Alpha:  1.05 + rng.Float64()*0.9,
		Cutoff: 0.1 + rng.Float64()*10,
	})
	if err != nil {
		return Queue{}, false
	}
	util := 0.3 + rng.Float64()*0.6
	nbuf := 0.01 + rng.Float64()*0.5
	q, err := NewQueueNormalized(src, util, nbuf)
	if err != nil {
		return Queue{}, false
	}
	return q, true
}

// TestPropertyBoundsAlwaysOrdered: for arbitrary valid models, at every
// iteration the lower loss bound never exceeds the upper, the occupancy
// vectors stay probability distributions, and both bounds stay in [0, 1].
func TestPropertyBoundsAlwaysOrdered(t *testing.T) {
	f := func(seed int64) bool {
		q, ok := randomModel(seed)
		if !ok {
			return true
		}
		it, err := NewIterator(q, Config{InitialBins: 64, MaxBins: 64})
		if err != nil {
			return false
		}
		for n := 0; n < 30; n++ {
			it.Step()
			lo, hi := it.LossBounds()
			if lo > hi+1e-9 || lo < 0 || hi > 1+1e-9 {
				return false
			}
			for _, qv := range [][]float64{it.LowerOccupancy(), it.UpperOccupancy()} {
				if !numerics.AlmostEqual(numerics.KahanSum(qv), 1, 1e-6) {
					return false
				}
				for _, v := range qv {
					if v < 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLossBelowZeroBufferBound: the loss of any finite buffer is
// at most the zero-buffer loss E[(λ−c)⁺]/λ̄ (more buffer can only help).
func TestPropertyLossBelowZeroBufferBound(t *testing.T) {
	f := func(seed int64) bool {
		q, ok := randomModel(seed)
		if !ok {
			return true
		}
		res, err := Solve(q, Config{InitialBins: 64, MaxBins: 1024, MaxIterations: 5000})
		if err != nil {
			return false
		}
		var excess numerics.Accumulator
		m := q.Source.Marginal
		for i := 0; i < m.Len(); i++ {
			if d := m.Rate(i) - q.ServiceRate; d > 0 {
				excess.Add(m.Prob(i) * d)
			}
		}
		zeroBufferLoss := excess.Sum() / m.Mean()
		return res.Upper <= zeroBufferLoss*1.02+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyExpectedLossTable: E[W_l|Q=x] is non-negative, increasing in
// x, and bounded by the mean excess work per epoch.
func TestPropertyExpectedLossTable(t *testing.T) {
	f := func(seed int64) bool {
		q, ok := randomModel(seed)
		if !ok {
			return true
		}
		it, err := NewIterator(q, Config{InitialBins: 32, MaxBins: 32})
		if err != nil {
			return false
		}
		prev := -1.0
		var excess numerics.Accumulator
		m := q.Source.Marginal
		for i := 0; i < m.Len(); i++ {
			if d := m.Rate(i) - q.ServiceRate; d > 0 {
				excess.Add(m.Prob(i) * d * q.Source.Interarrival.Mean())
			}
		}
		// E[W_l|Q] <= E[W⁺] <= Σ π_i (λ_i−c)⁺ E[T] (loss can't exceed the
		// epoch's excess inflow)… using the truncated mean makes this a
		// valid upper bound up to Jensen slack; allow a generous factor.
		cap := excess.Sum()*4 + 1e-9
		for _, x := range numerics.Linspace(0, q.Buffer, 33) {
			v := it.ExpectedLossGivenOccupancy(x)
			if v < prev-1e-12 || v < 0 {
				return false
			}
			if v > cap && v > 1e-9 {
				// The per-epoch loss must stay within the same order as
				// the per-epoch excess inflow.
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWorkCDFIsDistribution: the increment CDF is monotone with
// limits 0 and 1 for arbitrary models.
func TestPropertyWorkCDFIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		q, ok := randomModel(seed)
		if !ok {
			return true
		}
		it, err := NewIterator(q, Config{InitialBins: 16, MaxBins: 16})
		if err != nil {
			return false
		}
		span := (q.Source.Marginal.Max() + q.ServiceRate) * math.Min(q.Source.Interarrival.Cutoff, 1e6)
		prev := -1.0
		for _, x := range numerics.Linspace(-span-1, span+1, 101) {
			v := it.workCDF(x, false)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		// The mixture sums renormalized probabilities, so the limits are
		// exact only to within an ulp of the mass normalization.
		return it.workCDF(span+2, false) > 1-1e-9 && it.workCDF(-span-2, false) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
