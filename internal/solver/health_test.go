package solver

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"lrd/internal/faultinject"
)

// stepUntilError drives the iterator until the watchdog trips or the
// iteration limit is reached, returning the first error.
func stepUntilError(t *testing.T, it *Iterator, limit int) error {
	t.Helper()
	for i := 0; i < limit; i++ {
		if err := it.Step(); err != nil {
			return err
		}
	}
	return nil
}

// TestWatchdogCatchesInjectedNaN: a NaN written into the convolution
// output must surface as a typed not-finite error, never as garbage
// bounds.
func TestWatchdogCatchesInjectedNaN(t *testing.T) {
	defer faultinject.Reset()
	it, err := NewIterator(lossyQueue(t), Config{InitialBins: 128, MaxBins: 128})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.SolverConvolution, func(xs []float64) {
		if len(xs) > 0 {
			xs[len(xs)/2] = math.NaN()
		}
	})
	stepErr := stepUntilError(t, it, 10)
	if stepErr == nil {
		t.Fatal("injected NaN went undetected")
	}
	if !errors.Is(stepErr, ErrNumeric) {
		t.Fatalf("error does not match ErrNumeric: %v", stepErr)
	}
	var ne *NumericError
	if !errors.As(stepErr, &ne) || ne.Kind != HealthNotFinite {
		t.Fatalf("kind = %v, want %v (err %v)", ne.Kind, HealthNotFinite, stepErr)
	}
	if faultinject.Fired(faultinject.SolverConvolution) == 0 {
		t.Fatal("injection hook never fired")
	}
}

// TestWatchdogCatchesMassDrift: halving the convolved mass must trip the
// mass-drift check on the very step it happens.
func TestWatchdogCatchesMassDrift(t *testing.T) {
	defer faultinject.Reset()
	it, err := NewIterator(lossyQueue(t), Config{InitialBins: 128, MaxBins: 128})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.SolverConvolution, func(xs []float64) {
		for i := range xs {
			xs[i] *= 0.5
		}
	})
	stepErr := it.Step()
	var ne *NumericError
	if !errors.As(stepErr, &ne) || ne.Kind != HealthMassDrift {
		t.Fatalf("want mass-drift error, got %v", stepErr)
	}
}

// TestWatchdogCatchesBoundOrderViolation: swapping the loss bounds so the
// lower exceeds the upper must trip the bracket-ordering check.
func TestWatchdogCatchesBoundOrderViolation(t *testing.T) {
	defer faultinject.Reset()
	it, err := NewIterator(lossyQueue(t), Config{InitialBins: 128, MaxBins: 128})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.SolverLossBounds, func(pair []float64) {
		pair[0], pair[1] = 0.9, 0.1
	})
	stepErr := it.Step()
	var ne *NumericError
	if !errors.As(stepErr, &ne) || ne.Kind != HealthBoundOrder {
		t.Fatalf("want bound-order error, got %v", stepErr)
	}
}

// TestWatchdogCatchesMonotonicityViolation: after the lower bound has
// risen, forcing it back to zero (a legal-looking but impossible move)
// must trip the monotone-tightening check.
func TestWatchdogCatchesMonotonicityViolation(t *testing.T) {
	defer faultinject.Reset()
	it, err := NewIterator(lossyQueue(t), Config{InitialBins: 128, MaxBins: 128})
	if err != nil {
		t.Fatal(err)
	}
	for lo, _ := it.LossBounds(); lo <= 1e-6; lo, _ = it.LossBounds() {
		if err := it.Step(); err != nil {
			t.Fatal(err)
		}
		if it.Iterations() > 10000 {
			t.Fatal("lower bound never rose; pick a lossier queue")
		}
	}
	faultinject.Arm(faultinject.SolverLossBounds, func(pair []float64) {
		pair[0] = 0 // lower bound collapses: monotone tightening violated
	})
	stepErr := it.Step()
	var ne *NumericError
	if !errors.As(stepErr, &ne) || ne.Kind != HealthMonotonicity {
		t.Fatalf("want monotonicity error, got %v", stepErr)
	}
}

// TestWatchdogErrorNotCommitted: a rejected step must leave the iterator
// at its last healthy state so callers can still read valid bounds.
func TestWatchdogErrorNotCommitted(t *testing.T) {
	defer faultinject.Reset()
	it, err := NewIterator(lossyQueue(t), Config{InitialBins: 128, MaxBins: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := it.Step(); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := it.LossBounds()
	n := it.Iterations()
	faultinject.Arm(faultinject.SolverConvolution, func(xs []float64) {
		xs[0] = math.Inf(1)
	})
	if err := it.Step(); err == nil {
		t.Fatal("corrupted step accepted")
	}
	lo2, hi2 := it.LossBounds()
	if lo2 != lo || hi2 != hi || it.Iterations() != n {
		t.Fatalf("rejected step mutated state: [%v,%v] n=%d -> [%v,%v] n=%d",
			lo, hi, n, lo2, hi2, it.Iterations())
	}
}

// TestSolveContextSurfacesNumericError: the high-level entry point
// propagates watchdog errors as errors (degraded results are reserved for
// cancellation/budget exhaustion, never numeric corruption).
func TestSolveContextSurfacesNumericError(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.SolverConvolution, func(xs []float64) {
		xs[0] = math.NaN()
	})
	_, err := SolveContext(context.Background(), lossyQueue(t), Config{InitialBins: 128, MaxBins: 128})
	if !errors.Is(err, ErrNumeric) {
		t.Fatalf("want ErrNumeric from SolveContext, got %v", err)
	}
}

// TestConstructionRejectsCorruptIncrementPMF: corrupted increment pmfs are
// caught at iterator construction, before any stepping happens.
func TestConstructionRejectsCorruptIncrementPMF(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.SolverIncrementPMF, func(xs []float64) {
		if len(xs) > 0 {
			xs[0] = math.NaN()
		}
	})
	_, err := NewIterator(lossyQueue(t), Config{InitialBins: 128, MaxBins: 128})
	var ne *NumericError
	if !errors.As(err, &ne) || ne.Kind != HealthNotFinite {
		t.Fatalf("want not-finite construction error, got %v", err)
	}
}

// TestNumericErrorMessage pins the error text's load-bearing fields.
func TestNumericErrorMessage(t *testing.T) {
	e := &NumericError{Kind: HealthMassDrift, Iteration: 7, Bins: 256, Detail: "drift 0.5"}
	msg := e.Error()
	for _, want := range []string{"mass-drift", "iteration 7", "M=256", "drift 0.5"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	if !errors.Is(e, ErrNumeric) {
		t.Fatal("NumericError does not match ErrNumeric")
	}
}
