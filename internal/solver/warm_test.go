package solver

import (
	"context"
	"math"
	"testing"
	"time"

	"lrd/internal/obs"
)

var warmTestCfg = Config{InitialBins: 64, MaxBins: 1024, MaxIterations: 10000}

// TestWarmSeedBracketValid is the core warm-start property: across random
// sources, a solve seeded from its smaller-buffer neighbor still produces a
// valid bracket — the warm bracket and the cold bracket for the same cell
// both contain the true loss, so they must intersect. The bound-order
// watchdog additionally verifies lower <= upper at every warm step.
func TestWarmSeedBracketValid(t *testing.T) {
	tried := 0
	for seed := int64(1); seed <= 30 && tried < 12; seed++ {
		q, ok := randomModel(seed)
		if !ok {
			continue
		}
		tried++
		small := q.Model()
		large := q.Model()
		large.Buffer *= 1.0 + 0.25*float64(seed%4+1) // Δ > 0 in [25%,100%]

		base, err := SolveModel(small, warmTestCfg)
		if err != nil {
			t.Fatalf("seed %d: neighbor solve: %v", seed, err)
		}
		ws := SeedFromResult(small, base)
		if ws == nil {
			t.Fatalf("seed %d: SeedFromResult returned nil for a solver result", seed)
		}

		cold, err := SolveModel(large, warmTestCfg)
		if err != nil {
			t.Fatalf("seed %d: cold solve: %v", seed, err)
		}
		warm, err := SolveModelSeeded(context.Background(), large, warmTestCfg, ws)
		if err != nil {
			t.Fatalf("seed %d: warm solve: %v", seed, err)
		}
		if !warm.Converged && !cold.Converged {
			continue // both degraded; brackets are still checked below
		}
		// Both brackets contain the true loss, so they must overlap (up to
		// the watchdog's own fp tolerance).
		maxLo := math.Max(cold.Lower, warm.Lower)
		minHi := math.Min(cold.Upper, warm.Upper)
		if maxLo > minHi*(1+1e-6)+1e-15 {
			t.Fatalf("seed %d: warm and cold brackets disjoint: cold [%g,%g], warm [%g,%g]",
				seed, cold.Lower, cold.Upper, warm.Lower, warm.Upper)
		}
	}
	if tried < 5 {
		t.Fatalf("only %d valid random models; generator drifted", tried)
	}
}

// TestWarmSeedSameBuffer: Δ = 0 re-seeding (same cell solved again from its
// own stationary vectors) is valid and converges almost immediately.
func TestWarmSeedSameBuffer(t *testing.T) {
	q, ok := randomModel(7)
	if !ok {
		t.Fatal("randomModel(7) invalid")
	}
	m := q.Model()
	cold, err := SolveModel(m, warmTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SolveModelSeeded(context.Background(), m, warmTestCfg, SeedFromResult(m, cold))
	if err != nil {
		t.Fatalf("re-seeded solve: %v", err)
	}
	if cold.Converged && !warm.Converged {
		t.Fatalf("re-seeded solve did not converge (degraded %q)", warm.Degraded)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("re-seeded solve took %d iterations, cold took %d — warm start made it worse",
			warm.Iterations, cold.Iterations)
	}
	maxLo := math.Max(cold.Lower, warm.Lower)
	minHi := math.Min(cold.Upper, warm.Upper)
	if maxLo > minHi*(1+1e-6)+1e-15 {
		t.Fatalf("brackets disjoint: cold [%g,%g], warm [%g,%g]",
			cold.Lower, cold.Upper, warm.Lower, warm.Upper)
	}
}

// TestWarmSeedRejection: incompatible seeds (wrong service rate, descending
// buffer, corrupt mass) fall back to a solve bit-identical to cold and count
// a warm rejection.
func TestWarmSeedRejection(t *testing.T) {
	q, ok := randomModel(11)
	if !ok {
		t.Fatal("randomModel(11) invalid")
	}
	m := q.Model()
	base, err := SolveModel(m, warmTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	good := SeedFromResult(m, base)

	bad := []struct {
		name   string
		mutate func(s Seed) Seed
	}{
		{"service rate mismatch", func(s Seed) Seed { s.ServiceRate *= 1.5; return s }},
		{"descending buffer", func(s Seed) Seed { s.Buffer = m.Buffer * 2; return s }},
		{"mass deficit", func(s Seed) Seed {
			lo := append([]float64(nil), s.Lower...)
			lo[0] += 0.5 // breaks unit mass
			s.Lower = lo
			return s
		}},
	}
	cold, err := SolveModel(m, warmTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range bad {
		s := tc.mutate(*good)
		reg := obs.NewRegistry()
		cfg := warmTestCfg
		cfg.Recorder = reg
		got, err := SolveModelSeeded(context.Background(), m, cfg, &s)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if reg.CounterValue(obs.MetricSolverWarmRejected) != 1 {
			t.Fatalf("%s: warm_rejected = %v, want 1", tc.name,
				reg.CounterValue(obs.MetricSolverWarmRejected))
		}
		if reg.CounterValue(obs.MetricSolverWarmSolves) != 0 {
			t.Fatalf("%s: warm_solves = %v, want 0", tc.name,
				reg.CounterValue(obs.MetricSolverWarmSolves))
		}
		resultsBitIdentical(t, got, cold, tc.name)
	}

	// And the nil seed: a plain cold solve, no rejection counted.
	reg := obs.NewRegistry()
	cfg := warmTestCfg
	cfg.Recorder = reg
	got, err := SolveModelSeeded(context.Background(), m, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reg.CounterValue(obs.MetricSolverWarmRejected) != 0 {
		t.Fatalf("nil seed counted a rejection")
	}
	resultsBitIdentical(t, got, cold, "nil seed")
}

// TestSeedFromResultNil: results without usable occupancy vectors (journal
// adoptions) yield no seed.
func TestSeedFromResultNil(t *testing.T) {
	q, ok := randomModel(13)
	if !ok {
		t.Fatal("randomModel(13) invalid")
	}
	m := q.Model()
	r, err := SolveModel(m, warmTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(r Result) Result
	}{
		{"no occupancy", func(r Result) Result { r.LowerOccupancy, r.UpperOccupancy = nil, nil; return r }},
		{"length mismatch", func(r Result) Result { r.LowerOccupancy = r.LowerOccupancy[:r.Bins]; return r }},
		{"zero step", func(r Result) Result { r.GridStep = 0; return r }},
	} {
		if s := SeedFromResult(m, tc.mutate(r)); s != nil {
			t.Fatalf("%s: expected nil seed", tc.name)
		}
	}
}

// TestWarmSolveAllDeterministic: two warm SolveAll runs over the same grid
// produce bitwise-identical results, and warm metrics record the chains.
func TestWarmSolveAllDeterministic(t *testing.T) {
	q, ok := randomModel(17)
	if !ok {
		t.Fatal("randomModel(17) invalid")
	}
	var models []Model
	for _, scale := range []float64{1.5, 0.75, 1.0, 2.0, 1.25} { // unsorted on purpose
		m := q.Model()
		m.Buffer *= scale
		models = append(models, m)
	}
	run := func() []Result {
		reg := obs.NewRegistry()
		cfg := warmTestCfg
		cfg.Recorder = reg
		b := NewBatch(cfg, BatchOptions{WarmStarts: true})
		out, err := b.SolveAll(context.Background(), models)
		if err != nil {
			t.Fatalf("warm SolveAll: %v", err)
		}
		if got := reg.CounterValue(obs.MetricSolverWarmSolves); got != float64(len(models)-1) {
			t.Fatalf("warm_solves = %v, want %d (all but the chain head)", got, len(models)-1)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		resultsBitIdentical(t, a[i], b[i], "warm determinism")
	}
}

// TestWarmChainIterationProfile measures the speedup signal: total Lindley
// iterations (and wall time) for a 32-cell ascending-buffer column solved
// cold per cell vs warm-chained. Logged for inspection; asserts only that
// warm does strictly less total iteration work.
func TestWarmChainIterationProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profile run")
	}
	q, ok := randomModel(2)
	if !ok {
		t.Fatal("randomModel(2) invalid")
	}
	var models []Model
	for i := 0; i < 32; i++ {
		m := q.Model()
		m.Buffer *= 1.0 + 0.025*float64(i)
		models = append(models, m)
	}
	ctx := context.Background()

	coldStart := time.Now()
	coldBatch := NewBatch(warmTestCfg, BatchOptions{})
	coldRes, err := coldBatch.SolveAll(ctx, models)
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(coldStart)

	warmStart := time.Now()
	warmBatch := NewBatch(warmTestCfg, BatchOptions{WarmStarts: true})
	warmRes, err := warmBatch.SolveAll(ctx, models)
	if err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(warmStart)

	coldIters, warmIters := 0, 0
	for i := range models {
		coldIters += coldRes[i].Iterations
		warmIters += warmRes[i].Iterations
		maxLo := math.Max(coldRes[i].Lower, warmRes[i].Lower)
		minHi := math.Min(coldRes[i].Upper, warmRes[i].Upper)
		if maxLo > minHi*(1+1e-6)+1e-15 {
			t.Fatalf("cell %d: brackets disjoint: cold [%g,%g], warm [%g,%g]",
				i, coldRes[i].Lower, coldRes[i].Upper, warmRes[i].Lower, warmRes[i].Upper)
		}
	}
	t.Logf("cold: %d iters in %v; warm: %d iters in %v (iter ratio %.2fx, time ratio %.2fx)",
		coldIters, coldDur, warmIters, warmDur,
		float64(coldIters)/float64(warmIters), float64(coldDur)/float64(warmDur))
	if warmIters >= coldIters {
		t.Fatalf("warm chain did %d total iterations, cold did %d — warm starts save nothing",
			warmIters, coldIters)
	}
}
