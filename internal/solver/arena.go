package solver

import (
	"sync"

	"lrd/internal/fft"
	"lrd/internal/obs"
)

// Arena pools the solver's per-solve scratch memory — FFT convolution
// workspaces, step output double-buffers, and the grid tables rebuilt on
// every resolution rung — across the many solves of a batch. It is purely an
// allocation optimization: every pooled buffer is either fully overwritten
// or zeroed before use, so results are bit-identical to the unpooled path
// (the batch golden tests assert this). An Arena is safe for concurrent use;
// each solve borrows one scratch set for its whole lifetime and returns it
// when RunContext finishes.
type Arena struct {
	pool sync.Pool // *arenaScratch
}

// NewArena returns an empty Arena. One Arena should be shared by all the
// solves of a sweep or serving process; sharing across unrelated workloads
// is safe but pools their peak scratch sizes together.
func NewArena() *Arena { return &Arena{} }

// borrow takes a scratch set from the pool, counting reuse vs. fresh
// allocation on the borrowing solve's recorder.
func (a *Arena) borrow(rec obs.Recorder) *arenaScratch {
	if v := a.pool.Get(); v != nil {
		if rec != nil {
			rec.Add(obs.MetricSolverArenaReuse, 1)
		}
		return v.(*arenaScratch)
	}
	if rec != nil {
		rec.Add(obs.MetricSolverArenaAlloc, 1)
	}
	return &arenaScratch{}
}

// release returns a scratch set to the pool. Safe on nil.
func (a *Arena) release(s *arenaScratch) {
	if a != nil && s != nil {
		a.pool.Put(s)
	}
}

// arenaScratch is one solve's worth of reusable memory: the FFT convolution
// workspace plus a small free list of float64 slices recycled through the
// resolution ladder (increment pmfs, cdf tables, loss tables, occupancy
// vectors). Owned by a single solve at a time.
type arenaScratch struct {
	conv fft.Scratch
	free [][]float64
}

// maxFreeSlices bounds the retained free list so a pathological solve cannot
// pin unbounded memory in the pool.
const maxFreeSlices = 16

// getFloat returns a zeroed slice of length n, recycling a free-list entry
// with sufficient capacity when one exists. The zeroing makes recycled
// slices indistinguishable from fresh make() allocations.
func (s *arenaScratch) getFloat(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	for i, b := range s.free {
		if cap(b) >= n {
			last := len(s.free) - 1
			s.free[i] = s.free[last]
			s.free[last] = nil
			s.free = s.free[:last]
			b = b[:n]
			clear(b)
			return b
		}
	}
	return make([]float64, n)
}

// putFloat hands a dead slice back for recycling. Safe on nil receivers and
// empty slices; drops the slice when the free list is full.
func (s *arenaScratch) putFloat(b []float64) {
	if s == nil || cap(b) == 0 || len(s.free) >= maxFreeSlices {
		return
	}
	s.free = append(s.free, b)
}
