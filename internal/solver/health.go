package solver

import (
	"errors"
	"fmt"
	"math"
)

// ErrNumeric is the sentinel all numeric-watchdog violations match via
// errors.Is. Use errors.As with *NumericError to inspect the violation
// class and location.
var ErrNumeric = errors.New("solver: numeric invariant violated")

// HealthKind classifies a numeric-watchdog violation.
type HealthKind string

const (
	// HealthNotFinite: a NaN or ±Inf appeared in the occupancy pmfs or the
	// loss bounds.
	HealthNotFinite HealthKind = "not-finite"
	// HealthMassDrift: the probability mass of a convolved occupancy pmf
	// drifted from 1 by more than Config.MassDriftTol before
	// renormalization (roundoff drift is ~1e-15 per step; anything larger
	// indicates corrupted inputs or a broken convolution).
	HealthMassDrift HealthKind = "mass-drift"
	// HealthBoundOrder: the lower loss bound exceeded the upper, violating
	// Proposition II.1's bracket ordering.
	HealthBoundOrder HealthKind = "bound-order"
	// HealthMonotonicity: a bound moved the wrong way between iterations
	// (the lower bound must be non-decreasing and the upper non-increasing
	// in n).
	HealthMonotonicity HealthKind = "monotonicity"
)

// NumericError reports a numeric-health violation detected in the solver
// hot loop. The iterator state is left at the last healthy iteration; the
// offending step is never committed, so callers never observe garbage
// bounds. NumericError matches ErrNumeric under errors.Is.
type NumericError struct {
	Kind      HealthKind
	Iteration int    // Lindley iterations completed when detected
	Bins      int    // resolution M at detection
	Detail    string // human-readable specifics (values involved)
}

func (e *NumericError) Error() string {
	return fmt.Sprintf("solver: numeric invariant violated (%s) at iteration %d, M=%d: %s",
		e.Kind, e.Iteration, e.Bins, e.Detail)
}

// Is makes every NumericError match the ErrNumeric sentinel.
func (e *NumericError) Is(target error) bool { return target == ErrNumeric }

func (it *Iterator) numericErr(kind HealthKind, format string, args ...any) error {
	return &NumericError{Kind: kind, Iteration: it.iterations, Bins: it.bins, Detail: fmt.Sprintf(format, args...)}
}

// Watchdog tolerances. The theoretical invariants hold exactly; these
// margins absorb FFT/summation roundoff (~1e-15 relative per step) with
// three or more orders of magnitude to spare, while real corruption (an
// injected NaN, a lost half of the probability mass, swapped bounds)
// overshoots them by many orders of magnitude.
const (
	boundOrderRelTol = 1e-6
	monotoneRelTol   = 1e-6
	invariantAbsTol  = 1e-12
)

// checkStepHealth validates one proposed Lindley step before it is
// committed: finite mass drifts within tolerance, finite ordered bounds,
// and monotone bound tightening relative to the current (pre-step) bounds.
func (it *Iterator) checkStepHealth(driftL, driftH, newLo, newHi float64) error {
	if math.IsNaN(driftL) || math.IsNaN(driftH) || math.IsInf(driftL, 0) || math.IsInf(driftH, 0) {
		return it.numericErr(HealthNotFinite, "occupancy mass drift not finite (lower %v, upper %v)", driftL, driftH)
	}
	tol := it.cfg.MassDriftTol
	if math.Abs(driftL) > tol || math.Abs(driftH) > tol {
		return it.numericErr(HealthMassDrift, "occupancy mass drifted by (lower %v, upper %v), tolerance %v", driftL, driftH, tol)
	}
	if math.IsNaN(newLo) || math.IsNaN(newHi) || math.IsInf(newLo, 0) || math.IsInf(newHi, 0) {
		return it.numericErr(HealthNotFinite, "loss bounds not finite (lower %v, upper %v)", newLo, newHi)
	}
	if newLo > newHi*(1+boundOrderRelTol)+invariantAbsTol {
		return it.numericErr(HealthBoundOrder, "lower bound %v exceeds upper bound %v", newLo, newHi)
	}
	// Monotone tightening holds for the paper's cold starts (empty/full are
	// sub-fixed-points of the Lindley map) but not for warm starts: a
	// neighbor-seeded vector is a valid stochastic bound yet its loss
	// estimate may transiently move the "wrong" way while remaining a valid
	// bracket (the bound-order check above still verifies Prop. II.1 every
	// step). So the monotonicity checks apply to cold solves only.
	if !it.warm {
		if newLo < it.lowerLoss*(1-monotoneRelTol)-invariantAbsTol {
			return it.numericErr(HealthMonotonicity, "lower bound decreased %v -> %v", it.lowerLoss, newLo)
		}
		if newHi > it.upperLoss*(1+monotoneRelTol)+invariantAbsTol {
			return it.numericErr(HealthMonotonicity, "upper bound increased %v -> %v", it.upperLoss, newHi)
		}
	}
	return nil
}

// validatePMF checks a freshly built increment pmf for finite entries and
// near-unit mass; it guards model construction against corrupted
// distribution inputs.
func (it *Iterator) validatePMF(name string, w []float64, massTol float64) error {
	var sum float64
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return it.numericErr(HealthNotFinite, "%s pmf contains a non-finite entry", name)
		}
		sum += v
	}
	if math.Abs(sum-1) > massTol {
		return it.numericErr(HealthMassDrift, "%s pmf mass %v, want 1 within %v", name, sum, massTol)
	}
	return nil
}
