package solver

import (
	"context"
	"testing"
	"time"
)

// lossyQueue is a queue with substantial loss so bounds move every
// iteration and degraded results carry nonzero brackets.
func lossyQueue(t *testing.T) Queue {
	t.Helper()
	q, err := NewQueueNormalized(onOffSource(t, 2), 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func checkDegraded(t *testing.T, res Result, err error, reason DegradeReason) {
	t.Helper()
	if err != nil {
		t.Fatalf("degraded solve must not error: %v", err)
	}
	if res.Converged {
		t.Fatal("degraded result reports Converged")
	}
	if res.Degraded != reason {
		t.Fatalf("Degraded = %q, want %q", res.Degraded, reason)
	}
	if !(res.Lower <= res.Loss && res.Loss <= res.Upper) {
		t.Fatalf("degraded result does not bracket: lower %v, loss %v, upper %v",
			res.Lower, res.Loss, res.Upper)
	}
	if res.Lower < 0 || res.Upper > 1 {
		t.Fatalf("degraded bounds outside [0, 1]: %v %v", res.Lower, res.Upper)
	}
}

// TestSolveContextDegradedPaths is the table-driven contract test: every
// way a solve can be interrupted yields a valid bracketed Result with the
// matching Degraded reason and a nil error.
func TestSolveContextDegradedPaths(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel2()

	cases := []struct {
		name   string
		ctx    context.Context
		cfg    Config
		reason DegradeReason
	}{
		{"pre-canceled context", canceled, Config{}, DegradedCanceled},
		{"expired deadline", expired, Config{}, DegradedDeadline},
		{"max-duration budget", context.Background(), Config{MaxDuration: time.Nanosecond}, DegradedDeadline},
		{"iteration budget", context.Background(),
			Config{MaxIterations: 3, RelGap: 1e-9, StallTol: 0}, DegradedIterations},
	}
	q := lossyQueue(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := SolveContext(tc.ctx, q, tc.cfg)
			checkDegraded(t, res, err, tc.reason)
		})
	}
}

// TestDegradedMatchesUninterruptedPrefix: a solve stopped by its iteration
// budget reports exactly the bounds an uninterrupted iterator holds after
// the same number of steps — interruption never perturbs the numerics.
func TestDegradedMatchesUninterruptedPrefix(t *testing.T) {
	q := lossyQueue(t)
	// Budgets small enough that no refinement (stall >= 5) can trigger.
	for _, budget := range []int{1, 2, 4} {
		cfg := Config{MaxIterations: budget, RelGap: 1e-12, InitialBins: 256, MaxBins: 256}
		res, err := SolveContext(context.Background(), q, cfg)
		checkDegraded(t, res, err, DegradedIterations)
		if res.Iterations != budget {
			t.Fatalf("budget %d: stopped after %d iterations", budget, res.Iterations)
		}
		ref, err := NewIterator(q, Config{InitialBins: 256, MaxBins: 256})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < budget; i++ {
			if err := ref.Step(); err != nil {
				t.Fatal(err)
			}
		}
		refLo, refHi := ref.LossBounds()
		if res.Lower != refLo || res.Upper != refHi {
			t.Fatalf("budget %d: degraded bounds [%v, %v] != manual bounds [%v, %v]",
				budget, res.Lower, res.Upper, refLo, refHi)
		}
	}
}

// TestSolveContextCompletesWithoutInterference: with a background context
// and no budgets, SolveContext behaves exactly like Solve.
func TestSolveContextCompletesWithoutInterference(t *testing.T) {
	q := lossyQueue(t)
	res, err := SolveContext(context.Background(), q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Degraded != "" {
		t.Fatalf("clean solve came back degraded: converged %v, reason %q", res.Converged, res.Degraded)
	}
	plain, err := Solve(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss != plain.Loss || res.Lower != plain.Lower || res.Upper != plain.Upper {
		t.Fatalf("SolveContext [%v,%v] disagrees with Solve [%v,%v]",
			res.Lower, res.Upper, plain.Lower, plain.Upper)
	}
}

// TestSolveModelContextDegrades covers the general-model entry point.
func TestSolveModelContextDegrades(t *testing.T) {
	q := lossyQueue(t)
	m, err := NewModel(q.Source.Marginal, q.Source.Interarrival, q.ServiceRate, q.Buffer)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveModelContext(ctx, m, Config{})
	checkDegraded(t, res, err, DegradedCanceled)
}

// TestRunContextGenerousDeadline: a deadline far beyond the solve time
// must not degrade the result.
func TestRunContextGenerousDeadline(t *testing.T) {
	q := lossyQueue(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	res, err := SolveContext(ctx, q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Degraded != "" {
		t.Fatalf("generous deadline degraded the solve: %q", res.Degraded)
	}
}
