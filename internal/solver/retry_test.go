package solver

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestDegradeReasonRetryable pins the transient-vs-terminal classification
// the sweep retry policy depends on: wall-clock interruptions are worth a
// fresh attempt, deterministic budget/stall outcomes are not.
func TestDegradeReasonRetryable(t *testing.T) {
	cases := []struct {
		reason DegradeReason
		want   bool
	}{
		{DegradedCanceled, true},
		{DegradedDeadline, true},
		{DegradedIterations, false},
		{DegradedStalled, false},
		{DegradeReason(""), false},
		{DegradeReason("some future reason"), false},
	}
	for _, tc := range cases {
		t.Run(string(tc.reason), func(t *testing.T) {
			if got := tc.reason.Retryable(); got != tc.want {
				t.Fatalf("DegradeReason(%q).Retryable() = %v, want %v", tc.reason, got, tc.want)
			}
		})
	}
}

func TestRetryableError(t *testing.T) {
	numeric := &NumericError{Kind: HealthNotFinite, Iteration: 3, Bins: 128, Detail: "NaN"}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"numeric-sentinel", ErrNumeric, true},
		{"numeric-typed", numeric, true},
		{"numeric-wrapped", fmt.Errorf("cell (0.5, inf): %w", numeric), true},
		{"context-canceled", context.Canceled, false},
		{"plain", errors.New("bad marginal"), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := RetryableError(tc.err); got != tc.want {
				t.Fatalf("RetryableError(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}
