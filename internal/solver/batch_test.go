package solver

import (
	"context"
	"math"
	"testing"
)

// resultsBitIdentical compares two Results field by field, requiring bitwise
// equality of every float (including the occupancy vectors).
func resultsBitIdentical(t *testing.T, got, want Result, label string) {
	t.Helper()
	f64 := func(name string, g, w float64) {
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%s: %s = %v (%x), want %v (%x)", label, name, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
	f64("Loss", got.Loss, want.Loss)
	f64("Lower", got.Lower, want.Lower)
	f64("Upper", got.Upper, want.Upper)
	f64("GridStep", got.GridStep, want.GridStep)
	if got.Bins != want.Bins || got.Iterations != want.Iterations ||
		got.Converged != want.Converged || got.Degraded != want.Degraded {
		t.Fatalf("%s: diagnostics (bins %d/%d, iters %d/%d, conv %v/%v, degraded %q/%q)",
			label, got.Bins, want.Bins, got.Iterations, want.Iterations,
			got.Converged, want.Converged, got.Degraded, want.Degraded)
	}
	if len(got.LowerOccupancy) != len(want.LowerOccupancy) || len(got.UpperOccupancy) != len(want.UpperOccupancy) {
		t.Fatalf("%s: occupancy lengths (%d/%d, %d/%d)", label,
			len(got.LowerOccupancy), len(want.LowerOccupancy), len(got.UpperOccupancy), len(want.UpperOccupancy))
	}
	for j := range got.LowerOccupancy {
		f64("LowerOccupancy", got.LowerOccupancy[j], want.LowerOccupancy[j])
	}
	for j := range got.UpperOccupancy {
		f64("UpperOccupancy", got.UpperOccupancy[j], want.UpperOccupancy[j])
	}
}

// TestBatchSolveBitIdentical is the exact-mode contract: solving through a
// shared Arena — with its pooled FFT workspaces, recycled step buffers, and
// ladder-table reuse — produces Results bit-identical to the plain per-cell
// path, across random models solved back to back so later cells run on
// recycled buffers from earlier ones.
func TestBatchSolveBitIdentical(t *testing.T) {
	cfgs := []Config{
		{InitialBins: 64, MaxBins: 1024, MaxIterations: 10000},
		{InitialBins: 32, MaxBins: 512, RelGap: 0.05, MaxIterations: 10000},
	}
	for ci, base := range cfgs {
		batch := NewBatch(base, BatchOptions{})
		for seed := int64(1); seed <= 10; seed++ {
			q, ok := randomModel(seed)
			if !ok {
				continue
			}
			want, err := SolveModel(q.Model(), base)
			if err != nil {
				t.Fatalf("cfg %d seed %d: cold solve: %v", ci, seed, err)
			}
			got, err := batch.Solve(context.Background(), q.Model())
			if err != nil {
				t.Fatalf("cfg %d seed %d: batch solve: %v", ci, seed, err)
			}
			resultsBitIdentical(t, got, want, "batch vs cold")
		}
	}
}

// TestBatchSolveAllExactMatchesPerCell: exact-mode SolveAll over an
// ascending-buffer grid equals standalone per-cell solves bitwise, and
// returns results in input order.
func TestBatchSolveAllExactMatchesPerCell(t *testing.T) {
	q, ok := randomModel(3)
	if !ok {
		t.Fatal("randomModel(3) invalid")
	}
	cfg := Config{InitialBins: 64, MaxBins: 1024, MaxIterations: 10000}
	var models []Model
	for _, scale := range []float64{2.0, 0.5, 1.0, 1.5} { // deliberately unsorted
		m := q.Model()
		m.Buffer *= scale
		models = append(models, m)
	}
	batch := NewBatch(cfg, BatchOptions{})
	got, err := batch.SolveAll(context.Background(), models)
	if err != nil {
		t.Fatalf("SolveAll: %v", err)
	}
	for i, m := range models {
		want, err := SolveModel(m, cfg)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		resultsBitIdentical(t, got[i], want, "SolveAll exact")
	}
}

// TestArenaStepAllocations: with an Arena, the steady-state Lindley step
// should allocate far less than the allocating path (ideally nothing; the
// recorder-nil hot path is the one that matters).
func TestArenaStepAllocations(t *testing.T) {
	q, ok := randomModel(5)
	if !ok {
		t.Fatal("randomModel(5) invalid")
	}
	cfg := Config{InitialBins: 512, MaxBins: 512, MaxIterations: 10000, Arena: NewArena()}
	it, err := NewModelIterator(q.Model(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // warm up scratch buffers
		if err := it.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := it.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("arena-backed Step allocates %v objects/op, want 0", allocs)
	}
}
