package solver

import (
	"fmt"
	"hash/fnv"
	"strconv"
)

// ConfigHash returns a short stable hash of the configuration fields that
// influence solve results. It is the cache key component shared by the
// sweep journal (internal/core prefixes journal keys with it so a journal
// written under one configuration is never replayed into a run with
// another) and the serving layer's solve cache (internal/serve keys cached
// responses by it so two requests share a cached result only when their
// solver settings are result-identical).
//
// Recorder and Trace are deliberately excluded: instrumentation never
// changes results (the bit-identity tests in internal/obs enforce that),
// so an observed solve and an unobserved one share a hash. MaxDuration is
// included — callers that want budget-independent keys (a converged result
// does not depend on how much budget was left) should zero it before
// hashing.
func ConfigHash(cfg Config) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%g|%g|%d|%g|%s|%g",
		cfg.InitialBins, cfg.MaxBins, cfg.RelGap, cfg.LossFloor,
		cfg.MaxIterations, cfg.StallTol, cfg.MaxDuration, cfg.MassDriftTol)
	return strconv.FormatUint(h.Sum64(), 16)
}
