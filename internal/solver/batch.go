package solver

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Batch is the batch-first entry point: a set of related cells solved
// through one shared Arena (FFT workspaces, step buffers, grid tables),
// optionally chained with cross-cell warm starts.
//
// Two modes:
//
//   - Exact (the default): buffers and plans are shared but every cell
//     starts cold, so each result is bit-identical to a standalone
//     SolveModel call. Sweep TSVs, caches, and journals produced through an
//     exact batch are byte-interchangeable with the per-cell path.
//   - Warm (BatchOptions.WarmStarts): chainable cells additionally seed
//     each other's bound iterations (see Seed). Brackets stay valid at
//     every step — verified at runtime by the bound-order watchdog — but
//     bounds land elsewhere inside the bracket than a cold solve's, so
//     warm results are not bitwise-comparable with cold ones.
type Batch struct {
	cfg  Config
	warm bool
}

// BatchOptions tunes a Batch.
type BatchOptions struct {
	// WarmStarts enables cross-cell warm-start chaining in SolveAll and
	// seeded solving in SolveSeeded. See Batch and Seed for the exactness
	// trade-off.
	WarmStarts bool
}

// NewBatch prepares a batch around cfg, attaching a fresh Arena unless cfg
// already carries one.
func NewBatch(cfg Config, opts BatchOptions) *Batch {
	if cfg.Arena == nil {
		cfg.Arena = NewArena()
	}
	return &Batch{cfg: cfg, warm: opts.WarmStarts}
}

// Config returns the batch's arena-attached solver config; callers wiring
// the batch into existing per-cell plumbing can solve with it directly.
func (b *Batch) Config() Config { return b.cfg }

// WarmStarts reports whether the batch chains cross-cell warm starts.
func (b *Batch) WarmStarts() bool { return b.warm }

// Solve solves one cell cold through the shared arena; bit-identical to
// SolveModelContext without the batch.
func (b *Batch) Solve(ctx context.Context, m Model) (Result, error) {
	return SolveModelContext(ctx, m, b.cfg)
}

// SolveSeeded solves one cell — warm-started from seed when warm mode is on
// and the seed is compatible, cold otherwise — and returns the seed for the
// cell's next larger-buffer neighbor. A nil seed is always a cold solve.
func (b *Batch) SolveSeeded(ctx context.Context, m Model, seed *Seed) (Result, *Seed, error) {
	var (
		r   Result
		err error
	)
	if b.warm && seed != nil {
		r, err = SolveModelSeeded(ctx, m, b.cfg, seed)
	} else {
		r, err = SolveModelContext(ctx, m, b.cfg)
	}
	if err != nil {
		return Result{}, nil, err
	}
	next := SeedFromResult(m, r)
	if next != nil && seed != nil && seed.Iterations > next.Iterations {
		// Keep the chain head's cost as the running cold-cost estimate for
		// the iterations-saved metric.
		next.Iterations = seed.Iterations
	}
	return r, next, nil
}

// SolveAll solves every cell and returns results in input order. In warm
// mode, chainable cells (identical marginal, interarrival law, and service
// rate — only the buffer differs) are grouped into ascending-buffer chains,
// each cell seeding the next; in exact mode every cell solves cold and each
// result is bit-identical to a standalone SolveModel call. Chains run
// sequentially and deterministically: two SolveAll calls over the same
// cells produce identical output.
func (b *Batch) SolveAll(ctx context.Context, models []Model) ([]Result, error) {
	out := make([]Result, len(models))
	for _, chain := range chainModels(models, b.warm) {
		var seed *Seed
		for _, i := range chain {
			r, next, err := b.SolveSeeded(ctx, models[i], seed)
			if err != nil {
				return nil, fmt.Errorf("solver: batch cell %d: %w", i, err)
			}
			out[i] = r
			seed = next
		}
	}
	return out, nil
}

// chainModels partitions cell indices into solve chains: singletons in
// exact mode; same-source groups ordered by ascending buffer in warm mode
// (the direction the Seed coupling argument requires).
func chainModels(models []Model, warm bool) [][]int {
	if !warm {
		chains := make([][]int, len(models))
		for i := range models {
			chains[i] = []int{i}
		}
		return chains
	}
	groups := make(map[string][]int)
	var order []string
	for i, m := range models {
		k := chainKey(m)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	chains := make([][]int, 0, len(order))
	for _, k := range order {
		idx := groups[k]
		sort.SliceStable(idx, func(a, b int) bool {
			return models[idx[a]].Buffer < models[idx[b]].Buffer
		})
		chains = append(chains, idx)
	}
	return chains
}

// chainKey fingerprints the buffer-independent part of a model — marginal,
// interarrival law, service rate — so cells differing only in buffer size
// land in the same warm chain. Bit-exact float encoding avoids formatting
// collisions.
func chainKey(m Model) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "c=%x|", math.Float64bits(m.ServiceRate))
	for i := 0; i < m.Marginal.Len(); i++ {
		fmt.Fprintf(&sb, "%x:%x,", math.Float64bits(m.Marginal.Rate(i)), math.Float64bits(m.Marginal.Prob(i)))
	}
	fmt.Fprintf(&sb, "|%#v", m.Interarrival)
	return sb.String()
}
