package solver

import (
	"math"
	"math/rand"
	"testing"

	"lrd/internal/dist"
	"lrd/internal/fluid"
	"lrd/internal/numerics"
	"lrd/internal/sim"
)

// onOffSource is a two-rate source with mean 1, utilization 0.8 at c = 1.25.
func onOffSource(t *testing.T, cutoff float64) fluid.Source {
	t.Helper()
	m := dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	src, err := fluid.New(m, dist.TruncatedPareto{Theta: 0.05, Alpha: 1.4, Cutoff: cutoff})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// videoSource mimics a multi-rate VBR marginal.
func videoSource(t *testing.T, cutoff float64) fluid.Source {
	t.Helper()
	m := dist.MustMarginal(
		[]float64{4, 6, 8, 10, 12, 14, 16},
		[]float64{0.05, 0.15, 0.25, 0.25, 0.18, 0.08, 0.04},
	)
	src, err := fluid.FromTraceStats(m, 0.83, 0.08, cutoff)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestNewQueueValidation(t *testing.T) {
	src := onOffSource(t, 1)
	if _, err := NewQueue(src, 0, 1); err == nil {
		t.Fatal("want error for zero service rate")
	}
	if _, err := NewQueue(src, 1, 0); err == nil {
		t.Fatal("want error for zero buffer")
	}
	if _, err := NewQueue(src, 1, math.Inf(1)); err == nil {
		t.Fatal("want error for infinite buffer")
	}
	bad := src
	bad.Interarrival.Theta = -1
	if _, err := NewQueue(bad, 1, 1); err == nil {
		t.Fatal("want error for invalid interarrival law")
	}
	if _, err := NewQueue(fluid.Source{}, 1, 1); err == nil {
		t.Fatal("want error for empty marginal")
	}
}

func TestNewQueueNormalized(t *testing.T) {
	src := onOffSource(t, 1)
	q, err := NewQueueNormalized(src, 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !numerics.AlmostEqual(q.Utilization(), 0.8, 1e-12) {
		t.Fatalf("utilization = %v", q.Utilization())
	}
	if !numerics.AlmostEqual(q.NormalizedBuffer(), 0.5, 1e-12) {
		t.Fatalf("normalized buffer = %v", q.NormalizedBuffer())
	}
	if _, err := NewQueueNormalized(src, 1.2, 0.5); err == nil {
		t.Fatal("want error for utilization > 1")
	}
}

func TestIncrementPMFsSumToOne(t *testing.T) {
	for _, cutoff := range []float64{0.5, 5, math.Inf(1)} {
		q, err := NewQueueNormalized(onOffSource(t, cutoff), 0.8, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		it, err := NewIterator(q, Config{InitialBins: 64})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range [][]float64{it.wl, it.wh} {
			if len(w) != 2*it.bins+1 {
				t.Fatalf("w length %d, want %d", len(w), 2*it.bins+1)
			}
			sum := numerics.KahanSum(w)
			if !numerics.AlmostEqual(sum, 1, 1e-9) {
				t.Fatalf("cutoff=%v: pmf mass = %v", cutoff, sum)
			}
			for i, v := range w {
				if v < 0 {
					t.Fatalf("negative pmf entry %v at %d", v, i)
				}
			}
		}
	}
}

func TestIncrementPMFStochasticOrdering(t *testing.T) {
	// The lower pmf rounds W down, the upper rounds up, so the partial sums
	// (CDFs) must satisfy CDF_L(i) >= CDF_H(i) pointwise (W_L ≤st W_H).
	q, err := NewQueueNormalized(onOffSource(t, 2), 0.8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIterator(q, Config{InitialBins: 128})
	if err != nil {
		t.Fatal(err)
	}
	var cl, ch float64
	for i := range it.wl {
		cl += it.wl[i]
		ch += it.wh[i]
		if cl < ch-1e-9 {
			t.Fatalf("ordering violated at bin %d: CDF_L=%v < CDF_H=%v", i, cl, ch)
		}
	}
}

func TestWorkCDFMonotoneAndBounds(t *testing.T) {
	q, err := NewQueueNormalized(videoSource(t, 3), 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIterator(q, Config{InitialBins: 32})
	if err != nil {
		t.Fatal(err)
	}
	xs := numerics.Linspace(-q.Buffer*2, q.Buffer*2, 401)
	prev := -1.0
	for _, x := range xs {
		v := it.workCDF(x, false)
		if v < prev-1e-12 {
			t.Fatalf("workCDF not monotone at %v", x)
		}
		if v < 0 || v > 1 {
			t.Fatalf("workCDF out of range: %v", v)
		}
		if s := it.workCDF(x, true); s > v+1e-12 {
			t.Fatalf("strict CDF exceeds CDF at %v", x)
		}
		prev = v
	}
	// Far tails.
	maxW := (q.Source.Marginal.Max() - q.ServiceRate) * q.Source.Interarrival.Cutoff
	if got := it.workCDF(maxW+1, false); got != 1 {
		t.Fatalf("CDF beyond max W = %v, want 1", got)
	}
	minW := (q.Source.Marginal.Min() - q.ServiceRate) * q.Source.Interarrival.Cutoff
	if got := it.workCDF(minW-1, false); got != 0 {
		t.Fatalf("CDF below min W = %v, want 0", got)
	}
}

func TestExpectedLossGivenOccupancyMatchesQuadrature(t *testing.T) {
	// E[W_l|Q=x] = ∫₀^∞ Pr{W > y + B − x} dy, evaluated numerically from the
	// work ccdf and compared against the closed form.
	q, err := NewQueueNormalized(videoSource(t, 3), 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIterator(q, Config{InitialBins: 32})
	if err != nil {
		t.Fatal(err)
	}
	maxW := (q.Source.Marginal.Max() - q.ServiceRate) * q.Source.Interarrival.Cutoff
	for _, frac := range []float64{0, 0.25, 0.5, 0.9, 1} {
		x := frac * q.Buffer
		want := numerics.Trapezoid(func(y float64) float64 {
			return 1 - it.workCDF(y+q.Buffer-x, false)
		}, 0, maxW, 400000)
		got := it.ExpectedLossGivenOccupancy(x)
		if !numerics.AlmostEqual(got, want, 1e-3) {
			t.Errorf("x=%v: closed form %v, quadrature %v", x, got, want)
		}
	}
}

func TestExpectedLossIncreasingInOccupancy(t *testing.T) {
	q, err := NewQueueNormalized(onOffSource(t, 5), 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIterator(q, Config{InitialBins: 32})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, x := range numerics.Linspace(0, q.Buffer, 101) {
		v := it.ExpectedLossGivenOccupancy(x)
		if v < prev-1e-15 {
			t.Fatalf("E[W_l|Q] not increasing at x=%v", x)
		}
		prev = v
	}
}

func TestBoundsOrderedAndMonotone(t *testing.T) {
	// Proposition II.1: at every n, lower <= upper; the lower bound is
	// non-decreasing and the upper bound non-increasing in n.
	q, err := NewQueueNormalized(onOffSource(t, 1), 0.8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIterator(q, Config{InitialBins: 100})
	if err != nil {
		t.Fatal(err)
	}
	prevLo, prevHi := it.LossBounds()
	for n := 0; n < 50; n++ {
		it.Step()
		lo, hi := it.LossBounds()
		if lo > hi+1e-12 {
			t.Fatalf("n=%d: lower %v exceeds upper %v", n, lo, hi)
		}
		if lo < prevLo-1e-9*math.Max(prevLo, 1e-300) {
			t.Fatalf("n=%d: lower bound decreased: %v -> %v", n, prevLo, lo)
		}
		if hi > prevHi+1e-9*prevHi {
			t.Fatalf("n=%d: upper bound increased: %v -> %v", n, prevHi, hi)
		}
		prevLo, prevHi = lo, hi
	}
}

func TestBoundsTightenWithResolution(t *testing.T) {
	// Running to stationarity at M and 2M: the bracket at 2M must be nested
	// inside (or equal to) the bracket at M.
	q, err := NewQueueNormalized(onOffSource(t, 1), 0.8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(bins int) (lo, hi float64) {
		it, err := NewIterator(q, Config{InitialBins: bins})
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 400; n++ {
			it.Step()
		}
		return it.LossBounds()
	}
	loCoarse, hiCoarse := run(64)
	loFine, hiFine := run(128)
	if loFine < loCoarse-1e-9 {
		t.Fatalf("finer lower bound regressed: %v < %v", loFine, loCoarse)
	}
	if hiFine > hiCoarse+1e-9 {
		t.Fatalf("finer upper bound regressed: %v > %v", hiFine, hiCoarse)
	}
}

func TestOccupancyVectorsAreDistributions(t *testing.T) {
	q, err := NewQueueNormalized(videoSource(t, 1), 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIterator(q, Config{InitialBins: 100})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 30; n++ {
		it.Step()
	}
	for _, qv := range [][]float64{it.LowerOccupancy(), it.UpperOccupancy()} {
		if len(qv) != it.Bins()+1 {
			t.Fatalf("occupancy length %d, want %d", len(qv), it.Bins()+1)
		}
		if s := numerics.KahanSum(qv); !numerics.AlmostEqual(s, 1, 1e-9) {
			t.Fatalf("occupancy mass = %v", s)
		}
		for _, v := range qv {
			if v < 0 {
				t.Fatalf("negative occupancy mass %v", v)
			}
		}
	}
}

func TestSolveAgreesWithMonteCarlo(t *testing.T) {
	// The decisive cross-validation: solver bracket vs an independent
	// Monte-Carlo simulation of the same queue.
	cases := []struct {
		name   string
		src    fluid.Source
		util   float64
		nbuf   float64
		epochs int
	}{
		{"onoff-smallbuf", onOffSource(t, 1), 0.8, 0.1, 4_000_000},
		{"onoff-cutoff5", onOffSource(t, 5), 0.8, 0.3, 4_000_000},
		{"video", videoSource(t, 2), 0.8, 0.2, 4_000_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := NewQueueNormalized(tc.src, tc.util, tc.nbuf)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Solve(q, Config{RelGap: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("solver did not converge: %+v", res)
			}
			mc, err := sim.MonteCarloLoss(tc.src, q.ServiceRate, q.Buffer, tc.epochs, 10000, rand.New(rand.NewSource(77)))
			if err != nil {
				t.Fatal(err)
			}
			got := mc.LossRate()
			// Allow Monte-Carlo noise: the MC point must fall within the
			// solver bracket stretched by 15 % on each side.
			slack := 0.15 * res.Loss
			if got < res.Lower-slack || got > res.Upper+slack {
				t.Fatalf("MC loss %v outside solver bracket [%v, %v]", got, res.Lower, res.Upper)
			}
		})
	}
}

func TestSolveZeroLossRegime(t *testing.T) {
	// Huge buffer, tiny cutoff, low utilization: loss is far below the
	// floor and must be reported as exactly zero (the paper's convention).
	src := onOffSource(t, 0.05)
	q, err := NewQueueNormalized(src, 0.3, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss != 0 || !res.Converged {
		t.Fatalf("want exact zero loss, got %+v", res)
	}
}

func TestSolveLossDecreasesWithBuffer(t *testing.T) {
	src := videoSource(t, 1)
	prev := math.Inf(1)
	for _, nbuf := range []float64{0.05, 0.2, 0.8} {
		q, err := NewQueueNormalized(src, 0.8, nbuf)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(q, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Loss >= prev {
			t.Fatalf("loss did not decrease with buffer: %v at b=%v", res.Loss, nbuf)
		}
		prev = res.Loss
	}
}

func TestSolveLossIncreasesWithUtilization(t *testing.T) {
	src := videoSource(t, 1)
	prev := 0.0
	for _, util := range []float64{0.7, 0.8, 0.9} {
		q, err := NewQueueNormalized(src, util, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(q, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Loss <= prev {
			t.Fatalf("loss did not increase with utilization: %v at ρ=%v", res.Loss, util)
		}
		prev = res.Loss
	}
}

func TestSolveLossIncreasesWithCutoff(t *testing.T) {
	// More correlation (larger Tc) can only hurt: loss should be
	// non-decreasing in the cutoff lag. This is the mechanism behind the
	// correlation-horizon result.
	prev := 0.0
	for _, cutoff := range []float64{0.1, 0.5, 2, 8} {
		src := onOffSource(t, cutoff)
		q, err := NewQueueNormalized(src, 0.8, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(q, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Loss < prev*0.95 { // small tolerance for independent brackets
			t.Fatalf("loss decreased with cutoff: %v at Tc=%v (prev %v)", res.Loss, cutoff, prev)
		}
		prev = res.Loss
	}
}

func TestResultRelativeGap(t *testing.T) {
	r := Result{Lower: 0.9, Upper: 1.1}
	if !numerics.AlmostEqual(r.RelativeGap(), 0.2, 1e-12) {
		t.Fatalf("gap = %v", r.RelativeGap())
	}
	if (Result{}).RelativeGap() != 0 {
		t.Fatal("zero bounds should give zero gap")
	}
}

func TestRefineProjectsExactly(t *testing.T) {
	q, err := NewQueueNormalized(onOffSource(t, 1), 0.8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIterator(q, Config{InitialBins: 32, MaxBins: 128})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 10; n++ {
		it.Step()
	}
	loBefore, hiBefore := it.LossBounds()
	if !it.Refine() {
		t.Fatal("refine should succeed below MaxBins")
	}
	if it.Bins() != 64 {
		t.Fatalf("bins = %d, want 64", it.Bins())
	}
	lo, hi := it.LossBounds()
	// The projection is exact, so the loss bounds are unchanged (the loss
	// table at even fine-grid points equals the coarse table).
	if !numerics.AlmostEqual(lo, loBefore, 1e-9) || !numerics.AlmostEqual(hi, hiBefore, 1e-9) {
		t.Fatalf("refine moved the bounds: (%v,%v) -> (%v,%v)", loBefore, hiBefore, lo, hi)
	}
	if s := numerics.KahanSum(it.LowerOccupancy()); !numerics.AlmostEqual(s, 1, 1e-9) {
		t.Fatalf("mass after refine = %v", s)
	}
	// Refinement stops at MaxBins.
	if !it.Refine() {
		t.Fatal("second refine should still fit (64 -> 128)")
	}
	if it.Refine() {
		t.Fatal("refine beyond MaxBins must fail")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.InitialBins <= 0 || c.MaxBins < c.InitialBins || c.RelGap != 0.2 || c.LossFloor != 1e-10 {
		t.Fatalf("bad defaults: %+v", c)
	}
	// MaxBins below InitialBins gets raised.
	c = Config{InitialBins: 512, MaxBins: 64}.withDefaults()
	if c.MaxBins != 512 {
		t.Fatalf("MaxBins = %d, want clamped to 512", c.MaxBins)
	}
}

func TestInfiniteCutoffSolves(t *testing.T) {
	src := onOffSource(t, math.Inf(1))
	q, err := NewQueueNormalized(src, 0.6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss <= 0 {
		t.Fatalf("LRD on/off source at ρ=0.6 must lose work, got %v", res.Loss)
	}
	if res.Lower > res.Upper {
		t.Fatalf("bounds inverted: %+v", res)
	}
}

func TestSolveModelHyperexponentialAgreesWithMonteCarlo(t *testing.T) {
	// The generalized solver on a Markovian (hyperexponential) epoch law,
	// cross-validated against Monte-Carlo simulation of the same model.
	m := dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	h, err := dist.NewHyperexponential([]float64{0.7, 0.3}, []float64{0.02, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	c := 1.25
	buffer := 0.25 * c
	model, err := NewModel(m, h, c, buffer)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveModel(model, Config{RelGap: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	// Monte Carlo with the same epoch law.
	rng := rand.New(rand.NewSource(123))
	q := sim.Queue{ServiceRate: c, Buffer: buffer}
	var arrived, lost float64
	for i := 0; i < 4_000_000; i++ {
		d := h.Sample(rng)
		r := m.Sample(rng)
		arrived += r * d
		lost += q.Offer(r, d)
	}
	mc := lost / arrived
	slack := 0.15 * res.Loss
	if mc < res.Lower-slack || mc > res.Upper+slack {
		t.Fatalf("MC loss %v outside bracket [%v, %v]", mc, res.Lower, res.Upper)
	}
}

func TestSolveModelValidation(t *testing.T) {
	m := dist.MustMarginal([]float64{1}, []float64{1})
	if _, err := NewModel(m, nil, 1, 1); err == nil {
		t.Fatal("want error on nil interarrival")
	}
	h, err := dist.NewHyperexponential([]float64{1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewModel(m, h, -1, 1); err == nil {
		t.Fatal("want error on negative service rate")
	}
	model, err := NewModel(m, h, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if model.Utilization() != 0.5 || model.NormalizedBuffer() != 0.5 {
		t.Fatalf("model accessors wrong: %v %v", model.Utilization(), model.NormalizedBuffer())
	}
}

func TestResultOccupancyQuantile(t *testing.T) {
	q, err := NewQueueNormalized(onOffSource(t, 1), 0.8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LowerOccupancy) != res.Bins+1 || len(res.UpperOccupancy) != res.Bins+1 {
		t.Fatalf("occupancy vectors missing: %d %d (bins %d)",
			len(res.LowerOccupancy), len(res.UpperOccupancy), res.Bins)
	}
	if res.GridStep <= 0 {
		t.Fatalf("grid step %v", res.GridStep)
	}
	// Quantiles are ordered (lower process is stochastically smaller),
	// monotone in u, and land inside [0, B].
	prevLo, prevHi := -1.0, -1.0
	for _, u := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		lo, hi := res.OccupancyQuantile(u)
		if lo > hi+1e-12 {
			t.Fatalf("u=%v: lower quantile %v above upper %v", u, lo, hi)
		}
		if lo < prevLo || hi < prevHi {
			t.Fatalf("u=%v: quantiles not monotone", u)
		}
		if lo < 0 || hi > q.Buffer+1e-9 {
			t.Fatalf("u=%v: quantiles outside [0, B]: %v %v", u, lo, hi)
		}
		prevLo, prevHi = lo, hi
	}
	// Empty result degrades gracefully.
	if lo, hi := (Result{}).OccupancyQuantile(0.5); lo != 0 || hi != 0 {
		t.Fatal("empty result should give zero quantiles")
	}
}

// TestOccupancyQuantileEdges pins the domain contract: u must lie in
// (0, 1]. Out-of-domain arguments return NaN rather than a misleading
// boundary value; u = 1 is the largest valid probability and u just above
// 0 is valid too.
func TestOccupancyQuantileEdges(t *testing.T) {
	q, err := NewQueueNormalized(onOffSource(t, 1), 0.8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0, -0.25, -1, 1.0000001, 2, math.Inf(1), math.Inf(-1), math.NaN()} {
		lo, hi := res.OccupancyQuantile(u)
		if !math.IsNaN(lo) || !math.IsNaN(hi) {
			t.Fatalf("u=%v: want NaN quantiles, got %v %v", u, lo, hi)
		}
	}
	// u = 1 is in-domain: it is the full-mass quantile, finite and <= B.
	lo, hi := res.OccupancyQuantile(1)
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatal("u=1 must be valid")
	}
	if lo < 0 || hi > q.Buffer+1e-9 {
		t.Fatalf("u=1 quantiles outside [0, B]: %v %v", lo, hi)
	}
	// The smallest representable positive u is in-domain as well.
	lo, hi = res.OccupancyQuantile(math.SmallestNonzeroFloat64)
	if math.IsNaN(lo) || math.IsNaN(hi) || lo < 0 {
		t.Fatalf("tiny positive u misbehaved: %v %v", lo, hi)
	}
	// Out-of-domain on an empty Result is still NaN (domain checked first).
	if lo, hi := (Result{}).OccupancyQuantile(0); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatal("empty result with u=0 should give NaN")
	}
}
