package solver

import (
	"context"
	"math"

	"lrd/internal/numerics"
	"lrd/internal/obs"
)

// Seed carries a solved cell's final occupancy vectors so a neighboring
// cell — same source, same service rate, equal or larger buffer — can start
// its bound iteration from them instead of from the empty/full extremes.
//
// Validity (the cross-cell generalization of Prop. II.1's warm restart):
// let stat(B) be the stationary occupancy at buffer B and B' <= B the
// seeding cell's buffer.
//
//   - Lower: the bounded Lindley recursion is pathwise monotone in the
//     buffer cap, so stat(B') <=st stat(B). The neighbor's lower vector is
//     <=st stat(B'), and projecting its mass down onto the coarser/finer
//     grid preserves <=st. A lower chain started from any vector <=st
//     stat(B) stays <=st stat(B) (the down-rounded kernel is stochastically
//     monotone and its image of stat lies below stat), so every iterate's
//     loss estimate remains a valid lower bound.
//   - Upper: coupling the two recursions with a Δ = B−B' shift gives
//     Q_B(n) <= Q_B'(n) + Δ pathwise, so stat(B) <=st stat(B') + Δ. The
//     neighbor's upper vector shifted up by Δ, projected upward onto the
//     grid and capped at B, is therefore >=st stat(B), and the up-rounded
//     kernel preserves that dominance.
//
// No such ordering exists along the cutoff axis (the work increment
// T·(λ−c) takes both signs), so seeds only chain across buffer sizes.
//
// The seeded iterates are valid brackets at every step but are not the
// paper's monotone-from-below/above sequences, so warm results can differ
// from a cold solve in where inside the bracket they stop: bounds are
// warm-start-dependent in their low-order digits, and warm mode is
// therefore opt-in (the exact batch mode shares buffers only).
type Seed struct {
	// ServiceRate identifies the seeding cell's server; seeding across
	// different service rates (or sources — the caller's contract) is
	// invalid and rejected.
	ServiceRate float64
	// Buffer is the seeding cell's B' in work units; must be <= the seeded
	// cell's buffer.
	Buffer float64
	// Step and Bins describe the seeding grid: vectors of length Bins+1
	// over {0, Step, …, Bins·Step}.
	Step float64
	Bins int
	// Lower and Upper are the seeding solve's final occupancy pmfs.
	Lower, Upper []float64
	// Iterations is the seeding solve's iteration count (metrics only: the
	// natural estimate of what the seeded cell would have cost cold).
	Iterations int
}

// SeedFromResult packages a solve's result as a warm-start seed for its
// grid neighbors. m must be the model that produced r. Returns nil when the
// result carries no occupancy vectors (never the case for solver results,
// but journal-adopted points have none — a chain break).
func SeedFromResult(m Model, r Result) *Seed {
	if r.Bins < 1 || r.GridStep <= 0 ||
		len(r.LowerOccupancy) != r.Bins+1 || len(r.UpperOccupancy) != r.Bins+1 {
		return nil
	}
	return &Seed{
		ServiceRate: m.ServiceRate,
		Buffer:      m.Buffer,
		Step:        r.GridStep,
		Bins:        r.Bins,
		Lower:       r.LowerOccupancy,
		Upper:       r.UpperOccupancy,
		Iterations:  r.Iterations,
	}
}

// compatible reports whether the seed can validly warm-start a solve of m:
// same service rate, seeding buffer not larger, sane grid, and near-unit
// mass in both vectors.
func (s *Seed) compatible(m Model) bool {
	if s == nil || s.ServiceRate != m.ServiceRate || !(s.Buffer <= m.Buffer) {
		return false
	}
	if s.Bins < 1 || !(s.Step > 0) || math.IsInf(s.Step, 0) ||
		len(s.Lower) != s.Bins+1 || len(s.Upper) != s.Bins+1 {
		return false
	}
	const massTol = 1e-6
	for _, v := range [2][]float64{s.Lower, s.Upper} {
		sum := numerics.KahanSum(v)
		if math.IsNaN(sum) || math.Abs(sum-1) > massTol {
			return false
		}
	}
	return true
}

// NewModelIteratorSeeded is NewModelIterator with a cross-cell warm start:
// the iterator begins at (near) the seed's resolution — skipping the
// coarse rungs of the M-doubling ladder — with its occupancy vectors
// projected from the seed as described on Seed. An incompatible or nil
// seed falls back to a cold NewModelIterator and counts a warm rejection.
func NewModelIteratorSeeded(m Model, cfg Config, seed *Seed) (*Iterator, error) {
	if !seed.compatible(m) {
		if rec := cfg.Recorder; rec != nil && seed != nil {
			rec.Add(obs.MetricSolverWarmRejected, 1)
		}
		return NewModelIterator(m, cfg)
	}
	def := cfg.withDefaults()
	// Start at the ladder rung nearest the seed's resolution from below.
	bins := def.InitialBins
	for bins*2 <= seed.Bins && bins*2 <= def.MaxBins {
		bins *= 2
	}
	it, err := newIterator(m, cfg, bins)
	if err != nil {
		return nil, err
	}
	it.seedOccupancies(seed)
	it.lowerLoss = it.lossOf(it.ql)
	it.upperLoss = it.lossOf(it.qh)
	if it.lowerLoss > it.upperLoss*(1+boundOrderRelTol)+invariantAbsTol {
		// Pathological seed (possible only if the caller's same-source
		// contract was broken): discard it and start cold at this rung —
		// still a valid solve, just without the ladder's coarse rungs.
		if rec := cfg.Recorder; rec != nil {
			rec.Add(obs.MetricSolverWarmRejected, 1)
		}
		clear(it.ql)
		clear(it.qh)
		it.ql[0] = 1
		it.qh[it.bins] = 1
		it.lowerLoss = it.lossOf(it.ql)
		it.upperLoss = it.lossOf(it.qh)
		return it, nil
	}
	it.warm = true
	it.seedIters = seed.Iterations
	return it, nil
}

// seedOccupancies projects the seed vectors onto this iterator's grid:
// lower mass moves down (preserving <=st), upper mass is shifted up by
// Δ = B−B', moved up to the next grid point, and capped at B. Both vectors
// are renormalized to unit mass exactly as lindleyStep renormalizes.
func (it *Iterator) seedOccupancies(seed *Seed) {
	m, d := it.bins, it.d
	delta := it.model.Buffer - seed.Buffer
	for j, p := range seed.Lower {
		if p == 0 {
			continue
		}
		x := float64(j) * seed.Step
		idx := int(x / d)
		if idx > m {
			idx = m
		}
		// Guard the floor against the division rounding up across an
		// integer: the target grid point must not exceed x.
		for idx > 0 && float64(idx)*d > x {
			idx--
		}
		it.ql[idx] += p
	}
	for j, p := range seed.Upper {
		if p == 0 {
			continue
		}
		x := float64(j)*seed.Step + delta
		idx := int(math.Ceil(x / d))
		// Guard the ceil against the division rounding down: the target
		// grid point must not fall below x (unless capped at B, which is
		// the valid min(B,·) projection).
		for idx < m && float64(idx)*d < x {
			idx++
		}
		if idx > m {
			idx = m
		}
		if idx < 0 {
			idx = 0
		}
		it.qh[idx] += p
	}
	for _, q := range [2][]float64{it.ql, it.qh} {
		if total := numerics.KahanSum(q); total > 0 {
			inv := 1 / total
			for i := range q {
				q[i] *= inv
			}
		}
	}
}

// SolveModelSeeded is SolveModelContext with a cross-cell warm start; see
// NewModelIteratorSeeded. It follows the same degrade-gracefully contract.
func SolveModelSeeded(ctx context.Context, m Model, cfg Config, seed *Seed) (Result, error) {
	it, err := NewModelIteratorSeeded(m, cfg, seed)
	if err != nil {
		return Result{}, err
	}
	return it.RunContext(ctx)
}
