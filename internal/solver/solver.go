// Package solver implements the numerical procedure of Grossglauser &
// Bolot (SIGCOMM '96, §II) for the long-term loss rate of a finite-buffer
// fluid queue fed by the cutoff-correlated fluid source.
//
// The queue occupancy at arrival instants obeys the bounded Lindley
// recursion Q(n+1) = max(0, min(B, Q(n)+W(n))) (Eq. 9) with i.i.d. work
// increments W(n) = T_n·(λ(n)−c). The solver discretizes [0, B] into M bins
// of width d = B/M and iterates two coupled recursions (Eq. 18):
//
//   - a lower process Q_L: increments rounded down (Eq. 21), started empty;
//   - an upper process Q_H: increments rounded up (Eq. 22), started full.
//
// By Proposition II.1 the induced loss rates bracket the true loss at every
// iteration, the lower bound increasing and the upper bound decreasing in
// both the iteration count n and the resolution M. The per-step convolution
// (Eq. 19) runs in O(M log M) via FFT above a crossover size. When the
// bounds stop tightening at a given resolution, M is doubled and the
// iteration warm-restarts from the coarse occupancy vectors (footnote 3 of
// the paper).
//
// # Robustness contract
//
// Every solve is interruptible, budgeted, and self-checking:
//
//   - Cancellation. SolveContext, SolveModelContext, and Iterator.RunContext
//     check their context between Lindley iterations. Because the bounds are
//     valid at every iteration (Prop. II.1), cancellation or deadline expiry
//     never discards work: the solver returns the best-so-far bracketed
//     Result with Converged=false and Result.Degraded recording the reason,
//     and a nil error. A degraded Result still brackets the true loss:
//     Lower <= true loss <= Upper, and Lower <= Loss <= Upper (the midpoint).
//   - Budgets. Config.MaxDuration imposes a per-solve wall-clock budget,
//     Config.MaxIterations an iteration budget; exhausting either degrades
//     gracefully the same way instead of erroring or hanging.
//   - Numeric health. A watchdog in the hot loop rejects NaN/Inf values,
//     occupancy-mass drift beyond Config.MassDriftTol, bracket inversion
//     (lower > upper), and non-monotone bound movement. Violations surface
//     as *NumericError (matching the ErrNumeric sentinel) and the offending
//     step is never committed, so callers never observe garbage bounds. The
//     internal/faultinject package deliberately corrupts these quantities in
//     tests to prove the watchdog catches what it claims.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"lrd/internal/dist"
	"lrd/internal/faultinject"
	"lrd/internal/fft"
	"lrd/internal/fluid"
	"lrd/internal/numerics"
	"lrd/internal/obs"
)

// Model is the general system the procedure solves: a finite-buffer
// constant-rate server fed by a renewal-modulated fluid source whose epoch
// lengths follow any dist.Interarrival law. The paper instantiates it with
// the truncated-Pareto law (use Queue for that convenience), but the same
// machinery solves e.g. the hyperexponential (Markovian) baseline of §IV.
type Model struct {
	Marginal     dist.Marginal
	Interarrival dist.Interarrival
	ServiceRate  float64 // c, in work units per second (e.g. Mb/s)
	Buffer       float64 // B, in work units (e.g. Mb); Buffer = c·(normalized buffer)
}

// NewModel validates and returns a Model.
func NewModel(marginal dist.Marginal, inter dist.Interarrival, serviceRate, buffer float64) (Model, error) {
	if !(serviceRate > 0) {
		return Model{}, fmt.Errorf("solver: service rate %v, need > 0", serviceRate)
	}
	if !(buffer > 0) || math.IsInf(buffer, 1) {
		return Model{}, fmt.Errorf("solver: buffer %v, need finite > 0", buffer)
	}
	if marginal.Len() == 0 {
		return Model{}, errors.New("solver: empty marginal")
	}
	if inter == nil {
		return Model{}, errors.New("solver: nil interarrival law")
	}
	if err := inter.Validate(); err != nil {
		return Model{}, err
	}
	return Model{Marginal: marginal, Interarrival: inter, ServiceRate: serviceRate, Buffer: buffer}, nil
}

// Source is the structural contract the solver needs from any traffic
// model: the stationary rate marginal, the epoch-length law, and the mean
// rate (for utilization normalization). The internal/source package's
// model registry produces values satisfying it; the interface lives here
// (rather than importing internal/source, which depends on packages built
// on this one) so the dependency points outward only.
type Source interface {
	Marginal() dist.Marginal
	Interarrival() dist.Interarrival
	MeanRate() float64
}

// NewModelFromSource builds a validated Model from any traffic source in
// absolute units (service rate, buffer).
func NewModelFromSource(src Source, serviceRate, buffer float64) (Model, error) {
	if src == nil {
		return Model{}, errors.New("solver: nil source")
	}
	return NewModel(src.Marginal(), src.Interarrival(), serviceRate, buffer)
}

// NewModelNormalized builds a Model from a utilization target and a
// normalized buffer size in seconds — the parameterization used throughout
// the paper's experiments, generalized from Queue to any Source. The
// arithmetic (c = mean rate / utilization, B = normalized buffer · c) is
// identical to NewQueueNormalized, so a fluid-backed Source yields a
// bit-identical model.
func NewModelNormalized(src Source, utilization, normalizedBuffer float64) (Model, error) {
	if src == nil {
		return Model{}, errors.New("solver: nil source")
	}
	if !(utilization > 0 && utilization < 1) {
		return Model{}, fmt.Errorf("solver: utilization %v outside (0, 1)", utilization)
	}
	c := src.MeanRate() / utilization
	return NewModelFromSource(src, c, normalizedBuffer*c)
}

// Utilization returns ρ = λ̄/c.
func (m Model) Utilization() float64 { return m.Marginal.Mean() / m.ServiceRate }

// NormalizedBuffer returns B/c in seconds.
func (m Model) NormalizedBuffer() float64 { return m.Buffer / m.ServiceRate }

// Queue describes the paper's system: the fluid queue fed by the
// truncated-Pareto cutoff-correlated source (a Model specialization).
type Queue struct {
	Source      fluid.Source
	ServiceRate float64 // c, in work units per second (e.g. Mb/s)
	Buffer      float64 // B, in work units (e.g. Mb); Buffer = c·(normalized buffer)
}

// Model returns the general-solver view of the queue.
func (q Queue) Model() Model {
	return Model{
		Marginal:     q.Source.Marginal,
		Interarrival: q.Source.Interarrival,
		ServiceRate:  q.ServiceRate,
		Buffer:       q.Buffer,
	}
}

// NewQueue validates and returns a Queue.
func NewQueue(src fluid.Source, serviceRate, buffer float64) (Queue, error) {
	if !(serviceRate > 0) {
		return Queue{}, fmt.Errorf("solver: service rate %v, need > 0", serviceRate)
	}
	if !(buffer > 0) || math.IsInf(buffer, 1) {
		return Queue{}, fmt.Errorf("solver: buffer %v, need finite > 0", buffer)
	}
	if src.Marginal.Len() == 0 {
		return Queue{}, errors.New("solver: queue source has empty marginal")
	}
	if err := src.Interarrival.Validate(); err != nil {
		return Queue{}, err
	}
	return Queue{Source: src, ServiceRate: serviceRate, Buffer: buffer}, nil
}

// NewQueueNormalized builds a Queue from a utilization target and a
// normalized buffer size in seconds (buffer capacity divided by service
// rate), the parameterization used throughout the paper's experiments.
func NewQueueNormalized(src fluid.Source, utilization, normalizedBuffer float64) (Queue, error) {
	c, err := src.ServiceRateForUtilization(utilization)
	if err != nil {
		return Queue{}, err
	}
	return NewQueue(src, c, normalizedBuffer*c)
}

// Utilization returns ρ = λ̄/c.
func (q Queue) Utilization() float64 { return q.Source.MeanRate() / q.ServiceRate }

// NormalizedBuffer returns B/c in seconds.
func (q Queue) NormalizedBuffer() float64 { return q.Buffer / q.ServiceRate }

// Config tunes the solver. The zero value selects the defaults the paper's
// experimental setup describes (§III): a 20 % relative gap target between
// the bounds and a 1e-10 loss floor below which zero loss is reported.
type Config struct {
	// InitialBins is the starting resolution M. Default 128.
	InitialBins int
	// MaxBins caps the resolution-doubling ladder. Default 32768.
	MaxBins int
	// RelGap is the convergence target: the solver stops when
	// (upper−lower) <= RelGap·(upper+lower)/2. Default 0.2 (the paper's 20%).
	RelGap float64
	// LossFloor: if the upper bound falls below it, the loss is reported as
	// zero (paper: 1e-10, "below practical importance").
	LossFloor float64
	// MaxIterations caps the total number of Lindley iterations across all
	// resolutions. Default 200000.
	MaxIterations int
	// StallTol declares the n-iteration stationary at the current M when
	// both bounds move by less than StallTol relative per step. Default 1e-4.
	StallTol float64
	// MaxDuration is a per-solve wall-clock budget. When positive, RunContext
	// (and SolveContext/SolveModelContext) stop after it elapses and return
	// the best-so-far bracket as a degraded Result. Zero means no budget.
	MaxDuration time.Duration
	// MassDriftTol is the numeric-health watchdog's tolerance for occupancy
	// pmf mass drift per convolution step before renormalization. Drift
	// beyond it returns a *NumericError instead of silently renormalizing
	// corrupted mass. Default 1e-6 (roundoff drift is ~1e-15).
	MassDriftTol float64
	// Recorder receives solver telemetry (step counts and timings, bound
	// gap, mass drift, convolution path, refinements, per-solve outcomes;
	// see internal/obs for the metric names). A nil Recorder — the default
	// — disables instrumentation entirely: the hot loop pays one nil check
	// and allocates nothing, and results are bit-identical either way.
	Recorder obs.Recorder
	// Trace, when non-nil, is called once per committed Lindley iteration
	// with the current convergence state (and once more when the solve
	// finishes). The CLIs' -trace flag wires this to a JSONL writer. Like
	// Recorder, a nil Trace changes nothing about the solve.
	Trace func(TracePoint)
	// Arena, when non-nil, lends the solve reusable scratch memory (FFT
	// workspaces, step buffers, grid tables) shared with the other solves
	// of a batch. Like Recorder it is excluded from ConfigHash and changes
	// no result bit: every pooled buffer is zeroed or fully overwritten
	// before use. The iterator borrows one scratch set for its lifetime and
	// returns it when RunContext finishes — do not keep calling Step on an
	// arena-backed iterator after RunContext has returned.
	Arena *Arena
}

// TracePoint is one record of a solve's convergence trace: the bracketing
// loss bounds after a committed Lindley iteration. By Proposition II.1 the
// Lower series is non-decreasing and the Upper series non-increasing
// within a solve; Bins jumps record the M-doubling warm restarts. Solve
// disambiguates interleaved traces when a sweep solves cells concurrently
// (ids are unique within the process, in creation order).
type TracePoint struct {
	// Solve identifies the solve (Iterator) this point belongs to.
	Solve uint64 `json:"solve"`
	// Iteration counts committed Lindley steps (1-based after the first).
	Iteration int `json:"iter"`
	// Bins is the resolution M at this iteration.
	Bins int `json:"bins"`
	// Lower and Upper are the loss-rate bounds after this iteration.
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
	// Elapsed is the wall time in seconds since the Iterator was created.
	Elapsed float64 `json:"elapsed_s"`
	// Final marks the last point of a solve (emitted from RunContext).
	Final bool `json:"final,omitempty"`
	// Trace is the correlated trace id (obs.TraceContext) of the request
	// or sweep cell that drove this solve, when the context carried one.
	Trace string `json:"trace,omitempty"`
}

// solveSeq numbers Iterators process-wide so concurrent solves' trace
// points can be told apart in one JSONL stream.
var solveSeq atomic.Uint64

func (c Config) withDefaults() Config {
	if c.InitialBins <= 0 {
		c.InitialBins = 128
	}
	if c.MaxBins <= 0 {
		c.MaxBins = 32768
	}
	if c.MaxBins < c.InitialBins {
		c.MaxBins = c.InitialBins
	}
	if c.RelGap <= 0 {
		c.RelGap = 0.2
	}
	if c.LossFloor <= 0 {
		c.LossFloor = 1e-10
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 200000
	}
	if c.StallTol <= 0 {
		c.StallTol = 1e-4
	}
	if c.MassDriftTol <= 0 {
		c.MassDriftTol = 1e-6
	}
	return c
}

// Result reports the solved loss rate and diagnostics.
type Result struct {
	// Loss is the reported loss rate: the midpoint of the final bounds, or
	// zero when the upper bound fell below the loss floor.
	Loss float64
	// Lower and Upper are the final bound values l(Q_L^M(n)) and l(Q_H^M(n)).
	Lower, Upper float64
	// Bins is the final resolution M.
	Bins int
	// Iterations is the total number of Lindley steps performed.
	Iterations int
	// Converged reports whether the RelGap target (or the loss floor) was
	// met before exhausting MaxBins/MaxIterations.
	Converged bool
	// Degraded is nonempty when the solve stopped before its convergence
	// target — context cancellation, deadline or budget expiry, or a
	// numeric stall — and records why. A degraded result is still a valid
	// bracket: Lower <= true loss <= Upper holds at every iteration
	// (Prop. II.1), and Loss is the bracket midpoint.
	Degraded DegradeReason
	// GridStep is the final quantization d = B/M in work units.
	GridStep float64
	// LowerOccupancy and UpperOccupancy are the final occupancy pmfs of
	// the two bound processes over the grid {0, d, …, B} (at arrival
	// instants). They bracket the stationary occupancy distribution and
	// yield delay quantiles via OccupancyQuantile.
	LowerOccupancy, UpperOccupancy []float64
}

// OccupancyQuantile returns conservative (lower, upper) estimates of the
// u-quantile of the stationary queue occupancy, in work units, read from
// the two bound distributions. The delay quantile follows by dividing by
// the service rate. u must lie in (0, 1]; any other value (including NaN)
// yields (NaN, NaN) rather than a silently wrong quantile.
func (r Result) OccupancyQuantile(u float64) (lower, upper float64) {
	if !(u > 0 && u <= 1) {
		return math.NaN(), math.NaN()
	}
	quantile := func(pmf []float64) float64 {
		var acc float64
		for j, p := range pmf {
			acc += p
			if acc >= u {
				return float64(j) * r.GridStep
			}
		}
		return float64(len(pmf)-1) * r.GridStep
	}
	if len(r.LowerOccupancy) == 0 || len(r.UpperOccupancy) == 0 {
		return 0, 0
	}
	// The lower process is stochastically smaller: its quantile is the
	// lower estimate.
	return quantile(r.LowerOccupancy), quantile(r.UpperOccupancy)
}

// RelativeGap returns (Upper−Lower)/midpoint. When both bounds are exactly
// zero (a converged loss-floor result) the gap is 0, not NaN — callers can
// always compare it against a threshold without a NaN guard.
func (r Result) RelativeGap() float64 {
	return relativeGap(r.Lower, r.Upper)
}

// Solve computes the stationary loss rate of the paper's queue.
func Solve(q Queue, cfg Config) (Result, error) {
	it, err := NewIterator(q, cfg)
	if err != nil {
		return Result{}, err
	}
	return it.Run()
}

// SolveModel computes the stationary loss rate of a general Model.
func SolveModel(m Model, cfg Config) (Result, error) {
	it, err := NewModelIterator(m, cfg)
	if err != nil {
		return Result{}, err
	}
	return it.Run()
}

// Iterator exposes the solver's state step by step, which the paper's
// Figure 2 uses to show the occupancy bounds after n = 5, 10, 30
// iterations. Most callers should use Solve.
type Iterator struct {
	model Model
	cfg   Config

	bins int       // current M
	d    float64   // grid step B/M
	wl   []float64 // lower-rounded increment pmf, index i ↦ w_L(i−M), length 2M+1
	wh   []float64 // upper-rounded increment pmf
	ql   []float64 // lower occupancy pmf over {0, d, …, B}, length M+1
	qh   []float64 // upper occupancy pmf
	loss []float64 // E[W_l | Q = j·d] for j = 0..M

	arrivalWork float64 // λ̄·E[T], the denominator of Eq. (13)
	iterations  int
	lowerLoss   float64
	upperLoss   float64

	id      uint64    // process-unique solve id for trace disambiguation
	start   time.Time // Iterator creation time (trace/metrics wall clock)
	traceID string    // correlated trace id stamped on every TracePoint

	// Trace envelope: the tightest bracket seen so far. Every iteration's
	// bounds bracket the true loss (Prop. II.1), so their running
	// intersection is a valid bracket that is exactly monotone — unlike
	// the raw per-step values, whose sub-roundoff jitter the watchdog
	// tolerates (monotoneRelTol) but a strict trace reader would not.
	traceLo float64
	traceHi float64

	// Batch-mode state (zero outside batch mode). scratch is the arena
	// scratch set borrowed for this solve's lifetime; qlNext/qhNext are the
	// step output double-buffers; cl/cc retain the work-increment cdf
	// tables so a Refine recomputes only the odd grid points (the even ones
	// coincide bitwise with the coarse grid's).
	arena          *Arena
	scratch        *arenaScratch
	qlNext, qhNext []float64
	cl, cc         []float64

	// Warm-start state: warm marks a solve seeded from a neighbor cell's
	// occupancy vectors (see Seed). Seeded vectors are valid stochastic
	// bounds but not sub-fixed-points of the Lindley map, so the per-step
	// monotonicity watchdog is gated off for warm solves; the bracket-order
	// watchdog stays on and verifies Prop. II.1 validity every iteration.
	warm      bool
	seedIters int // the seeding solve's iteration count, for saved-work metrics
}

// NewIterator validates the queue and prepares the initial resolution.
func NewIterator(q Queue, cfg Config) (*Iterator, error) {
	if _, err := NewQueue(q.Source, q.ServiceRate, q.Buffer); err != nil {
		return nil, err
	}
	return NewModelIterator(q.Model(), cfg)
}

// NewModelIterator validates a general model and prepares the initial
// resolution.
func NewModelIterator(m Model, cfg Config) (*Iterator, error) {
	it, err := newIterator(m, cfg, 0)
	if err != nil {
		return nil, err
	}
	it.ql[0] = 1       // Q_L(0) = 0: start empty
	it.qh[it.bins] = 1 // Q_H(0) = B: start full
	it.lowerLoss = it.lossOf(it.ql)
	it.upperLoss = it.lossOf(it.qh)
	return it, nil
}

// newIterator builds the iterator shell and its grid tables at the given
// start resolution (0 means Config.InitialBins), leaving the occupancy
// vectors zeroed; NewModelIterator and NewModelIteratorSeeded finish the
// construction by choosing the start distributions.
func newIterator(m Model, cfg Config, bins int) (*Iterator, error) {
	if _, err := NewModel(m.Marginal, m.Interarrival, m.ServiceRate, m.Buffer); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if bins <= 0 {
		bins = cfg.InitialBins
	}
	it := &Iterator{
		model:       m,
		cfg:         cfg,
		arrivalWork: m.Marginal.Mean() * m.Interarrival.Mean(),
		id:          solveSeq.Add(1),
		start:       time.Now(),
	}
	if cfg.Arena != nil {
		it.arena = cfg.Arena
		it.scratch = cfg.Arena.borrow(cfg.Recorder)
	}
	it.setResolution(bins)
	if err := it.validatePMF("lower increment", it.wl, cfg.MassDriftTol); err != nil {
		it.release()
		return nil, err
	}
	if err := it.validatePMF("upper increment", it.wh, cfg.MassDriftTol); err != nil {
		it.release()
		return nil, err
	}
	it.ql = it.scratch.getFloat(it.bins + 1)
	it.qh = it.scratch.getFloat(it.bins + 1)
	it.traceLo = 0
	it.traceHi = math.Inf(1)
	if rec := cfg.Recorder; rec != nil {
		rec.Set(obs.MetricSolverBins, float64(it.bins))
	}
	return it, nil
}

// release returns the borrowed arena scratch set, recycling this solve's
// internal buffers for the batch's next cell. It runs when RunContext
// finishes; afterwards the iterator must not be stepped again (results
// already returned are unaffected — they hold copies). Idempotent, and a
// no-op for iterators without an arena.
func (it *Iterator) release() {
	s := it.scratch
	if s == nil {
		return
	}
	it.scratch = nil
	s.putFloat(it.ql)
	s.putFloat(it.qh)
	s.putFloat(it.qlNext)
	s.putFloat(it.qhNext)
	s.putFloat(it.wl)
	s.putFloat(it.wh)
	s.putFloat(it.loss)
	s.putFloat(it.cl)
	s.putFloat(it.cc)
	it.ql, it.qh, it.qlNext, it.qhNext = nil, nil, nil, nil
	it.wl, it.wh, it.loss, it.cl, it.cc = nil, nil, nil, nil, nil
	it.arena.release(s)
}

// setResolution (re)builds the grid-dependent tables for M bins. In batch
// mode the previous rung's tables are recycled through the arena scratch,
// and a resolution doubling copies the coarse grid's cdf/loss entries into
// the even fine-grid slots instead of recomputing them: the evaluation
// points coincide bitwise (B/(2M) rounds to exactly half of B/M, and
// float64(2j)·(B/(2M)) to exactly float64(j)·(B/M)), so the copied entries
// equal what recomputation would produce and results stay bit-identical.
func (it *Iterator) setResolution(m int) {
	prevBins := it.bins
	prevCl, prevCc, prevLoss := it.cl, it.cc, it.loss
	prevWl, prevWh := it.wl, it.wh
	it.bins = m
	it.d = it.model.Buffer / float64(m)
	reuseCl, reuseCc, reuseLoss := prevCl, prevCc, prevLoss
	if prevBins <= 0 || m != 2*prevBins {
		reuseCl, reuseCc, reuseLoss = nil, nil, nil
	}
	cl, cc := it.cdfTables(m, reuseCl, reuseCc)
	it.wl, it.wh = it.incrementPMFs(m, cl, cc)
	it.loss = it.lossTable(m, reuseLoss)
	if it.scratch != nil {
		it.cl, it.cc = cl, cc
		it.scratch.putFloat(prevCl)
		it.scratch.putFloat(prevCc)
		it.scratch.putFloat(prevWl)
		it.scratch.putFloat(prevWh)
		it.scratch.putFloat(prevLoss)
	}
}

// Bins returns the current resolution M.
func (it *Iterator) Bins() int { return it.bins }

// GridStep returns d = B/M.
func (it *Iterator) GridStep() float64 { return it.d }

// Iterations returns the number of Lindley steps performed so far.
func (it *Iterator) Iterations() int { return it.iterations }

// LossBounds returns the current lower and upper loss-rate bounds.
func (it *Iterator) LossBounds() (lower, upper float64) {
	return it.lowerLoss, it.upperLoss
}

// LowerOccupancy returns a copy of the lower-bound occupancy pmf over the
// grid {0, d, 2d, …, B}.
func (it *Iterator) LowerOccupancy() []float64 {
	return append([]float64(nil), it.ql...)
}

// UpperOccupancy returns a copy of the upper-bound occupancy pmf.
func (it *Iterator) UpperOccupancy() []float64 {
	return append([]float64(nil), it.qh...)
}

// Step performs one Lindley iteration on both bound processes and refreshes
// the loss bounds. The numeric-health watchdog validates the step before it
// is committed: on a violation Step returns a *NumericError and leaves the
// iterator at its last healthy state.
func (it *Iterator) Step() error {
	var stepStart time.Time
	if it.cfg.Recorder != nil {
		stepStart = time.Now()
	}
	var conv *fft.Scratch
	var outL, outH []float64
	if s := it.scratch; s != nil {
		conv = &s.conv
		n := it.bins + 1
		if cap(it.qlNext) < n {
			it.qlNext = make([]float64, n)
		}
		if cap(it.qhNext) < n {
			it.qhNext = make([]float64, n)
		}
		outL, outH = it.qlNext[:n], it.qhNext[:n]
	}
	ql, driftL := lindleyStepInto(it.ql, it.wl, it.bins, conv, outL)
	qh, driftH := lindleyStepInto(it.qh, it.wh, it.bins, conv, outH)
	newLo, newHi := it.lossOf(ql), it.lossOf(qh)
	if faultinject.Active() {
		pair := []float64{newLo, newHi}
		faultinject.Apply(faultinject.SolverLossBounds, pair)
		newLo, newHi = pair[0], pair[1]
	}
	if err := it.checkStepHealth(driftL, driftH, newLo, newHi); err != nil {
		if rec := it.cfg.Recorder; rec != nil {
			rec.Add(obs.MetricSolverNumericErrors, 1)
		}
		return err
	}
	if it.scratch != nil {
		// Double-buffer: the displaced vectors become the next step's
		// output buffers.
		it.ql, it.qlNext = ql, it.ql
		it.qh, it.qhNext = qh, it.qh
	} else {
		it.ql, it.qh = ql, qh
	}
	it.lowerLoss, it.upperLoss = newLo, newHi
	it.iterations++
	if rec := it.cfg.Recorder; rec != nil {
		rec.Add(obs.MetricSolverSteps, 1)
		rec.Observe(obs.MetricSolverStepSeconds, time.Since(stepStart).Seconds())
		rec.Observe(obs.MetricSolverMassDrift, math.Abs(driftL))
		rec.Observe(obs.MetricSolverMassDrift, math.Abs(driftH))
		rec.Set(obs.MetricSolverGap, relativeGap(newLo, newHi))
		// One Lindley step convolves both bound processes.
		if fft.DirectConvolutionSizes(it.bins+1, 2*it.bins+1) {
			rec.Add(obs.MetricSolverConvolveDirect, 2)
		} else {
			rec.Add(obs.MetricSolverConvolveFFT, 2)
		}
	}
	if it.cfg.Trace != nil {
		it.cfg.Trace(it.tracePoint(false))
	}
	return nil
}

// tracePoint captures the iterator's current convergence state. The
// emitted bounds are the running envelope (traceLo/traceHi): the tightest
// bracket seen so far, which is exactly monotone per Prop. II.1 even in
// the presence of sub-roundoff jitter on the raw per-step values. Bound
// values far below the loss floor are additionally snapped to zero, the
// way the stall detector treats them.
func (it *Iterator) tracePoint(final bool) TracePoint {
	snap := func(v float64) float64 {
		if v < it.cfg.LossFloor/100 {
			return 0
		}
		return v
	}
	if lo := snap(it.lowerLoss); lo > it.traceLo {
		it.traceLo = lo
	}
	if hi := snap(it.upperLoss); hi < it.traceHi {
		it.traceHi = hi
	}
	return TracePoint{
		Solve:     it.id,
		Iteration: it.iterations,
		Bins:      it.bins,
		Lower:     it.traceLo,
		Upper:     it.traceHi,
		Elapsed:   time.Since(it.start).Seconds(),
		Final:     final,
		Trace:     it.traceID,
	}
}

// relativeGap is Result.RelativeGap over raw bound values.
func relativeGap(lo, hi float64) float64 {
	mid := (hi + lo) / 2
	if mid == 0 {
		return 0
	}
	return (hi - lo) / mid
}

// Refine doubles the resolution, re-projecting the occupancy vectors onto
// the finer grid (each coarse atom j·d sits exactly on fine grid point 2j,
// so the projection is exact and the bound properties are preserved —
// footnote 3 of the paper). It returns false if MaxBins would be exceeded.
func (it *Iterator) Refine() bool {
	if it.bins*2 > it.cfg.MaxBins {
		return false
	}
	old := it.bins
	oldQl, oldQh := it.ql, it.qh
	it.setResolution(old * 2)
	ql := it.scratch.getFloat(it.bins + 1)
	qh := it.scratch.getFloat(it.bins + 1)
	for j := 0; j <= old; j++ {
		ql[2*j] = oldQl[j]
		qh[2*j] = oldQh[j]
	}
	it.ql, it.qh = ql, qh
	it.scratch.putFloat(oldQl)
	it.scratch.putFloat(oldQh)
	it.lowerLoss = it.lossOf(it.ql)
	it.upperLoss = it.lossOf(it.qh)
	if rec := it.cfg.Recorder; rec != nil {
		rec.Add(obs.MetricSolverRefines, 1)
		rec.Set(obs.MetricSolverBins, float64(it.bins))
	}
	return true
}

// converged reports whether the current bounds meet the stopping rule.
func (it *Iterator) converged() (Result, bool) {
	lo, hi := it.lowerLoss, it.upperLoss
	if hi < it.cfg.LossFloor {
		return it.result(0, lo, hi, true), true
	}
	mid := (hi + lo) / 2
	if mid > 0 && hi-lo <= it.cfg.RelGap*mid {
		return it.result(mid, lo, hi, true), true
	}
	return Result{}, false
}

func (it *Iterator) result(loss, lo, hi float64, ok bool) Result {
	return Result{
		Loss:           loss,
		Lower:          lo,
		Upper:          hi,
		Bins:           it.bins,
		Iterations:     it.iterations,
		Converged:      ok,
		GridStep:       it.d,
		LowerOccupancy: it.LowerOccupancy(),
		UpperOccupancy: it.UpperOccupancy(),
	}
}

// Run drives the iterate/refine loop to completion. It is RunContext with
// a background context; see RunContext for the degrade-gracefully and
// numeric-health contract.
func (it *Iterator) Run() (Result, error) {
	return it.RunContext(context.Background())
}

func relChange(prev, cur float64) float64 {
	if prev == cur {
		return 0
	}
	den := math.Max(math.Abs(prev), math.Abs(cur))
	if den == 0 {
		return 0
	}
	return math.Abs(cur-prev) / den
}

// lindleyStep applies Eqs. (19)–(20): convolve the occupancy pmf with the
// increment pmf, then fold the mass escaping below 0 into bin 0 and the
// mass escaping above B into bin M. The result is renormalized to unit mass
// to stop roundoff drift over long runs (and to clamp the ~1-ulp negative
// values FFT convolution can produce). The pre-renormalization drift
// (total−1) is returned for the numeric-health watchdog.
func lindleyStep(q, w []float64, m int) (out []float64, drift float64) {
	return lindleyStepInto(q, w, m, nil, nil)
}

// lindleyStepInto is lindleyStep with optional caller-owned buffers: conv
// supplies the convolution workspace and out (length m+1, fully
// overwritten) receives the stepped pmf. Either may be nil, in which case
// fresh slices are allocated; results are bit-identical both ways.
func lindleyStepInto(q, w []float64, m int, conv *fft.Scratch, out []float64) ([]float64, float64) {
	// u[k] corresponds to occupancy position (k−m)·d, k = 0..3m.
	u := fft.ConvolveRealInto(q, w, conv)
	faultinject.Apply(faultinject.SolverConvolution, u)
	if out == nil {
		out = make([]float64, m+1)
	}
	var under, over numerics.Accumulator
	for k := 0; k <= m; k++ { // positions −m·d … 0
		under.Add(math.Max(u[k], 0))
	}
	for k := 2 * m; k < len(u); k++ { // positions B … 2B
		over.Add(math.Max(u[k], 0))
	}
	out[0] = under.Sum()
	out[m] = over.Sum()
	for j := 1; j < m; j++ {
		out[j] = math.Max(u[m+j], 0)
	}
	total := numerics.KahanSum(out)
	if total > 0 {
		inv := 1 / total
		for j := range out {
			out[j] *= inv
		}
	}
	return out, total - 1
}

// incrementPMFs builds the rounded-increment pmfs of Eqs. (21)–(22):
//
//	w_L(i) = Pr{W ∈ [i·d, (i+1)·d)}   (mass moved down: lower process)
//	w_H(i) = Pr{W ∈ ((i−1)·d, i·d]}   (mass moved up: upper process)
//
// with the tails beyond ±B lumped into the end bins (any step ≤ −B empties
// and ≥ +B fills the buffer regardless of the starting occupancy). The
// returned slices have length 2M+1; index i+M holds w(i). cl and cc are the
// cdf tables from cdfTables at the same resolution.
func (it *Iterator) incrementPMFs(m int, cl, cc []float64) (wl, wh []float64) {
	wl = it.scratch.getFloat(2*m + 1)
	wh = it.scratch.getFloat(2*m + 1)
	// Lower: w_L(i) = P{W < (i+1)d} − P{W < i·d}; end bins lump the tails.
	for i := -m; i <= m; i++ {
		switch {
		case i == -m:
			wl[0] = cl[1] // Pr{W < (−M+1)d}
		case i == m:
			wl[2*m] = 1 - cl[2*m] // Pr{W >= M·d}
		default:
			wl[i+m] = cl[i+m+1] - cl[i+m]
		}
	}
	for i := -m; i <= m; i++ {
		switch {
		case i == -m:
			wh[0] = cc[0] // Pr{W <= −M·d}
		case i == m:
			wh[2*m] = 1 - cc[2*m-1] // Pr{W > (M−1)d}
		default:
			wh[i+m] = cc[i+m] - cc[i+m-1]
		}
	}
	clampNonneg(wl)
	clampNonneg(wh)
	faultinject.Apply(faultinject.SolverIncrementPMF, wl)
	faultinject.Apply(faultinject.SolverIncrementPMF, wh)
	return wl, wh
}

// cdfTables evaluates the work-increment cdfs at the 2m+2 grid points i·d
// for i = −m..m+1: cl holds the strict cdf Pr{W < i·d}, cc the non-strict
// Pr{W <= i·d}. When the previous rung's tables at resolution m/2 are
// supplied (a batch-mode resolution doubling), the even-index entries are
// copied instead of recomputed — the evaluation points coincide bitwise, so
// the copies equal what recomputation would produce.
func (it *Iterator) cdfTables(m int, prevCl, prevCc []float64) (cl, cc []float64) {
	d := it.model.Buffer / float64(m)
	cl = it.scratch.getFloat(2*m + 2)
	cc = it.scratch.getFloat(2*m + 2)
	reuse := len(prevCl) == m+2 && len(prevCc) == m+2
	both, fused := it.model.Interarrival.(ccdfBoth)
	for i := -m; i <= m+1; i++ {
		idx := i + m
		if reuse && idx%2 == 0 {
			cl[idx] = prevCl[idx/2]
			cc[idx] = prevCc[idx/2]
			continue
		}
		x := float64(i) * d
		if fused {
			cl[idx], cc[idx] = it.workCDFBoth(x, both)
		} else {
			cl[idx] = it.workCDF(x, true)
			cc[idx] = it.workCDF(x, false)
		}
	}
	return cl, cc
}

// ccdfBoth is the optional law contract behind the fused cdf tabulation:
// one call yields Pr{T > t} and Pr{T >= t}, each bitwise equal to the
// separate CCDF / CCDFAtLeast evaluations, at roughly half the cost (the
// components share their power-law or exponential-sum evaluation except at
// atoms). Both built-in laws implement it.
type ccdfBoth interface {
	CCDFBoth(t float64) (gt, ge float64)
}

func clampNonneg(xs []float64) {
	for i, v := range xs {
		if v < 0 {
			xs[i] = 0
		}
	}
}

// workCDFBoth evaluates Pr{W < x} and Pr{W <= x} in one pass over the
// marginal, using the law's fused CCDFBoth. Each accumulator receives, in
// the same order, bitwise the same contributions the two separate workCDF
// passes would add, so the results are bit-identical to the unfused path —
// at half the law-evaluation cost, which dominates grid (re)construction.
func (it *Iterator) workCDFBoth(x float64, p ccdfBoth) (strict, nonstrict float64) {
	c := it.model.ServiceRate
	marg := it.model.Marginal
	var accS, accN numerics.Accumulator
	for i := 0; i < marg.Len(); i++ {
		lam := marg.Rate(i)
		pi := marg.Prob(i)
		drift := lam - c
		switch {
		case drift == 0:
			// W_i ≡ 0.
			if x > 0 {
				accS.Add(pi)
				accN.Add(pi)
			} else if x == 0 {
				accN.Add(pi)
			}
		case drift > 0:
			// W_i = T·drift > 0 a.s.
			if x <= 0 {
				continue
			}
			gt, ge := p.CCDFBoth(x / drift)
			accS.Add(pi * (1 - ge)) // Pr{W_i < x} = 1 − Pr{T >= t}
			accN.Add(pi * (1 - gt)) // Pr{W_i <= x} = 1 − Pr{T > t}
		default: // drift < 0: W_i < 0 a.s.
			if x >= 0 {
				accS.Add(pi)
				accN.Add(pi)
				continue
			}
			gt, ge := p.CCDFBoth(x / drift)
			accS.Add(pi * gt) // Pr{W_i < x} = Pr{T > t}
			accN.Add(pi * ge) // Pr{W_i <= x} = Pr{T >= t}
		}
	}
	return numerics.Clamp(accS.Sum(), 0, 1), numerics.Clamp(accN.Sum(), 0, 1)
}

// workCDF evaluates the mixture distribution of the per-epoch work
// increment W = T·(λ−c) (Eq. 10): Pr{W < x} when strict, else Pr{W <= x}.
// The interarrival law T has a continuous Pareto part on (0, Tc) and an
// atom at Tc, so W inherits atoms at (λ_i−c)·Tc.
func (it *Iterator) workCDF(x float64, strict bool) float64 {
	p := it.model.Interarrival
	c := it.model.ServiceRate
	marg := it.model.Marginal
	var acc numerics.Accumulator
	for i := 0; i < marg.Len(); i++ {
		lam := marg.Rate(i)
		pi := marg.Prob(i)
		drift := lam - c
		switch {
		case drift == 0:
			// W_i ≡ 0.
			if x > 0 || (!strict && x == 0) {
				acc.Add(pi)
			}
		case drift > 0:
			// W_i = T·drift > 0 a.s.
			if x <= 0 {
				continue
			}
			t := x / drift
			// Pr{W_i < x} = Pr{T < t} = 1 − Pr{T >= t};
			// Pr{W_i <= x} = Pr{T <= t} = 1 − Pr{T > t}.
			if strict {
				acc.Add(pi * (1 - p.CCDFAtLeast(t)))
			} else {
				acc.Add(pi * (1 - p.CCDF(t)))
			}
		default: // drift < 0: W_i < 0 a.s.
			if x >= 0 {
				acc.Add(pi)
				continue
			}
			t := x / drift // positive; W_i <= x ⇔ T >= t
			if strict {
				// Pr{W_i < x} = Pr{T > t}.
				acc.Add(pi * p.CCDF(t))
			} else {
				acc.Add(pi * p.CCDFAtLeast(t))
			}
		}
	}
	return numerics.Clamp(acc.Sum(), 0, 1)
}

// lossTable precomputes E[W_l | Q = j·d] for j = 0..M using the closed form
// derived in the paper (§II), generalized to any interarrival law:
//
//	E[W_l|Q=x] = Σ_{i: λ_i>c} π_i·(λ_i−c)·∫_{(B−x)/(λ_i−c)}^∞ Pr{T > t} dt
//
// which for the truncated Pareto reduces to the paper's
// θ/(α−1)·Σ π_i(λ_i−c)[((B−x)/(θ(λ_i−c))+1)^(1−α) − (Tc/θ+1)^(1−α)].
// When the previous rung's table at resolution m/2 is supplied (batch-mode
// doubling), the even entries are copied — same bitwise-coincidence
// argument as cdfTables.
func (it *Iterator) lossTable(m int, prev []float64) []float64 {
	out := it.scratch.getFloat(m + 1)
	d := it.model.Buffer / float64(m)
	reuse := m%2 == 0 && len(prev) == m/2+1
	integral := it.model.Interarrival.IntegralCCDF
	if c, ok := it.model.Interarrival.(integralCCDFCurried); ok {
		// Hoist the law constants (cutoff tail pow, scale) out of the
		// m+1-point tabulation; the curried form is bitwise equal.
		integral = c.IntegralCCDFFunc()
	}
	for j := 0; j <= m; j++ {
		if reuse && j%2 == 0 {
			out[j] = prev[j/2]
			continue
		}
		out[j] = it.expectedLossGiven(float64(j)*d, integral)
	}
	return out
}

// integralCCDFCurried is the optional law contract behind the hoisted loss
// tabulation: IntegralCCDFFunc returns IntegralCCDF with per-law constants
// precomputed, bitwise equal at every point. Both built-in laws implement
// it.
type integralCCDFCurried interface {
	IntegralCCDFFunc() func(a float64) float64
}

// ExpectedLossGivenOccupancy returns E[W_l | Q = x], the expected work lost
// in one interarrival interval starting from occupancy x.
func (it *Iterator) ExpectedLossGivenOccupancy(x float64) float64 {
	return it.expectedLossGiven(x, it.model.Interarrival.IntegralCCDF)
}

func (it *Iterator) expectedLossGiven(x float64, integral func(a float64) float64) float64 {
	c := it.model.ServiceRate
	marg := it.model.Marginal
	b := it.model.Buffer
	if x > b {
		x = b
	}
	var acc numerics.Accumulator
	for i := 0; i < marg.Len(); i++ {
		drift := marg.Rate(i) - c
		if drift <= 0 {
			continue
		}
		// E[(W_i − (B−x))⁺] = drift·∫_{(B−x)/drift}^∞ Pr{T > t} dt.
		acc.Add(marg.Prob(i) * drift * integral((b-x)/drift))
	}
	return acc.Sum()
}

// lossOf evaluates Eq. (23)/(24): the loss rate induced by the occupancy
// pmf q, namely Σ_j q(j)·E[W_l|Q=j·d] / (λ̄·E[T]).
func (it *Iterator) lossOf(q []float64) float64 {
	var acc numerics.Accumulator
	for j, mass := range q {
		if mass == 0 {
			continue
		}
		acc.Add(mass * it.loss[j])
	}
	return acc.Sum() / it.arrivalWork
}
