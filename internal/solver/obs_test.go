package solver

import (
	"context"
	"reflect"
	"testing"

	"lrd/internal/obs"
)

// TestSolveBitIdenticalWithInstrumentation proves the observability layer
// is purely observational: attaching a Recorder and a Trace sink must not
// change a single bit of the solver's output.
func TestSolveBitIdenticalWithInstrumentation(t *testing.T) {
	q, err := NewQueueNormalized(onOffSource(t, 2), 0.8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SolveContext(context.Background(), q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var points []TracePoint
	instr, err := SolveContext(context.Background(), q, Config{
		Recorder: reg,
		Trace:    func(p TracePoint) { points = append(points, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, instr) {
		t.Fatalf("instrumented result differs:\nplain %+v\ninstr %+v", plain, instr)
	}
	if len(points) == 0 {
		t.Fatal("trace sink received no points")
	}
	if reg.CounterValue(obs.MetricSolverSolves) != 1 {
		t.Fatalf("solves counter = %v, want 1", reg.CounterValue(obs.MetricSolverSolves))
	}
	if reg.CounterValue(obs.MetricSolverSteps) != float64(instr.Iterations) {
		t.Fatalf("steps counter = %v, iterations = %d",
			reg.CounterValue(obs.MetricSolverSteps), instr.Iterations)
	}
}

// TestTraceMonotoneBounds checks the Prop. II.1 signature on the emitted
// convergence stream: within one solve the lower bounds are non-decreasing
// and the upper bounds non-increasing, across Refine events included.
func TestTraceMonotoneBounds(t *testing.T) {
	q, err := NewQueueNormalized(videoSource(t, 3), 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var points []TracePoint
	res, err := SolveContext(context.Background(), q, Config{
		Trace: func(p TracePoint) { points = append(points, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatalf("only %d trace points", len(points))
	}
	id := points[0].Solve
	refines := 0
	for i, p := range points {
		if p.Solve != id {
			t.Fatalf("point %d: solve id %d, want %d", i, p.Solve, id)
		}
		if i == 0 {
			continue
		}
		prev := points[i-1]
		if p.Iteration < prev.Iteration {
			t.Fatalf("iteration went backwards at point %d: %d -> %d", i, prev.Iteration, p.Iteration)
		}
		if p.Lower < prev.Lower {
			t.Fatalf("lower bound decreased at iter %d: %v -> %v", p.Iteration, prev.Lower, p.Lower)
		}
		if p.Upper > prev.Upper {
			t.Fatalf("upper bound increased at iter %d: %v -> %v", p.Iteration, prev.Upper, p.Upper)
		}
		if p.Bins > prev.Bins {
			refines++
		}
	}
	last := points[len(points)-1]
	if !last.Final {
		t.Fatal("last trace point not marked final")
	}
	// The trace emits the running envelope (tightest bracket so far), so
	// its final point can only be equal to or tighter than the raw result
	// bounds — and must itself still be a well-ordered bracket.
	if last.Lower > last.Upper {
		t.Fatalf("final point is not a bracket: (%v, %v)", last.Lower, last.Upper)
	}
	const tol = 1e-9
	if last.Lower < res.Lower*(1-tol) || last.Upper > res.Upper*(1+tol) {
		t.Fatalf("final point (%v, %v) looser than result bounds (%v, %v)",
			last.Lower, last.Upper, res.Lower, res.Upper)
	}
	if refines == 0 {
		t.Log("note: solve converged without refinement; monotonicity across Refine untested here")
	}
}

// TestSolveIDsDistinguishConcurrentSolves: each solve's trace carries a
// process-unique id so interleaved JSONL streams can be separated.
func TestSolveIDsDistinguishConcurrentSolves(t *testing.T) {
	q, err := NewQueueNormalized(onOffSource(t, 1), 0.8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		var first *TracePoint
		_, err := SolveContext(context.Background(), q, Config{
			Trace: func(p TracePoint) {
				if first == nil {
					first = &p
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			t.Fatal("no trace points")
		}
		if ids[first.Solve] {
			t.Fatalf("duplicate solve id %d", first.Solve)
		}
		ids[first.Solve] = true
	}
}

// TestDegradedSolveRecordsReason: a budget-limited solve shows up in the
// labeled degraded counter and still emits a final trace point.
func TestDegradedSolveRecordsReason(t *testing.T) {
	q, err := NewQueueNormalized(videoSource(t, 3), 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sawFinal := false
	res, err := SolveContext(context.Background(), q, Config{
		MaxIterations: 5,
		Recorder:      reg,
		Trace:         func(p TracePoint) { sawFinal = p.Final },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == "" {
		t.Fatal("want degraded result with MaxIterations = 5")
	}
	name := obs.Labeled(obs.MetricSolverDegraded, "reason", string(res.Degraded))
	if reg.CounterValue(name) != 1 {
		t.Fatalf("degraded counter %q = %v, want 1", name, reg.CounterValue(name))
	}
	if !sawFinal {
		t.Fatal("no final trace point on degraded exit")
	}
}

// TestRelativeGapZeroWhenBothBoundsZero is the regression test for the
// NaN-at-zero bug: a solve deep in the zero-loss regime has Lower ==
// Upper == 0 and must report a zero (converged) gap, not NaN.
func TestRelativeGapZeroWhenBothBoundsZero(t *testing.T) {
	r := Result{Lower: 0, Upper: 0}
	if g := r.RelativeGap(); g != 0 {
		t.Fatalf("RelativeGap() = %v, want 0", g)
	}
	// Sanity: a normal bracket still reports its midpoint-relative width.
	r = Result{Lower: 1, Upper: 3}
	if g := r.RelativeGap(); g != 1 {
		t.Fatalf("RelativeGap() = %v, want 1", g)
	}
}
