package solver

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//  1. the resolution ladder (start coarse, double M with a warm restart —
//     the paper's footnote 3) versus solving cold at the final resolution;
//  2. FFT convolution versus the direct O(M²) algorithm in the per-step
//     Lindley update;
//  3. the 20 % bound-gap target versus tighter targets (cost of accuracy).
//
// Run with: go test ./internal/solver -bench Ablation -benchmem

import (
	"testing"

	"lrd/internal/dist"
	"lrd/internal/fft"
	"lrd/internal/fluid"
)

func ablationQueue(b *testing.B) Queue {
	b.Helper()
	m := dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	src, err := fluid.New(m, dist.TruncatedPareto{Theta: 0.05, Alpha: 1.4, Cutoff: 2})
	if err != nil {
		b.Fatal(err)
	}
	q, err := NewQueueNormalized(src, 0.8, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkAblationResolutionLadder uses the paper's strategy: start at a
// coarse M and double on stall with a warm restart.
func BenchmarkAblationResolutionLadder(b *testing.B) {
	q := ablationQueue(b)
	cfg := Config{InitialBins: 128, MaxBins: 4096, RelGap: 0.05}
	b.ReportAllocs()
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := Solve(q, cfg)
		if err != nil || !res.Converged {
			b.Fatalf("res=%+v err=%v", res, err)
		}
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "lindley-steps")
}

// BenchmarkAblationColdHighResolution starts directly at the resolution
// the ladder would end at, paying full-size convolutions for the whole
// transient.
func BenchmarkAblationColdHighResolution(b *testing.B) {
	q := ablationQueue(b)
	cfg := Config{InitialBins: 4096, MaxBins: 4096, RelGap: 0.05}
	b.ReportAllocs()
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := Solve(q, cfg)
		if err != nil || !res.Converged {
			b.Fatalf("res=%+v err=%v", res, err)
		}
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "lindley-steps")
}

// warmIterator builds an iterator and advances it until the occupancy
// vectors are dense, so the convolution benchmarks measure the
// steady-state cost rather than the initial delta distribution (whose
// zeros the naive algorithm skips).
func warmIterator(b *testing.B, bins int) *Iterator {
	b.Helper()
	q := ablationQueue(b)
	it, err := NewIterator(q, Config{InitialBins: bins, MaxBins: bins})
	if err != nil {
		b.Fatal(err)
	}
	for n := 0; n < 50; n++ {
		it.Step()
	}
	return it
}

// BenchmarkAblationStepFFT measures one Lindley step with the production
// convolution (FFT above the crossover) at M = 2048 on dense state.
func BenchmarkAblationStepFFT(b *testing.B) {
	it := warmIterator(b, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Step()
	}
}

// BenchmarkAblationStepNaive measures the same two convolutions with the
// direct O(M²) algorithm — the cost the paper's FFT remark avoids.
func BenchmarkAblationStepNaive(b *testing.B) {
	it := warmIterator(b, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ql := fft.ConvolveRealNaive(it.ql, it.wl)
		qh := fft.ConvolveRealNaive(it.qh, it.wh)
		_ = ql
		_ = qh
	}
}

// BenchmarkAblationGapTargets quantifies the cost of tightening the bound
// gap from the paper's 20 % to 5 % and 1 %.
func BenchmarkAblationGapTargets(b *testing.B) {
	q := ablationQueue(b)
	for _, gap := range []float64{0.2, 0.05, 0.01} {
		gap := gap
		b.Run(gapName(gap), func(b *testing.B) {
			cfg := Config{RelGap: gap}
			b.ReportAllocs()
			var bins int
			for i := 0; i < b.N; i++ {
				res, err := Solve(q, cfg)
				if err != nil || !res.Converged {
					b.Fatalf("res=%+v err=%v", res, err)
				}
				bins = res.Bins
			}
			b.ReportMetric(float64(bins), "final-bins")
		})
	}
}

func gapName(gap float64) string {
	switch gap {
	case 0.2:
		return "gap20pct"
	case 0.05:
		return "gap5pct"
	default:
		return "gap1pct"
	}
}
