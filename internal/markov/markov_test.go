package markov

import (
	"math"
	"math/rand"
	"testing"

	"lrd/internal/dist"
	"lrd/internal/numerics"
	"lrd/internal/solver"
)

func TestFitCorrelationSingleExponential(t *testing.T) {
	// Fitting an exponential with a mixture of exponentials must be
	// near-exact.
	target := func(t float64) float64 { return math.Exp(-t / 0.3) }
	comps, err := FitCorrelation(target, 5, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e := MaxError(target, comps, 5, 300); e > 0.015 {
		t.Fatalf("max fit error %v, want < 0.015", e)
	}
	// Weights sum to one.
	var sum float64
	for _, c := range comps {
		sum += c.Weight
		if c.Scale <= 0 || c.Weight < 0 {
			t.Fatalf("bad component %+v", c)
		}
	}
	if !numerics.AlmostEqual(sum, 1, 1e-9) {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestFitCorrelationPowerLaw(t *testing.T) {
	// The paper's case: truncated-Pareto residual correlation (power-law
	// decay up to the cutoff). A modest number of exponentials should track
	// it within a couple of percent — the Feldmann–Whitt observation.
	p := dist.TruncatedPareto{Theta: 0.016, Alpha: 1.2, Cutoff: 10}
	comps, err := FitCorrelation(p.ResidualCCDF, 10, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e := MaxError(p.ResidualCCDF, comps, 10, 400); e > 0.02 {
		t.Fatalf("max fit error %v, want < 0.02", e)
	}
}

func TestFitCorrelationValidation(t *testing.T) {
	if _, err := FitCorrelation(nil, 1, FitOptions{}); err == nil {
		t.Fatal("want error on nil corr")
	}
	ok := func(t float64) float64 { return math.Exp(-t) }
	if _, err := FitCorrelation(ok, 0, FitOptions{}); err == nil {
		t.Fatal("want error on zero horizon")
	}
	if _, err := FitCorrelation(ok, math.Inf(1), FitOptions{}); err == nil {
		t.Fatal("want error on infinite horizon")
	}
	bad := func(t float64) float64 { return 2.5 }
	if _, err := FitCorrelation(bad, 1, FitOptions{}); err == nil {
		t.Fatal("want error on out-of-range correlation")
	}
}

func TestInterarrivalRealizesCorrelation(t *testing.T) {
	// The hyperexponential built from components (w_k, τ_k) must have
	// residual ccdf exactly Σ w_k e^{−t/τ_k}.
	comps := []Component{{Weight: 0.6, Scale: 0.1}, {Weight: 0.4, Scale: 2}}
	h, err := Interarrival(comps)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 0.05, 0.5, 3, 10} {
		want := Evaluate(comps, tt)
		if !numerics.AlmostEqual(h.ResidualCCDF(tt), want, 1e-9) {
			t.Fatalf("t=%v: residual %v, want %v", tt, h.ResidualCCDF(tt), want)
		}
	}
	// Implied mean epoch: 1/Σ(w_k/τ_k).
	wantMean := 1 / (0.6/0.1 + 0.4/2)
	if !numerics.AlmostEqual(h.Mean(), wantMean, 1e-9) {
		t.Fatalf("mean epoch %v, want %v", h.Mean(), wantMean)
	}
}

func TestInterarrivalValidation(t *testing.T) {
	if _, err := Interarrival(nil); err == nil {
		t.Fatal("want error on empty components")
	}
	if _, err := Interarrival([]Component{{Weight: 1, Scale: 0}}); err == nil {
		t.Fatal("want error on zero scale")
	}
}

func TestEquivalentModelPredictsSameLoss(t *testing.T) {
	// The paper's §IV claim, executed: a Markovian model fitted to the
	// truncated-Pareto source's correlation over its full support predicts
	// (nearly) the same loss rate as the original model.
	marg := dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	iv := dist.TruncatedPareto{Theta: 0.05, Alpha: 1.4, Cutoff: 2}
	c := 1.25 // utilization 0.8
	buffer := 0.3 * c
	orig, err := solver.NewModel(marg, iv, c, buffer)
	if err != nil {
		t.Fatal(err)
	}
	mk, comps, err := EquivalentModel(orig, 2.0, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) == 0 {
		t.Fatal("no components fitted")
	}
	// The fitted epoch law reproduces the original mean epoch (both are
	// determined by the correlation function).
	if !numerics.AlmostEqual(mk.Interarrival.Mean(), iv.Mean(), 0.05) {
		t.Fatalf("mean epoch %v vs original %v", mk.Interarrival.Mean(), iv.Mean())
	}
	a, err := solver.SolveModel(orig, solver.Config{RelGap: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := solver.SolveModel(mk, solver.Config{RelGap: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if a.Loss <= 0 || b.Loss <= 0 {
		t.Fatalf("degenerate losses: %v %v", a.Loss, b.Loss)
	}
	ratio := b.Loss / a.Loss
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("Markovian model loss %v vs original %v (ratio %v)", b.Loss, a.Loss, ratio)
	}
}

func TestEquivalentModelRequiresResidual(t *testing.T) {
	marg := dist.MustMarginal([]float64{0, 2}, []float64{0.5, 0.5})
	m, err := solver.NewModel(marg, fakeLaw{}, 1.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := EquivalentModel(m, 1, FitOptions{}); err == nil {
		t.Fatal("want error for law without ResidualCCDF")
	}
}

// fakeLaw is a minimal Interarrival without ResidualCCDF.
type fakeLaw struct{}

func (fakeLaw) CCDF(t float64) float64         { return math.Exp(-t) }
func (fakeLaw) CCDFAtLeast(t float64) float64  { return math.Exp(-t) }
func (fakeLaw) IntegralCCDF(a float64) float64 { return math.Exp(-a) }
func (fakeLaw) Mean() float64                  { return 1 }
func (fakeLaw) Upper() float64                 { return math.Inf(1) }
func (fakeLaw) Validate() error                { return nil }
func (fakeLaw) Sample(*rand.Rand) float64      { return 1 }
