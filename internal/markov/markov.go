// Package markov builds Markovian (phase-type) traffic models that match a
// target autocorrelation function up to a chosen horizon — the modeling
// strategy §IV of the paper argues is sufficient for loss prediction: "we
// may choose any model among the panoply of available models (including
// Markovian and self-similar models) as long as the chosen model captures
// the correlation structure up to CH".
//
// A power-law correlation r(t) is approximated by a non-negative sum of
// exponentials r(t) ≈ Σ_k w_k·exp(−t/τ_k) (the classical construction, cf.
// Feldmann & Whitt). For a renewal-modulated fluid source the
// autocorrelation equals the residual-life ccdf of the epoch law (Eq. 3 of
// the paper), and a hyperexponential epoch law with mixture weights
// a_k ∝ w_k/τ_k realizes exactly that correlation — so matching the
// correlation function fully determines the Markovian model (including its
// mean epoch length, via r′(0) = −1/E[T]). The resulting model plugs
// directly into the same numerical solver.
package markov

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lrd/internal/dist"
	"lrd/internal/numerics"
	"lrd/internal/solver"
)

// Component is one exponential mode of a fitted correlation function.
type Component struct {
	Weight float64 // w_k >= 0; weights of a correlation fit sum to 1
	Scale  float64 // time constant τ_k > 0 (seconds)
}

// FitOptions tunes FitCorrelation.
type FitOptions struct {
	// Components is the number K of exponential modes (log-spaced time
	// constants). Zero selects 4 modes per decade of fitted range, at
	// least 4.
	Components int
	// Samples is the number of fit points, log-spaced on (0, horizon].
	// Zero selects 200.
	Samples int
	// Iterations bounds the non-negative least-squares sweeps. Zero
	// selects 20000.
	Iterations int
}

// FitCorrelation approximates corr (a normalized autocorrelation with
// corr(0) = 1, non-increasing) on [0, horizon] by a non-negative mixture of
// exponentials whose weights sum to one. The fit minimizes the squared
// error on a log-spaced time grid by coordinate-descent NNLS, then
// renormalizes the weights (a projection that changes them only within the
// fit's residual error, keeping r(0) = 1 exact).
func FitCorrelation(corr func(float64) float64, horizon float64, opts FitOptions) ([]Component, error) {
	if corr == nil {
		return nil, errors.New("markov: nil correlation function")
	}
	if !(horizon > 0) || math.IsInf(horizon, 1) {
		return nil, fmt.Errorf("markov: horizon %v must be finite and positive", horizon)
	}
	nsamp := opts.Samples
	if nsamp <= 0 {
		nsamp = 200
	}
	// Fit grid: t = 0 plus log-spaced points down to horizon/1e4. The t = 0
	// sample is replicated to pin r(0) = 1 tightly, so the final weight
	// renormalization is a negligible correction.
	tmin := horizon / 1e4
	grid := numerics.Logspace(tmin, horizon, nsamp-1)
	ts := make([]float64, 0, nsamp+15)
	for i := 0; i < 16; i++ {
		ts = append(ts, 0)
	}
	ts = append(ts, grid...)
	y := make([]float64, len(ts))
	for i, t := range ts {
		v := corr(t)
		if math.IsNaN(v) || v < -1 || v > 1+1e-9 {
			return nil, fmt.Errorf("markov: correlation value %v at t=%v out of range", v, t)
		}
		y[i] = v
	}
	k := opts.Components
	if k <= 0 {
		decades := math.Log10(horizon / tmin)
		k = int(4*decades) + 1
		if k < 4 {
			k = 4
		}
	}
	scales := numerics.Logspace(tmin, horizon, k)
	// Design matrix columns A_k(t) = exp(−t/τ_k).
	cols := make([][]float64, k)
	norms := make([]float64, k)
	for j := range cols {
		col := make([]float64, len(ts))
		var n2 float64
		for i, t := range ts {
			col[i] = math.Exp(-t / scales[j])
			n2 += col[i] * col[i]
		}
		cols[j] = col
		norms[j] = n2
	}
	w := make([]float64, k)
	resid := append([]float64(nil), y...) // resid = y − A·w, maintained incrementally
	iters := opts.Iterations
	if iters <= 0 {
		iters = 20000
	}
	for sweep := 0; sweep < iters; sweep++ {
		maxMove := 0.0
		for j := 0; j < k; j++ {
			// One-dimensional exact minimization over w_j >= 0.
			var g float64
			for i := range resid {
				g += cols[j][i] * resid[i]
			}
			nw := w[j] + g/norms[j]
			if nw < 0 {
				nw = 0
			}
			delta := nw - w[j]
			if delta != 0 {
				for i := range resid {
					resid[i] -= delta * cols[j][i]
				}
				w[j] = nw
				if m := math.Abs(delta); m > maxMove {
					maxMove = m
				}
			}
		}
		if maxMove < 1e-12 {
			break
		}
	}
	var total float64
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return nil, errors.New("markov: NNLS fit collapsed to zero")
	}
	out := make([]Component, 0, k)
	for j := range w {
		if w[j] <= 1e-12 {
			continue
		}
		out = append(out, Component{Weight: w[j] / total, Scale: scales[j]})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Scale < out[b].Scale })
	if len(out) == 0 {
		return nil, errors.New("markov: no active components after fit")
	}
	return out, nil
}

// Evaluate returns the fitted correlation Σ w_k·exp(−t/τ_k) at lag t.
func Evaluate(comps []Component, t float64) float64 {
	var acc numerics.Accumulator
	for _, c := range comps {
		acc.Add(c.Weight * math.Exp(-t/c.Scale))
	}
	return acc.Sum()
}

// MaxError returns the largest absolute deviation between corr and the fit
// on a log-spaced grid over (0, horizon].
func MaxError(corr func(float64) float64, comps []Component, horizon float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	worst := math.Abs(corr(0) - Evaluate(comps, 0))
	for _, t := range numerics.Logspace(horizon/1e4, horizon, n) {
		if d := math.Abs(corr(t) - Evaluate(comps, t)); d > worst {
			worst = d
		}
	}
	return worst
}

// Interarrival converts correlation components into the hyperexponential
// epoch law realizing that correlation in the renewal-modulated fluid
// model: mixture weights a_k ∝ w_k/τ_k with the same time constants. The
// implied mean epoch length is E[T] = 1/Σ(w_k/τ_k) (from r′(0) = −1/E[T]).
func Interarrival(comps []Component) (dist.Hyperexponential, error) {
	if len(comps) == 0 {
		return dist.Hyperexponential{}, errors.New("markov: no components")
	}
	weights := make([]float64, len(comps))
	scales := make([]float64, len(comps))
	for i, c := range comps {
		if !(c.Scale > 0) || c.Weight < 0 {
			return dist.Hyperexponential{}, fmt.Errorf("markov: invalid component %+v", c)
		}
		weights[i] = c.Weight / c.Scale
		scales[i] = c.Scale
	}
	return dist.NewHyperexponential(weights, scales)
}

// EquivalentModel replaces a model's epoch law with the Markovian
// (hyperexponential) law fitted to the original source's autocorrelation
// up to the given horizon, keeping the marginal, service rate, and buffer.
// It returns the new model and the fitted components. This is the paper's
// §IV program made executable: if horizon >= the correlation horizon of
// (B, c), the Markovian model predicts (nearly) the same loss rate.
func EquivalentModel(m solver.Model, horizon float64, opts FitOptions) (solver.Model, []Component, error) {
	base, ok := m.Interarrival.(interface{ ResidualCCDF(float64) float64 })
	if !ok {
		return solver.Model{}, nil, errors.New("markov: interarrival law does not expose ResidualCCDF")
	}
	comps, err := FitCorrelation(base.ResidualCCDF, horizon, opts)
	if err != nil {
		return solver.Model{}, nil, err
	}
	h, err := Interarrival(comps)
	if err != nil {
		return solver.Model{}, nil, err
	}
	out, err := solver.NewModel(m.Marginal, h, m.ServiceRate, m.Buffer)
	if err != nil {
		return solver.Model{}, nil, err
	}
	return out, comps, nil
}
