package faultinject

import (
	"sync"
	"testing"
)

func TestArmApplyDisarm(t *testing.T) {
	t.Cleanup(Reset)
	if Active() {
		t.Fatal("fresh package must have nothing armed")
	}
	xs := []float64{1, 2, 3}
	Apply(SolverConvolution, xs) // no-op when disarmed
	if xs[0] != 1 {
		t.Fatal("disarmed Apply mutated data")
	}
	Arm(SolverConvolution, func(v []float64) { v[0] = -7 })
	if !Active() {
		t.Fatal("Active false after Arm")
	}
	Apply(SolverConvolution, xs)
	if xs[0] != -7 {
		t.Fatal("armed fault did not fire")
	}
	if Fired(SolverConvolution) != 1 {
		t.Fatalf("fire count = %d, want 1", Fired(SolverConvolution))
	}
	// Other points are unaffected.
	ys := []float64{5}
	Apply(SolverIncrementPMF, ys)
	if ys[0] != 5 {
		t.Fatal("fault fired at wrong point")
	}
	Disarm(SolverConvolution)
	if Active() {
		t.Fatal("Active true after Disarm")
	}
	xs[0] = 1
	Apply(SolverConvolution, xs)
	if xs[0] != 1 {
		t.Fatal("fault fired after Disarm")
	}
}

func TestArmNilDisarms(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SolverLossBounds, func([]float64) {})
	Arm(SolverLossBounds, nil)
	if Active() {
		t.Fatal("Arm(nil) must disarm")
	}
}

func TestResetClearsCounters(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SolverIncrementPMF, func([]float64) {})
	Apply(SolverIncrementPMF, nil)
	Reset()
	if Active() || Fired(SolverIncrementPMF) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestConcurrentApply(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SolverConvolution, func(v []float64) {
		if len(v) > 0 {
			v[0]++
		}
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := []float64{0}
			for i := 0; i < 100; i++ {
				Apply(SolverConvolution, local)
			}
		}()
	}
	wg.Wait()
	if Fired(SolverConvolution) != 800 {
		t.Fatalf("fire count = %d, want 800", Fired(SolverConvolution))
	}
}
