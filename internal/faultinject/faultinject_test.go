package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestArmApplyDisarm(t *testing.T) {
	t.Cleanup(Reset)
	if Active() {
		t.Fatal("fresh package must have nothing armed")
	}
	xs := []float64{1, 2, 3}
	Apply(SolverConvolution, xs) // no-op when disarmed
	if xs[0] != 1 {
		t.Fatal("disarmed Apply mutated data")
	}
	Arm(SolverConvolution, func(v []float64) { v[0] = -7 })
	if !Active() {
		t.Fatal("Active false after Arm")
	}
	Apply(SolverConvolution, xs)
	if xs[0] != -7 {
		t.Fatal("armed fault did not fire")
	}
	if Fired(SolverConvolution) != 1 {
		t.Fatalf("fire count = %d, want 1", Fired(SolverConvolution))
	}
	// Other points are unaffected.
	ys := []float64{5}
	Apply(SolverIncrementPMF, ys)
	if ys[0] != 5 {
		t.Fatal("fault fired at wrong point")
	}
	Disarm(SolverConvolution)
	if Active() {
		t.Fatal("Active true after Disarm")
	}
	xs[0] = 1
	Apply(SolverConvolution, xs)
	if xs[0] != 1 {
		t.Fatal("fault fired after Disarm")
	}
}

func TestArmNilDisarms(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SolverLossBounds, func([]float64) {})
	Arm(SolverLossBounds, nil)
	if Active() {
		t.Fatal("Arm(nil) must disarm")
	}
}

func TestResetClearsCounters(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SolverIncrementPMF, func([]float64) {})
	Apply(SolverIncrementPMF, nil)
	Reset()
	if Active() || Fired(SolverIncrementPMF) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestArmErrApplyErrDisarm(t *testing.T) {
	t.Cleanup(Reset)
	if err := ApplyErr(JournalAppend); err != nil {
		t.Fatalf("disarmed ApplyErr returned %v", err)
	}
	boom := errors.New("disk gone")
	ArmErr(JournalAppend, func() error { return boom })
	if !Active() {
		t.Fatal("Active false after ArmErr")
	}
	if err := ApplyErr(JournalAppend); !errors.Is(err, boom) {
		t.Fatalf("ApplyErr = %v, want injected error", err)
	}
	if Fired(JournalAppend) != 1 {
		t.Fatalf("fire count = %d, want 1", Fired(JournalAppend))
	}
	// Other points are unaffected.
	if err := ApplyErr(JournalDirSync); err != nil {
		t.Fatalf("unarmed point returned %v", err)
	}
	// Data hooks and error hooks are independent namespaces: arming an
	// error at a point does not fire its data hook.
	xs := []float64{1}
	Apply(JournalAppend, xs)
	if xs[0] != 1 {
		t.Fatal("ArmErr leaked into Apply")
	}
	DisarmErr(JournalAppend)
	if Active() {
		t.Fatal("Active true after DisarmErr")
	}
	if err := ApplyErr(JournalAppend); err != nil {
		t.Fatalf("ApplyErr after DisarmErr = %v", err)
	}
}

func TestArmErrNilDisarmsAndFailOnce(t *testing.T) {
	t.Cleanup(Reset)
	ArmErr(LeaseRenew, func() error { return nil })
	ArmErr(LeaseRenew, nil)
	if Active() {
		t.Fatal("ArmErr(nil) must disarm")
	}
	// Fail-once: an armed hook returning nil counts as a fire but injects
	// nothing, so a CompareAndSwap hook fails exactly one call.
	var once atomic.Bool
	ArmErr(LeaseRenew, func() error {
		if once.CompareAndSwap(false, true) {
			return errors.New("transient")
		}
		return nil
	})
	if err := ApplyErr(LeaseRenew); err == nil {
		t.Fatal("first call should fail")
	}
	if err := ApplyErr(LeaseRenew); err != nil {
		t.Fatalf("second call should succeed, got %v", err)
	}
	if Fired(LeaseRenew) != 2 {
		t.Fatalf("fire count = %d, want 2", Fired(LeaseRenew))
	}
	Reset()
	if Active() || Fired(LeaseRenew) != 0 {
		t.Fatal("Reset did not clear error hooks")
	}
}

func TestConcurrentApplyErr(t *testing.T) {
	t.Cleanup(Reset)
	injected := errors.New("x")
	ArmErr(JournalAppend, func() error { return injected })
	var wg sync.WaitGroup
	var hits atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if errors.Is(ApplyErr(JournalAppend), injected) {
					hits.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if hits.Load() != 800 || Fired(JournalAppend) != 800 {
		t.Fatalf("hits = %d, fires = %d, want 800/800", hits.Load(), Fired(JournalAppend))
	}
}

func TestConcurrentApply(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SolverConvolution, func(v []float64) {
		if len(v) > 0 {
			v[0]++
		}
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := []float64{0}
			for i := 0; i < 100; i++ {
				Apply(SolverConvolution, local)
			}
		}()
	}
	wg.Wait()
	if Fired(SolverConvolution) != 800 {
		t.Fatalf("fire count = %d, want 800", Fired(SolverConvolution))
	}
}
