// Package faultinject provides hook-based fault injection for the numeric
// and durability hot paths of the library. Production code calls Apply
// (data corruption) or ApplyErr (injected failures) at named fault points;
// tests Arm/ArmErr a function at a point to prove that the downstream
// guards detect the fault they claim to detect.
//
// When nothing is armed, Apply and ApplyErr cost a single atomic load, so
// fault points are safe to leave in solver inner loops and journal append
// paths. All operations are safe for concurrent use; armed faults may fire
// from multiple goroutines at once, so fault functions must themselves be
// reentrant (pure slice edits are; error constructors are).
//
// The package is intended for tests only. Nothing in the library arms a
// fault on its own, and a released binary with no armed faults behaves
// identically to one compiled without the hooks.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Point names a fault-injection site. Each site documents the slice its
// corruption function receives.
type Point string

const (
	// SolverConvolution fires on the raw FFT convolution output of every
	// Lindley step, before boundary folding and renormalization. The
	// corruption function receives the full convolution buffer.
	SolverConvolution Point = "solver/convolution"
	// SolverIncrementPMF fires on each freshly built rounded-increment pmf
	// (once for the lower-rounded law, once for the upper). The corruption
	// function receives the pmf of length 2M+1.
	SolverIncrementPMF Point = "solver/increment-pmf"
	// SolverLossBounds fires after each Lindley step on the pair
	// {lower, upper} of freshly evaluated loss bounds, before the solver's
	// invariant checks. The corruption function receives a 2-element slice.
	SolverLossBounds Point = "solver/loss-bounds"
)

// Error-injection points (see ArmErr/ApplyErr). These fire on durability
// and coordination paths, where the interesting fault is a failure, not a
// corrupted buffer.
const (
	// JournalAppend fires at the top of every journal record append. An
	// injected error is returned as the append's write error, poisoning the
	// writer exactly as a failed disk write would.
	JournalAppend Point = "journal/append"
	// JournalDirSync fires on the parent-directory fsync that seals an
	// atomic file replacement (journal.WriteFileAtomic). An injected error
	// models a power-loss-window fsync failure.
	JournalDirSync Point = "journal/dir-sync"
	// LeaseRenew fires at the top of every lease renewal append
	// (core.LeaseStore). An injected error models a stalled or partitioned
	// worker whose heartbeats stop landing in the shared journal.
	LeaseRenew Point = "core/lease-renew"
)

var (
	armedCount atomic.Int32 // fast-path gate: number of armed points

	mu       sync.RWMutex
	hooks    = map[Point]func([]float64){}
	errHooks = map[Point]func() error{}
	fires    = map[Point]int{}
)

// Arm installs f as the corruption function at point p, replacing any
// previous one. f runs synchronously inside the instrumented hot path.
func Arm(p Point, f func([]float64)) {
	if f == nil {
		Disarm(p)
		return
	}
	mu.Lock()
	if _, ok := hooks[p]; !ok {
		armedCount.Add(1)
	}
	hooks[p] = f
	mu.Unlock()
}

// Disarm removes the corruption function at point p, if any.
func Disarm(p Point) {
	mu.Lock()
	if _, ok := hooks[p]; ok {
		armedCount.Add(-1)
		delete(hooks, p)
	}
	mu.Unlock()
}

// ArmErr installs f as the error-injection function at point p, replacing
// any previous one. f runs synchronously inside the instrumented path;
// returning a non-nil error makes the fault point fail with it. A nil f
// disarms the point; an armed f returning nil means "fault armed but not
// firing this call" (useful for fail-once behaviors).
func ArmErr(p Point, f func() error) {
	if f == nil {
		DisarmErr(p)
		return
	}
	mu.Lock()
	if _, ok := errHooks[p]; !ok {
		armedCount.Add(1)
	}
	errHooks[p] = f
	mu.Unlock()
}

// DisarmErr removes the error-injection function at point p, if any.
func DisarmErr(p Point) {
	mu.Lock()
	if _, ok := errHooks[p]; ok {
		armedCount.Add(-1)
		delete(errHooks, p)
	}
	mu.Unlock()
}

// Reset disarms every point and clears the fire counters.
func Reset() {
	mu.Lock()
	armedCount.Add(-int32(len(hooks) + len(errHooks)))
	hooks = map[Point]func([]float64){}
	errHooks = map[Point]func() error{}
	fires = map[Point]int{}
	mu.Unlock()
}

// Active reports whether any fault point is armed. It is the cheap guard
// instrumented code may use to skip work when nothing is armed.
func Active() bool { return armedCount.Load() != 0 }

// Apply invokes the corruption function armed at p, if any, on xs.
// With nothing armed anywhere it returns after one atomic load.
func Apply(p Point, xs []float64) {
	if armedCount.Load() == 0 {
		return
	}
	mu.RLock()
	f := hooks[p]
	mu.RUnlock()
	if f == nil {
		return
	}
	f(xs)
	mu.Lock()
	fires[p]++
	mu.Unlock()
}

// ApplyErr invokes the error-injection function armed at p, if any, and
// returns its error. With nothing armed anywhere it returns nil after one
// atomic load, so the hook is safe on durability hot paths.
func ApplyErr(p Point) error {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.RLock()
	f := errHooks[p]
	mu.RUnlock()
	if f == nil {
		return nil
	}
	err := f()
	mu.Lock()
	fires[p]++
	mu.Unlock()
	return err
}

// Fired returns how many times the fault at p has fired since the last
// Reset. Tests use it to assert that an armed fault actually executed.
func Fired(p Point) int {
	mu.RLock()
	defer mu.RUnlock()
	return fires[p]
}
